//===- bench/ablation_sharing.cpp - §7 footnote: parse-tree sharing --------===//
///
/// \file
/// The §7 footnote credits B. Lang's suggestion to improve the sharing of
/// parse trees. This ablation parses the ambiguity ladder a+a+...+a with
/// local ambiguity packing on (shared forest) and off (content-addressed
/// but unmerged derivations) and reports forest sizes and times: packing
/// keeps the forest polynomial while the number of parse trees grows as
/// the Catalan numbers.
///
//===----------------------------------------------------------------------===//

#include "common/BenchSupport.h"

#include "glr/GlrParser.h"
#include "grammar/GrammarBuilder.h"

#include <cassert>
#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

void buildLadderGrammar(Grammar &G) {
  GrammarBuilder B(G);
  B.rule("E", {"E", "+", "E"});
  B.rule("E", {"a"});
  B.rule("START", {"E"});
}

std::vector<SymbolId> ladder(const Grammar &G, unsigned Operands) {
  std::vector<SymbolId> Input;
  for (unsigned I = 0; I < Operands; ++I) {
    if (I != 0)
      Input.push_back(G.symbols().lookup("+"));
    Input.push_back(G.symbols().lookup("a"));
  }
  return Input;
}

} // namespace

int main() {
  std::printf("§7 footnote — parse-tree sharing ablation on E ::= E+E | a\n\n");
  TextTable Table({"operands", "trees", "nodes shared", "nodes unshared",
                   "time shared", "time unshared"});

  int Failures = 0;
  size_t LastShared = 0, LastUnshared = 0;
  // The unshared forest grows with the number of distinct derivations
  // (Catalan-ish), so the ladder stops at 8 operands (1430 trees).
  for (unsigned N : {3u, 4u, 5u, 6u, 7u, 8u}) {
    Grammar G;
    buildLadderGrammar(G);
    ItemSetGraph Graph(G);
    Graph.generateAll();
    GlrParser Parser(Graph);
    std::vector<SymbolId> Input = ladder(G, N);

    Forest Shared(/*PackNodes=*/true);
    Stopwatch Watch;
    GlrResult RS = Parser.parse(Input, Shared);
    double SharedTime = Watch.seconds();
    assert(RS.Accepted);

    Forest Unshared(/*PackNodes=*/false);
    Watch.reset();
    GlrResult RU = Parser.parse(Input, Unshared);
    double UnsharedTime = Watch.seconds();
    assert(RU.Accepted);
    (void)RU;

    uint64_t Trees = Shared.countTrees(RS.Root);
    Table.addRow({std::to_string(N), std::to_string(Trees),
                  std::to_string(Shared.numNodes()),
                  std::to_string(Unshared.numNodes()), ms(SharedTime),
                  ms(UnsharedTime)});
    LastShared = Shared.numNodes();
    LastUnshared = Unshared.numNodes();
  }
  Table.print();

  std::printf("\nshape checks:\n");
  Failures += checkShape(LastShared * 3 < LastUnshared,
                         "packing shrinks the forest by a growing factor");
  // Polynomial vs super-polynomial growth: the shared forest for 8
  // operands stays small while there are 429 parse trees.
  Failures += checkShape(LastShared < 200,
                         "shared forest stays polynomial in input length");
  std::printf(Failures == 0 ? "\nAll shape checks passed.\n"
                            : "\n%d shape check(s) FAILED.\n",
              Failures);
  return Failures == 0 ? 0 : 1;
}
