//===- bench/ablation_sharing.cpp - §7 footnote: parse-tree sharing --------===//
///
/// \file
/// The §7 footnote credits B. Lang's suggestion to improve the sharing of
/// parse trees. This ablation parses the ambiguity ladder a+a+...+a with
/// local ambiguity packing on (shared forest) and off (content-addressed
/// but unmerged derivations) and reports forest sizes and times: packing
/// keeps the forest polynomial while the number of parse trees grows as
/// the Catalan numbers.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "glr/GlrParser.h"
#include "grammar/GrammarBuilder.h"

#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

void buildLadderGrammar(Grammar &G) {
  GrammarBuilder B(G);
  B.rule("E", {"E", "+", "E"});
  B.rule("E", {"a"});
  B.rule("START", {"E"});
}

std::vector<SymbolId> ladder(const Grammar &G, unsigned Operands) {
  std::vector<SymbolId> Input;
  for (unsigned I = 0; I < Operands; ++I) {
    if (I != 0)
      Input.push_back(G.symbols().lookup("+"));
    Input.push_back(G.symbols().lookup("a"));
  }
  return Input;
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("ablation_sharing", argc, argv);
  std::printf("§7 footnote — parse-tree sharing ablation on E ::= E+E | a\n\n");
  TextTable Table({"operands", "trees", "nodes shared", "nodes unshared",
                   "time shared", "time unshared"});

  size_t LastShared = 0, LastUnshared = 0;
  bool AllAccept = true;
  // The unshared forest grows with the number of distinct derivations
  // (Catalan-ish), so the ladder stops at 8 operands (1430 trees).
  for (unsigned N : {3u, 4u, 5u, 6u, 7u, 8u}) {
    Grammar G;
    buildLadderGrammar(G);
    ItemSetGraph Graph(G);
    Graph.generateAll();
    GlrParser Parser(Graph);
    std::vector<SymbolId> Input = ladder(G, N);

    std::string Key = "ablation_sharing/operands_" + std::to_string(N);

    // One parse per mode keeps the forests for the node counts; the
    // timed repetitions build a fresh forest per iteration so the
    // measurement does not accrete nodes across runs.
    Forest Shared(/*PackNodes=*/true);
    GlrResult RS = Parser.parse(Input, Shared);
    AllAccept &= RS.Accepted;
    double SharedTime = H.measure(Key + "/parse_shared", 7,
                                  [&] {
                                    Forest F(/*PackNodes=*/true);
                                    Parser.parse(Input, F);
                                  })
                            .Median;

    Forest Unshared(/*PackNodes=*/false);
    GlrResult RU = Parser.parse(Input, Unshared);
    AllAccept &= RU.Accepted;
    double UnsharedTime = H.measure(Key + "/parse_unshared", 7,
                                    [&] {
                                      Forest F(/*PackNodes=*/false);
                                      Parser.parse(Input, F);
                                    })
                              .Median;

    uint64_t Trees = Shared.countTrees(RS.Root);
    Table.addRow({std::to_string(N), std::to_string(Trees),
                  std::to_string(Shared.numNodes()),
                  std::to_string(Unshared.numNodes()), ms(SharedTime),
                  ms(UnsharedTime)});
    H.report().addCounter(Key + "/trees", Trees);
    H.report().addCounter(Key + "/nodes_shared", Shared.numNodes());
    H.report().addCounter(Key + "/nodes_unshared", Unshared.numNodes());
    LastShared = Shared.numNodes();
    LastUnshared = Unshared.numNodes();
  }
  Table.print();

  std::printf("\nshape checks:\n");
  H.check(AllAccept, "both forest modes accept every ladder rung "
                     "(timings measure real parses)");
  H.check(LastShared * 3 < LastUnshared,
          "packing shrinks the forest by a growing factor");
  // Polynomial vs super-polynomial growth: the shared forest for 8
  // operands stays small while there are 429 parse trees.
  H.check(LastShared < 200,
          "shared forest stays polynomial in input length");
  return H.finish();
}
