//===- bench/fig2_1_comparison.cpp - Fig 2.1: algorithm comparison ---------===//
///
/// \file
/// Regenerates the qualitative comparison matrix of Fig 2.1 from
/// *measured* probes instead of judgement calls:
///
///   powerful — does the algorithm handle an ambiguous, left-recursive,
///              ε-bearing grammar? (++ all three, + finitely-ambiguous
///              only, blank: deterministic grammars only);
///   fast     — tokens/second on a long unambiguous input, bucketed
///              relative to the fastest;
///   flexible — cost of a grammar modification relative to regenerating
///              from scratch (++ incremental, + no generation phase at
///              all, blank: full regeneration);
///   modular  — can two separately defined modules be composed without
///              regenerating either (++ via the ModuleSystem, + by
///              re-feeding rules, blank: not supported).
///
/// Rows: LALR(1)/Yacc, LL(1), recursive descent (backtracking, OBJ-style),
/// Earley, Tomita (PG tables) and IPG. Cigale is out of scope (its trie
/// algorithm has no counterpart here); the paper's row is quoted for
/// completeness.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "core/Ipg.h"
#include "core/Modules.h"
#include "earley/EarleyParser.h"
#include "glr/GlrParser.h"
#include "grammar/GrammarBuilder.h"
#include "lalr/LalrGen.h"
#include "ll/BacktrackRd.h"
#include "ll/Ll1Parser.h"
#include "lr/LrParser.h"
#include "sdf/SdfLanguage.h"

#include <cstdio>
#include <functional>

using namespace ipg;
using namespace ipg::bench;

namespace {

/// The probe grammars.
void buildPowerProbe(Grammar &G) {
  // Ambiguous + left-recursive + ε: E ::= E E | "a" | ε — the hardest mix.
  GrammarBuilder B(G);
  B.rule("E", {"E", "+", "E"});
  B.rule("E", {"a"});
  B.rule("Pad", {});
  B.rule("S", {"Pad", "E"});
  B.rule("START", {"S"});
}

void buildSpeedProbe(Grammar &G) {
  GrammarBuilder B(G);
  B.rule("L", {"L", ";", "x"});
  B.rule("L", {"x"});
  B.rule("START", {"L"});
}

void buildSpeedProbeLl(Grammar &G) {
  // Right-recursive, left-factored variant for the top-down parsers
  // (L ::= x ; L | x is not LL(1); this formulation is).
  GrammarBuilder B(G);
  B.rule("L", {"x", "L'"});
  B.rule("L'", {";", "x", "L'"});
  B.rule("L'", {});
  B.rule("START", {"L"});
}

std::vector<SymbolId> speedInput(const Grammar &G, size_t Items) {
  std::vector<SymbolId> Input;
  SymbolId X = G.symbols().lookup("x");
  SymbolId Semi = G.symbols().lookup(";");
  for (size_t I = 0; I < Items; ++I) {
    if (I != 0)
      Input.push_back(Semi);
    Input.push_back(X);
  }
  return Input;
}

struct AlgorithmRow {
  std::string Name;
  bool PowerAmbiguous = false;   ///< Accepts the ambiguous probe.
  bool PowerUnbounded = false;   ///< ...without blow-up guard rails.
  double TokensPerSecond = 0;
  double ModifyRatio = 1.0;      ///< modify time / full-regeneration time.
  bool NoGenerationPhase = false;
  bool Modular = false;
};

std::string powerMark(const AlgorithmRow &Row) {
  if (Row.PowerAmbiguous && Row.PowerUnbounded)
    return "++";
  if (Row.PowerAmbiguous)
    return "+";
  return "";
}

std::string fastMark(double Speed, double Best) {
  if (Speed >= Best / 4)
    return "++";
  if (Speed >= Best / 100)
    return "+";
  return "";
}

std::string flexMark(const AlgorithmRow &Row) {
  if (Row.NoGenerationPhase)
    return "++";
  if (Row.ModifyRatio < 0.25)
    return "+";
  return "";
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("fig2_1_comparison", argc, argv);
  std::vector<AlgorithmRow> Rows;
  const size_t SpeedItems = 4000;
  const int SpeedReps = H.reps(5);

  // --- LALR(1) / Yacc-style --------------------------------------------
  {
    AlgorithmRow Row{"LR/LALR(1)"};
    Grammar GS;
    buildSpeedProbe(GS);
    ItemSetGraph Graph(GS);
    ParseTable Table = buildLalr1Table(Graph);
    resolveConflictsYaccStyle(Table, GS);
    LrParser Parser(Table, GS);
    std::vector<SymbolId> Input = speedInput(GS, SpeedItems);
    double Time = medianSeconds(SpeedReps, [&] { Parser.recognize(Input); });
    Row.TokensPerSecond = Input.size() / Time;
    // Power probe: the table has unresolvable ambiguity -> not accepted.
    Grammar GP;
    buildPowerProbe(GP);
    ItemSetGraph PGraph(GP);
    Row.PowerAmbiguous = buildLalr1Table(PGraph).isDeterministic();
    Row.ModifyRatio = 1.0; // Regenerate everything.
    Rows.push_back(Row);
  }

  // --- LL(1) -------------------------------------------------------------
  {
    AlgorithmRow Row{"LL(1)"};
    Grammar GS;
    buildSpeedProbeLl(GS);
    Ll1Table Table(GS);
    Ll1Parser Parser(Table, GS);
    std::vector<SymbolId> Input = speedInput(GS, SpeedItems);
    double Time = medianSeconds(SpeedReps, [&] { Parser.recognize(Input); });
    Row.TokensPerSecond = Input.size() / Time;
    Grammar GP;
    buildPowerProbe(GP);
    Row.PowerAmbiguous = Ll1Table(GP).isLl1();
    Rows.push_back(Row);
  }

  // --- Recursive descent with backtracking (OBJ) -------------------------
  {
    AlgorithmRow Row{"rec. descent (OBJ)"};
    Grammar GS;
    buildSpeedProbeLl(GS);
    BacktrackRdParser Parser(GS, /*StepLimit=*/100'000'000);
    // The recursive interpreter's stack depth is linear in input length;
    // a shorter input keeps the probe within the thread stack.
    std::vector<SymbolId> Input = speedInput(GS, SpeedItems / 10);
    double Time =
        medianSeconds(SpeedReps, [&] { Parser.countParses(Input, 1); });
    Row.TokensPerSecond = Input.size() / Time;
    Grammar GP;
    buildPowerProbe(GP);
    BacktrackRdParser Power(GP, /*StepLimit=*/100'000);
    RdResult R = Power.countParses(
        {GP.symbols().lookup("a"), GP.symbols().lookup("+"),
         GP.symbols().lookup("a")},
        10);
    Row.PowerAmbiguous = R.Accepted;
    Row.PowerUnbounded = false; // Left recursion diverges (R.LimitHit).
    Row.NoGenerationPhase = true;
    Rows.push_back(Row);
  }

  // --- Earley -------------------------------------------------------------
  {
    AlgorithmRow Row{"Earley"};
    Grammar GS;
    buildSpeedProbe(GS);
    EarleyParser Parser(GS);
    std::vector<SymbolId> Input = speedInput(GS, SpeedItems / 4);
    double Time = medianSeconds(3, [&] { Parser.recognize(Input); });
    Row.TokensPerSecond = Input.size() / Time;
    Grammar GP;
    buildPowerProbe(GP);
    EarleyParser Power(GP);
    Row.PowerAmbiguous = Power.recognize(
        {GP.symbols().lookup("a"), GP.symbols().lookup("+"),
         GP.symbols().lookup("a")});
    Row.PowerUnbounded = true;
    Row.NoGenerationPhase = true;
    Rows.push_back(Row);
  }

  // --- Tomita over conventional tables (PG) ------------------------------
  {
    AlgorithmRow Row{"Tomita (PG)"};
    Grammar GS;
    buildSpeedProbe(GS);
    ItemSetGraph Graph(GS);
    Graph.generateAll();
    GlrParser Parser(Graph);
    std::vector<SymbolId> Input = speedInput(GS, SpeedItems);
    double Time = medianSeconds(SpeedReps, [&] { Parser.recognize(Input); });
    Row.TokensPerSecond = Input.size() / Time;
    Grammar GP;
    buildPowerProbe(GP);
    ItemSetGraph PGraph(GP);
    GlrParser Power(PGraph);
    Row.PowerAmbiguous = Power.recognize(
        {GP.symbols().lookup("a"), GP.symbols().lookup("+"),
         GP.symbols().lookup("a")});
    Row.PowerUnbounded = true;
    Row.ModifyRatio = 1.0;
    Rows.push_back(Row);
  }

  // --- IPG -----------------------------------------------------------------
  {
    AlgorithmRow Row{"IPG"};
    Grammar GS;
    buildSpeedProbe(GS);
    Ipg Gen(GS);
    std::vector<SymbolId> Input = speedInput(GS, SpeedItems);
    Gen.recognize(Input); // Warm the table, as §5 intends.
    double Time = medianSeconds(SpeedReps, [&] { Gen.recognize(Input); });
    Row.TokensPerSecond = Input.size() / Time;
    Grammar GP;
    buildPowerProbe(GP);
    Ipg Power(GP);
    Row.PowerAmbiguous = Power.recognize(
        {GP.symbols().lookup("a"), GP.symbols().lookup("+"),
         GP.symbols().lookup("a")});
    Row.PowerUnbounded = true;
    // Flexible: MODIFY on an SDF-sized table vs regenerating it. The
    // tiny speed-probe grammar would hide the gap; the real workload
    // shows it (cf. bench/modify_cost).
    SdfLanguage ModLang;
    Ipg Mod(ModLang.grammar());
    Mod.generateAll();
    auto [MLhs, MRhs] = ModLang.modificationRule();
    Stopwatch Watch;
    const int ModReps = H.reps(20);
    for (int I = 0; I < ModReps; ++I) {
      Mod.addRule(MLhs, std::vector<SymbolId>(MRhs));
      Mod.deleteRule(MLhs, MRhs);
    }
    double Incremental = Watch.seconds() / (2 * ModReps);
    double Scratch = medianSeconds(H.reps(5), [] {
      SdfLanguage Fresh;
      ItemSetGraph Graph(Fresh.grammar());
      Graph.generateAll();
    });
    Row.ModifyRatio = Scratch > 0 ? Incremental / Scratch : 1.0;
    Row.Modular = true; // core/Modules.h drives composition through IPG.
    Rows.push_back(Row);
  }

  double Best = 0;
  for (const AlgorithmRow &Row : Rows)
    Best = std::max(Best, Row.TokensPerSecond);

  std::printf("Fig 2.1 — comparison of parsing algorithms (measured)\n\n");
  TextTable Table({"algorithm", "powerful", "fast", "flexible", "modular",
                   "tokens/s"});
  for (const AlgorithmRow &Row : Rows)
    Table.addRow({Row.Name, powerMark(Row),
                  fastMark(Row.TokensPerSecond, Best), flexMark(Row),
                  Row.Modular ? "+" : "",
                  std::to_string((long long)Row.TokensPerSecond)});
  Table.addRow({"Cigale (paper)", "", "++", "++", "+", "n/a"});
  Table.print();

  for (const AlgorithmRow &Row : Rows) {
    std::string Key = "fig2_1/" + Row.Name;
    H.report().addScalar(Key + "/tokens_per_second", Row.TokensPerSecond,
                         "tokens_per_second");
    H.report().addScalar(Key + "/modify_ratio", Row.ModifyRatio, "ratio");
  }

  std::printf("\nshape checks against the paper's matrix:\n");
  auto Find = [&](const char *Name) -> AlgorithmRow & {
    for (AlgorithmRow &Row : Rows)
      if (Row.Name == Name)
        return Row;
    static AlgorithmRow None;
    return None;
  };
  H.check(powerMark(Find("IPG")) == "++", "IPG is maximally powerful");
  H.check(powerMark(Find("Earley")) == "++", "Earley is maximally powerful");
  H.check(powerMark(Find("LR/LALR(1)")).empty(),
          "LALR(1) rejects the ambiguous probe");
  H.check(powerMark(Find("LL(1)")).empty(),
          "LL(1) rejects the ambiguous probe");
  H.check(Find("Earley").TokensPerSecond < Find("IPG").TokensPerSecond / 4,
          "Earley parses much slower than table-driven IPG");
  H.check(flexMark(Find("IPG")) != "", "IPG absorbs modifications cheaply");
  H.check(Find("LR/LALR(1)").TokensPerSecond >=
              Find("IPG").TokensPerSecond / 4,
          "deterministic LR parsing is in the top speed tier");
  return H.finish();
}
