//===- bench/fig7_1_measurements.cpp - Fig 7.1: Yacc vs PG vs IPG ----------===//
///
/// \file
/// Regenerates Fig 7.1, the paper's headline measurement. For each of the
/// four SDF inputs and each generator we time the paper's six phases:
///
///   construct — build the parse table for the SDF grammar;
///   parse 1/2 — parse the input twice (trees are constructed, not
///               printed, exactly as in §7);
///   modify    — add the rule CF-ELEM ::= "(" CF-ELEM+ ")?" and update
///               the table;
///   parse 3/4 — parse the same input twice against the updated table.
///
/// Generators:
///   Yacc — our LALR(1) generator + deterministic LR driver. The paper's
///          9.6 s Yacc figure is dominated by compiling generated C
///          (8.3 s), which has no analogue here, and a 1989 SUN 3/60 made
///          even the ~100-state SDF table feel expensive. To reproduce
///          that *regime* honestly, a second section scales the grammar
///          (the paper: "we expect grammars that are much larger than the
///          grammar of SDF and input sentences to be quite small");
///   PG   — full LR(0) generation + Tomita parser (§4);
///   IPG  — lazy & incremental generation + Tomita parser (§5/§6).
///
/// Absolute times are hardware-bound; the shape checks assert the paper's
/// qualitative findings.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"
#include "common/ScaledSdf.h"

#include "core/Ipg.h"
#include "glr/GlrParser.h"
#include "lalr/LalrGen.h"
#include "lr/LrParser.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"

#include <cassert>
#include <cstdio>
#include <functional>

using namespace ipg;
using namespace ipg::bench;

namespace {

constexpr int Repetitions = 7;

/// The six per-phase times of one scenario run.
struct PhaseTimes {
  double Construct = 0, Parse1 = 0, Parse2 = 0, Modify = 0, Parse3 = 0,
         Parse4 = 0;
  double total() const {
    return Construct + Parse1 + Parse2 + Modify + Parse3 + Parse4;
  }
};

/// A measurement scenario: how to build the grammar, and what to parse.
struct Workload {
  std::function<void(Grammar &)> Build;
  std::string_view InputText;
};

/// Fills \p G with the SDF grammar of Appendix B.
void buildSdf(Grammar &G) {
  SdfLanguage Lang;
  Grammar::cloneActiveRules(Lang.grammar(), G);
}

/// The Fig 7.1 modification against the (unprefixed) CF-ELEM; the scaled
/// grammar itself comes from the shared bench/common/ScaledSdf.h.
std::pair<SymbolId, std::vector<SymbolId>> modification(Grammar &G) {
  return scaledSdfModification(G);
}

std::vector<SymbolId> tokenize(Grammar &G, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens = S.tokenizeToSymbols(Text, G);
  assert(Tokens && "sample must tokenize");
  return Tokens.take();
}

/// One Yacc scenario run: every phase regenerates from scratch, as Yacc
/// must (grammar change == rerun yacc + recompile).
PhaseTimes runYacc(const Workload &W) {
  PhaseTimes T;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);

  Stopwatch Watch;
  ItemSetGraph Graph(G);
  ParseTable Table = buildLalr1Table(Graph);
  resolveConflictsYaccStyle(Table, G);
  T.Construct = Watch.seconds();

  LrParser Parser(Table, G);
  for (double *Slot : {&T.Parse1, &T.Parse2}) {
    TreeArena Arena;
    Watch.reset();
    LrParseResult R = Parser.parse(Tokens, Arena);
    *Slot = Watch.seconds();
    assert(R.Accepted && "Yacc baseline must accept the sample");
    (void)R;
  }

  auto [Lhs, Rhs] = modification(G);
  Watch.reset();
  G.addRule(Lhs, std::move(Rhs));
  ItemSetGraph Graph2(G);
  ParseTable Table2 = buildLalr1Table(Graph2);
  resolveConflictsYaccStyle(Table2, G);
  T.Modify = Watch.seconds();

  LrParser Parser2(Table2, G);
  for (double *Slot : {&T.Parse3, &T.Parse4}) {
    TreeArena Arena;
    Watch.reset();
    LrParseResult R = Parser2.parse(Tokens, Arena);
    *Slot = Watch.seconds();
    assert(R.Accepted && "Yacc baseline must accept after modification");
    (void)R;
  }
  return T;
}

/// One PG scenario run: conventional full LR(0) generation, Tomita
/// parser; modification regenerates everything (§4).
PhaseTimes runPg(const Workload &W) {
  PhaseTimes T;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);

  Stopwatch Watch;
  ItemSetGraph Graph(G);
  Graph.generateAll();
  T.Construct = Watch.seconds();

  GlrParser Parser(Graph);
  for (double *Slot : {&T.Parse1, &T.Parse2}) {
    Forest F;
    Watch.reset();
    GlrResult R = Parser.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "PG must accept the sample");
    (void)R;
  }

  auto [Lhs, Rhs] = modification(G);
  Watch.reset();
  G.addRule(Lhs, std::move(Rhs));
  ItemSetGraph Graph2(G);
  Graph2.generateAll();
  T.Modify = Watch.seconds();

  GlrParser Parser2(Graph2);
  for (double *Slot : {&T.Parse3, &T.Parse4}) {
    Forest F;
    Watch.reset();
    GlrResult R = Parser2.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "PG must accept after modification");
    (void)R;
  }
  return T;
}

/// One IPG scenario run: lazy construction, incremental modification.
PhaseTimes runIpg(const Workload &W) {
  PhaseTimes T;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);

  Stopwatch Watch;
  Ipg Gen(G);
  T.Construct = Watch.seconds();

  for (double *Slot : {&T.Parse1, &T.Parse2}) {
    Forest F;
    Watch.reset();
    GlrResult R = Gen.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "IPG must accept the sample");
    (void)R;
  }

  auto [Lhs, Rhs] = modification(G);
  Watch.reset();
  Gen.addRule(Lhs, std::move(Rhs));
  T.Modify = Watch.seconds();

  for (double *Slot : {&T.Parse3, &T.Parse4}) {
    Forest F;
    Watch.reset();
    GlrResult R = Gen.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "IPG must accept after modification");
    (void)R;
  }
  return T;
}

/// Full sample statistics per phase over repeated scenario runs (one
/// warmup run first), so the emitted JSON carries the spread alongside the
/// median the tables print.
struct PhaseStats {
  SampleStats Construct, Parse1, Parse2, Modify, Parse3, Parse4, Total;
};

PhaseStats samplePhases(PhaseTimes (*Run)(const Workload &),
                        const Workload &W, int Reps) {
  Run(W); // Warmup: fault in code and allocator state.
  std::vector<PhaseTimes> Samples;
  Samples.reserve(Reps);
  for (int I = 0; I < Reps; ++I)
    Samples.push_back(Run(W));
  auto StatsOf = [&](double PhaseTimes::*Member) {
    std::vector<double> Values;
    Values.reserve(Samples.size());
    for (const PhaseTimes &S : Samples)
      Values.push_back(S.*Member);
    return SampleStats::of(std::move(Values));
  };
  PhaseStats Result;
  Result.Construct = StatsOf(&PhaseTimes::Construct);
  Result.Parse1 = StatsOf(&PhaseTimes::Parse1);
  Result.Parse2 = StatsOf(&PhaseTimes::Parse2);
  Result.Modify = StatsOf(&PhaseTimes::Modify);
  Result.Parse3 = StatsOf(&PhaseTimes::Parse3);
  Result.Parse4 = StatsOf(&PhaseTimes::Parse4);
  std::vector<double> Totals;
  Totals.reserve(Samples.size());
  for (const PhaseTimes &S : Samples)
    Totals.push_back(S.total());
  Result.Total = SampleStats::of(std::move(Totals));
  return Result;
}

/// Non-timing ground truth for the laziness claims: expansion counts per
/// phase from one instrumented IPG run.
struct IpgWork {
  uint64_t ExpansionsParse1 = 0;
  uint64_t ExpansionsParse2 = 0;
  uint64_t ReExpansionsParse3 = 0;
};

IpgWork measureIpgWork(const Workload &W) {
  IpgWork Work;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);
  Ipg Gen(G);
  Gen.recognize(Tokens);
  Work.ExpansionsParse1 = Gen.stats().Expansions;
  Gen.recognize(Tokens);
  Work.ExpansionsParse2 = Gen.stats().Expansions - Work.ExpansionsParse1;
  auto [Lhs, Rhs] = modification(G);
  Gen.addRule(Lhs, std::move(Rhs));
  uint64_t Before = Gen.stats().ReExpansions;
  Gen.recognize(Tokens);
  Work.ReExpansionsParse3 = Gen.stats().ReExpansions - Before;
  return Work;
}

void runSection(BenchHarness &H, const char *Title, const std::string &Key,
                const Workload &W, bool Scaled) {
  Grammar CountG;
  W.Build(CountG);
  size_t NumTokens = tokenize(CountG, W.InputText).size();
  std::printf("== %s (%zu tokens) ==\n", Title, NumTokens);

  int Reps = H.reps(Repetitions);
  PhaseStats Yacc = samplePhases(runYacc, W, Reps);
  PhaseStats Pg = samplePhases(runPg, W, Reps);
  PhaseStats Ipg = samplePhases(runIpg, W, Reps);
  IpgWork Work = measureIpgWork(W);

  TextTable Table({"phase", "Yacc", "PG", "IPG"});
  struct PhaseName {
    const char *Label;
    const char *Slug;
    SampleStats PhaseStats::*Member;
  };
  const PhaseName Phases[] = {
      {"construct", "construct", &PhaseStats::Construct},
      {"parse 1", "parse1", &PhaseStats::Parse1},
      {"parse 2", "parse2", &PhaseStats::Parse2},
      {"modify", "modify", &PhaseStats::Modify},
      {"parse 3", "parse3", &PhaseStats::Parse3},
      {"parse 4", "parse4", &PhaseStats::Parse4},
      {"total", "total", &PhaseStats::Total},
  };
  struct GeneratorColumn {
    const char *Slug;
    const PhaseStats *Times;
  };
  const GeneratorColumn Generators[] = {
      {"yacc", &Yacc}, {"pg", &Pg}, {"ipg", &Ipg}};
  for (const PhaseName &Phase : Phases)
    Table.addRow({Phase.Label, ms((Yacc.*(Phase.Member)).Median),
                  ms((Pg.*(Phase.Member)).Median),
                  ms((Ipg.*(Phase.Member)).Median)});
  Table.print();
  // The Fig 7.1 grid, one timing (median + spread) per (generator, phase).
  for (const GeneratorColumn &Generator : Generators)
    for (const PhaseName &Phase : Phases)
      H.report().addTiming(Key + "/" + Generator.Slug + "/" + Phase.Slug,
                           Generator.Times->*(Phase.Member));
  H.report().addCounter(Key + "/tokens", NumTokens);
  H.report().addCounter(Key + "/ipg/expansions_parse1",
                        Work.ExpansionsParse1);
  H.report().addCounter(Key + "/ipg/expansions_parse2",
                        Work.ExpansionsParse2);
  H.report().addCounter(Key + "/ipg/re_expansions_parse3",
                        Work.ReExpansionsParse3);
  std::printf("IPG work: %llu expansions in parse 1, %llu in parse 2, "
              "%llu re-expansions in parse 3\n",
              (unsigned long long)Work.ExpansionsParse1,
              (unsigned long long)Work.ExpansionsParse2,
              (unsigned long long)Work.ReExpansionsParse3);

  std::printf("shape checks (the paper's qualitative findings):\n");
  H.check(Ipg.Construct.Median < Pg.Construct.Median / 10,
          "IPG construction time is almost zero");
  H.check(Pg.Construct.Median < Yacc.Construct.Median,
          "PG (LR(0)) generates faster than Yacc (LALR(1))");
  H.check(Ipg.Modify.Median < Pg.Modify.Median / 5,
          "IPG modification is far cheaper than PG regeneration");
  H.check(Ipg.Modify.Median < Yacc.Modify.Median / 5,
          "IPG modification is far cheaper than Yacc regeneration");
  H.check(Work.ExpansionsParse1 > 0 && Work.ExpansionsParse2 == 0,
          "the first parse generates table parts, the second generates "
          "none (§5)");
  H.check(Work.ReExpansionsParse3 > 0,
          "after MODIFY only re-expansions repair the table (§6)");
  // The ground truth for §5's claim is the expansion counter above; the
  // timing check carries a generous noise band (sub-millisecond parses
  // on a ~100-state table jitter by tens of percent).
  H.check(Ipg.Parse2.Median <= Ipg.Parse1.Median * 1.4,
          "IPG second parse is not slower (within timing noise)");
  H.check(Yacc.Parse2.Median <= Pg.Parse2.Median,
          "deterministic Yacc parser is at least as fast as the Tomita "
          "parser");
  // On the plain SDF grammar parsing dominates both totals, so IPG's
  // generation savings show as near-parity; the scaled section shows the
  // decisive win. Allow the noise band of sub-ms parse medians here.
  H.check(Ipg.Total.Median <= Pg.Total.Median * 1.2,
          "lazy+incremental is never beaten by conventional generation "
          "within the Tomita family");
  if (Scaled) {
    H.check(Ipg.Construct.Median + Ipg.Parse1.Median < Yacc.Construct.Median,
            "time-to-first-parse: IPG parses before Yacc finishes "
            "generating");
    H.check(Ipg.Total.Median < Yacc.Total.Median,
            "IPG wins the interactive scenario end-to-end on a large "
            "grammar");
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("fig7_1_measurements", argc, argv);
  std::printf("Fig 7.1 — CPU time for Yacc (LALR(1)+LR), PG (LR(0)+Tomita) "
              "and IPG (lazy/incremental+Tomita)\n");
  std::printf("Phases: construct table; parse twice; modify grammar "
              "(CF-ELEM ::= \"(\" CF-ELEM+ \")?\"); parse twice.\n\n");

  for (const SdfSample &Sample : sdfSamples()) {
    Workload W{buildSdf, Sample.Text};
    std::string Title = std::string(Sample.Name) + ", paper used " +
                        std::to_string(Sample.PaperTokenCount) + " tokens";
    runSection(H, Title.c_str(), "fig7_1/" + std::string(Sample.Name), W,
               /*Scaled=*/false);
  }

  // The regime the paper actually targets: a large grammar, small inputs.
  std::printf("-- scaled grammar: 12 SDF-sized module copies, input "
              "exercises one --\n");
  Workload Scaled{[](Grammar &G) { buildScaledSdf(G, 12); },
                  sdfSamples()[1].Text};
  runSection(H, "Exam.sdf against the 12x grammar", "fig7_1/scaled-12x",
             Scaled, /*Scaled=*/true);

  return H.finish();
}
