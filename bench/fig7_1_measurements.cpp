//===- bench/fig7_1_measurements.cpp - Fig 7.1: Yacc vs PG vs IPG ----------===//
///
/// \file
/// Regenerates Fig 7.1, the paper's headline measurement. For each of the
/// four SDF inputs and each generator we time the paper's six phases:
///
///   construct — build the parse table for the SDF grammar;
///   parse 1/2 — parse the input twice (trees are constructed, not
///               printed, exactly as in §7);
///   modify    — add the rule CF-ELEM ::= "(" CF-ELEM+ ")?" and update
///               the table;
///   parse 3/4 — parse the same input twice against the updated table.
///
/// Generators:
///   Yacc — our LALR(1) generator + deterministic LR driver. The paper's
///          9.6 s Yacc figure is dominated by compiling generated C
///          (8.3 s), which has no analogue here, and a 1989 SUN 3/60 made
///          even the ~100-state SDF table feel expensive. To reproduce
///          that *regime* honestly, a second section scales the grammar
///          (the paper: "we expect grammars that are much larger than the
///          grammar of SDF and input sentences to be quite small");
///   PG   — full LR(0) generation + Tomita parser (§4);
///   IPG  — lazy & incremental generation + Tomita parser (§5/§6).
///
/// Absolute times are hardware-bound; the shape checks assert the paper's
/// qualitative findings.
///
//===----------------------------------------------------------------------===//

#include "common/BenchSupport.h"

#include "core/Ipg.h"
#include "glr/GlrParser.h"
#include "lalr/LalrGen.h"
#include "lr/LrParser.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"

#include <cassert>
#include <cstdio>
#include <functional>

using namespace ipg;
using namespace ipg::bench;

namespace {

constexpr int Repetitions = 7;

/// The six per-phase times of one scenario run.
struct PhaseTimes {
  double Construct = 0, Parse1 = 0, Parse2 = 0, Modify = 0, Parse3 = 0,
         Parse4 = 0;
  double total() const {
    return Construct + Parse1 + Parse2 + Modify + Parse3 + Parse4;
  }
};

/// A measurement scenario: how to build the grammar, and what to parse.
struct Workload {
  std::function<void(Grammar &)> Build;
  std::string_view InputText;
};

/// Fills \p G with the SDF grammar of Appendix B.
void buildSdf(Grammar &G) {
  SdfLanguage Lang;
  Grammar::cloneActiveRules(Lang.grammar(), G);
}

/// Fills \p G with the SDF grammar plus \p Copies-1 renamed clones — the
/// "much larger grammar" regime of §7. Only the unprefixed copy is ever
/// exercised by input, so the lazy generator skips the clones entirely
/// while the batch generators must process them.
void buildScaledSdf(Grammar &G, int Copies) {
  SdfLanguage Base;
  const Grammar &From = Base.grammar();
  for (int Copy = 0; Copy < Copies; ++Copy) {
    std::string Prefix =
        Copy == 0 ? "" : "M" + std::to_string(Copy) + "#";
    auto Map = [&](SymbolId Sym) {
      if (Sym == From.startSymbol())
        return G.startSymbol();
      SymbolId Mapped =
          G.symbols().intern(Prefix + From.symbols().name(Sym));
      if (From.symbols().isNonterminal(Sym))
        G.symbols().markNonterminal(Mapped);
      return Mapped;
    };
    for (RuleId Id : From.activeRules()) {
      const Rule &R = From.rule(Id);
      std::vector<SymbolId> Rhs;
      Rhs.reserve(R.Rhs.size());
      for (SymbolId Sym : R.Rhs)
        Rhs.push_back(Map(Sym));
      G.addRule(Map(R.Lhs), std::move(Rhs));
    }
  }
}

/// The Fig 7.1 modification against the (unprefixed) CF-ELEM.
std::pair<SymbolId, std::vector<SymbolId>> modification(Grammar &G) {
  return {G.symbols().intern("CF-ELEM"),
          {G.symbols().intern("("), G.symbols().intern("CF-ELEM+"),
           G.symbols().intern(")?")}};
}

std::vector<SymbolId> tokenize(Grammar &G, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens = S.tokenizeToSymbols(Text, G);
  assert(Tokens && "sample must tokenize");
  return Tokens.take();
}

/// One Yacc scenario run: every phase regenerates from scratch, as Yacc
/// must (grammar change == rerun yacc + recompile).
PhaseTimes runYacc(const Workload &W) {
  PhaseTimes T;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);

  Stopwatch Watch;
  ItemSetGraph Graph(G);
  ParseTable Table = buildLalr1Table(Graph);
  resolveConflictsYaccStyle(Table, G);
  T.Construct = Watch.seconds();

  LrParser Parser(Table, G);
  for (double *Slot : {&T.Parse1, &T.Parse2}) {
    TreeArena Arena;
    Watch.reset();
    LrParseResult R = Parser.parse(Tokens, Arena);
    *Slot = Watch.seconds();
    assert(R.Accepted && "Yacc baseline must accept the sample");
    (void)R;
  }

  auto [Lhs, Rhs] = modification(G);
  Watch.reset();
  G.addRule(Lhs, std::move(Rhs));
  ItemSetGraph Graph2(G);
  ParseTable Table2 = buildLalr1Table(Graph2);
  resolveConflictsYaccStyle(Table2, G);
  T.Modify = Watch.seconds();

  LrParser Parser2(Table2, G);
  for (double *Slot : {&T.Parse3, &T.Parse4}) {
    TreeArena Arena;
    Watch.reset();
    LrParseResult R = Parser2.parse(Tokens, Arena);
    *Slot = Watch.seconds();
    assert(R.Accepted && "Yacc baseline must accept after modification");
    (void)R;
  }
  return T;
}

/// One PG scenario run: conventional full LR(0) generation, Tomita
/// parser; modification regenerates everything (§4).
PhaseTimes runPg(const Workload &W) {
  PhaseTimes T;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);

  Stopwatch Watch;
  ItemSetGraph Graph(G);
  Graph.generateAll();
  T.Construct = Watch.seconds();

  GlrParser Parser(Graph);
  for (double *Slot : {&T.Parse1, &T.Parse2}) {
    Forest F;
    Watch.reset();
    GlrResult R = Parser.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "PG must accept the sample");
    (void)R;
  }

  auto [Lhs, Rhs] = modification(G);
  Watch.reset();
  G.addRule(Lhs, std::move(Rhs));
  ItemSetGraph Graph2(G);
  Graph2.generateAll();
  T.Modify = Watch.seconds();

  GlrParser Parser2(Graph2);
  for (double *Slot : {&T.Parse3, &T.Parse4}) {
    Forest F;
    Watch.reset();
    GlrResult R = Parser2.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "PG must accept after modification");
    (void)R;
  }
  return T;
}

/// One IPG scenario run: lazy construction, incremental modification.
PhaseTimes runIpg(const Workload &W) {
  PhaseTimes T;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);

  Stopwatch Watch;
  Ipg Gen(G);
  T.Construct = Watch.seconds();

  for (double *Slot : {&T.Parse1, &T.Parse2}) {
    Forest F;
    Watch.reset();
    GlrResult R = Gen.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "IPG must accept the sample");
    (void)R;
  }

  auto [Lhs, Rhs] = modification(G);
  Watch.reset();
  Gen.addRule(Lhs, std::move(Rhs));
  T.Modify = Watch.seconds();

  for (double *Slot : {&T.Parse3, &T.Parse4}) {
    Forest F;
    Watch.reset();
    GlrResult R = Gen.parse(Tokens, F);
    *Slot = Watch.seconds();
    assert(R.Accepted && "IPG must accept after modification");
    (void)R;
  }
  return T;
}

/// Medians per phase over repeated scenario runs.
PhaseTimes medianPhases(PhaseTimes (*Run)(const Workload &),
                        const Workload &W) {
  std::vector<PhaseTimes> Samples;
  for (int I = 0; I < Repetitions; ++I)
    Samples.push_back(Run(W));
  auto MedianOf = [&](double PhaseTimes::*Member) {
    std::vector<double> Values;
    for (const PhaseTimes &S : Samples)
      Values.push_back(S.*Member);
    std::sort(Values.begin(), Values.end());
    return Values[Values.size() / 2];
  };
  PhaseTimes Result;
  Result.Construct = MedianOf(&PhaseTimes::Construct);
  Result.Parse1 = MedianOf(&PhaseTimes::Parse1);
  Result.Parse2 = MedianOf(&PhaseTimes::Parse2);
  Result.Modify = MedianOf(&PhaseTimes::Modify);
  Result.Parse3 = MedianOf(&PhaseTimes::Parse3);
  Result.Parse4 = MedianOf(&PhaseTimes::Parse4);
  return Result;
}

/// Non-timing ground truth for the laziness claims: expansion counts per
/// phase from one instrumented IPG run.
struct IpgWork {
  uint64_t ExpansionsParse1 = 0;
  uint64_t ExpansionsParse2 = 0;
  uint64_t ReExpansionsParse3 = 0;
};

IpgWork measureIpgWork(const Workload &W) {
  IpgWork Work;
  Grammar G;
  W.Build(G);
  std::vector<SymbolId> Tokens = tokenize(G, W.InputText);
  Ipg Gen(G);
  Gen.recognize(Tokens);
  Work.ExpansionsParse1 = Gen.stats().Expansions;
  Gen.recognize(Tokens);
  Work.ExpansionsParse2 = Gen.stats().Expansions - Work.ExpansionsParse1;
  auto [Lhs, Rhs] = modification(G);
  Gen.addRule(Lhs, std::move(Rhs));
  uint64_t Before = Gen.stats().ReExpansions;
  Gen.recognize(Tokens);
  Work.ReExpansionsParse3 = Gen.stats().ReExpansions - Before;
  return Work;
}

int runSection(const char *Title, const Workload &W, bool Scaled) {
  Grammar CountG;
  W.Build(CountG);
  size_t NumTokens = tokenize(CountG, W.InputText).size();
  std::printf("== %s (%zu tokens) ==\n", Title, NumTokens);

  PhaseTimes Yacc = medianPhases(runYacc, W);
  PhaseTimes Pg = medianPhases(runPg, W);
  PhaseTimes Ipg = medianPhases(runIpg, W);
  IpgWork Work = measureIpgWork(W);

  TextTable Table({"phase", "Yacc", "PG", "IPG"});
  auto Row = [&](const char *Name, double PhaseTimes::*M) {
    Table.addRow({Name, ms(Yacc.*M), ms(Pg.*M), ms(Ipg.*M)});
  };
  Row("construct", &PhaseTimes::Construct);
  Row("parse 1", &PhaseTimes::Parse1);
  Row("parse 2", &PhaseTimes::Parse2);
  Row("modify", &PhaseTimes::Modify);
  Row("parse 3", &PhaseTimes::Parse3);
  Row("parse 4", &PhaseTimes::Parse4);
  Table.addRow({"total", ms(Yacc.total()), ms(Pg.total()),
                ms(Ipg.total())});
  Table.print();
  std::printf("IPG work: %llu expansions in parse 1, %llu in parse 2, "
              "%llu re-expansions in parse 3\n",
              (unsigned long long)Work.ExpansionsParse1,
              (unsigned long long)Work.ExpansionsParse2,
              (unsigned long long)Work.ReExpansionsParse3);

  std::printf("shape checks (the paper's qualitative findings):\n");
  int Failures = 0;
  Failures += checkShape(Ipg.Construct < Pg.Construct / 10,
                         "IPG construction time is almost zero");
  Failures += checkShape(Pg.Construct < Yacc.Construct,
                         "PG (LR(0)) generates faster than Yacc (LALR(1))");
  Failures += checkShape(Ipg.Modify < Pg.Modify / 5,
                         "IPG modification is far cheaper than PG "
                         "regeneration");
  Failures += checkShape(Ipg.Modify < Yacc.Modify / 5,
                         "IPG modification is far cheaper than Yacc "
                         "regeneration");
  Failures += checkShape(Work.ExpansionsParse1 > 0 &&
                             Work.ExpansionsParse2 == 0,
                         "the first parse generates table parts, the "
                         "second generates none (§5)");
  Failures += checkShape(Work.ReExpansionsParse3 > 0,
                         "after MODIFY only re-expansions repair the "
                         "table (§6)");
  // The ground truth for §5's claim is the expansion counter above; the
  // timing check carries a generous noise band (sub-millisecond parses
  // on a ~100-state table jitter by tens of percent).
  Failures += checkShape(Ipg.Parse2 <= Ipg.Parse1 * 1.4,
                         "IPG second parse is not slower (within timing "
                         "noise)");
  Failures += checkShape(Yacc.Parse2 <= Pg.Parse2,
                         "deterministic Yacc parser is at least as fast "
                         "as the Tomita parser");
  // On the plain SDF grammar parsing dominates both totals, so IPG's
  // generation savings show as near-parity; the scaled section shows the
  // decisive win. Allow the noise band of sub-ms parse medians here.
  Failures += checkShape(Ipg.total() <= Pg.total() * 1.2,
                         "lazy+incremental is never beaten by conventional "
                         "generation within the Tomita family");
  if (Scaled) {
    Failures += checkShape(
        Ipg.Construct + Ipg.Parse1 < Yacc.Construct,
        "time-to-first-parse: IPG parses before Yacc finishes generating");
    Failures += checkShape(Ipg.total() < Yacc.total(),
                           "IPG wins the interactive scenario end-to-end "
                           "on a large grammar");
  }
  std::printf("\n");
  return Failures;
}

} // namespace

int main() {
  std::printf("Fig 7.1 — CPU time for Yacc (LALR(1)+LR), PG (LR(0)+Tomita) "
              "and IPG (lazy/incremental+Tomita)\n");
  std::printf("Phases: construct table; parse twice; modify grammar "
              "(CF-ELEM ::= \"(\" CF-ELEM+ \")?\"); parse twice.\n\n");

  int Failures = 0;
  for (const SdfSample &Sample : sdfSamples()) {
    Workload W{buildSdf, Sample.Text};
    std::string Title = std::string(Sample.Name) + ", paper used " +
                        std::to_string(Sample.PaperTokenCount) + " tokens";
    Failures += runSection(Title.c_str(), W, /*Scaled=*/false);
  }

  // The regime the paper actually targets: a large grammar, small inputs.
  std::printf("-- scaled grammar: 12 SDF-sized module copies, input "
              "exercises one --\n");
  Workload Scaled{[](Grammar &G) { buildScaledSdf(G, 12); },
                  sdfSamples()[1].Text};
  Failures += runSection("Exam.sdf against the 12x grammar", Scaled,
                         /*Scaled=*/true);

  std::printf(Failures == 0 ? "All shape checks passed.\n"
                            : "%d shape check(s) FAILED.\n",
              Failures);
  return Failures == 0 ? 0 : 1;
}
