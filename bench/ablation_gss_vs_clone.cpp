//===- bench/ablation_gss_vs_clone.cpp - §3.2: GSS vs cloned parsers -------===//
///
/// \file
/// Compares the paper's literal PAR-PARSE (parsers copied per action,
/// stacks sharing tails) against the graph-structured-stack formulation on
/// the ambiguity ladder. The cloned pool multiplies super-linearly with
/// ambiguity while the GSS merges stacks — the reason Tomita's formulation
/// (and the §7 footnote's "more efficient style") matters.
///
//===----------------------------------------------------------------------===//

#include "common/BenchSupport.h"

#include "glr/GlrParser.h"
#include "glr/ParParse.h"
#include "grammar/GrammarBuilder.h"

#include <cassert>
#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> ladder(const Grammar &G, unsigned Operands) {
  std::vector<SymbolId> Input;
  for (unsigned I = 0; I < Operands; ++I) {
    if (I != 0)
      Input.push_back(G.symbols().lookup("+"));
    Input.push_back(G.symbols().lookup("a"));
  }
  return Input;
}

} // namespace

int main() {
  std::printf("§3.2 — GSS Tomita vs the literal PAR-PARSE on E ::= E+E | a\n\n");
  TextTable Table({"operands", "GSS nodes", "GSS time", "clone copies",
                   "clone max pool", "clone time"});

  double LastGss = 0, LastClone = 0;
  uint64_t Copies4 = 0, Copies8 = 0;
  for (unsigned N : {2u, 4u, 6u, 8u, 10u}) {
    Grammar G;
    GrammarBuilder B(G);
    B.rule("E", {"E", "+", "E"});
    B.rule("E", {"a"});
    B.rule("START", {"E"});
    ItemSetGraph Graph(G);
    Graph.generateAll();
    std::vector<SymbolId> Input = ladder(G, N);

    GlrParser Gss(Graph);
    Stopwatch Watch;
    Forest F;
    GlrResult RG = Gss.parse(Input, F);
    double GssTime = Watch.seconds();
    assert(RG.Accepted);

    ParParser Clone(Graph, /*StepLimit=*/200'000'000);
    Watch.reset();
    ParParseResult RC = Clone.parse(Input);
    double CloneTime = Watch.seconds();
    assert(RC.Accepted && !RC.Diverged);

    Table.addRow({std::to_string(N), std::to_string(RG.GssNodes),
                  ms(GssTime), std::to_string(RC.Copies),
                  std::to_string(RC.MaxLiveParsers), ms(CloneTime)});
    LastGss = GssTime;
    LastClone = CloneTime;
    if (N == 4)
      Copies4 = RC.Copies;
    if (N == 8)
      Copies8 = RC.Copies;
  }
  Table.print();

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += checkShape(Copies8 > Copies4 * 8,
                         "cloned parsers multiply super-linearly");
  Failures += checkShape(LastGss < LastClone,
                         "the GSS beats cloning on ambiguous input");
  std::printf(Failures == 0 ? "\nAll shape checks passed.\n"
                            : "\n%d shape check(s) FAILED.\n",
              Failures);
  return Failures == 0 ? 0 : 1;
}
