//===- bench/ablation_gss_vs_clone.cpp - §3.2: GSS vs cloned parsers -------===//
///
/// \file
/// Compares the paper's literal PAR-PARSE (parsers copied per action,
/// stacks sharing tails) against the graph-structured-stack formulation on
/// the ambiguity ladder. The cloned pool multiplies super-linearly with
/// ambiguity while the GSS merges stacks — the reason Tomita's formulation
/// (and the §7 footnote's "more efficient style") matters.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "glr/GlrParser.h"
#include "glr/ParParse.h"
#include "grammar/GrammarBuilder.h"

#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> ladder(const Grammar &G, unsigned Operands) {
  std::vector<SymbolId> Input;
  for (unsigned I = 0; I < Operands; ++I) {
    if (I != 0)
      Input.push_back(G.symbols().lookup("+"));
    Input.push_back(G.symbols().lookup("a"));
  }
  return Input;
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("ablation_gss_vs_clone", argc, argv);
  std::printf("§3.2 — GSS Tomita vs the literal PAR-PARSE on E ::= E+E | a\n\n");
  TextTable Table({"operands", "GSS nodes", "GSS time", "clone copies",
                   "clone max pool", "clone time"});

  double LastGss = 0, LastClone = 0;
  bool AllAccept = true;
  uint64_t Copies4 = 0, Copies8 = 0;
  for (unsigned N : {2u, 4u, 6u, 8u, 10u}) {
    Grammar G;
    GrammarBuilder B(G);
    B.rule("E", {"E", "+", "E"});
    B.rule("E", {"a"});
    B.rule("START", {"E"});
    ItemSetGraph Graph(G);
    Graph.generateAll();
    std::vector<SymbolId> Input = ladder(G, N);

    std::string Key =
        "ablation_gss_vs_clone/operands_" + std::to_string(N);

    GlrParser Gss(Graph);
    Forest F;
    GlrResult RG = Gss.parse(Input, F);
    AllAccept &= RG.Accepted;
    double GssTime = H.measure(Key + "/gss", 5,
                               [&] {
                                 Forest Scratch;
                                 Gss.parse(Input, Scratch);
                               })
                         .Median;

    ParParser Clone(Graph, /*StepLimit=*/200'000'000);
    ParParseResult RC = Clone.parse(Input);
    AllAccept &= RC.Accepted && !RC.Diverged;
    double CloneTime =
        H.measure(Key + "/clone", 5, [&] { Clone.parse(Input); }).Median;

    Table.addRow({std::to_string(N), std::to_string(RG.GssNodes),
                  ms(GssTime), std::to_string(RC.Copies),
                  std::to_string(RC.MaxLiveParsers), ms(CloneTime)});
    H.report().addCounter(Key + "/gss_nodes", RG.GssNodes);
    H.report().addCounter(Key + "/clone_copies", RC.Copies);
    LastGss = GssTime;
    LastClone = CloneTime;
    if (N == 4)
      Copies4 = RC.Copies;
    if (N == 8)
      Copies8 = RC.Copies;
  }
  Table.print();

  std::printf("\nshape checks:\n");
  H.check(AllAccept, "both formulations accept every ladder rung "
                     "(timings measure real parses)");
  H.check(Copies8 > Copies4 * 8, "cloned parsers multiply super-linearly");
  H.check(LastGss < LastClone, "the GSS beats cloning on ambiguous input");
  return H.finish();
}
