# run_benchmarks.cmake — execute every bench driver with --emit-json and
# aggregate the per-driver documents into the suite file (BENCH_ipg.json).
#
# Invoked by the `ipg_bench_all` target; can also be run by hand:
#
#   cmake -DBENCH_BIN_DIR=build/bench -DBENCH_JSON_DIR=build/bench/json \
#         -DBENCH_OUTPUT=BENCH_ipg.json \
#         "-DBENCH_DRIVERS=lr_family;modify_cost;..." \
#         -P bench/run_benchmarks.cmake
#
# Environment:
#   IPG_BENCH_REDUCED=1  — pass --reduced to every driver (CI smoke mode).
#
# A driver exiting non-zero (failed shape checks) fails the whole run after
# all drivers have executed, so one regression does not hide another's
# numbers.

if(NOT DEFINED BENCH_BIN_DIR OR NOT DEFINED BENCH_JSON_DIR
   OR NOT DEFINED BENCH_OUTPUT OR NOT DEFINED BENCH_DRIVERS)
  message(FATAL_ERROR
    "run_benchmarks.cmake needs -DBENCH_BIN_DIR, -DBENCH_JSON_DIR, "
    "-DBENCH_OUTPUT and -DBENCH_DRIVERS")
endif()

set(reduced_flag "")
if(DEFINED ENV{IPG_BENCH_REDUCED} AND NOT "$ENV{IPG_BENCH_REDUCED}" STREQUAL ""
   AND NOT "$ENV{IPG_BENCH_REDUCED}" STREQUAL "0")
  set(reduced_flag "--reduced")
  message(STATUS "IPG_BENCH_REDUCED is set: running the smoke pass")
endif()

file(MAKE_DIRECTORY "${BENCH_JSON_DIR}")

set(failed_drivers "")
set(json_files "")
foreach(driver IN LISTS BENCH_DRIVERS)
  set(exe "${BENCH_BIN_DIR}/ipg_bench_${driver}")
  set(json "${BENCH_JSON_DIR}/${driver}.json")
  # Drop any document from a previous run first, so a driver that dies
  # before emitting cannot smuggle stale numbers into the aggregate.
  file(REMOVE "${json}")
  message(STATUS "running ipg_bench_${driver}")
  # Output streams through so the paper-style tables and [PASS] lines are
  # visible in the build log.
  execute_process(
    COMMAND "${exe}" "--emit-json=${json}" ${reduced_flag}
    RESULT_VARIABLE result)
  if(NOT result EQUAL 0)
    message(STATUS "ipg_bench_${driver} FAILED (exit ${result})")
    list(APPEND failed_drivers "${driver}")
  endif()
  if(EXISTS "${json}")
    list(APPEND json_files "${json}")
  else()
    message(STATUS "ipg_bench_${driver} emitted no JSON")
    list(APPEND failed_drivers "${driver}-json")
  endif()
endforeach()

# Refuse to aggregate a partial suite: overwriting ${BENCH_OUTPUT} with a
# short document would read as a healthy (but outdated/incomplete) run.
if(NOT failed_drivers STREQUAL "")
  message(FATAL_ERROR "bench drivers failed: ${failed_drivers}; "
    "${BENCH_OUTPUT} left untouched")
endif()

execute_process(
  COMMAND "${BENCH_BIN_DIR}/ipg_bench_aggregate" "${BENCH_OUTPUT}"
          ${json_files}
  RESULT_VARIABLE agg_result)
if(NOT agg_result EQUAL 0)
  message(FATAL_ERROR "ipg_bench_aggregate failed (exit ${agg_result})")
endif()
message(STATUS "benchmark suite written to ${BENCH_OUTPUT}")
