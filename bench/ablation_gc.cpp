//===- bench/ablation_gc.cpp - §6.2: garbage collection strategies ---------===//
///
/// \file
/// Regenerates §6.2's design discussion as numbers. An edit storm toggles
/// rules of the SDF grammar while parsing; we track live item sets under
/// three policies: refcounting only (the paper's), refcounting + periodic
/// mark-and-sweep (the paper's proposed fix for cycles), and no collection
/// at all (what a naive implementation would leak). The refcount policy
/// reclaims most garbage but strands cyclic clusters; mark-and-sweep
/// returns the graph to the fresh-generation footprint.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "core/Ipg.h"
#include "grammar/GrammarBuilder.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"

#include <cassert>
#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(SdfLanguage &Lang, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens =
      S.tokenizeToSymbols(Text, Lang.grammar());
  assert(Tokens && "sample must tokenize");
  return Tokens.take();
}

/// Runs the edit storm; returns (live sets at end, collected count).
struct StormOutcome {
  size_t LiveAtEnd;
  uint64_t Collected;
  double Seconds;
};

StormOutcome runStorm(bool UseMarkSweep) {
  SdfLanguage Lang;
  Grammar &G = Lang.grammar();
  std::vector<SymbolId> Input = tokenize(Lang, sdfSamples()[1].Text);
  Ipg Gen(G);
  Gen.generateAll();

  Stopwatch Watch;
  std::vector<RuleId> Rules = G.activeRules();
  int Round = 0;
  for (RuleId Rule : Rules) {
    if (G.rule(Rule).Lhs == G.startSymbol())
      continue;
    SymbolId Lhs = G.rule(Rule).Lhs;
    std::vector<SymbolId> Rhs = G.rule(Rule).Rhs;
    Gen.deleteRule(Lhs, Rhs);
    Gen.recognize(Input);
    Gen.addRule(Lhs, std::vector<SymbolId>(Rhs));
    Gen.recognize(Input);
    if (UseMarkSweep && ++Round % 8 == 0)
      Gen.collectGarbage();
  }
  if (UseMarkSweep)
    Gen.collectGarbage();
  return {Gen.graph().numLive(), Gen.stats().Collected, Watch.seconds()};
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("ablation_gc", argc, argv);
  std::printf("§6.2 — garbage collection under an edit storm over the SDF "
              "grammar\n(every rule deleted, reparsed, re-added, reparsed)\n\n");

  size_t FreshStates;
  {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    FreshStates = Graph.generateAll();
  }

  StormOutcome Refcount = runStorm(/*UseMarkSweep=*/false);
  StormOutcome MarkSweep = runStorm(/*UseMarkSweep=*/true);

  TextTable Table({"policy", "live sets at end", "sets reclaimed", "time"});
  Table.addRow({"fresh generation (reference)", std::to_string(FreshStates),
                "-", "-"});
  Table.addRow({"refcount only (paper §6.2)",
                std::to_string(Refcount.LiveAtEnd),
                std::to_string(Refcount.Collected), ms(Refcount.Seconds)});
  Table.addRow({"refcount + mark-sweep",
                std::to_string(MarkSweep.LiveAtEnd),
                std::to_string(MarkSweep.Collected), ms(MarkSweep.Seconds)});
  Table.print();

  // The targeted cyclic case of §6.2: the or-branch of the booleans graph
  // is a reference cycle (B-state <-> or-state). Deleting the or rule and
  // repairing only the reachable part strands the cycle — "our
  // implementation of garbage collection cannot yet handle circular
  // references" — and the mark-and-sweep collector reclaims it.
  std::printf("\ncyclic-leak microcase (the booleans grammar, delete "
              "'B ::= B or B'):\n");
  Grammar G;
  {
    GrammarBuilder B(G);
    B.rule("B", {"true"});
    B.rule("B", {"false"});
    B.rule("B", {"B", "or", "B"});
    B.rule("B", {"B", "and", "B"});
    B.rule("START", {"B"});
  }
  Ipg Gen(G);
  Gen.generateAll();
  size_t BeforeDelete = Gen.graph().numLive();
  Gen.deleteRule("B", {"B", "or", "B"});
  std::vector<SymbolId> Probe{G.symbols().lookup("true"),
                              G.symbols().lookup("and"),
                              G.symbols().lookup("true")};
  Gen.recognize(Probe); // Repairs the reachable part only.
  size_t AfterRefcount = Gen.graph().numLive();
  size_t Swept = Gen.collectGarbage();
  std::printf("  live sets: %zu before delete, %zu after refcount-only "
              "repair, %zu after mark-sweep (reclaimed %zu)\n",
              BeforeDelete, AfterRefcount, Gen.graph().numLive(), Swept);

  H.report().addCounter("ablation_gc/fresh_states", FreshStates);
  H.report().addCounter("ablation_gc/refcount/live_at_end",
                        Refcount.LiveAtEnd);
  H.report().addCounter("ablation_gc/refcount/collected",
                        Refcount.Collected);
  H.report().addScalar("ablation_gc/refcount/storm", Refcount.Seconds,
                       "seconds");
  H.report().addCounter("ablation_gc/mark_sweep/live_at_end",
                        MarkSweep.LiveAtEnd);
  H.report().addCounter("ablation_gc/mark_sweep/collected",
                        MarkSweep.Collected);
  H.report().addScalar("ablation_gc/mark_sweep/storm", MarkSweep.Seconds,
                       "seconds");
  H.report().addCounter("ablation_gc/cyclic_microcase/swept", Swept);

  std::printf("\nshape checks:\n");
  H.check(Refcount.Collected > 0, "refcounting reclaims acyclic garbage");
  H.check(Refcount.LiveAtEnd >= MarkSweep.LiveAtEnd,
          "mark-and-sweep never keeps more than refcounting");
  H.check(MarkSweep.LiveAtEnd <= FreshStates * 3 / 2,
          "with mark-and-sweep the graph stays near the fresh footprint");
  H.check(Swept > 0, "refcounting strands the cyclic or-branch; "
                     "mark-and-sweep reclaims it (§6.2)");
  return H.finish();
}
