//===- bench/modify_cost.cpp - §7: cost of ADD-RULE vs DELETE-RULE ---------===//
///
/// \file
/// Regenerates the §7 side observation: "addition or deletion of a rule
/// roughly takes the same time." For every rule of the SDF grammar (and
/// the Fig 7.1 modification rule) we measure, on a fully generated table:
/// the MODIFY time for deleting it, the re-parse that repairs the table,
/// and the same pair for adding it back — then compare the add and delete
/// distributions and put both against full regeneration.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "core/Ipg.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(SdfLanguage &Lang, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens =
      S.tokenizeToSymbols(Text, Lang.grammar());
  assert(Tokens && "sample must tokenize");
  return Tokens.take();
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("modify_cost", argc, argv);
  std::printf("§7 — ADD-RULE vs DELETE-RULE cost on the SDF grammar\n\n");

  SdfLanguage Lang;
  Grammar &G = Lang.grammar();
  std::vector<SymbolId> Input = tokenize(Lang, sdfSamples()[1].Text);
  Ipg Gen(G);
  Gen.generateAll();

  std::vector<double> DeleteTimes, AddTimes, DeleteRepair, AddRepair;
  // Toggle every non-START rule once: delete, reparse, re-add, reparse.
  std::vector<RuleId> Rules = G.activeRules();
  for (RuleId Rule : Rules) {
    if (G.rule(Rule).Lhs == G.startSymbol())
      continue;
    SymbolId Lhs = G.rule(Rule).Lhs;
    std::vector<SymbolId> Rhs = G.rule(Rule).Rhs;

    Stopwatch Watch;
    Gen.deleteRule(Lhs, Rhs);
    DeleteTimes.push_back(Watch.seconds());
    Watch.reset();
    Gen.recognize(Input); // Repair by need (result may be reject now).
    DeleteRepair.push_back(Watch.seconds());

    Watch.reset();
    Gen.addRule(Lhs, std::vector<SymbolId>(Rhs));
    AddTimes.push_back(Watch.seconds());
    Watch.reset();
    bool Accepted = Gen.recognize(Input);
    AddRepair.push_back(Watch.seconds());
    assert(Accepted && "restored grammar must accept again");
    (void)Accepted;
  }

  size_t RulesToggled = DeleteTimes.size();
  SampleStats DeleteStats = SampleStats::of(std::move(DeleteTimes));
  SampleStats AddStats = SampleStats::of(std::move(AddTimes));
  SampleStats DeleteRepairStats = SampleStats::of(std::move(DeleteRepair));
  SampleStats AddRepairStats = SampleStats::of(std::move(AddRepair));
  H.report().addTiming("modify_cost/delete_rule", DeleteStats);
  H.report().addTiming("modify_cost/delete_repair_parse",
                       DeleteRepairStats);
  H.report().addTiming("modify_cost/add_rule", AddStats);
  H.report().addTiming("modify_cost/add_repair_parse", AddRepairStats);
  double MedDelete = DeleteStats.Median, MedAdd = AddStats.Median;
  double MedDeleteRepair = DeleteRepairStats.Median,
         MedAddRepair = AddRepairStats.Median;

  // Non-incremental baseline for the same step: regenerate the whole
  // table, then run the same parse against it.
  double RegenAndParse =
      H.measure("modify_cost/regenerate_and_parse", 5,
                [&] {
                  SdfLanguage Fresh;
                  Scanner S;
                  configureSdfScanner(S);
                  Expected<std::vector<SymbolId>> Tokens =
                      S.tokenizeToSymbols(sdfSamples()[1].Text,
                                          Fresh.grammar());
                  ItemSetGraph Graph(Fresh.grammar());
                  Graph.generateAll();
                  GlrParser Parser(Graph);
                  Parser.recognize(*Tokens);
                })
          .Median;
  double RegenOnly = H.measure("modify_cost/regenerate", 5,
                               [&] {
                                 SdfLanguage Fresh;
                                 ItemSetGraph Graph(Fresh.grammar());
                                 Graph.generateAll();
                               })
                         .Median;

  TextTable Table({"operation", "MODIFY (median)", "repair parse (median)"});
  Table.addRow({"DELETE-RULE", ms(MedDelete), ms(MedDeleteRepair)});
  Table.addRow({"ADD-RULE", ms(MedAdd), ms(MedAddRepair)});
  Table.print();
  std::printf("\nnon-incremental baseline: regenerate %s, regenerate+parse "
              "%s\nrules toggled: %zu\n",
              ms(RegenOnly).c_str(), ms(RegenAndParse).c_str(),
              RulesToggled);
  std::printf("(note: the SDF table is only ~100 states on modern hardware; "
              "the paper expects\n grammars 'much larger than the grammar of "
              "SDF', where the gap widens further)\n");

  H.report().addCounter("modify_cost/rules_toggled", RulesToggled);

  std::printf("\nshape checks:\n");
  double Ratio = MedAdd > 0 && MedDelete > 0
                     ? std::max(MedAdd, MedDelete) /
                           std::min(MedAdd, MedDelete)
                     : 1.0;
  H.check(Ratio < 5.0, "addition and deletion cost roughly the same "
                       "(ratio " + formatSeconds(Ratio, 2) + ")");
  H.check(MedAdd < RegenOnly / 5,
          "MODIFY itself is negligible next to regeneration");
  H.check(MedAdd + MedAddRepair < RegenAndParse * 2,
          "modify + repair-parse is within 2x of regenerate + parse even "
          "on this tiny table");
  return H.finish();
}
