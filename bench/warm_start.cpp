//===- bench/warm_start.cpp - Snapshot warm start vs cold generation -------===//
///
/// \file
/// The snapshot subsystem's headline numbers, on the 12x-SDF grammar (the
/// "much larger than the grammar of SDF" regime of §7): cold full
/// generation vs. adopting a persisted graph (`Ipg::loadSnapshot`) in both
/// on-disk encodings — v1 (varint decode) and v2 (mmap + validate + pool
/// adoption, the zero-copy fast path) — and, the cross-process
/// extension of §6, repairing a *stale* snapshot whose grammar differs by
/// one rule vs. regenerating the modified grammar from scratch. Also pins
/// the byte-determinism contract the CI job relies on for both formats:
/// the same graph serializes to identical bytes, and a
/// fingerprint-matched save→load→save round trip reproduces each file
/// exactly.
///
/// The snapshots written here (`warm_start.snapshot` = v1,
/// `warm_start_v2.snapshot` = v2, in the working directory) double as the
/// CI determinism artifacts, alongside `warm_start_resaved.snapshot` /
/// `warm_start_v2_resaved.snapshot` — each format's save-after-load
/// output, which the CI job cmps against the original file (with the
/// flat-arena layout, save-after-load identity is a layout invariant,
/// not just a decode-encode symmetry).
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"
#include "common/ScaledSdf.h"

#include "core/Ipg.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"
#include "support/ByteStream.h"
#include "support/Trace.h"

#include <cstdio>
#include <string>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(Grammar &G, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens = S.tokenizeToSymbols(Text, G);
  if (!Tokens) {
    std::fprintf(stderr, "sample must tokenize: %s\n",
                 Tokens.error().str().c_str());
    std::exit(2);
  }
  return Tokens.take();
}

bool filesEqual(const std::string &A, const std::string &B) {
  Expected<std::vector<uint8_t>> BytesA = readFileBytes(A);
  Expected<std::vector<uint8_t>> BytesB = readFileBytes(B);
  return BytesA && BytesB && *BytesA == *BytesB;
}

/// Per-format save-side facts, pinned once per encoding.
struct SaveFacts {
  size_t Bytes = 0;
  bool SaveOk = false;
  bool SaveTwiceIdentical = false;
};

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("warm_start", argc, argv);
  std::printf("snapshot warm start — 12x-SDF grammar, Exam.sdf input\n\n");

  const std::string SnapV1 = "warm_start.snapshot";
  const std::string SnapV2 = "warm_start_v2.snapshot";
  const int Copies = 12;
  const std::string_view InputText = sdfSamples()[1].Text;

  // Produce both snapshots from the same fully generated graph, and pin
  // the serialize-twice byte-determinism contract per format.
  size_t ColdStates = 0;
  SaveFacts V1, V2;
  {
    Grammar G;
    buildScaledSdf(G, Copies);
    Ipg Gen(G);
    ColdStates = Gen.generateAll();
    auto SaveBoth = [&](const std::string &Path, SnapshotFormat Format,
                        SaveFacts &Facts) {
      Expected<size_t> Saved = Gen.saveSnapshot(Path, Format);
      Facts.SaveOk = static_cast<bool>(Saved);
      Facts.Bytes = Facts.SaveOk ? *Saved : 0;
      if (Gen.saveSnapshot("warm_start_again.snapshot", Format))
        Facts.SaveTwiceIdentical =
            filesEqual(Path, "warm_start_again.snapshot");
      std::remove("warm_start_again.snapshot");
    };
    SaveBoth(SnapV1, SnapshotFormat::V1, V1);
    SaveBoth(SnapV2, SnapshotFormat::V2, V2);
  }

  // Save cost per format, on a separate fully generated graph. v1 walks
  // every live set through a dense-index remap; v2 is a header plus a
  // memcpy of the pools — the flat-arena layout's save-side win.
  double SaveV1 = 0, SaveV2 = 0;
  {
    Grammar G;
    buildScaledSdf(G, Copies);
    Ipg Gen(G);
    Gen.generateAll();
    SaveV1 = H.measure("warm_start/snapshot_save_v1", 9, [&] {
                (void)Gen.saveSnapshot("warm_start_save_probe.snapshot",
                                       SnapshotFormat::V1);
              }).Median;
    SaveV2 = H.measure("warm_start/snapshot_save_v2", 9, [&] {
                (void)Gen.saveSnapshot("warm_start_save_probe.snapshot",
                                       SnapshotFormat::V2);
              }).Median;
    std::remove("warm_start_save_probe.snapshot");
  }

  // Cold baseline: build the grammar and generate the full table.
  double Cold = H.measure("warm_start/cold_generate", 9, [&] {
                   Grammar G;
                   buildScaledSdf(G, Copies);
                   ItemSetGraph Graph(G);
                   Graph.generateAll();
                 }).Median;

  // Warm starts: same grammar, graph adopted from each snapshot format.
  // v1 pays a per-record varint decode; v2's layout-match path is mmap +
  // validate + adopting the mapped arrays as the graph's pool bases.
  auto MeasureLoad = [&](const std::string &Name, const std::string &Path,
                         bool &LoadOk, bool &Matched, size_t &LoadedStates) {
    return H.measure(Name, 9, [&] {
              Grammar G;
              buildScaledSdf(G, Copies);
              Ipg Gen(G);
              Expected<SnapshotLoadResult> R = Gen.loadSnapshot(Path);
              LoadOk = LoadOk && static_cast<bool>(R);
              if (R) {
                Matched = R->FingerprintMatched;
                LoadedStates = R->StatesLoaded;
              }
            }).Median;
  };
  bool LoadV1Ok = true, MatchedV1 = false;
  bool LoadV2Ok = true, MatchedV2 = false;
  size_t LoadedStatesV1 = 0, LoadedStatesV2 = 0;
  double LoadV1 = MeasureLoad("warm_start/snapshot_load_v1", SnapV1, LoadV1Ok,
                              MatchedV1, LoadedStatesV1);
  double LoadV2 = MeasureLoad("warm_start/snapshot_load_v2", SnapV2, LoadV2Ok,
                              MatchedV2, LoadedStatesV2);

  // Round-trip determinism and parse equivalence of the adopted graphs.
  bool RoundTripV1 = false, RoundTripV2 = false, WarmParseOk = false;
  {
    // The resaved files are left in place on purpose: the CI
    // snapshot-determinism job cmps them against the originals.
    auto RoundTrip = [&](const std::string &Path, const std::string &Resaved,
                         SnapshotFormat Format, bool CheckParse) {
      Grammar G;
      buildScaledSdf(G, Copies);
      Ipg Gen(G);
      bool Identical = false;
      if (Gen.loadSnapshot(Path)) {
        if (Gen.saveSnapshot(Resaved, Format))
          Identical = filesEqual(Path, Resaved);
        if (CheckParse)
          WarmParseOk = Gen.recognize(tokenize(G, InputText));
      }
      return Identical;
    };
    RoundTripV1 =
        RoundTrip(SnapV1, "warm_start_resaved.snapshot", SnapshotFormat::V1,
                  false);
    RoundTripV2 = RoundTrip(SnapV2, "warm_start_v2_resaved.snapshot",
                            SnapshotFormat::V2, true);
  }

  // Stale repair: the live grammar gained one rule since the snapshot was
  // taken. loadSnapshot decodes the old graph and replays the delta
  // through ADD-RULE; the parse re-expands only what the §6 MODIFY
  // invalidated. The *timed* scenario keeps loading the v1 file so the
  // `stale_repair_parse` trajectory stays comparable across PRs (stale
  // loads decode either way — zero-copy needs a layout match); the v2
  // stale path is verified untimed below with the same §6 evidence.
  std::vector<SymbolId> ModifiedTokens;
  {
    Grammar G;
    buildScaledSdf(G, Copies);
    auto [MLhs, MRhs] = scaledSdfModification(G);
    G.addRule(MLhs, std::move(MRhs));
    ModifiedTokens = tokenize(G, InputText);
  }
  bool StaleLoadOk = true, StaleMatched = true, StaleParseOk = true;
  size_t RulesAdded = 0, RulesRemoved = 0;
  uint64_t RepairReExpansions = 0;
  double Repair =
      H.measure("warm_start/stale_repair_parse", 9, [&] {
         Grammar G;
         buildScaledSdf(G, Copies);
         auto [MLhs, MRhs] = scaledSdfModification(G);
         G.addRule(MLhs, std::move(MRhs));
         Ipg Gen(G);
         Expected<SnapshotLoadResult> R = Gen.loadSnapshot(SnapV1);
         StaleLoadOk = StaleLoadOk && static_cast<bool>(R);
         if (R) {
           StaleMatched = R->FingerprintMatched;
           RulesAdded = R->RulesAdded;
           RulesRemoved = R->RulesRemoved;
         }
         StaleParseOk = StaleParseOk && Gen.recognize(ModifiedTokens);
         RepairReExpansions = Gen.stats().ReExpansions;
       }).Median;

  // The v2 stale path, untimed: same one-rule delta, same bounded
  // re-expansion contract, through the flat decode fallback. Under
  // --trace, every §6 re-expansion emits an "lr.reexpand" span, so the
  // tracer must agree with the sharded counter — the cross-check that
  // keeps the trace trustworthy as §6 evidence.
  bool StaleV2Ok = false, StaleV2ParseOk = false;
  size_t RulesAddedV2 = 0;
  uint64_t RepairReExpansionsV2 = 0;
  uint64_t ReExpandSpansBefore =
      trace::enabled() ? trace::eventCount("lr.reexpand") : 0;
  {
    Grammar G;
    buildScaledSdf(G, Copies);
    auto [MLhs, MRhs] = scaledSdfModification(G);
    G.addRule(MLhs, std::move(MRhs));
    Ipg Gen(G);
    Expected<SnapshotLoadResult> R = Gen.loadSnapshot(SnapV2);
    if (R) {
      StaleV2Ok = !R->FingerprintMatched;
      RulesAddedV2 = R->RulesAdded + R->RulesRemoved;
      StaleV2ParseOk = Gen.recognize(ModifiedTokens);
      RepairReExpansionsV2 = Gen.stats().ReExpansions;
    }
  }

  // The non-incremental answer to the same situation: regenerate the
  // modified grammar from scratch, then parse.
  double Regen = H.measure("warm_start/cold_regen_modified_parse", 9, [&] {
                    Grammar G;
                    buildScaledSdf(G, Copies);
                    auto [MLhs, MRhs] = scaledSdfModification(G);
                    G.addRule(MLhs, std::move(MRhs));
                    Ipg Gen(G);
                    Gen.generateAll();
                    Gen.recognize(ModifiedTokens);
                  }).Median;

  TextTable Table({"scenario", "median", "vs cold"});
  Table.addRow({"cold generateAll", ms(Cold), "1.00x"});
  Table.addRow({"snapshot save v1 (varint encode)", ms(SaveV1), "-"});
  Table.addRow({"snapshot save v2 (pool memcpy)", ms(SaveV2),
                formatSeconds(SaveV1 / SaveV2, 2) + "x vs v1"});
  Table.addRow({"snapshot load v1 (decode)", ms(LoadV1),
                formatSeconds(Cold / LoadV1, 2) + "x faster"});
  Table.addRow({"snapshot load v2 (zero-copy)", ms(LoadV2),
                formatSeconds(Cold / LoadV2, 2) + "x faster"});
  Table.addRow({"stale repair + parse (v1)", ms(Repair), "-"});
  Table.addRow({"regenerate + parse", ms(Regen),
                formatSeconds(Regen / Repair, 2) + "x slower than repair"});
  Table.print();
  std::printf("\nsnapshot: v1 %zu bytes, v2 %zu bytes, %zu states; repair "
              "delta: +%zu/-%zu rules, %llu re-expansions\n",
              V1.Bytes, V2.Bytes, ColdStates, RulesAdded, RulesRemoved,
              static_cast<unsigned long long>(RepairReExpansions));

  H.report().addCounter("warm_start/snapshot_bytes", V1.Bytes);
  H.report().addCounter("warm_start/snapshot_bytes_v2", V2.Bytes);
  H.report().addCounter("warm_start/full_table_states", ColdStates);
  H.report().addCounter("warm_start/repair_rules_added", RulesAdded);
  H.report().addCounter("warm_start/repair_rules_removed", RulesRemoved);
  H.report().addCounter("warm_start/repair_re_expansions",
                        RepairReExpansions);
  H.report().addScalar("warm_start/load_speedup_vs_cold", Cold / LoadV1,
                       "ratio");
  H.report().addScalar("warm_start/load_speedup_vs_cold_v2", Cold / LoadV2,
                       "ratio");
  H.report().addScalar("warm_start/v2_load_speedup_vs_v1", LoadV1 / LoadV2,
                       "ratio");
  H.report().addScalar("warm_start/repair_speedup_vs_regen", Regen / Repair,
                       "ratio");
  H.report().addScalar("warm_start/v2_save_speedup_vs_v1", SaveV1 / SaveV2,
                       "ratio");

  std::printf("\nshape checks:\n");
  H.check(V1.SaveOk && V1.Bytes > 0, "v1 snapshot written");
  H.check(V2.SaveOk && V2.Bytes > 0, "v2 snapshot written");
  H.check(V1.SaveTwiceIdentical,
          "serializing the same graph twice is byte-identical (v1)");
  H.check(V2.SaveTwiceIdentical,
          "serializing the same graph twice is byte-identical (v2)");
  H.check(LoadV1Ok && MatchedV1 && LoadV2Ok && MatchedV2,
          "identical grammar fingerprint-matches both snapshot formats");
  H.check(LoadedStatesV1 == ColdStates && LoadedStatesV2 == ColdStates,
          "snapshot load materializes the full generated table");
  H.check(RoundTripV1 && RoundTripV2,
          "fingerprint-matched save->load->save reproduces each file");
  H.check(WarmParseOk, "warm-started graph parses Exam.sdf");
  // Both formats share the container overhead (fingerprints, checksum,
  // atomic file write), and v1's varint body is smaller on disk, so the
  // formats finish within noise of each other end-to-end; what the flat
  // arena guarantees is that v2's graph serialization is a memcpy, i.e.
  // save cost can never blow past v1's per-record encode.
  H.check(H.reduced() || SaveV2 < 2 * SaveV1,
          "v2 pool-memcpy save stays within 2x of the v1 varint encode");
  // Wall-clock comparisons tolerate noise in the reduced (CI smoke) pass:
  // three repetitions on a shared runner cannot support a strict
  // inequality; the trajectory numbers come from full runs. In full runs
  // the claims are strict — and the v2 zero-copy load must restore the
  // decisive warm-start margin over cold generation that PR 4's fast
  // regeneration erased for v1 (v1 decode holds parity-or-better; the §6
  // bounded-work evidence stays the re-expansion counter checked below).
  double NoiseBand = H.reduced() ? 1.5 : 1.15;
  H.check(LoadV1 < Cold * NoiseBand,
          "v1 snapshot load is at least on par with cold full generation");
  H.check(H.reduced() ? LoadV2 < Cold * NoiseBand : Cold / LoadV2 >= 1.3,
          "v2 zero-copy load beats cold full generation by >=1.3x "
          "(full runs)");
  H.check(H.reduced() || LoadV2 < LoadV1,
          "v2 zero-copy load beats the v1 decode path (full runs)");
  H.check(StaleLoadOk && !StaleMatched && RulesAdded == 1 &&
              RulesRemoved == 0,
          "stale snapshot is repaired via the one-rule delta, not "
          "discarded");
  H.check(StaleParseOk, "repaired graph parses the modified language");
  H.check(RepairReExpansions < ColdStates / 4,
          "repair re-expands a small fraction of the table");
  H.check(Repair < Regen * NoiseBand,
          "stale-snapshot repair is at least on par with full regeneration");
  H.check(StaleV2Ok && RulesAddedV2 == 1 && StaleV2ParseOk,
          "stale v2 snapshot repairs via the same one-rule delta");
  H.check(RepairReExpansionsV2 == RepairReExpansions,
          "v2 stale repair re-expands exactly as many states as v1");
  if (trace::enabled()) {
    uint64_t ReExpandSpans =
        trace::eventCount("lr.reexpand") - ReExpandSpansBefore;
    H.check(ReExpandSpans == RepairReExpansionsV2,
            "trace lr.reexpand span count equals the v2 stale probe's "
            "re-expansion counter");
  }
  return H.finish();
}
