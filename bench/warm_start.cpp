//===- bench/warm_start.cpp - Snapshot warm start vs cold generation -------===//
///
/// \file
/// The snapshot subsystem's headline numbers, on the 12x-SDF grammar (the
/// "much larger than the grammar of SDF" regime of §7): cold full
/// generation vs. adopting a persisted graph (`Ipg::loadSnapshot`), and —
/// the cross-process extension of §6 — repairing a *stale* snapshot whose
/// grammar differs by one rule vs. regenerating the modified grammar from
/// scratch. Also pins the byte-determinism contract the CI job relies on:
/// the same graph serializes to identical bytes, and a fingerprint-matched
/// save→load→save round trip reproduces the file exactly.
///
/// The snapshot written here (`warm_start.snapshot` in the working
/// directory) doubles as the CI determinism artifact.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"
#include "common/ScaledSdf.h"

#include "core/Ipg.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"
#include "support/ByteStream.h"

#include <cstdio>
#include <string>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(Grammar &G, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens = S.tokenizeToSymbols(Text, G);
  if (!Tokens) {
    std::fprintf(stderr, "sample must tokenize: %s\n",
                 Tokens.error().str().c_str());
    std::exit(2);
  }
  return Tokens.take();
}

bool filesEqual(const std::string &A, const std::string &B) {
  Expected<std::vector<uint8_t>> BytesA = readFileBytes(A);
  Expected<std::vector<uint8_t>> BytesB = readFileBytes(B);
  return BytesA && BytesB && *BytesA == *BytesB;
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("warm_start", argc, argv);
  std::printf("snapshot warm start — 12x-SDF grammar, Exam.sdf input\n\n");

  const std::string SnapPath = "warm_start.snapshot";
  const int Copies = 12;
  const std::string_view InputText = sdfSamples()[1].Text;

  // Produce the snapshot from a fully generated graph, and pin the
  // serialize-twice byte-determinism contract.
  size_t ColdStates = 0, SnapshotBytes = 0;
  bool SaveOk = false, SaveTwiceIdentical = false;
  {
    Grammar G;
    buildScaledSdf(G, Copies);
    Ipg Gen(G);
    ColdStates = Gen.generateAll();
    Expected<size_t> Saved = Gen.saveSnapshot(SnapPath);
    SaveOk = static_cast<bool>(Saved);
    SnapshotBytes = SaveOk ? *Saved : 0;
    if (Gen.saveSnapshot("warm_start_again.snapshot"))
      SaveTwiceIdentical = filesEqual(SnapPath, "warm_start_again.snapshot");
    std::remove("warm_start_again.snapshot");
  }

  // Cold baseline: build the grammar and generate the full table.
  double Cold = H.measure("warm_start/cold_generate", 9, [&] {
                   Grammar G;
                   buildScaledSdf(G, Copies);
                   ItemSetGraph Graph(G);
                   Graph.generateAll();
                 }).Median;

  // Warm start: same grammar, graph adopted from the snapshot.
  bool LoadOk = true, Matched = false;
  size_t LoadedStates = 0;
  double Load = H.measure("warm_start/snapshot_load", 9, [&] {
                   Grammar G;
                   buildScaledSdf(G, Copies);
                   Ipg Gen(G);
                   Expected<SnapshotLoadResult> R = Gen.loadSnapshot(SnapPath);
                   LoadOk = LoadOk && static_cast<bool>(R);
                   if (R) {
                     Matched = R->FingerprintMatched;
                     LoadedStates = R->StatesLoaded;
                   }
                 }).Median;

  // Round-trip determinism and parse equivalence of the adopted graph.
  bool RoundTripIdentical = false, WarmParseOk = false;
  {
    Grammar G;
    buildScaledSdf(G, Copies);
    Ipg Gen(G);
    if (Gen.loadSnapshot(SnapPath)) {
      if (Gen.saveSnapshot("warm_start_rt.snapshot"))
        RoundTripIdentical = filesEqual(SnapPath, "warm_start_rt.snapshot");
      std::remove("warm_start_rt.snapshot");
      WarmParseOk = Gen.recognize(tokenize(G, InputText));
    }
  }

  // Stale repair: the live grammar gained one rule since the snapshot was
  // taken. loadSnapshot adopts the old graph and replays the delta through
  // ADD-RULE; the parse re-expands only what the §6 MODIFY invalidated.
  std::vector<SymbolId> ModifiedTokens;
  {
    Grammar G;
    buildScaledSdf(G, Copies);
    auto [MLhs, MRhs] = scaledSdfModification(G);
    G.addRule(MLhs, std::move(MRhs));
    ModifiedTokens = tokenize(G, InputText);
  }
  bool StaleLoadOk = true, StaleMatched = true, StaleParseOk = true;
  size_t RulesAdded = 0, RulesRemoved = 0;
  uint64_t RepairReExpansions = 0;
  double Repair =
      H.measure("warm_start/stale_repair_parse", 9, [&] {
         Grammar G;
         buildScaledSdf(G, Copies);
         auto [MLhs, MRhs] = scaledSdfModification(G);
         G.addRule(MLhs, std::move(MRhs));
         Ipg Gen(G);
         Expected<SnapshotLoadResult> R = Gen.loadSnapshot(SnapPath);
         StaleLoadOk = StaleLoadOk && static_cast<bool>(R);
         if (R) {
           StaleMatched = R->FingerprintMatched;
           RulesAdded = R->RulesAdded;
           RulesRemoved = R->RulesRemoved;
         }
         StaleParseOk = StaleParseOk && Gen.recognize(ModifiedTokens);
         RepairReExpansions = Gen.stats().ReExpansions;
       }).Median;

  // The non-incremental answer to the same situation: regenerate the
  // modified grammar from scratch, then parse.
  double Regen = H.measure("warm_start/cold_regen_modified_parse", 9, [&] {
                    Grammar G;
                    buildScaledSdf(G, Copies);
                    auto [MLhs, MRhs] = scaledSdfModification(G);
                    G.addRule(MLhs, std::move(MRhs));
                    Ipg Gen(G);
                    Gen.generateAll();
                    Gen.recognize(ModifiedTokens);
                  }).Median;

  TextTable Table({"scenario", "median", "vs cold"});
  Table.addRow({"cold generateAll", ms(Cold), "1.00x"});
  Table.addRow({"snapshot load (matched)", ms(Load),
                formatSeconds(Cold / Load, 2) + "x faster"});
  Table.addRow({"stale repair + parse", ms(Repair), "-"});
  Table.addRow({"regenerate + parse", ms(Regen),
                formatSeconds(Regen / Repair, 2) + "x slower than repair"});
  Table.print();
  std::printf("\nsnapshot: %zu bytes, %zu states; repair delta: +%zu/-%zu "
              "rules, %llu re-expansions\n",
              SnapshotBytes, ColdStates, RulesAdded, RulesRemoved,
              static_cast<unsigned long long>(RepairReExpansions));

  H.report().addCounter("warm_start/snapshot_bytes", SnapshotBytes);
  H.report().addCounter("warm_start/full_table_states", ColdStates);
  H.report().addCounter("warm_start/repair_rules_added", RulesAdded);
  H.report().addCounter("warm_start/repair_rules_removed", RulesRemoved);
  H.report().addCounter("warm_start/repair_re_expansions",
                        RepairReExpansions);
  H.report().addScalar("warm_start/load_speedup_vs_cold", Cold / Load,
                       "ratio");
  H.report().addScalar("warm_start/repair_speedup_vs_regen", Regen / Repair,
                       "ratio");

  std::printf("\nshape checks:\n");
  H.check(SaveOk && SnapshotBytes > 0, "snapshot written");
  H.check(SaveTwiceIdentical,
          "serializing the same graph twice is byte-identical");
  H.check(LoadOk && Matched,
          "identical grammar fingerprint-matches its snapshot");
  H.check(LoadedStates == ColdStates,
          "snapshot load materializes the full generated table");
  H.check(RoundTripIdentical,
          "fingerprint-matched save->load->save reproduces the file");
  H.check(WarmParseOk, "warm-started graph parses Exam.sdf");
  // The timing comparisons tolerate noise in the reduced (CI smoke) pass:
  // three repetitions on a shared runner cannot support a strict
  // inequality, and the trajectory numbers come from full runs anyway.
  // Since the ACTION/GOTO hot-path work (allocation-free queries, EXPAND
  // scratch reuse), full generation at this scale is fast enough that
  // load and repair no longer hold the decisive wall-clock margin PR 3
  // measured: deserialization is now the bottleneck of the warm-start
  // path (mmap/zero-copy load is the named next step in ROADMAP.md). The
  // §6 claim's ground truth is the bounded *work* — the re-expansion
  // counter checked above — so the full-run wall-clock checks assert
  // parity-or-better rather than strict victory.
  double NoiseBand = H.reduced() ? 1.5 : 1.15;
  H.check(Load < Cold * NoiseBand,
          "snapshot load is at least on par with cold full generation");
  H.check(StaleLoadOk && !StaleMatched && RulesAdded == 1 &&
              RulesRemoved == 0,
          "stale snapshot is repaired via the one-rule delta, not "
          "discarded");
  H.check(StaleParseOk, "repaired graph parses the modified language");
  H.check(RepairReExpansions < ColdStates / 4,
          "repair re-expands a small fraction of the table");
  H.check(Repair < Regen * NoiseBand,
          "stale-snapshot repair is at least on par with full regeneration");
  return H.finish();
}
