//===- bench/parse_server.cpp - Concurrent grammar server throughput ------===//
///
/// \file
/// The concurrent grammar server on the 12x-SDF grammar, Exam.sdf input —
/// the multi-user regime §2's "grammar server" sketch implies but the
/// paper never measures. Three questions:
///
///   * What does a warm single-session parse cost through the server
///     (epoch acquire + shared-graph GLR) vs. a plain `Ipg` parse? This is
///     the only wall-clock *timing* the regression gate tracks.
///   * How does parse throughput scale when 2 and 4 sessions share ONE
///     lazily-expanded item-set graph? Readers take no locks on the
///     Complete fast path, so scaling should be near-linear; the 4-thread
///     speedup is the headline shape check.
///   * What survives a mixed parse/modify workload — readers parsing at
///     full rate while a writer repeatedly forks new epochs through the
///     copy-on-write MODIFY path? Every parse must still accept: the base
///     language is present in every generation, and in-flight sessions
///     finish against their pinned epoch.
///
/// Thread-count throughputs are emitted as gate-exempt scalars
/// (parses_per_sec): multi-thread wall clock on a shared CI runner is too
/// noisy for the 25% regression band, which gates `unit == "seconds"`
/// medians only.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"
#include "common/ScaledSdf.h"

#include "core/Ipg.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"
#include "server/GrammarServer.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>
#include <latch>
#include <string>
#include <thread>
#include <vector>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(Grammar &G, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens = S.tokenizeToSymbols(Text, G);
  if (!Tokens) {
    std::fprintf(stderr, "sample must tokenize: %s\n",
                 Tokens.error().str().c_str());
    std::exit(2);
  }
  return Tokens.take();
}

/// Wall-clock parse throughput with \p Threads sessions over one shared
/// (pre-warmed) graph: every thread parses \p PerThread times; all start
/// together on a latch. Returns parses per second.
double throughputAt(GrammarServer &Server, const std::vector<SymbolId> &Input,
                    unsigned Threads, int PerThread, std::atomic<int> &Failures) {
  std::latch Go(Threads + 1);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&] {
      ParseSession S = Server.openSession();
      Go.arrive_and_wait();
      for (int I = 0; I < PerThread; ++I)
        if (!S.recognize(Input))
          Failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  Go.arrive_and_wait();
  Stopwatch W;
  for (std::thread &T : Workers)
    T.join();
  double Seconds = W.seconds();
  return Seconds > 0 ? (double(Threads) * PerThread) / Seconds : 0.0;
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("parse_server", argc, argv);
  std::printf("concurrent grammar server — 12x-SDF grammar, Exam.sdf input\n\n");

  const int Copies = 12;
  const std::string_view InputText = sdfSamples()[1].Text;
  const unsigned Hw = std::thread::hardware_concurrency();
  const int PerThread = H.reduced() ? 15 : 150;
  const int Edits = H.reduced() ? 2 : 6;

  // One grammar feeds everything: the modification symbols are interned
  // BEFORE the server clones it, so the (id-preserving) epochs all speak
  // the same symbol ids and the token stream stays valid throughout.
  Grammar G;
  buildScaledSdf(G, Copies);
  auto [MLhs, MRhs] = scaledSdfModification(G);
  std::vector<SymbolId> Input = tokenize(G, InputText);

  // Ground truth for the accept answer, single-threaded plain Ipg.
  bool SoloOk = false;
  {
    Grammar G1;
    buildScaledSdf(G1, Copies);
    Ipg Solo(G1);
    SoloOk = Solo.recognize(Input);
  }

  GrammarServer Server(G);

  // Warm the shared graph once, then time the steady-state session parse.
  // This is the gated wall-clock number: single-threaded, deterministic.
  bool WarmOk = false;
  {
    ParseSession S = Server.openSession();
    WarmOk = S.recognize(Input);
  }
  double WarmParse = H.measure("parse_server/warm_session_parse", 9, [&] {
                        ParseSession S = Server.openSession();
                        S.recognize(Input);
                      }).Median;

  // Parse throughput at 1/2/4 sessions over the one warm graph. Scalars,
  // not gated timings (see file comment).
  std::atomic<int> Failures{0};
  double Tput1 = throughputAt(Server, Input, 1, PerThread, Failures);
  double Tput2 = throughputAt(Server, Input, 2, PerThread, Failures);
  double Tput4 = throughputAt(Server, Input, 4, PerThread, Failures);
  double Speedup2 = Tput1 > 0 ? Tput2 / Tput1 : 0.0;
  double Speedup4 = Tput1 > 0 ? Tput4 / Tput1 : 0.0;

  // Mixed parse/modify: readers parse flat out while the writer forks
  // epochs by toggling the Fig 7.1 rule. The base language is active in
  // every generation, so every parse must accept whichever epoch the
  // session pinned.
  std::atomic<int> MixedFailures{0};
  std::atomic<long> MixedParses{0};
  double MixedSeconds = 0.0;
  uint64_t GenBefore = Server.generation();
  {
    unsigned Readers = Hw >= 4 ? 3 : 1;
    std::atomic<bool> Done{false};
    std::latch Go(Readers + 1);
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < Readers; ++T) {
      Threads.emplace_back([&] {
        Go.arrive_and_wait();
        while (!Done.load(std::memory_order_acquire)) {
          ParseSession S = Server.openSession();
          if (!S.recognize(Input))
            MixedFailures.fetch_add(1, std::memory_order_relaxed);
          MixedParses.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    Go.arrive_and_wait();
    Stopwatch W;
    for (int E = 0; E < Edits; ++E) {
      bool Changed = (E % 2 == 0)
                         ? Server.addRule(MLhs, std::vector<SymbolId>(MRhs))
                         : Server.removeRule(MLhs, MRhs);
      if (!Changed)
        MixedFailures.fetch_add(1, std::memory_order_relaxed);
    }
    Done.store(true, std::memory_order_release);
    for (std::thread &T : Threads)
      T.join();
    MixedSeconds = W.seconds();
  }
  uint64_t GenAfter = Server.generation();

  TextTable Table({"scenario", "result"});
  Table.addRow({"warm session parse (1 thread)", ms(WarmParse)});
  Table.addRow({"throughput 1 thread",
                formatSeconds(Tput1, 1) + " parses/s"});
  Table.addRow({"throughput 2 threads", formatSeconds(Tput2, 1) +
                                            " parses/s (" +
                                            formatSeconds(Speedup2, 2) + "x)"});
  Table.addRow({"throughput 4 threads", formatSeconds(Tput4, 1) +
                                            " parses/s (" +
                                            formatSeconds(Speedup4, 2) + "x)"});
  Table.addRow({"mixed parse/modify",
                std::to_string(MixedParses.load()) + " parses across " +
                    std::to_string(GenAfter - GenBefore) + " epoch forks"});
  Table.print();
  std::printf("\nhardware threads: %u; live epochs at exit: %zu\n", Hw,
              Server.liveEpochs());

  H.report().addScalar("parse_server/throughput_1t", Tput1, "parses_per_sec");
  H.report().addScalar("parse_server/throughput_2t", Tput2, "parses_per_sec");
  H.report().addScalar("parse_server/throughput_4t", Tput4, "parses_per_sec");
  H.report().addScalar("parse_server/speedup_2t", Speedup2, "ratio");
  H.report().addScalar("parse_server/speedup_4t", Speedup4, "ratio");
  H.report().addScalar("parse_server/mixed_parses_per_sec",
                       MixedSeconds > 0 ? MixedParses.load() / MixedSeconds
                                        : 0.0,
                       "parses_per_sec");
  H.report().addCounter("parse_server/mixed_epoch_forks", GenAfter - GenBefore);

  std::printf("\nshape checks:\n");
  H.check(SoloOk, "plain Ipg accepts Exam.sdf on the 12x-SDF grammar");
  H.check(WarmOk, "server session accepts the same input");
  H.check(Failures.load() == 0,
          "every throughput-phase parse accepted on the shared graph");
  // Scaling claims need the cores to exist, and the reduced (CI smoke)
  // pass runs too little work per thread to support a strict bound on a
  // shared runner; full runs assert the headline >=2x at 4 threads.
  if (Hw >= 4 && !H.reduced()) {
    H.check(Speedup4 >= 2.0,
            "4 sessions over one graph reach >=2x the 1-session throughput");
    H.check(Speedup2 >= 1.3,
            "2 sessions over one graph reach >=1.3x the 1-session throughput");
  } else {
    H.check(Tput4 > 0, "4-session throughput measured (scaling bound needs "
                       ">=4 hardware threads and a full run)");
  }
  H.check(MixedFailures.load() == 0,
          "every parse during live modification accepted its pinned epoch");
  H.check(GenAfter - GenBefore == uint64_t(Edits),
          "every writer edit forked exactly one epoch");
  H.check(Server.liveEpochs() == 1,
          "displaced epochs were reclaimed once sessions drained");
  return H.finish();
}
