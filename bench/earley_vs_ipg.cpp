//===- bench/earley_vs_ipg.cpp - §7: the comparison the paper skipped ------===//
///
/// \file
/// §7: "A comparison of IPG with Earley's parsing algorithm would have
/// been appropriate here ... From a theoretical viewpoint, we expect
/// Earley's algorithm to have better generation performance, but a much
/// inferior parsing performance." Both systems recognize the same class
/// of grammars; this bench runs them (plus the deterministic Yacc-style
/// parser as a floor) on the four SDF inputs and checks the expectation.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "core/Ipg.h"
#include "earley/EarleyParser.h"
#include "lalr/LalrGen.h"
#include "lr/LrParser.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"

#include <cassert>
#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(SdfLanguage &Lang, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens =
      S.tokenizeToSymbols(Text, Lang.grammar());
  assert(Tokens && "sample must tokenize");
  return Tokens.take();
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("earley_vs_ipg", argc, argv);
  const int FullReps = 5; // measure() applies the --reduced scaling.
  std::printf("§7 — Earley vs (warm) IPG vs deterministic LALR on the SDF "
              "inputs\n\n");
  TextTable Table(
      {"input", "tokens", "Earley", "IPG (warm)", "Yacc-style LR"});

  bool EarleyNeverWinsBig = true;
  bool AllAccept = true;
  double EarleyFirst = 0, IpgFirst = 0;
  double EarleyLast = 0, IpgLast = 0, DetLast = 0;
  bool First = true;
  for (const SdfSample &Sample : sdfSamples()) {
    SdfLanguage Lang;
    std::vector<SymbolId> Tokens = tokenize(Lang, Sample.Text);
    std::string Key = "earley_vs_ipg/" + std::string(Sample.Name);

    // Earley: no generation phase at all, grammar-driven. Acceptance is
    // recorded as a shape check (not assert) so a Release build still
    // refuses to publish timings over rejecting parses.
    EarleyParser Earley(Lang.grammar());
    AllAccept &= Earley.recognize(Tokens);
    double EarleyTime =
        H.measure(Key + "/earley", FullReps,
                  [&] { Earley.recognize(Tokens); })
            .Median;

    // IPG: warm (the table parts needed by this input already expanded
    // by this first parse).
    Ipg Gen(Lang.grammar());
    AllAccept &= Gen.recognize(Tokens);
    double IpgTime =
        H.measure(Key + "/ipg_warm", FullReps,
                  [&] { Gen.recognize(Tokens); })
            .Median;

    // Deterministic floor.
    ItemSetGraph Graph(Lang.grammar());
    ParseTable LalrTable = buildLalr1Table(Graph);
    resolveConflictsYaccStyle(LalrTable, Lang.grammar());
    LrParser Det(LalrTable, Lang.grammar());
    AllAccept &= Det.recognize(Tokens);
    double DetTime =
        H.measure(Key + "/lr_deterministic", FullReps,
                  [&] { Det.recognize(Tokens); })
            .Median;

    Table.addRow({std::string(Sample.Name), std::to_string(Tokens.size()),
                  ms(EarleyTime), ms(IpgTime), ms(DetTime)});
    H.report().addCounter(Key + "/tokens", Tokens.size());
    EarleyNeverWinsBig &= EarleyTime > IpgTime * 0.7;
    if (First) {
      EarleyFirst = EarleyTime;
      IpgFirst = IpgTime;
      First = false;
    }
    EarleyLast = EarleyTime;
    IpgLast = IpgTime;
    DetLast = DetTime;
  }
  Table.print();
  (void)EarleyLast;
  (void)IpgLast;

  std::printf("\nnote: a forest-building Tomita parser does chart-like work "
              "per token, so on a\n~100-rule grammar Earley and warm IPG "
              "are neck-and-neck (within ~15%%, order\nflips run to run). "
              "The paper's 'much inferior parsing performance' shows "
              "against\nthe deterministic table loop, and against warm IPG "
              "on small grammars\n(bench/fig2_1_comparison: ~6x on the "
              "3-rule probe; exp.sdf below).\n");

  std::printf("\nshape checks:\n");
  H.check(AllAccept,
          "every parser accepts every sample (timings measure real "
          "parses)");
  H.check(EarleyNeverWinsBig,
          "Earley never beats warm IPG by a real margin");
  H.check(EarleyLast > DetLast * 20,
          "Earley is far slower than the deterministic table-driven "
          "parser");
  H.check(EarleyFirst > IpgFirst,
          "on the smallest input the table-driven parser leads clearly");
  return H.finish();
}
