//===- bench/earley_vs_ipg.cpp - §7: the comparison the paper skipped ------===//
///
/// \file
/// §7: "A comparison of IPG with Earley's parsing algorithm would have
/// been appropriate here ... From a theoretical viewpoint, we expect
/// Earley's algorithm to have better generation performance, but a much
/// inferior parsing performance." Both systems recognize the same class
/// of grammars; this bench runs them (plus the deterministic Yacc-style
/// parser as a floor) on the four SDF inputs and checks the expectation.
///
//===----------------------------------------------------------------------===//

#include "common/BenchSupport.h"

#include "core/Ipg.h"
#include "earley/EarleyParser.h"
#include "lalr/LalrGen.h"
#include "lr/LrParser.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"

#include <cassert>
#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(SdfLanguage &Lang, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens =
      S.tokenizeToSymbols(Text, Lang.grammar());
  assert(Tokens && "sample must tokenize");
  return Tokens.take();
}

} // namespace

int main() {
  std::printf("§7 — Earley vs (warm) IPG vs deterministic LALR on the SDF "
              "inputs\n\n");
  TextTable Table(
      {"input", "tokens", "Earley", "IPG (warm)", "Yacc-style LR"});

  bool EarleyNeverWinsBig = true;
  double EarleyFirst = 0, IpgFirst = 0;
  double EarleyLast = 0, IpgLast = 0, DetLast = 0;
  bool First = true;
  for (const SdfSample &Sample : sdfSamples()) {
    SdfLanguage Lang;
    std::vector<SymbolId> Tokens = tokenize(Lang, Sample.Text);

    // Earley: no generation phase at all, grammar-driven.
    EarleyParser Earley(Lang.grammar());
    assert(Earley.recognize(Tokens));
    double EarleyTime =
        medianSeconds(5, [&] { Earley.recognize(Tokens); });

    // IPG: warm (the table parts needed by this input already expanded).
    Ipg Gen(Lang.grammar());
    assert(Gen.recognize(Tokens));
    double IpgTime = medianSeconds(5, [&] { Gen.recognize(Tokens); });

    // Deterministic floor.
    ItemSetGraph Graph(Lang.grammar());
    ParseTable LalrTable = buildLalr1Table(Graph);
    resolveConflictsYaccStyle(LalrTable, Lang.grammar());
    LrParser Det(LalrTable, Lang.grammar());
    assert(Det.recognize(Tokens));
    double DetTime = medianSeconds(5, [&] { Det.recognize(Tokens); });

    Table.addRow({std::string(Sample.Name), std::to_string(Tokens.size()),
                  ms(EarleyTime), ms(IpgTime), ms(DetTime)});
    EarleyNeverWinsBig &= EarleyTime > IpgTime * 0.7;
    if (First) {
      EarleyFirst = EarleyTime;
      IpgFirst = IpgTime;
      First = false;
    }
    EarleyLast = EarleyTime;
    IpgLast = IpgTime;
    DetLast = DetTime;
  }
  Table.print();
  (void)EarleyLast;
  (void)IpgLast;

  std::printf("\nnote: a forest-building Tomita parser does chart-like work "
              "per token, so on a\n~100-rule grammar Earley and warm IPG "
              "are neck-and-neck (within ~15%%, order\nflips run to run). "
              "The paper's 'much inferior parsing performance' shows "
              "against\nthe deterministic table loop, and against warm IPG "
              "on small grammars\n(bench/fig2_1_comparison: ~6x on the "
              "3-rule probe; exp.sdf below).\n");

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += checkShape(EarleyNeverWinsBig,
                         "Earley never beats warm IPG by a real margin");
  Failures += checkShape(EarleyLast > DetLast * 20,
                         "Earley is far slower than the deterministic "
                         "table-driven parser");
  Failures += checkShape(EarleyFirst > IpgFirst,
                         "on the smallest input the table-driven parser "
                         "leads clearly");
  std::printf(Failures == 0 ? "\nAll shape checks passed.\n"
                            : "\n%d shape check(s) FAILED.\n",
              Failures);
  return Failures == 0 ? 0 : 1;
}
