//===- bench/micro_kernels.cpp - google-benchmark micro kernels ------------===//
///
/// \file
/// Micro-benchmarks (google-benchmark) for the hot kernels behind the
/// paper's measurements: CLOSURE, EXPAND/full generation, LALR lookahead
/// computation, the three parsers on SDF input, ACTION queries and the
/// scanner. These complement the scenario benches with per-operation
/// numbers and regression tracking.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"

#include "core/Ipg.h"
#include "earley/EarleyParser.h"
#include "glr/GlrParser.h"
#include "lalr/LalrGen.h"
#include "lr/LrParser.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

using namespace ipg;

namespace {

std::vector<SymbolId> tokenizeSample(SdfLanguage &Lang, size_t Index) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens =
      S.tokenizeToSymbols(sdfSamples()[Index].Text, Lang.grammar());
  return Tokens ? Tokens.take() : std::vector<SymbolId>{};
}

void BM_ClosureOfStartKernel(benchmark::State &State) {
  SdfLanguage Lang;
  ItemSetGraph Graph(Lang.grammar());
  KernelView K = Graph.kernel(Graph.startSet());
  for (auto _ : State)
    benchmark::DoNotOptimize(Graph.closure(K));
}
BENCHMARK(BM_ClosureOfStartKernel);

void BM_GenerateFullSdfTable(benchmark::State &State) {
  for (auto _ : State) {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    benchmark::DoNotOptimize(Graph.generateAll());
  }
}
BENCHMARK(BM_GenerateFullSdfTable);

void BM_GenerateLalrTable(benchmark::State &State) {
  for (auto _ : State) {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    ParseTable Table = buildLalr1Table(Graph);
    benchmark::DoNotOptimize(Table.numStates());
  }
}
BENCHMARK(BM_GenerateLalrTable);

void BM_IpgColdFirstParse(benchmark::State &State) {
  SdfLanguage Tok;
  std::vector<SymbolId> Unused = tokenizeSample(Tok, 2);
  (void)Unused;
  for (auto _ : State) {
    State.PauseTiming();
    SdfLanguage Lang;
    std::vector<SymbolId> Tokens = tokenizeSample(Lang, 2);
    Ipg Gen(Lang.grammar());
    State.ResumeTiming();
    benchmark::DoNotOptimize(Gen.recognize(Tokens));
  }
}
BENCHMARK(BM_IpgColdFirstParse);

void BM_GlrParseSdf(benchmark::State &State) {
  SdfLanguage Lang;
  std::vector<SymbolId> Tokens = tokenizeSample(Lang, 2);
  ItemSetGraph Graph(Lang.grammar());
  Graph.generateAll();
  GlrParser Parser(Graph);
  for (auto _ : State) {
    Forest F;
    benchmark::DoNotOptimize(Parser.parse(Tokens, F).Accepted);
  }
  State.SetItemsProcessed(State.iterations() * Tokens.size());
}
BENCHMARK(BM_GlrParseSdf);

void BM_DeterministicParseSdf(benchmark::State &State) {
  SdfLanguage Lang;
  std::vector<SymbolId> Tokens = tokenizeSample(Lang, 2);
  ItemSetGraph Graph(Lang.grammar());
  ParseTable Table = buildLalr1Table(Graph);
  resolveConflictsYaccStyle(Table, Lang.grammar());
  LrParser Parser(Table, Lang.grammar());
  for (auto _ : State)
    benchmark::DoNotOptimize(Parser.recognize(Tokens));
  State.SetItemsProcessed(State.iterations() * Tokens.size());
}
BENCHMARK(BM_DeterministicParseSdf);

void BM_EarleyParseSdf(benchmark::State &State) {
  SdfLanguage Lang;
  std::vector<SymbolId> Tokens = tokenizeSample(Lang, 2);
  EarleyParser Parser(Lang.grammar());
  for (auto _ : State)
    benchmark::DoNotOptimize(Parser.recognize(Tokens));
  State.SetItemsProcessed(State.iterations() * Tokens.size());
}
BENCHMARK(BM_EarleyParseSdf);

void BM_ActionQueryWarm(benchmark::State &State) {
  SdfLanguage Lang;
  ItemSetGraph Graph(Lang.grammar());
  Graph.generateAll();
  ItemSet *Start = Graph.startSet();
  SymbolId Module = Lang.grammar().symbols().lookup("module");
  for (auto _ : State) {
    // The deleted vector-returning actions() wrapper, reconstructed
    // locally: the allocating baseline the view API is measured against.
    std::vector<LrAction> Out;
    Graph.forEachAction(Start, Module,
                        [&](const LrAction &A) { Out.push_back(A); });
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_ActionQueryWarm);

/// The allocation-free counterpart of BM_ActionQueryWarm: same cell, same
/// graph, queried through the view API the parser drivers use. The gap
/// between the two is the per-query vector allocation the index removed.
void BM_ActionQueryViewWarm(benchmark::State &State) {
  SdfLanguage Lang;
  ItemSetGraph Graph(Lang.grammar());
  Graph.generateAll();
  ItemSet *Start = Graph.startSet();
  SymbolId Module = Lang.grammar().symbols().lookup("module");
  for (auto _ : State) {
    LrActionsView View = Graph.actionsView(Start, Module);
    benchmark::DoNotOptimize(View.shiftTarget());
  }
}
BENCHMARK(BM_ActionQueryViewWarm);

/// GOTO via the binary-searched action index, over every nonterminal
/// transition of the start state (SDF's widest row).
void BM_GotoQueryWarm(benchmark::State &State) {
  SdfLanguage Lang;
  ItemSetGraph Graph(Lang.grammar());
  Graph.generateAll();
  ItemSet *Start = Graph.startSet();
  std::vector<SymbolId> Nonterminals;
  for (ItemSet::Transition T : Graph.transitions(Start))
    if (Lang.grammar().symbols().isNonterminal(T.Label))
      Nonterminals.push_back(T.Label);
  for (auto _ : State)
    for (SymbolId Sym : Nonterminals)
      benchmark::DoNotOptimize(Graph.gotoState(Start, Sym));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Nonterminals.size()));
}
BENCHMARK(BM_GotoQueryWarm);

void BM_ScanSdfSource(benchmark::State &State) {
  Scanner S;
  configureSdfScanner(S);
  std::string_view Text = sdfSamples()[2].Text;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.scan(Text));
  State.SetBytesProcessed(State.iterations() * Text.size());
}
BENCHMARK(BM_ScanSdfSource);

void BM_IncrementalModify(benchmark::State &State) {
  SdfLanguage Lang;
  Ipg Gen(Lang.grammar());
  Gen.generateAll();
  auto [Lhs, Rhs] = Lang.modificationRule();
  for (auto _ : State) {
    Gen.addRule(Lhs, std::vector<SymbolId>(Rhs));
    Gen.deleteRule(Lhs, Rhs);
  }
}
BENCHMARK(BM_IncrementalModify);

/// Edge workload for the LALR digraph-allocation pair below: one
/// deterministic (from, to) multiset shaped like the reads/includes
/// relations — many low-degree nodes, a few dense hubs — over the node
/// count of the SDF graph's nonterminal transitions.
std::vector<std::pair<uint32_t, uint32_t>> digraphEdgeWorkload(uint32_t Nodes) {
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  uint64_t S = 0x9e3779b97f4a7c15ULL;
  auto Next = [&S] {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  for (uint32_t From = 0; From < Nodes; ++From) {
    uint32_t Degree = From % 16 == 0 ? 24 : From % 3;
    for (uint32_t I = 0; I < Degree; ++I)
      Edges.emplace_back(From, static_cast<uint32_t>(Next() % Nodes));
  }
  return Edges;
}

/// BEFORE shape of the LALR lookahead digraph adjacency: one std::vector
/// per node, appended in edge order — per-node headers plus geometric
/// regrowth for every hub.
void BM_LalrDigraphAllocVectors(benchmark::State &State) {
  SdfLanguage Lang;
  ItemSetGraph Graph(Lang.grammar());
  Graph.generateAll();
  uint32_t Nodes = 0;
  for (const ItemSet *Set : Graph.liveSets())
    for (ItemSet::Transition T : Graph.transitions(Set))
      Nodes += Lang.grammar().symbols().isNonterminal(T.Label);
  std::vector<std::pair<uint32_t, uint32_t>> Edges = digraphEdgeWorkload(Nodes);
  for (auto _ : State) {
    std::vector<std::vector<uint32_t>> Succ(Nodes);
    for (const auto &[From, To] : Edges)
      Succ[From].push_back(To);
    uint64_t Sum = 0;
    for (const std::vector<uint32_t> &Row : Succ)
      for (uint32_t To : Row)
        Sum += To;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Edges.size()));
}
BENCHMARK(BM_LalrDigraphAllocVectors);

/// AFTER shape (what lalr/LalrGen.cpp's FlatRelation does): accumulate
/// pairs in one flat vector, then counting-sort into CSR offset/edge
/// arrays — three allocations total regardless of node count.
void BM_LalrDigraphAllocFlat(benchmark::State &State) {
  SdfLanguage Lang;
  ItemSetGraph Graph(Lang.grammar());
  Graph.generateAll();
  uint32_t Nodes = 0;
  for (const ItemSet *Set : Graph.liveSets())
    for (ItemSet::Transition T : Graph.transitions(Set))
      Nodes += Lang.grammar().symbols().isNonterminal(T.Label);
  std::vector<std::pair<uint32_t, uint32_t>> Edges = digraphEdgeWorkload(Nodes);
  for (auto _ : State) {
    std::vector<std::pair<uint32_t, uint32_t>> Pairs(Edges);
    std::vector<uint32_t> Offsets(Nodes + 1, 0);
    for (const auto &[From, To] : Pairs)
      ++Offsets[From + 1];
    for (size_t I = 1; I <= Nodes; ++I)
      Offsets[I] += Offsets[I - 1];
    std::vector<uint32_t> Flat(Pairs.size());
    std::vector<uint32_t> Fill(Offsets.begin(), Offsets.end() - 1);
    for (const auto &[From, To] : Pairs)
      Flat[Fill[From]++] = To;
    uint64_t Sum = 0;
    for (uint32_t To : Flat)
      Sum += To;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Edges.size()));
}
BENCHMARK(BM_LalrDigraphAllocFlat);

/// The cost of one metrics bump through the cached-static idiom the
/// library's instrumentation sites use — the per-event price of the
/// always-on registry (a relaxed load+store on a thread-sharded line).
void BM_MetricsCounterBump(benchmark::State &State) {
  static MetricCounter &C =
      MetricsRegistry::process().counter("bench.micro.bump");
  for (auto _ : State)
    C.bump();
  benchmark::DoNotOptimize(C.total());
}
BENCHMARK(BM_MetricsCounterBump);

/// The cost of an IPG_TRACE_SPAN when tracing is compiled in but not
/// recording — the steady-state price every instrumented site pays. The
/// zero-overhead contract says this is one predictable branch; in
/// tracing-off builds the macro is `((void)0)` and this measures an
/// empty loop.
void BM_TraceSpanDisabled(benchmark::State &State) {
  for (auto _ : State) {
    IPG_TRACE_SPAN(Sp, "bench.micro.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

/// Console output as usual, plus capture of every run into the shared
/// ipg-bench-v1 report (per-iteration wall/CPU seconds and the iteration
/// count). Only members present in both the 1.7 and 1.8 Google Benchmark
/// APIs are used.
class CapturingReporter : public benchmark::ConsoleReporter {
public:
  explicit CapturingReporter(PerfReport &Report) : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    benchmark::ConsoleReporter::ReportRuns(Runs);
    for (const Run &R : Runs) {
      if (R.iterations == 0)
        continue;
      std::string Name = R.benchmark_name();
      double Iterations = static_cast<double>(R.iterations);
      Report.addScalar(Name + "/real_time",
                       R.real_accumulated_time / Iterations, "seconds");
      Report.addScalar(Name + "/cpu_time",
                       R.cpu_accumulated_time / Iterations, "seconds");
      Report.addCounter(Name + "/iterations",
                        static_cast<uint64_t>(R.iterations));
    }
  }

private:
  PerfReport &Report;
};

} // namespace

int main(int argc, char **argv) {
  ipg::bench::BenchOptions Options =
      ipg::bench::parseBenchOptions(argc, argv, /*AllowPassthrough=*/true);
  if (Options.ParseError)
    return 2;
  PerfReport Report("micro_kernels");
  Report.setReduced(Options.Reduced);

  // Forward the unconsumed arguments (plus a short --benchmark_min_time
  // under --reduced) to Google Benchmark.
  std::vector<char *> Args = Options.Passthrough;
  std::string MinTime = "--benchmark_min_time=0.01";
  if (Options.Reduced)
    Args.push_back(MinTime.data());
  int BenchArgc = static_cast<int>(Args.size());
  benchmark::Initialize(&BenchArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, Args.data()))
    return 2;

  CapturingReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  return ipg::bench::emitReport(Report, Options.EmitJsonPath);
}
