//===- bench/ablation_lazy_overhead.cpp - §5.3: the cost of laziness -------===//
///
/// \file
/// Regenerates §5.3's claim: "The overhead in time introduced by this
/// lazy technique is small. The total generation time ... will not
/// increase, since even in the worst case exactly the same amount of work
/// has to be done as before. Only the test in ACTION ... takes some extra
/// time." We measure (a) total table-generation work eagerly vs forced
/// through the lazy path, (b) warm parse time on a pre-generated table vs
/// a lazily grown one (the residual cost is ACTION's state test), and
/// (c) the §5.3 memory observation — the lazy generator keeps kernels.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "core/Ipg.h"
#include "glr/GlrParser.h"
#include "sdf/Samples.h"
#include "sdf/SdfLanguage.h"
#include "sdf/SdfLexer.h"

#include <cassert>
#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

namespace {

std::vector<SymbolId> tokenize(SdfLanguage &Lang, std::string_view Text) {
  Scanner S;
  configureSdfScanner(S);
  Expected<std::vector<SymbolId>> Tokens =
      S.tokenizeToSymbols(Text, Lang.grammar());
  assert(Tokens && "sample must tokenize");
  return Tokens.take();
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("ablation_lazy_overhead", argc, argv);
  std::printf("§5.3 — the overhead of lazy generation on the SDF grammar\n\n");

  // (a) Full-pipeline comparison doing identical total work: the eager
  // pipeline generates everything, then parses SDF.sdf against the warm
  // table; the lazy pipeline parses first (expanding by need — §5's worst
  // case forces the remainder afterwards). Scanner setup and tokenization
  // stay outside the timed region. Any gap is the lazy overhead: ACTION's
  // state test plus interleaving effects.
  auto TimePipeline = [&H](bool LazyFirst) {
    std::vector<double> Samples;
    for (int I = 0; I < H.reps(7); ++I) {
      SdfLanguage Lang;
      std::vector<SymbolId> Tokens = tokenize(Lang, sdfSamples()[2].Text);
      Stopwatch Watch;
      if (LazyFirst) {
        Ipg Gen(Lang.grammar());
        Gen.recognize(Tokens);
        Gen.generateAll();
      } else {
        ItemSetGraph Graph(Lang.grammar());
        Graph.generateAll();
        GlrParser Parser(Graph);
        Parser.recognize(Tokens);
      }
      Samples.push_back(Watch.seconds());
    }
    std::sort(Samples.begin(), Samples.end());
    return Samples[Samples.size() / 2];
  };
  double EagerGen = TimePipeline(/*LazyFirst=*/false);
  double LazyGen = TimePipeline(/*LazyFirst=*/true);

  // (b) Warm parse times: fully generated vs lazily grown tables.
  SdfLanguage LangEager;
  std::vector<SymbolId> Input = tokenize(LangEager, sdfSamples()[3].Text);
  ItemSetGraph EagerGraph(LangEager.grammar());
  EagerGraph.generateAll();
  GlrParser EagerParser(EagerGraph);
  double EagerParse =
      H.measure("ablation_lazy_overhead/warm_parse/eager", 9,
                [&] { EagerParser.recognize(Input); })
          .Median;

  SdfLanguage LangLazy;
  std::vector<SymbolId> InputLazy = tokenize(LangLazy, sdfSamples()[3].Text);
  Ipg LazyGenr(LangLazy.grammar());
  double LazyParse =
      H.measure("ablation_lazy_overhead/warm_parse/lazy", 9,
                [&] { LazyGenr.recognize(InputLazy); })
          .Median;

  // (c) Memory: the lazy/incremental graph keeps kernels (§5.3).
  size_t KernelItems = 0;
  for (const ItemSet *State : EagerGraph.liveSets())
    KernelItems += EagerGraph.kernel(State).size();

  // Tokenizing the lazy-gen scenario includes scanner time; report the
  // generation-only comparison and the warm-parse comparison.
  TextTable Table({"measurement", "eager", "lazy", "ratio"});
  Table.addRow({"full pipeline (gen + parse SDF.sdf)", ms(EagerGen),
                ms(LazyGen), formatSeconds(LazyGen / EagerGen, 2) + "x"});
  Table.addRow({"warm parse (ASF.sdf)", ms(EagerParse), ms(LazyParse),
                formatSeconds(LazyParse / EagerParse, 2) + "x"});
  Table.print();
  std::printf("\nkernel items retained for incrementality: %zu items across "
              "%zu states\n",
              KernelItems, EagerGraph.numLive());

  H.report().addScalar("ablation_lazy_overhead/pipeline/eager", EagerGen,
                       "seconds");
  H.report().addScalar("ablation_lazy_overhead/pipeline/lazy", LazyGen,
                       "seconds");
  H.report().addCounter("ablation_lazy_overhead/kernel_items_retained",
                        KernelItems);

  std::printf("\nshape checks:\n");
  H.check(LazyGen < EagerGen * 2.0,
          "lazy pipeline does the same total work within a small factor "
          "(§5.3: 'the overhead ... is small'; sub-ms medians carry real "
          "jitter)");
  H.check(LazyParse < EagerParse * 1.5,
          "once generated, parsing speed is effectively unaffected (§1: "
          "'as efficient as a conventionally generated parser')");
  return H.finish();
}
