//===- bench/common/BenchSupport.h - Bench table printing ------*- C++ -*-===//
///
/// \file
/// Presentation helpers for the reproduction benches: an aligned table
/// printer for the paper-style outputs and millisecond formatting. The
/// measurement/reporting machinery (shape checks, JSON emission) lives in
/// BenchHarness.h.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BENCH_COMMON_BENCHSUPPORT_H
#define IPG_BENCH_COMMON_BENCHSUPPORT_H

#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

namespace ipg::bench {

/// Collects rows of strings and prints them with aligned columns.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  void print() const {
    std::vector<size_t> Widths(Header.size(), 0);
    auto Measure = [&](const std::vector<std::string> &Row) {
      for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
        Widths[I] = std::max(Widths[I], Row[I].size());
    };
    Measure(Header);
    for (const auto &Row : Rows)
      Measure(Row);
    auto PrintRow = [&](const std::vector<std::string> &Row) {
      std::string Line;
      for (size_t I = 0; I < Row.size(); ++I) {
        Line += I == 0 ? padRight(Row[I], Widths[I])
                       : ("  " + padLeft(Row[I], Widths[I]));
      }
      std::printf("%s\n", Line.c_str());
    };
    PrintRow(Header);
    std::string Rule;
    for (size_t I = 0; I < Widths.size(); ++I)
      Rule += std::string(Widths[I] + (I ? 2 : 0), '-');
    std::printf("%s\n", Rule.c_str());
    for (const auto &Row : Rows)
      PrintRow(Row);
  }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Milliseconds with 3 decimals.
inline std::string ms(double Seconds) {
  return formatSeconds(Seconds * 1e3, 3) + " ms";
}

} // namespace ipg::bench

#endif // IPG_BENCH_COMMON_BENCHSUPPORT_H
