//===- bench/common/BenchHarness.h - Driver-side bench harness --*- C++ -*-===//
///
/// \file
/// The common entry layer for all bench drivers: command-line parsing
/// (`--emit-json=PATH`, `--reduced`), a warmup+repetition measurement
/// runner on wall and CPU clocks (support/Timer.h), shape-check recording,
/// and serialization of everything through support/PerfReport.h. Every
/// driver builds one BenchHarness and funnels its numbers through it, so
/// `ipg_bench_all` can collect a uniform `ipg-bench-v1` document from each.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BENCH_COMMON_BENCHHARNESS_H
#define IPG_BENCH_COMMON_BENCHHARNESS_H

#include "support/PerfReport.h"
#include "support/Timer.h"

#include <string>
#include <utility>
#include <vector>

namespace ipg::bench {

/// Options common to every bench driver.
struct BenchOptions {
  /// Where to write the ipg-bench-v1 document; empty = don't emit.
  std::string EmitJsonPath;
  /// Where to write a Chrome trace of the whole run (`--trace=PATH`);
  /// empty = tracing untouched. Requires an IPG_TRACING build — a
  /// tracing-disabled driver warns and writes an empty document.
  std::string TracePath;
  /// Reduced-iteration smoke mode (CI): scale repetition counts down.
  bool Reduced = false;
  /// Set when an unknown argument was seen; the driver should exit 2.
  bool ParseError = false;
  /// Leftover argv (program name + unrecognized args), for drivers that
  /// forward to another framework (micro_kernels -> Google Benchmark).
  std::vector<char *> Passthrough;
};

/// Parses the shared bench flags out of argc/argv. Unrecognized arguments
/// are collected into Passthrough; \p AllowPassthrough=false turns them
/// into a ParseError instead.
BenchOptions parseBenchOptions(int Argc, char **Argv,
                               bool AllowPassthrough = false);

/// Serializes \p Report to \p Path (no-op when empty) and prints the
/// "wrote ..." confirmation. Returns 0 on success, 2 on a write error —
/// the shared emission tail for BenchHarness::finish() and drivers that
/// bypass the harness runner (micro_kernels).
int emitReport(const PerfReport &Report, const std::string &Path);

/// One harness per driver process: measurement + reporting + exit code.
class BenchHarness {
public:
  /// Parses options; on a bad command line, prints usage to stderr and
  /// exits with code 2 immediately (before any measurement runs).
  BenchHarness(std::string Driver, int Argc, char **Argv);

  bool reduced() const { return Options.Reduced; }

  /// Scales a repetition count for smoke runs: full fidelity normally, a
  /// floor of one repetition under --reduced.
  int reps(int Full) const {
    return Options.Reduced ? (Full >= 3 ? 3 : (Full > 0 ? Full : 1)) : Full;
  }

  /// The underlying report, for counters/scalars the runner cannot see.
  PerfReport &report() { return Report; }

  /// Runs \p Fn once unmeasured (warmup), then reps(FullReps) measured
  /// times on both clocks; records the result under \p Name and returns
  /// the wall-clock statistics.
  template <typename FnT>
  SampleStats measure(const std::string &Name, int FullReps, FnT &&Fn) {
    Fn(); // Warmup: fault in code and allocator state.
    int Reps = reps(FullReps);
    std::vector<double> Wall, Cpu;
    Wall.reserve(Reps);
    Cpu.reserve(Reps);
    for (int I = 0; I < Reps; ++I) {
      CpuStopwatch CpuWatch;
      Stopwatch WallWatch;
      Fn();
      Wall.push_back(WallWatch.seconds());
      Cpu.push_back(CpuWatch.seconds());
    }
    SampleStats WallStats = SampleStats::of(std::move(Wall));
    SampleStats CpuStats = SampleStats::of(std::move(Cpu));
    Report.addTiming(Name, WallStats, &CpuStats);
    return WallStats;
  }

  /// Prints "[PASS]"/"[FAIL] description", records the outcome, and
  /// returns !Ok so callers can keep their failure arithmetic.
  int check(bool Ok, const std::string &Description);

  /// Prints the pass/fail summary, writes the JSON document when
  /// `--emit-json` was given, and returns the process exit code:
  /// 0 all checks passed, 1 some failed, 2 usage or write error.
  int finish();

private:
  BenchOptions Options;
  PerfReport Report;
};

} // namespace ipg::bench

#endif // IPG_BENCH_COMMON_BENCHHARNESS_H
