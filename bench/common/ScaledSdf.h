//===- bench/common/ScaledSdf.h - Shared scaled-SDF workload ----*- C++ -*-===//
///
/// \file
/// The "much larger than the grammar of SDF" regime of §7, shared by the
/// drivers that measure against it (fig7_1_measurements, warm_start) so
/// their notions of "the 12x-SDF grammar" and "the Fig 7.1 modification"
/// cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_BENCH_COMMON_SCALEDSDF_H
#define IPG_BENCH_COMMON_SCALEDSDF_H

#include "sdf/SdfLanguage.h"

#include <string>
#include <utility>
#include <vector>

namespace ipg::bench {

/// Fills \p G with the SDF grammar plus \p Copies-1 renamed clones. Only
/// the unprefixed copy is ever exercised by input, so the lazy generator
/// skips the clones entirely while the batch generators must process them.
inline void buildScaledSdf(Grammar &G, int Copies) {
  SdfLanguage Base;
  const Grammar &From = Base.grammar();
  for (int Copy = 0; Copy < Copies; ++Copy) {
    // += instead of an operator+ chain: GCC 12 -Wrestrict misfires at -O3.
    std::string Prefix;
    if (Copy != 0) {
      Prefix = "M";
      Prefix += std::to_string(Copy);
      Prefix += "#";
    }
    auto Map = [&](SymbolId Sym) {
      if (Sym == From.startSymbol())
        return G.startSymbol();
      SymbolId Mapped = G.symbols().intern(Prefix + From.symbols().name(Sym));
      if (From.symbols().isNonterminal(Sym))
        G.symbols().markNonterminal(Mapped);
      return Mapped;
    };
    for (RuleId Id : From.activeRules()) {
      const Rule &R = From.rule(Id);
      std::vector<SymbolId> Rhs;
      Rhs.reserve(R.Rhs.size());
      for (SymbolId Sym : R.Rhs)
        Rhs.push_back(Map(Sym));
      G.addRule(Map(R.Lhs), std::move(Rhs));
    }
  }
}

/// The Fig 7.1 modification rule against the (unprefixed) CF-ELEM.
inline std::pair<SymbolId, std::vector<SymbolId>>
scaledSdfModification(Grammar &G) {
  return {G.symbols().intern("CF-ELEM"),
          {G.symbols().intern("("), G.symbols().intern("CF-ELEM+"),
           G.symbols().intern(")?")}};
}

} // namespace ipg::bench

#endif // IPG_BENCH_COMMON_SCALEDSDF_H
