//===- bench/common/BenchHarness.cpp - Driver-side bench harness ----------===//

#include "common/BenchHarness.h"

#include "support/StringUtils.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ipg;
using namespace ipg::bench;

BenchOptions ipg::bench::parseBenchOptions(int Argc, char **Argv,
                                           bool AllowPassthrough) {
  BenchOptions Options;
  if (Argc > 0)
    Options.Passthrough.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (startsWith(Arg, "--emit-json=")) {
      Options.EmitJsonPath = std::string(Arg.substr(strlen("--emit-json=")));
      if (Options.EmitJsonPath.empty()) {
        std::fprintf(stderr, "error: --emit-json= needs a path\n");
        Options.ParseError = true;
      }
    } else if (startsWith(Arg, "--trace=")) {
      Options.TracePath = std::string(Arg.substr(strlen("--trace=")));
      if (Options.TracePath.empty()) {
        std::fprintf(stderr, "error: --trace= needs a path\n");
        Options.ParseError = true;
      }
    } else if (Arg == "--reduced") {
      Options.Reduced = true;
    } else if (AllowPassthrough) {
      Options.Passthrough.push_back(Argv[I]);
    } else {
      std::fprintf(stderr,
                   "error: unknown argument '%s'\n"
                   "usage: %s [--emit-json=PATH] [--trace=PATH] [--reduced]\n",
                   Argv[I], Argc > 0 ? Argv[0] : "bench");
      Options.ParseError = true;
    }
  }
  return Options;
}

BenchHarness::BenchHarness(std::string Driver, int Argc, char **Argv)
    : Options(parseBenchOptions(Argc, Argv)), Report(std::move(Driver)) {
  // Bail before any measurement runs: a typo'd flag should not cost a
  // multi-minute benchmark pass before reporting exit code 2.
  if (Options.ParseError)
    std::exit(2);
  Report.setReduced(Options.Reduced);
  if (!Options.TracePath.empty()) {
    if (trace::compiledIn())
      trace::start();
    else
      std::fprintf(stderr,
                   "warning: --trace requested but the tracer is compiled "
                   "out (rebuild with -DIPG_TRACING=ON); writing an empty "
                   "trace\n");
  }
}

int ipg::bench::emitReport(const PerfReport &Report,
                           const std::string &Path) {
  if (Path.empty())
    return 0;
  Expected<size_t> Written = Report.writeFile(Path);
  if (!Written) {
    std::fprintf(stderr, "error: %s\n", Written.error().str().c_str());
    return 2;
  }
  std::printf("wrote %s (%zu bytes)\n", Path.c_str(), *Written);
  return 0;
}

int BenchHarness::check(bool Ok, const std::string &Description) {
  std::printf("  [%s] %s\n", Ok ? "PASS" : "FAIL", Description.c_str());
  return Report.addCheck(Ok, Description);
}

int BenchHarness::finish() {
  int Failed = Report.failedChecks();
  if (Failed == 0)
    std::printf("\nAll shape checks passed.\n");
  else
    std::printf("\n%d shape check(s) FAILED.\n", Failed);
  if (!Options.TracePath.empty()) {
    trace::stop();
    Expected<size_t> Written = trace::writeChromeTrace(Options.TracePath);
    if (!Written) {
      std::fprintf(stderr, "error: %s\n", Written.error().str().c_str());
      return 2;
    }
    std::printf("wrote %s (%zu bytes, %llu trace events, %llu dropped)\n",
                Options.TracePath.c_str(), *Written,
                (unsigned long long)trace::eventCount(),
                (unsigned long long)trace::droppedCount());
  }
  if (int Err = emitReport(Report, Options.EmitJsonPath))
    return Err;
  return Failed == 0 ? 0 : 1;
}
