//===- bench/lr_family.cpp - §2: LR table growth across the family ---------===//
///
/// \file
/// §2 on LR(k): "When the look-ahead k is increased, the class of
/// recognizable languages becomes larger ... and the table generation
/// time increases exponentially." This bench builds the SDF grammar's
/// tables with every generator in the repository — LR(0), SLR(1),
/// LALR(1) and canonical LR(1) — and reports state counts, conflicted
/// cells and generation times: the blowup that makes LR(0) the right
/// substrate for incremental generation (and made Horspool's incremental
/// LALR(1) "problematic", per the postscript).
///
//===----------------------------------------------------------------------===//

#include "common/BenchSupport.h"

#include "lalr/LalrGen.h"
#include "lalr/Lr1Gen.h"
#include "lalr/SlrGen.h"
#include "sdf/SdfLanguage.h"

#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

int main() {
  std::printf("§2 — the LR family on the SDF grammar: states, conflicts, "
              "generation time\n\n");

  TextTable Table({"generator", "states", "conflicted cells", "gen time"});
  size_t Lr0States = 0, Lr1States = 0;
  size_t Lr0Conf = 0, Slr1Conf = 0, Lalr1Conf = 0, Lr1Conf = 0;
  double Lr0Time = 0, Lr1Time = 0;

  {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    Stopwatch Watch;
    ParseTable T = buildLr0Table(Graph);
    Lr0Time = Watch.seconds();
    Lr0States = T.numStates();
    Lr0Conf = T.conflicts().size();
    Table.addRow({"LR(0)", std::to_string(Lr0States),
                  std::to_string(Lr0Conf), ms(Lr0Time)});
  }
  {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    Stopwatch Watch;
    ParseTable T = buildSlr1Table(Graph);
    double Time = Watch.seconds();
    Slr1Conf = T.conflicts().size();
    Table.addRow({"SLR(1)", std::to_string(T.numStates()),
                  std::to_string(Slr1Conf), ms(Time)});
  }
  {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    Stopwatch Watch;
    ParseTable T = buildLalr1Table(Graph);
    double Time = Watch.seconds();
    Lalr1Conf = T.conflicts().size();
    Table.addRow({"LALR(1)", std::to_string(T.numStates()),
                  std::to_string(Lalr1Conf), ms(Time)});
  }
  {
    SdfLanguage Lang;
    Lr1Stats Stats;
    Stopwatch Watch;
    ParseTable T = buildLr1Table(Lang.grammar(), &Stats);
    Lr1Time = Watch.seconds();
    Lr1States = Stats.NumStates;
    Lr1Conf = T.conflicts().size();
    Table.addRow({"canonical LR(1)", std::to_string(Lr1States),
                  std::to_string(Lr1Conf), ms(Lr1Time)});
  }
  Table.print();

  std::printf("\nshape checks:\n");
  int Failures = 0;
  Failures += checkShape(Lr1States > Lr0States * 3 / 2,
                         "canonical LR(1) grows the state count "
                         "substantially (the §2 blowup; ~1.9x on SDF)");
  Failures += checkShape(Lr1Time > Lr0Time,
                         "LR(1) generation costs more than LR(0)");
  Failures += checkShape(Slr1Conf <= Lr0Conf && Lalr1Conf <= Slr1Conf &&
                             Lr1Conf <= Lalr1Conf,
                         "conflicts shrink monotonically with lookahead "
                         "power");
  std::printf(Failures == 0 ? "\nAll shape checks passed.\n"
                            : "\n%d shape check(s) FAILED.\n",
              Failures);
  return Failures == 0 ? 0 : 1;
}
