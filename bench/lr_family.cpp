//===- bench/lr_family.cpp - §2: LR table growth across the family ---------===//
///
/// \file
/// §2 on LR(k): "When the look-ahead k is increased, the class of
/// recognizable languages becomes larger ... and the table generation
/// time increases exponentially." This bench builds the SDF grammar's
/// tables with every generator in the repository — LR(0), SLR(1),
/// LALR(1) and canonical LR(1) — and reports state counts, conflicted
/// cells and generation times: the blowup that makes LR(0) the right
/// substrate for incremental generation (and made Horspool's incremental
/// LALR(1) "problematic", per the postscript).
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"

#include "lalr/LalrGen.h"
#include "lalr/Lr1Gen.h"
#include "lalr/SlrGen.h"
#include "sdf/SdfLanguage.h"

#include <cstdio>

using namespace ipg;
using namespace ipg::bench;

int main(int argc, char **argv) {
  BenchHarness H("lr_family", argc, argv);
  std::printf("§2 — the LR family on the SDF grammar: states, conflicts, "
              "generation time\n\n");
  auto Record = [&H](const char *Key, size_t States, size_t Conflicts) {
    std::string Prefix = std::string("lr_family/") + Key;
    H.report().addCounter(Prefix + "/states", States);
    H.report().addCounter(Prefix + "/conflicted_cells", Conflicts);
  };

  TextTable Table({"generator", "states", "conflicted cells", "gen time"});
  size_t Lr0States = 0, Lr1States = 0;
  size_t Lr0Conf = 0, Slr1Conf = 0, Lalr1Conf = 0, Lr1Conf = 0;
  double Lr0Time = 0, Lr1Time = 0;

  // Each generator is timed over fresh graphs (the ItemSetGraph caches
  // expansions, so reusing one would measure a warm rebuild); the table
  // built outside the measurement provides the state/conflict counts.
  {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    ParseTable T = buildLr0Table(Graph);
    Lr0States = T.numStates();
    Lr0Conf = T.conflicts().size();
    Lr0Time = H.measure("lr_family/lr0/generation", 5,
                        [&] {
                          ItemSetGraph Fresh(Lang.grammar());
                          buildLr0Table(Fresh);
                        })
                  .Median;
    Table.addRow({"LR(0)", std::to_string(Lr0States),
                  std::to_string(Lr0Conf), ms(Lr0Time)});
    Record("lr0", Lr0States, Lr0Conf);
  }
  {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    ParseTable T = buildSlr1Table(Graph);
    Slr1Conf = T.conflicts().size();
    double Time = H.measure("lr_family/slr1/generation", 5,
                            [&] {
                              ItemSetGraph Fresh(Lang.grammar());
                              buildSlr1Table(Fresh);
                            })
                      .Median;
    Table.addRow({"SLR(1)", std::to_string(T.numStates()),
                  std::to_string(Slr1Conf), ms(Time)});
    Record("slr1", T.numStates(), Slr1Conf);
  }
  {
    SdfLanguage Lang;
    ItemSetGraph Graph(Lang.grammar());
    ParseTable T = buildLalr1Table(Graph);
    Lalr1Conf = T.conflicts().size();
    double Time = H.measure("lr_family/lalr1/generation", 5,
                            [&] {
                              ItemSetGraph Fresh(Lang.grammar());
                              buildLalr1Table(Fresh);
                            })
                      .Median;
    Table.addRow({"LALR(1)", std::to_string(T.numStates()),
                  std::to_string(Lalr1Conf), ms(Time)});
    Record("lalr1", T.numStates(), Lalr1Conf);
  }
  {
    SdfLanguage Lang;
    Lr1Stats Stats;
    ParseTable T = buildLr1Table(Lang.grammar(), &Stats);
    Lr1States = Stats.NumStates;
    Lr1Conf = T.conflicts().size();
    Lr1Time = H.measure("lr_family/lr1/generation", 5,
                        [&] {
                          Lr1Stats Scratch;
                          buildLr1Table(Lang.grammar(), &Scratch);
                        })
                  .Median;
    Table.addRow({"canonical LR(1)", std::to_string(Lr1States),
                  std::to_string(Lr1Conf), ms(Lr1Time)});
    Record("lr1", Lr1States, Lr1Conf);
  }
  Table.print();

  std::printf("\nshape checks:\n");
  H.check(Lr1States > Lr0States * 3 / 2,
          "canonical LR(1) grows the state count substantially (the §2 "
          "blowup; ~1.9x on SDF)");
  H.check(Lr1Time > Lr0Time, "LR(1) generation costs more than LR(0)");
  H.check(Slr1Conf <= Lr0Conf && Lalr1Conf <= Slr1Conf &&
              Lr1Conf <= Lalr1Conf,
          "conflicts shrink monotonically with lookahead power");
  return H.finish();
}
