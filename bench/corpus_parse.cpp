//===- bench/corpus_parse.cpp - Parse timings over the test corpus --------===//
///
/// \file
/// Times warm IPG and Earley on pumped inputs for every checked-in corpus
/// grammar carrying a `//! bench:` directive (tests/data/corpus/*.bnf).
/// The corpus spans real languages (JSON, a C subset, SQL SELECT) and
/// pathological ambiguity, so this driver tracks parse cost on exactly
/// the grammars the differential test suite proves the engines agree on.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"
#include "common/Corpus.h"

#include "core/Ipg.h"
#include "earley/EarleyParser.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ipg;
using namespace ipg::bench;
using namespace ipg::testing;

namespace {

/// Builds the pumped sentence Prefix + Unit*Repeat + Suffix and resolves
/// each spelling; false when a word is not a symbol of \p G.
bool pumpTokens(const Grammar &G, const BenchPump &Pump, unsigned Repeat,
                std::vector<SymbolId> &Out) {
  std::string Text = Pump.Prefix;
  for (unsigned I = 0; I < Repeat; ++I) {
    Text += ' ';
    Text += Pump.Unit;
  }
  Text += ' ';
  Text += Pump.Suffix;
  Out.clear();
  for (std::string_view Word : splitWords(Text)) {
    SymbolId Sym = G.symbols().lookup(Word);
    if (Sym == InvalidSymbol)
      return false;
    Out.push_back(Sym);
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("corpus_parse", argc, argv);
  const int FullReps = 5;

  Expected<std::vector<CorpusCase>> Corpus = loadCorpusDir(IPG_CORPUS_DIR);
  if (!Corpus) {
    std::fprintf(stderr, "corpus load failed: %s\n",
                 Corpus.error().str().c_str());
    return 1;
  }

  std::printf("Parse cost over the differential-test corpus (pumped "
              "inputs)\n\n");
  TextTable Table({"grammar", "class", "tokens", "IPG (warm)", "Earley"});

  size_t Benched = 0;
  bool AllTokenized = true;
  bool AllAccepted = true;
  for (const CorpusCase &Case : *Corpus) {
    if (Case.Bench.Repeat == 0)
      continue; // No bench directive for this grammar.
    Grammar G;
    Expected<size_t> Built = Case.build(G);
    if (!Built) {
      std::fprintf(stderr, "%s: %s\n", Case.Name.c_str(),
                   Built.error().str().c_str());
      return 1;
    }
    // Ambiguous pumps (Catalan-sized forests) stay affordable because
    // recognize() drives the GSS without materializing trees; the pump
    // repeat in the directive is already sized for that.
    unsigned Repeat = H.reduced()
                          ? std::max(1u, Case.Bench.Repeat / 10)
                          : Case.Bench.Repeat;
    std::vector<SymbolId> Tokens;
    if (!pumpTokens(G, Case.Bench, Repeat, Tokens)) {
      AllTokenized = false;
      continue;
    }
    std::string Key = "corpus_parse/" + Case.Name;

    Ipg Gen(G);
    AllAccepted &= Gen.recognize(Tokens);
    double IpgTime =
        H.measure(Key + "/ipg_warm", FullReps, [&] { Gen.recognize(Tokens); })
            .Median;

    EarleyParser Earley(G);
    AllAccepted &= Earley.recognize(Tokens);
    double EarleyTime =
        H.measure(Key + "/earley", FullReps, [&] { Earley.recognize(Tokens); })
            .Median;

    Table.addRow({Case.Name, Case.Class, std::to_string(Tokens.size()),
                  ms(IpgTime), ms(EarleyTime)});
    H.report().addCounter(Key + "/tokens", Tokens.size());
    ++Benched;
  }
  Table.print();

  std::printf("\nshape checks:\n");
  H.check(Benched >= 4, "at least four corpus grammars carry bench pumps");
  H.check(AllTokenized, "every pump resolves to symbols of its grammar");
  H.check(AllAccepted,
          "both engines accept every pumped input (timings measure real "
          "parses)");
  return H.finish();
}
