#!/usr/bin/env python3
"""Benchmark regression gate over two ipg-bench-suite-v1 documents.

Compares every *timing* result (records carrying a ``median``, in seconds)
shared between a baseline BENCH_ipg.json and a candidate run, and fails —
exit code 1 — when any shared benchmark's median regressed by more than
the threshold (default 25%).

Cross-machine noise: the committed baseline is produced on a different
machine than the CI runner, so absolute medians are not comparable. The
gate therefore normalizes by default: each benchmark's candidate/baseline
ratio is divided by the *median ratio across all shared benchmarks*,
cancelling the machine-speed factor. A uniform slowdown (slower runner)
normalizes to ~1.0 everywhere; a regression in one benchmark sticks out
as a normalized ratio > 1 + threshold. Pass ``--no-normalize`` when both
documents come from the same machine (e.g. the bench-full workflow
trending its own history).

Run-to-run noise: reduced (smoke) passes take few repetitions, so a
single run's median can spike upward by tens of percent on short
benchmarks under a busy runner, and the load varies *during* the
multi-minute suite, so one global scale cannot absorb it. Two defenses:
``--candidate`` accepts *several* documents (the CI job runs the
reduced pass twice) and scores each benchmark by its best median across
the runs, collapsing one-off spikes; and the normalization scale is
computed *per driver* (benchmarks of one driver run within seconds of
each other, so time-varying runner load cancels locally; drivers with
too few timing benchmarks fall back to the global scale). A genuine
single-benchmark regression still sticks out against its driver-mates
in every run. The trade: a regression that slows *every* benchmark of a
driver uniformly is normalized away here — that class is caught by the
drivers' own acceptance checks (e.g. warm_start asserts v2 load beats
cold generation), which this gate also enforces via failed_checks.

Intentional regressions are allowlisted by exact benchmark name, one per
line (``#`` comments allowed), via ``--allowlist``; allowlisted entries
are reported but never fail the gate. The failed-check counts of both
documents are also compared: a candidate with failed acceptance checks
fails the gate regardless of timings.

Usage:
  compare_bench.py --baseline BENCH_ipg.json --candidate run1.json \
      [run2.json ...] [--threshold 0.25] \
      [--allowlist bench/regress_allowlist.txt] \
      [--summary out.md] [--no-normalize]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path


def load_timings(path: Path) -> tuple[dict[str, float], int]:
    """Returns {benchmark name: median seconds} and the failed-check count."""
    doc = json.loads(path.read_text())
    if doc.get("schema") != "ipg-bench-suite-v1":
        sys.exit(f"error: {path} is not an ipg-bench-suite-v1 document")
    timings: dict[str, float] = {}
    for driver in doc.get("drivers", []):
        for result in driver.get("results", []):
            median = result.get("median")
            if median is None or result.get("unit") != "seconds":
                continue
            if median > 0:
                timings[result["name"]] = median
    failed = int(doc.get("summary", {}).get("failed_checks", 0))
    return timings, failed


def driver_of(name: str) -> str:
    """The driver prefix of a benchmark name (text before the first '/')."""
    return name.split("/", 1)[0]


def load_allowlist(path: Path | None) -> set[str]:
    if path is None or not path.exists():
        return set()
    names = set()
    for line in path.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            names.add(line)
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--candidate", type=Path, required=True, nargs="+",
                        help="one or more candidate documents; each "
                             "benchmark is scored by its best median "
                             "across them")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional regression that fails the gate "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="file of benchmark names exempt from the gate")
    parser.add_argument("--summary", type=Path, default=None,
                        help="write the comparison table (markdown) here")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw medians (same-machine documents)")
    parser.add_argument("--gate-floor", type=float, default=25e-6,
                        help="benchmarks whose baseline median is below "
                             "this many seconds are reported but cannot "
                             "fail the gate (default 25µs: reduced-pass "
                             "medians below that scale are scheduler "
                             "noise; such paths are covered by the "
                             "committed BENCH diff and micro_kernels)")
    args = parser.parse_args()

    base, base_failed = load_timings(args.baseline)
    cand: dict[str, float] = {}
    cand_failed = 0
    for path in args.candidate:
        timings, failed = load_timings(path)
        cand_failed += failed
        for name, value in timings.items():
            cand[name] = min(value, cand.get(name, value))
    allow = load_allowlist(args.allowlist)

    shared = sorted(set(base) & set(cand))
    if not shared:
        sys.exit("error: no shared timing benchmarks between the documents")

    ratios = {name: cand[name] / base[name] for name in shared}
    global_scale = (1.0 if args.no_normalize
                    else statistics.median(ratios.values()))

    # Per-driver scales where a driver has enough shared benchmarks to
    # support a median; the global scale backs up the small ones.
    by_driver: dict[str, list[float]] = {}
    for name in shared:
        by_driver.setdefault(driver_of(name), []).append(ratios[name])
    driver_scale = {
        driver: (statistics.median(values)
                 if len(values) >= 4 and not args.no_normalize
                 else global_scale)
        for driver, values in by_driver.items()
    }

    rows = []           # (name, base, cand, normalized ratio, verdict)
    regressions = []    # names over threshold and not allowlisted
    allowlisted_hits = []
    for name in shared:
        # A benchmark must look regressed under BOTH scales to fail: the
        # driver-local scale cancels time-varying runner load, the global
        # scale keeps a benchmark whose driver-mates merely *improved
        # more* from being flagged relative to them.
        norm = min(ratios[name] / driver_scale[driver_of(name)],
                   ratios[name] / global_scale)
        if norm > 1.0 + args.threshold:
            if base[name] < args.gate_floor:
                verdict = "noisy (below gate floor)"
            elif name in allow:
                verdict = "ALLOWLISTED"
                allowlisted_hits.append(name)
            else:
                verdict = "REGRESSED"
                regressions.append(name)
        elif norm < 1.0 - args.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append((name, base[name], cand[name], norm, verdict))

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    lines = []
    cand_names = ", ".join(p.name for p in args.candidate)
    lines.append(f"# Benchmark comparison: {cand_names} "
                 f"vs {args.baseline.name}")
    lines.append("")
    lines.append(f"- candidate runs (best median per benchmark): "
                 f"{len(args.candidate)}")
    lines.append(f"- shared timing benchmarks: {len(shared)}")
    lines.append(f"- machine-speed scale (global median ratio): "
                 f"{global_scale:.3f}"
                 + (" (normalization off)" if args.no_normalize
                    else "; per-driver scales applied"))
    lines.append(f"- threshold: >{args.threshold:.0%} normalized median "
                 "regression fails")
    lines.append(f"- gate floor: benchmarks under "
                 f"{args.gate_floor * 1e6:.0f} µs are informational only")
    lines.append(f"- failed acceptance checks: baseline {base_failed}, "
                 f"candidate {cand_failed}")
    if only_base:
        lines.append(f"- only in baseline (renamed/removed?): "
                     f"{', '.join(only_base[:10])}"
                     + (" …" if len(only_base) > 10 else ""))
    if only_cand:
        lines.append(f"- only in candidate (new): {', '.join(only_cand[:10])}"
                     + (" …" if len(only_cand) > 10 else ""))
    lines.append("")
    lines.append("| benchmark | baseline | candidate | norm. ratio | verdict |")
    lines.append("|---|---:|---:|---:|---|")

    def fmt(seconds: float) -> str:
        if seconds >= 1e-3:
            return f"{seconds * 1e3:.3f} ms"
        return f"{seconds * 1e6:.2f} µs"

    interesting = [r for r in rows if r[4] != "ok"]
    for name, b, c, norm, verdict in interesting + \
            [r for r in rows if r[4] == "ok"]:
        lines.append(f"| {name} | {fmt(b)} | {fmt(c)} | {norm:.2f} "
                     f"| {verdict} |")

    summary_text = "\n".join(lines) + "\n"
    if args.summary:
        args.summary.write_text(summary_text)

    # Console: the header plus only the non-ok rows (full table in the
    # summary file).
    for line in lines[:12]:
        print(line)
    for name, b, c, norm, verdict in interesting:
        print(f"  {verdict:>12}  {name}: {fmt(b)} -> {fmt(c)} "
              f"(normalized {norm:.2f}x)")
    if allowlisted_hits:
        print(f"{len(allowlisted_hits)} regression(s) allowlisted: "
              + ", ".join(allowlisted_hits))

    failed = False
    if regressions:
        print(f"FAIL: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}: " + ", ".join(regressions))
        failed = True
    if cand_failed > 0:
        print(f"FAIL: candidate run has {cand_failed} failed acceptance "
              "check(s)")
        failed = True
    if not failed:
        print(f"OK: no benchmark regressed beyond {args.threshold:.0%} "
              f"({len(shared)} compared)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
