//===- bench/bench_aggregate.cpp - Merge per-driver JSON documents ---------===//
///
/// \file
/// Merges the `ipg-bench-v1` documents the individual drivers emit into
/// the one suite-level document the perf trajectory tracks
/// (`BENCH_ipg.json`):
///
/// \code{.json}
///   {
///     "schema": "ipg-bench-suite-v1",
///     "reduced": false,
///     "drivers": [ <ipg-bench-v1 documents, in argument order> ],
///     "summary": { "drivers": 12, "results": 123, "checks": 45,
///                  "failed_checks": 0 }
///   }
/// \endcode
///
/// Usage: ipg_bench_aggregate OUT.json IN1.json IN2.json ...
/// Inputs that are missing, unparsable, or carry the wrong schema are hard
/// errors — a silently short suite file would read as a healthy run.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/PerfReport.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ipg;

int main(int argc, char **argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s OUT.json IN1.json [IN2.json ...]\n"
                 "merges ipg-bench-v1 driver documents into the\n"
                 "ipg-bench-suite-v1 trajectory document\n",
                 argc > 0 ? argv[0] : "ipg_bench_aggregate");
    return 2;
  }

  JsonValue Suite = JsonValue::object();
  Suite.set("schema", "ipg-bench-suite-v1");
  bool AnyReduced = false;
  uint64_t NumResults = 0, NumChecks = 0, FailedChecks = 0;
  JsonValue Drivers = JsonValue::array();

  for (int I = 2; I < argc; ++I) {
    const std::string Path = argv[I];
    Expected<JsonValue> Doc = readJsonFile(Path);
    if (!Doc) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                   Doc.error().str().c_str());
      return 2;
    }
    const JsonValue *Schema = Doc->find("schema");
    if (Schema == nullptr || Schema->kind() != JsonValue::Kind::String ||
        Schema->asString() != PerfReport::SchemaName) {
      std::fprintf(stderr, "error: %s: not an %s document\n", Path.c_str(),
                   PerfReport::SchemaName);
      return 2;
    }
    if (const JsonValue *Reduced = Doc->find("reduced"))
      AnyReduced |= Reduced->kind() == JsonValue::Kind::Bool &&
                    Reduced->asBool();
    if (const JsonValue *Results = Doc->find("results"))
      NumResults += Results->items().size();
    if (const JsonValue *Checks = Doc->find("checks"))
      NumChecks += Checks->items().size();
    if (const JsonValue *Failed = Doc->find("failed_checks"))
      FailedChecks += static_cast<uint64_t>(Failed->asNumber());
    Drivers.push(Doc.take());
  }

  Suite.set("reduced", AnyReduced);
  Suite.set("drivers", std::move(Drivers));
  JsonValue &Summary = Suite.set("summary", JsonValue::object());
  Summary.set("drivers", static_cast<uint64_t>(argc - 2));
  Summary.set("results", NumResults);
  Summary.set("checks", NumChecks);
  Summary.set("failed_checks", FailedChecks);

  Expected<size_t> Written = writeJsonFile(Suite, argv[1]);
  if (!Written) {
    std::fprintf(stderr, "error: %s\n", Written.error().str().c_str());
    return 2;
  }
  std::printf("aggregated %d driver document(s) into %s (%zu bytes, "
              "%llu results, %llu/%llu checks failed)\n",
              argc - 2, argv[1], *Written,
              (unsigned long long)NumResults,
              (unsigned long long)FailedChecks,
              (unsigned long long)NumChecks);
  return 0;
}
