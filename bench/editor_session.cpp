//===- bench/editor_session.cpp - Keystroke edit-script replay ------------===//
///
/// \file
/// The editor/LSP workload the incremental parse sessions exist for:
/// replay keystroke-level edit scripts over the real-language corpus
/// grammars (json, c_subset, sql_select) through a ParseDocument and
/// measure re-parse cost against the from-scratch baseline, broken down
/// by the edit's distance from the end of input. A bounded re-parse pays
/// for the damage window, not the document, so cost should track edit
/// *locality* while the scratch baseline tracks document *size*.
///
/// Also carries the issue's acceptance evidence: a single-token edit in
/// the middle of a >= 500-token input must re-parse with >= 5x fewer GSS
/// node constructions (counted via the `glr.gss.nodes_constructed`
/// metrics-registry counter) than the scratch parse, with identical
/// verdict and tree count.
///
//===----------------------------------------------------------------------===//

#include "common/BenchHarness.h"
#include "common/BenchSupport.h"
#include "common/Corpus.h"

#include "core/Ipg.h"
#include "incremental/ParseDocument.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace ipg;
using namespace ipg::bench;
using namespace ipg::testing;

namespace {

/// The real-language corpus members this driver replays edits over.
constexpr const char *Targets[] = {"json", "c_subset", "sql_select"};

/// Builds Prefix + Unit*Repeat + Suffix, growing Repeat past the bench
/// directive until the stream reaches \p MinTokens (the acceptance
/// criterion wants >= 500-token documents regardless of the directive's
/// parse-bench sizing). False when a word is not a symbol of \p G.
bool pumpAtLeast(const Grammar &G, const BenchPump &Pump, size_t MinTokens,
                 std::vector<SymbolId> &Out) {
  size_t UnitWords = splitWords(Pump.Unit).size();
  unsigned Repeat = Pump.Repeat;
  if (UnitWords > 0)
    Repeat = std::max<unsigned>(
        Repeat, static_cast<unsigned>(MinTokens / UnitWords + 1));
  std::string Text = Pump.Prefix;
  for (unsigned I = 0; I < Repeat; ++I) {
    Text += ' ';
    Text += Pump.Unit;
  }
  Text += ' ';
  Text += Pump.Suffix;
  Out.clear();
  for (std::string_view Word : splitWords(Text)) {
    SymbolId Sym = G.symbols().lookup(Word);
    if (Sym == InvalidSymbol)
      return false;
    Out.push_back(Sym);
  }
  return Out.size() >= MinTokens;
}

/// One keystroke at \p Pos: retype the token (replace it with itself) and
/// bring the parse up to date. Content-neutral, so the verdict is stable
/// across the whole script and every re-parse is comparable.
void keystroke(ParseDocument &Doc, size_t Pos) {
  SymbolId Tok = Doc.tokens()[Pos];
  Doc.replace(Pos, Pos + 1, ArrayView<SymbolId>(&Tok, 1));
  Doc.reparse();
}

} // namespace

int main(int argc, char **argv) {
  BenchHarness H("editor_session", argc, argv);
  const int FullReps = 20;
  MetricCounter &NodeCtr =
      MetricsRegistry::process().counter("glr.gss.nodes_constructed");

  Expected<std::vector<CorpusCase>> Corpus = loadCorpusDir(IPG_CORPUS_DIR);
  if (!Corpus) {
    std::fprintf(stderr, "corpus load failed: %s\n",
                 Corpus.error().str().c_str());
    return 1;
  }

  std::printf("Keystroke edit-script replay: bounded re-parse vs from-"
              "scratch\n\n");
  TextTable Table({"grammar", "tokens", "edit at", "bounded", "scratch",
                   "nodes b/s", "reuse"});

  size_t Benched = 0;
  bool AllGrafted = true;
  bool AllVerdictsMatch = true;
  bool AllTreesMatch = true;
  bool MidEvidence = true;
  for (const CorpusCase &Case : *Corpus) {
    if (std::find_if(std::begin(Targets), std::end(Targets),
                     [&](const char *T) { return Case.Name == T; }) ==
        std::end(Targets))
      continue;
    Grammar G;
    Expected<size_t> Built = Case.build(G);
    if (!Built) {
      std::fprintf(stderr, "%s: %s\n", Case.Name.c_str(),
                   Built.error().str().c_str());
      return 1;
    }
    std::vector<SymbolId> Tokens;
    if (!pumpAtLeast(G, Case.Bench, 520, Tokens)) {
      std::fprintf(stderr, "%s: pump did not reach 520 tokens\n",
                   Case.Name.c_str());
      return 1;
    }
    const size_t N = Tokens.size();
    const std::string Key = "editor_session/" + Case.Name;

    Ipg Gen(G);

    // From-scratch baseline: a fresh session per repetition (setTokens
    // resets the parse), over the warm shared graph.
    ParseDocument Fresh(Gen.graph());
    Fresh.setTokens(Tokens);
    const GlrResult ScratchResult = Fresh.reparse();
    const uint64_t TreeCap = 1u << 20;
    const uint64_t ScratchTrees =
        Fresh.forest().countTrees(ScratchResult.Root, TreeCap);
    uint64_t Mark = NodeCtr.total();
    Fresh.setTokens(Tokens);
    Fresh.reparse();
    const uint64_t ScratchNodes = NodeCtr.total() - Mark;
    double ScratchTime = H.measure(Key + "/scratch", FullReps, [&] {
                            Fresh.setTokens(Tokens);
                            Fresh.reparse();
                          }).Median;

    // The edit script: keystrokes at increasing distance from the end of
    // input. The document persists across the script like an editor
    // buffer; every re-parse is bounded by its own damage window.
    ParseDocument Doc(Gen.graph());
    Doc.setTokens(Tokens);
    Doc.reparse();
    for (double Frac : {0.9, 0.75, 0.5, 0.25, 0.1}) {
      const size_t Pos = static_cast<size_t>(static_cast<double>(N) * Frac);
      Mark = NodeCtr.total();
      keystroke(Doc, Pos);
      const uint64_t BoundedNodes = NodeCtr.total() - Mark;
      AllGrafted &= Doc.lastReparse().Path == ReparseStats::Grafted;
      AllVerdictsMatch &=
          Doc.result().Accepted == ScratchResult.Accepted;
      AllTreesMatch &=
          Doc.forest().countTrees(Doc.result().Root, TreeCap) == ScratchTrees;

      char Label[32];
      std::snprintf(Label, sizeof(Label), "%2d%%",
                    static_cast<int>(Frac * 100));
      std::string EditKey = Key + "/edit_at_" + std::to_string(
                                static_cast<int>(Frac * 100));
      double EditTime =
          H.measure(EditKey, FullReps, [&] { keystroke(Doc, Pos); }).Median;
      double Reuse = BoundedNodes
                         ? static_cast<double>(ScratchNodes) /
                               static_cast<double>(BoundedNodes)
                         : static_cast<double>(ScratchNodes);
      char ReuseStr[32];
      std::snprintf(ReuseStr, sizeof(ReuseStr), "%.1fx", Reuse);
      Table.addRow({Case.Name, std::to_string(N), Label, ms(EditTime),
                    ms(ScratchTime),
                    std::to_string(BoundedNodes) + "/" +
                        std::to_string(ScratchNodes),
                    ReuseStr});
      H.report().addCounter(EditKey + "/gss_nodes", BoundedNodes);

      // The issue's headline evidence is the mid-document keystroke.
      if (Frac == 0.5)
        MidEvidence &= BoundedNodes * 5 <= ScratchNodes;
    }
    H.report().addCounter(Key + "/tokens", N);
    H.report().addCounter(Key + "/scratch_gss_nodes", ScratchNodes);
    ++Benched;
  }
  Table.print();

  std::printf("\nshape checks:\n");
  H.check(Benched == 3, "json, c_subset and sql_select all replayed");
  H.check(AllGrafted,
          "every keystroke re-parse converged and grafted the old suffix");
  H.check(AllVerdictsMatch, "bounded and scratch verdicts agree");
  H.check(AllTreesMatch, "bounded and scratch tree counts agree");
  H.check(MidEvidence, "mid-document keystroke re-parses with >= 5x fewer "
                       "GSS node constructions than scratch");
  return H.finish();
}
