//===- earley/EarleyParser.cpp - Earley's algorithm (1970) ----------------===//

#include "earley/EarleyParser.h"

#include "support/Hashing.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace ipg;

namespace {

uint64_t itemKey(RuleId Rule, uint32_t Dot, uint32_t Origin) {
  return (uint64_t(Rule) << 42) | (uint64_t(Dot) << 32) | Origin;
}

uint64_t spanKey(SymbolId Sym, uint32_t Start, uint32_t End) {
  uint64_t Key = hashCombine(0x1234567899abcdefULL, Sym);
  Key = hashCombine(Key, Start);
  return hashCombine(Key, End);
}

/// Completed spans recorded during recognition, for tree rebuilding.
struct SpanTable {
  // (sym, start, end) -> rules that derived it.
  std::unordered_map<uint64_t, std::vector<RuleId>> Rules;
  // (sym, start) -> sorted distinct ends.
  std::unordered_map<uint64_t, std::vector<uint32_t>> Ends;

  void record(SymbolId Sym, uint32_t Start, uint32_t End, RuleId Rule) {
    std::vector<RuleId> &Bucket = Rules[spanKey(Sym, Start, End)];
    if (std::find(Bucket.begin(), Bucket.end(), Rule) != Bucket.end())
      return;
    Bucket.push_back(Rule);
    std::vector<uint32_t> &E = Ends[hashCombine(Sym, Start)];
    if (std::find(E.begin(), E.end(), End) == E.end()) {
      E.push_back(End);
      std::sort(E.begin(), E.end());
    }
  }
};

/// Rebuilds one derivation tree top-down from completed spans.
class TreeBuilder {
public:
  TreeBuilder(const Grammar &G, const std::vector<SymbolId> &Input,
              const SpanTable &Spans, TreeArena &Arena)
      : G(G), Input(Input), Spans(Spans), Arena(Arena) {}

  TreeNode *build(SymbolId Sym, uint32_t Start, uint32_t End) {
    uint64_t Key = spanKey(Sym, Start, End);
    if (OnStack.count(Key))
      return nullptr; // Cyclic derivation; try another split.
    auto It = Spans.Rules.find(Key);
    if (It == Spans.Rules.end())
      return nullptr;
    OnStack.insert(Key);
    TreeNode *Result = nullptr;
    for (RuleId Rule : It->second) {
      std::vector<TreeNode *> Children;
      if (matchSequence(G.rule(Rule).Rhs, 0, Start, End, Children)) {
        Result = Arena.makeNode(Sym, Rule, std::move(Children));
        break;
      }
    }
    OnStack.erase(Key);
    return Result;
  }

private:
  bool matchSequence(const std::vector<SymbolId> &Rhs, size_t Idx,
                     uint32_t Pos, uint32_t End,
                     std::vector<TreeNode *> &Children) {
    if (Idx == Rhs.size())
      return Pos == End;
    SymbolId Sym = Rhs[Idx];
    if (G.symbols().isTerminal(Sym)) {
      if (Pos >= End || Input[Pos] != Sym)
        return false;
      Children.push_back(Arena.makeLeaf(Sym, Pos));
      if (matchSequence(Rhs, Idx + 1, Pos + 1, End, Children))
        return true;
      Children.pop_back();
      return false;
    }
    auto It = Spans.Ends.find(hashCombine(Sym, Pos));
    if (It == Spans.Ends.end())
      return false;
    for (uint32_t SubEnd : It->second) {
      if (SubEnd > End)
        break;
      TreeNode *Sub = build(Sym, Pos, SubEnd);
      if (Sub == nullptr)
        continue;
      Children.push_back(Sub);
      if (matchSequence(Rhs, Idx + 1, SubEnd, End, Children))
        return true;
      Children.pop_back();
    }
    return false;
  }

  const Grammar &G;
  const std::vector<SymbolId> &Input;
  const SpanTable &Spans;
  TreeArena &Arena;
  std::unordered_set<uint64_t> OnStack;
};

} // namespace

EarleyResult EarleyParser::run(const std::vector<SymbolId> &Input,
                               TreeArena *Arena) {
  EarleyResult Result;
  GrammarAnalysis Analysis(G); // Recomputed per parse: grammar-driven.
  const uint32_t N = static_cast<uint32_t>(Input.size());

  std::vector<std::vector<ChartItem>> Chart(N + 1);
  std::vector<std::unordered_set<uint64_t>> Seen(N + 1);
  SpanTable Spans;

  auto Add = [&](uint32_t Set, ChartItem Item) {
    if (Seen[Set].insert(itemKey(Item.Rule, Item.Dot, Item.Origin)).second)
      Chart[Set].push_back(Item);
  };

  for (RuleId Rule : G.rulesFor(G.startSymbol()))
    Add(0, ChartItem{Rule, 0, 0});

  for (uint32_t Pos = 0; Pos <= N; ++Pos) {
    for (size_t Next = 0; Next < Chart[Pos].size(); ++Next) {
      ChartItem Item = Chart[Pos][Next];
      const Rule &R = G.rule(Item.Rule);
      if (Item.Dot == R.Rhs.size()) {
        // Completion: advance every item waiting for R.Lhs at the origin.
        Spans.record(R.Lhs, Item.Origin, Pos, Item.Rule);
        const std::vector<ChartItem> &Origin = Chart[Item.Origin];
        for (size_t I = 0; I < Origin.size(); ++I) {
          ChartItem Waiting = Origin[I];
          const Rule &W = G.rule(Waiting.Rule);
          if (Waiting.Dot < W.Rhs.size() && W.Rhs[Waiting.Dot] == R.Lhs)
            Add(Pos, ChartItem{Waiting.Rule, Waiting.Dot + 1,
                               Waiting.Origin});
        }
        continue;
      }
      SymbolId NextSym = R.Rhs[Item.Dot];
      if (G.symbols().isTerminal(NextSym)) {
        // Scanning.
        if (Pos < N && Input[Pos] == NextSym)
          Add(Pos + 1, ChartItem{Item.Rule, Item.Dot + 1, Item.Origin});
        continue;
      }
      // Prediction, with the Aycock–Horspool nullable advance.
      for (RuleId Predicted : G.rulesFor(NextSym))
        Add(Pos, ChartItem{Predicted, 0, Pos});
      if (Analysis.isNullable(NextSym))
        Add(Pos, ChartItem{Item.Rule, Item.Dot + 1, Item.Origin});
    }
    Result.ChartItems += Chart[Pos].size();
    if (Pos < N && Chart[Pos + 1].empty()) {
      // Before giving up, ensure no pending scans remain (they are all
      // emitted above): an empty next set means the token is rejected.
      Result.ErrorIndex = Pos;
      return Result;
    }
  }

  for (const ChartItem &Item : Chart[N]) {
    const Rule &R = G.rule(Item.Rule);
    if (R.Lhs == G.startSymbol() && Item.Dot == R.Rhs.size() &&
        Item.Origin == 0) {
      Result.Accepted = true;
      break;
    }
  }
  if (!Result.Accepted) {
    Result.ErrorIndex = N;
    return Result;
  }
  if (Arena != nullptr) {
    TreeBuilder Builder(G, Input, Spans, *Arena);
    Result.Tree = Builder.build(G.startSymbol(), 0, N);
  }
  return Result;
}

EarleyResult EarleyParser::parse(const std::vector<SymbolId> &Input,
                                 TreeArena &Arena) {
  return run(Input, &Arena);
}

bool EarleyParser::recognize(const std::vector<SymbolId> &Input) {
  return run(Input, nullptr).Accepted;
}
