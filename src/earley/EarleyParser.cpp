//===- earley/EarleyParser.cpp - Earley's algorithm (1970) ----------------===//

#include "earley/EarleyParser.h"

#include "support/Hashing.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace ipg;

namespace {

uint64_t itemKey(RuleId Rule, uint32_t Dot, uint32_t Origin) {
  return (uint64_t(Rule) << 42) | (uint64_t(Dot) << 32) | Origin;
}

uint64_t spanKey(SymbolId Sym, uint32_t Start, uint32_t End) {
  uint64_t Key = hashCombine(0x1234567899abcdefULL, Sym);
  Key = hashCombine(Key, Start);
  return hashCombine(Key, End);
}

/// Completed spans recorded during recognition, for tree rebuilding.
struct SpanTable {
  // (sym, start, end) -> rules that derived it.
  std::unordered_map<uint64_t, std::vector<RuleId>> Rules;
  // (sym, start) -> sorted distinct ends.
  std::unordered_map<uint64_t, std::vector<uint32_t>> Ends;

  void record(SymbolId Sym, uint32_t Start, uint32_t End, RuleId Rule) {
    std::vector<RuleId> &Bucket = Rules[spanKey(Sym, Start, End)];
    if (std::find(Bucket.begin(), Bucket.end(), Rule) != Bucket.end())
      return;
    Bucket.push_back(Rule);
    std::vector<uint32_t> &E = Ends[hashCombine(Sym, Start)];
    if (std::find(E.begin(), E.end(), End) == E.end()) {
      E.push_back(End);
      std::sort(E.begin(), E.end());
    }
  }
};

/// Rebuilds one derivation tree top-down from completed spans.
class TreeBuilder {
public:
  TreeBuilder(const Grammar &G, ArrayView<SymbolId> Input,
              const SpanTable &Spans, TreeArena &Arena)
      : G(G), Input(Input), Spans(Spans), Arena(Arena) {}

  TreeNode *build(SymbolId Sym, uint32_t Start, uint32_t End) {
    uint64_t Key = spanKey(Sym, Start, End);
    if (OnStack.count(Key))
      return nullptr; // Cyclic derivation; try another split.
    auto It = Spans.Rules.find(Key);
    if (It == Spans.Rules.end())
      return nullptr;
    OnStack.insert(Key);
    TreeNode *Result = nullptr;
    for (RuleId Rule : It->second) {
      std::vector<TreeNode *> Children;
      if (matchSequence(G.rule(Rule).Rhs, 0, Start, End, Children)) {
        Result = Arena.makeNode(Sym, Rule, std::move(Children));
        break;
      }
    }
    OnStack.erase(Key);
    return Result;
  }

private:
  bool matchSequence(const std::vector<SymbolId> &Rhs, size_t Idx,
                     uint32_t Pos, uint32_t End,
                     std::vector<TreeNode *> &Children) {
    if (Idx == Rhs.size())
      return Pos == End;
    SymbolId Sym = Rhs[Idx];
    if (G.symbols().isTerminal(Sym)) {
      if (Pos >= End || Input[Pos] != Sym)
        return false;
      Children.push_back(Arena.makeLeaf(Sym, Pos));
      if (matchSequence(Rhs, Idx + 1, Pos + 1, End, Children))
        return true;
      Children.pop_back();
      return false;
    }
    auto It = Spans.Ends.find(hashCombine(Sym, Pos));
    if (It == Spans.Ends.end())
      return false;
    for (uint32_t SubEnd : It->second) {
      if (SubEnd > End)
        break;
      TreeNode *Sub = build(Sym, Pos, SubEnd);
      if (Sub == nullptr)
        continue;
      Children.push_back(Sub);
      if (matchSequence(Rhs, Idx + 1, SubEnd, End, Children))
        return true;
      Children.pop_back();
    }
    return false;
  }

  const Grammar &G;
  ArrayView<SymbolId> Input;
  const SpanTable &Spans;
  TreeArena &Arena;
  std::unordered_set<uint64_t> OnStack;
};

/// Counts distinct derivation trees over the completed spans, saturating
/// at Cap. The span table records every completable span, but a split the
/// counter explores may still fail partway through a rule's RHS; a span
/// re-entered while still being computed therefore does not always mean a
/// real derivation cycle. Returning Cap at the re-entry point is safe (a
/// non-completable path gets multiplied by 0 before it reaches a total),
/// but caching any value computed under such a provisional Cap is not. So
/// spans track Tarjan-style lowlinks: a total is memoized only when its
/// computation depended on no span that was still open above it; tainted
/// totals are recomputed once their ancestors settle.
class DerivationCounter {
public:
  DerivationCounter(const Grammar &G, ArrayView<SymbolId> Input,
                    const SpanTable &Spans, uint64_t Cap)
      : G(G), Input(Input), Spans(Spans), Cap(Cap),
        SeqMemoUsable(Input.size() < (1u << 18)) {}

  uint64_t count(SymbolId Sym, uint32_t Start, uint32_t End) {
    uint64_t Key = spanKey(Sym, Start, End);
    auto Recorded = Spans.Rules.find(Key);
    if (Recorded == Spans.Rules.end())
      return 0;
    auto Done = Memo.find(Key);
    if (Done != Memo.end())
      return Done->second;
    auto Open = OpenDepth.find(Key);
    if (Open != OpenDepth.end()) {
      // Re-entered while still computing: provisionally infinite. Whether
      // the cycle is real is decided by the factors multiplied in above.
      Low = std::min(Low, Open->second);
      return Cap;
    }
    uint32_t MyDepth = NextDepth++;
    OpenDepth.emplace(Key, MyDepth);
    uint32_t OuterLow = Low;
    Low = kNoDep;
    uint64_t Total = 0;
    for (RuleId Rule : Recorded->second)
      Total = satAdd(Total, seq(Rule, G.rule(Rule).Rhs, 0, Start, End));
    OpenDepth.erase(Key);
    if (Low >= MyDepth) {
      Memo.emplace(Key, Total); // Depended on nothing still open above.
      Low = OuterLow;
    } else {
      Low = std::min(OuterLow, Low);
    }
    return Total;
  }

private:
  static constexpr uint32_t kNoDep = ~uint32_t(0);

  uint64_t seq(RuleId Rule, const std::vector<SymbolId> &Rhs, size_t Idx,
               uint32_t Pos, uint32_t End) {
    if (Idx == Rhs.size())
      return Pos == End ? 1 : 0;
    bool Memoizable = SeqMemoUsable && Rule < (1u << 20) && Idx < (1u << 8);
    uint64_t Key = 0;
    if (Memoizable) {
      Key = (uint64_t(Rule) << 44) | (uint64_t(Idx) << 36) |
            (uint64_t(Pos) << 18) | End;
      auto It = SeqMemo.find(Key);
      if (It != SeqMemo.end())
        return It->second;
    }
    uint32_t OuterLow = Low;
    Low = kNoDep;
    uint64_t Total = seqCompute(Rule, Rhs, Idx, Pos, End);
    if (Memoizable && Low == kNoDep)
      SeqMemo.emplace(Key, Total);
    Low = std::min(OuterLow, Low);
    return Total;
  }

  uint64_t seqCompute(RuleId Rule, const std::vector<SymbolId> &Rhs,
                      size_t Idx, uint32_t Pos, uint32_t End) {
    SymbolId Sym = Rhs[Idx];
    if (G.symbols().isTerminal(Sym)) {
      if (Pos >= End || Input[Pos] != Sym)
        return 0;
      return seq(Rule, Rhs, Idx + 1, Pos + 1, End);
    }
    auto It = Spans.Ends.find(hashCombine(Sym, Pos));
    if (It == Spans.Ends.end())
      return 0;
    uint64_t Total = 0;
    for (uint32_t SubEnd : It->second) {
      if (SubEnd > End)
        break;
      uint64_t Sub = count(Sym, Pos, SubEnd);
      if (Sub == 0)
        continue;
      Total = satAdd(Total, satMul(Sub, seq(Rule, Rhs, Idx + 1, SubEnd, End)));
    }
    return Total;
  }

  uint64_t satAdd(uint64_t A, uint64_t B) const {
    return std::min(Cap, A + B); // A, B <= Cap <= 2^63-1: no overflow.
  }

  uint64_t satMul(uint64_t A, uint64_t B) const {
    if (A == 0 || B == 0)
      return 0;
    if (A > Cap / B)
      return Cap;
    return std::min(Cap, A * B);
  }

  const Grammar &G;
  ArrayView<SymbolId> Input;
  const SpanTable &Spans;
  const uint64_t Cap;
  const bool SeqMemoUsable;
  std::unordered_map<uint64_t, uint64_t> Memo;
  std::unordered_map<uint64_t, uint64_t> SeqMemo;
  std::unordered_map<uint64_t, uint32_t> OpenDepth;
  uint32_t NextDepth = 0;
  uint32_t Low = kNoDep;
};

} // namespace

EarleyResult EarleyParser::run(ArrayView<SymbolId> Input, TreeArena *Arena,
                               uint64_t *TreeCount, uint64_t Cap) {
  EarleyResult Result;
  GrammarAnalysis Analysis(G); // Recomputed per parse: grammar-driven.
  const uint32_t N = static_cast<uint32_t>(Input.size());

  std::vector<std::vector<ChartItem>> Chart(N + 1);
  std::vector<std::unordered_set<uint64_t>> Seen(N + 1);
  SpanTable Spans;

  auto Add = [&](uint32_t Set, ChartItem Item) {
    if (Seen[Set].insert(itemKey(Item.Rule, Item.Dot, Item.Origin)).second)
      Chart[Set].push_back(Item);
  };

  for (RuleId Rule : G.rulesFor(G.startSymbol()))
    Add(0, ChartItem{Rule, 0, 0});

  for (uint32_t Pos = 0; Pos <= N; ++Pos) {
    for (size_t Next = 0; Next < Chart[Pos].size(); ++Next) {
      ChartItem Item = Chart[Pos][Next];
      const Rule &R = G.rule(Item.Rule);
      if (Item.Dot == R.Rhs.size()) {
        // Completion: advance every item waiting for R.Lhs at the origin.
        Spans.record(R.Lhs, Item.Origin, Pos, Item.Rule);
        const std::vector<ChartItem> &Origin = Chart[Item.Origin];
        for (size_t I = 0; I < Origin.size(); ++I) {
          ChartItem Waiting = Origin[I];
          const Rule &W = G.rule(Waiting.Rule);
          if (Waiting.Dot < W.Rhs.size() && W.Rhs[Waiting.Dot] == R.Lhs)
            Add(Pos, ChartItem{Waiting.Rule, Waiting.Dot + 1,
                               Waiting.Origin});
        }
        continue;
      }
      SymbolId NextSym = R.Rhs[Item.Dot];
      if (G.symbols().isTerminal(NextSym)) {
        // Scanning.
        if (Pos < N && Input[Pos] == NextSym)
          Add(Pos + 1, ChartItem{Item.Rule, Item.Dot + 1, Item.Origin});
        continue;
      }
      // Prediction, with the Aycock–Horspool nullable advance.
      for (RuleId Predicted : G.rulesFor(NextSym))
        Add(Pos, ChartItem{Predicted, 0, Pos});
      if (Analysis.isNullable(NextSym))
        Add(Pos, ChartItem{Item.Rule, Item.Dot + 1, Item.Origin});
    }
    Result.ChartItems += Chart[Pos].size();
    if (Pos < N && Chart[Pos + 1].empty()) {
      // Before giving up, ensure no pending scans remain (they are all
      // emitted above): an empty next set means the token is rejected.
      Result.ErrorIndex = Pos;
      return Result;
    }
  }

  for (const ChartItem &Item : Chart[N]) {
    const Rule &R = G.rule(Item.Rule);
    if (R.Lhs == G.startSymbol() && Item.Dot == R.Rhs.size() &&
        Item.Origin == 0) {
      Result.Accepted = true;
      break;
    }
  }
  if (!Result.Accepted) {
    Result.ErrorIndex = N;
    return Result;
  }
  if (Arena != nullptr) {
    TreeBuilder Builder(G, Input, Spans, *Arena);
    Result.Tree = Builder.build(G.startSymbol(), 0, N);
  }
  if (TreeCount != nullptr) {
    DerivationCounter Counter(G, Input, Spans, Cap);
    *TreeCount =
        Counter.count(G.startSymbol(), 0, N);
  }
  return Result;
}

EarleyResult EarleyParser::parse(TokenView Input, TreeArena &Arena) {
  return run(ArrayView<SymbolId>(Input.data() + Input.cursor(),
                                 Input.remaining()),
             &Arena);
}

bool EarleyParser::recognize(TokenView Input) {
  return run(ArrayView<SymbolId>(Input.data() + Input.cursor(),
                                 Input.remaining()),
             nullptr)
      .Accepted;
}

uint64_t EarleyParser::countDerivations(TokenView Input, uint64_t Cap) {
  Cap = std::min<uint64_t>(Cap, ~0ull >> 1); // satAdd: Cap+Cap must not wrap.
  uint64_t Count = 0;
  run(ArrayView<SymbolId>(Input.data() + Input.cursor(), Input.remaining()),
      nullptr, &Count, Cap);
  return Count;
}
