//===- earley/EarleyParser.h - Earley's algorithm (1970) --------*- C++ -*-===//
///
/// \file
/// Earley's general context-free parsing algorithm — the comparison the
/// paper's §7 wanted but skipped ("as we did not have access to a good
/// implementation"). It recognizes the same class of grammars as IPG with
/// no generation phase at all, which is why §2 rates it maximally flexible
/// and minimally fast: every parse step recomputes what a table look-up
/// would have cached.
///
/// Implementation notes: the classic row-per-position chart with
/// prediction/scanning/completion; ε-rules are handled with the Aycock &
/// Horspool refinement (predicting a nullable nonterminal also advances
/// the dot over it). Parse trees are rebuilt top-down from the chart's
/// completed spans, memoized per (symbol, start, end).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_EARLEY_EARLEYPARSER_H
#define IPG_EARLEY_EARLEYPARSER_H

#include "grammar/Analyses.h"
#include "grammar/Tree.h"
#include "support/TokenView.h"

#include <vector>

namespace ipg {

/// Outcome of an Earley parse.
struct EarleyResult {
  bool Accepted = false;
  /// START-rooted tree; null on rejection or in recognize-only mode.
  TreeNode *Tree = nullptr;
  /// Token index of the first set that came up empty (input size when the
  /// end was rejected).
  size_t ErrorIndex = 0;
  uint64_t ChartItems = 0; ///< Total items over all sets.
};

/// Grammar-driven Earley parser (no generation phase; reflects grammar
/// mutations immediately).
class EarleyParser {
public:
  explicit EarleyParser(const Grammar &G) : G(G) {}

  /// Parses \p Input (cursor to end) and builds a tree in \p Arena (any
  /// one derivation).
  EarleyResult parse(TokenView Input, TreeArena &Arena);

  /// Recognition only.
  bool recognize(TokenView Input);

  /// Counts the distinct derivation trees of \p Input, saturating at
  /// \p Cap. Cyclic derivations (a nonterminal deriving itself over the
  /// same span) have infinitely many trees and also count as \p Cap, the
  /// same convention as Forest::countTrees so the two engines can be
  /// differentially compared. Returns 0 when the input is rejected.
  uint64_t countDerivations(TokenView Input, uint64_t Cap = ~0ull >> 1);

  // Thin forwarding overloads for pre-TokenView call sites.
  EarleyResult parse(const std::vector<SymbolId> &Input, TreeArena &Arena) {
    return parse(TokenView(Input), Arena);
  }
  bool recognize(const std::vector<SymbolId> &Input) {
    return recognize(TokenView(Input));
  }
  uint64_t countDerivations(const std::vector<SymbolId> &Input,
                            uint64_t Cap = ~0ull >> 1) {
    return countDerivations(TokenView(Input), Cap);
  }

private:
  struct ChartItem {
    RuleId Rule;
    uint32_t Dot;
    uint32_t Origin;

    bool operator==(const ChartItem &O) const {
      return Rule == O.Rule && Dot == O.Dot && Origin == O.Origin;
    }
  };

  EarleyResult run(ArrayView<SymbolId> Input, TreeArena *Arena,
                   uint64_t *TreeCount = nullptr, uint64_t Cap = 0);

  const Grammar &G;
};

} // namespace ipg

#endif // IPG_EARLEY_EARLEYPARSER_H
