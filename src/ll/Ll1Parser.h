//===- ll/Ll1Parser.h - LL(1) table generation and parsing ------*- C++ -*-===//
///
/// \file
/// The LL(1) baseline of §2: a top-down table (nonterminal × terminal →
/// rule) built from FIRST/FOLLOW and a stack-driven parser. The accepted
/// class is limited to non-left-recursive, non-ambiguous grammars — the
/// limitation Fig 2.1 charges against recursive descent and LL(k).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LL_LL1PARSER_H
#define IPG_LL_LL1PARSER_H

#include "grammar/Analyses.h"
#include "grammar/Tree.h"
#include "support/TokenView.h"

#include <string>
#include <vector>

namespace ipg {

/// An LL(1) table conflict: two rules claim the same (nonterminal,
/// lookahead) cell.
struct Ll1Conflict {
  SymbolId Nonterminal;
  SymbolId Lookahead;
  RuleId First;
  RuleId Second;
};

/// The LL(1) parse table for one grammar version.
class Ll1Table {
public:
  /// Builds the table; conflicts (left recursion, common prefixes,
  /// ambiguity) are recorded rather than fatal — isLl1() reports them.
  explicit Ll1Table(const Grammar &G);

  bool isLl1() const { return Conflicts.empty(); }
  const std::vector<Ll1Conflict> &conflicts() const { return Conflicts; }

  /// The rule to expand for (\p Nonterminal, \p Lookahead); InvalidRule
  /// means error.
  RuleId rule(SymbolId Nonterminal, SymbolId Lookahead) const {
    return Cells[Nonterminal * NumSymbols + Lookahead];
  }

private:
  void addCell(SymbolId Nonterminal, SymbolId Lookahead, RuleId Rule);

  size_t NumSymbols;
  std::vector<RuleId> Cells;
  std::vector<Ll1Conflict> Conflicts;
};

/// Outcome of an LL(1) parse.
struct Ll1Result {
  bool Accepted = false;
  TreeNode *Tree = nullptr;
  size_t ErrorIndex = 0;
};

/// Stack-driven LL(1) parser.
class Ll1Parser {
public:
  Ll1Parser(const Ll1Table &Table, const Grammar &G) : Table(Table), G(G) {}

  Ll1Result parse(TokenView Input, TreeArena &Arena) const;
  bool recognize(TokenView Input) const;

  // Thin forwarding overloads for pre-TokenView call sites.
  Ll1Result parse(const std::vector<SymbolId> &Input, TreeArena &Arena) const {
    return parse(TokenView(Input), Arena);
  }
  bool recognize(const std::vector<SymbolId> &Input) const {
    return recognize(TokenView(Input));
  }

private:
  const Ll1Table &Table;
  const Grammar &G;
};

} // namespace ipg

#endif // IPG_LL_LL1PARSER_H
