//===- ll/Ll1Parser.cpp - LL(1) table generation and parsing --------------===//

#include "ll/Ll1Parser.h"

#include <cassert>

using namespace ipg;

void Ll1Table::addCell(SymbolId Nonterminal, SymbolId Lookahead,
                       RuleId Rule) {
  RuleId &Cell = Cells[Nonterminal * NumSymbols + Lookahead];
  if (Cell == InvalidRule) {
    Cell = Rule;
    return;
  }
  if (Cell == Rule)
    return;
  Conflicts.push_back(Ll1Conflict{Nonterminal, Lookahead, Cell, Rule});
}

Ll1Table::Ll1Table(const Grammar &G) : NumSymbols(G.symbols().size()) {
  Cells.assign(NumSymbols * NumSymbols, InvalidRule);
  GrammarAnalysis Analysis(G);
  for (RuleId Rule : G.activeRules()) {
    const ipg::Rule &R = G.rule(Rule);
    Analysis.firstOfSequence(R.Rhs).forEach([&](size_t T) {
      addCell(R.Lhs, static_cast<SymbolId>(T), Rule);
    });
    if (Analysis.isNullableSequence(R.Rhs))
      Analysis.follow(R.Lhs).forEach([&](size_t T) {
        addCell(R.Lhs, static_cast<SymbolId>(T), Rule);
      });
  }
}

Ll1Result Ll1Parser::parse(TokenView Input, TreeArena &Arena) const {
  Ll1Result Result;
  TreeNode *Root = Arena.makeNode(G.startSymbol(), InvalidRule, {});
  std::vector<TreeNode *> Stack{Root};
  size_t Index = Input.cursor();

  while (!Stack.empty()) {
    TreeNode *Node = Stack.back();
    Stack.pop_back();
    SymbolId Lookahead = Index < Input.size() ? Input[Index] : G.endMarker();
    if (G.symbols().isTerminal(Node->Sym)) {
      if (Node->Sym != Lookahead) {
        Result.ErrorIndex = Index;
        return Result;
      }
      Node->TokenIndex = static_cast<uint32_t>(Index);
      ++Index;
      continue;
    }
    RuleId Rule = Table.rule(Node->Sym, Lookahead);
    if (Rule == InvalidRule) {
      Result.ErrorIndex = Index;
      return Result;
    }
    Node->Rule = Rule;
    const ipg::Rule &R = G.rule(Rule);
    for (SymbolId Sym : R.Rhs)
      Node->Children.push_back(
          G.symbols().isTerminal(Sym)
              ? Arena.makeLeaf(Sym, 0)
              : Arena.makeNode(Sym, InvalidRule, {}));
    for (size_t I = R.Rhs.size(); I > 0; --I)
      Stack.push_back(Node->Children[I - 1]);
  }

  if (Index != Input.size()) {
    Result.ErrorIndex = Index;
    return Result;
  }
  Result.Accepted = true;
  Result.Tree = Root;
  return Result;
}

bool Ll1Parser::recognize(TokenView Input) const {
  std::vector<SymbolId> Stack{G.startSymbol()};
  size_t Index = Input.cursor();
  while (!Stack.empty()) {
    SymbolId Top = Stack.back();
    Stack.pop_back();
    SymbolId Lookahead = Index < Input.size() ? Input[Index] : G.endMarker();
    if (G.symbols().isTerminal(Top)) {
      if (Top != Lookahead)
        return false;
      ++Index;
      continue;
    }
    RuleId Rule = Table.rule(Top, Lookahead);
    if (Rule == InvalidRule)
      return false;
    const ipg::Rule &R = G.rule(Rule);
    for (size_t I = R.Rhs.size(); I > 0; --I)
      Stack.push_back(R.Rhs[I - 1]);
  }
  return Index == Input.size();
}
