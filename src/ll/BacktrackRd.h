//===- ll/BacktrackRd.h - Backtracking recursive descent --------*- C++ -*-===//
///
/// \file
/// OBJ-style recursive descent with backtracking (§2): a top-down parser
/// that tries rule alternatives in order and backtracks on failure. It
/// detects all parses of finitely ambiguous inputs, but "parsing can be
/// expensive for complex expressions" — the step counter makes that cost
/// measurable, and the step limit turns divergence on left-recursive
/// grammars into a reported failure instead of a stack overflow.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LL_BACKTRACKRD_H
#define IPG_LL_BACKTRACKRD_H

#include "grammar/Tree.h"
#include "support/TokenView.h"

#include <functional>
#include <vector>

namespace ipg {

/// Outcome of a backtracking recursive-descent parse.
struct RdResult {
  bool Accepted = false;
  /// True when the step limit cut the search short (e.g. left recursion).
  bool LimitHit = false;
  TreeNode *Tree = nullptr;
  uint64_t Steps = 0;
  /// Number of complete parses found (parse() stops at 1; countParses()
  /// keeps going).
  uint64_t Parses = 0;
};

/// Grammar-driven backtracking parser. No generation phase: it reflects
/// grammar modifications immediately, like Earley.
class BacktrackRdParser {
public:
  explicit BacktrackRdParser(const Grammar &G, uint64_t StepLimit = 2'000'000)
      : G(G), StepLimit(StepLimit) {}

  /// Finds the first parse (leftmost rule order) and its tree.
  RdResult parse(TokenView Input, TreeArena &Arena);

  /// Counts complete parses, stopping at \p Limit.
  RdResult countParses(TokenView Input, uint64_t Limit);

  // Thin forwarding overloads for pre-TokenView call sites.
  RdResult parse(const std::vector<SymbolId> &Input, TreeArena &Arena) {
    return parse(TokenView(Input), Arena);
  }
  RdResult countParses(const std::vector<SymbolId> &Input, uint64_t Limit) {
    return countParses(TokenView(Input), Limit);
  }

private:
  RdResult run(ArrayView<SymbolId> Input, TreeArena *Arena,
               uint64_t ParseLimit);

  const Grammar &G;
  uint64_t StepLimit;
};

} // namespace ipg

#endif // IPG_LL_BACKTRACKRD_H
