//===- ll/BacktrackRd.cpp - Backtracking recursive descent ----------------===//

#include "ll/BacktrackRd.h"

using namespace ipg;

namespace {

/// Enumeration engine: yields every (end position, tree) derivation of a
/// symbol/sequence via continuations. A continuation returning true stops
/// the search.
class Enumerator {
public:
  Enumerator(const Grammar &G, ArrayView<SymbolId> Input,
             TreeArena *Arena, uint64_t StepLimit)
      : G(G), Input(Input), Arena(Arena), StepLimit(StepLimit) {}

  using Cont = std::function<bool(size_t End, TreeNode *Tree)>;

  /// Derives \p Sym starting at \p Pos; calls \p K per derivation.
  /// Besides the step budget, recursion depth is capped: left recursion
  /// would otherwise overflow the native stack long before a large step
  /// limit triggers.
  bool deriveSymbol(SymbolId Sym, size_t Pos, const Cont &K) {
    if (++Steps > StepLimit || Depth > MaxDepth) {
      LimitHit = true;
      return true; // Abort the whole search.
    }
    if (G.symbols().isTerminal(Sym)) {
      if (Pos >= Input.size() || Input[Pos] != Sym)
        return false;
      return K(Pos + 1, Arena ? Arena->makeLeaf(Sym, Pos) : nullptr);
    }
    ++Depth;
    bool Stop = false;
    for (RuleId Rule : G.rulesFor(Sym)) {
      std::vector<TreeNode *> Children;
      Stop = deriveSequence(
          G.rule(Rule).Rhs, 0, Pos, Children, [&](size_t End) {
            return K(End, Arena ? Arena->makeNode(Sym, Rule, Children)
                                : nullptr);
          });
      if (Stop)
        break;
    }
    --Depth;
    return Stop;
  }

  uint64_t steps() const { return Steps; }
  bool limitHit() const { return LimitHit; }

private:
  bool deriveSequence(const std::vector<SymbolId> &Rhs, size_t Idx,
                      size_t Pos, std::vector<TreeNode *> &Children,
                      const std::function<bool(size_t)> &K) {
    if (Idx == Rhs.size())
      return K(Pos);
    return deriveSymbol(Rhs[Idx], Pos, [&](size_t End, TreeNode *Tree) {
      Children.push_back(Tree);
      bool Stop = deriveSequence(Rhs, Idx + 1, End, Children, K);
      Children.pop_back();
      return Stop;
    });
  }

  static constexpr size_t MaxDepth = 4'000;

  const Grammar &G;
  ArrayView<SymbolId> Input;
  TreeArena *Arena;
  uint64_t StepLimit;
  uint64_t Steps = 0;
  size_t Depth = 0;
  bool LimitHit = false;
};

} // namespace

RdResult BacktrackRdParser::run(ArrayView<SymbolId> Input, TreeArena *Arena,
                                uint64_t ParseLimit) {
  RdResult Result;
  Enumerator E(G, Input, Arena, StepLimit);
  E.deriveSymbol(G.startSymbol(), 0, [&](size_t End, TreeNode *Tree) {
    if (End != Input.size())
      return false; // Partial match; keep backtracking.
    ++Result.Parses;
    if (Result.Tree == nullptr)
      Result.Tree = Tree;
    return Result.Parses >= ParseLimit;
  });
  Result.Steps = E.steps();
  Result.LimitHit = E.limitHit();
  Result.Accepted = Result.Parses > 0;
  if (!Result.Accepted)
    Result.Tree = nullptr;
  return Result;
}

RdResult BacktrackRdParser::parse(TokenView Input, TreeArena &Arena) {
  return run(ArrayView<SymbolId>(Input.data() + Input.cursor(),
                                 Input.remaining()),
             &Arena, 1);
}

RdResult BacktrackRdParser::countParses(TokenView Input, uint64_t Limit) {
  return run(ArrayView<SymbolId>(Input.data() + Input.cursor(),
                                 Input.remaining()),
             nullptr, Limit);
}
