//===- incremental/ParseDocument.cpp - Resumable, editable parses ---------===//

#include "incremental/ParseDocument.h"

#include <algorithm>
#include <cassert>

using namespace ipg;

//===----------------------------------------------------------------------===//
// Token buffer edits. Damage merges into one window in new-buffer
// coordinates; over-approximating the window is always sound (it only
// widens the region the re-parse refuses to reuse).
//===----------------------------------------------------------------------===//

void ParseDocument::noteEdit(size_t Begin, size_t End, size_t NewLen) {
  const std::ptrdiff_t D2 =
      static_cast<std::ptrdiff_t>(NewLen) - static_cast<std::ptrdiff_t>(End - Begin);
  if (!Dmg.Pending) {
    Dmg.Pending = true;
    Dmg.Start = Begin;
    Dmg.EndNew = Begin + NewLen;
    Dmg.Delta = D2;
    return;
  }
  Dmg.Start = std::min(Dmg.Start, Begin);
  // Positions past the new edit shift by D2; the merged window's end is
  // whichever of (previous end, this edit's end) lies further right in
  // the post-edit buffer.
  if (End <= Dmg.EndNew)
    Dmg.EndNew = static_cast<size_t>(
        static_cast<std::ptrdiff_t>(Dmg.EndNew) + D2);
  else
    Dmg.EndNew = Begin + NewLen;
  Dmg.Delta += D2;
  Dmg.EndNew = std::max(Dmg.EndNew, Dmg.Start);
}

void ParseDocument::invalidateFrom(size_t Layer) {
  if (State == ParseState::Idle)
    return;
  if (Layer == 0) {
    // No checkpoint survives; the next reparse starts over.
    State = ParseState::Idle;
    return;
  }
  // Layers the parse never reached hold nothing to invalidate. A
  // suspended parse has live state exactly up to position(); a finished
  // one has records through the end-marker layer (== size() here, since
  // the buffer is unchanged).
  const size_t Computed =
      State == ParseState::Suspended ? Engine.position() : Tokens.size();
  if (Layer > Computed)
    return;
  Dmg.Start = Dmg.Pending ? std::min(Dmg.Start, Layer - 1) : Layer - 1;
  Dmg.Pending = true;
  Dmg.EndNew = Tokens.size();
  Dmg.Automaton = true;
}

void ParseDocument::setTokens(std::vector<SymbolId> NewTokens) {
  Tokens = std::move(NewTokens);
  State = ParseState::Idle;
  Dmg = Damage();
}

void ParseDocument::replace(size_t Begin, size_t End,
                            ArrayView<SymbolId> Replacement) {
  Begin = std::min(Begin, Tokens.size());
  End = std::min(std::max(End, Begin), Tokens.size());
  Tokens.erase(Tokens.begin() + static_cast<std::ptrdiff_t>(Begin),
               Tokens.begin() + static_cast<std::ptrdiff_t>(End));
  Tokens.insert(Tokens.begin() + static_cast<std::ptrdiff_t>(Begin),
                Replacement.begin(), Replacement.end());
  noteEdit(Begin, End, Replacement.size());
}

//===----------------------------------------------------------------------===//
// The driver.
//===----------------------------------------------------------------------===//

const GlrResult &ParseDocument::reparse() {
  if (State == ParseState::Finished && !Dmg.Pending) {
    Stats = ReparseStats();
    Stats.Path = ReparseStats::Unchanged;
    Stats.ResumedAt = Tokens.size();
    Stats.ConvergedAt = Tokens.size();
    return LastResult;
  }
  run(Tokens.size(), /*Finish=*/true);
  return LastResult;
}

bool ParseDocument::advanceTo(size_t Layer) {
  Layer = std::min(Layer, Tokens.size());
  if (State == ParseState::Finished && !Dmg.Pending)
    return true; // Already past it, verdict and all.
  run(Layer, /*Finish=*/false);
  return State != ParseState::Finished; // Finished here means "died".
}

void ParseDocument::run(size_t UpTo, bool Finish) {
  Stats = ReparseStats();
  const size_t N = Tokens.size();
  const Damage D = Dmg;
  const size_t OldN =
      static_cast<size_t>(static_cast<std::ptrdiff_t>(N) - D.Delta);

  std::deque<GssLayerRecord> OldTail;
  size_t Resume = 0;
  bool TryGraft = false;
  uint64_t Nodes0 = 0;

  if (State == ParseState::Idle ||
      (D.Pending && Engine.records().empty())) {
    // From scratch: content may share nothing with what was parsed.
    F = Forest();
    Engine.begin(F);
    Stats.Path = ReparseStats::Scratch;
  } else if (!D.Pending ||
             (State == ParseState::Suspended &&
              D.Start >= Engine.position())) {
    // Continue a suspended parse; an edit wholly beyond the parse point
    // never touched anything already parsed.
    Nodes0 = Engine.result().GssNodes;
    Stats.Path = ReparseStats::Resumed;
    Stats.ResumedAt = Engine.position();
  } else {
    // Restore the last checkpoint at or before the damage and re-step.
    Resume = std::min(D.Start, Engine.records().size() - 1);
    // Graft only against a completely recorded previous parse (records
    // for every layer 0..OldN), and only when finishing the whole
    // buffer — a partial advance has nowhere to splice a full suffix.
    TryGraft = !D.Automaton && Finish && UpTo == N &&
               State == ParseState::Finished &&
               Engine.records().size() == OldN + 1 && Resume == D.Start;
    if (TryGraft) {
      auto &Recs = Engine.records();
      for (size_t I = Resume + 1; I < Recs.size(); ++I)
        OldTail.push_back(std::move(Recs[I]));
    }
    Nodes0 = Engine.result().GssNodes;
    Engine.restore(Resume);
    F.beginEpoch(static_cast<uint32_t>(D.Start));
    Stats.Path = ReparseStats::Resumed;
    Stats.ResumedAt = Resume;
  }
  Dmg = Damage();

  bool Grafted = false;
  bool Dead = false;
  while (Engine.position() < UpTo) {
    const size_t Q = Engine.position();
    if (!Engine.step(Tokens[Q])) {
      Dead = true;
      break;
    }
    // The step just recorded layer Q. Once past the damage, the old
    // parse's layer Q - Delta saw the same suffix tokens; probe for
    // re-convergence there.
    if (TryGraft && Q >= D.EndNew) {
      const std::ptrdiff_t P =
          static_cast<std::ptrdiff_t>(Q) - D.Delta;
      if (P > static_cast<std::ptrdiff_t>(Resume) &&
          P < static_cast<std::ptrdiff_t>(OldN) &&
          tryConverge(Q, static_cast<size_t>(P), OldTail, Resume, D)) {
        Grafted = true;
        Stats.Path = ReparseStats::Grafted;
        Stats.ConvergedAt = Q;
        break;
      }
    }
  }

  if (Dead) {
    // Every stack died: the verdict for this buffer is rejection.
    LastResult = Engine.result();
    LastResult.Accepted = false;
    LastResult.Root = nullptr;
    State = ParseState::Finished;
  } else if (Finish || Grafted) {
    LastResult = Engine.finish();
    State = ParseState::Finished;
    if (!Grafted)
      Stats.ConvergedAt = UpTo;
  } else {
    State = ParseState::Suspended;
    Stats.ConvergedAt = Engine.position();
  }
  Stats.GssNodesConstructed = Engine.result().GssNodes - Nodes0;
}

//===----------------------------------------------------------------------===//
// Convergence: precheck, isomorphism walk, forest rebuild, graft.
//===----------------------------------------------------------------------===//

bool ParseDocument::tryConverge(size_t Q, size_t P,
                                std::deque<GssLayerRecord> &OldTail,
                                size_t ResumeLayer, const Damage &D) {
  const GssLayerRecord &OldRec = OldTail[P - ResumeLayer - 1];
  const GssLayerRecord &NewRec = Engine.records()[Q];

  // Cheap precheck: identical sorted state-id sequences.
  if (OldRec.Nodes.size() != NewRec.Nodes.size())
    return false;
  for (size_t I = 0; I < OldRec.Nodes.size(); ++I)
    if (OldRec.Nodes[I]->State != NewRec.Nodes[I]->State)
      return false;

  SeamMaps Maps;
  if (!isoWalk(OldRec, NewRec, ResumeLayer, Maps)) {
    ++Stats.IsoWalkFailures;
    return false;
  }

  // Move the suffix (old layers P+1..OldN) out for rebuilding; put it
  // back if the forest mapping finds a violated assumption, so a later
  // layer can still try.
  std::deque<GssLayerRecord> Suffix;
  const size_t First = P - ResumeLayer;
  for (size_t I = First; I < OldTail.size(); ++I)
    Suffix.push_back(std::move(OldTail[I]));

  std::unordered_map<ForestNode *, ForestNode *> ForestMemo;
  if (!rebuildSuffixForest(Suffix, P, D, Maps, ForestMemo)) {
    for (size_t I = 0; I < Suffix.size(); ++I)
      OldTail[First + I] = std::move(Suffix[I]);
    return false;
  }

  graft(std::move(Suffix), D, Maps, ForestMemo);
  return true;
}

bool ParseDocument::isoWalk(const GssLayerRecord &OldRec,
                            const GssLayerRecord &NewRec, size_t ResumeLayer,
                            SeamMaps &Maps) const {
  std::vector<std::pair<GssNode *, GssNode *>> Work;

  // Pairs O with N; false on any structural disagreement. Nodes at or
  // below the resume layer are shared between the parses, so there the
  // isomorphism must be the identity.
  auto Pair = [&](GssNode *O, GssNode *N) -> bool {
    if (O == N)
      return true;
    if (O->Layer <= ResumeLayer || N->Layer <= ResumeLayer)
      return false;
    auto It = Maps.Phi.find(O);
    if (It != Maps.Phi.end())
      return It->second == N;
    if (O->State != N->State || O->Edges.size() != N->Edges.size())
      return false;
    Maps.Phi.emplace(O, N);
    Work.push_back({O, N});
    return true;
  };

  for (size_t I = 0; I < OldRec.Nodes.size(); ++I)
    if (!Pair(OldRec.Nodes[I], NewRec.Nodes[I]))
      return false;

  // Edge lists are compared in order: the fixpoint that builds a layer
  // is deterministic in the reachable stack, so truly converged parses
  // produce edges in the same order, and any order mismatch is a real
  // structural difference (or close enough — failing is always sound).
  while (!Work.empty()) {
    auto [O, N] = Work.back();
    Work.pop_back();
    for (size_t I = 0; I < O->Edges.size(); ++I) {
      const GssNode::Edge &EO = O->Edges[I];
      const GssNode::Edge &EN = N->Edges[I];
      if (!Pair(EO.Back, EN.Back))
        return false;
      if (EO.Deriv != EN.Deriv) {
        auto [It, Inserted] = Maps.Psi.try_emplace(EO.Deriv, EN.Deriv);
        if (!Inserted && It->second != EN.Deriv)
          return false;
      }
    }
  }
  return true;
}

bool ParseDocument::rebuildSuffixForest(
    std::deque<GssLayerRecord> &Suffix, size_t OldLayer, const Damage &D,
    SeamMaps &Maps,
    std::unordered_map<ForestNode *, ForestNode *> &ForestMemo) {
  const auto DamageStart = static_cast<uint32_t>(D.Start);
  const auto OldDamageEnd = static_cast<uint32_t>(
      static_cast<std::ptrdiff_t>(D.EndNew) - D.Delta);
  constexpr uint32_t NoHint = ~0u;
  std::vector<ForestNode *> Created;

  // Maps one old forest node into the new coordinate system. StartHint
  // resolves the one underdetermined case: a span that *starts* inside
  // the damage gets its new start from context (the re-pointed stack
  // node below its edge, or the preceding sibling's end).
  auto MapNode = [&](auto &&Self, ForestNode *Old,
                     uint32_t StartHint) -> ForestNode * {
    if (auto It = ForestMemo.find(Old); It != ForestMemo.end())
      return It->second;
    if (auto It = Maps.Psi.find(Old); It != Maps.Psi.end()) {
      ForestMemo.emplace(Old, It->second);
      return It->second;
    }
    if (Old->End <= DamageStart) {
      // Entirely inside the unchanged prefix: still true of the new
      // buffer, reuse outright.
      ForestMemo.emplace(Old, Old);
      return Old;
    }
    if (Old->IsToken) {
      if (Old->Start < OldDamageEnd)
        return nullptr; // A damaged token outside the seam map.
      ForestNode *T = F.token(
          Old->Sym, static_cast<uint32_t>(
                        static_cast<std::ptrdiff_t>(Old->Start) + D.Delta));
      ForestMemo.emplace(Old, T);
      return T;
    }
    if (Old->End < OldDamageEnd)
      return nullptr; // Overlaps the damage but was not seam-mapped.
    uint32_t NS;
    if (Old->Start <= DamageStart)
      NS = Old->Start;
    else if (Old->Start >= OldDamageEnd)
      NS = static_cast<uint32_t>(static_cast<std::ptrdiff_t>(Old->Start) +
                                 D.Delta);
    else if (StartHint != NoHint)
      NS = StartHint;
    else
      return nullptr;
    const auto NE = static_cast<uint32_t>(
        static_cast<std::ptrdiff_t>(Old->End) + D.Delta);
    ForestNode *NN = F.restoreNode(Old->Sym, NS, NE, /*IsToken=*/false);
    Created.push_back(NN);
    // Memoize before the children: cyclic forests terminate against the
    // shell, whose span is already final.
    ForestMemo.emplace(Old, NN);
    for (const ForestNode::Alternative &Alt : Old->Alts) {
      std::vector<ForestNode *> Kids;
      Kids.reserve(Alt.Children.size());
      uint32_t Cur = NS; // Children tile the parent span left to right.
      for (ForestNode *C : Alt.Children) {
        ForestNode *MC = Self(Self, C, Cur);
        if (MC == nullptr)
          return nullptr;
        Kids.push_back(MC);
        Cur = MC->End;
      }
      F.addAlternative(NN, Alt.Rule, std::move(Kids));
    }
    return NN;
  };

  for (GssLayerRecord &Rec : Suffix)
    for (GssNode *Nd : Rec.Nodes)
      for (GssNode::Edge &E : Nd->Edges) {
        uint32_t Hint;
        if (auto It = Maps.Phi.find(E.Back); It != Maps.Phi.end())
          Hint = It->second->Layer;
        else if (E.Back->Layer > OldLayer)
          Hint = static_cast<uint32_t>(
              static_cast<std::ptrdiff_t>(E.Back->Layer) + D.Delta);
        else
          Hint = E.Back->Layer; // Shared prefix node keeps its layer.
        if (MapNode(MapNode, E.Deriv, Hint) == nullptr)
          return false;
      }

  // Publish only now, when no assumption can fail anymore: half-built
  // nodes must never become packing targets.
  for (ForestNode *NN : Created)
    F.indexRestored(NN);
  return true;
}

void ParseDocument::graft(
    std::deque<GssLayerRecord> &&Suffix, const Damage &D, SeamMaps &Maps,
    std::unordered_map<ForestNode *, ForestNode *> &ForestMemo) {
  for (GssLayerRecord &Rec : Suffix)
    for (GssNode *Nd : Rec.Nodes) {
      Nd->Layer = static_cast<uint32_t>(
          static_cast<std::ptrdiff_t>(Nd->Layer) + D.Delta);
      for (GssNode::Edge &E : Nd->Edges) {
        if (auto It = Maps.Phi.find(E.Back); It != Maps.Phi.end())
          E.Back = It->second;
        E.Deriv = ForestMemo.at(E.Deriv);
      }
    }
  Engine.adoptTail(std::move(Suffix), Tokens.size());
}
