//===- incremental/ParseDocument.h - Resumable, editable parses -*- C++ -*-===//
///
/// \file
/// An incremental parse *session*: one editable token buffer plus one
/// suspended-or-finished Tomita parse of it, kept consistent across span
/// edits by bounded re-parse. This is the input-side dual of the paper's
/// grammar-side incrementality — §6 repairs the *table* after a grammar
/// edit; ParseDocument repairs the *parse* after a document edit, using
/// the same "only the affected region is recomputed" discipline.
///
/// The machinery rests on two properties of glr/GssEngine.h:
///
///  * Every layer's post-fixpoint frontier is recorded, and under LR(0)
///    it is a deterministic function of the tokens before it — an exact
///    checkpoint. An edit at token E therefore resumes by restoring the
///    layer-E record and re-stepping; everything before E is reused
///    outright.
///
///  * Re-stepping past the damage converges: once the new parse has
///    consumed the replacement tokens, its frontiers are built from the
///    same suffix tokens as the old parse's, so at some layer q the new
///    frontier becomes isomorphic to the old frontier at q - Delta
///    (Delta = net length change). The session detects this with a cheap
///    per-layer state-id precheck followed by a full structural
///    isomorphism walk over the damage region, then *grafts*: the old
///    parse's suffix layers are adopted wholesale (layers shifted by
///    Delta, seam edges re-pointed through the isomorphism, forest
///    derivations rebuilt 1:1 into the new coordinate system) and the
///    parse finishes without ever stepping the suffix. Work is bounded
///    by the damage, not the document.
///
/// Anything that violates a graft assumption falls back — first to
/// continuing the re-step to the end of input (still reusing the prefix),
/// ultimately to a from-scratch parse. Both fallbacks are always sound;
/// the graft is an optimization gated on a proof of convergence.
///
/// A session can also *suspend*: advanceTo() parses a prefix and stops,
/// leaving the engine's live stack intact. incremental/ParseSnapshot.h
/// serializes that state as the PARS section of an `ipg-snap-v2` file so
/// the parse can resume in another process.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_INCREMENTAL_PARSEDOCUMENT_H
#define IPG_INCREMENTAL_PARSEDOCUMENT_H

#include "glr/GssEngine.h"
#include "support/TokenView.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace ipg {

/// How the last reparse() satisfied its request — observability for tests,
/// the editor-session bench, and the ≥5x reuse evidence.
struct ReparseStats {
  /// Which path produced the current result.
  enum PathKind {
    Scratch,   ///< begin() + full step loop (first parse or fallback).
    Resumed,   ///< restored a checkpoint, re-stepped to end of input.
    Grafted,   ///< restored, re-stepped the damage, grafted the old suffix.
    Unchanged, ///< no pending edit; cached result returned.
  };
  PathKind Path = Scratch;

  /// Layer the parse resumed from (0 for scratch).
  size_t ResumedAt = 0;
  /// Layer at which the frontier re-converged with the old parse
  /// (Grafted only; otherwise the input size).
  size_t ConvergedAt = 0;
  /// GSS nodes constructed by this reparse (layers actually stepped plus
  /// acceptance bookkeeping) — the bounded-work evidence. Grafted suffix
  /// nodes are adopted, not constructed, and do not count.
  uint64_t GssNodesConstructed = 0;
  /// Convergence prechecks that matched state-id sequences but failed the
  /// structural isomorphism walk (diagnosis counter).
  uint64_t IsoWalkFailures = 0;
};

/// An editable token buffer married to a resumable GLR parse of it.
/// Single-threaded, like ParseSession; the graph it parses against may be
/// shared and concurrently expanding.
class ParseDocument {
public:
  explicit ParseDocument(ItemSetGraph &Graph) : Engine(Graph) {}

  ParseDocument(const ParseDocument &) = delete;
  ParseDocument &operator=(const ParseDocument &) = delete;

  //===--------------------------------------------------------------------===//
  // The token buffer. Edits are by token span; they invalidate nothing
  // eagerly — damage accumulates and the next reparse()/advanceTo() pays
  // for exactly the merged damage.
  //===--------------------------------------------------------------------===//

  const std::vector<SymbolId> &tokens() const { return Tokens; }
  size_t size() const { return Tokens.size(); }
  TokenView view() const { return TokenView(Tokens); }

  /// Replaces the whole buffer (damage = everything).
  void setTokens(std::vector<SymbolId> NewTokens);

  /// Replaces tokens [Begin, End) with \p Replacement.
  void replace(size_t Begin, size_t End, ArrayView<SymbolId> Replacement);

  void insert(size_t At, ArrayView<SymbolId> NewTokens) {
    replace(At, At, NewTokens);
  }
  void insert(size_t At, SymbolId Tok) {
    replace(At, At, ArrayView<SymbolId>(&Tok, 1));
  }
  void erase(size_t Begin, size_t End) {
    replace(Begin, End, ArrayView<SymbolId>());
  }

  //===--------------------------------------------------------------------===//
  // Parsing.
  //===--------------------------------------------------------------------===//

  /// Brings the parse up to date with the buffer — from scratch, by
  /// resume, or by graft, whichever the pending damage admits — and
  /// returns the result. Idempotent when nothing changed.
  const GlrResult &reparse();

  /// Declares every layer >= \p Layer invalid *without* touching the
  /// token buffer: the graph's ACTION/GOTO behavior changed there — an
  /// epoch migration (server/DocumentSession.h) or an in-place grammar
  /// MODIFY on the graph this document parses against. The next reparse()
  /// restores the last checkpoint before \p Layer and re-steps to the end
  /// of input; convergence grafting is disabled for that re-parse because
  /// the old suffix was computed under the old automaton, so frontier
  /// equality at one layer no longer proves suffix determinism. Layer 0
  /// discards the parse entirely (the next reparse is from scratch).
  /// Layers beyond what was parsed are a no-op.
  void invalidateFrom(size_t Layer);

  /// Parses forward to layer \p Layer (consuming tokens [pos, Layer))
  /// and *suspends* — no end-of-input round, no verdict. Applies any
  /// pending damage first. Returns false when every stack died (the
  /// session then holds a rejected result). Suspended state is exactly
  /// what ParseSnapshot serializes.
  bool advanceTo(size_t Layer);

  /// True when a parse is mid-input (advanceTo short of the end and no
  /// finishing reparse() yet).
  bool suspended() const { return State == ParseState::Suspended; }

  /// Layers parsed so far; == size() + sentinel once finished.
  size_t position() const { return Engine.position(); }

  /// The last finished result. Valid only after a reparse() that was not
  /// pre-empted by new edits.
  const GlrResult &result() const { return LastResult; }

  /// Statistics of the most recent reparse()/advanceTo().
  const ReparseStats &lastReparse() const { return Stats; }

  Forest &forest() { return F; }
  const Forest &forest() const { return F; }
  GssEngine &engine() { return Engine; }
  const GssEngine &engine() const { return Engine; }
  ItemSetGraph &graph() const { return Engine.graph(); }

private:
  friend class ParseSnapshot;

  enum class ParseState {
    Idle,      ///< Nothing parsed yet (or buffer wholly replaced).
    Suspended, ///< Engine mid-input; records cover layers [0, position).
    Finished,  ///< finish() ran; LastResult is the buffer's verdict.
  };

  /// One pending merged damage region, in *new*-buffer coordinates.
  struct Damage {
    bool Pending = false;
    size_t Start = 0;  ///< First changed token (old == new coordinate).
    size_t EndNew = 0; ///< One past the last changed token, new buffer.
    /// New length minus old length; old damage end = EndNew - Delta.
    std::ptrdiff_t Delta = 0;
    /// The automaton itself changed at/after Start (invalidateFrom):
    /// re-step to the end of input, never graft the old suffix.
    bool Automaton = false;
  };

  /// The isomorphism the convergence walk proves: old damage-region GSS
  /// nodes to their new counterparts, old seam forest derivations to the
  /// re-stepped ones.
  struct SeamMaps {
    std::unordered_map<GssNode *, GssNode *> Phi;
    std::unordered_map<ForestNode *, ForestNode *> Psi;
  };

  void noteEdit(size_t Begin, size_t End, size_t NewLen);

  /// The shared driver behind reparse() and advanceTo(): applies pending
  /// damage (scratch / restore / continue), steps to \p UpTo attempting
  /// convergence when eligible, and finishes or suspends.
  void run(size_t UpTo, bool Finish);

  /// One convergence attempt at new layer \p Q against old layer \p P:
  /// state-id precheck, isomorphism walk, forest rebuild, graft. True
  /// when the graft committed (the engine then holds the full stack).
  bool tryConverge(size_t Q, size_t P, std::deque<GssLayerRecord> &OldTail,
                   size_t ResumeLayer, const Damage &D);

  /// Structural isomorphism between the old frontier record \p OldRec
  /// and the new frontier record \p NewRec, walking the damage region
  /// down to pointer-shared prefix nodes (layer <= ResumeLayer). Fills
  /// \p Maps; false on any mismatch.
  bool isoWalk(const GssLayerRecord &OldRec, const GssLayerRecord &NewRec,
               size_t ResumeLayer, SeamMaps &Maps) const;

  /// Rebuilds the old suffix forest into new coordinates: every
  /// derivation on \p Suffix edges is mapped — identity inside the
  /// unchanged prefix, psi across the seam, a 1:1 restoreNode rebuild
  /// (spans shifted by Delta) elsewhere. \p OldLayer is the old-side
  /// convergence layer (suffix records cover OldLayer+1 onward). On
  /// success the rebuilt nodes are published to the packing index; on
  /// failure nothing reachable was created and the graft is abandoned.
  bool rebuildSuffixForest(std::deque<GssLayerRecord> &Suffix,
                           size_t OldLayer, const Damage &D, SeamMaps &Maps,
                           std::unordered_map<ForestNode *, ForestNode *>
                               &ForestMemo);

  /// Commits the graft: fixes the suffix records up in place (layers
  /// shifted, edges re-pointed through phi/the forest memo) and hands
  /// them to the engine.
  void graft(std::deque<GssLayerRecord> &&Suffix, const Damage &D,
             SeamMaps &Maps,
             std::unordered_map<ForestNode *, ForestNode *> &ForestMemo);

  std::vector<SymbolId> Tokens;
  GssEngine Engine;
  Forest F;
  ParseState State = ParseState::Idle;
  Damage Dmg;
  GlrResult LastResult;
  ReparseStats Stats;
};

} // namespace ipg

#endif // IPG_INCREMENTAL_PARSEDOCUMENT_H
