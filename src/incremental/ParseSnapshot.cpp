//===- incremental/ParseSnapshot.cpp - Suspended parses on disk -----------===//
///
/// Encodes a ParseDocument as the PARS extra section of an `ipg-snap-v2`
/// container and rebuilds one from it. The encoding is a ByteStream
/// varint record; indices replace pointers: item sets by their stable
/// graph id, GSS nodes and forest nodes by their position in the
/// serialized order. Only the *live* parse is written — GSS nodes are the
/// back-edge closure of the checkpoint records, the frontier and the
/// root (the arena's abandoned branches are garbage), and forest nodes
/// are the child closure of the derivations those GSS edges carry (stale
/// pre-edit nodes are unreachable and stay behind). That keeps resumed
/// sessions from resurrecting invalidated packing targets: everything
/// rebuilt is consistent with the saved token buffer, so the fresh
/// forest re-indexes all of it at epoch zero.
///
//===----------------------------------------------------------------------===//

#include "incremental/ParseSnapshot.h"

#include "core/Ipg.h"

#include <unordered_map>
#include <unordered_set>

using namespace ipg;

namespace {

/// PARS body format version.
constexpr uint64_t ParsVersion = 1;

/// Wire values of ParseDocument's state (Idle is not serializable).
constexpr uint8_t ParsSuspended = 1;
constexpr uint8_t ParsFinished = 2;

} // namespace

Expected<size_t> ParseSnapshot::save(const Ipg &Gen, const ParseDocument &Doc,
                                     const std::string &Path) {
  if (&Doc.graph() != &Gen.graph())
    return Error("document does not parse against this generator's graph");
  if (Doc.State == ParseDocument::ParseState::Idle)
    return Error("document has no parse to suspend (nothing parsed yet)");
  if (Doc.Dmg.Pending)
    return Error(
        "document has un-reparsed edits; call reparse() or advanceTo() first");

  const GssEngine &Eng = Doc.Engine;

  // The live GSS: back-edge closure of records ∪ frontier ∪ root, in
  // deterministic discovery order. The arena also holds abandoned
  // branches and pre-restore generations; those are not part of the
  // parse and are not written.
  std::vector<const GssNode *> Stack;
  std::unordered_map<const GssNode *, uint32_t> StackIdx;
  auto AddStack = [&](const GssNode *Node) {
    if (Node && StackIdx.emplace(Node, Stack.size()).second)
      Stack.push_back(Node);
  };
  for (const GssLayerRecord &Rec : Eng.records())
    for (const GssNode *Node : Rec.Nodes)
      AddStack(Node);
  for (const GssNode *Node : Eng.frontier())
    AddStack(Node);
  AddStack(Eng.root());
  for (size_t I = 0; I < Stack.size(); ++I)
    for (const GssNode::Edge &E : Stack[I]->Edges)
      AddStack(E.Back);

  // The live forest: child closure of the derivations on those edges
  // (plus the acceptance root), then filtered through creation order so
  // indices are stable and shared children precede nothing they need.
  std::unordered_set<const ForestNode *> Reached;
  std::vector<const ForestNode *> Work;
  auto AddReached = [&](const ForestNode *Node) {
    if (Node && Reached.insert(Node).second)
      Work.push_back(Node);
  };
  for (const GssNode *Node : Stack)
    for (const GssNode::Edge &E : Node->Edges)
      AddReached(E.Deriv);
  AddReached(Eng.result().Root);
  for (size_t I = 0; I < Work.size(); ++I)
    for (const ForestNode::Alternative &Alt : Work[I]->Alts)
      for (const ForestNode *Child : Alt.Children)
        AddReached(Child);
  std::vector<const ForestNode *> FNodes;
  std::unordered_map<const ForestNode *, uint32_t> FIdx;
  for (const ForestNode &Node : Doc.F.nodes())
    if (Reached.count(&Node)) {
      FIdx.emplace(&Node, static_cast<uint32_t>(FNodes.size()));
      FNodes.push_back(&Node);
    }

  ByteWriter Body;
  Body.writeVarint(ParsVersion);
  Body.writeU8(Doc.State == ParseDocument::ParseState::Finished ? ParsFinished
                                                                : ParsSuspended);
  Body.writeU8(Eng.resumed() ? 1 : 0);
  Body.writeVarint(Eng.position());
  Body.writeVarint(Doc.Tokens.size());
  for (SymbolId Tok : Doc.Tokens)
    Body.writeVarint(Tok);

  // Forest, two-phase: every shell first, then the alternatives (cyclic
  // forests need all targets to exist before any child list decodes).
  Body.writeVarint(FNodes.size());
  for (const ForestNode *Node : FNodes) {
    Body.writeVarint(Node->Sym);
    Body.writeVarint(Node->Start);
    Body.writeVarint(Node->End);
    Body.writeU8(Node->IsToken ? 1 : 0);
  }
  for (const ForestNode *Node : FNodes) {
    Body.writeVarint(Node->Alts.size());
    for (const ForestNode::Alternative &Alt : Node->Alts) {
      Body.writeVarint(Alt.Rule);
      Body.writeVarint(Alt.Children.size());
      for (const ForestNode *Child : Alt.Children)
        Body.writeVarint(FIdx.at(Child));
    }
  }

  // GSS, same two-phase shape: states by stable id, then the edges.
  Body.writeVarint(Stack.size());
  for (const GssNode *Node : Stack) {
    Body.writeVarint(Node->State->id());
    Body.writeVarint(Node->Layer);
  }
  for (const GssNode *Node : Stack) {
    Body.writeVarint(Node->Edges.size());
    for (const GssNode::Edge &E : Node->Edges) {
      auto Deriv = FIdx.find(E.Deriv);
      if (Deriv == FIdx.end())
        return Error("suspended parse has a GSS edge with no derivation");
      Body.writeVarint(StackIdx.at(E.Back));
      Body.writeVarint(Deriv->second);
    }
  }

  // Checkpoint records, the frontier and the root, as stack indices.
  Body.writeVarint(Eng.records().size());
  for (const GssLayerRecord &Rec : Eng.records()) {
    Body.writeVarint(Rec.Nodes.size());
    for (const GssNode *Node : Rec.Nodes)
      Body.writeVarint(StackIdx.at(Node));
  }
  Body.writeVarint(Eng.frontier().size());
  for (const GssNode *Node : Eng.frontier())
    Body.writeVarint(StackIdx.at(Node));
  Body.writeVarint(StackIdx.at(Eng.root()));

  // The engine's cumulative result record (stats plus, when finished,
  // the verdict).
  const GlrResult &Res = Eng.result();
  Body.writeU8(Res.Accepted ? 1 : 0);
  Body.writeVarint(Res.Root ? FIdx.at(Res.Root) + 1 : 0);
  Body.writeVarint(Res.ErrorIndex);
  Body.writeVarint(Res.GssNodes);
  Body.writeVarint(Res.GssEdges);
  Body.writeVarint(Res.Shifts);
  Body.writeVarint(Res.Reductions);
  Body.writeVarint(Res.ReductionPaths);

  std::vector<SnapshotExtraSection> Extras(1);
  Extras[0].Tag = SnapshotParsTag;
  Extras[0].Bytes = Body.buffer();
  return Gen.saveSnapshot(Path, Extras, SnapshotFormat::V2);
}

Expected<std::unique_ptr<ParseDocument>>
ParseSnapshot::resume(Ipg &Gen, const std::string &Path) {
  // Graph first: the GSS below is all state *ids*, which only mean the
  // same item sets if the graph is rebuilt exactly as saved. A repaired
  // (fingerprint-mismatched) load gives no such guarantee — and a
  // suspended stack over a different grammar is not worth continuing.
  Expected<SnapshotLoadResult> Load = Gen.loadSnapshot(Path);
  if (!Load)
    return Load.error();
  if (!Load->FingerprintMatched)
    return Error("suspended parse requires an exact grammar match "
                 "(snapshot grammar differs from the saved one)");

  Expected<std::vector<uint8_t>> Body =
      readSnapshotExtraSection(Path, SnapshotParsTag);
  if (!Body)
    return Body.error();
  ByteReader R(Body->data(), Body->size());

  Expected<uint64_t> Version = R.readVarint();
  if (!Version)
    return Version.error();
  if (*Version != ParsVersion)
    return Error("unsupported suspended-parse version");
  Expected<uint8_t> StateByte = R.readU8();
  Expected<uint8_t> ResumedByte = R.readU8();
  Expected<uint64_t> Pos = R.readVarint();
  Expected<uint64_t> NumTokens = R.readVarint();
  if (!StateByte || !ResumedByte || !Pos || !NumTokens)
    return Error("truncated suspended-parse section");
  if ((*StateByte != ParsSuspended && *StateByte != ParsFinished) ||
      *ResumedByte > 1)
    return Error("malformed suspended-parse state");
  const bool Finished = *StateByte == ParsFinished;
  const bool WasResumed = *ResumedByte != 0;
  if (*NumTokens > R.remaining() || *Pos > *NumTokens)
    return Error("malformed suspended-parse position");
  const size_t N = static_cast<size_t>(*NumTokens);

  ItemSetGraph &Graph = Gen.graph();
  Grammar &G = Gen.grammar();
  std::vector<SymbolId> Tokens;
  Tokens.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    Expected<uint64_t> Tok = R.readVarint();
    if (!Tok)
      return Tok.error();
    if (*Tok >= G.symbols().size())
      return Error("suspended-parse token out of range");
    Tokens.push_back(static_cast<SymbolId>(*Tok));
  }

  auto Doc = std::make_unique<ParseDocument>(Graph);
  Doc->Tokens = std::move(Tokens);

  // Forest shells, then alternatives. Every node is complete when its
  // alternatives land, so it is published to the packing index
  // immediately — future derivations of a resumed parse pack onto it.
  Expected<uint64_t> NumForest = R.readVarint();
  if (!NumForest)
    return NumForest.error();
  if (*NumForest > R.remaining())
    return Error("malformed suspended-parse forest");
  Forest &F = Doc->F;
  std::vector<ForestNode *> FNodes;
  FNodes.reserve(static_cast<size_t>(*NumForest));
  std::vector<uint8_t> IsTokenNode(static_cast<size_t>(*NumForest), 0);
  for (size_t I = 0; I < *NumForest; ++I) {
    Expected<uint64_t> Sym = R.readVarint();
    Expected<uint64_t> Start = R.readVarint();
    Expected<uint64_t> End = R.readVarint();
    Expected<uint8_t> IsToken = R.readU8();
    if (!Sym || !Start || !End || !IsToken)
      return Error("truncated suspended-parse forest");
    if (*Sym >= G.symbols().size() || *IsToken > 1 || *Start > *End ||
        *End > N)
      return Error("malformed suspended-parse forest node");
    if (*IsToken &&
        (*End != *Start + 1 ||
         Doc->Tokens[static_cast<size_t>(*Start)] !=
             static_cast<SymbolId>(*Sym)))
      return Error("suspended-parse token node disagrees with the buffer");
    IsTokenNode[I] = static_cast<uint8_t>(*IsToken);
    ForestNode *Node = F.restoreNode(static_cast<SymbolId>(*Sym),
                                     static_cast<uint32_t>(*Start),
                                     static_cast<uint32_t>(*End),
                                     *IsToken != 0);
    F.indexRestored(Node);
    FNodes.push_back(Node);
  }
  for (size_t I = 0; I < FNodes.size(); ++I) {
    Expected<uint64_t> NumAlts = R.readVarint();
    if (!NumAlts)
      return NumAlts.error();
    if (IsTokenNode[I] && *NumAlts != 0)
      return Error("suspended-parse token node carries derivations");
    for (size_t A = 0; A < *NumAlts; ++A) {
      Expected<uint64_t> Rule = R.readVarint();
      Expected<uint64_t> NumChildren = R.readVarint();
      if (!Rule || !NumChildren)
        return Error("truncated suspended-parse forest");
      if (*Rule >= G.numInternedRules() || *NumChildren > R.remaining())
        return Error("malformed suspended-parse derivation");
      std::vector<ForestNode *> Children;
      Children.reserve(static_cast<size_t>(*NumChildren));
      for (size_t C = 0; C < *NumChildren; ++C) {
        Expected<uint64_t> Child = R.readVarint();
        if (!Child)
          return Child.error();
        if (*Child >= FNodes.size())
          return Error("suspended-parse forest child out of range");
        Children.push_back(FNodes[static_cast<size_t>(*Child)]);
      }
      F.addAlternative(FNodes[I], static_cast<RuleId>(*Rule),
                       std::move(Children));
    }
  }

  // GSS shells, then edges. States re-bind by id — the fingerprint gate
  // above is what makes those ids meaningful.
  Expected<uint64_t> NumStack = R.readVarint();
  if (!NumStack)
    return NumStack.error();
  if (*NumStack > R.remaining())
    return Error("malformed suspended-parse stack");
  GssEngine &Eng = Doc->Engine;
  Eng.beginRestore(F);
  std::vector<GssNode *> Stack;
  Stack.reserve(static_cast<size_t>(*NumStack));
  for (size_t I = 0; I < *NumStack; ++I) {
    Expected<uint64_t> StateId = R.readVarint();
    Expected<uint64_t> Layer = R.readVarint();
    if (!StateId || !Layer)
      return Error("truncated suspended-parse stack");
    if (*StateId >= Graph.numSetIds() || *Layer > *Pos)
      return Error("malformed suspended-parse stack node");
    ItemSet *State = Graph.setById(static_cast<uint32_t>(*StateId));
    if (!State)
      return Error("suspended-parse stack references a dead item set");
    Stack.push_back(Eng.restoreNode(State, static_cast<uint32_t>(*Layer)));
  }
  for (size_t I = 0; I < Stack.size(); ++I) {
    Expected<uint64_t> NumEdges = R.readVarint();
    if (!NumEdges)
      return NumEdges.error();
    if (*NumEdges > R.remaining())
      return Error("malformed suspended-parse stack");
    for (size_t E = 0; E < *NumEdges; ++E) {
      Expected<uint64_t> Back = R.readVarint();
      Expected<uint64_t> Deriv = R.readVarint();
      if (!Back || !Deriv)
        return Error("truncated suspended-parse stack");
      if (*Back >= Stack.size() || *Deriv >= FNodes.size() ||
          Stack[static_cast<size_t>(*Back)]->Layer > Stack[I]->Layer)
        return Error("malformed suspended-parse stack edge");
      Stack[I]->Edges.push_back({Stack[static_cast<size_t>(*Back)],
                                 FNodes[static_cast<size_t>(*Deriv)]});
    }
  }

  // Checkpoint records. Counts must agree with the state flags (the
  // engine's invariants), frontiers must be sorted by state id (the
  // convergence precheck's contract) and every node must live in the
  // layer its record covers.
  Expected<uint64_t> NumRecords = R.readVarint();
  if (!NumRecords)
    return NumRecords.error();
  const uint64_t WantRecords =
      (Finished || WasResumed) ? *Pos + 1 : *Pos;
  if (*NumRecords != WantRecords)
    return Error("suspended-parse records disagree with its position");
  std::deque<GssLayerRecord> Records;
  for (size_t L = 0; L < *NumRecords; ++L) {
    Expected<uint64_t> Count = R.readVarint();
    if (!Count)
      return Count.error();
    if (*Count == 0 || *Count > R.remaining())
      return Error("malformed suspended-parse record");
    GssLayerRecord Rec;
    Rec.Nodes.reserve(static_cast<size_t>(*Count));
    uint64_t PrevId = 0;
    for (size_t I = 0; I < *Count; ++I) {
      Expected<uint64_t> Idx = R.readVarint();
      if (!Idx)
        return Idx.error();
      if (*Idx >= Stack.size())
        return Error("suspended-parse record node out of range");
      GssNode *Node = Stack[static_cast<size_t>(*Idx)];
      if (Node->Layer != L)
        return Error("suspended-parse record node in the wrong layer");
      const uint64_t Id = Node->State->id();
      if (I > 0 && Id <= PrevId)
        return Error("suspended-parse record frontier not sorted");
      PrevId = Id;
      Rec.Nodes.push_back(Node);
    }
    Records.push_back(std::move(Rec));
  }

  Expected<uint64_t> NumFrontier = R.readVarint();
  if (!NumFrontier)
    return NumFrontier.error();
  if (*NumFrontier == 0 || *NumFrontier > R.remaining())
    return Error("malformed suspended-parse frontier");
  std::vector<GssNode *> Frontier;
  Frontier.reserve(static_cast<size_t>(*NumFrontier));
  for (size_t I = 0; I < *NumFrontier; ++I) {
    Expected<uint64_t> Idx = R.readVarint();
    if (!Idx)
      return Idx.error();
    if (*Idx >= Stack.size() ||
        Stack[static_cast<size_t>(*Idx)]->Layer != *Pos)
      return Error("suspended-parse frontier node out of range");
    Frontier.push_back(Stack[static_cast<size_t>(*Idx)]);
  }

  Expected<uint64_t> RootIdx = R.readVarint();
  if (!RootIdx)
    return RootIdx.error();
  if (*RootIdx >= Stack.size() ||
      Stack[static_cast<size_t>(*RootIdx)]->Layer != 0)
    return Error("suspended-parse root out of range");
  GssNode *Root = Stack[static_cast<size_t>(*RootIdx)];

  Expected<uint8_t> Accepted = R.readU8();
  Expected<uint64_t> ResRoot = R.readVarint();
  Expected<uint64_t> ErrorIndex = R.readVarint();
  Expected<uint64_t> GssNodes = R.readVarint();
  Expected<uint64_t> GssEdges = R.readVarint();
  Expected<uint64_t> Shifts = R.readVarint();
  Expected<uint64_t> Reductions = R.readVarint();
  Expected<uint64_t> ReductionPaths = R.readVarint();
  if (!Accepted || !ResRoot || !ErrorIndex || !GssNodes || !GssEdges ||
      !Shifts || !Reductions || !ReductionPaths)
    return Error("truncated suspended-parse result");
  if (*Accepted > 1 || *ResRoot > FNodes.size() || *ErrorIndex > N ||
      (*Accepted && (!Finished || *ResRoot == 0)))
    return Error("malformed suspended-parse result");
  if (!R.atEnd())
    return Error("trailing bytes after suspended-parse section");

  GlrResult Res;
  Res.Accepted = *Accepted != 0;
  Res.Root = *ResRoot ? FNodes[static_cast<size_t>(*ResRoot) - 1] : nullptr;
  Res.ErrorIndex = static_cast<size_t>(*ErrorIndex);
  Res.GssNodes = *GssNodes;
  Res.GssEdges = *GssEdges;
  Res.Shifts = *Shifts;
  Res.Reductions = *Reductions;
  Res.ReductionPaths = *ReductionPaths;

  Eng.seatRestored(std::move(Records), std::move(Frontier), Root,
                   static_cast<size_t>(*Pos), WasResumed, Res);
  Doc->State = Finished ? ParseDocument::ParseState::Finished
                        : ParseDocument::ParseState::Suspended;
  if (Finished)
    Doc->LastResult = Res;
  return Doc;
}
