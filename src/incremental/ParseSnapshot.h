//===- incremental/ParseSnapshot.h - Suspended parses on disk ---*- C++ -*-===//
///
/// \file
/// Serialization of a suspended (or finished) ParseDocument as a PARS
/// extra section riding in an `ipg-snap-v2` container (core/Snapshot.h).
/// One file carries both halves of the state a resumed parse needs: the
/// item-set graph the GSS points into (the standard GRAM+GRPH payload)
/// and the parse itself (token buffer, forest, stack, per-layer
/// checkpoint records, position) as the PARS rider. A parse can therefore
/// suspend mid-input in one process and resume — with full bounded
/// re-parse capability — in another:
///
/// \code
///   ParseDocument Doc(Gen.graph());
///   Doc.setTokens(Tokens);
///   Doc.advanceTo(Tokens.size() / 2);              // suspend mid-input
///   ParseSnapshot::save(Gen, Doc, "parse.snap");
///
///   // ... elsewhere, over the same grammar:
///   auto Doc2 = ParseSnapshot::resume(Gen2, "parse.snap");
///   (*Doc2)->reparse();                            // finish the parse
/// \endcode
///
/// Soundness rests on the flat-arena id stability of the v2 graph
/// snapshot: a fingerprint-matched load rebuilds every item set at the id
/// it was saved under, so GSS nodes serialized as state *ids* re-bind to
/// the same states. resume() therefore refuses snapshots whose load was
/// not FingerprintMatched — a remapped/repaired graph has no such
/// guarantee, and a suspended stack over a *different* grammar is not a
/// parse worth continuing anyway.
///
/// The PARS body is a ByteStream varint record (dense; extras are not
/// mmap-adopted). Every index is bounds-checked on decode and the
/// structural invariants (record/position agreement, sorted record
/// frontiers, edge targets in earlier-or-equal layers) are validated, so
/// a corrupted rider is rejected rather than seated.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_INCREMENTAL_PARSESNAPSHOT_H
#define IPG_INCREMENTAL_PARSESNAPSHOT_H

#include "incremental/ParseDocument.h"
#include "support/Expected.h"

#include <memory>
#include <string>

namespace ipg {

class Ipg;

/// Saves and resumes suspended parse sessions. Stateless — both
/// operations are static.
class ParseSnapshot {
public:
  /// Writes \p Gen's graph snapshot plus \p Doc's parse state to \p Path.
  /// \p Doc must belong to \p Gen's graph, must have parsed at least one
  /// layer (not Idle), and must have no pending un-reparsed edit — the
  /// damage window is transient coordination state, not checkpoint state;
  /// call reparse()/advanceTo() first. Returns the bytes written.
  static Expected<size_t> save(const Ipg &Gen, const ParseDocument &Doc,
                               const std::string &Path);

  /// Rebuilds a ParseDocument from \p Path over \p Gen. Warm-starts
  /// \p Gen from the file first (loadSnapshot) and errors unless that
  /// load was FingerprintMatched — state ids in the stack only re-bind
  /// correctly over the exact saved graph. The returned document is in
  /// exactly the suspended/finished state the saved one was in: position,
  /// checkpoints, forest sharing and the resumed flag all survive.
  static Expected<std::unique_ptr<ParseDocument>>
  resume(Ipg &Gen, const std::string &Path);
};

} // namespace ipg

#endif // IPG_INCREMENTAL_PARSESNAPSHOT_H
