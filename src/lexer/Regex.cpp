//===- lexer/Regex.cpp - Regular expression parsing ------------------------===//

#include "lexer/Regex.h"

#include <string>

using namespace ipg;

namespace {

/// Recursive-descent regex parser: alt ::= cat ('|' cat)*,
/// cat ::= rep*, rep ::= atom [*+?], atom ::= char | class | '(' alt ')'.
class RegexParser {
public:
  RegexParser(RegexArena &Arena, std::string_view Pattern)
      : Arena(Arena), Pattern(Pattern) {}

  Expected<const RegexNode *> parse() {
    Expected<const RegexNode *> Result = parseAlt();
    if (!Result)
      return Result;
    if (Pos != Pattern.size())
      return Error("unexpected ')' at offset " + std::to_string(Pos));
    return Result;
  }

private:
  bool atEnd() const { return Pos >= Pattern.size(); }
  char peek() const { return Pattern[Pos]; }

  const RegexNode *epsilon() { return Arena.make({RegexNode::Epsilon, {}}); }

  const RegexNode *chars(const ByteSet &Set) {
    RegexNode Node{RegexNode::Chars, {}};
    Node.Set = Set;
    return Arena.make(Node);
  }

  const RegexNode *binary(RegexNode::KindType Kind, const RegexNode *Lhs,
                          const RegexNode *Rhs) {
    RegexNode Node{Kind, {}};
    Node.Lhs = Lhs;
    Node.Rhs = Rhs;
    return Arena.make(Node);
  }

  const RegexNode *unary(RegexNode::KindType Kind, const RegexNode *Operand) {
    RegexNode Node{Kind, {}};
    Node.Lhs = Operand;
    return Arena.make(Node);
  }

  Expected<const RegexNode *> parseAlt() {
    Expected<const RegexNode *> Lhs = parseCat();
    if (!Lhs)
      return Lhs;
    const RegexNode *Node = *Lhs;
    while (!atEnd() && peek() == '|') {
      ++Pos;
      Expected<const RegexNode *> Rhs = parseCat();
      if (!Rhs)
        return Rhs;
      Node = binary(RegexNode::Alt, Node, *Rhs);
    }
    return Node;
  }

  Expected<const RegexNode *> parseCat() {
    const RegexNode *Node = nullptr;
    while (!atEnd() && peek() != '|' && peek() != ')') {
      Expected<const RegexNode *> Atom = parseRep();
      if (!Atom)
        return Atom;
      Node = Node == nullptr ? *Atom : binary(RegexNode::Concat, Node, *Atom);
    }
    return Node == nullptr ? epsilon() : Node;
  }

  Expected<const RegexNode *> parseRep() {
    Expected<const RegexNode *> Atom = parseAtom();
    if (!Atom)
      return Atom;
    const RegexNode *Node = *Atom;
    while (!atEnd()) {
      char C = peek();
      if (C == '*')
        Node = unary(RegexNode::Star, Node);
      else if (C == '+')
        Node = unary(RegexNode::Plus, Node);
      else if (C == '?')
        Node = unary(RegexNode::Opt, Node);
      else
        break;
      ++Pos;
    }
    return Node;
  }

  Expected<const RegexNode *> parseAtom() {
    if (atEnd())
      return Error("pattern ends where an atom is expected");
    char C = Pattern[Pos++];
    if (C == '(') {
      Expected<const RegexNode *> Inner = parseAlt();
      if (!Inner)
        return Inner;
      if (atEnd() || Pattern[Pos] != ')')
        return Error("missing ')'");
      ++Pos;
      return Inner;
    }
    if (C == '[')
      return parseClass();
    if (C == '.') {
      // Any byte except newline, the conventional '.'.
      ByteSet Set;
      Set.add('\n');
      Set.negate();
      return chars(Set);
    }
    if (C == '\\') {
      Expected<unsigned char> Escaped = parseEscape();
      if (!Escaped)
        return Escaped.error();
      ByteSet Set;
      Set.add(*Escaped);
      return chars(Set);
    }
    if (C == '*' || C == '+' || C == '?' || C == ')')
      return Error(std::string("misplaced '") + C + "'");
    ByteSet Set;
    Set.add(static_cast<unsigned char>(C));
    return chars(Set);
  }

  Expected<unsigned char> parseEscape() {
    if (atEnd())
      return Error("dangling '\\'");
    char C = Pattern[Pos++];
    switch (C) {
    case 'n':
      return static_cast<unsigned char>('\n');
    case 't':
      return static_cast<unsigned char>('\t');
    case 'r':
      return static_cast<unsigned char>('\r');
    case 'f':
      return static_cast<unsigned char>('\f');
    case '0':
      return static_cast<unsigned char>('\0');
    default:
      return static_cast<unsigned char>(C); // Escaped metacharacter.
    }
  }

  Expected<const RegexNode *> parseClass() {
    ByteSet Set;
    bool Negated = false;
    if (!atEnd() && peek() == '^') {
      Negated = true;
      ++Pos;
    }
    bool First = true;
    while (true) {
      if (atEnd())
        return Error("missing ']'");
      char C = Pattern[Pos];
      if (C == ']' && !First)
        break;
      ++Pos;
      First = false;
      unsigned char Lo;
      if (C == '\\') {
        Expected<unsigned char> Escaped = parseEscape();
        if (!Escaped)
          return Escaped.error();
        Lo = *Escaped;
      } else {
        Lo = static_cast<unsigned char>(C);
      }
      // Range a-z (a trailing '-' is a literal).
      if (!atEnd() && peek() == '-' && Pos + 1 < Pattern.size() &&
          Pattern[Pos + 1] != ']') {
        Pos += 1;
        char HiChar = Pattern[Pos++];
        unsigned char Hi;
        if (HiChar == '\\') {
          Expected<unsigned char> Escaped = parseEscape();
          if (!Escaped)
            return Escaped.error();
          Hi = *Escaped;
        } else {
          Hi = static_cast<unsigned char>(HiChar);
        }
        if (Hi < Lo)
          return Error("inverted range in character class");
        Set.addRange(Lo, Hi);
      } else {
        Set.add(Lo);
      }
    }
    ++Pos; // ']'
    if (Negated)
      Set.negate();
    if (Set.empty())
      return Error("empty character class");
    return chars(Set);
  }

  RegexArena &Arena;
  std::string_view Pattern;
  size_t Pos = 0;
};

} // namespace

Expected<const RegexNode *> ipg::parseRegex(RegexArena &Arena,
                                            std::string_view Pattern) {
  return RegexParser(Arena, Pattern).parse();
}

const RegexNode *ipg::literalRegex(RegexArena &Arena,
                                   std::string_view Literal) {
  const RegexNode *Node = nullptr;
  for (char C : Literal) {
    RegexNode CharNode{RegexNode::Chars, {}};
    CharNode.Set.add(static_cast<unsigned char>(C));
    const RegexNode *Atom = Arena.make(CharNode);
    if (Node == nullptr) {
      Node = Atom;
      continue;
    }
    RegexNode Cat{RegexNode::Concat, {}};
    Cat.Lhs = Node;
    Cat.Rhs = Atom;
    Node = Arena.make(Cat);
  }
  if (Node == nullptr)
    Node = Arena.make({RegexNode::Epsilon, {}});
  return Node;
}
