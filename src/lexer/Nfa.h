//===- lexer/Nfa.h - Thompson NFA construction ------------------*- C++ -*-===//
///
/// \file
/// Thompson construction from regex ASTs into one combined NFA per
/// scanner: a shared start state ε-branches into one sub-automaton per
/// token rule, whose accepting state is tagged with the rule index (lower
/// index = higher priority on equal-length matches).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LEXER_NFA_H
#define IPG_LEXER_NFA_H

#include "lexer/Regex.h"

#include <vector>

namespace ipg {

/// Nondeterministic finite automaton over bytes.
class Nfa {
public:
  static constexpr uint32_t NoRule = ~uint32_t(0);

  struct State {
    /// ε-successors.
    std::vector<uint32_t> Epsilon;
    /// Byte-labeled successors.
    std::vector<std::pair<ByteSet, uint32_t>> Moves;
    /// Accepting rule index, NoRule if not accepting.
    uint32_t AcceptRule = NoRule;
  };

  /// Creates the shared start state (id 0).
  Nfa() { States.emplace_back(); }

  /// Adds a token rule's automaton; its accept state is tagged \p Rule.
  void addRule(const RegexNode *Regex, uint32_t Rule);

  uint32_t startState() const { return 0; }
  const State &state(uint32_t Id) const { return States[Id]; }
  size_t size() const { return States.size(); }

  /// ε-closure of \p Set (sorted state ids), in place.
  void closeOverEpsilon(std::vector<uint32_t> &Set) const;

  /// States reachable from \p Set over byte \p C (before ε-closure).
  std::vector<uint32_t> move(const std::vector<uint32_t> &Set,
                             unsigned char C) const;

  /// The highest-priority (lowest) accepting rule in \p Set, or NoRule.
  uint32_t acceptOf(const std::vector<uint32_t> &Set) const;

private:
  uint32_t fresh() {
    States.emplace_back();
    return static_cast<uint32_t>(States.size() - 1);
  }

  /// Builds the fragment for \p Node between new states; returns
  /// (in, out).
  std::pair<uint32_t, uint32_t> build(const RegexNode *Node);

  std::vector<State> States;
};

} // namespace ipg

#endif // IPG_LEXER_NFA_H
