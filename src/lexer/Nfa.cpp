//===- lexer/Nfa.cpp - Thompson NFA construction ---------------------------===//

#include "lexer/Nfa.h"

#include <algorithm>
#include <cassert>

using namespace ipg;

std::pair<uint32_t, uint32_t> Nfa::build(const RegexNode *Node) {
  switch (Node->Kind) {
  case RegexNode::Epsilon: {
    uint32_t In = fresh(), Out = fresh();
    States[In].Epsilon.push_back(Out);
    return {In, Out};
  }
  case RegexNode::Chars: {
    uint32_t In = fresh(), Out = fresh();
    States[In].Moves.emplace_back(Node->Set, Out);
    return {In, Out};
  }
  case RegexNode::Concat: {
    auto [LIn, LOut] = build(Node->Lhs);
    auto [RIn, ROut] = build(Node->Rhs);
    States[LOut].Epsilon.push_back(RIn);
    return {LIn, ROut};
  }
  case RegexNode::Alt: {
    auto [LIn, LOut] = build(Node->Lhs);
    auto [RIn, ROut] = build(Node->Rhs);
    uint32_t In = fresh(), Out = fresh();
    States[In].Epsilon.push_back(LIn);
    States[In].Epsilon.push_back(RIn);
    States[LOut].Epsilon.push_back(Out);
    States[ROut].Epsilon.push_back(Out);
    return {In, Out};
  }
  case RegexNode::Star: {
    auto [SIn, SOut] = build(Node->Lhs);
    uint32_t In = fresh(), Out = fresh();
    States[In].Epsilon.push_back(SIn);
    States[In].Epsilon.push_back(Out);
    States[SOut].Epsilon.push_back(SIn);
    States[SOut].Epsilon.push_back(Out);
    return {In, Out};
  }
  case RegexNode::Plus: {
    auto [SIn, SOut] = build(Node->Lhs);
    uint32_t Out = fresh();
    States[SOut].Epsilon.push_back(SIn);
    States[SOut].Epsilon.push_back(Out);
    return {SIn, Out};
  }
  case RegexNode::Opt: {
    auto [SIn, SOut] = build(Node->Lhs);
    uint32_t In = fresh(), Out = fresh();
    States[In].Epsilon.push_back(SIn);
    States[In].Epsilon.push_back(Out);
    States[SOut].Epsilon.push_back(Out);
    return {In, Out};
  }
  }
  assert(false && "unknown regex node kind");
  return {0, 0};
}

void Nfa::addRule(const RegexNode *Regex, uint32_t Rule) {
  auto [In, Out] = build(Regex);
  States[0].Epsilon.push_back(In);
  States[Out].AcceptRule = Rule;
}

void Nfa::closeOverEpsilon(std::vector<uint32_t> &Set) const {
  std::vector<uint32_t> Worklist = Set;
  std::vector<bool> Seen(States.size(), false);
  for (uint32_t Id : Set)
    Seen[Id] = true;
  while (!Worklist.empty()) {
    uint32_t Id = Worklist.back();
    Worklist.pop_back();
    for (uint32_t Next : States[Id].Epsilon)
      if (!Seen[Next]) {
        Seen[Next] = true;
        Set.push_back(Next);
        Worklist.push_back(Next);
      }
  }
  std::sort(Set.begin(), Set.end());
}

std::vector<uint32_t> Nfa::move(const std::vector<uint32_t> &Set,
                                unsigned char C) const {
  std::vector<uint32_t> Result;
  for (uint32_t Id : Set)
    for (const auto &[Bytes, Target] : States[Id].Moves)
      if (Bytes.test(C))
        Result.push_back(Target);
  std::sort(Result.begin(), Result.end());
  Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
  return Result;
}

uint32_t Nfa::acceptOf(const std::vector<uint32_t> &Set) const {
  uint32_t Best = NoRule;
  for (uint32_t Id : Set)
    Best = std::min(Best, States[Id].AcceptRule);
  return Best;
}
