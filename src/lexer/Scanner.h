//===- lexer/Scanner.h - Longest-match tokenizer ----------------*- C++ -*-===//
///
/// \file
/// A table-driven scanner over the lazy DFA: longest match wins; on equal
/// length the earliest rule wins (so keywords are listed before the
/// identifier rule). Rules flagged asLayout are matched and dropped —
/// SDF's WHITE-SPACE/COMMENT layout declaration. Token kinds are plain
/// spellings; tokenizeToSymbols() interns them into a grammar so scanner
/// output feeds any parser in the repository.
///
/// The rule set is *modifiable*, mirroring the companion scanner
/// generator ISG [HKR87a]: rules may be added, disabled or re-enabled at
/// any time; the automaton is invalidated and lazily rebuilt on the next
/// scan, and the DFA itself is constructed state-by-state by need.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LEXER_SCANNER_H
#define IPG_LEXER_SCANNER_H

#include "grammar/Grammar.h"
#include "lexer/Dfa.h"

#include <memory>
#include <string>
#include <vector>

namespace ipg {

/// One scanned token.
struct ScannedToken {
  uint32_t Rule;     ///< Index of the matching rule.
  std::string Kind;  ///< The rule's token kind.
  std::string Text;  ///< The matched lexeme.
  size_t Offset;     ///< Byte offset in the input.
  unsigned Line;     ///< 1-based line.
  unsigned Column;   ///< 1-based column.
};

/// Longest-match scanner compiled (incrementally) from (regex, kind)
/// rules.
class Scanner {
public:
  Scanner() = default;

  // The compiled LazyDfa references the Nfa member: not movable.
  Scanner(const Scanner &) = delete;
  Scanner &operator=(const Scanner &) = delete;
  Scanner(Scanner &&) = delete;
  Scanner &operator=(Scanner &&) = delete;

  /// Adds a token rule; patterns are validated immediately, the automaton
  /// is rebuilt lazily. May be called at any time.
  Expected<bool> addRule(std::string_view Pattern, std::string Kind,
                         bool IsLayout = false);

  /// Adds a rule matching \p Literal exactly, with kind == the literal.
  void addLiteral(std::string_view Literal);

  /// Matches whitespace (space, tab, newline, CR, FF) as layout.
  void addWhitespaceLayout();

  /// Enables/disables every rule of kind \p Kind; returns the number of
  /// rules affected. Disabled rules drop out of the automaton — the
  /// scanner-side analogue of DELETE-RULE.
  size_t setRuleEnabled(std::string_view Kind, bool Enabled);

  /// Forces compilation now (otherwise the first scan compiles).
  void compile() { ensureCompiled(); }

  /// Scans \p Text into tokens (layout dropped). Errors mention the
  /// offending line and column.
  Expected<std::vector<ScannedToken>> scan(std::string_view Text);

  /// Scans and interns each token's kind into \p G, returning terminal
  /// symbols ready for the parsers. \p Tokens (optional) receives the raw
  /// tokens aligned with the returned ids.
  Expected<std::vector<SymbolId>>
  tokenizeToSymbols(std::string_view Text, Grammar &G,
                    std::vector<ScannedToken> *Tokens = nullptr);

  /// Laziness metrics of the underlying DFA.
  size_t dfaStates() const { return Dfa ? Dfa->numStates() : 0; }
  uint64_t dfaCellsComputed() const { return Dfa ? Dfa->cellsComputed() : 0; }

  /// How often the automaton was (re)built — the incremental-modification
  /// cost metric.
  uint64_t rebuilds() const { return Rebuilds; }

  /// Forces the full DFA (the eager baseline); returns its state count.
  size_t buildDfaEagerly() {
    ensureCompiled();
    return Dfa->buildEagerly();
  }

private:
  struct TokenRule {
    std::string Pattern; ///< Regex source, or the literal itself.
    std::string Kind;
    bool IsLayout;
    bool IsLiteral;
    bool Enabled = true;
  };

  void ensureCompiled();
  void invalidate() {
    Dfa.reset();
    Automaton.reset();
  }

  std::vector<TokenRule> Rules;
  std::unique_ptr<Nfa> Automaton;
  std::unique_ptr<LazyDfa> Dfa;
  uint64_t Rebuilds = 0;
};

} // namespace ipg

#endif // IPG_LEXER_SCANNER_H
