//===- lexer/Dfa.cpp - Lazy subset construction ----------------------------===//

#include "lexer/Dfa.h"

#include "support/Hashing.h"

using namespace ipg;

LazyDfa::LazyDfa(const Nfa &N) : N(N) {
  std::vector<uint32_t> Start{N.startState()};
  N.closeOverEpsilon(Start);
  internState(std::move(Start));
}

uint32_t LazyDfa::internState(std::vector<uint32_t> NfaSet) {
  uint64_t Key = 0x811c9dc5;
  for (uint32_t Id : NfaSet)
    Key = hashCombine(Key, Id);
  std::vector<uint32_t> &Bucket = ByNfaSet[Key];
  for (uint32_t Id : Bucket)
    if (States[Id].NfaSet == NfaSet)
      return Id;
  uint32_t Id = static_cast<uint32_t>(States.size());
  DfaState State;
  State.Accept = N.acceptOf(NfaSet);
  State.NfaSet = std::move(NfaSet);
  States.push_back(std::move(State));
  Bucket.push_back(Id);
  return Id;
}

uint32_t LazyDfa::step(uint32_t StateId, unsigned char C) {
  DfaState &State = States[StateId];
  if (State.Row == nullptr) {
    State.Row = std::make_unique<std::array<uint32_t, 256>>();
    State.Row->fill(Unknown);
  }
  uint32_t &Cell = (*State.Row)[C];
  if (Cell != Unknown)
    return Cell;
  ++CellsComputed;
  std::vector<uint32_t> Next = N.move(State.NfaSet, C);
  if (Next.empty()) {
    Cell = Dead;
    return Dead;
  }
  N.closeOverEpsilon(Next);
  // internState may grow States and invalidate State/Cell references.
  uint32_t Target = internState(std::move(Next));
  (*States[StateId].Row)[C] = Target;
  return Target;
}

size_t LazyDfa::buildEagerly() {
  for (size_t Id = 0; Id < States.size(); ++Id)
    for (unsigned C = 0; C < 256; ++C)
      step(static_cast<uint32_t>(Id), static_cast<unsigned char>(C));
  return States.size();
}
