//===- lexer/Scanner.cpp - Longest-match tokenizer -------------------------===//

#include "lexer/Scanner.h"

#include <cassert>

using namespace ipg;

Expected<bool> Scanner::addRule(std::string_view Pattern, std::string Kind,
                                bool IsLayout) {
  // Validate eagerly so the caller gets the error at the add site.
  RegexArena Probe;
  Expected<const RegexNode *> Regex = parseRegex(Probe, Pattern);
  if (!Regex)
    return Error("in pattern '" + std::string(Pattern) +
                 "': " + Regex.error().Message);
  Rules.push_back(TokenRule{std::string(Pattern), std::move(Kind), IsLayout,
                            /*IsLiteral=*/false});
  invalidate();
  return true;
}

void Scanner::addLiteral(std::string_view Literal) {
  Rules.push_back(TokenRule{std::string(Literal), std::string(Literal),
                            /*IsLayout=*/false, /*IsLiteral=*/true});
  invalidate();
}

void Scanner::addWhitespaceLayout() {
  Expected<bool> Ok = addRule("[ \t\n\r\f]+", "WHITE-SPACE", true);
  assert(Ok && "whitespace pattern must parse");
  (void)Ok;
}

size_t Scanner::setRuleEnabled(std::string_view Kind, bool Enabled) {
  size_t Changed = 0;
  for (TokenRule &Rule : Rules) {
    if (Rule.Kind == Kind && Rule.Enabled != Enabled) {
      Rule.Enabled = Enabled;
      ++Changed;
    }
  }
  if (Changed > 0)
    invalidate();
  return Changed;
}

void Scanner::ensureCompiled() {
  if (Dfa != nullptr)
    return;
  ++Rebuilds;
  Automaton = std::make_unique<Nfa>();
  RegexArena Arena; // ASTs are only needed during Thompson construction.
  for (uint32_t Index = 0; Index < Rules.size(); ++Index) {
    const TokenRule &Rule = Rules[Index];
    if (!Rule.Enabled)
      continue;
    if (Rule.IsLiteral) {
      Automaton->addRule(literalRegex(Arena, Rule.Pattern), Index);
      continue;
    }
    Expected<const RegexNode *> Regex = parseRegex(Arena, Rule.Pattern);
    assert(Regex && "pattern was validated in addRule");
    Automaton->addRule(*Regex, Index);
  }
  Dfa = std::make_unique<LazyDfa>(*Automaton);
}

Expected<std::vector<ScannedToken>> Scanner::scan(std::string_view Text) {
  ensureCompiled();
  std::vector<ScannedToken> Tokens;
  size_t Pos = 0;
  unsigned Line = 1, Column = 1;

  auto Advance = [&](size_t From, size_t To) {
    for (size_t I = From; I < To; ++I) {
      if (Text[I] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
    }
  };

  while (Pos < Text.size()) {
    uint32_t State = Dfa->startState();
    size_t BestEnd = Pos;
    uint32_t BestRule = Dfa->acceptOf(State);
    for (size_t I = Pos; I < Text.size(); ++I) {
      State = Dfa->step(State, static_cast<unsigned char>(Text[I]));
      if (State == LazyDfa::Dead)
        break;
      uint32_t Accept = Dfa->acceptOf(State);
      if (Accept != Nfa::NoRule) {
        BestEnd = I + 1;
        BestRule = Accept;
      }
    }
    if (BestRule == Nfa::NoRule || BestEnd == Pos)
      return Error("no token matches at '" +
                       std::string(Text.substr(Pos, 10)) + "'",
                   Line, Column);
    const TokenRule &Rule = Rules[BestRule];
    if (!Rule.IsLayout)
      Tokens.push_back(ScannedToken{BestRule, Rule.Kind,
                                    std::string(Text.substr(Pos,
                                                            BestEnd - Pos)),
                                    Pos, Line, Column});
    Advance(Pos, BestEnd);
    Pos = BestEnd;
  }
  return Tokens;
}

Expected<std::vector<SymbolId>>
Scanner::tokenizeToSymbols(std::string_view Text, Grammar &G,
                           std::vector<ScannedToken> *Tokens) {
  Expected<std::vector<ScannedToken>> Scanned = scan(Text);
  if (!Scanned)
    return Scanned.error();
  std::vector<SymbolId> Symbols;
  Symbols.reserve(Scanned->size());
  for (const ScannedToken &Token : *Scanned)
    Symbols.push_back(G.symbols().intern(Token.Kind));
  if (Tokens != nullptr)
    *Tokens = Scanned.take();
  return Symbols;
}
