//===- lexer/Dfa.h - Lazy subset construction -------------------*- C++ -*-===//
///
/// \file
/// Subset construction from the combined NFA, with the same lazy
/// discipline the paper applies to parse tables: a DFA state's outgoing
/// row is computed cell-by-cell the first time a byte is seen, so scanning
/// starts immediately against an empty automaton (the ISG idea [HKR87a]).
/// buildEagerly() forces the whole reachable automaton for comparison and
/// for the equivalence tests.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LEXER_DFA_H
#define IPG_LEXER_DFA_H

#include "lexer/Nfa.h"

#include <memory>
#include <unordered_map>

namespace ipg {

/// Deterministic automaton over bytes, built lazily from an NFA.
class LazyDfa {
public:
  static constexpr uint32_t Dead = ~uint32_t(0) - 1;
  static constexpr uint32_t Unknown = ~uint32_t(0);

  explicit LazyDfa(const Nfa &N);

  uint32_t startState() const { return 0; }

  /// The successor of \p State on byte \p C, computing (and caching) the
  /// cell on first use. Returns Dead when no NFA state survives.
  uint32_t step(uint32_t State, unsigned char C);

  /// The accepting rule of \p State (Nfa::NoRule when not accepting).
  uint32_t acceptOf(uint32_t State) const { return States[State].Accept; }

  /// Forces every reachable state and cell; returns the state count.
  size_t buildEagerly();

  size_t numStates() const { return States.size(); }

  /// Number of transition cells computed so far (the laziness metric).
  uint64_t cellsComputed() const { return CellsComputed; }

private:
  struct DfaState {
    std::vector<uint32_t> NfaSet; ///< Sorted ε-closed NFA states.
    std::unique_ptr<std::array<uint32_t, 256>> Row;
    uint32_t Accept = Nfa::NoRule;
  };

  uint32_t internState(std::vector<uint32_t> NfaSet);

  const Nfa &N;
  std::vector<DfaState> States;
  std::unordered_map<uint64_t, std::vector<uint32_t>> ByNfaSet;
  uint64_t CellsComputed = 0;
};

} // namespace ipg

#endif // IPG_LEXER_DFA_H
