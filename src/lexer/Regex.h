//===- lexer/Regex.h - Regular expression ASTs ------------------*- C++ -*-===//
///
/// \file
/// The regular-expression front end of the lexer substrate, standing in
/// for the SDF lexical-syntax notation the companion scanner generator ISG
/// [HKR87a] consumes. Supported syntax: literals, '.', escapes (\n \t \r
/// \f \\ and escaped metacharacters), classes [a-z0-9_] with '^' negation,
/// grouping, '|', '*', '+', '?'.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LEXER_REGEX_H
#define IPG_LEXER_REGEX_H

#include "support/Expected.h"

#include <array>
#include <cstdint>
#include <deque>
#include <string_view>

namespace ipg {

/// A set of bytes (the alphabet is 0..255).
class ByteSet {
public:
  void add(unsigned char C) { Bits[C / 64] |= uint64_t(1) << (C % 64); }

  void addRange(unsigned char Lo, unsigned char Hi) {
    for (unsigned C = Lo; C <= Hi; ++C)
      add(static_cast<unsigned char>(C));
  }

  bool test(unsigned char C) const {
    return (Bits[C / 64] >> (C % 64)) & 1;
  }

  void negate() {
    for (uint64_t &Word : Bits)
      Word = ~Word;
  }

  bool empty() const {
    for (uint64_t Word : Bits)
      if (Word != 0)
        return false;
    return true;
  }

private:
  std::array<uint64_t, 4> Bits{};
};

/// One node of a parsed regular expression.
struct RegexNode {
  enum KindType : uint8_t {
    Epsilon, ///< Matches the empty string.
    Chars,   ///< Matches one byte from Set.
    Concat,  ///< Lhs then Rhs.
    Alt,     ///< Lhs or Rhs.
    Star,    ///< Zero or more Lhs.
    Plus,    ///< One or more Lhs.
    Opt      ///< Zero or one Lhs.
  } Kind;
  ByteSet Set;
  const RegexNode *Lhs = nullptr;
  const RegexNode *Rhs = nullptr;
};

/// Owns regex nodes; parse results live as long as the arena.
class RegexArena {
public:
  const RegexNode *make(RegexNode Node) {
    Nodes.push_back(Node);
    return &Nodes.back();
  }

private:
  std::deque<RegexNode> Nodes;
};

/// Parses \p Pattern into an AST owned by \p Arena.
Expected<const RegexNode *> parseRegex(RegexArena &Arena,
                                       std::string_view Pattern);

/// Convenience: an AST matching \p Literal exactly (no metacharacters).
const RegexNode *literalRegex(RegexArena &Arena, std::string_view Literal);

} // namespace ipg

#endif // IPG_LEXER_REGEX_H
