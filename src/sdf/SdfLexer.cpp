//===- sdf/SdfLexer.cpp - Tokenizer for SDF definitions -------------------===//

#include "sdf/SdfLexer.h"

#include <cassert>

using namespace ipg;

void ipg::configureSdfScanner(Scanner &S) {
  // Keywords first: on equal-length matches the earlier rule wins, so
  // "sorts" scans as the keyword, while "sortsOfThings" scans as ID
  // (longest match).
  for (const char *Keyword :
       {"module", "begin", "end", "lexical", "syntax", "sorts", "layout",
        "functions", "context-free", "priorities", "par", "assoc",
        "left-assoc", "right-assoc"})
    S.addLiteral(Keyword);

  // Punctuation.
  for (const char *Punct : {"->", "{", "}", "(", ")", ",", ">", "<", "-"})
    S.addLiteral(Punct);

  auto Must = [](Expected<bool> R) {
    assert(R && "SDF token pattern must parse");
    (void)R;
  };
  // Token classes, named after the SdfLanguage terminals.
  Must(S.addRule("[a-zA-Z][a-zA-Z0-9\\-_]*", "ID"));
  Must(S.addRule("\"([^\"\\\\\n]|\\\\.)*\"", "LITERAL"));
  Must(S.addRule("[+*]", "ITERATOR"));
  Must(S.addRule("\\[([^\\]\\\\\n]|\\\\.)*\\]", "CHAR-CLASS"));

  // Layout: whitespace and `--` comments to end of line (Appendix B).
  S.addWhitespaceLayout();
  Must(S.addRule("--[^\n]*", "COMMENT", /*IsLayout=*/true));

  S.compile();
}
