//===- sdf/SdfLexer.h - Tokenizer for SDF definitions -----------*- C++ -*-===//
///
/// \file
/// Configures a Scanner with the lexical syntax of SDF (Appendix B):
/// keywords, punctuation, ID, LITERAL, ITERATOR, CHAR-CLASS, whitespace
/// and `--` comments as layout. Token kinds match the terminal names of
/// SdfLanguage, so the scanner output feeds the SDF parser directly.
///
/// §7 bypasses scanning ("the input of all parsers was a stream of
/// lexical tokens already in memory"); the benchmarks therefore tokenize
/// once up front and reuse the streams.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SDF_SDFLEXER_H
#define IPG_SDF_SDFLEXER_H

#include "lexer/Scanner.h"

namespace ipg {

/// Adds the SDF token rules to \p S and compiles it.
void configureSdfScanner(Scanner &S);

} // namespace ipg

#endif // IPG_SDF_SDFLEXER_H
