//===- sdf/SdfLanguage.h - The SDF grammar of SDF (Appendix B) --*- C++ -*-===//
///
/// \file
/// The test grammar of §7: the context-free syntax of SDF itself, from
/// Appendix B, desugared from SDF's iteration notation into plain BNF
/// (X+ / X* / {X ","}+ become generated nonterminals, as the paper's
/// "LR(1) version" of the grammar must also have done).
///
/// Two deliberate deviations keep the grammar deterministic under
/// LALR(1)+Yacc resolution, mirroring the paper's unpublished LR(1)
/// version (see DESIGN.md): the "<"-chain of PRIO-DEF requires at least
/// one "<" (a single ABBREV-F-LIST is already derived by the ">" chain),
/// and X* is desugared as (X+)? so the +/* pair shares one recursion.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SDF_SDFLANGUAGE_H
#define IPG_SDF_SDFLANGUAGE_H

#include "grammar/Grammar.h"

#include <unordered_map>

namespace ipg {

/// What an SDF syntax rule means to the tree walker.
enum class SdfRuleKind {
  Other,
  Module,            ///< "module" ID "begin" ... "end" ID.
  LexicalSyntax,     ///< Populated lexical section.
  ContextFreeSyntax, ///< Populated context-free section.
  SortsDecl,         ///< "sorts" {SORT ","}+.
  Layout,            ///< "layout" {SORT ","}+.
  LexicalFunctions,  ///< "functions" LEXICAL-FUNCTION-DEF+.
  LexicalFunctionDef,///< LEX-ELEM+ "->" SORT.
  LexElemSort,       ///< SORT.
  LexElemIterated,   ///< SORT ITERATOR.
  LexElemLiteral,    ///< LITERAL.
  LexElemClass,      ///< CHAR-CLASS.
  LexElemClassIterated, ///< CHAR-CLASS ITERATOR (see note below).
  LexElemNegClass,   ///< "-" CHAR-CLASS.
  Functions,         ///< "functions" FUNCTION-DEF+.
  FunctionDef,       ///< CF-ELEM* "->" SORT ATTRIBUTES.
  CfElemSort,        ///< SORT.
  CfElemLiteral,     ///< LITERAL.
  CfElemIterated,    ///< SORT ITERATOR.
  CfElemSepIterated, ///< "{" SORT LITERAL "}" ITERATOR.
  Sort               ///< SORT ::= ID.
};

/// Owns the SDF grammar and classifies its rules for tree walking.
class SdfLanguage {
public:
  SdfLanguage();

  Grammar &grammar() { return G; }
  const Grammar &grammar() const { return G; }

  SdfRuleKind kindOf(RuleId Rule) const {
    auto It = Kinds.find(Rule);
    return It == Kinds.end() ? SdfRuleKind::Other : It->second;
  }

  /// The Fig 7.1 modification: CF-ELEM ::= "(" CF-ELEM+ ")?" as
  /// (LHS, RHS) symbol ids, ready for addRule/deleteRule. Non-const:
  /// interning ")?" extends the symbol table.
  std::pair<SymbolId, std::vector<SymbolId>> modificationRule();

private:
  Grammar G;
  std::unordered_map<RuleId, SdfRuleKind> Kinds;
};

} // namespace ipg

#endif // IPG_SDF_SDFLANGUAGE_H
