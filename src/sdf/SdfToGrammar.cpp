//===- sdf/SdfToGrammar.cpp - SDF definitions into live parsers -----------===//

#include "sdf/SdfToGrammar.h"

#include "grammar/GrammarBuilder.h"

#include <map>
#include <set>

using namespace ipg;

namespace {

/// Tree walker over an SDF parse tree.
class Converter {
public:
  Converter(const SdfLanguage &Lang, const std::vector<ScannedToken> &Tokens,
            Grammar &Target, Scanner *TargetScanner)
      : Lang(Lang), Tokens(Tokens), Builder(Target),
        TargetScanner(TargetScanner) {}

  Expected<SdfConversion> run(const TreeNode *Root) {
    // Root is START ::= SDF-DEFINITION.
    if (Root == nullptr || Root->Children.empty())
      return Error("empty SDF parse tree");
    const TreeNode *Module = Root->Children[0];
    if (Lang.kindOf(Module->Rule) != SdfRuleKind::Module)
      return Error("parse tree does not start with an SDF module");

    Result.ModuleName = leafText(Module->Children[1]);
    const TreeNode *Lexical = Module->Children[3];
    const TreeNode *ContextFree = Module->Children[4];

    if (Lang.kindOf(Lexical->Rule) == SdfRuleKind::LexicalSyntax)
      collectLexical(Lexical);
    if (Lang.kindOf(ContextFree->Rule) != SdfRuleKind::ContextFreeSyntax)
      return Error("module has no context-free syntax section");
    if (Expected<bool> R = convertContextFree(ContextFree); !R)
      return R.error();

    if (TargetScanner != nullptr)
      if (Expected<bool> R = buildScanner(); !R)
        return R.error();
    return Result;
  }

private:
  /// The lexeme of the leftmost token under \p Node.
  std::string leafText(const TreeNode *Node) const {
    while (Node != nullptr && !Node->isLeaf())
      Node = Node->Children.empty() ? nullptr : Node->Children[0];
    if (Node == nullptr)
      return "";
    return Tokens[Node->TokenIndex].Text;
  }

  /// Flattens the left-recursive X+ / {X S}+ helper lists into elements.
  void flattenList(const TreeNode *Node, std::vector<const TreeNode *> &Out) {
    if (Node == nullptr)
      return;
    if (Node->Children.size() == 1) {
      Out.push_back(Node->Children[0]);
      return;
    }
    if (!Node->Children.empty()) {
      flattenList(Node->Children[0], Out);
      Out.push_back(Node->Children.back());
    }
  }

  /// Unquotes an SDF LITERAL lexeme ("ab\"c" -> ab"c).
  static std::string unquote(const std::string &Lexeme) {
    std::string Text;
    for (size_t I = 1; I + 1 < Lexeme.size(); ++I) {
      if (Lexeme[I] == '\\' && I + 2 < Lexeme.size())
        ++I;
      Text += Lexeme[I];
    }
    return Text;
  }

  /// Escapes regex metacharacters so a literal matches itself.
  static std::string escapeRegex(const std::string &Text) {
    std::string Out;
    for (char C : Text) {
      if (std::string_view("()[]|*+?.\\").find(C) != std::string_view::npos)
        Out += '\\';
      Out += C;
    }
    return Out;
  }

  // --- Context-free section ---------------------------------------------

  Expected<bool> convertContextFree(const TreeNode *Section) {
    // Children: "context-free" "syntax" SORTS-DECL PRIORITIES FUNCTIONS.
    const TreeNode *SortsDecl = Section->Children[2];
    const TreeNode *Functions = Section->Children[4];

    if (Lang.kindOf(SortsDecl->Rule) == SdfRuleKind::SortsDecl) {
      std::vector<const TreeNode *> Sorts;
      flattenList(SortsDecl->Children[1], Sorts);
      if (!Sorts.empty())
        StartSort = leafText(Sorts.front());
    }
    if (Lang.kindOf(Functions->Rule) != SdfRuleKind::Functions)
      return Error("module declares no context-free functions");

    std::vector<const TreeNode *> Defs;
    flattenList(Functions->Children[1], Defs);
    for (const TreeNode *Def : Defs)
      if (Expected<bool> R = convertFunctionDef(Def); !R)
        return R.error();

    if (StartSort.empty())
      return Error("cannot determine a start sort");
    Builder.rule("START", {StartSort});
    return true;
  }

  Expected<bool> convertFunctionDef(const TreeNode *Def) {
    // Children: CF-ELEM+? "->" SORT ATTRIBUTES.
    std::string Lhs = leafText(Def->Children[2]);
    if (StartSort.empty())
      StartSort = Lhs;
    CfSorts.insert(Lhs);

    std::vector<const TreeNode *> Elems;
    const TreeNode *OptList = Def->Children[0];
    if (!OptList->Children.empty()) // (CF-ELEM+)? was non-empty.
      flattenList(OptList->Children[0], Elems);

    std::vector<SymbolId> Rhs;
    for (const TreeNode *Elem : Elems) {
      switch (Lang.kindOf(Elem->Rule)) {
      case SdfRuleKind::CfElemSort: {
        std::string Name = leafText(Elem);
        CfSorts.insert(Name);
        Rhs.push_back(Builder.symbol(Name));
        break;
      }
      case SdfRuleKind::CfElemLiteral: {
        std::string Text = unquote(leafText(Elem));
        Keywords.insert(Text);
        Rhs.push_back(Builder.symbol(Text));
        break;
      }
      case SdfRuleKind::CfElemIterated: {
        std::string Name = leafText(Elem->Children[0]);
        CfSorts.insert(Name);
        SymbolId Sort = Builder.symbol(Name);
        bool IsPlus = leafText(Elem->Children[1]) == "+";
        Rhs.push_back(IsPlus ? Builder.plus(Sort) : Builder.star(Sort));
        break;
      }
      case SdfRuleKind::CfElemSepIterated: {
        std::string Name = leafText(Elem->Children[1]);
        std::string Sep = unquote(leafText(Elem->Children[2]));
        CfSorts.insert(Name);
        Keywords.insert(Sep);
        SymbolId Sort = Builder.symbol(Name);
        SymbolId SepSym = Builder.symbol(Sep);
        bool IsPlus = leafText(Elem->Children[4]) == "+";
        Rhs.push_back(IsPlus ? Builder.sepPlus(Sort, SepSym)
                             : Builder.sepStar(Sort, SepSym));
        break;
      }
      default:
        return Error("unrecognized CF-ELEM form in function definition");
      }
    }
    Builder.rule(Builder.symbol(Lhs), std::move(Rhs));
    ++Result.NumCfRules;
    return true;
  }

  // --- Lexical section ----------------------------------------------------

  void collectLexical(const TreeNode *Section) {
    // Children: "lexical" "syntax" SORTS-DECL LAYOUT LEXICAL-FUNCTIONS.
    const TreeNode *Layout = Section->Children[3];
    if (Lang.kindOf(Layout->Rule) == SdfRuleKind::Layout) {
      std::vector<const TreeNode *> Sorts;
      flattenList(Layout->Children[1], Sorts);
      for (const TreeNode *Sort : Sorts)
        LayoutSorts.insert(leafText(Sort));
    }
    const TreeNode *Functions = Section->Children[4];
    if (Lang.kindOf(Functions->Rule) != SdfRuleKind::LexicalFunctions)
      return;
    std::vector<const TreeNode *> Defs;
    flattenList(Functions->Children[1], Defs);
    for (const TreeNode *Def : Defs) {
      // LEX-ELEM+ "->" SORT.
      std::string Sort = leafText(Def->Children[2]);
      std::vector<const TreeNode *> Elems;
      flattenList(Def->Children[0], Elems);
      LexDefs[Sort].push_back(Elems);
    }
  }

  /// Composes the regex for a lexical sort; empty string on cycles.
  std::string regexOfSort(const std::string &Sort,
                          std::set<std::string> &OnStack) {
    auto Memo = SortRegex.find(Sort);
    if (Memo != SortRegex.end())
      return Memo->second;
    auto Defs = LexDefs.find(Sort);
    if (Defs == LexDefs.end()) {
      Result.Warnings.push_back("lexical sort '" + Sort +
                                "' has no definition");
      return "";
    }
    if (!OnStack.insert(Sort).second) {
      Result.Warnings.push_back("recursive lexical sort '" + Sort +
                                "' is not regular; skipped");
      return "";
    }
    std::string Alternatives;
    for (const std::vector<const TreeNode *> &Elems : Defs->second) {
      std::string Seq;
      bool Ok = true;
      for (const TreeNode *Elem : Elems) {
        std::string Part = regexOfElem(Elem, OnStack);
        if (Part.empty()) {
          Ok = false;
          break;
        }
        Seq += Part;
      }
      if (!Ok)
        continue;
      if (!Alternatives.empty())
        Alternatives += "|";
      Alternatives += Seq;
    }
    OnStack.erase(Sort);
    std::string Regex =
        Alternatives.empty() ? std::string() : "(" + Alternatives + ")";
    SortRegex.emplace(Sort, Regex);
    return Regex;
  }

  std::string regexOfElem(const TreeNode *Elem,
                          std::set<std::string> &OnStack) {
    switch (Lang.kindOf(Elem->Rule)) {
    case SdfRuleKind::LexElemClass:
      return leafText(Elem); // CHAR-CLASS lexemes are regex classes.
    case SdfRuleKind::LexElemClassIterated:
      return leafText(Elem->Children[0]) + leafText(Elem->Children[1]);
    case SdfRuleKind::LexElemNegClass: {
      std::string Class = leafText(Elem->Children[1]);
      return Class.size() >= 2 ? "[^" + Class.substr(1) : "";
    }
    case SdfRuleKind::LexElemLiteral:
      return escapeRegex(unquote(leafText(Elem)));
    case SdfRuleKind::LexElemSort:
      return regexOfSort(leafText(Elem), OnStack);
    case SdfRuleKind::LexElemIterated: {
      std::string Inner = regexOfSort(leafText(Elem->Children[0]), OnStack);
      if (Inner.empty())
        return "";
      return Inner + leafText(Elem->Children[1]);
    }
    default:
      return "";
    }
  }

  Expected<bool> buildScanner() {
    // Keywords first (priority over identifier-like tokens).
    for (const std::string &Keyword : Keywords) {
      TargetScanner->addLiteral(Keyword);
      ++Result.NumLexRules;
    }
    // Token sorts: lexical sorts referenced from the context-free section.
    std::set<std::string> OnStack;
    for (const auto &[Sort, Defs] : LexDefs) {
      (void)Defs;
      if (!CfSorts.count(Sort) || LayoutSorts.count(Sort))
        continue;
      std::string Regex = regexOfSort(Sort, OnStack);
      if (Regex.empty())
        continue;
      if (Expected<bool> R = TargetScanner->addRule(Regex, Sort); !R)
        return Error("token sort '" + Sort + "': " + R.error().Message);
      ++Result.NumLexRules;
    }
    // Layout sorts are scanned and dropped.
    for (const std::string &Sort : LayoutSorts) {
      std::string Regex = regexOfSort(Sort, OnStack);
      if (Regex.empty())
        continue;
      if (Expected<bool> R = TargetScanner->addRule(Regex, Sort, true); !R)
        return Error("layout sort '" + Sort + "': " + R.error().Message);
      ++Result.NumLexRules;
    }
    TargetScanner->compile();
    return true;
  }

  const SdfLanguage &Lang;
  const std::vector<ScannedToken> &Tokens;
  GrammarBuilder Builder;
  Scanner *TargetScanner;
  SdfConversion Result;

  std::string StartSort;
  std::set<std::string> CfSorts;
  std::set<std::string> Keywords;
  std::set<std::string> LayoutSorts;
  std::map<std::string, std::vector<std::vector<const TreeNode *>>> LexDefs;
  std::map<std::string, std::string> SortRegex;
};

} // namespace

Expected<SdfConversion>
ipg::convertSdfDefinition(const SdfLanguage &Lang, const TreeNode *Root,
                          const std::vector<ScannedToken> &Tokens,
                          Grammar &Target, Scanner *TargetScanner) {
  return Converter(Lang, Tokens, Target, TargetScanner).run(Root);
}
