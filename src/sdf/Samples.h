//===- sdf/Samples.h - The four input sentences of §7 -----------*- C++ -*-===//
///
/// \file
/// Re-authored stand-ins for the measurement inputs of §7: four SDF
/// definitions of increasing size. The originals are lost; these are
/// written to land close to the paper's token counts (37 / 166 / 342 /
/// 475 — `exp.sdf`, `Exam.sdf`, `SDF.sdf`, `ASF.sdf`), with SDF.sdf being
/// a faithful transcription of Appendix B (the SDF definition of SDF
/// itself). EXPERIMENTS.md reports our measured counts next to the
/// paper's.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SDF_SAMPLES_H
#define IPG_SDF_SAMPLES_H

#include <string_view>
#include <vector>

namespace ipg {

/// One measurement input.
struct SdfSample {
  std::string_view Name;       ///< e.g. "exp.sdf".
  std::string_view Text;       ///< The SDF definition.
  size_t PaperTokenCount;      ///< The token count reported in Fig 7.1.
};

/// The four samples, smallest first.
const std::vector<SdfSample> &sdfSamples();

} // namespace ipg

#endif // IPG_SDF_SAMPLES_H
