//===- sdf/SdfToGrammar.h - SDF definitions into live parsers ---*- C++ -*-===//
///
/// \file
/// Turns a *parsed* SDF definition into a working front end for the
/// defined language: the context-free section becomes a Grammar (iteration
/// and separated-list constructs desugared exactly like SdfLanguage), and
/// the lexical section becomes Scanner rules (character classes and
/// literals composed into regexes, layout sorts dropped from the token
/// stream). This is the pipeline behind the paper's universal
/// syntax-directed editor [Log88]: editor syntax in SDF, scanner and
/// parser generated on the fly.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SDF_SDFTOGRAMMAR_H
#define IPG_SDF_SDFTOGRAMMAR_H

#include "grammar/Tree.h"
#include "lexer/Scanner.h"
#include "sdf/SdfLanguage.h"

#include <string>
#include <vector>

namespace ipg {

/// Summary of one conversion.
struct SdfConversion {
  std::string ModuleName;
  size_t NumCfRules = 0;   ///< Rules added to the target grammar.
  size_t NumLexRules = 0;  ///< Scanner rules (tokens + layout + keywords).
  std::vector<std::string> Warnings;
};

/// Converts the SDF parse tree \p Root (built against \p Lang, with leaf
/// text in \p Tokens) into \p Target. When \p TargetScanner is non-null
/// the lexical section and the keyword literals are compiled into it
/// (compile() is called — add no further rules).
///
/// The target start symbol: START ::= S for the first sort declared in
/// the context-free sorts section (or the first function's result sort).
Expected<SdfConversion>
convertSdfDefinition(const SdfLanguage &Lang, const TreeNode *Root,
                     const std::vector<ScannedToken> &Tokens, Grammar &Target,
                     Scanner *TargetScanner = nullptr);

} // namespace ipg

#endif // IPG_SDF_SDFTOGRAMMAR_H
