//===- sdf/Samples.cpp - The four input sentences of §7 -------------------===//

#include "sdf/Samples.h"

using namespace ipg;

namespace {

// exp.sdf — a minimal expression language (paper: 37 tokens).
constexpr std::string_view ExpSdf = R"sdf(
module Exp
begin
  lexical syntax
    sorts ID
    layout WHITE-SPACE
    functions
      [a-z]+     -> ID
      [ \t\n]+   -> WHITE-SPACE
  context-free syntax
    sorts EXP
    functions
      ID            -> EXP
      EXP "+" EXP   -> EXP
      "(" EXP ")"   -> EXP
end Exp
)sdf";

// Exam.sdf — a small imperative language (paper: 166 tokens).
constexpr std::string_view ExamSdf = R"sdf(
module Exam
begin
  lexical syntax
    sorts ID, NAT
    layout WHITE-SPACE, COMMENT
    functions
      [a-zA-Z][a-zA-Z0-9]*  -> ID
      [0-9]+                -> NAT
      [ \t\n]+              -> WHITE-SPACE
      "%" [a-z]*            -> COMMENT
  context-free syntax
    sorts PROGRAM, DECL, TYPE, STAT, EXP
    functions
      "program" ID "is" DECL* "begin" {STAT ";"}+ "end" -> PROGRAM
      "var" {ID ","}+ ":" TYPE ";"                      -> DECL
      "natural"                                         -> TYPE
      "boolean"                                         -> TYPE
      ID ":=" EXP                                       -> STAT
      "if" EXP "then" {STAT ";"}+ "else" {STAT ";"}+ "fi" -> STAT
      "while" EXP "do" {STAT ";"}+ "od"                 -> STAT
      "skip"                                            -> STAT
      ID                                                -> EXP
      NAT                                               -> EXP
      EXP "+" EXP                                       -> EXP  {left-assoc}
      EXP "-" EXP                                       -> EXP  {left-assoc}
      EXP "=" EXP                                       -> EXP
      EXP "and" EXP                                     -> EXP  {assoc}
      "not" EXP                                         -> EXP
      "(" EXP ")"                                       -> EXP
end Exam
)sdf";

// SDF.sdf — Appendix B: the SDF definition of SDF itself (paper: 342
// tokens). Transcribed with this repository's tokenizer conventions.
constexpr std::string_view SdfSdf = R"sdf(
module SDF
begin
  -- The SDF definition of SDF --
  lexical syntax
    sorts
      LETTER, ID-TAIL, ID, ITERATOR,
      ORD-CHAR, C-CHAR, CHAR-RANGE, CHAR-CLASS,
      L-CHAR, LITERAL, COM-CHAR, COM-END
    layout
      WHITE-SPACE, COMMENT
    functions
      [a-zA-Z]               -> LETTER
      [a-zA-Z0-9\-_]         -> ID-TAIL
      LETTER ID-TAIL*        -> ID
      "+"                    -> ITERATOR
      "*"                    -> ITERATOR
      [0-9A-Za-z!$%&'()*+,./:;<=>?@~{|}] -> ORD-CHAR
      "\\" -[]               -> ORD-CHAR
      ORD-CHAR               -> C-CHAR
      "\""                   -> C-CHAR
      C-CHAR                 -> CHAR-RANGE
      C-CHAR "-" C-CHAR      -> CHAR-RANGE
      "[" CHAR-RANGE* "]"    -> CHAR-CLASS
      ORD-CHAR               -> L-CHAR
      [\-\[\]]               -> L-CHAR
      "\"" L-CHAR* "\""      -> LITERAL
      [ \t\n\r\f]            -> WHITE-SPACE
      -[\n\-]                -> COM-CHAR
      "-" -[\n\-]            -> COM-CHAR
      "--"                   -> COM-END
      "-\n"                  -> COM-END
      "\n"                   -> COM-END
      "--" COM-CHAR* COM-END -> COMMENT
  context-free syntax
    sorts
      SDF-DEFINITION, LEXICAL-SYNTAX, SORTS-DECL, SORT, LAYOUT,
      LEXICAL-FUNCTIONS, LEXICAL-FUNCTION-DEF, LEX-ELEM,
      CONTEXT-FREE-SYNTAX, PRIORITIES, PRIO-DEF, ABBREV-F-LIST,
      ABBREV-F-DEF, FUNCTIONS, FUNCTION-DEF, CF-ELEM, ATTRIBUTES,
      ATTRIBUTE
    functions
      "module" ID "begin" LEXICAL-SYNTAX CONTEXT-FREE-SYNTAX "end" ID
                                           -> SDF-DEFINITION
      "lexical" "syntax" SORTS-DECL LAYOUT LEXICAL-FUNCTIONS
                                           -> LEXICAL-SYNTAX
                                           -> LEXICAL-SYNTAX
      "sorts" {SORT ","}+                  -> SORTS-DECL
                                           -> SORTS-DECL
      ID                                   -> SORT
      "layout" {SORT ","}+                 -> LAYOUT
                                           -> LAYOUT
      "functions" LEXICAL-FUNCTION-DEF+    -> LEXICAL-FUNCTIONS
      LEX-ELEM+ "->" SORT                  -> LEXICAL-FUNCTION-DEF
      SORT                                 -> LEX-ELEM
      SORT ITERATOR                        -> LEX-ELEM
      LITERAL                              -> LEX-ELEM
      CHAR-CLASS                           -> LEX-ELEM
      CHAR-CLASS ITERATOR                  -> LEX-ELEM
      "-" CHAR-CLASS                       -> LEX-ELEM
      "context-free" "syntax" SORTS-DECL PRIORITIES FUNCTIONS
                                           -> CONTEXT-FREE-SYNTAX
      "priorities" {PRIO-DEF ","}+         -> PRIORITIES
      -- {par} before a "{"-initial definition: see the note below.
                                           -> PRIORITIES  {par}
      {ABBREV-F-LIST ">"}+                 -> PRIO-DEF    {par}
      {ABBREV-F-LIST "<"}+                 -> PRIO-DEF
      ABBREV-F-DEF                         -> ABBREV-F-LIST
      "(" {ABBREV-F-DEF ","}+ ")"          -> ABBREV-F-LIST
      CF-ELEM+                             -> ABBREV-F-DEF
      CF-ELEM* "->" SORT                   -> ABBREV-F-DEF
      "functions" FUNCTION-DEF+            -> FUNCTIONS
      CF-ELEM* "->" SORT ATTRIBUTES        -> FUNCTION-DEF
      SORT                                 -> CF-ELEM
      LITERAL                              -> CF-ELEM
      -- The {par} attributes below keep the Yacc-resolved LALR(1) parser
      -- from reading the next definition's "{" as an attribute list.
      SORT ITERATOR                        -> CF-ELEM  {par}
      "{" SORT LITERAL "}" ITERATOR        -> CF-ELEM  {par}
      "{" {ATTRIBUTE ","}+ "}"             -> ATTRIBUTES
                                           -> ATTRIBUTES
      "par"                                -> ATTRIBUTE
      "assoc"                              -> ATTRIBUTE
      "left-assoc"                         -> ATTRIBUTE
      "right-assoc"                        -> ATTRIBUTE
end SDF
)sdf";

// ASF.sdf — an algebraic specification formalism on top of SDF terms
// (paper: 475 tokens).
constexpr std::string_view AsfSdf = R"sdf(
module ASF
begin
  -- Algebraic specifications: modules of sorts, functions and equations.
  lexical syntax
    sorts ID, NAT, VAR-ID, STRING
    layout WHITE-SPACE, COMMENT
    functions
      [a-z][a-zA-Z0-9\-]*      -> ID
      [A-Z][a-zA-Z0-9\-]*      -> VAR-ID
      [0-9]+                   -> NAT
      "\"" [a-z]* "\""         -> STRING
      [ \t\n\r]+               -> WHITE-SPACE
      "%%" [a-z]*              -> COMMENT
  context-free syntax
    sorts
      SPECIFICATION, MODULE, SECTION, SIGNATURE, SORT-DECL,
      FUNC-DECL, VAR-DECL, EQUATION-SECTION, EQUATION, COND,
      TERM, TERM-LIST, SORT-REF, IMPORT
    functions
      MODULE+                                     -> SPECIFICATION
      "module" ID IMPORT* SECTION* "endmodule"    -> MODULE
      "imports" {ID ","}+                         -> IMPORT
      "exports" SIGNATURE                         -> SECTION
      "hiddens" SIGNATURE                         -> SECTION
      EQUATION-SECTION                            -> SECTION
      "sorts" {SORT-REF ","}+                     -> SIGNATURE
      "functions" FUNC-DECL+                      -> SIGNATURE
      "variables" VAR-DECL+                       -> SIGNATURE
      ID                                          -> SORT-REF
      ID ":" {SORT-REF "#"}+ "->" SORT-REF        -> FUNC-DECL
      ID ":" "->" SORT-REF                        -> FUNC-DECL
      VAR-ID ":" SORT-REF                         -> VAR-DECL
      "equations" EQUATION+                       -> EQUATION-SECTION
      "[" NAT "]" TERM "=" TERM                   -> EQUATION
      "[" NAT "]" COND+ "==>" TERM "=" TERM       -> EQUATION
      TERM "=" TERM                               -> COND
      ID                                          -> TERM
      VAR-ID                                      -> TERM
      NAT                                         -> TERM
      STRING                                      -> TERM
      ID "(" TERM-LIST ")"                        -> TERM
      TERM "." ID                                 -> TERM
      "(" TERM ")"                                -> TERM  {par}
      {TERM ","}+                                 -> TERM-LIST
      "if" TERM "then" TERM "else" TERM "fi"      -> TERM
      "let" VAR-ID "be" TERM "in" TERM            -> TERM
      TERM "where" VAR-ID "=" TERM                -> TERM  {right-assoc}
      TERM "++" TERM                              -> TERM  {assoc}
      TERM "--" TERM                              -> TERM  {left-assoc}
      "sum" "(" TERM "," TERM ")"                 -> TERM
      "product" "(" TERM "," TERM ")"             -> TERM
      "head" "(" TERM ")"                         -> TERM
      "tail" "(" TERM ")"                         -> TERM
      "null" "(" TERM ")"                         -> TERM
      "cons" "(" TERM "," TERM ")"                -> TERM
      "append" "(" TERM "," TERM ")"              -> TERM
      "reverse" "(" TERM ")"                      -> TERM
      "length" "(" TERM ")"                       -> TERM
      "member" "(" TERM "," TERM ")"              -> TERM
      "union" "(" TERM "," TERM ")"               -> TERM
      "intersection" "(" TERM "," TERM ")"        -> TERM
      "difference" "(" TERM "," TERM ")"          -> TERM
      "true"                                      -> TERM
      "false"                                     -> TERM
      "zero"                                      -> TERM
      "succ" "(" TERM ")"                         -> TERM
      "pred" "(" TERM ")"                         -> TERM
      TERM "equals" TERM                          -> TERM
      TERM "lt" TERM                              -> TERM
      TERM "gt" TERM                              -> TERM
      "case" TERM "of" {EQUATION ";"}+ "endcase"  -> TERM
      "lambda" VAR-ID "." TERM                    -> TERM
      "apply" "(" TERM "," TERM-LIST ")"          -> TERM
      "tuple" "(" TERM-LIST ")"                   -> TERM
      "project" "(" NAT "," TERM ")"              -> TERM
      "map" "(" TERM "," TERM ")"                 -> TERM
      "filter" "(" TERM "," TERM ")"              -> TERM
      "foldl" "(" TERM "," TERM "," TERM ")"      -> TERM
      "foldr" "(" TERM "," TERM "," TERM ")"      -> TERM
      "zip" "(" TERM "," TERM ")"                 -> TERM
      "domain" "(" TERM ")"                       -> TERM
      "range" "(" TERM ")"                        -> TERM
end ASF
)sdf";

} // namespace

const std::vector<SdfSample> &ipg::sdfSamples() {
  static const std::vector<SdfSample> Samples{
      {"exp.sdf", ExpSdf, 37},
      {"Exam.sdf", ExamSdf, 166},
      {"SDF.sdf", SdfSdf, 342},
      {"ASF.sdf", AsfSdf, 475},
  };
  return Samples;
}
