//===- sdf/SdfLanguage.cpp - The SDF grammar of SDF (Appendix B) ----------===//

#include "sdf/SdfLanguage.h"

#include "grammar/GrammarBuilder.h"

using namespace ipg;

SdfLanguage::SdfLanguage() {
  GrammarBuilder B(G);
  auto Tag = [&](RuleId Rule, SdfRuleKind Kind) { Kinds.emplace(Rule, Kind); };

  // Token-class terminals produced by the SDF tokenizer.
  SymbolId Id = B.symbol("ID");
  SymbolId Literal = B.symbol("LITERAL");
  SymbolId Iterator = B.symbol("ITERATOR");
  SymbolId CharClass = B.symbol("CHAR-CLASS");

  // SORT ::= ID.
  Tag(B.rule("SORT", {"ID"}), SdfRuleKind::Sort);
  SymbolId Sort = B.symbol("SORT");
  SymbolId Comma = B.symbol(",");
  SymbolId SortList = B.sepPlus(Sort, Comma); // {SORT ","}+

  // SORTS-DECL ::= "sorts" {SORT ","}+ | ε.
  Tag(B.rule("SORTS-DECL", {"sorts", "{SORT ,}+"}), SdfRuleKind::SortsDecl);
  B.rule("SORTS-DECL", std::vector<std::string>{});

  // LAYOUT ::= "layout" {SORT ","}+ | ε.
  Tag(B.rule("LAYOUT", {"layout", "{SORT ,}+"}), SdfRuleKind::Layout);
  B.rule("LAYOUT", std::vector<std::string>{});

  // LEX-ELEM and LEXICAL-FUNCTION-DEF ::= LEX-ELEM+ "->" SORT.
  Tag(B.rule("LEX-ELEM", {"SORT"}), SdfRuleKind::LexElemSort);
  Tag(B.rule("LEX-ELEM", {"SORT", "ITERATOR"}), SdfRuleKind::LexElemIterated);
  Tag(B.rule("LEX-ELEM", {"LITERAL"}), SdfRuleKind::LexElemLiteral);
  Tag(B.rule("LEX-ELEM", {"CHAR-CLASS"}), SdfRuleKind::LexElemClass);
  // Appendix B only iterates SORTs; iterated character classes ([a-z]+)
  // are ubiquitous in practical SDF, so the grammar admits them too.
  Tag(B.rule("LEX-ELEM", {"CHAR-CLASS", "ITERATOR"}),
      SdfRuleKind::LexElemClassIterated);
  Tag(B.rule("LEX-ELEM", {"-", "CHAR-CLASS"}), SdfRuleKind::LexElemNegClass);
  B.plus(B.symbol("LEX-ELEM"));
  Tag(B.rule("LEXICAL-FUNCTION-DEF", {"LEX-ELEM+", "->", "SORT"}),
      SdfRuleKind::LexicalFunctionDef);
  B.plus(B.symbol("LEXICAL-FUNCTION-DEF"));

  // LEXICAL-FUNCTIONS ::= "functions" LEXICAL-FUNCTION-DEF+.
  Tag(B.rule("LEXICAL-FUNCTIONS", {"functions", "LEXICAL-FUNCTION-DEF+"}),
      SdfRuleKind::LexicalFunctions);

  // LEXICAL-SYNTAX ::= "lexical" "syntax" SORTS-DECL LAYOUT
  //                    LEXICAL-FUNCTIONS | ε.
  Tag(B.rule("LEXICAL-SYNTAX", {"lexical", "syntax", "SORTS-DECL", "LAYOUT",
                                "LEXICAL-FUNCTIONS"}),
      SdfRuleKind::LexicalSyntax);
  B.rule("LEXICAL-SYNTAX", std::vector<std::string>{});

  // CF-ELEM.
  Tag(B.rule("CF-ELEM", {"SORT"}), SdfRuleKind::CfElemSort);
  Tag(B.rule("CF-ELEM", {"LITERAL"}), SdfRuleKind::CfElemLiteral);
  Tag(B.rule("CF-ELEM", {"SORT", "ITERATOR"}), SdfRuleKind::CfElemIterated);
  Tag(B.rule("CF-ELEM", {"{", "SORT", "LITERAL", "}", "ITERATOR"}),
      SdfRuleKind::CfElemSepIterated);
  SymbolId CfElem = B.symbol("CF-ELEM");
  SymbolId CfElemPlus = B.plus(CfElem);
  SymbolId CfElemStar = B.opt(CfElemPlus); // CF-ELEM* ≡ (CF-ELEM+)?

  // ATTRIBUTES ::= "{" {ATTRIBUTE ","}+ "}" | ε.
  B.rule("ATTRIBUTE", {"par"});
  B.rule("ATTRIBUTE", {"assoc"});
  B.rule("ATTRIBUTE", {"left-assoc"});
  B.rule("ATTRIBUTE", {"right-assoc"});
  B.sepPlus(B.symbol("ATTRIBUTE"), Comma);
  B.rule("ATTRIBUTES", {"{", "{ATTRIBUTE ,}+", "}"});
  B.rule("ATTRIBUTES", std::vector<std::string>{});

  // FUNCTION-DEF ::= CF-ELEM* "->" SORT ATTRIBUTES.
  Tag(B.rule("FUNCTION-DEF", {"CF-ELEM+?", "->", "SORT", "ATTRIBUTES"}),
      SdfRuleKind::FunctionDef);
  B.plus(B.symbol("FUNCTION-DEF"));
  Tag(B.rule("FUNCTIONS", {"functions", "FUNCTION-DEF+"}),
      SdfRuleKind::Functions);

  // Priorities: ABBREV-F-DEF, ABBREV-F-LIST, PRIO-DEF.
  B.rule("ABBREV-F-DEF", {"CF-ELEM+"});
  B.rule("ABBREV-F-DEF", {"CF-ELEM+?", "->", "SORT"});
  B.sepPlus(B.symbol("ABBREV-F-DEF"), Comma);
  B.rule("ABBREV-F-LIST", {"ABBREV-F-DEF"});
  B.rule("ABBREV-F-LIST", {"(", "{ABBREV-F-DEF ,}+", ")"});
  SymbolId AbbrevList = B.symbol("ABBREV-F-LIST");
  // PRIO-DEF ::= {ABBREV-F-LIST ">"}+ | {ABBREV-F-LIST "<"}2+ — the "<"
  // chain needs two elements or the singleton would be ambiguous.
  B.sepPlus(AbbrevList, B.symbol(">"));
  B.rule("PRIO-DEF", {"{ABBREV-F-LIST >}+"});
  B.rule("LT-CHAIN", {"ABBREV-F-LIST", "<", "ABBREV-F-LIST"});
  B.rule("LT-CHAIN", {"LT-CHAIN", "<", "ABBREV-F-LIST"});
  B.rule("PRIO-DEF", {"LT-CHAIN"});
  B.sepPlus(B.symbol("PRIO-DEF"), Comma);
  B.rule("PRIORITIES", {"priorities", "{PRIO-DEF ,}+"});
  B.rule("PRIORITIES", std::vector<std::string>{});

  // CONTEXT-FREE-SYNTAX ::= "context-free" "syntax" SORTS-DECL PRIORITIES
  //                         FUNCTIONS.
  Tag(B.rule("CONTEXT-FREE-SYNTAX",
             {"context-free", "syntax", "SORTS-DECL", "PRIORITIES",
              "FUNCTIONS"}),
      SdfRuleKind::ContextFreeSyntax);

  // SDF-DEFINITION ::= "module" ID "begin" LEXICAL-SYNTAX
  //                    CONTEXT-FREE-SYNTAX "end" ID.
  Tag(B.rule("SDF-DEFINITION", {"module", "ID", "begin", "LEXICAL-SYNTAX",
                                "CONTEXT-FREE-SYNTAX", "end", "ID"}),
      SdfRuleKind::Module);

  B.rule("START", {"SDF-DEFINITION"});

  (void)Id;
  (void)Literal;
  (void)Iterator;
  (void)CharClass;
  (void)SortList;
  (void)CfElemStar;
}

std::pair<SymbolId, std::vector<SymbolId>>
SdfLanguage::modificationRule() {
  // §7: <CF-ELEM> ::= "(" <CF-ELEM>+ ")?"
  SymbolTable &Symbols = G.symbols();
  SymbolId CfElem = Symbols.intern("CF-ELEM");
  return {CfElem,
          {Symbols.intern("("), Symbols.intern("CF-ELEM+"),
           Symbols.intern(")?")}};
}
