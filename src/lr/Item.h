//===- lr/Item.h - LR(0) items and kernels ----------------------*- C++ -*-===//
///
/// \file
/// An LR(0) item is a "dotted rule" (rule id, dot position). A kernel is a
/// canonical (sorted, duplicate-free) set of items; kernels identify item
/// sets, so the graph keeps a hash index from kernels to sets of items
/// ("ltemsets" in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_ITEM_H
#define IPG_LR_ITEM_H

#include "grammar/Grammar.h"
#include "support/ArrayView.h"
#include "support/Hashing.h"

#include <algorithm>
#include <compare>
#include <string>
#include <vector>

namespace ipg {

/// A dotted rule A ::= α • β, stored as (rule, |α|).
struct Item {
  RuleId Rule;
  uint32_t Dot;

  auto operator<=>(const Item &) const = default;
};

/// Canonical item-set kernel: sorted, duplicate-free items.
using Kernel = std::vector<Item>;

/// Non-owning view of a kernel — what ItemSet::kernel() returns, whether
/// the items live in the set's own vector or in a mapped snapshot region.
/// Implicitly constructible from a Kernel, so callers can pass either.
using KernelView = ArrayView<Item>;

/// Sorts and dedupes \p K in place, establishing the canonical form.
inline void canonicalizeKernel(Kernel &K) {
  std::sort(K.begin(), K.end());
  K.erase(std::unique(K.begin(), K.end()), K.end());
}

/// True when \p K is sorted and duplicate-free (the canonical form the
/// zero-copy snapshot loader verifies instead of re-establishing).
inline bool isCanonicalKernel(KernelView K) {
  for (size_t I = 1; I < K.size(); ++I)
    if (!(K[I - 1] < K[I]))
      return false;
  return true;
}

/// Hash of a canonical kernel.
inline uint64_t hashKernel(KernelView K) {
  uint64_t Hash = 0x51ed270b4d2c3f31ULL;
  for (const Item &I : K) {
    Hash = hashCombine(Hash, I.Rule);
    Hash = hashCombine(Hash, I.Dot);
  }
  return Hash;
}

/// Element-wise kernel equality across storage modes.
inline bool kernelEquals(KernelView A, KernelView B) {
  return A.size() == B.size() && std::equal(A.begin(), A.end(), B.begin());
}

/// True if the dot of \p I is at the end of its rule.
inline bool isCompleteItem(const Item &I, const Grammar &G) {
  return I.Dot == G.rule(I.Rule).Rhs.size();
}

/// The symbol immediately after the dot, or InvalidSymbol at the end.
inline SymbolId symbolAfterDot(const Item &I, const Grammar &G) {
  const Rule &R = G.rule(I.Rule);
  return I.Dot < R.Rhs.size() ? R.Rhs[I.Dot] : InvalidSymbol;
}

/// Renders "A ::= α • β" for diagnostics and the walkthrough example.
inline std::string itemToString(const Item &I, const Grammar &G) {
  const Rule &R = G.rule(I.Rule);
  std::string Text = G.symbols().name(R.Lhs) + " ::=";
  for (uint32_t Pos = 0; Pos <= R.Rhs.size(); ++Pos) {
    if (Pos == I.Dot)
      Text += " \xE2\x80\xA2"; // U+2022 BULLET
    if (Pos < R.Rhs.size())
      Text += " " + G.symbols().name(R.Rhs[Pos]);
  }
  return Text;
}

} // namespace ipg

#endif // IPG_LR_ITEM_H
