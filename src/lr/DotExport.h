//===- lr/DotExport.h - GraphViz export of item-set graphs ------*- C++ -*-===//
///
/// \file
/// Renders graphs of item sets in GraphViz DOT, mirroring the paper's
/// figures: one record node per set of items (kernel items inside),
/// labeled edges for transitions, double borders for accepting sets,
/// dashed borders for initial/dirty sets and grey for dead ones. Useful
/// for debugging incremental updates visually.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_DOTEXPORT_H
#define IPG_LR_DOTEXPORT_H

#include "lr/ItemSetGraph.h"

#include <string>

namespace ipg {

/// Renders the live part of \p Graph as a DOT digraph. When
/// \p IncludeDead is set, collected sets are shown greyed out.
std::string graphToDot(const ItemSetGraph &Graph, bool IncludeDead = false);

} // namespace ipg

#endif // IPG_LR_DOTEXPORT_H
