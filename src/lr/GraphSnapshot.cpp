//===- lr/GraphSnapshot.cpp - Item-set graph persistence ------------------===//

#include "lr/GraphSnapshot.h"

#include "support/MappedFile.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>

using namespace ipg;

namespace {

/// On-disk lifecycle codes == the ItemSetState values (lr/ItemSet.h pins
/// them). Dead appears only in the flat-arena layout, as a tombstone.
enum : uint8_t {
  StateInitial = 0,
  StateComplete = 1,
  StateDirty = 2,
  StateDead = 3
};

/// GRPH section layout flags (GrphHeader.Reserved). Legacy sections wrote
/// 0 here, which is what makes the flag retrofittable.
enum : uint32_t { LayoutLegacy = 0, LayoutFlatArena = 1 };

/// v1 state byte; v1 compacts Dead sets away, so it never writes one.
uint8_t stateCode(ItemSetState State) {
  assert(State != ItemSetState::Dead && "serializing a dead set of items");
  return static_cast<uint8_t>(State);
}

//===----------------------------------------------------------------------===//
// ipg-snap-v2 GRPH section layout (struct-of-arrays, little-endian,
// 8-aligned pools; all offsets relative to the 8-aligned section start,
// all Off/Len pairs are element indices into the named pools).
//
// Flat-arena layout (Reserved == 1) — the live graph's pools verbatim:
//
//   GrphHeader (136 bytes)
//   ItemSet[NumSets]               52-byte records == the in-memory type
//   Item[NumKernelItems]           {u32 Rule, u32 Dot}
//   u32[NumTransitions]            transition target indices
//   SymbolId[NumTransitions]       labels, strictly parallel to targets
//   RuleId[NumReductions]
//   RuleId[NumAcceptRules]
//
// NumSets counts every record, Dead tombstones included (the record index
// space is the transition target space); the pools may contain abandoned
// ("garbage") spans no live record references — save does not compact, so
// save is a memcpy and save-after-load is byte-identical. Old spans of
// Dirty sets live in the same target/label pools as live spans, so
// NumOldTransitions and OffOldTransitions are 0.
//
// Legacy layout (Reserved == 0), decode-only for old files:
//
//   GrphHeader (136 bytes)
//   SetRec[NumSets]                48-byte records, live sets only
//   Item[NumKernelItems]
//   TransRec[NumTransitions]       {u32 Label, u32 0, u64 TargetIdx}
//   TransRec[NumOldTransitions]    dirty sets' retained history
//   SymbolId[NumTransitions]       action labels, parallel to TransRec
//   RuleId[NumReductions]
//   RuleId[NumAcceptRules]
//===----------------------------------------------------------------------===//

struct GrphHeader {
  uint32_t NumSets;
  uint32_t StartIdx;
  uint32_t NumKernelItems;
  uint32_t NumTransitions;
  uint32_t NumOldTransitions;
  uint32_t NumReductions;
  uint32_t NumAcceptRules;
  uint32_t Reserved;
  uint64_t Stats[6];
  uint64_t OffSetRecs;
  uint64_t OffKernelItems;
  uint64_t OffTransitions;
  uint64_t OffOldTransitions;
  uint64_t OffActionLabels;
  uint64_t OffReductions;
  uint64_t OffAcceptRules;
};
static_assert(sizeof(GrphHeader) == 136, "v2 GRPH header layout drifted");

/// Legacy (Reserved == 0) per-set record.
struct SetRec {
  uint8_t State;
  uint8_t Accepting;
  uint16_t Reserved;
  uint32_t KernelOff, KernelLen;
  uint32_t TransOff, TransLen;
  uint32_t OldOff, OldLen;
  uint32_t RedOff, RedLen;
  uint32_t AccOff, AccLen;
  uint32_t Reserved2;
};
static_assert(sizeof(SetRec) == 48, "legacy v2 set record layout drifted");

/// Legacy (Reserved == 0) transition record.
struct TransRec {
  uint32_t Label;
  uint32_t Reserved;
  uint64_t Target;
};
static_assert(sizeof(TransRec) == 16,
              "legacy v2 transition record layout drifted");

/// The zero-copy path reinterprets mapped arrays as the in-memory pool
/// element types; it runs only where the layouts provably coincide.
/// Elsewhere (or for remapping loads) the endian-safe field-by-field
/// decoder runs. No pointer is ever serialized, so word size no longer
/// matters — only endianness and the field widths.
constexpr bool HostCanAdoptV2 =
    std::endian::native == std::endian::little && sizeof(ItemSet) == 52 &&
    alignof(ItemSet) <= 8 && sizeof(Item) == 8 && alignof(Item) <= 8 &&
    sizeof(SymbolId) == 4 && sizeof(RuleId) == 4;

/// Reads the fixed v2 GRPH header out of \p Section (endian-safe).
Expected<GrphHeader> readGrphHeader(const FlatView &Section) {
  GrphHeader H;
  uint32_t *U32Fields[] = {&H.NumSets,         &H.StartIdx,
                           &H.NumKernelItems,  &H.NumTransitions,
                           &H.NumOldTransitions, &H.NumReductions,
                           &H.NumAcceptRules,  &H.Reserved};
  size_t Off = 0;
  for (uint32_t *Field : U32Fields) {
    Expected<uint32_t> V = Section.u32At(Off);
    if (!V)
      return V.error();
    *Field = *V;
    Off += 4;
  }
  uint64_t *U64Fields[] = {&H.Stats[0],        &H.Stats[1],
                           &H.Stats[2],        &H.Stats[3],
                           &H.Stats[4],        &H.Stats[5],
                           &H.OffSetRecs,      &H.OffKernelItems,
                           &H.OffTransitions,  &H.OffOldTransitions,
                           &H.OffActionLabels, &H.OffReductions,
                           &H.OffAcceptRules};
  for (uint64_t *Field : U64Fields) {
    Expected<uint64_t> V = Section.u64At(Off);
    if (!V)
      return V.error();
    *Field = *V;
    Off += 8;
  }
  return H;
}

/// Endian-safe unaligned loads for the v2 decode fallback. The compiler
/// folds them to single loads on little-endian hosts; bounds are
/// established once per pool before the loops run, so the hot decode path
/// skips FlatView's per-field checks.
inline uint32_t loadLe32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | static_cast<uint32_t>(P[1]) << 8 |
         static_cast<uint32_t>(P[2]) << 16 | static_cast<uint32_t>(P[3]) << 24;
}
inline uint64_t loadLe64(const uint8_t *P) {
  return static_cast<uint64_t>(loadLe32(P)) |
         static_cast<uint64_t>(loadLe32(P + 4)) << 32;
}

/// Shared structural checks on a legacy v2 set record against the header
/// totals.
Expected<uint8_t> checkSetRecShape(const SetRec &R, const GrphHeader &H) {
  if (R.State > StateDirty)
    return Error("invalid item-set state code");
  bool Complete = R.State == StateComplete;
  if (R.Accepting > 1 || (R.Accepting == 1 && !Complete))
    return Error("invalid accepting flag");
  auto SpanOk = [](uint32_t Off, uint32_t Len, uint32_t Total) {
    return static_cast<uint64_t>(Off) + Len <= Total;
  };
  if (!SpanOk(R.KernelOff, R.KernelLen, H.NumKernelItems) ||
      !SpanOk(R.TransOff, R.TransLen, H.NumTransitions) ||
      !SpanOk(R.OldOff, R.OldLen, H.NumOldTransitions) ||
      !SpanOk(R.RedOff, R.RedLen, H.NumReductions) ||
      !SpanOk(R.AccOff, R.AccLen, H.NumAcceptRules))
    return Error("set record span out of range");
  if (!Complete && (R.TransLen != 0 || R.RedLen != 0 || R.AccLen != 0))
    return Error("records on a set whose state forbids them");
  if (R.State != StateDirty && R.OldLen != 0)
    return Error("old transitions on a non-dirty set");
  if (R.AccLen != 0 && R.Accepting != 1)
    return Error("accept rules on a non-accepting set");
  return uint8_t{0};
}

/// Flat-arena (Reserved == 1) per-set record — the ItemSet field layout
/// spelled out as plain integers, so validation and decode can inspect a
/// record without ItemSet friend access. HostCanAdoptV2 plus these
/// static_asserts pin the two layouts together.
struct FlatRec {
  uint32_t Id;
  uint8_t State;
  uint8_t Accepting;
  uint16_t Pad;
  uint32_t RefCount;
  uint32_t KernelOff, KernelLen;
  uint32_t TransOff, TransLen;
  uint32_t OldOff, OldLen;
  uint32_t RedOff, RedLen;
  uint32_t AccOff, AccLen;
};
static_assert(sizeof(FlatRec) == 52 && sizeof(FlatRec) == sizeof(ItemSet),
              "flat v2 set record layout drifted");

/// Structural checks on a flat-arena set record against the header totals.
/// Old spans index the same target/label pools as live spans.
const char *checkFlatRecShape(const FlatRec &R, uint32_t Index,
                              const GrphHeader &H) {
  if (R.State > StateDead)
    return "invalid item-set state code";
  if (R.Id != Index)
    return "set record id does not match its index";
  if (R.Pad != 0)
    return "nonzero padding in set record";
  if (R.State == StateDead) {
    // Tombstone: everything zero. Keeping the shape canonical is what
    // makes re-serialization deterministic.
    if (R.Accepting != 0 || R.RefCount != 0 || R.KernelOff != 0 ||
        R.KernelLen != 0 || R.TransOff != 0 || R.TransLen != 0 ||
        R.OldOff != 0 || R.OldLen != 0 || R.RedOff != 0 || R.RedLen != 0 ||
        R.AccOff != 0 || R.AccLen != 0)
      return "dead set record is not a tombstone";
    return nullptr;
  }
  bool Complete = R.State == StateComplete;
  if (R.Accepting > 1 || (R.Accepting == 1 && !Complete))
    return "invalid accepting flag";
  auto SpanOk = [](uint32_t Off, uint32_t Len, uint32_t Total) {
    return static_cast<uint64_t>(Off) + Len <= Total;
  };
  if (!SpanOk(R.KernelOff, R.KernelLen, H.NumKernelItems) ||
      !SpanOk(R.TransOff, R.TransLen, H.NumTransitions) ||
      !SpanOk(R.OldOff, R.OldLen, H.NumTransitions) ||
      !SpanOk(R.RedOff, R.RedLen, H.NumReductions) ||
      !SpanOk(R.AccOff, R.AccLen, H.NumAcceptRules))
    return "set record span out of range";
  if (!Complete && (R.TransLen != 0 || R.RedLen != 0 || R.AccLen != 0))
    return "records on a set whose state forbids them";
  if (R.State != StateDirty && R.OldLen != 0)
    return "old transitions on a non-dirty set";
  if (R.AccLen != 0 && R.Accepting != 1)
    return "accept rules on a non-accepting set";
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// v1 (ByteStream varint encoding)
//===----------------------------------------------------------------------===//

void GraphSnapshot::save(const ItemSetGraph &Graph, ByteWriter &Writer) {
  // Dense indices for the live sets, in creation order: the serialized ids
  // are a compaction of the pool, so a graph that went through garbage
  // collection still snapshots into a gap-free, deterministic form.
  std::vector<uint32_t> DenseIdx(Graph.numSets(), 0);
  uint32_t NumLive = 0;
  for (size_t I = 0, N = Graph.numSets(); I < N; ++I) {
    const ItemSet &State = Graph.setAt(I);
    if (!State.isDead())
      DenseIdx[State.Id] = NumLive++;
  }

  Writer.writeVarint(NumLive);
  Writer.writeVarint(DenseIdx[Graph.Start->Id]);

  auto WriteTransitions = [&](TransitionRange Transitions) {
    Writer.writeVarint(Transitions.size());
    for (ItemSet::Transition T : Transitions) {
      assert(!T.Target->isDead() && "live transition to a dead set");
      Writer.writeVarint(T.Label);
      Writer.writeVarint(DenseIdx[T.Target->Id]);
    }
  };
  auto WriteRules = [&](ArrayView<RuleId> Rules) {
    Writer.writeVarint(Rules.size());
    for (RuleId Rule : Rules)
      Writer.writeVarint(Rule);
  };

  for (size_t I = 0, N = Graph.numSets(); I < N; ++I) {
    const ItemSet &State = Graph.setAt(I);
    if (State.isDead())
      continue;
    Writer.writeU8(stateCode(State.State));
    Writer.writeU8(State.Accepting != 0 ? 1 : 0);
    KernelView K = Graph.kernel(&State);
    Writer.writeVarint(K.size());
    for (const Item &I2 : K) {
      Writer.writeVarint(I2.Rule);
      Writer.writeVarint(I2.Dot);
    }
    WriteTransitions(Graph.transitions(&State));
    WriteRules(Graph.reductions(&State));
    WriteRules(Graph.acceptRules(&State));
    WriteTransitions(Graph.oldTransitions(&State));
  }

  // Reference counts are not serialized in v1: they are derivable (one per
  // incoming transition, old or new, plus the start set's root reference)
  // and load() re-derives them, so a snapshot cannot carry a skewed count.
  const ItemSetGraphStats S = Graph.stats();
  Writer.writeVarint(S.Expansions);
  Writer.writeVarint(S.ReExpansions);
  Writer.writeVarint(S.ClosureItems);
  Writer.writeVarint(S.DirtyMarks);
  Writer.writeVarint(S.Collected);
  Writer.writeVarint(S.GotoCalls);
}

Expected<size_t> GraphSnapshot::load(ByteReader &Reader, ItemSetGraph &Graph,
                                     const std::vector<SymbolId> &SymbolMap,
                                     const std::vector<RuleId> &RuleMap) {
  const Grammar &G = Graph.G;
  clearStorage(Graph);

  Expected<uint64_t> NumSets = Reader.readVarint();
  if (!NumSets)
    return NumSets.error();
  if (*NumSets == 0)
    return Error("snapshot graph has no start set");
  // Each set costs at least 7 bytes; a count above the byte budget is
  // corrupt, and rejecting it bounds the pool allocation.
  if (*NumSets > Reader.remaining())
    return Error("set count exceeds section size");
  Expected<uint64_t> StartIdx = Reader.readVarint();
  if (!StartIdx)
    return StartIdx.error();
  if (*StartIdx >= *NumSets)
    return Error("start set index out of range");

  Graph.ByKernel.reserve(static_cast<size_t>(*NumSets));
  Graph.Sets.appendZeroed(static_cast<size_t>(*NumSets));
  for (uint64_t I = 0; I < *NumSets; ++I)
    Graph.setAt(static_cast<size_t>(I)).Id = static_cast<uint32_t>(I);

  // Decode scratch, reused across sets. Edges are staged and sorted by
  // (remapped) label before the paired Trans/Labels appends — the pools
  // advance in lockstep so one offset addresses both.
  std::vector<std::pair<SymbolId, uint32_t>> Edges;
  std::vector<SymbolId> TmpLabels;
  std::vector<uint32_t> TmpTargets;
  std::vector<RuleId> TmpRules;
  Kernel K;

  auto AppendEdges = [&](uint32_t &OutOff, uint32_t &OutLen) {
    std::sort(Edges.begin(), Edges.end());
    TmpLabels.clear();
    TmpTargets.clear();
    for (const auto &[Label, Target] : Edges) {
      TmpLabels.push_back(Label);
      TmpTargets.push_back(Target);
    }
    OutOff = Graph.Trans.append(TmpTargets.data(), TmpTargets.size());
    uint32_t LOff = Graph.Labels.append(TmpLabels.data(), TmpLabels.size());
    assert(OutOff == LOff && "Trans/Labels pools out of lockstep");
    (void)LOff;
    OutLen = static_cast<uint32_t>(Edges.size());
  };

  auto ReadTransitions = [&](uint32_t &OutOff, uint32_t &OutLen,
                             bool Allowed) -> Expected<uint8_t> {
    Expected<uint64_t> Count = Reader.readVarint();
    if (!Count)
      return Count.error();
    if (*Count != 0 && !Allowed)
      return Error("transitions on a set whose state forbids them");
    if (*Count > Reader.remaining())
      return Error("transition count exceeds section size");
    Edges.clear();
    for (uint64_t I = 0; I < *Count; ++I) {
      Expected<uint64_t> Label = Reader.readVarint();
      if (!Label)
        return Label.error();
      if (*Label >= SymbolMap.size())
        return Error("transition label references an unknown symbol");
      Expected<uint64_t> Target = Reader.readVarint();
      if (!Target)
        return Target.error();
      if (*Target >= *NumSets)
        return Error("transition target out of range");
      Edges.emplace_back(SymbolMap[static_cast<size_t>(*Label)],
                         static_cast<uint32_t>(*Target));
    }
    AppendEdges(OutOff, OutLen);
    return uint8_t{0};
  };
  auto ReadRules = [&](PoolArena<RuleId> &Pool, uint32_t &OutOff,
                       uint32_t &OutLen, bool Allowed) -> Expected<uint8_t> {
    Expected<uint64_t> Count = Reader.readVarint();
    if (!Count)
      return Count.error();
    if (*Count != 0 && !Allowed)
      return Error("reductions on a set whose state forbids them");
    if (*Count > Reader.remaining())
      return Error("rule count exceeds section size");
    TmpRules.clear();
    for (uint64_t I = 0; I < *Count; ++I) {
      Expected<uint64_t> Rule = Reader.readVarint();
      if (!Rule)
        return Rule.error();
      if (*Rule >= RuleMap.size())
        return Error("reduction references an unknown rule");
      TmpRules.push_back(RuleMap[static_cast<size_t>(*Rule)]);
    }
    OutOff = Pool.append(TmpRules.data(), TmpRules.size());
    OutLen = static_cast<uint32_t>(TmpRules.size());
    return uint8_t{0};
  };

  for (uint64_t I = 0; I < *NumSets; ++I) {
    ItemSet &State = Graph.setAt(static_cast<size_t>(I));
    Expected<uint8_t> Code = Reader.readU8();
    if (!Code)
      return Code.error();
    if (*Code > StateDirty)
      return Error("invalid item-set state code");
    State.State = static_cast<ItemSetState>(*Code);
    bool Complete = State.State == ItemSetState::Complete;

    Expected<uint8_t> Accepting = Reader.readU8();
    if (!Accepting)
      return Accepting.error();
    if (*Accepting > 1 || (*Accepting == 1 && !Complete))
      return Error("invalid accepting flag");
    State.Accepting = *Accepting;

    Expected<uint64_t> KernelSize = Reader.readVarint();
    if (!KernelSize)
      return KernelSize.error();
    if (*KernelSize > Reader.remaining())
      return Error("kernel size exceeds section size");
    K.clear();
    K.reserve(static_cast<size_t>(*KernelSize));
    for (uint64_t J = 0; J < *KernelSize; ++J) {
      Expected<uint64_t> Rule = Reader.readVarint();
      if (!Rule)
        return Rule.error();
      if (*Rule >= RuleMap.size())
        return Error("kernel item references an unknown rule");
      RuleId Mapped = RuleMap[static_cast<size_t>(*Rule)];
      Expected<uint64_t> Dot = Reader.readVarint();
      if (!Dot)
        return Dot.error();
      if (*Dot > G.rule(Mapped).Rhs.size())
        return Error("kernel item dot beyond its rule");
      K.push_back(Item{Mapped, static_cast<uint32_t>(*Dot)});
    }
    // Remapped rule ids may order differently; re-establish canonical form
    // before hashing into the kernel index.
    canonicalizeKernel(K);
    std::vector<ItemSet *> &Bucket = Graph.ByKernel[hashKernel(K)];
    for (const ItemSet *Other : Bucket)
      if (kernelEquals(Graph.kernel(Other), K))
        return Error("duplicate kernel in snapshot");
    State.KernelOff = Graph.Kernels.append(K.data(), K.size());
    State.KernelLen = static_cast<uint32_t>(K.size());
    Bucket.push_back(&State);

    Expected<uint8_t> Ok =
        ReadTransitions(State.TransOff, State.TransLen, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadRules(Graph.Reds, State.RedOff, State.RedLen, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadRules(Graph.Accs, State.AccOff, State.AccLen, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadTransitions(State.OldOff, State.OldLen,
                         State.State == ItemSetState::Dirty);
    if (!Ok)
      return Ok.error();
  }

  Graph.Start = &Graph.setAt(static_cast<size_t>(*StartIdx));

  // Re-derive the reference counts from the incoming edges (DECR-REFCOUNT
  // bookkeeping of §6.2): one per transition — retained pre-modification
  // ones included — plus the start set's root pin.
  Graph.Start->RefCount = 1;
  for (uint64_t I = 0; I < *NumSets; ++I) {
    const ItemSet &State = Graph.setAt(static_cast<size_t>(I));
    for (ItemSet::Transition T : Graph.transitions(&State))
      ++T.Target->RefCount;
    for (ItemSet::Transition T : Graph.oldTransitions(&State))
      ++T.Target->RefCount;
  }
  for (uint64_t I = 0; I < *NumSets; ++I)
    if (Graph.setAt(static_cast<size_t>(I)).RefCount == 0)
      return Error("orphaned set in snapshot");

  ItemSetGraphStats Loaded;
  uint64_t *Counters[] = {&Loaded.Expansions,   &Loaded.ReExpansions,
                          &Loaded.ClosureItems, &Loaded.DirtyMarks,
                          &Loaded.Collected,    &Loaded.GotoCalls};
  for (uint64_t *Counter : Counters) {
    Expected<uint64_t> Value = Reader.readVarint();
    if (!Value)
      return Value.error();
    *Counter = *Value;
  }
  Graph.storeStats(Loaded);
  if (!Reader.atEnd())
    return Error("trailing bytes after graph snapshot");
  return static_cast<size_t>(*NumSets);
}

//===----------------------------------------------------------------------===//
// v2 (FlatSection struct-of-arrays encoding)
//===----------------------------------------------------------------------===//

namespace {

/// Emits a pool's bytes: on little-endian hosts two raw memcpys (base
/// segment, then grow segment — that concatenation IS the offset space);
/// elsewhere the per-element writer runs so the file stays little-endian.
template <typename T, typename WriteElem>
void emitPool(FlatWriter &Section, const PoolArena<T> &Pool,
              WriteElem &&Write) {
  if constexpr (std::endian::native == std::endian::little) {
    if (Pool.baseSize() != 0)
      Section.writeBytes(reinterpret_cast<const uint8_t *>(Pool.baseData()),
                         Pool.baseSize() * sizeof(T));
    if (Pool.growSize() != 0)
      Section.writeBytes(reinterpret_cast<const uint8_t *>(Pool.growData()),
                         Pool.growSize() * sizeof(T));
  } else {
    for (size_t I = 0, N = Pool.size(); I < N; ++I)
      Write(*Pool.at(static_cast<uint32_t>(I)));
  }
}

} // namespace

void GraphSnapshot::saveV2(const ItemSetGraph &Graph, FlatWriter &Section) {
  // The section may be appended directly into a larger file writer; all
  // recorded offsets are relative to this base, which must be 8-aligned
  // so the in-section alignTo calls keep their meaning.
  const size_t Base = Section.size();
  assert(Base % 8 == 0 && "v2 GRPH section must start 8-aligned");
  // Exact body size plus per-pool alignment slop: one reservation, no
  // reallocation while the pools memcpy through.
  Section.reserveCapacity(Base + 136 + sizeof(ItemSet) * Graph.numSets() +
                          sizeof(Item) * Graph.Kernels.size() +
                          4 * (Graph.Trans.size() + Graph.Labels.size() +
                               Graph.Reds.size() + Graph.Accs.size()) +
                          6 * 8);

  // The header counts are pool *lengths* — tombstones and abandoned spans
  // included. No dense remap, no compaction: the body below is the live
  // pools verbatim, which is what makes save ~memcpy and save-after-load
  // byte-identical.
  Section.writeU32(static_cast<uint32_t>(Graph.numSets()));
  Section.writeU32(Graph.Start->Id);
  Section.writeU32(static_cast<uint32_t>(Graph.Kernels.size()));
  Section.writeU32(static_cast<uint32_t>(Graph.Trans.size()));
  Section.writeU32(0); // Old spans share the transition pool.
  Section.writeU32(static_cast<uint32_t>(Graph.Reds.size()));
  Section.writeU32(static_cast<uint32_t>(Graph.Accs.size()));
  Section.writeU32(LayoutFlatArena);
  const ItemSetGraphStats Snap = Graph.stats();
  const uint64_t Stats[6] = {Snap.Expansions, Snap.ReExpansions,
                             Snap.ClosureItems, Snap.DirtyMarks,
                             Snap.Collected, Snap.GotoCalls};
  for (uint64_t Stat : Stats)
    Section.writeU64(Stat);
  size_t OffTable = Section.reserve(7 * 8);

  uint64_t Offsets[7] = {0};
  Offsets[0] = Section.size() - Base;
  emitPool(Section, Graph.Sets, [&](const ItemSet &R) {
    Section.writeU32(R.Id);
    Section.writeU8(static_cast<uint8_t>(R.State));
    Section.writeU8(R.Accepting);
    Section.writeU16(0);
    Section.writeU32(R.RefCount);
    const uint32_t Spans[10] = {R.KernelOff, R.KernelLen, R.TransOff,
                                R.TransLen,  R.OldOff,    R.OldLen,
                                R.RedOff,    R.RedLen,    R.AccOff,
                                R.AccLen};
    for (uint32_t Span : Spans)
      Section.writeU32(Span);
  });
  Section.alignTo(8);

  Offsets[1] = Section.size() - Base;
  emitPool(Section, Graph.Kernels, [&](const Item &I) {
    Section.writeU32(I.Rule);
    Section.writeU32(I.Dot);
  });

  Offsets[2] = Section.size() - Base;
  emitPool(Section, Graph.Trans,
           [&](uint32_t Target) { Section.writeU32(Target); });
  Section.alignTo(8);
  Offsets[3] = 0; // No separate old-transition pool in this layout.

  Offsets[4] = Section.size() - Base;
  emitPool(Section, Graph.Labels,
           [&](SymbolId Label) { Section.writeU32(Label); });
  Section.alignTo(8);

  Offsets[5] = Section.size() - Base;
  emitPool(Section, Graph.Reds, [&](RuleId Rule) { Section.writeU32(Rule); });
  Section.alignTo(8);

  Offsets[6] = Section.size() - Base;
  emitPool(Section, Graph.Accs, [&](RuleId Rule) { Section.writeU32(Rule); });
  Section.alignTo(8);

  for (int I = 0; I < 7; ++I)
    Section.patchU64(OffTable + 8 * static_cast<size_t>(I), Offsets[I]);
}

Expected<size_t>
GraphSnapshot::adoptV2(uint8_t *SectionData, size_t SectionBytes,
                       ItemSetGraph &Graph,
                       std::shared_ptr<const MappedFile> Backing) {
  if constexpr (!HostCanAdoptV2)
    return Error("zero-copy snapshot adoption requires a little-endian host "
                 "with the on-disk record layout");

  const Grammar &G = Graph.G;
  FlatView Section(SectionData, SectionBytes);
  Expected<GrphHeader> Header = readGrphHeader(Section);
  if (!Header)
    return Header.error();
  const GrphHeader &H = *Header;
  if (H.Reserved != LayoutFlatArena)
    return Error("v2 section is not in the flat-arena layout");
  if (H.NumSets == 0)
    return Error("snapshot graph has no start set");
  if (H.StartIdx >= H.NumSets)
    return Error("start set index out of range");
  if (H.NumOldTransitions != 0 || H.OffOldTransitions != 0)
    return Error("flat-arena layout carries old spans in the transition pool");

  // Every pool is written 8-aligned; reject a nudged offset table before
  // any pointer arithmetic. (The legacy layout got this for free from its
  // 16-byte transition records; the flat pools are only 4-strided, so the
  // check is explicit.)
  const uint64_t PoolOffs[6] = {H.OffSetRecs,      H.OffKernelItems,
                                H.OffTransitions,  H.OffActionLabels,
                                H.OffReductions,   H.OffAcceptRules};
  for (uint64_t Off : PoolOffs)
    if (Off % 8 != 0)
      return Error("flat section: misaligned pool");
  // Counts are u32 and strides <= 52, so the products cannot overflow u64.
  auto PoolFits = [&](uint64_t Off, uint64_t Stride, uint64_t Count) {
    return Off <= SectionBytes && Stride * Count <= SectionBytes - Off;
  };
  if (!PoolFits(H.OffSetRecs, sizeof(ItemSet), H.NumSets) ||
      !PoolFits(H.OffKernelItems, sizeof(Item), H.NumKernelItems) ||
      !PoolFits(H.OffTransitions, 4, H.NumTransitions) ||
      !PoolFits(H.OffActionLabels, 4, H.NumTransitions) ||
      !PoolFits(H.OffReductions, 4, H.NumReductions) ||
      !PoolFits(H.OffAcceptRules, 4, H.NumAcceptRules))
    return Error("flat section: array out of bounds");

  const uint8_t *RecBytes = SectionData + H.OffSetRecs;
  const Item *KernelPool =
      reinterpret_cast<const Item *>(SectionData + H.OffKernelItems);
  const uint32_t *TransPool =
      reinterpret_cast<const uint32_t *>(SectionData + H.OffTransitions);
  const SymbolId *LabelPool =
      reinterpret_cast<const SymbolId *>(SectionData + H.OffActionLabels);
  const RuleId *RedPool =
      reinterpret_cast<const RuleId *>(SectionData + H.OffReductions);
  const RuleId *AccPool =
      reinterpret_cast<const RuleId *>(SectionData + H.OffAcceptRules);

  const size_t NumSymbols = G.symbols().size();
  const size_t NumRules = G.numInternedRules();

  // Read-only validation sweep — the graph is not touched until every
  // check has passed, so an error leaves it exactly as it was. The three
  // scratch vectors are the only allocations of the whole adoption.
  std::vector<uint8_t> StateOf(H.NumSets);
  std::vector<uint32_t> HaveRef(H.NumSets);
  std::vector<uint32_t> WantRef(H.NumSets, 0);
  for (uint32_t I = 0; I < H.NumSets; ++I) {
    FlatRec R;
    std::memcpy(&R, RecBytes + size_t{sizeof(FlatRec)} * I, sizeof(FlatRec));
    if (const char *Msg = checkFlatRecShape(R, I, H))
      return Error(Msg);
    StateOf[I] = R.State;
    HaveRef[I] = R.RefCount;
    if (R.State == StateDead)
      continue;

    const Item *KernelBegin = KernelPool + R.KernelOff;
    for (uint32_t J = 0; J < R.KernelLen; ++J) {
      const Item &It = KernelBegin[J];
      if (It.Rule >= NumRules)
        return Error("kernel item references an unknown rule");
      if (It.Dot > G.rule(It.Rule).Rhs.size())
        return Error("kernel item dot beyond its rule");
    }
    if (!isCanonicalKernel(KernelView(KernelBegin, R.KernelLen)))
      return Error("kernel not in canonical order");

    // Live spans carry the binary-search contract (labels strictly
    // ascending); old spans were live spans once, but only their target
    // references matter now, so just range-check them.
    for (uint32_t J = 0; J < R.TransLen; ++J) {
      SymbolId Label = LabelPool[R.TransOff + J];
      if (Label >= NumSymbols)
        return Error("transition label references an unknown symbol");
      if (J > 0 && Label <= LabelPool[R.TransOff + J - 1])
        return Error("transition labels not strictly ascending");
      if (TransPool[R.TransOff + J] >= H.NumSets)
        return Error("transition target out of range");
      ++WantRef[TransPool[R.TransOff + J]];
    }
    for (uint32_t J = 0; J < R.OldLen; ++J) {
      if (LabelPool[R.OldOff + J] >= NumSymbols)
        return Error("transition label references an unknown symbol");
      if (TransPool[R.OldOff + J] >= H.NumSets)
        return Error("transition target out of range");
      ++WantRef[TransPool[R.OldOff + J]];
    }
    for (uint32_t J = 0; J < R.RedLen; ++J)
      if (RedPool[R.RedOff + J] >= NumRules)
        return Error("reduction references an unknown rule");
    for (uint32_t J = 0; J < R.AccLen; ++J)
      if (AccPool[R.AccOff + J] >= NumRules)
        return Error("accept rule references an unknown rule");
  }
  if (StateOf[H.StartIdx] == StateDead)
    return Error("start set is dead");
  ++WantRef[H.StartIdx]; // The root pin.
  // Reference counts are persisted in this layout; cross-check them
  // against the incoming edges instead of trusting or rebuilding them.
  for (uint32_t I = 0; I < H.NumSets; ++I) {
    if (StateOf[I] == StateDead) {
      if (WantRef[I] != 0)
        return Error("transition to a dead set");
      continue;
    }
    if (WantRef[I] == 0)
      return Error("orphaned set in snapshot");
    if (HaveRef[I] != WantRef[I])
      return Error("reference count disagrees with incoming transitions");
  }

  // Validation passed: install. The record block is memcpyd into the set
  // pool (so the id->record map stays one add off a single segment); the
  // five data pools adopt the mapped arrays zero-copy as base segments.
  clearStorage(Graph);
  Graph.Sets.append(reinterpret_cast<const ItemSet *>(RecBytes), H.NumSets);
  Graph.Kernels.adoptBase(KernelPool, H.NumKernelItems);
  Graph.Trans.adoptBase(TransPool, H.NumTransitions);
  Graph.Labels.adoptBase(LabelPool, H.NumTransitions);
  Graph.Reds.adoptBase(RedPool, H.NumReductions);
  Graph.Accs.adoptBase(AccPool, H.NumAcceptRules);
  Graph.AdoptedSets = H.NumSets;
  // The kernel index is deferred: pure queries against a fully complete
  // adopted graph never need it.
  Graph.KernelIndexReady.store(false, std::memory_order_release);
  Graph.Start = &Graph.setAt(H.StartIdx);

  ItemSetGraphStats Loaded;
  Loaded.Expansions = H.Stats[0];
  Loaded.ReExpansions = H.Stats[1];
  Loaded.ClosureItems = H.Stats[2];
  Loaded.DirtyMarks = H.Stats[3];
  Loaded.Collected = H.Stats[4];
  Loaded.GotoCalls = H.Stats[5];
  Graph.storeStats(Loaded);
  Graph.BorrowedStorage = std::move(Backing);
  return H.NumSets;
}

Expected<size_t> GraphSnapshot::loadV2(FlatView Section, ItemSetGraph &Graph,
                                       const std::vector<SymbolId> &SymbolMap,
                                       const std::vector<RuleId> &RuleMap) {
  const Grammar &G = Graph.G;
  Expected<GrphHeader> Header = readGrphHeader(Section);
  if (!Header)
    return Header.error();
  const GrphHeader &H = *Header;
  if (H.Reserved > LayoutFlatArena)
    return Error("unknown v2 graph layout");
  const bool Flat = H.Reserved == LayoutFlatArena;
  if (H.NumSets == 0)
    return Error("snapshot graph has no start set");
  if (H.StartIdx >= H.NumSets)
    return Error("start set index out of range");
  if (Flat && (H.NumOldTransitions != 0 || H.OffOldTransitions != 0))
    return Error("flat-arena layout carries old spans in the transition pool");
  // The flat record arrays must fit the section before any per-set work
  // (overflow-safe: offset checked before the product is subtracted).
  // This is what lets the decode loops below read through raw pointers,
  // and it also bounds every allocation.
  auto PoolFits = [&](uint64_t Off, uint64_t Stride, uint64_t Count) {
    return Off <= Section.size() && Stride * Count <= Section.size() - Off;
  };
  if (!PoolFits(H.OffSetRecs, Flat ? 52 : 48, H.NumSets) ||
      !PoolFits(H.OffKernelItems, 8, H.NumKernelItems) ||
      !PoolFits(H.OffTransitions, Flat ? 4 : 16, H.NumTransitions) ||
      !PoolFits(H.OffOldTransitions, 16, H.NumOldTransitions) ||
      !PoolFits(H.OffActionLabels, 4, H.NumTransitions) ||
      !PoolFits(H.OffReductions, 4, H.NumReductions) ||
      !PoolFits(H.OffAcceptRules, 4, H.NumAcceptRules))
    return Error("flat section: array out of bounds");

  clearStorage(Graph);
  Graph.ByKernel.reserve(H.NumSets);
  Graph.Sets.appendZeroed(H.NumSets);
  for (uint32_t I = 0; I < H.NumSets; ++I)
    Graph.setAt(I).Id = I;

  // Field-by-field reads (endian-safe on every host): the decode cost the
  // zero-copy path avoids, paid here only for stale snapshots that need
  // their ids remapped anyway — and for legacy-layout files. The loops
  // read through raw LE loads; the up-front pool bounds above cover every
  // access. Abandoned span bytes are compacted away (only referenced
  // spans are copied), but Dead tombstones are preserved: the record
  // index space is the transition target space.
  const uint8_t *Base = Section.data();
  std::vector<std::pair<SymbolId, uint32_t>> Edges;
  std::vector<SymbolId> TmpLabels;
  std::vector<uint32_t> TmpTargets;
  std::vector<RuleId> TmpRules;
  Kernel K;

  auto AppendEdges = [&](uint32_t &OutOff, uint32_t &OutLen) {
    std::sort(Edges.begin(), Edges.end());
    TmpLabels.clear();
    TmpTargets.clear();
    for (const auto &[Label, Target] : Edges) {
      TmpLabels.push_back(Label);
      TmpTargets.push_back(Target);
    }
    OutOff = Graph.Trans.append(TmpTargets.data(), TmpTargets.size());
    uint32_t LOff = Graph.Labels.append(TmpLabels.data(), TmpLabels.size());
    assert(OutOff == LOff && "Trans/Labels pools out of lockstep");
    (void)LOff;
    OutLen = static_cast<uint32_t>(Edges.size());
  };

  /// Legacy pools: 16-byte records at \p PoolOff. Flat pools: parallel
  /// 4-byte target/label arrays.
  auto ReadEdgeSpan = [&](uint32_t Off, uint32_t Len, uint64_t LegacyPoolOff,
                          uint32_t &OutOff,
                          uint32_t &OutLen) -> const char * {
    Edges.clear();
    for (uint32_t J = 0; J < Len; ++J) {
      uint32_t Label;
      uint64_t Target;
      if (Flat) {
        Label = loadLe32(Base + H.OffActionLabels + uint64_t{4} * (Off + J));
        Target = loadLe32(Base + H.OffTransitions + uint64_t{4} * (Off + J));
      } else {
        const uint8_t *Rec = Base + LegacyPoolOff + uint64_t{16} * (Off + J);
        Label = loadLe32(Rec);
        Target = loadLe64(Rec + 8);
      }
      if (Label >= SymbolMap.size())
        return "transition label references an unknown symbol";
      if (Target >= H.NumSets)
        return "transition target out of range";
      Edges.emplace_back(SymbolMap[Label], static_cast<uint32_t>(Target));
    }
    AppendEdges(OutOff, OutLen);
    return nullptr;
  };
  auto ReadRuleSpan = [&](PoolArena<RuleId> &Pool, uint64_t PoolOff,
                          uint32_t Off, uint32_t Len, uint32_t &OutOff,
                          uint32_t &OutLen) -> const char * {
    TmpRules.clear();
    const uint8_t *Rec = Base + PoolOff + uint64_t{4} * Off;
    for (uint32_t J = 0; J < Len; ++J, Rec += 4) {
      uint32_t Rule = loadLe32(Rec);
      if (Rule >= RuleMap.size())
        return "reduction references an unknown rule";
      TmpRules.push_back(RuleMap[Rule]);
    }
    OutOff = Pool.append(TmpRules.data(), TmpRules.size());
    OutLen = static_cast<uint32_t>(TmpRules.size());
    return nullptr;
  };

  for (uint32_t I = 0; I < H.NumSets; ++I) {
    // Decode the per-set record into the common FlatRec shape. The flat
    // record is 52 bytes led by the id; the legacy record is 48 bytes
    // without it.
    FlatRec R;
    std::memset(&R, 0, sizeof(R));
    if (Flat) {
      const uint8_t *RecBytes = Base + H.OffSetRecs + uint64_t{52} * I;
      R.Id = loadLe32(RecBytes);
      R.State = RecBytes[4];
      R.Accepting = RecBytes[5];
      R.Pad = static_cast<uint16_t>(loadLe32(RecBytes + 4) >> 16);
      R.RefCount = loadLe32(RecBytes + 8);
      uint32_t *Fields[] = {&R.KernelOff, &R.KernelLen, &R.TransOff,
                            &R.TransLen,  &R.OldOff,    &R.OldLen,
                            &R.RedOff,    &R.RedLen,    &R.AccOff,
                            &R.AccLen};
      for (size_t F = 0; F < 10; ++F)
        *Fields[F] = loadLe32(RecBytes + 12 + 4 * F);
      if (const char *Msg = checkFlatRecShape(R, I, H))
        return Error(Msg);
    } else {
      const uint8_t *RecBytes = Base + H.OffSetRecs + uint64_t{48} * I;
      SetRec L;
      uint32_t Word0 = loadLe32(RecBytes);
      L.State = static_cast<uint8_t>(Word0 & 0xFF);
      L.Accepting = static_cast<uint8_t>((Word0 >> 8) & 0xFF);
      L.Reserved = 0;
      uint32_t *Fields[] = {&L.KernelOff, &L.KernelLen, &L.TransOff,
                            &L.TransLen,  &L.OldOff,    &L.OldLen,
                            &L.RedOff,    &L.RedLen,    &L.AccOff,
                            &L.AccLen};
      for (size_t F = 0; F < 10; ++F)
        *Fields[F] = loadLe32(RecBytes + 4 * (F + 1));
      L.Reserved2 = 0;
      Expected<uint8_t> Shape = checkSetRecShape(L, H);
      if (!Shape)
        return Shape.error();
      R.Id = I;
      R.State = L.State;
      R.Accepting = L.Accepting;
      R.KernelOff = L.KernelOff;
      R.KernelLen = L.KernelLen;
      R.TransOff = L.TransOff;
      R.TransLen = L.TransLen;
      R.OldOff = L.OldOff;
      R.OldLen = L.OldLen;
      R.RedOff = L.RedOff;
      R.RedLen = L.RedLen;
      R.AccOff = L.AccOff;
      R.AccLen = L.AccLen;
    }

    ItemSet &State = Graph.setAt(I);
    State.State = static_cast<ItemSetState>(R.State);
    if (R.State == StateDead)
      continue; // Tombstone: keep the zeroed record (id already set).
    State.Accepting = R.Accepting;

    K.clear();
    K.reserve(R.KernelLen);
    const uint8_t *ItemBytes =
        Base + H.OffKernelItems + uint64_t{8} * R.KernelOff;
    for (uint32_t J = 0; J < R.KernelLen; ++J, ItemBytes += 8) {
      uint32_t Rule = loadLe32(ItemBytes);
      uint32_t Dot = loadLe32(ItemBytes + 4);
      if (Rule >= RuleMap.size())
        return Error("kernel item references an unknown rule");
      RuleId Mapped = RuleMap[Rule];
      if (Dot > G.rule(Mapped).Rhs.size())
        return Error("kernel item dot beyond its rule");
      K.push_back(Item{Mapped, Dot});
    }
    canonicalizeKernel(K);
    std::vector<ItemSet *> &Bucket = Graph.ByKernel[hashKernel(K)];
    for (const ItemSet *Other : Bucket)
      if (kernelEquals(Graph.kernel(Other), K))
        return Error("duplicate kernel in snapshot");
    State.KernelOff = Graph.Kernels.append(K.data(), K.size());
    State.KernelLen = static_cast<uint32_t>(K.size());
    Bucket.push_back(&State);

    if (const char *Msg = ReadEdgeSpan(R.TransOff, R.TransLen,
                                       H.OffTransitions, State.TransOff,
                                       State.TransLen))
      return Error(Msg);
    if (const char *Msg = ReadEdgeSpan(R.OldOff, R.OldLen,
                                       H.OffOldTransitions, State.OldOff,
                                       State.OldLen))
      return Error(Msg);
    if (const char *Msg = ReadRuleSpan(Graph.Reds, H.OffReductions, R.RedOff,
                                       R.RedLen, State.RedOff, State.RedLen))
      return Error(Msg);
    if (const char *Msg = ReadRuleSpan(Graph.Accs, H.OffAcceptRules, R.AccOff,
                                       R.AccLen, State.AccOff, State.AccLen))
      return Error(Msg);
  }

  Graph.Start = &Graph.setAt(H.StartIdx);
  if (Graph.Start->isDead())
    return Error("start set is dead");
  // Re-derive reference counts (see load()); persisted flat-layout counts
  // are not carried through a remap.
  Graph.Start->RefCount = 1;
  for (uint32_t I = 0; I < H.NumSets; ++I) {
    const ItemSet &State = Graph.setAt(I);
    if (State.isDead())
      continue;
    auto Bump = [&](TransitionRange Range) -> const char * {
      for (ItemSet::Transition T : Range) {
        if (T.Target->isDead())
          return "transition to a dead set";
        ++T.Target->RefCount;
      }
      return nullptr;
    };
    if (const char *Msg = Bump(Graph.transitions(&State)))
      return Error(Msg);
    if (const char *Msg = Bump(Graph.oldTransitions(&State)))
      return Error(Msg);
  }
  for (uint32_t I = 0; I < H.NumSets; ++I) {
    const ItemSet &State = Graph.setAt(I);
    if (!State.isDead() && State.RefCount == 0)
      return Error("orphaned set in snapshot");
  }

  ItemSetGraphStats Loaded;
  Loaded.Expansions = H.Stats[0];
  Loaded.ReExpansions = H.Stats[1];
  Loaded.ClosureItems = H.Stats[2];
  Loaded.DirtyMarks = H.Stats[3];
  Loaded.Collected = H.Stats[4];
  Loaded.GotoCalls = H.Stats[5];
  Graph.storeStats(Loaded);
  return H.NumSets;
}

bool GraphSnapshot::hostCanAdoptV2() { return HostCanAdoptV2; }

void GraphSnapshot::clearStorage(ItemSetGraph &Graph) {
  Graph.Sets.clear();
  Graph.Kernels.clear();
  Graph.Trans.clear();
  Graph.Labels.clear();
  Graph.Reds.clear();
  Graph.Accs.clear();
  Graph.ByKernel.clear();
  Graph.KernelIndexReady = true;
  Graph.BorrowedStorage.reset();
  Graph.AdoptedSets = 0;
  Graph.Start = nullptr;
  Graph.storeStats(ItemSetGraphStats());
}

void GraphSnapshot::reset(ItemSetGraph &Graph) {
  clearStorage(Graph);
  Graph.Start = Graph.makeItemSet(Graph.startKernel());
  Graph.Start->RefCount = 1;
}
