//===- lr/GraphSnapshot.cpp - Item-set graph persistence ------------------===//

#include "lr/GraphSnapshot.h"

#include "support/MappedFile.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>

using namespace ipg;

namespace {

/// On-disk lifecycle codes; Dead is never serialized.
enum : uint8_t { StateInitial = 0, StateComplete = 1, StateDirty = 2 };

uint8_t stateCode(ItemSetState State) {
  switch (State) {
  case ItemSetState::Initial:
    return StateInitial;
  case ItemSetState::Complete:
    return StateComplete;
  case ItemSetState::Dirty:
    return StateDirty;
  case ItemSetState::Dead:
    break;
  }
  assert(false && "serializing a dead set of items");
  return StateInitial;
}

//===----------------------------------------------------------------------===//
// ipg-snap-v2 GRPH section layout (struct-of-arrays, little-endian,
// natural alignment; all offsets relative to the 8-aligned section start,
// all Off/Len pairs are element indices into the named pools).
//
//   GrphHeader (136 bytes)
//   SetRec[NumSets]                48-byte fixed records
//   Item[NumKernelItems]           {u32 Rule, u32 Dot}
//   TransRec[NumTransitions]       {u32 Label, u32 0, u64 TargetIdx}
//   TransRec[NumOldTransitions]    dirty sets' retained history
//   SymbolId[NumTransitions]       action labels, parallel to TransRec
//   RuleId[NumReductions]
//   RuleId[NumAcceptRules]
//
// TransRec mirrors the in-memory ItemSet::Transition layout on LP64
// little-endian hosts; adoption overwrites TargetIdx with the fixed-up
// ItemSet pointer and then uses the records in place.
//===----------------------------------------------------------------------===//

struct GrphHeader {
  uint32_t NumSets;
  uint32_t StartIdx;
  uint32_t NumKernelItems;
  uint32_t NumTransitions;
  uint32_t NumOldTransitions;
  uint32_t NumReductions;
  uint32_t NumAcceptRules;
  uint32_t Reserved;
  uint64_t Stats[6];
  uint64_t OffSetRecs;
  uint64_t OffKernelItems;
  uint64_t OffTransitions;
  uint64_t OffOldTransitions;
  uint64_t OffActionLabels;
  uint64_t OffReductions;
  uint64_t OffAcceptRules;
};
static_assert(sizeof(GrphHeader) == 136, "v2 GRPH header layout drifted");

struct SetRec {
  uint8_t State;
  uint8_t Accepting;
  uint16_t Reserved;
  uint32_t KernelOff, KernelLen;
  uint32_t TransOff, TransLen;
  uint32_t OldOff, OldLen;
  uint32_t RedOff, RedLen;
  uint32_t AccOff, AccLen;
  uint32_t Reserved2;
};
static_assert(sizeof(SetRec) == 48, "v2 set record layout drifted");

struct TransRec {
  uint32_t Label;
  uint32_t Reserved;
  uint64_t Target;
};
static_assert(sizeof(TransRec) == 16, "v2 transition record layout drifted");

/// The zero-copy path reinterprets mapped records as in-memory types; it
/// is compiled in only where the layouts provably coincide. Elsewhere (or
/// for remapping loads) the endian-safe field-by-field decoder runs.
constexpr bool HostCanAdoptV2 =
    std::endian::native == std::endian::little && sizeof(void *) == 8 &&
    sizeof(Item) == 8 && alignof(Item) <= 8 &&
    sizeof(ItemSet::Transition) == sizeof(TransRec) &&
    alignof(ItemSet::Transition) <= 8 && sizeof(SymbolId) == 4 &&
    sizeof(RuleId) == 4;

/// Reads the fixed v2 GRPH header out of \p Section (endian-safe).
Expected<GrphHeader> readGrphHeader(const FlatView &Section) {
  GrphHeader H;
  uint32_t *U32Fields[] = {&H.NumSets,         &H.StartIdx,
                           &H.NumKernelItems,  &H.NumTransitions,
                           &H.NumOldTransitions, &H.NumReductions,
                           &H.NumAcceptRules,  &H.Reserved};
  size_t Off = 0;
  for (uint32_t *Field : U32Fields) {
    Expected<uint32_t> V = Section.u32At(Off);
    if (!V)
      return V.error();
    *Field = *V;
    Off += 4;
  }
  uint64_t *U64Fields[] = {&H.Stats[0],        &H.Stats[1],
                           &H.Stats[2],        &H.Stats[3],
                           &H.Stats[4],        &H.Stats[5],
                           &H.OffSetRecs,      &H.OffKernelItems,
                           &H.OffTransitions,  &H.OffOldTransitions,
                           &H.OffActionLabels, &H.OffReductions,
                           &H.OffAcceptRules};
  for (uint64_t *Field : U64Fields) {
    Expected<uint64_t> V = Section.u64At(Off);
    if (!V)
      return V.error();
    *Field = *V;
    Off += 8;
  }
  return H;
}

/// Endian-safe unaligned loads for the v2 decode fallback. The compiler
/// folds them to single loads on little-endian hosts; bounds are
/// established once per pool before the loops run, so the hot decode path
/// skips FlatView's per-field checks.
inline uint32_t loadLe32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | static_cast<uint32_t>(P[1]) << 8 |
         static_cast<uint32_t>(P[2]) << 16 | static_cast<uint32_t>(P[3]) << 24;
}
inline uint64_t loadLe64(const uint8_t *P) {
  return static_cast<uint64_t>(loadLe32(P)) |
         static_cast<uint64_t>(loadLe32(P + 4)) << 32;
}

/// Shared structural checks on a v2 set record against the header totals.
Expected<uint8_t> checkSetRecShape(const SetRec &R, const GrphHeader &H) {
  if (R.State > StateDirty)
    return Error("invalid item-set state code");
  bool Complete = R.State == StateComplete;
  if (R.Accepting > 1 || (R.Accepting == 1 && !Complete))
    return Error("invalid accepting flag");
  auto SpanOk = [](uint32_t Off, uint32_t Len, uint32_t Total) {
    return static_cast<uint64_t>(Off) + Len <= Total;
  };
  if (!SpanOk(R.KernelOff, R.KernelLen, H.NumKernelItems) ||
      !SpanOk(R.TransOff, R.TransLen, H.NumTransitions) ||
      !SpanOk(R.OldOff, R.OldLen, H.NumOldTransitions) ||
      !SpanOk(R.RedOff, R.RedLen, H.NumReductions) ||
      !SpanOk(R.AccOff, R.AccLen, H.NumAcceptRules))
    return Error("set record span out of range");
  if (!Complete && (R.TransLen != 0 || R.RedLen != 0 || R.AccLen != 0))
    return Error("records on a set whose state forbids them");
  if (R.State != StateDirty && R.OldLen != 0)
    return Error("old transitions on a non-dirty set");
  if (R.AccLen != 0 && R.Accepting != 1)
    return Error("accept rules on a non-accepting set");
  return uint8_t{0};
}

} // namespace

//===----------------------------------------------------------------------===//
// v1 (ByteStream varint encoding)
//===----------------------------------------------------------------------===//

void GraphSnapshot::save(const ItemSetGraph &Graph, ByteWriter &Writer) {
  // Dense indices for the live sets, in creation order: the serialized ids
  // are a compaction of the pool, so a graph that went through garbage
  // collection still snapshots into a gap-free, deterministic form.
  std::vector<uint32_t> DenseIdx(Graph.numSets(), 0);
  uint32_t NumLive = 0;
  for (size_t I = 0, N = Graph.numSets(); I < N; ++I) {
    const ItemSet &State = Graph.setAt(I);
    if (!State.isDead())
      DenseIdx[State.Id] = NumLive++;
  }

  Writer.writeVarint(NumLive);
  Writer.writeVarint(DenseIdx[Graph.Start->Id]);

  auto WriteTransitions = [&](ArrayView<ItemSet::Transition> Transitions) {
    Writer.writeVarint(Transitions.size());
    for (const ItemSet::Transition &T : Transitions) {
      assert(!T.Target->isDead() && "live transition to a dead set");
      Writer.writeVarint(T.Label);
      Writer.writeVarint(DenseIdx[T.Target->Id]);
    }
  };
  auto WriteRules = [&](ArrayView<RuleId> Rules) {
    Writer.writeVarint(Rules.size());
    for (RuleId Rule : Rules)
      Writer.writeVarint(Rule);
  };

  for (size_t I = 0, N = Graph.numSets(); I < N; ++I) {
    const ItemSet &State = Graph.setAt(I);
    if (State.isDead())
      continue;
    Writer.writeU8(stateCode(State.State));
    Writer.writeU8(State.Accepting ? 1 : 0);
    KernelView K = State.kernel();
    Writer.writeVarint(K.size());
    for (const Item &I2 : K) {
      Writer.writeVarint(I2.Rule);
      Writer.writeVarint(I2.Dot);
    }
    WriteTransitions(State.transitions());
    WriteRules(State.reductions());
    WriteRules(State.acceptRules());
    WriteTransitions(State.oldTransitions());
  }

  // Reference counts are not serialized: they are derivable (one per
  // incoming transition, old or new, plus the start set's root reference)
  // and load() re-derives them, so a snapshot cannot carry a skewed count.
  const ItemSetGraphStats S = Graph.stats();
  Writer.writeVarint(S.Expansions);
  Writer.writeVarint(S.ReExpansions);
  Writer.writeVarint(S.ClosureItems);
  Writer.writeVarint(S.DirtyMarks);
  Writer.writeVarint(S.Collected);
  Writer.writeVarint(S.GotoCalls);
}

Expected<size_t> GraphSnapshot::load(ByteReader &Reader, ItemSetGraph &Graph,
                                     const std::vector<SymbolId> &SymbolMap,
                                     const std::vector<RuleId> &RuleMap) {
  const Grammar &G = Graph.G;
  Graph.Adopted.clear();
  Graph.Pool.clear();
  Graph.ByKernel.clear();
  Graph.KernelIndexReady = true;
  Graph.BorrowedStorage.reset();
  Graph.Start = nullptr;
  Graph.storeStats(ItemSetGraphStats());

  Expected<uint64_t> NumSets = Reader.readVarint();
  if (!NumSets)
    return NumSets.error();
  if (*NumSets == 0)
    return Error("snapshot graph has no start set");
  // Each set costs at least 7 bytes; a count above the byte budget is
  // corrupt, and rejecting it bounds the pool allocation.
  if (*NumSets > Reader.remaining())
    return Error("set count exceeds section size");
  Expected<uint64_t> StartIdx = Reader.readVarint();
  if (!StartIdx)
    return StartIdx.error();
  if (*StartIdx >= *NumSets)
    return Error("start set index out of range");

  Graph.ByKernel.reserve(static_cast<size_t>(*NumSets));
  for (uint64_t I = 0; I < *NumSets; ++I) {
    Graph.Pool.emplace_back();
    Graph.Pool.back().Id = static_cast<uint32_t>(I);
  }

  auto ReadTransitions = [&](std::vector<ItemSet::Transition> &Transitions,
                             bool Allowed) -> Expected<uint8_t> {
    Expected<uint64_t> Count = Reader.readVarint();
    if (!Count)
      return Count.error();
    if (*Count != 0 && !Allowed)
      return Error("transitions on a set whose state forbids them");
    if (*Count > Reader.remaining())
      return Error("transition count exceeds section size");
    Transitions.reserve(static_cast<size_t>(*Count));
    for (uint64_t I = 0; I < *Count; ++I) {
      Expected<uint64_t> Label = Reader.readVarint();
      if (!Label)
        return Label.error();
      if (*Label >= SymbolMap.size())
        return Error("transition label references an unknown symbol");
      Expected<uint64_t> Target = Reader.readVarint();
      if (!Target)
        return Target.error();
      if (*Target >= *NumSets)
        return Error("transition target out of range");
      Transitions.push_back(ItemSet::Transition{
          SymbolMap[static_cast<size_t>(*Label)],
          &Graph.Pool[static_cast<size_t>(*Target)]});
    }
    sortTransitionsByLabel(Transitions);
    return uint8_t{0};
  };
  auto ReadRules = [&](std::vector<RuleId> &Rules,
                       bool Allowed) -> Expected<uint8_t> {
    Expected<uint64_t> Count = Reader.readVarint();
    if (!Count)
      return Count.error();
    if (*Count != 0 && !Allowed)
      return Error("reductions on a set whose state forbids them");
    if (*Count > Reader.remaining())
      return Error("rule count exceeds section size");
    Rules.reserve(static_cast<size_t>(*Count));
    for (uint64_t I = 0; I < *Count; ++I) {
      Expected<uint64_t> Rule = Reader.readVarint();
      if (!Rule)
        return Rule.error();
      if (*Rule >= RuleMap.size())
        return Error("reduction references an unknown rule");
      Rules.push_back(RuleMap[static_cast<size_t>(*Rule)]);
    }
    return uint8_t{0};
  };

  for (uint64_t I = 0; I < *NumSets; ++I) {
    ItemSet &State = Graph.Pool[static_cast<size_t>(I)];
    Expected<uint8_t> Code = Reader.readU8();
    if (!Code)
      return Code.error();
    switch (*Code) {
    case StateInitial:
      State.State = ItemSetState::Initial;
      break;
    case StateComplete:
      State.State = ItemSetState::Complete;
      break;
    case StateDirty:
      State.State = ItemSetState::Dirty;
      break;
    default:
      return Error("invalid item-set state code");
    }
    bool Complete = State.State == ItemSetState::Complete;

    Expected<uint8_t> Accepting = Reader.readU8();
    if (!Accepting)
      return Accepting.error();
    if (*Accepting > 1 || (*Accepting == 1 && !Complete))
      return Error("invalid accepting flag");
    State.Accepting = *Accepting == 1;

    Expected<uint64_t> KernelSize = Reader.readVarint();
    if (!KernelSize)
      return KernelSize.error();
    if (*KernelSize > Reader.remaining())
      return Error("kernel size exceeds section size");
    State.K.reserve(static_cast<size_t>(*KernelSize));
    for (uint64_t J = 0; J < *KernelSize; ++J) {
      Expected<uint64_t> Rule = Reader.readVarint();
      if (!Rule)
        return Rule.error();
      if (*Rule >= RuleMap.size())
        return Error("kernel item references an unknown rule");
      RuleId Mapped = RuleMap[static_cast<size_t>(*Rule)];
      Expected<uint64_t> Dot = Reader.readVarint();
      if (!Dot)
        return Dot.error();
      if (*Dot > G.rule(Mapped).Rhs.size())
        return Error("kernel item dot beyond its rule");
      State.K.push_back(Item{Mapped, static_cast<uint32_t>(*Dot)});
    }
    // Remapped rule ids may order differently; re-establish canonical form
    // before hashing into the kernel index.
    canonicalizeKernel(State.K);
    std::vector<ItemSet *> &Bucket = Graph.ByKernel[hashKernel(State.K)];
    for (const ItemSet *Other : Bucket)
      if (Other->K == State.K)
        return Error("duplicate kernel in snapshot");
    Bucket.push_back(&State);

    Expected<uint8_t> Ok = ReadTransitions(State.Transitions, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadRules(State.Reductions, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadRules(State.AcceptRules, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadTransitions(State.OldTransitions,
                         State.State == ItemSetState::Dirty);
    if (!Ok)
      return Ok.error();

    // The ACTION/GOTO index is derived, never serialized in v1: rebuild it
    // for adopted Complete sets so queries against a warm-started graph
    // run the same allocation-free path as against a freshly expanded one.
    if (Complete)
      State.buildActionIndex();
  }

  Graph.Start = &Graph.Pool[static_cast<size_t>(*StartIdx)];

  // Re-derive the reference counts from the incoming edges (DECR-REFCOUNT
  // bookkeeping of §6.2): one per transition — retained pre-modification
  // ones included — plus the start set's root pin.
  Graph.Start->RefCount = 1;
  for (ItemSet &State : Graph.Pool) {
    for (const ItemSet::Transition &T : State.Transitions)
      ++T.Target->RefCount;
    for (const ItemSet::Transition &T : State.OldTransitions)
      ++T.Target->RefCount;
  }
  for (const ItemSet &State : Graph.Pool)
    if (State.RefCount == 0)
      return Error("orphaned set in snapshot");

  ItemSetGraphStats Loaded;
  uint64_t *Counters[] = {&Loaded.Expansions,   &Loaded.ReExpansions,
                          &Loaded.ClosureItems, &Loaded.DirtyMarks,
                          &Loaded.Collected,    &Loaded.GotoCalls};
  for (uint64_t *Counter : Counters) {
    Expected<uint64_t> Value = Reader.readVarint();
    if (!Value)
      return Value.error();
    *Counter = *Value;
  }
  Graph.storeStats(Loaded);
  if (!Reader.atEnd())
    return Error("trailing bytes after graph snapshot");
  return static_cast<size_t>(*NumSets);
}

//===----------------------------------------------------------------------===//
// v2 (FlatSection struct-of-arrays encoding)
//===----------------------------------------------------------------------===//

void GraphSnapshot::saveV2(const ItemSetGraph &Graph, FlatWriter &Section) {
  assert(Section.size() == 0 && "v2 GRPH section must start its writer");

  // Live sets in creation order with dense indices, exactly like v1.
  std::vector<const ItemSet *> Live;
  std::vector<uint32_t> DenseIdx(Graph.numSets(), 0);
  for (size_t I = 0, N = Graph.numSets(); I < N; ++I) {
    const ItemSet &State = Graph.setAt(I);
    if (State.isDead())
      continue;
    DenseIdx[State.Id] = static_cast<uint32_t>(Live.size());
    Live.push_back(&State);
  }

  uint64_t KernelItems = 0, Transitions = 0, OldTransitions = 0;
  uint64_t Reductions = 0, AcceptRules = 0;
  for (const ItemSet *State : Live) {
    KernelItems += State->kernel().size();
    Transitions += State->transitions().size();
    OldTransitions += State->oldTransitions().size();
    Reductions += State->reductions().size();
    AcceptRules += State->acceptRules().size();
  }

  Section.writeU32(static_cast<uint32_t>(Live.size()));
  Section.writeU32(DenseIdx[Graph.Start->Id]);
  Section.writeU32(static_cast<uint32_t>(KernelItems));
  Section.writeU32(static_cast<uint32_t>(Transitions));
  Section.writeU32(static_cast<uint32_t>(OldTransitions));
  Section.writeU32(static_cast<uint32_t>(Reductions));
  Section.writeU32(static_cast<uint32_t>(AcceptRules));
  Section.writeU32(0);
  const ItemSetGraphStats Snap = Graph.stats();
  const uint64_t Stats[6] = {Snap.Expansions, Snap.ReExpansions,
                             Snap.ClosureItems, Snap.DirtyMarks,
                             Snap.Collected, Snap.GotoCalls};
  for (uint64_t Stat : Stats)
    Section.writeU64(Stat);
  size_t OffTable = Section.reserve(7 * 8);

  // SetRec array: fixed-width records with cumulative pool offsets.
  uint64_t Offsets[7] = {0};
  Offsets[0] = Section.size();
  uint32_t KOff = 0, TOff = 0, OOff = 0, ROff = 0, AOff = 0;
  for (const ItemSet *State : Live) {
    Section.writeU8(stateCode(State->State));
    Section.writeU8(State->Accepting ? 1 : 0);
    Section.writeU16(0);
    uint32_t Counts[5] = {static_cast<uint32_t>(State->kernel().size()),
                          static_cast<uint32_t>(State->transitions().size()),
                          static_cast<uint32_t>(State->oldTransitions().size()),
                          static_cast<uint32_t>(State->reductions().size()),
                          static_cast<uint32_t>(State->acceptRules().size())};
    uint32_t *Cursors[5] = {&KOff, &TOff, &OOff, &ROff, &AOff};
    for (int Field = 0; Field < 5; ++Field) {
      Section.writeU32(*Cursors[Field]);
      Section.writeU32(Counts[Field]);
      *Cursors[Field] += Counts[Field];
    }
    Section.writeU32(0);
  }

  // Kernel item pool.
  Section.alignTo(8);
  Offsets[1] = Section.size();
  for (const ItemSet *State : Live)
    for (const Item &I : State->kernel()) {
      Section.writeU32(I.Rule);
      Section.writeU32(I.Dot);
    }

  auto WriteTransPool = [&](bool Old) {
    for (const ItemSet *State : Live)
      for (const ItemSet::Transition &T :
           Old ? State->oldTransitions() : State->transitions()) {
        assert(!T.Target->isDead() && "live transition to a dead set");
        Section.writeU32(T.Label);
        Section.writeU32(0);
        Section.writeU64(DenseIdx[T.Target->Id]);
      }
  };
  Section.alignTo(8);
  Offsets[2] = Section.size();
  WriteTransPool(false);
  Section.alignTo(8);
  Offsets[3] = Section.size();
  WriteTransPool(true);

  // Action labels, parallel to the transition pool: persisting the dense
  // query index is what lets adoption skip buildActionIndex entirely.
  Offsets[4] = Section.size();
  for (const ItemSet *State : Live)
    for (const ItemSet::Transition &T : State->transitions())
      Section.writeU32(T.Label);

  Offsets[5] = Section.size();
  for (const ItemSet *State : Live)
    for (RuleId Rule : State->reductions())
      Section.writeU32(Rule);

  Offsets[6] = Section.size();
  for (const ItemSet *State : Live)
    for (RuleId Rule : State->acceptRules())
      Section.writeU32(Rule);
  Section.alignTo(8);

  for (int I = 0; I < 7; ++I)
    Section.patchU64(OffTable + 8 * static_cast<size_t>(I), Offsets[I]);
}

Expected<size_t>
GraphSnapshot::adoptV2(uint8_t *SectionData, size_t SectionBytes,
                       ItemSetGraph &Graph,
                       std::shared_ptr<const MappedFile> Backing) {
  if constexpr (!HostCanAdoptV2)
    return Error("zero-copy snapshot adoption requires a 64-bit "
                 "little-endian host");

  const Grammar &G = Graph.G;
  FlatView Section(SectionData, SectionBytes);
  Expected<GrphHeader> Header = readGrphHeader(Section);
  if (!Header)
    return Header.error();
  const GrphHeader &H = *Header;
  if (H.NumSets == 0)
    return Error("snapshot graph has no start set");
  if (H.StartIdx >= H.NumSets)
    return Error("start set index out of range");

  Expected<const SetRec *> Sets = Section.arrayAt<SetRec>(H.OffSetRecs,
                                                          H.NumSets);
  if (!Sets)
    return Sets.error();
  Expected<const Item *> KernelPool =
      Section.arrayAt<Item>(H.OffKernelItems, H.NumKernelItems);
  if (!KernelPool)
    return KernelPool.error();
  Expected<const TransRec *> TransPool =
      Section.arrayAt<TransRec>(H.OffTransitions, H.NumTransitions);
  if (!TransPool)
    return TransPool.error();
  Expected<const TransRec *> OldPool =
      Section.arrayAt<TransRec>(H.OffOldTransitions, H.NumOldTransitions);
  if (!OldPool)
    return OldPool.error();
  Expected<const SymbolId *> LabelPool =
      Section.arrayAt<SymbolId>(H.OffActionLabels, H.NumTransitions);
  if (!LabelPool)
    return LabelPool.error();
  Expected<const RuleId *> RedPool =
      Section.arrayAt<RuleId>(H.OffReductions, H.NumReductions);
  if (!RedPool)
    return RedPool.error();
  Expected<const RuleId *> AccPool =
      Section.arrayAt<RuleId>(H.OffAcceptRules, H.NumAcceptRules);
  if (!AccPool)
    return AccPool.error();

  const size_t NumSymbols = G.symbols().size();
  const size_t NumRules = G.numInternedRules();

  // From here on the graph is rebuilt in place; any validation failure
  // leaves it partial and the caller resets. The adopted block is the one
  // allocation of the whole load — per-set data stays in the mapping.
  Graph.Pool.clear();
  Graph.ByKernel.clear();
  Graph.KernelIndexReady = false;
  Graph.Start = nullptr;
  Graph.Adopted.clear();
  Graph.Adopted.resize(H.NumSets);

  // Pointer fixup: rewrite every transition record's target index into the
  // address of the adopted set. The records live in a private (COW)
  // mapping, so the writes materialize only the touched pages and never
  // reach the file. Validation rides the same sweep — labels in range and
  // strictly ascending (the binary-search contract), targets in range,
  // the persisted action-label array parallel to the record pool — so the
  // pass stays O(records) with zero decode and zero allocation.
  auto FixupTransitions = [&](const TransRec *Pool, uint32_t Off, uint32_t Len,
                              bool RequireSorted) -> const char * {
    SymbolId Prev = 0;
    for (uint32_t J = 0; J < Len; ++J) {
      TransRec *Rec =
          const_cast<TransRec *>(Pool + Off + J); // private mapping: writable
      if (Rec->Label >= NumSymbols)
        return "transition label references an unknown symbol";
      if (RequireSorted && J > 0 && Rec->Label <= Prev)
        return "transition labels not strictly ascending";
      Prev = Rec->Label;
      uint64_t Target = Rec->Target;
      if (Target >= H.NumSets)
        return "transition target out of range";
      ItemSet *TargetSet = &Graph.Adopted[static_cast<size_t>(Target)];
      ++TargetSet->RefCount;
      std::memcpy(&Rec->Target, &TargetSet, sizeof(TargetSet));
    }
    return nullptr;
  };

  for (uint32_t I = 0; I < H.NumSets; ++I) {
    const SetRec &R = (*Sets)[I];
    Expected<uint8_t> Shape = checkSetRecShape(R, H);
    if (!Shape)
      return Shape.error();
    ItemSet &State = Graph.Adopted[I];
    State.Id = I;
    State.State = static_cast<ItemSetState>(R.State);
    State.Accepting = R.Accepting == 1;

    const Item *KernelBegin = *KernelPool + R.KernelOff;
    for (uint32_t J = 0; J < R.KernelLen; ++J) {
      const Item &It = KernelBegin[J];
      if (It.Rule >= NumRules)
        return Error("kernel item references an unknown rule");
      if (It.Dot > G.rule(It.Rule).Rhs.size())
        return Error("kernel item dot beyond its rule");
    }
    if (!isCanonicalKernel(KernelView(KernelBegin, R.KernelLen)))
      return Error("kernel not in canonical order");

    if (const char *Msg = FixupTransitions(*TransPool, R.TransOff, R.TransLen,
                                           /*RequireSorted=*/true))
      return Error(Msg);
    if (const char *Msg = FixupTransitions(*OldPool, R.OldOff, R.OldLen,
                                           /*RequireSorted=*/false))
      return Error(Msg);
    for (uint32_t J = 0; J < R.TransLen; ++J)
      if ((*LabelPool)[R.TransOff + J] !=
          (*TransPool)[R.TransOff + J].Label)
        return Error("action-label array disagrees with transitions");
    for (uint32_t J = 0; J < R.RedLen; ++J)
      if ((*RedPool)[R.RedOff + J] >= NumRules)
        return Error("reduction references an unknown rule");
    for (uint32_t J = 0; J < R.AccLen; ++J)
      if ((*AccPool)[R.AccOff + J] >= NumRules)
        return Error("accept rule references an unknown rule");

    // The mapped records now hold real pointers; hand the set borrowed
    // spans over them.
    State.Borrowed = true;
    State.BorrowedK = KernelView(KernelBegin, R.KernelLen);
    State.BorrowedTrans = ArrayView<ItemSet::Transition>(
        std::launder(
            reinterpret_cast<const ItemSet::Transition *>(*TransPool +
                                                          R.TransOff)),
        R.TransLen);
    State.BorrowedOld = ArrayView<ItemSet::Transition>(
        std::launder(reinterpret_cast<const ItemSet::Transition *>(*OldPool +
                                                                   R.OldOff)),
        R.OldLen);
    State.BorrowedLabels =
        ArrayView<SymbolId>(*LabelPool + R.TransOff, R.TransLen);
    State.BorrowedRed = ArrayView<RuleId>(*RedPool + R.RedOff, R.RedLen);
    State.BorrowedAcc = ArrayView<RuleId>(*AccPool + R.AccOff, R.AccLen);
  }

  Graph.Start = &Graph.Adopted[H.StartIdx];
  ++Graph.Start->RefCount; // The root pin.
  for (const ItemSet &State : Graph.Adopted)
    if (State.RefCount == 0)
      return Error("orphaned set in snapshot");

  ItemSetGraphStats Loaded;
  Loaded.Expansions = H.Stats[0];
  Loaded.ReExpansions = H.Stats[1];
  Loaded.ClosureItems = H.Stats[2];
  Loaded.DirtyMarks = H.Stats[3];
  Loaded.Collected = H.Stats[4];
  Loaded.GotoCalls = H.Stats[5];
  Graph.storeStats(Loaded);
  Graph.BorrowedStorage = std::move(Backing);
  return H.NumSets;
}

Expected<size_t> GraphSnapshot::loadV2(FlatView Section, ItemSetGraph &Graph,
                                       const std::vector<SymbolId> &SymbolMap,
                                       const std::vector<RuleId> &RuleMap) {
  const Grammar &G = Graph.G;
  Expected<GrphHeader> Header = readGrphHeader(Section);
  if (!Header)
    return Header.error();
  const GrphHeader &H = *Header;
  if (H.NumSets == 0)
    return Error("snapshot graph has no start set");
  if (H.StartIdx >= H.NumSets)
    return Error("start set index out of range");
  // The flat record arrays must fit the section before any per-set work
  // (overflow-safe: offset checked before the product is subtracted).
  // This is what lets the decode loops below read through raw pointers,
  // and it also bounds every allocation.
  auto PoolFits = [&](uint64_t Off, uint64_t Stride, uint64_t Count) {
    return Off <= Section.size() && Stride * Count <= Section.size() - Off;
  };
  if (!PoolFits(H.OffSetRecs, 48, H.NumSets) ||
      !PoolFits(H.OffKernelItems, 8, H.NumKernelItems) ||
      !PoolFits(H.OffTransitions, 16, H.NumTransitions) ||
      !PoolFits(H.OffOldTransitions, 16, H.NumOldTransitions) ||
      !PoolFits(H.OffActionLabels, 4, H.NumTransitions) ||
      !PoolFits(H.OffReductions, 4, H.NumReductions) ||
      !PoolFits(H.OffAcceptRules, 4, H.NumAcceptRules))
    return Error("flat section: array out of bounds");

  Graph.Adopted.clear();
  Graph.Pool.clear();
  Graph.ByKernel.clear();
  Graph.KernelIndexReady = true;
  Graph.BorrowedStorage.reset();
  Graph.Start = nullptr;
  Graph.storeStats(ItemSetGraphStats());

  Graph.ByKernel.reserve(H.NumSets);
  for (uint32_t I = 0; I < H.NumSets; ++I) {
    Graph.Pool.emplace_back();
    Graph.Pool.back().Id = I;
  }

  // Field-by-field reads (endian-safe on every host): the decode cost the
  // zero-copy path avoids, paid here only for stale snapshots that need
  // their ids remapped anyway. The loops read through raw LE loads — the
  // up-front pool bounds above cover every access.
  const uint8_t *Base = Section.data();
  auto ReadTransitions = [&](uint64_t PoolOff, uint32_t Off, uint32_t Len,
                             std::vector<ItemSet::Transition> &Out)
      -> const char * {
    Out.reserve(Len);
    const uint8_t *Rec = Base + PoolOff + uint64_t{16} * Off;
    for (uint32_t J = 0; J < Len; ++J, Rec += 16) {
      uint32_t Label = loadLe32(Rec);
      uint64_t Target = loadLe64(Rec + 8);
      if (Label >= SymbolMap.size())
        return "transition label references an unknown symbol";
      if (Target >= H.NumSets)
        return "transition target out of range";
      Out.push_back(ItemSet::Transition{
          SymbolMap[Label], &Graph.Pool[static_cast<size_t>(Target)]});
    }
    sortTransitionsByLabel(Out);
    return nullptr;
  };
  auto ReadRules = [&](uint64_t PoolOff, uint32_t Off, uint32_t Len,
                       std::vector<RuleId> &Out) -> const char * {
    Out.reserve(Len);
    const uint8_t *Rec = Base + PoolOff + uint64_t{4} * Off;
    for (uint32_t J = 0; J < Len; ++J, Rec += 4) {
      uint32_t Rule = loadLe32(Rec);
      if (Rule >= RuleMap.size())
        return "reduction references an unknown rule";
      Out.push_back(RuleMap[Rule]);
    }
    return nullptr;
  };

  for (uint32_t I = 0; I < H.NumSets; ++I) {
    const uint8_t *RecBytes = Base + H.OffSetRecs + uint64_t{48} * I;
    SetRec R;
    uint32_t Word0 = loadLe32(RecBytes);
    R.State = static_cast<uint8_t>(Word0 & 0xFF);
    R.Accepting = static_cast<uint8_t>((Word0 >> 8) & 0xFF);
    R.Reserved = 0;
    uint32_t *Fields[] = {&R.KernelOff, &R.KernelLen, &R.TransOff,
                          &R.TransLen,  &R.OldOff,    &R.OldLen,
                          &R.RedOff,    &R.RedLen,    &R.AccOff,
                          &R.AccLen};
    for (size_t F = 0; F < 10; ++F)
      *Fields[F] = loadLe32(RecBytes + 4 * (F + 1));
    R.Reserved2 = 0;
    Expected<uint8_t> Shape = checkSetRecShape(R, H);
    if (!Shape)
      return Shape.error();

    ItemSet &State = Graph.Pool[I];
    State.State = static_cast<ItemSetState>(R.State);
    State.Accepting = R.Accepting == 1;

    State.K.reserve(R.KernelLen);
    const uint8_t *ItemBytes =
        Base + H.OffKernelItems + uint64_t{8} * R.KernelOff;
    for (uint32_t J = 0; J < R.KernelLen; ++J, ItemBytes += 8) {
      uint32_t Rule = loadLe32(ItemBytes);
      uint32_t Dot = loadLe32(ItemBytes + 4);
      if (Rule >= RuleMap.size())
        return Error("kernel item references an unknown rule");
      RuleId Mapped = RuleMap[Rule];
      if (Dot > G.rule(Mapped).Rhs.size())
        return Error("kernel item dot beyond its rule");
      State.K.push_back(Item{Mapped, Dot});
    }
    canonicalizeKernel(State.K);
    std::vector<ItemSet *> &Bucket = Graph.ByKernel[hashKernel(State.K)];
    for (const ItemSet *Other : Bucket)
      if (Other->K == State.K)
        return Error("duplicate kernel in snapshot");
    Bucket.push_back(&State);

    if (const char *Msg = ReadTransitions(H.OffTransitions, R.TransOff,
                                          R.TransLen, State.Transitions))
      return Error(Msg);
    if (const char *Msg = ReadTransitions(H.OffOldTransitions, R.OldOff,
                                          R.OldLen, State.OldTransitions))
      return Error(Msg);
    if (const char *Msg =
            ReadRules(H.OffReductions, R.RedOff, R.RedLen, State.Reductions))
      return Error(Msg);
    if (const char *Msg =
            ReadRules(H.OffAcceptRules, R.AccOff, R.AccLen, State.AcceptRules))
      return Error(Msg);
    if (State.State == ItemSetState::Complete)
      State.buildActionIndex();
  }

  Graph.Start = &Graph.Pool[H.StartIdx];
  Graph.Start->RefCount = 1;
  for (ItemSet &State : Graph.Pool) {
    for (const ItemSet::Transition &T : State.Transitions)
      ++T.Target->RefCount;
    for (const ItemSet::Transition &T : State.OldTransitions)
      ++T.Target->RefCount;
  }
  for (const ItemSet &State : Graph.Pool)
    if (State.RefCount == 0)
      return Error("orphaned set in snapshot");

  ItemSetGraphStats Loaded;
  Loaded.Expansions = H.Stats[0];
  Loaded.ReExpansions = H.Stats[1];
  Loaded.ClosureItems = H.Stats[2];
  Loaded.DirtyMarks = H.Stats[3];
  Loaded.Collected = H.Stats[4];
  Loaded.GotoCalls = H.Stats[5];
  Graph.storeStats(Loaded);
  return H.NumSets;
}

bool GraphSnapshot::hostCanAdoptV2() { return HostCanAdoptV2; }

void GraphSnapshot::reset(ItemSetGraph &Graph) {
  Graph.Adopted.clear();
  Graph.Pool.clear();
  Graph.ByKernel.clear();
  Graph.KernelIndexReady = true;
  Graph.BorrowedStorage.reset();
  Graph.storeStats(ItemSetGraphStats());
  Graph.Start = Graph.makeItemSet(Graph.startKernel());
  Graph.Start->RefCount = 1;
}
