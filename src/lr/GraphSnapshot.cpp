//===- lr/GraphSnapshot.cpp - Item-set graph persistence ------------------===//

#include "lr/GraphSnapshot.h"

#include <algorithm>
#include <cassert>

using namespace ipg;

namespace {

/// On-disk lifecycle codes; Dead is never serialized.
enum : uint8_t { StateInitial = 0, StateComplete = 1, StateDirty = 2 };

uint8_t stateCode(ItemSetState State) {
  switch (State) {
  case ItemSetState::Initial:
    return StateInitial;
  case ItemSetState::Complete:
    return StateComplete;
  case ItemSetState::Dirty:
    return StateDirty;
  case ItemSetState::Dead:
    break;
  }
  assert(false && "serializing a dead set of items");
  return StateInitial;
}

} // namespace

void GraphSnapshot::save(const ItemSetGraph &Graph, ByteWriter &Writer) {
  // Dense indices for the live sets, in creation order: the serialized ids
  // are a compaction of the pool, so a graph that went through garbage
  // collection still snapshots into a gap-free, deterministic form.
  std::vector<uint32_t> DenseIdx(Graph.Pool.size(), 0);
  uint32_t NumLive = 0;
  for (const ItemSet &State : Graph.Pool)
    if (!State.isDead())
      DenseIdx[State.Id] = NumLive++;

  Writer.writeVarint(NumLive);
  Writer.writeVarint(DenseIdx[Graph.Start->Id]);

  auto WriteTransitions =
      [&](const std::vector<ItemSet::Transition> &Transitions) {
        Writer.writeVarint(Transitions.size());
        for (const ItemSet::Transition &T : Transitions) {
          assert(!T.Target->isDead() && "live transition to a dead set");
          Writer.writeVarint(T.Label);
          Writer.writeVarint(DenseIdx[T.Target->Id]);
        }
      };
  auto WriteRules = [&](const std::vector<RuleId> &Rules) {
    Writer.writeVarint(Rules.size());
    for (RuleId Rule : Rules)
      Writer.writeVarint(Rule);
  };

  for (const ItemSet &State : Graph.Pool) {
    if (State.isDead())
      continue;
    Writer.writeU8(stateCode(State.State));
    Writer.writeU8(State.Accepting ? 1 : 0);
    Writer.writeVarint(State.K.size());
    for (const Item &I : State.K) {
      Writer.writeVarint(I.Rule);
      Writer.writeVarint(I.Dot);
    }
    WriteTransitions(State.Transitions);
    WriteRules(State.Reductions);
    WriteRules(State.AcceptRules);
    WriteTransitions(State.OldTransitions);
  }

  // Reference counts are not serialized: they are derivable (one per
  // incoming transition, old or new, plus the start set's root reference)
  // and load() re-derives them, so a snapshot cannot carry a skewed count.
  Writer.writeVarint(Graph.Stats.Expansions);
  Writer.writeVarint(Graph.Stats.ReExpansions);
  Writer.writeVarint(Graph.Stats.ClosureItems);
  Writer.writeVarint(Graph.Stats.DirtyMarks);
  Writer.writeVarint(Graph.Stats.Collected);
  Writer.writeVarint(Graph.Stats.GotoCalls);
}

Expected<size_t> GraphSnapshot::load(ByteReader &Reader, ItemSetGraph &Graph,
                                     const std::vector<SymbolId> &SymbolMap,
                                     const std::vector<RuleId> &RuleMap) {
  const Grammar &G = Graph.G;
  Graph.Pool.clear();
  Graph.ByKernel.clear();
  Graph.Start = nullptr;
  Graph.Stats = ItemSetGraphStats();

  Expected<uint64_t> NumSets = Reader.readVarint();
  if (!NumSets)
    return NumSets.error();
  if (*NumSets == 0)
    return Error("snapshot graph has no start set");
  // Each set costs at least 7 bytes; a count above the byte budget is
  // corrupt, and rejecting it bounds the pool allocation.
  if (*NumSets > Reader.remaining())
    return Error("set count exceeds section size");
  Expected<uint64_t> StartIdx = Reader.readVarint();
  if (!StartIdx)
    return StartIdx.error();
  if (*StartIdx >= *NumSets)
    return Error("start set index out of range");

  Graph.ByKernel.reserve(static_cast<size_t>(*NumSets));
  for (uint64_t I = 0; I < *NumSets; ++I) {
    Graph.Pool.emplace_back();
    Graph.Pool.back().Id = static_cast<uint32_t>(I);
  }

  auto ReadTransitions = [&](std::vector<ItemSet::Transition> &Transitions,
                             bool Allowed) -> Expected<uint8_t> {
    Expected<uint64_t> Count = Reader.readVarint();
    if (!Count)
      return Count.error();
    if (*Count != 0 && !Allowed)
      return Error("transitions on a set whose state forbids them");
    if (*Count > Reader.remaining())
      return Error("transition count exceeds section size");
    Transitions.reserve(static_cast<size_t>(*Count));
    for (uint64_t I = 0; I < *Count; ++I) {
      Expected<uint64_t> Label = Reader.readVarint();
      if (!Label)
        return Label.error();
      if (*Label >= SymbolMap.size())
        return Error("transition label references an unknown symbol");
      Expected<uint64_t> Target = Reader.readVarint();
      if (!Target)
        return Target.error();
      if (*Target >= *NumSets)
        return Error("transition target out of range");
      Transitions.push_back(ItemSet::Transition{
          SymbolMap[static_cast<size_t>(*Label)],
          &Graph.Pool[static_cast<size_t>(*Target)]});
    }
    sortTransitionsByLabel(Transitions);
    return uint8_t{0};
  };
  auto ReadRules = [&](std::vector<RuleId> &Rules,
                       bool Allowed) -> Expected<uint8_t> {
    Expected<uint64_t> Count = Reader.readVarint();
    if (!Count)
      return Count.error();
    if (*Count != 0 && !Allowed)
      return Error("reductions on a set whose state forbids them");
    if (*Count > Reader.remaining())
      return Error("rule count exceeds section size");
    Rules.reserve(static_cast<size_t>(*Count));
    for (uint64_t I = 0; I < *Count; ++I) {
      Expected<uint64_t> Rule = Reader.readVarint();
      if (!Rule)
        return Rule.error();
      if (*Rule >= RuleMap.size())
        return Error("reduction references an unknown rule");
      Rules.push_back(RuleMap[static_cast<size_t>(*Rule)]);
    }
    return uint8_t{0};
  };

  for (uint64_t I = 0; I < *NumSets; ++I) {
    ItemSet &State = Graph.Pool[static_cast<size_t>(I)];
    Expected<uint8_t> Code = Reader.readU8();
    if (!Code)
      return Code.error();
    switch (*Code) {
    case StateInitial:
      State.State = ItemSetState::Initial;
      break;
    case StateComplete:
      State.State = ItemSetState::Complete;
      break;
    case StateDirty:
      State.State = ItemSetState::Dirty;
      break;
    default:
      return Error("invalid item-set state code");
    }
    bool Complete = State.State == ItemSetState::Complete;

    Expected<uint8_t> Accepting = Reader.readU8();
    if (!Accepting)
      return Accepting.error();
    if (*Accepting > 1 || (*Accepting == 1 && !Complete))
      return Error("invalid accepting flag");
    State.Accepting = *Accepting == 1;

    Expected<uint64_t> KernelSize = Reader.readVarint();
    if (!KernelSize)
      return KernelSize.error();
    if (*KernelSize > Reader.remaining())
      return Error("kernel size exceeds section size");
    State.K.reserve(static_cast<size_t>(*KernelSize));
    for (uint64_t J = 0; J < *KernelSize; ++J) {
      Expected<uint64_t> Rule = Reader.readVarint();
      if (!Rule)
        return Rule.error();
      if (*Rule >= RuleMap.size())
        return Error("kernel item references an unknown rule");
      RuleId Mapped = RuleMap[static_cast<size_t>(*Rule)];
      Expected<uint64_t> Dot = Reader.readVarint();
      if (!Dot)
        return Dot.error();
      if (*Dot > G.rule(Mapped).Rhs.size())
        return Error("kernel item dot beyond its rule");
      State.K.push_back(Item{Mapped, static_cast<uint32_t>(*Dot)});
    }
    // Remapped rule ids may order differently; re-establish canonical form
    // before hashing into the kernel index.
    canonicalizeKernel(State.K);
    std::vector<ItemSet *> &Bucket = Graph.ByKernel[hashKernel(State.K)];
    for (const ItemSet *Other : Bucket)
      if (Other->K == State.K)
        return Error("duplicate kernel in snapshot");
    Bucket.push_back(&State);

    Expected<uint8_t> Ok = ReadTransitions(State.Transitions, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadRules(State.Reductions, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadRules(State.AcceptRules, Complete);
    if (!Ok)
      return Ok.error();
    Ok = ReadTransitions(State.OldTransitions,
                         State.State == ItemSetState::Dirty);
    if (!Ok)
      return Ok.error();

    // The ACTION/GOTO index is derived, never serialized: rebuild it for
    // adopted Complete sets so queries against a warm-started graph run
    // the same allocation-free path as against a freshly expanded one.
    if (Complete)
      State.buildActionIndex();
  }

  Graph.Start = &Graph.Pool[static_cast<size_t>(*StartIdx)];

  // Re-derive the reference counts from the incoming edges (DECR-REFCOUNT
  // bookkeeping of §6.2): one per transition — retained pre-modification
  // ones included — plus the start set's root pin.
  Graph.Start->RefCount = 1;
  for (ItemSet &State : Graph.Pool) {
    for (const ItemSet::Transition &T : State.Transitions)
      ++T.Target->RefCount;
    for (const ItemSet::Transition &T : State.OldTransitions)
      ++T.Target->RefCount;
  }
  for (const ItemSet &State : Graph.Pool)
    if (State.RefCount == 0)
      return Error("orphaned set in snapshot");

  uint64_t *Counters[] = {&Graph.Stats.Expansions,   &Graph.Stats.ReExpansions,
                          &Graph.Stats.ClosureItems, &Graph.Stats.DirtyMarks,
                          &Graph.Stats.Collected,    &Graph.Stats.GotoCalls};
  for (uint64_t *Counter : Counters) {
    Expected<uint64_t> Value = Reader.readVarint();
    if (!Value)
      return Value.error();
    *Counter = *Value;
  }
  if (!Reader.atEnd())
    return Error("trailing bytes after graph snapshot");
  return static_cast<size_t>(*NumSets);
}

void GraphSnapshot::reset(ItemSetGraph &Graph) {
  Graph.Pool.clear();
  Graph.ByKernel.clear();
  Graph.Stats = ItemSetGraphStats();
  Graph.Start = Graph.makeItemSet(Graph.startKernel());
  Graph.Start->RefCount = 1;
}
