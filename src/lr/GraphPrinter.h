//===- lr/GraphPrinter.h - Render graphs of item sets -----------*- C++ -*-===//
///
/// \file
/// Text rendering of item sets and graphs in the style of the paper's
/// figures (kernel items with a • dot, labeled transitions, underlined —
/// here annotated — reductions, and the ○/● initial/complete markers).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_GRAPHPRINTER_H
#define IPG_LR_GRAPHPRINTER_H

#include "lr/ItemSetGraph.h"

#include <string>

namespace ipg {

/// Renders one set of items as a multi-line block. Takes the owning graph
/// (not just the grammar): the set's kernel and record spans live in the
/// graph's pools.
std::string itemSetToString(const ItemSet &State, const ItemSetGraph &Graph);

/// Renders every live set of items in creation order.
std::string graphToString(const ItemSetGraph &Graph);

} // namespace ipg

#endif // IPG_LR_GRAPHPRINTER_H
