//===- lr/ItemSetGraph.cpp - The graph of item sets -----------------------===//

#include "lr/ItemSetGraph.h"

#include "support/Bitset.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace ipg;

namespace {

/// Process-wide mirrors of the interesting graph events (catalog in
/// docs/OBSERVABILITY.md). The per-graph ItemSetGraphStats counters are
/// part of the persisted snapshot format and cannot grow fields without a
/// format break; everything new lands here instead, aggregated across all
/// graphs in the process. References are resolved once (registration
/// locks); a bump afterwards is the usual sharded relaxed add.
struct GraphMetrics {
  MetricsRegistry &R = MetricsRegistry::process();
  MetricCounter &Expansions = R.counter("ipg.expand.total");
  MetricCounter &ReExpansions = R.counter("ipg.expand.reexpansions");
  MetricCounter &ClosureItems = R.counter("ipg.expand.closure_items");
  /// Shared-mode EXPAND races lost: the loser blocked on the stripe and
  /// adopted the winner's published set (stripe-contention observable).
  MetricCounter &RaceAdoptions = R.counter("ipg.expand.race_adoptions");
  MetricCounter &DirtyMarks = R.counter("ipg.modify.dirty_marks");
  MetricCounter &Edits = R.counter("ipg.modify.edits");
  MetricCounter &Collected = R.counter("ipg.gc.collected");
  /// Borrowed (mmap-backed) sets copied into owned storage, the
  /// copy-on-MODIFY cost of the zero-copy snapshot load.
  MetricCounter &Materialized = R.counter("ipg.snapshot.materialize_owned");
  LatencyHistogram &ModifyLatency = R.histogram("ipg.modify.repair");
  LatencyHistogram &GcLatency = R.histogram("ipg.gc.sweep");

  static GraphMetrics &get() {
    static GraphMetrics M;
    return M;
  }
};

} // namespace

/// Reusable scratch for the EXPAND hot path (§4/§5): CLOSURE's per-call
/// set rebuilds become clears of preallocated Bitsets instead of fresh
/// heap allocations, and the symbol-indexed partition scratch makes the
/// transition grouping O(1) per item. One instance per *thread* (not per
/// graph): const CLOSURE queries mutate no graph state, so concurrent
/// expanders of a shared graph never contend — and the memoization win
/// survives, per thread.
struct ItemSetGraph::ExpandScratch {
  Bitset Predicted;                 ///< Per-closure predicted-rule dedup.
  Bitset MergedNt;                  ///< Per-closure nonterminal dedup.
  std::vector<uint32_t> GroupIndex; ///< expand() partition (symbol->slot).
  std::vector<Item> Closure;        ///< expand()'s closure buffer.
  /// expand()'s partition groups. Slots (and their kernels' heap buffers)
  /// are reused across expansions; NumGroups entries are live per call.
  std::vector<std::pair<SymbolId, Kernel>> Groups;

  static ExpandScratch &get() {
    static thread_local ExpandScratch S;
    return S;
  }
};

ItemSetGraph::ItemSetGraph(Grammar &G) : G(G) {
  Start = makeItemSet(startKernel());
  // The root reference: the start set is pinned for the graph's lifetime.
  Start->RefCount = 1;
}

Kernel ItemSetGraph::startKernel() const {
  Kernel K;
  for (RuleId Id : G.rulesFor(G.startSymbol()))
    K.push_back(Item{Id, 0});
  canonicalizeKernel(K);
  return K;
}

void ItemSetGraph::ensureKernelIndex() {
  // Once-flag publication: exclusive-mode callers may reach this without
  // any lock, so the flag is checked with an acquire load and only set
  // (release) after the buckets are fully built. Shared-mode callers
  // additionally hold StructureMutex, which serializes the build itself.
  if (KernelIndexReady.load(std::memory_order_acquire))
    return;
  ByKernel.reserve(numSets());
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (!State.isDead())
      ByKernel[hashKernel(State.kernel())].push_back(&State);
  }
  KernelIndexReady.store(true, std::memory_order_release);
}

ItemSet *ItemSetGraph::makeItemSet(Kernel K) {
  // Caller holds StructureMutex in shared mode (expansion's target loop).
  ensureKernelIndex();
  Pool.emplace_back();
  ItemSet *State = &Pool.back();
  State->Id = static_cast<uint32_t>(numSets() - 1);
  State->K = std::move(K);
  ByKernel[hashKernel(State->K)].push_back(State);
  return State;
}

ItemSet *ItemSetGraph::findByKernelLocked(KernelView K) {
  ensureKernelIndex();
  auto It = ByKernel.find(hashKernel(K));
  if (It == ByKernel.end())
    return nullptr;
  for (ItemSet *State : It->second)
    if (kernelEquals(State->kernel(), K))
      return State;
  return nullptr;
}

ItemSet *ItemSetGraph::findByKernel(KernelView K) {
  auto Lock = structureLock();
  return findByKernelLocked(K);
}

void ItemSetGraph::unlinkFromIndex(ItemSet *State) {
  // With a deferred index there is nothing to unlink: when the index is
  // eventually built, it only picks up live sets.
  if (!KernelIndexReady.load(std::memory_order_acquire))
    return;
  auto It = ByKernel.find(hashKernel(State->kernel()));
  if (It == ByKernel.end())
    return;
  std::vector<ItemSet *> &Bucket = It->second;
  auto Pos = std::find(Bucket.begin(), Bucket.end(), State);
  if (Pos != Bucket.end())
    Bucket.erase(Pos);
}

void ItemSetGraph::closureInto(KernelView K, ExpandScratch &S,
                               std::vector<Item> &Out) const {
  // CLOSURE (§4): extend the kernel with B ::= •γ for every B that occurs
  // immediately after a dot, transitively. Predicted items all have dot 0,
  // so presence is tracked per rule. Two Bitset-backed scratch sets make
  // the rebuild cheap: S.Predicted replaces the per-call
  // std::vector<bool> allocation, and S.MergedNt lets the walk skip a
  // nonterminal's rule list after its first occurrence instead of
  // re-scanning it for every later item with the same symbol after the
  // dot. \p Out keeps its heap buffer across calls. Reads only the
  // (frozen-during-parsing) grammar — never graph state.
  Out.clear();
  Out.insert(Out.end(), K.begin(), K.end());
  S.Predicted.resize(G.numInternedRules());
  S.Predicted.clear();
  S.MergedNt.resize(G.symbols().size());
  S.MergedNt.clear();
  for (const Item &I : K)
    if (I.Dot == 0)
      S.Predicted.set(I.Rule);

  for (size_t Next = 0; Next < Out.size(); ++Next) {
    SymbolId After = symbolAfterDot(Out[Next], G);
    if (After == InvalidSymbol || G.symbols().isTerminal(After))
      continue;
    if (!S.MergedNt.set(After))
      continue; // This nonterminal's rules were already merged.
    for (RuleId Id : G.rulesFor(After))
      if (S.Predicted.set(Id))
        Out.push_back(Item{Id, 0});
  }
}

std::vector<Item> ItemSetGraph::closure(KernelView K) const {
  std::vector<Item> Closure;
  closureInto(K, ExpandScratch::get(), Closure);
  return Closure;
}

void ItemSetGraph::addTransition(ItemSet *From, SymbolId Label, ItemSet *To) {
  // Caller holds StructureMutex in shared mode (the RefCount bump).
  From->Transitions.push_back(ItemSet::Transition{Label, To});
  ++To->RefCount;
}

void ItemSetGraph::expand(ItemSet *State) {
  // Shared mode: the expansion gate (held shared) orders this expansion
  // against COW-fork freezes, and the set's stripe makes racing
  // expansions of the same set mutually exclusive — the loser blocks on
  // the stripe, re-checks, and adopts the winner's published set.
  IPG_TRACE_SPAN(Sp, "lr.expand");
  IPG_TRACE_SPAN_ARG(Sp, State->id());
  std::shared_lock<std::shared_mutex> Gate;
  std::unique_lock<std::mutex> Stripe;
  if (Concurrent) {
    Gate = std::shared_lock<std::shared_mutex>(ExpandGate);
    Stripe = std::unique_lock<std::mutex>(ExpandStripes.forId(State->id()));
    if (State->stateAcquire() == ItemSetState::Complete) {
      // Lost the publication race; adopt the winner's set.
      IPG_TRACE_SPAN_RENAME(Sp, "lr.expand.adopted");
      GraphMetrics::get().RaceAdoptions.bump();
      return;
    }
  }
  assert(!State->isDead() && "expanding a collected set of items");
  ExpandScratch &S = ExpandScratch::get();

  bool WasDirty;
  {
    // EXPAND mutates the set wholesale; an adopted set first copies its
    // borrowed records into owned storage (copy-on-MODIFY). That moves
    // the kernel bytes concurrent findByKernel scans read, so it happens
    // under the structure lock like every other kernel/index access.
    auto Lock = structureLock();
    if (State->isBorrowed())
      GraphMetrics::get().Materialized.bump();
    State->materializeOwned();
    WasDirty = State->state() == ItemSetState::Dirty;
  }
  Stats.bump(ScExpansions);
  GraphMetrics::get().Expansions.bump();
  if (WasDirty) {
    Stats.bump(ScReExpansions);
    GraphMetrics::get().ReExpansions.bump();
    // The §6 repair observable: one span per state actually re-expanded
    // (warm_start cross-checks this count against the stats counter).
    IPG_TRACE_SPAN_RENAME(Sp, "lr.reexpand");
  }

  closureInto(State->K, S, S.Closure);
  const std::vector<Item> &Closure = S.Closure;
  Stats.bump(ScClosureItems, Closure.size());
  GraphMetrics::get().ClosureItems.bump(Closure.size());

  State->Transitions.clear();
  State->Reductions.clear();
  State->AcceptRules.clear();
  State->Accepting = false;

  // Partition the closure by the symbol after the dot (first-seen order —
  // this reproduces the state numbering of the paper's figures). The
  // symbol-indexed scratch turns the per-item group lookup into O(1), and
  // the group slots (including their kernels' heap buffers) are reused
  // across this thread's expansions.
  size_t NumGroups = 0;
  if (S.GroupIndex.size() < G.symbols().size())
    S.GroupIndex.resize(G.symbols().size(), 0);
  for (const Item &I : Closure) {
    SymbolId After = symbolAfterDot(I, G);
    if (After == InvalidSymbol) {
      // Dot at the end: accept for START, a reduction otherwise.
      if (G.rule(I.Rule).Lhs == G.startSymbol()) {
        State->Accepting = true;
        if (std::find(State->AcceptRules.begin(), State->AcceptRules.end(),
                      I.Rule) == State->AcceptRules.end())
          State->AcceptRules.push_back(I.Rule);
      } else if (std::find(State->Reductions.begin(), State->Reductions.end(),
                           I.Rule) == State->Reductions.end()) {
        State->Reductions.push_back(I.Rule);
      }
      continue;
    }
    uint32_t &Slot = S.GroupIndex[After];
    if (Slot == 0) {
      if (NumGroups == S.Groups.size())
        S.Groups.emplace_back();
      S.Groups[NumGroups].first = After;
      S.Groups[NumGroups].second.clear();
      ++NumGroups;
      Slot = static_cast<uint32_t>(NumGroups);
    }
    S.Groups[Slot - 1].second.push_back(Item{I.Rule, I.Dot + 1});
  }
  for (size_t I = 0; I < NumGroups; ++I)
    S.GroupIndex[S.Groups[I].first] = 0; // Reset touched slots only.

  {
    // One structure-lock hold covers the whole target-resolution loop:
    // the lookups, the creations, and the RefCount increments they imply.
    // Holding it across the loop (not per group) closes the resurrection
    // race — a target this expansion found cannot be killed by a
    // concurrent RE-EXPAND's DECR-REFCOUNT before its count is bumped,
    // because that decrement serializes behind this hold.
    auto Lock = structureLock();
    for (size_t I = 0; I < NumGroups; ++I) {
      auto &[Label, NewKernel] = S.Groups[I];
      canonicalizeKernel(NewKernel);
      ItemSet *Target = findByKernelLocked(NewKernel);
      if (Target == nullptr)
        Target = makeItemSet(std::move(NewKernel));
      addTransition(State, Label, Target);
    }
  }
  sortTransitionsByLabel(State->Transitions);
  State->buildActionIndex();
  // Publication: everything written above happens-before any reader that
  // observes Complete through stateAcquire().
  State->publishComplete();

  // RE-EXPAND (§6.2): only now release the references the dirty set held,
  // so targets reused by the new expansion never transiently hit zero.
  // Targets reachable only through these old records were never visible
  // to readers (a Dirty set answers no queries), so collecting them under
  // the structure lock cannot invalidate any session's stack.
  if (WasDirty) {
    std::vector<ItemSet::Transition> Old = std::move(State->OldTransitions);
    State->OldTransitions.clear();
    auto Lock = structureLock();
    for (const ItemSet::Transition &T : Old)
      decrRefCount(T.Target);
  }
}

void ItemSetGraph::decrRefCount(ItemSet *State) {
  // Iterative DECR-REFCOUNT (§6.2): when a count reaches zero the set is
  // removed and the references it holds are released in turn. Caller
  // holds StructureMutex in shared mode — the whole decrement-and-kill is
  // atomic with respect to concurrent expansions re-linking the set.
  std::vector<ItemSet *> Worklist{State};
  while (!Worklist.empty()) {
    ItemSet *Current = Worklist.back();
    Worklist.pop_back();
    assert(!Current->isDead() && "releasing a reference to a dead set");
    assert(Current->RefCount > 0 && "refcount underflow");
    if (--Current->RefCount != 0)
      continue;
    unlinkFromIndex(Current);
    ArrayView<ItemSet::Transition> Held =
        Current->state() == ItemSetState::Dirty ? Current->oldTransitions()
                                                : Current->transitions();
    for (const ItemSet::Transition &T : Held)
      Worklist.push_back(T.Target);
    Current->storeState(ItemSetState::Dead, std::memory_order_relaxed);
    Current->releaseStorage();
    Stats.bump(ScCollected);
    GraphMetrics::get().Collected.bump();
  }
}

void ItemSetGraph::markDirty(ItemSet *State) {
  // Initial sets need no invalidation; Dirty sets already carry their
  // pre-modification history.
  if (State->state() != ItemSetState::Complete)
    return;
  // Copy-on-MODIFY: an adopted set materializes its borrowed records
  // before they are rearranged, so §6 repair works on mapped graphs.
  if (State->isBorrowed())
    GraphMetrics::get().Materialized.bump();
  State->materializeOwned();
  State->OldTransitions = std::move(State->Transitions);
  State->Transitions.clear();
  State->Reductions.clear();
  State->AcceptRules.clear();
  State->clearActionIndex();
  State->Accepting = false;
  State->storeState(ItemSetState::Dirty, std::memory_order_relaxed);
  Stats.bump(ScDirtyMarks);
  GraphMetrics::get().DirtyMarks.bump();
}

void ItemSetGraph::modify(SymbolId Lhs) {
  // MODIFY (§6.1). The grammar has already been updated by the caller.
  // Never a shared-mode operation: a server MODIFY edits a private COW
  // fork and publishes it as a new epoch (server/GrammarServer.h).
  assert(!Concurrent &&
         "MODIFY on a published shared graph — fork a new epoch instead");
  // The paper's headline number, per edit: how long the dirty-marking
  // probe takes and how many sets it invalidated (re-expansion happens
  // lazily later, counted by the lr.reexpand spans).
  IPG_TRACE_SPAN(Sp, "lr.modify");
  ScopedLatency Lat(GraphMetrics::get().ModifyLatency);
  GraphMetrics::get().Edits.bump();
  uint64_t MarksBefore = Stats.total(ScDirtyMarks);
  (void)MarksBefore;
  if (Lhs == G.startSymbol()) {
    // Only the start set can hold START ::= •β in its kernel.
    ensureKernelIndex();
    Start->materializeOwned();
    unlinkFromIndex(Start);
    Start->K = startKernel();
    ByKernel[hashKernel(Start->K)].push_back(Start);
    markDirty(Start);
    IPG_TRACE_SPAN_ARG(Sp, Stats.total(ScDirtyMarks) - MarksBefore);
    return;
  }
  // Recognition of a rule for Lhs starts exactly in the complete sets with
  // a transition labeled Lhs — their closures contained • before an Lhs.
  // The action index turns the per-state membership test into a binary
  // search. The two storage pools are walked directly (not through the
  // setAt branch): this probe loop dominates ADD/DELETE-RULE latency.
  auto Probe = [&](ItemSet &State) {
    if (State.state() == ItemSetState::Complete &&
        State.transitionTarget(Lhs) != nullptr)
      markDirty(&State);
  };
  for (ItemSet &State : Adopted)
    Probe(State);
  for (ItemSet &State : Pool)
    Probe(State);
  IPG_TRACE_SPAN_ARG(Sp, Stats.total(ScDirtyMarks) - MarksBefore);
}

bool ItemSetGraph::addRule(SymbolId Lhs, std::vector<SymbolId> Rhs) {
  auto [Id, Changed] = G.addRule(Lhs, std::move(Rhs));
  (void)Id;
  if (!Changed)
    return false;
  modify(Lhs);
  return true;
}

bool ItemSetGraph::removeRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs) {
  auto [Id, Changed] = G.removeRule(Lhs, Rhs);
  (void)Id;
  if (!Changed)
    return false;
  modify(Lhs);
  return true;
}

void ItemSetGraph::ensureComplete(ItemSet *State) {
  // Lock-free fast path — the whole reader-side contract is this one
  // acquire load: within an epoch a Complete set never leaves that state,
  // so observing Complete is a stable fact and the set's records are
  // visible (publication pairing in lr/ItemSet.h).
  if (State->stateAcquire() == ItemSetState::Complete)
    return;
  assert(!State->isDead() && "querying a collected set of items");
  expand(State);
}

LrActionsView ItemSetGraph::actionsView(ItemSet *State, SymbolId Symbol) {
  assert(G.symbols().isTerminal(Symbol) &&
         "ACTION is queried with terminals only");
  ensureComplete(State);
  // LR(0): reductions apply regardless of the lookahead symbol; the shift
  // target is a binary search over the action index built at EXPAND time.
  ArrayView<RuleId> Reduce = State->reductions();
  return LrActionsView(Reduce.begin(), Reduce.end(),
                       State->transitionTarget(Symbol),
                       State->Accepting && Symbol == G.endMarker());
}

std::vector<LrAction> ItemSetGraph::actions(ItemSet *State, SymbolId Symbol) {
  LrActionsView View = actionsView(State, Symbol);
  std::vector<LrAction> Result;
  Result.reserve(View.size());
  View.forEach([&](const LrAction &A) { Result.push_back(A); });
  return Result;
}

ItemSet *ItemSetGraph::gotoState(ItemSet *State, SymbolId Symbol) {
  Stats.bump(ScGotoCalls);
  // Appendix A: the parsing algorithms only ever call GOTO on sets that
  // have already been completed.
  assert(State->isComplete() && "GOTO called on a non-complete set of items");
  if (ItemSet *Target = State->transitionTarget(Symbol))
    return Target;
  // An absent transition means the graph is inconsistent with the grammar
  // (or the caller broke the Appendix A discipline). Fail identically in
  // every build type: under NDEBUG a fall-through here used to hand the
  // caller a null state to dereference.
  std::fprintf(stderr,
               "ipg fatal: GOTO(state %u, symbol %u '%s'): no transition "
               "(graph inconsistent)\n",
               State->id(), Symbol,
               Symbol < G.symbols().size() ? G.symbols().name(Symbol).c_str()
                                           : "<uninterned>");
  std::abort();
}

size_t ItemSetGraph::generateAll() {
  // A single index pass suffices: EXPAND only appends new Initial sets,
  // which the growing loop bound picks up. Exclusive-mode only: the scan
  // of numSets() cannot race concurrent growth.
  assert(!Concurrent && "generateAll on a published shared graph");
  for (size_t Index = 0; Index < numSets(); ++Index) {
    ItemSet &State = setAt(Index);
    if (State.state() == ItemSetState::Initial ||
        State.state() == ItemSetState::Dirty)
      expand(&State);
  }
  return numComplete();
}

std::vector<const ItemSet *> ItemSetGraph::liveSets() const {
  std::vector<const ItemSet *> Result;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    const ItemSet &State = setAt(I);
    if (!State.isDead())
      Result.push_back(&State);
  }
  return Result;
}

size_t ItemSetGraph::countByState(ItemSetState S) const {
  size_t Count = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I)
    Count += setAt(I).state() == S;
  return Count;
}

size_t ItemSetGraph::numLive() const {
  size_t Count = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I)
    Count += !setAt(I).isDead();
  return Count;
}

size_t ItemSetGraph::collectGarbage() {
  // Whole-graph walk; exclusive-mode only (see generateAll).
  assert(!Concurrent && "collectGarbage on a published shared graph");
  IPG_TRACE_SPAN(Sp, "lr.gc");
  ScopedLatency Lat(GraphMetrics::get().GcLatency);
  // Mark phase: reachable from the start set, following live transitions
  // and the retained pre-modification transitions of dirty sets.
  std::vector<bool> Marked(numSets(), false);
  std::vector<ItemSet *> Worklist{Start};
  Marked[Start->Id] = true;
  while (!Worklist.empty()) {
    ItemSet *State = Worklist.back();
    Worklist.pop_back();
    auto Visit = [&](ArrayView<ItemSet::Transition> Edges) {
      for (const ItemSet::Transition &T : Edges)
        if (!Marked[T.Target->Id]) {
          Marked[T.Target->Id] = true;
          Worklist.push_back(T.Target);
        }
    };
    Visit(State->transitions());
    Visit(State->oldTransitions());
  }

  // Sweep phase.
  size_t Reclaimed = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (State.isDead() || Marked[State.Id])
      continue;
    unlinkFromIndex(&State);
    State.storeState(ItemSetState::Dead, std::memory_order_relaxed);
    State.releaseStorage();
    State.RefCount = 0;
    ++Reclaimed;
    Stats.bump(ScCollected);
    GraphMetrics::get().Collected.bump();
  }
  IPG_TRACE_SPAN_ARG(Sp, Reclaimed);

  // Restore exact reference counts for the survivors.
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (!State.isDead())
      State.RefCount = 0;
  }
  Start->RefCount = 1;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (State.isDead())
      continue;
    for (const ItemSet::Transition &T : State.transitions())
      ++T.Target->RefCount;
    for (const ItemSet::Transition &T : State.oldTransitions())
      ++T.Target->RefCount;
  }
  return Reclaimed;
}
