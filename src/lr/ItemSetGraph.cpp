//===- lr/ItemSetGraph.cpp - The graph of item sets -----------------------===//

#include "lr/ItemSetGraph.h"

#include "support/Bitset.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace ipg;

namespace {

/// Process-wide mirrors of the interesting graph events (catalog in
/// docs/OBSERVABILITY.md). The per-graph ItemSetGraphStats counters are
/// part of the persisted snapshot format and cannot grow fields without a
/// format break; everything new lands here instead, aggregated across all
/// graphs in the process. References are resolved once (registration
/// locks); a bump afterwards is the usual sharded relaxed add.
struct GraphMetrics {
  MetricsRegistry &R = MetricsRegistry::process();
  MetricCounter &Expansions = R.counter("ipg.expand.total");
  MetricCounter &ReExpansions = R.counter("ipg.expand.reexpansions");
  MetricCounter &ClosureItems = R.counter("ipg.expand.closure_items");
  /// Shared-mode EXPAND races lost: the loser blocked on the stripe and
  /// adopted the winner's published set (stripe-contention observable).
  MetricCounter &RaceAdoptions = R.counter("ipg.expand.race_adoptions");
  MetricCounter &DirtyMarks = R.counter("ipg.modify.dirty_marks");
  MetricCounter &Edits = R.counter("ipg.modify.edits");
  MetricCounter &Collected = R.counter("ipg.gc.collected");
  LatencyHistogram &ModifyLatency = R.histogram("ipg.modify.repair");
  LatencyHistogram &GcLatency = R.histogram("ipg.gc.sweep");

  static GraphMetrics &get() {
    static GraphMetrics M;
    return M;
  }
};

} // namespace

/// Reusable scratch for the EXPAND hot path (§4/§5): CLOSURE's per-call
/// set rebuilds become clears of preallocated Bitsets instead of fresh
/// heap allocations, the symbol-indexed partition scratch makes the
/// transition grouping O(1) per item, and the staging vectors collect one
/// expansion's edge/rule records so they land in the graph's pools as
/// single contiguous appends. One instance per *thread* (not per graph):
/// const CLOSURE queries mutate no graph state, so concurrent expanders
/// of a shared graph never contend — and the memoization win survives,
/// per thread.
struct ItemSetGraph::ExpandScratch {
  Bitset Predicted;                 ///< Per-closure predicted-rule dedup.
  Bitset MergedNt;                  ///< Per-closure nonterminal dedup.
  std::vector<uint32_t> GroupIndex; ///< expand() partition (symbol->slot).
  std::vector<Item> Closure;        ///< expand()'s closure buffer.
  /// expand()'s partition groups. Slots (and their kernels' heap buffers)
  /// are reused across expansions; NumGroups entries are live per call.
  std::vector<std::pair<SymbolId, Kernel>> Groups;
  /// One expansion's resolved edges, staged (label, target id) and sorted
  /// by label before the paired pool appends.
  std::vector<std::pair<SymbolId, uint32_t>> StagedEdges;
  std::vector<SymbolId> StagedLabels;   ///< Split of StagedEdges: labels.
  std::vector<uint32_t> StagedTargets;  ///< Split of StagedEdges: targets.
  std::vector<RuleId> StagedReds;       ///< One expansion's reductions.
  std::vector<RuleId> StagedAccs;       ///< One expansion's accept rules.

  static ExpandScratch &get() {
    static thread_local ExpandScratch S;
    return S;
  }
};

ItemSetGraph::ItemSetGraph(Grammar &G) : G(G) {
  // The id->record map is one add off this pointer; PoolArena reserves its
  // whole range up front, so it is fixed for the graph's lifetime.
  SetsBase = Sets.growData();
  Start = makeItemSet(startKernel());
  // The root reference: the start set is pinned for the graph's lifetime.
  Start->RefCount = 1;
}

Kernel ItemSetGraph::startKernel() const {
  Kernel K;
  for (RuleId Id : G.rulesFor(G.startSymbol()))
    K.push_back(Item{Id, 0});
  canonicalizeKernel(K);
  return K;
}

void ItemSetGraph::ensureKernelIndex() {
  // Once-flag publication: exclusive-mode callers may reach this without
  // any lock, so the flag is checked with an acquire load and only set
  // (release) after the buckets are fully built. Shared-mode callers
  // additionally hold StructureMutex, which serializes the build itself.
  if (KernelIndexReady.load(std::memory_order_acquire))
    return;
  ByKernel.reserve(numSets());
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (!State.isDead())
      ByKernel[hashKernel(kernel(&State))].push_back(&State);
  }
  KernelIndexReady.store(true, std::memory_order_release);
}

ItemSet *ItemSetGraph::makeItemSet(const Kernel &K) {
  // Caller holds StructureMutex in shared mode (expansion's target loop).
  uint32_t Idx = Sets.appendZeroed(1); // Zero record: Initial, no spans.
  ItemSet *State = SetsBase + Idx;
  State->Id = Idx;
  State->KernelOff = Kernels.append(K.data(), K.size());
  State->KernelLen = static_cast<uint32_t>(K.size());
  // While the index is deferred (fresh or just-adopted graph) the live
  // scan in ensureKernelIndex picks this set up later; indexing it now
  // would force the map allocation into GENERATE-PARSER's "almost zero"
  // construction budget (§5).
  if (KernelIndexReady.load(std::memory_order_acquire))
    ByKernel[hashKernel(kernel(State))].push_back(State);
  return State;
}

ItemSet *ItemSetGraph::findByKernelLocked(KernelView K) {
  ensureKernelIndex();
  auto It = ByKernel.find(hashKernel(K));
  if (It == ByKernel.end())
    return nullptr;
  for (ItemSet *State : It->second)
    if (kernelEquals(kernel(State), K))
      return State;
  return nullptr;
}

ItemSet *ItemSetGraph::findByKernel(KernelView K) {
  auto Lock = structureLock();
  return findByKernelLocked(K);
}

void ItemSetGraph::unlinkFromIndex(ItemSet *State) {
  // With a deferred index there is nothing to unlink: when the index is
  // eventually built, it only picks up live sets. Must run before the
  // set's kernel span is zeroed — the bucket key is the kernel hash.
  if (!KernelIndexReady.load(std::memory_order_acquire))
    return;
  auto It = ByKernel.find(hashKernel(kernel(State)));
  if (It == ByKernel.end())
    return;
  std::vector<ItemSet *> &Bucket = It->second;
  auto Pos = std::find(Bucket.begin(), Bucket.end(), State);
  if (Pos != Bucket.end())
    Bucket.erase(Pos);
}

void ItemSetGraph::closureInto(KernelView K, ExpandScratch &S,
                               std::vector<Item> &Out) const {
  // CLOSURE (§4): extend the kernel with B ::= •γ for every B that occurs
  // immediately after a dot, transitively. Predicted items all have dot 0,
  // so presence is tracked per rule. Two Bitset-backed scratch sets make
  // the rebuild cheap: S.Predicted replaces the per-call
  // std::vector<bool> allocation, and S.MergedNt lets the walk skip a
  // nonterminal's rule list after its first occurrence instead of
  // re-scanning it for every later item with the same symbol after the
  // dot. \p Out keeps its heap buffer across calls. Reads only the
  // (frozen-during-parsing) grammar — never graph state.
  Out.clear();
  Out.insert(Out.end(), K.begin(), K.end());
  S.Predicted.resize(G.numInternedRules());
  S.Predicted.clear();
  S.MergedNt.resize(G.symbols().size());
  S.MergedNt.clear();
  for (const Item &I : K)
    if (I.Dot == 0)
      S.Predicted.set(I.Rule);

  for (size_t Next = 0; Next < Out.size(); ++Next) {
    SymbolId After = symbolAfterDot(Out[Next], G);
    if (After == InvalidSymbol || G.symbols().isTerminal(After))
      continue;
    if (!S.MergedNt.set(After))
      continue; // This nonterminal's rules were already merged.
    for (RuleId Id : G.rulesFor(After))
      if (S.Predicted.set(Id))
        Out.push_back(Item{Id, 0});
  }
}

std::vector<Item> ItemSetGraph::closure(KernelView K) const {
  std::vector<Item> Closure;
  closureInto(K, ExpandScratch::get(), Closure);
  return Closure;
}

void ItemSetGraph::expand(ItemSet *State) {
  // Shared mode: the expansion gate (held shared) orders this expansion
  // against COW-fork freezes, and the set's stripe makes racing
  // expansions of the same set mutually exclusive — the loser blocks on
  // the stripe, re-checks, and adopts the winner's published set.
  IPG_TRACE_SPAN(Sp, "lr.expand");
  IPG_TRACE_SPAN_ARG(Sp, State->id());
  std::shared_lock<std::shared_mutex> Gate;
  std::unique_lock<std::mutex> Stripe;
  if (Concurrent) {
    Gate = std::shared_lock<std::shared_mutex>(ExpandGate);
    Stripe = std::unique_lock<std::mutex>(ExpandStripes.forId(State->id()));
    if (State->stateAcquire() == ItemSetState::Complete) {
      // Lost the publication race; adopt the winner's set.
      IPG_TRACE_SPAN_RENAME(Sp, "lr.expand.adopted");
      GraphMetrics::get().RaceAdoptions.bump();
      return;
    }
  }
  assert(!State->isDead() && "expanding a collected set of items");
  ExpandScratch &S = ExpandScratch::get();

  // Only this thread mutates this record (exclusive mode, or the stripe is
  // held), so its non-atomic fields are safe to read and stage from here.
  const bool WasDirty = State->state() == ItemSetState::Dirty;
  Stats.bump(ScExpansions);
  GraphMetrics::get().Expansions.bump();
  if (WasDirty) {
    Stats.bump(ScReExpansions);
    GraphMetrics::get().ReExpansions.bump();
    // The §6 repair observable: one span per state actually re-expanded
    // (warm_start cross-checks this count against the stats counter).
    IPG_TRACE_SPAN_RENAME(Sp, "lr.reexpand");
  }

  closureInto(kernel(State), S, S.Closure);
  const std::vector<Item> &Closure = S.Closure;
  Stats.bump(ScClosureItems, Closure.size());
  GraphMetrics::get().ClosureItems.bump(Closure.size());

  S.StagedReds.clear();
  S.StagedAccs.clear();
  bool Accepting = false;

  // Partition the closure by the symbol after the dot (first-seen order —
  // this reproduces the state numbering of the paper's figures). The
  // symbol-indexed scratch turns the per-item group lookup into O(1), and
  // the group slots (including their kernels' heap buffers) are reused
  // across this thread's expansions.
  size_t NumGroups = 0;
  if (S.GroupIndex.size() < G.symbols().size())
    S.GroupIndex.resize(G.symbols().size(), 0);
  for (const Item &I : Closure) {
    SymbolId After = symbolAfterDot(I, G);
    if (After == InvalidSymbol) {
      // Dot at the end: accept for START, a reduction otherwise.
      if (G.rule(I.Rule).Lhs == G.startSymbol()) {
        Accepting = true;
        if (std::find(S.StagedAccs.begin(), S.StagedAccs.end(), I.Rule) ==
            S.StagedAccs.end())
          S.StagedAccs.push_back(I.Rule);
      } else if (std::find(S.StagedReds.begin(), S.StagedReds.end(),
                           I.Rule) == S.StagedReds.end()) {
        S.StagedReds.push_back(I.Rule);
      }
      continue;
    }
    uint32_t &Slot = S.GroupIndex[After];
    if (Slot == 0) {
      if (NumGroups == S.Groups.size())
        S.Groups.emplace_back();
      S.Groups[NumGroups].first = After;
      S.Groups[NumGroups].second.clear();
      ++NumGroups;
      Slot = static_cast<uint32_t>(NumGroups);
    }
    S.Groups[Slot - 1].second.push_back(Item{I.Rule, I.Dot + 1});
  }
  for (size_t I = 0; I < NumGroups; ++I)
    S.GroupIndex[S.Groups[I].first] = 0; // Reset touched slots only.
  for (size_t I = 0; I < NumGroups; ++I)
    canonicalizeKernel(S.Groups[I].second); // Pure; outside the lock.

  {
    // One structure-lock hold covers the whole target-resolution loop
    // (the lookups, the creations, the RefCount increments they imply)
    // and the pool appends. Holding it across the loop (not per group)
    // closes the resurrection race — a target this expansion found
    // cannot be killed by a concurrent RE-EXPAND's DECR-REFCOUNT before
    // its count is bumped, because that decrement serializes behind this
    // hold.
    auto Lock = structureLock();
    S.StagedEdges.clear();
    for (size_t I = 0; I < NumGroups; ++I) {
      auto &[Label, NewKernel] = S.Groups[I];
      ItemSet *Target = findByKernelLocked(NewKernel);
      if (Target == nullptr)
        Target = makeItemSet(NewKernel);
      ++Target->RefCount;
      S.StagedEdges.emplace_back(Label, Target->Id);
    }
    // Transition spans are binary-searched by label (ACTION/GOTO), so
    // they land in the pools sorted. Labels are unique per set — the
    // partition produced one group per symbol.
    std::sort(S.StagedEdges.begin(), S.StagedEdges.end());
    S.StagedLabels.clear();
    S.StagedTargets.clear();
    for (const auto &[Label, TargetId] : S.StagedEdges) {
      S.StagedLabels.push_back(Label);
      S.StagedTargets.push_back(TargetId);
    }
    // The Trans/Labels pools advance in lockstep: one offset addresses
    // both halves of the edge span.
    uint32_t EdgeOff = Trans.append(S.StagedTargets.data(), NumGroups);
    uint32_t LabelOff = Labels.append(S.StagedLabels.data(), NumGroups);
    assert(EdgeOff == LabelOff && "Trans/Labels pools out of lockstep");
    (void)LabelOff;
    State->TransOff = EdgeOff;
    State->TransLen = static_cast<uint32_t>(NumGroups);
    State->RedOff = Reds.append(S.StagedReds.data(), S.StagedReds.size());
    State->RedLen = static_cast<uint32_t>(S.StagedReds.size());
    State->AccOff = Accs.append(S.StagedAccs.data(), S.StagedAccs.size());
    State->AccLen = static_cast<uint32_t>(S.StagedAccs.size());
    State->Accepting = Accepting ? 1 : 0;
  }
  // Publication: everything written above happens-before any reader that
  // observes Complete through stateAcquire().
  State->publishComplete();

  // RE-EXPAND (§6.2): only now release the references the dirty set held,
  // so targets reused by the new expansion never transiently hit zero.
  // Targets reachable only through these old records were never visible
  // to readers (a Dirty set answers no queries), so collecting them under
  // the structure lock cannot invalidate any session's stack. The old
  // span's pool bytes are simply abandoned — append-only pools never
  // reclaim — which is what keeps every previously handed-out view valid.
  if (WasDirty) {
    uint32_t OldOff = State->OldOff, OldLen = State->OldLen;
    State->OldOff = 0;
    State->OldLen = 0;
    auto Lock = structureLock();
    const uint32_t *OldTargets = Trans.at(OldOff);
    for (uint32_t I = 0; I < OldLen; ++I)
      decrRefCount(SetsBase + OldTargets[I]);
  }
}

void ItemSetGraph::decrRefCount(ItemSet *State) {
  // Iterative DECR-REFCOUNT (§6.2): when a count reaches zero the set is
  // removed and the references it holds are released in turn. Caller
  // holds StructureMutex in shared mode — the whole decrement-and-kill is
  // atomic with respect to concurrent expansions re-linking the set.
  std::vector<ItemSet *> Worklist{State};
  while (!Worklist.empty()) {
    ItemSet *Current = Worklist.back();
    Worklist.pop_back();
    assert(!Current->isDead() && "releasing a reference to a dead set");
    assert(Current->RefCount > 0 && "refcount underflow");
    if (--Current->RefCount != 0)
      continue;
    // Unlink first: the index bucket is keyed by the kernel hash, which
    // the tombstoning below zeroes away.
    unlinkFromIndex(Current);
    const bool HeldOld = Current->state() == ItemSetState::Dirty;
    uint32_t Off = HeldOld ? Current->OldOff : Current->TransOff;
    uint32_t Len = HeldOld ? Current->OldLen : Current->TransLen;
    const uint32_t *Targets = Trans.at(Off);
    for (uint32_t I = 0; I < Len; ++I)
      Worklist.push_back(SetsBase + Targets[I]);
    // Tombstone: a Dead record persists (id space stays dense, stale
    // pointers in old parser stacks stay valid) with every span zeroed —
    // the exact shape the snapshot writes and adoption validates.
    Current->KernelOff = Current->KernelLen = 0;
    Current->TransOff = Current->TransLen = 0;
    Current->OldOff = Current->OldLen = 0;
    Current->RedOff = Current->RedLen = 0;
    Current->AccOff = Current->AccLen = 0;
    Current->Accepting = 0;
    Current->storeState(ItemSetState::Dead, std::memory_order_relaxed);
    Stats.bump(ScCollected);
    GraphMetrics::get().Collected.bump();
  }
}

void ItemSetGraph::markDirty(ItemSet *State) {
  // Initial sets need no invalidation; Dirty sets already carry their
  // pre-modification history.
  if (State->state() != ItemSetState::Complete)
    return;
  // Pure offset move: the transition span becomes the old span (§6.2
  // needs it to release references at RE-EXPAND), the result spans are
  // dropped. No pool bytes move or are touched — MODIFY's per-set cost
  // is these ten field writes regardless of the set's size or whether
  // its spans resolve into a mapped snapshot.
  State->OldOff = State->TransOff;
  State->OldLen = State->TransLen;
  State->TransOff = 0;
  State->TransLen = 0;
  State->RedOff = 0;
  State->RedLen = 0;
  State->AccOff = 0;
  State->AccLen = 0;
  State->Accepting = 0;
  State->storeState(ItemSetState::Dirty, std::memory_order_relaxed);
  Stats.bump(ScDirtyMarks);
  GraphMetrics::get().DirtyMarks.bump();
}

void ItemSetGraph::modify(SymbolId Lhs) {
  // MODIFY (§6.1). The grammar has already been updated by the caller.
  // Never a shared-mode operation: a server MODIFY edits a private COW
  // fork and publishes it as a new epoch (server/GrammarServer.h).
  assert(!Concurrent &&
         "MODIFY on a published shared graph — fork a new epoch instead");
  // The paper's headline number, per edit: how long the dirty-marking
  // probe takes and how many sets it invalidated (re-expansion happens
  // lazily later, counted by the lr.reexpand spans).
  IPG_TRACE_SPAN(Sp, "lr.modify");
  ScopedLatency Lat(GraphMetrics::get().ModifyLatency);
  GraphMetrics::get().Edits.bump();
  uint64_t MarksBefore = Stats.total(ScDirtyMarks);
  (void)MarksBefore;
  if (Lhs == G.startSymbol()) {
    // Only the start set can hold START ::= •β in its kernel. The new
    // kernel is appended to the pool (the old span is abandoned) and the
    // index bucket re-keyed.
    ensureKernelIndex();
    unlinkFromIndex(Start);
    Kernel K = startKernel();
    Start->KernelOff = Kernels.append(K.data(), K.size());
    Start->KernelLen = static_cast<uint32_t>(K.size());
    ByKernel[hashKernel(kernel(Start))].push_back(Start);
    markDirty(Start);
    IPG_TRACE_SPAN_ARG(Sp, Stats.total(ScDirtyMarks) - MarksBefore);
    return;
  }
  // Recognition of a rule for Lhs starts exactly in the complete sets with
  // a transition labeled Lhs — their closures contained • before an Lhs.
  // One linear sweep over the dense record pool, one binary search over
  // each complete set's label slice: this probe loop dominates
  // ADD/DELETE-RULE latency.
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (State.state() == ItemSetState::Complete &&
        transitionTarget(&State, Lhs) != nullptr)
      markDirty(&State);
  }
  IPG_TRACE_SPAN_ARG(Sp, Stats.total(ScDirtyMarks) - MarksBefore);
}

bool ItemSetGraph::addRule(SymbolId Lhs, std::vector<SymbolId> Rhs) {
  auto [Id, Changed] = G.addRule(Lhs, std::move(Rhs));
  (void)Id;
  if (!Changed)
    return false;
  modify(Lhs);
  return true;
}

bool ItemSetGraph::removeRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs) {
  auto [Id, Changed] = G.removeRule(Lhs, Rhs);
  (void)Id;
  if (!Changed)
    return false;
  modify(Lhs);
  return true;
}

void ItemSetGraph::ensureComplete(ItemSet *State) {
  // Lock-free fast path — the whole reader-side contract is this one
  // acquire load: within an epoch a Complete set never leaves that state,
  // so observing Complete is a stable fact and the set's records are
  // visible (publication pairing in lr/ItemSet.h).
  if (State->stateAcquire() == ItemSetState::Complete)
    return;
  assert(!State->isDead() && "querying a collected set of items");
  expand(State);
}

LrActionsView ItemSetGraph::actionsView(ItemSet *State, SymbolId Symbol) {
  assert(G.symbols().isTerminal(Symbol) &&
         "ACTION is queried with terminals only");
  ensureComplete(State);
  // LR(0): reductions apply regardless of the lookahead symbol; the shift
  // target is a binary search over the set's label slice.
  ArrayView<RuleId> Reduce = reductions(State);
  return LrActionsView(Reduce.begin(), Reduce.end(),
                       transitionTarget(State, Symbol),
                       State->Accepting != 0 && Symbol == G.endMarker());
}

ItemSet *ItemSetGraph::gotoState(ItemSet *State, SymbolId Symbol) {
  Stats.bump(ScGotoCalls);
  // Appendix A: the parsing algorithms only ever call GOTO on sets that
  // have already been completed.
  assert(State->isComplete() && "GOTO called on a non-complete set of items");
  if (ItemSet *Target = transitionTarget(State, Symbol))
    return Target;
  // An absent transition means the graph is inconsistent with the grammar
  // (or the caller broke the Appendix A discipline). Fail identically in
  // every build type: under NDEBUG a fall-through here used to hand the
  // caller a null state to dereference.
  std::fprintf(stderr,
               "ipg fatal: GOTO(state %u, symbol %u '%s'): no transition "
               "(graph inconsistent)\n",
               State->id(), Symbol,
               Symbol < G.symbols().size() ? G.symbols().name(Symbol).c_str()
                                           : "<uninterned>");
  std::abort();
}

size_t ItemSetGraph::generateAll() {
  // A single index pass suffices: EXPAND only appends new Initial sets,
  // which the growing loop bound picks up. Exclusive-mode only: the scan
  // of numSets() cannot race concurrent growth.
  assert(!Concurrent && "generateAll on a published shared graph");
  for (size_t Index = 0; Index < numSets(); ++Index) {
    ItemSet &State = setAt(Index);
    if (State.state() == ItemSetState::Initial ||
        State.state() == ItemSetState::Dirty)
      expand(&State);
  }
  return numComplete();
}

std::vector<const ItemSet *> ItemSetGraph::liveSets() const {
  std::vector<const ItemSet *> Result;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    const ItemSet &State = setAt(I);
    if (!State.isDead())
      Result.push_back(&State);
  }
  return Result;
}

size_t ItemSetGraph::countByState(ItemSetState S) const {
  size_t Count = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I)
    Count += setAt(I).state() == S;
  return Count;
}

size_t ItemSetGraph::numLive() const {
  size_t Count = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I)
    Count += !setAt(I).isDead();
  return Count;
}

size_t ItemSetGraph::collectGarbage() {
  // Whole-graph walk; exclusive-mode only (see generateAll).
  assert(!Concurrent && "collectGarbage on a published shared graph");
  IPG_TRACE_SPAN(Sp, "lr.gc");
  ScopedLatency Lat(GraphMetrics::get().GcLatency);
  // Mark phase: reachable from the start set, following live transitions
  // and the retained pre-modification transitions of dirty sets.
  std::vector<bool> Marked(numSets(), false);
  std::vector<uint32_t> Worklist{Start->Id};
  Marked[Start->Id] = true;
  while (!Worklist.empty()) {
    ItemSet &State = setAt(Worklist.back());
    Worklist.pop_back();
    auto Visit = [&](uint32_t Off, uint32_t Len) {
      const uint32_t *Targets = Trans.at(Off);
      for (uint32_t I = 0; I < Len; ++I)
        if (!Marked[Targets[I]]) {
          Marked[Targets[I]] = true;
          Worklist.push_back(Targets[I]);
        }
    };
    Visit(State.TransOff, State.TransLen);
    Visit(State.OldOff, State.OldLen);
  }

  // Sweep phase: tombstone the unreachable (see decrRefCount).
  size_t Reclaimed = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (State.isDead() || Marked[State.Id])
      continue;
    unlinkFromIndex(&State);
    State.KernelOff = State.KernelLen = 0;
    State.TransOff = State.TransLen = 0;
    State.OldOff = State.OldLen = 0;
    State.RedOff = State.RedLen = 0;
    State.AccOff = State.AccLen = 0;
    State.Accepting = 0;
    State.RefCount = 0;
    State.storeState(ItemSetState::Dead, std::memory_order_relaxed);
    ++Reclaimed;
    Stats.bump(ScCollected);
    GraphMetrics::get().Collected.bump();
  }
  IPG_TRACE_SPAN_ARG(Sp, Reclaimed);

  // Restore exact reference counts for the survivors.
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (!State.isDead())
      State.RefCount = 0;
  }
  Start->RefCount = 1;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (State.isDead())
      continue;
    auto Count = [&](uint32_t Off, uint32_t Len) {
      const uint32_t *Targets = Trans.at(Off);
      for (uint32_t J = 0; J < Len; ++J)
        ++setAt(Targets[J]).RefCount;
    };
    Count(State.TransOff, State.TransLen);
    Count(State.OldOff, State.OldLen);
  }
  return Reclaimed;
}
