//===- lr/ItemSetGraph.cpp - The graph of item sets -----------------------===//

#include "lr/ItemSetGraph.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace ipg;

ItemSetGraph::ItemSetGraph(Grammar &G) : G(G) {
  Start = makeItemSet(startKernel());
  // The root reference: the start set is pinned for the graph's lifetime.
  Start->RefCount = 1;
}

Kernel ItemSetGraph::startKernel() const {
  Kernel K;
  for (RuleId Id : G.rulesFor(G.startSymbol()))
    K.push_back(Item{Id, 0});
  canonicalizeKernel(K);
  return K;
}

void ItemSetGraph::ensureKernelIndex() {
  if (KernelIndexReady)
    return;
  KernelIndexReady = true;
  ByKernel.reserve(numSets());
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (!State.isDead())
      ByKernel[hashKernel(State.kernel())].push_back(&State);
  }
}

ItemSet *ItemSetGraph::makeItemSet(Kernel K) {
  ensureKernelIndex();
  Pool.emplace_back();
  ItemSet *State = &Pool.back();
  State->Id = static_cast<uint32_t>(numSets() - 1);
  State->K = std::move(K);
  ByKernel[hashKernel(State->K)].push_back(State);
  return State;
}

ItemSet *ItemSetGraph::findByKernel(KernelView K) {
  ensureKernelIndex();
  auto It = ByKernel.find(hashKernel(K));
  if (It == ByKernel.end())
    return nullptr;
  for (ItemSet *State : It->second)
    if (kernelEquals(State->kernel(), K))
      return State;
  return nullptr;
}

void ItemSetGraph::unlinkFromIndex(ItemSet *State) {
  // With a deferred index there is nothing to unlink: when the index is
  // eventually built, it only picks up live sets.
  if (!KernelIndexReady)
    return;
  auto It = ByKernel.find(hashKernel(State->kernel()));
  if (It == ByKernel.end())
    return;
  std::vector<ItemSet *> &Bucket = It->second;
  auto Pos = std::find(Bucket.begin(), Bucket.end(), State);
  if (Pos != Bucket.end())
    Bucket.erase(Pos);
}

void ItemSetGraph::closureInto(KernelView K, std::vector<Item> &Out) const {
  // CLOSURE (§4): extend the kernel with B ::= •γ for every B that occurs
  // immediately after a dot, transitively. Predicted items all have dot 0,
  // so presence is tracked per rule. Two Bitset-backed scratch sets make
  // the rebuild cheap: PredictedScratch replaces the per-call
  // std::vector<bool> allocation, and MergedNtScratch lets the walk skip a
  // nonterminal's rule list after its first occurrence instead of
  // re-scanning it for every later item with the same symbol after the
  // dot. \p Out keeps its heap buffer across calls.
  Out.clear();
  Out.insert(Out.end(), K.begin(), K.end());
  PredictedScratch.resize(G.numInternedRules());
  PredictedScratch.clear();
  MergedNtScratch.resize(G.symbols().size());
  MergedNtScratch.clear();
  for (const Item &I : K)
    if (I.Dot == 0)
      PredictedScratch.set(I.Rule);

  for (size_t Next = 0; Next < Out.size(); ++Next) {
    SymbolId After = symbolAfterDot(Out[Next], G);
    if (After == InvalidSymbol || G.symbols().isTerminal(After))
      continue;
    if (!MergedNtScratch.set(After))
      continue; // This nonterminal's rules were already merged.
    for (RuleId Id : G.rulesFor(After))
      if (PredictedScratch.set(Id))
        Out.push_back(Item{Id, 0});
  }
}

std::vector<Item> ItemSetGraph::closure(KernelView K) const {
  std::vector<Item> Closure;
  closureInto(K, Closure);
  return Closure;
}

void ItemSetGraph::addTransition(ItemSet *From, SymbolId Label, ItemSet *To) {
  From->Transitions.push_back(ItemSet::Transition{Label, To});
  ++To->RefCount;
}

void ItemSetGraph::expand(ItemSet *State) {
  assert(!State->isDead() && "expanding a collected set of items");
  // EXPAND mutates the set wholesale; an adopted set first copies its
  // borrowed records into owned storage (copy-on-MODIFY).
  State->materializeOwned();
  bool WasDirty = State->State == ItemSetState::Dirty;
  ++Stats.Expansions;
  if (WasDirty)
    ++Stats.ReExpansions;

  closureInto(State->K, ClosureScratch);
  const std::vector<Item> &Closure = ClosureScratch;
  Stats.ClosureItems += Closure.size();

  State->Transitions.clear();
  State->Reductions.clear();
  State->AcceptRules.clear();
  State->Accepting = false;

  // Partition the closure by the symbol after the dot (first-seen order —
  // this reproduces the state numbering of the paper's figures). The
  // symbol-indexed scratch turns the per-item group lookup into O(1), and
  // the group slots (including their kernels' heap buffers) are reused
  // across expansions.
  size_t NumGroups = 0;
  if (GroupIndexScratch.size() < G.symbols().size())
    GroupIndexScratch.resize(G.symbols().size(), 0);
  for (const Item &I : Closure) {
    SymbolId After = symbolAfterDot(I, G);
    if (After == InvalidSymbol) {
      // Dot at the end: accept for START, a reduction otherwise.
      if (G.rule(I.Rule).Lhs == G.startSymbol()) {
        State->Accepting = true;
        if (std::find(State->AcceptRules.begin(), State->AcceptRules.end(),
                      I.Rule) == State->AcceptRules.end())
          State->AcceptRules.push_back(I.Rule);
      } else if (std::find(State->Reductions.begin(), State->Reductions.end(),
                           I.Rule) == State->Reductions.end()) {
        State->Reductions.push_back(I.Rule);
      }
      continue;
    }
    uint32_t &Slot = GroupIndexScratch[After];
    if (Slot == 0) {
      if (NumGroups == GroupScratch.size())
        GroupScratch.emplace_back();
      GroupScratch[NumGroups].first = After;
      GroupScratch[NumGroups].second.clear();
      ++NumGroups;
      Slot = static_cast<uint32_t>(NumGroups);
    }
    GroupScratch[Slot - 1].second.push_back(Item{I.Rule, I.Dot + 1});
  }
  for (size_t I = 0; I < NumGroups; ++I)
    GroupIndexScratch[GroupScratch[I].first] = 0; // Reset touched slots only.

  for (size_t I = 0; I < NumGroups; ++I) {
    auto &[Label, NewKernel] = GroupScratch[I];
    canonicalizeKernel(NewKernel);
    ItemSet *Target = findByKernel(NewKernel);
    if (Target == nullptr)
      Target = makeItemSet(std::move(NewKernel));
    addTransition(State, Label, Target);
  }
  sortTransitionsByLabel(State->Transitions);
  State->buildActionIndex();
  State->State = ItemSetState::Complete;

  // RE-EXPAND (§6.2): only now release the references the dirty set held,
  // so targets reused by the new expansion never transiently hit zero.
  if (WasDirty) {
    std::vector<ItemSet::Transition> Old = std::move(State->OldTransitions);
    State->OldTransitions.clear();
    for (const ItemSet::Transition &T : Old)
      decrRefCount(T.Target);
  }
}

void ItemSetGraph::decrRefCount(ItemSet *State) {
  // Iterative DECR-REFCOUNT (§6.2): when a count reaches zero the set is
  // removed and the references it holds are released in turn.
  std::vector<ItemSet *> Worklist{State};
  while (!Worklist.empty()) {
    ItemSet *Current = Worklist.back();
    Worklist.pop_back();
    assert(!Current->isDead() && "releasing a reference to a dead set");
    assert(Current->RefCount > 0 && "refcount underflow");
    if (--Current->RefCount != 0)
      continue;
    unlinkFromIndex(Current);
    ArrayView<ItemSet::Transition> Held =
        Current->State == ItemSetState::Dirty ? Current->oldTransitions()
                                              : Current->transitions();
    for (const ItemSet::Transition &T : Held)
      Worklist.push_back(T.Target);
    Current->State = ItemSetState::Dead;
    Current->releaseStorage();
    ++Stats.Collected;
  }
}

void ItemSetGraph::markDirty(ItemSet *State) {
  // Initial sets need no invalidation; Dirty sets already carry their
  // pre-modification history.
  if (State->State != ItemSetState::Complete)
    return;
  // Copy-on-MODIFY: an adopted set materializes its borrowed records
  // before they are rearranged, so §6 repair works on mapped graphs.
  State->materializeOwned();
  State->OldTransitions = std::move(State->Transitions);
  State->Transitions.clear();
  State->Reductions.clear();
  State->AcceptRules.clear();
  State->clearActionIndex();
  State->Accepting = false;
  State->State = ItemSetState::Dirty;
  ++Stats.DirtyMarks;
}

void ItemSetGraph::modify(SymbolId Lhs) {
  // MODIFY (§6.1). The grammar has already been updated by the caller.
  if (Lhs == G.startSymbol()) {
    // Only the start set can hold START ::= •β in its kernel.
    ensureKernelIndex();
    Start->materializeOwned();
    unlinkFromIndex(Start);
    Start->K = startKernel();
    ByKernel[hashKernel(Start->K)].push_back(Start);
    markDirty(Start);
    return;
  }
  // Recognition of a rule for Lhs starts exactly in the complete sets with
  // a transition labeled Lhs — their closures contained • before an Lhs.
  // The action index turns the per-state membership test into a binary
  // search. The two storage pools are walked directly (not through the
  // setAt branch): this probe loop dominates ADD/DELETE-RULE latency.
  auto Probe = [&](ItemSet &State) {
    if (State.State == ItemSetState::Complete &&
        State.transitionTarget(Lhs) != nullptr)
      markDirty(&State);
  };
  for (ItemSet &State : Adopted)
    Probe(State);
  for (ItemSet &State : Pool)
    Probe(State);
}

bool ItemSetGraph::addRule(SymbolId Lhs, std::vector<SymbolId> Rhs) {
  auto [Id, Changed] = G.addRule(Lhs, std::move(Rhs));
  (void)Id;
  if (!Changed)
    return false;
  modify(Lhs);
  return true;
}

bool ItemSetGraph::removeRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs) {
  auto [Id, Changed] = G.removeRule(Lhs, Rhs);
  (void)Id;
  if (!Changed)
    return false;
  modify(Lhs);
  return true;
}

void ItemSetGraph::ensureComplete(ItemSet *State) {
  assert(!State->isDead() && "querying a collected set of items");
  if (!State->isComplete())
    expand(State);
}

LrActionsView ItemSetGraph::actionsView(ItemSet *State, SymbolId Symbol) {
  assert(G.symbols().isTerminal(Symbol) &&
         "ACTION is queried with terminals only");
  ensureComplete(State);
  // LR(0): reductions apply regardless of the lookahead symbol; the shift
  // target is a binary search over the action index built at EXPAND time.
  ArrayView<RuleId> Reduce = State->reductions();
  return LrActionsView(Reduce.begin(), Reduce.end(),
                       State->transitionTarget(Symbol),
                       State->Accepting && Symbol == G.endMarker());
}

std::vector<LrAction> ItemSetGraph::actions(ItemSet *State, SymbolId Symbol) {
  LrActionsView View = actionsView(State, Symbol);
  std::vector<LrAction> Result;
  Result.reserve(View.size());
  View.forEach([&](const LrAction &A) { Result.push_back(A); });
  return Result;
}

ItemSet *ItemSetGraph::gotoState(ItemSet *State, SymbolId Symbol) {
  ++Stats.GotoCalls;
  // Appendix A: the parsing algorithms only ever call GOTO on sets that
  // have already been completed.
  assert(State->isComplete() && "GOTO called on a non-complete set of items");
  if (ItemSet *Target = State->transitionTarget(Symbol))
    return Target;
  // An absent transition means the graph is inconsistent with the grammar
  // (or the caller broke the Appendix A discipline). Fail identically in
  // every build type: under NDEBUG a fall-through here used to hand the
  // caller a null state to dereference.
  std::fprintf(stderr,
               "ipg fatal: GOTO(state %u, symbol %u '%s'): no transition "
               "(graph inconsistent)\n",
               State->id(), Symbol,
               Symbol < G.symbols().size() ? G.symbols().name(Symbol).c_str()
                                           : "<uninterned>");
  std::abort();
}

size_t ItemSetGraph::generateAll() {
  // A single index pass suffices: EXPAND only appends new Initial sets,
  // which the growing loop bound picks up.
  for (size_t Index = 0; Index < numSets(); ++Index) {
    ItemSet &State = setAt(Index);
    if (State.State == ItemSetState::Initial ||
        State.State == ItemSetState::Dirty)
      expand(&State);
  }
  return numComplete();
}

std::vector<const ItemSet *> ItemSetGraph::liveSets() const {
  std::vector<const ItemSet *> Result;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    const ItemSet &State = setAt(I);
    if (!State.isDead())
      Result.push_back(&State);
  }
  return Result;
}

size_t ItemSetGraph::countByState(ItemSetState S) const {
  size_t Count = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I)
    Count += setAt(I).State == S;
  return Count;
}

size_t ItemSetGraph::numLive() const {
  size_t Count = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I)
    Count += !setAt(I).isDead();
  return Count;
}

size_t ItemSetGraph::collectGarbage() {
  // Mark phase: reachable from the start set, following live transitions
  // and the retained pre-modification transitions of dirty sets.
  std::vector<bool> Marked(numSets(), false);
  std::vector<ItemSet *> Worklist{Start};
  Marked[Start->Id] = true;
  while (!Worklist.empty()) {
    ItemSet *State = Worklist.back();
    Worklist.pop_back();
    auto Visit = [&](ArrayView<ItemSet::Transition> Edges) {
      for (const ItemSet::Transition &T : Edges)
        if (!Marked[T.Target->Id]) {
          Marked[T.Target->Id] = true;
          Worklist.push_back(T.Target);
        }
    };
    Visit(State->transitions());
    Visit(State->oldTransitions());
  }

  // Sweep phase.
  size_t Reclaimed = 0;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (State.isDead() || Marked[State.Id])
      continue;
    unlinkFromIndex(&State);
    State.State = ItemSetState::Dead;
    State.releaseStorage();
    State.RefCount = 0;
    ++Reclaimed;
    ++Stats.Collected;
  }

  // Restore exact reference counts for the survivors.
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (!State.isDead())
      State.RefCount = 0;
  }
  Start->RefCount = 1;
  for (size_t I = 0, N = numSets(); I < N; ++I) {
    ItemSet &State = setAt(I);
    if (State.isDead())
      continue;
    for (const ItemSet::Transition &T : State.transitions())
      ++T.Target->RefCount;
    for (const ItemSet::Transition &T : State.oldTransitions())
      ++T.Target->RefCount;
  }
  return Reclaimed;
}
