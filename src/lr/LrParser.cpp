//===- lr/LrParser.cpp - Deterministic LR driver (§3.1) -------------------===//

#include "lr/LrParser.h"

using namespace ipg;

LrParseResult LrParser::parse(TokenView Input, TreeArena &Arena) const {
  LrParseResult Result;
  std::vector<uint32_t> States{Table.startState()};
  std::vector<TreeNode *> Nodes;

  size_t Index = Input.cursor();
  while (true) {
    SymbolId Symbol = Index < Input.size() ? Input[Index] : G.endMarker();
    TableAction Action = Table.action(States.back(), Symbol);
    switch (Action.Kind) {
    case TableAction::Shift:
      States.push_back(Action.Value);
      Nodes.push_back(Arena.makeLeaf(Symbol, static_cast<uint32_t>(Index)));
      ++Index;
      ++Result.NumShifts;
      break;
    case TableAction::Reduce: {
      const Rule &R = G.rule(Action.Value);
      std::vector<TreeNode *> Children(Nodes.end() - R.Rhs.size(),
                                       Nodes.end());
      States.resize(States.size() - R.Rhs.size());
      Nodes.resize(Nodes.size() - R.Rhs.size());
      uint32_t Target = Table.gotoState(States.back(), R.Lhs);
      if (Target == ~0u) {
        // A table/grammar mismatch (e.g. the grammar was modified after
        // the table was built): a parse error, not UB under NDEBUG.
        Result.ErrorIndex = Index;
        return Result;
      }
      States.push_back(Target);
      Nodes.push_back(Arena.makeNode(R.Lhs, Action.Value, std::move(Children)));
      ++Result.NumReduces;
      break;
    }
    case TableAction::Accept: {
      const Rule &R = G.rule(Action.Value);
      std::vector<TreeNode *> Children(Nodes.end() - R.Rhs.size(),
                                       Nodes.end());
      Result.Tree =
          Arena.makeNode(G.startSymbol(), Action.Value, std::move(Children));
      Result.Accepted = true;
      return Result;
    }
    case TableAction::Error:
      Result.ErrorIndex = Index;
      return Result;
    }
  }
}

bool LrParser::recognize(TokenView Input) const {
  std::vector<uint32_t> States{Table.startState()};
  // Symbol counts per state are not needed: only rule lengths are popped.
  size_t Index = Input.cursor();
  while (true) {
    SymbolId Symbol = Index < Input.size() ? Input[Index] : G.endMarker();
    TableAction Action = Table.action(States.back(), Symbol);
    switch (Action.Kind) {
    case TableAction::Shift:
      States.push_back(Action.Value);
      ++Index;
      break;
    case TableAction::Reduce: {
      const Rule &R = G.rule(Action.Value);
      States.resize(States.size() - R.Rhs.size());
      uint32_t Target = Table.gotoState(States.back(), R.Lhs);
      if (Target == ~0u)
        return false; // Table/grammar mismatch; see parse().
      States.push_back(Target);
      break;
    }
    case TableAction::Accept:
      return true;
    case TableAction::Error:
      return false;
    }
  }
}
