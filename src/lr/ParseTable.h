//===- lr/ParseTable.h - Tabular ACTION/GOTO representation -----*- C++ -*-===//
///
/// \file
/// The tabular representation of a fully generated graph of item sets —
/// Fig 4.1(b) of the paper. Used by the conventional deterministic LR
/// driver (the "Yacc" side of §7); the lazy/incremental generators never
/// build it because they need the kernel fields during parsing.
///
/// ACTION cells may hold multiple entries (LR(0) conflicts); the table
/// records them all plus a conflict list so generators can report and, for
/// the Yacc baseline, resolve them.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_PARSETABLE_H
#define IPG_LR_PARSETABLE_H

#include "grammar/Grammar.h"
#include "lr/ItemSetGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipg {

/// One parse-table action.
struct TableAction {
  enum KindType : uint8_t { Error = 0, Shift, Reduce, Accept } Kind = Error;
  /// Shift: target state. Reduce/Accept: rule id.
  uint32_t Value = 0;

  bool operator==(const TableAction &O) const {
    return Kind == O.Kind && Value == O.Value;
  }
};

/// A conflicted ACTION cell.
struct TableConflict {
  uint32_t State;
  SymbolId Symbol;
  std::vector<TableAction> Actions;
};

/// Dense ACTION/GOTO tables over compact state numbers.
class ParseTable {
public:
  ParseTable(size_t NumStates, size_t NumSymbols)
      : NumStates(NumStates), NumSymbols(NumSymbols),
        Cells(NumStates * NumSymbols), Gotos(NumStates * NumSymbols, ~0u) {}

  size_t numStates() const { return NumStates; }
  size_t numSymbols() const { return NumSymbols; }
  uint32_t startState() const { return 0; }

  /// Adds an action for (\p State, terminal \p Symbol); extra actions on
  /// the same cell are recorded as conflicts.
  void addAction(uint32_t State, SymbolId Symbol, TableAction Action);

  /// The resolved (single) action; Error when the cell is empty — or when
  /// the query is out of range. The table is a detached copy of the graph:
  /// a symbol interned after it was built (e.g. by addRule on the live
  /// grammar) has no column, and indexing it unchecked would read out of
  /// bounds, so such queries degrade to the error action instead.
  TableAction action(uint32_t State, SymbolId Symbol) const {
    if (State >= NumStates || Symbol >= NumSymbols)
      return TableAction{};
    return Cells[State * NumSymbols + Symbol];
  }

  /// Replaces the resolved action for a cell (conflict resolution).
  void resolveAction(uint32_t State, SymbolId Symbol, TableAction Action) {
    Cells[State * NumSymbols + Symbol] = Action;
  }

  void setGoto(uint32_t State, SymbolId Nonterminal, uint32_t Target) {
    Gotos[State * NumSymbols + Nonterminal] = Target;
  }

  /// GOTO(state, nonterminal); ~0u when undefined or out of range (same
  /// rationale as action()).
  uint32_t gotoState(uint32_t State, SymbolId Nonterminal) const {
    if (State >= NumStates || Nonterminal >= NumSymbols)
      return ~0u;
    return Gotos[State * NumSymbols + Nonterminal];
  }

  const std::vector<TableConflict> &conflicts() const { return Conflicts; }
  bool isDeterministic() const { return Conflicts.empty(); }

  /// Approximate memory footprint in bytes (for the measurements). The
  /// conflict list is part of the table — LR(0) tables over real grammars
  /// carry many conflicted cells, and omitting them understated the §7
  /// memory numbers.
  size_t memoryBytes() const {
    size_t Bytes =
        Cells.size() * sizeof(TableAction) + Gotos.size() * sizeof(uint32_t);
    Bytes += Conflicts.size() * sizeof(TableConflict);
    for (const TableConflict &Conflict : Conflicts)
      Bytes += Conflict.Actions.size() * sizeof(TableAction);
    return Bytes;
  }

private:
  size_t NumStates;
  size_t NumSymbols;
  std::vector<TableAction> Cells;
  std::vector<uint32_t> Gotos;
  std::vector<TableConflict> Conflicts;
};

/// Builds the LR(0) table for \p Graph, generating the whole graph first
/// (the conventional PG pipeline of §4). Reductions fill every terminal
/// column, as in Fig 4.1(b). \p StateOfSet, when non-null, receives the
/// dense id assigned to each live complete item set.
ParseTable buildLr0Table(ItemSetGraph &Graph,
                         std::vector<const ItemSet *> *SetOfState = nullptr);

/// Renders the table in the layout of Fig 4.1(b) (columns: terminals then
/// nonterminals; `s3`, `r2`, `acc`, conflicts as `s5/r3`).
std::string tableToString(const ParseTable &Table, const Grammar &G);

} // namespace ipg

#endif // IPG_LR_PARSETABLE_H
