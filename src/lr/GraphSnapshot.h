//===- lr/GraphSnapshot.h - Item-set graph persistence ----------*- C++ -*-===//
///
/// \file
/// Binary persistence of the ItemSetGraph — the piece that lets the §5/§6
/// incremental machinery outlive a process. Two on-disk encodings share
/// the same logical content (kernels, sorted transitions, action labels,
/// reductions, frontier states, stats):
///
///   * v1 (save/load): the ByteStream varint encoding — dense, decoded
///     record by record into owned storage;
///   * v2 (saveV2/adoptV2/loadV2): the FlatSection struct-of-arrays
///     layout — fixed-width little-endian records at natural alignment,
///     addressed through an offset table. adoptV2 is the zero-copy path:
///     after bounds/kind validation it patches transition target indices
///     into pointers in place (the backing mapping is copy-on-write) and
///     hands every item set borrowed spans of the mapped region — zero
///     per-record decode, zero per-set allocation. loadV2 is the decode
///     fallback for stale snapshots whose symbol/rule ids must be
///     remapped onto the live grammar.
///
/// Dead sets are dropped on save: they are only kept in the arena so stale
/// parser-stack pointers stay valid, and no pointer survives a process
/// boundary. Live sets are written in creation order with dense indices,
/// so serializing the same graph twice — in any build type, on any
/// platform — yields identical bytes (the determinism CI job's contract).
///
/// The id maps are supplied by the caller (core/Snapshot.cpp), which
/// guarantees every snapshot rule is interned in the live grammar before
/// load() runs — including retired rules that dirty kernels still mention.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_GRAPHSNAPSHOT_H
#define IPG_LR_GRAPHSNAPSHOT_H

#include "lr/ItemSetGraph.h"
#include "support/ByteStream.h"
#include "support/Expected.h"
#include "support/FlatSection.h"

#include <memory>

namespace ipg {

class MappedFile;

/// Namespaced entry points for graph persistence; a class (not free
/// functions) so ItemSetGraph/ItemSet can befriend it wholesale.
class GraphSnapshot {
public:
  /// Serializes the live part of \p Graph (sets, frontier, stats) into
  /// \p Writer using the graph's own symbol/rule ids (`ipg-snap-v1`
  /// GRPH section body).
  static void save(const ItemSetGraph &Graph, ByteWriter &Writer);

  /// Rebuilds \p Graph from a section body written by save(). \p SymbolMap
  /// and \p RuleMap translate snapshot-local ids to the live grammar's
  /// (every entry must be valid for the live grammar). Returns the number
  /// of sets materialized. On error the graph is left partially built —
  /// call reset() before using it again.
  static Expected<size_t> load(ByteReader &Reader, ItemSetGraph &Graph,
                               const std::vector<SymbolId> &SymbolMap,
                               const std::vector<RuleId> &RuleMap);

  /// Serializes the live part of \p Graph as an `ipg-snap-v2` GRPH
  /// section body into \p Section (which must be empty; offsets are
  /// relative to its start, the caller places it 8-aligned in the file).
  static void saveV2(const ItemSetGraph &Graph, FlatWriter &Section);

  /// Zero-copy adoption of a v2 GRPH section whose symbol/rule ids equal
  /// the live grammar's (layout-fingerprint match): validates the layout,
  /// patches transition target indices into pointers inside the mapped
  /// region, and points the item sets at borrowed spans. \p SectionData
  /// must live inside \p Backing, whose private mapping absorbs the
  /// patches; \p Backing is retained by the graph until reset/reload.
  /// Performs no per-set allocation. Unlike load()/loadV2(), does NOT
  /// check cross-set kernel uniqueness: that needs a hash set — exactly
  /// the per-set allocation this path exists to avoid — so an in-range
  /// corruption colliding two kernels is adopted rather than rejected
  /// (core/Snapshot.h trust model; the decode paths still reject it).
  /// On error the graph is left partially built — call reset().
  static Expected<size_t> adoptV2(uint8_t *SectionData, size_t SectionBytes,
                                  ItemSetGraph &Graph,
                                  std::shared_ptr<const MappedFile> Backing);

  /// Decode fallback for v2 sections that need id remapping (stale
  /// snapshots): reads the flat records field by field (endian-safe on
  /// any host) into owned storage, like load() does for v1. Same error
  /// contract.
  static Expected<size_t> loadV2(FlatView Section, ItemSetGraph &Graph,
                                 const std::vector<SymbolId> &SymbolMap,
                                 const std::vector<RuleId> &RuleMap);

  /// True when this host can run adoptV2 (64-bit little-endian with
  /// in-memory record layouts matching the on-disk ones); otherwise
  /// fingerprint-matched v2 loads must fall back to loadV2 with identity
  /// id maps.
  static bool hostCanAdoptV2();

  /// Returns \p Graph to its freshly-constructed state: a one-node graph
  /// holding only the start kernel of the current grammar.
  static void reset(ItemSetGraph &Graph);
};

} // namespace ipg

#endif // IPG_LR_GRAPHSNAPSHOT_H
