//===- lr/GraphSnapshot.h - Item-set graph persistence ----------*- C++ -*-===//
///
/// \file
/// Binary persistence of the ItemSetGraph — the piece that lets the §5/§6
/// incremental machinery outlive a process. Two on-disk encodings share
/// the same logical content (kernels, sorted transitions, action labels,
/// reductions, frontier states, stats):
///
///   * v1 (save/load): the ByteStream varint encoding — dense, dead sets
///     dropped and live ids compacted, decoded record by record into the
///     graph's pools;
///   * v2 (saveV2/adoptV2/loadV2): the FlatSection struct-of-arrays
///     layout. Since the flat-arena refactor the live graph's pools ARE
///     this layout (GrphHeader.Reserved == 1, the *flat-arena* layout):
///     saveV2 writes the header and then memcpys the pools — set records,
///     kernel items, transition targets, labels, reductions, accept rules
///     — verbatim, tombstoned Dead records and abandoned spans included,
///     so no dense-index remap happens and serializing the same graph
///     twice yields identical bytes (the determinism CI contract, now
///     strengthened to save-after-load == original). adoptV2 is the
///     zero-copy inverse: after a read-only validation sweep it memcpys
///     the 52-byte set records into the graph's set pool and points the
///     five data pools' base segments at the mapped arrays — no pointer
///     fixup, no per-record decode, no write to the mapping at all.
///     loadV2 is the decode fallback for stale snapshots whose
///     symbol/rule ids must be remapped onto the live grammar; it also
///     decodes the pre-refactor layout (Reserved == 0, 48-byte records
///     with embedded 16-byte transition records) so old snapshot files
///     keep loading.
///
/// The id maps are supplied by the caller (core/Snapshot.cpp), which
/// guarantees every snapshot rule is interned in the live grammar before
/// load() runs — including retired rules that dirty kernels still mention.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_GRAPHSNAPSHOT_H
#define IPG_LR_GRAPHSNAPSHOT_H

#include "lr/ItemSetGraph.h"
#include "support/ByteStream.h"
#include "support/Expected.h"
#include "support/FlatSection.h"

#include <memory>

namespace ipg {

class MappedFile;

/// Namespaced entry points for graph persistence; a class (not free
/// functions) so ItemSetGraph/ItemSet can befriend it wholesale.
class GraphSnapshot {
public:
  /// Serializes the live part of \p Graph (sets, frontier, stats) into
  /// \p Writer using the graph's own symbol/rule ids (`ipg-snap-v1`
  /// GRPH section body).
  static void save(const ItemSetGraph &Graph, ByteWriter &Writer);

  /// Rebuilds \p Graph from a section body written by save(). \p SymbolMap
  /// and \p RuleMap translate snapshot-local ids to the live grammar's
  /// (every entry must be valid for the live grammar). Returns the number
  /// of sets materialized. On error the graph is left partially built —
  /// call reset() before using it again.
  static Expected<size_t> load(ByteReader &Reader, ItemSetGraph &Graph,
                               const std::vector<SymbolId> &SymbolMap,
                               const std::vector<RuleId> &RuleMap);

  /// Serializes \p Graph as an `ipg-snap-v2` GRPH section body (flat-arena
  /// layout) into \p Section (which must be empty; offsets are relative to
  /// its start, the caller places it 8-aligned in the file). The section
  /// body is the graph's pool bytes verbatim.
  static void saveV2(const ItemSetGraph &Graph, FlatWriter &Section);

  /// Zero-copy adoption of a flat-arena v2 GRPH section whose symbol/rule
  /// ids equal the live grammar's (layout-fingerprint match): validates
  /// the section read-only (shape, spans, kernel canonicity, label order,
  /// target liveness, a full reference-count cross-check against the
  /// incoming edges), then memcpys the set records into the graph's set
  /// pool and adopts the five data arrays as the pools' base segments.
  /// \p SectionData must live inside \p Backing, which is retained by the
  /// graph until reset/reload. The mapping is never written. Unlike
  /// load()/loadV2(), does NOT check cross-set kernel uniqueness: that
  /// needs a hash set — exactly the per-set allocation this path exists
  /// to avoid — so an in-range corruption colliding two kernels is
  /// adopted rather than rejected (core/Snapshot.h trust model; the
  /// decode paths still reject it). Validation precedes installation, so
  /// on error the graph is untouched. Rejects pre-refactor (Reserved==0)
  /// sections — route those to loadV2.
  static Expected<size_t> adoptV2(uint8_t *SectionData, size_t SectionBytes,
                                  ItemSetGraph &Graph,
                                  std::shared_ptr<const MappedFile> Backing);

  /// Decode fallback for v2 sections that need id remapping (stale
  /// snapshots) or come from the pre-refactor layout: reads the records
  /// field by field (endian-safe on any host) into the graph's pools,
  /// compacting abandoned span bytes but preserving Dead tombstones (the
  /// record index space is the transition target space). On error the
  /// graph is left partially built — call reset().
  static Expected<size_t> loadV2(FlatView Section, ItemSetGraph &Graph,
                                 const std::vector<SymbolId> &SymbolMap,
                                 const std::vector<RuleId> &RuleMap);

  /// True when this host can run adoptV2 (little-endian with the
  /// in-memory record layouts matching the on-disk ones); otherwise
  /// fingerprint-matched v2 loads must fall back to loadV2 with identity
  /// id maps.
  static bool hostCanAdoptV2();

  /// Returns \p Graph to its freshly-constructed state: a one-node graph
  /// holding only the start kernel of the current grammar.
  static void reset(ItemSetGraph &Graph);

private:
  /// Empties every pool and index of \p Graph (no start set is created).
  static void clearStorage(ItemSetGraph &Graph);
};

} // namespace ipg

#endif // IPG_LR_GRAPHSNAPSHOT_H
