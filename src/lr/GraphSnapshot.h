//===- lr/GraphSnapshot.h - Item-set graph persistence ----------*- C++ -*-===//
///
/// \file
/// Binary persistence of the ItemSetGraph — the piece that lets the §5/§6
/// incremental machinery outlive a process. save() serializes every live
/// set of items (kernel, transitions, reductions, the Dirty/Initial
/// frontier with its retained pre-modification history) plus the
/// ItemSetGraphStats; load() rebuilds the pointer-based structure from the
/// flat form, remapping the snapshot's symbol and rule ids onto the live
/// grammar's and re-deriving reference counts and the kernel hash index.
///
/// Dead sets are dropped on save: they are only kept in the arena so stale
/// parser-stack pointers stay valid, and no pointer survives a process
/// boundary. Live sets are written in creation order with dense indices,
/// so serializing the same graph twice — in any build type, on any
/// platform — yields identical bytes (the determinism CI job's contract).
///
/// The id maps are supplied by the caller (core/Snapshot.cpp), which
/// guarantees every snapshot rule is interned in the live grammar before
/// load() runs — including retired rules that dirty kernels still mention.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_GRAPHSNAPSHOT_H
#define IPG_LR_GRAPHSNAPSHOT_H

#include "lr/ItemSetGraph.h"
#include "support/ByteStream.h"
#include "support/Expected.h"

namespace ipg {

/// Namespaced entry points for graph persistence; a class (not free
/// functions) so ItemSetGraph/ItemSet can befriend it wholesale.
class GraphSnapshot {
public:
  /// Serializes the live part of \p Graph (sets, frontier, stats) into
  /// \p Writer using the graph's own symbol/rule ids.
  static void save(const ItemSetGraph &Graph, ByteWriter &Writer);

  /// Rebuilds \p Graph from a section body written by save(). \p SymbolMap
  /// and \p RuleMap translate snapshot-local ids to the live grammar's
  /// (every entry must be valid for the live grammar). Returns the number
  /// of sets materialized. On error the graph is left partially built —
  /// call reset() before using it again.
  static Expected<size_t> load(ByteReader &Reader, ItemSetGraph &Graph,
                               const std::vector<SymbolId> &SymbolMap,
                               const std::vector<RuleId> &RuleMap);

  /// Returns \p Graph to its freshly-constructed state: a one-node graph
  /// holding only the start kernel of the current grammar.
  static void reset(ItemSetGraph &Graph);
};

} // namespace ipg

#endif // IPG_LR_GRAPHSNAPSHOT_H
