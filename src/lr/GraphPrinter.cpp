//===- lr/GraphPrinter.cpp - Render graphs of item sets -------------------===//

#include "lr/GraphPrinter.h"

using namespace ipg;

static const char *stateMarker(ItemSetState State) {
  switch (State) {
  case ItemSetState::Initial:
    return "\xE2\x97\x8B initial"; // ○
  case ItemSetState::Complete:
    return "\xE2\x97\x8F complete"; // ●
  case ItemSetState::Dirty:
    return "\xE2\x97\x90 dirty"; // ◐
  case ItemSetState::Dead:
    return "\xE2\x9C\x9D dead"; // ✝
  }
  return "?";
}

std::string ipg::itemSetToString(const ItemSet &State, const Grammar &G) {
  std::string Text = "[" + std::to_string(State.id()) + "] " +
                     stateMarker(State.state()) +
                     " (refcount " + std::to_string(State.refCount()) + ")\n";
  for (const Item &I : State.kernel())
    Text += "  " + itemToString(I, G) + "\n";
  if (!State.isComplete())
    return Text;
  for (const ItemSet::Transition &T : State.transitions())
    Text += "  --" + G.symbols().name(T.Label) + "--> " +
            std::to_string(T.Target->id()) + "\n";
  for (RuleId Rule : State.reductions())
    Text += "  reduce " + G.ruleToString(Rule) + "\n";
  if (State.isAccepting())
    Text += "  --$--> accept\n";
  return Text;
}

std::string ipg::graphToString(const ItemSetGraph &Graph) {
  std::string Text;
  for (const ItemSet *State : Graph.liveSets())
    Text += itemSetToString(*State, Graph.grammar());
  return Text;
}
