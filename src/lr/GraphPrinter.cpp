//===- lr/GraphPrinter.cpp - Render graphs of item sets -------------------===//

#include "lr/GraphPrinter.h"

using namespace ipg;

static const char *stateMarker(ItemSetState State) {
  switch (State) {
  case ItemSetState::Initial:
    return "\xE2\x97\x8B initial"; // ○
  case ItemSetState::Complete:
    return "\xE2\x97\x8F complete"; // ●
  case ItemSetState::Dirty:
    return "\xE2\x97\x90 dirty"; // ◐
  case ItemSetState::Dead:
    return "\xE2\x9C\x9D dead"; // ✝
  }
  return "?";
}

std::string ipg::itemSetToString(const ItemSet &State,
                                 const ItemSetGraph &Graph) {
  const Grammar &G = Graph.grammar();
  // Built up with += (not one operator+ chain): GCC 12's -Wrestrict
  // misfires on the temporary-reusing rvalue overloads at -O3.
  std::string Text = "[";
  Text += std::to_string(State.id());
  Text += "] ";
  Text += stateMarker(State.state());
  Text += " (refcount ";
  Text += std::to_string(State.refCount());
  Text += ")\n";
  for (const Item &I : Graph.kernel(&State))
    Text += "  " + itemToString(I, G) + "\n";
  if (!State.isComplete())
    return Text;
  for (ItemSet::Transition T : Graph.transitions(&State))
    Text += "  --" + G.symbols().name(T.Label) + "--> " +
            std::to_string(T.Target->id()) + "\n";
  for (RuleId Rule : Graph.reductions(&State))
    Text += "  reduce " + G.ruleToString(Rule) + "\n";
  if (State.isAccepting())
    Text += "  --$--> accept\n";
  return Text;
}

std::string ipg::graphToString(const ItemSetGraph &Graph) {
  std::string Text;
  for (const ItemSet *State : Graph.liveSets())
    Text += itemSetToString(*State, Graph);
  return Text;
}
