//===- lr/ItemSetGraph.h - The graph of item sets ---------------*- C++ -*-===//
///
/// \file
/// The graph of item sets underlying both the parse table and the parsing
/// states (§4), together with the three generation disciplines of the paper:
///
///   * conventional (§4): generateAll() expands every reachable set up
///     front — the "PG" baseline;
///   * lazy (§5): actions() EXPANDs the queried set on demand, so parsing
///     can start against a one-node graph;
///   * incremental (§6): addRule()/removeRule() run MODIFY, re-marking the
///     sets whose closure the change invalidates as Dirty; the lazy
///     machinery RE-EXPANDs them when the parser next needs them, and
///     reference counting (DECR-REFCOUNT) reclaims orphaned sets. A
///     mark-and-sweep collector backs up the reference counts for cyclic
///     regions — the future work noted at the end of §6.2.
///
/// ACTION and GOTO (§3/§4) are methods here because the lazy generator needs
/// the kernel fields during parsing, so a detached tabular copy would not
/// suffice (§4, "we shall not use these parse tables further").
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_ITEMSETGRAPH_H
#define IPG_LR_ITEMSETGRAPH_H

#include "lr/ItemSet.h"
#include "support/Concurrency.h"

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ipg {

class MappedFile;

/// One entry of an ACTION(state, symbol) result set (§3.1). LR-PARSE
/// requires at most one; PAR-PARSE handles any number.
struct LrAction {
  enum KindType : uint8_t { Shift, Reduce, Accept } Kind;
  /// Shift target (Kind == Shift).
  ItemSet *Target = nullptr;
  /// Reduced rule (Kind == Reduce).
  RuleId Rule = InvalidRule;

  static LrAction shift(ItemSet *Target) { return {Shift, Target, InvalidRule}; }
  static LrAction reduce(RuleId Rule) { return {Reduce, nullptr, Rule}; }
  static LrAction accept() { return {Accept, nullptr, InvalidRule}; }

  bool operator==(const LrAction &O) const {
    return Kind == O.Kind && Target == O.Target && Rule == O.Rule;
  }
};

/// Allocation-free ACTION(state, symbol) result (§3.1/§5): a view over the
/// queried set's reduction array plus the unique shift target and the
/// accept flag. Building one performs zero heap allocations; iteration
/// order matches ItemSetGraph::actions() (reductions first, then shift,
/// then accept). The view borrows from the *queried set's* storage: it
/// stays valid until that set is re-expanded or the graph is reloaded —
/// expansion of other sets (including concurrent expansion by another
/// session in shared mode) never invalidates it.
class LrActionsView {
public:
  LrActionsView() = default;
  LrActionsView(const RuleId *ReduceBegin, const RuleId *ReduceEnd,
                ItemSet *Shift, bool Accept)
      : ReduceBegin(ReduceBegin), ReduceEnd(ReduceEnd), Shift(Shift),
        Accept(Accept) {}

  size_t numReductions() const {
    return static_cast<size_t>(ReduceEnd - ReduceBegin);
  }
  const RuleId *reduceBegin() const { return ReduceBegin; }
  const RuleId *reduceEnd() const { return ReduceEnd; }

  /// The shift target, or nullptr when the symbol cannot be shifted.
  ItemSet *shiftTarget() const { return Shift; }

  /// True when the paper's ($ accept) applies (symbol was the end marker).
  bool accepts() const { return Accept; }

  size_t size() const {
    return numReductions() + (Shift != nullptr ? 1 : 0) + (Accept ? 1 : 0);
  }
  bool empty() const { return size() == 0; }

  /// Invokes \p Fn(const LrAction &) for every action, in actions() order.
  /// The LrAction values are materialized on the stack — no allocation.
  template <typename FnT> void forEach(FnT &&Fn) const {
    for (const RuleId *Rule = ReduceBegin; Rule != ReduceEnd; ++Rule)
      Fn(LrAction::reduce(*Rule));
    if (Shift != nullptr)
      Fn(LrAction::shift(Shift));
    if (Accept)
      Fn(LrAction::accept());
  }

private:
  const RuleId *ReduceBegin = nullptr;
  const RuleId *ReduceEnd = nullptr;
  ItemSet *Shift = nullptr;
  bool Accept = false;
};

/// Counters for the measurements of §7 and the ablation benches. This is
/// the *snapshot* type handed out by ItemSetGraph::stats(); internally the
/// graph accumulates into sharded relaxed-atomic cells
/// (support/Concurrency.h) so reader threads of a shared graph never
/// write-share a cache line. Values are exact for single-threaded use and
/// statistically accurate under concurrency.
struct ItemSetGraphStats {
  uint64_t Expansions = 0;    ///< EXPAND calls (including re-expansions).
  uint64_t ReExpansions = 0;  ///< EXPANDs of Dirty sets.
  uint64_t ClosureItems = 0;  ///< Items produced by CLOSURE.
  uint64_t DirtyMarks = 0;    ///< Sets invalidated by MODIFY.
  uint64_t Collected = 0;     ///< Sets reclaimed (refcount or mark-sweep).
  uint64_t GotoCalls = 0;     ///< gotoState invocations (Appendix A probe).
};

/// The graph of item sets; owns its item sets for its whole lifetime.
///
/// Threading model. A graph starts in exclusive mode: every member may be
/// called from one thread, nothing locks. beginConcurrent() switches it to
/// *shared mode* — the state a grammar server epoch publishes in — with a
/// read-mostly discipline:
///
///   * Queries against Complete sets (actionsView, gotoState,
///     forEachAction, ensureComplete's fast path) take no locks: one
///     acquire load of the set's lifecycle flag, paired with the release
///     publication at the end of EXPAND.
///   * EXPAND/RE-EXPAND of Initial/Dirty sets takes the expansion gate
///     shared plus a per-set striped mutex; a loser racing an expansion
///     blocks on the stripe and then adopts the winner's published set.
///     Structural shared state (the set pools, the kernel index,
///     reference counts) is touched only under StructureMutex.
///   * Grammar modification (addRule/removeRule), generateAll,
///     collectGarbage and the other whole-graph walks are *not* shared-
///     mode operations: a server MODIFY forks a copy-on-write successor
///     graph (FreezeGuard + lr/GraphSnapshot.h), edits it privately, and
///     publishes it as a new epoch. In-flight parses finish against the
///     epoch they pinned — within an epoch a Complete set never reverts,
///     which is what makes the lock-free read path sound.
class ItemSetGraph {
public:
  /// GENERATE-PARSER of §5: creates only the start set of items, with
  /// kernel {START ::= •β | START ::= β ∈ Grammar}.
  explicit ItemSetGraph(Grammar &G);

  ItemSetGraph(const ItemSetGraph &) = delete;
  ItemSetGraph &operator=(const ItemSetGraph &) = delete;

  Grammar &grammar() { return G; }
  const Grammar &grammar() const { return G; }

  /// The state in which parsing starts (root of the graph).
  ItemSet *startSet() { return Start; }

  /// §4 GENERATE-PARSER: expands item sets until none is Initial/Dirty.
  /// Returns the number of complete sets.
  size_t generateAll();

  /// ACTION(state, symbol) of §5: expands \p State if needed, then returns
  /// the actions for terminal \p Symbol. An empty result is the error
  /// action. Compatibility wrapper over actionsView() — it allocates the
  /// result vector; steady-state callers (the parser drivers) should use
  /// actionsView()/forEachAction() instead.
  std::vector<LrAction> actions(ItemSet *State, SymbolId Symbol);

  /// Allocation-free ACTION: expands \p State if needed, then returns a
  /// view of the actions for terminal \p Symbol (valid until the next
  /// expansion or modification of the graph). The steady-state query cost
  /// is one binary search over the set's action index plus two flag reads.
  LrActionsView actionsView(ItemSet *State, SymbolId Symbol);

  /// Allocation-free ACTION iteration: invokes \p Fn(const LrAction &) for
  /// each action of (\p State, \p Symbol), in actions() order.
  template <typename FnT>
  void forEachAction(ItemSet *State, SymbolId Symbol, FnT &&Fn) {
    actionsView(State, Symbol).forEach(std::forward<FnT>(Fn));
  }

  /// GOTO(state, symbol): the target of the unique transition on
  /// nonterminal \p Symbol, found by binary search over the action index.
  /// \p State must be complete and the transition must exist — guaranteed
  /// for (PAR-)PARSE by the invariant proved in Appendix A; a violation is
  /// a hard failure (abort) in every build type, because falling through
  /// under NDEBUG would hand the caller a null state to dereference.
  ItemSet *gotoState(ItemSet *State, SymbolId Symbol);

  /// EXPAND / RE-EXPAND \p State if it is not Complete.
  void ensureComplete(ItemSet *State);

  /// CLOSURE of §4, exposed for tests and the LALR generator.
  std::vector<Item> closure(KernelView K) const;

  /// ADD-RULE (§6): adds the rule to the grammar and updates the graph.
  /// Returns false if the rule was already present (no change).
  bool addRule(SymbolId Lhs, std::vector<SymbolId> Rhs);

  /// DELETE-RULE (§6): removes the rule and updates the graph. Returns
  /// false if no such rule was active.
  bool removeRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs);

  /// Mark-and-sweep collection from the start set; reclaims cyclic garbage
  /// the reference counts cannot (§6.2). Returns the number of sets
  /// reclaimed.
  size_t collectGarbage();

  /// Live (non-Dead) sets, in creation order. Invalidated by expansion.
  std::vector<const ItemSet *> liveSets() const;

  /// Number of live sets in the given state.
  size_t countByState(ItemSetState S) const;

  /// Number of live complete sets — the "generated part" of the table.
  size_t numComplete() const { return countByState(ItemSetState::Complete); }

  /// Total live sets.
  size_t numLive() const;

  /// Looks up a live set of items by kernel; nullptr if absent.
  ItemSet *findByKernel(KernelView K);

  /// Switches the graph into shared (concurrent) mode; see the class
  /// comment. Called by the grammar server after an epoch's graph is fully
  /// constructed/repaired and before it is published — never the other
  /// way: once shared, a graph stays shared, and grammar modification on
  /// it is a contract violation (asserted).
  void beginConcurrent() { Concurrent = true; }
  bool isConcurrent() const { return Concurrent; }

  /// Blocks new EXPANDs and waits out in-flight ones for the guard's
  /// lifetime — the quiescence window in which a COW fork serializes this
  /// graph (GraphSnapshot::saveV2). Queries against already-Complete sets
  /// proceed unhindered: parsing threads only stall if they need a set
  /// expanded while the freeze holds. Meaningful for shared-mode graphs;
  /// in exclusive mode EXPAND takes no gate, so there is nothing to
  /// freeze.
  class [[nodiscard]] FreezeGuard {
  public:
    explicit FreezeGuard(ItemSetGraph &Graph) : Gate(Graph.ExpandGate) {}

  private:
    std::unique_lock<std::shared_mutex> Gate;
  };

  /// A by-value snapshot of the sharded counters (see ItemSetGraphStats).
  ItemSetGraphStats stats() const {
    ItemSetGraphStats S;
    S.Expansions = Stats.total(ScExpansions);
    S.ReExpansions = Stats.total(ScReExpansions);
    S.ClosureItems = Stats.total(ScClosureItems);
    S.DirtyMarks = Stats.total(ScDirtyMarks);
    S.Collected = Stats.total(ScCollected);
    S.GotoCalls = Stats.total(ScGotoCalls);
    return S;
  }
  void resetStats() { storeStats(ItemSetGraphStats()); }

private:
  /// GraphSnapshot (lr/GraphSnapshot.h) rebuilds Pool/ByKernel/Start/Stats
  /// wholesale when loading a persisted graph.
  friend class GraphSnapshot;

  /// Total sets ever created (dense id space: adopted block first, then
  /// the growth pool).
  size_t numSets() const { return Adopted.size() + Pool.size(); }
  ItemSet &setAt(size_t I) {
    return I < Adopted.size() ? Adopted[I] : Pool[I - Adopted.size()];
  }
  const ItemSet &setAt(size_t I) const {
    return I < Adopted.size() ? Adopted[I] : Pool[I - Adopted.size()];
  }

  /// Named indices into the sharded stats counters.
  enum StatCounter : size_t {
    ScExpansions,
    ScReExpansions,
    ScClosureItems,
    ScDirtyMarks,
    ScCollected,
    ScGotoCalls,
    ScNumCounters
  };

  /// Restores persisted counter values (snapshot loads, resetStats).
  void storeStats(const ItemSetGraphStats &S) {
    Stats.store(ScExpansions, S.Expansions);
    Stats.store(ScReExpansions, S.ReExpansions);
    Stats.store(ScClosureItems, S.ClosureItems);
    Stats.store(ScDirtyMarks, S.DirtyMarks);
    Stats.store(ScCollected, S.Collected);
    Stats.store(ScGotoCalls, S.GotoCalls);
  }

  /// StructureMutex when shared, nothing when exclusive: the lock guard
  /// around every access to Pool/Adopted growth, ByKernel, kernel-storage
  /// materialization and reference counts.
  std::unique_lock<std::mutex> structureLock() const {
    return Concurrent ? std::unique_lock<std::mutex>(StructureMutex)
                      : std::unique_lock<std::mutex>();
  }

  /// Populates ByKernel from the live sets if a zero-copy snapshot load
  /// deferred it. Every ByKernel consumer calls this first. Caller holds
  /// StructureMutex in shared mode.
  void ensureKernelIndex();

  /// Per-expansion scratch buffers (one set per thread; ItemSetGraph.cpp).
  struct ExpandScratch;

  ItemSet *makeItemSet(Kernel K);
  /// findByKernel without the structure lock; expansion's inner loop,
  /// which already holds it.
  ItemSet *findByKernelLocked(KernelView K);
  /// CLOSURE into \p Out (cleared first): the allocation-reusing worker
  /// behind the public closure(). Genuinely read-only on the graph — all
  /// mutable state lives in the caller-provided scratch.
  void closureInto(KernelView K, ExpandScratch &S,
                   std::vector<Item> &Out) const;
  void expand(ItemSet *State);
  void addTransition(ItemSet *From, SymbolId Label, ItemSet *To);
  void decrRefCount(ItemSet *State);
  void markDirty(ItemSet *State);
  void unlinkFromIndex(ItemSet *State);
  void modify(SymbolId Lhs);
  Kernel startKernel() const;

  Grammar &G;
  /// Sets adopted wholesale from an `ipg-snap-v2` snapshot: one contiguous
  /// block, sized exactly at load, never resized afterwards (so pointers
  /// stay stable). Empty unless the graph was warm-started zero-copy.
  std::vector<ItemSet> Adopted;
  /// Sets created one by one (EXPAND, v1 loads); deque for stable
  /// pointers under growth. Ids continue after the adopted block.
  std::deque<ItemSet> Pool;
  std::unordered_map<uint64_t, std::vector<ItemSet *>> ByKernel;
  /// False after a zero-copy adoption until the first ByKernel consumer
  /// rebuilds the index — pure queries against a fully complete adopted
  /// graph never need it. Atomic once-flag: the built index is published
  /// with a release store so an unlocked exclusive-mode reader that sees
  /// `true` also sees the buckets (shared-mode consumers additionally
  /// hold StructureMutex, which makes the build itself race-free).
  std::atomic<bool> KernelIndexReady{true};
  /// Keeps the mapped snapshot region alive while adopted sets borrow
  /// spans from it. Released on reset()/re-load. In a server this is the
  /// COW fork's in-memory serialization of the predecessor epoch.
  std::shared_ptr<const MappedFile> BorrowedStorage;
  ItemSet *Start = nullptr;
  ShardedCounters<ScNumCounters> Stats;

  // Shared-mode machinery; see the class comment. All no-ops while
  // Concurrent is false, so exclusive-mode graphs pay nothing but the
  // predictable branch.
  bool Concurrent = false;
  /// Held shared by every EXPAND, exclusive by FreezeGuard (COW forks).
  mutable std::shared_mutex ExpandGate;
  /// Per-set expansion publication locks, striped by set id.
  StripedMutexes<64> ExpandStripes;
  /// Guards Pool/Adopted growth, ByKernel, kernel-storage mutation
  /// (materializeOwned) and all RefCount arithmetic in shared mode.
  mutable std::mutex StructureMutex;
};

} // namespace ipg

#endif // IPG_LR_ITEMSETGRAPH_H
