//===- lr/ItemSetGraph.h - The graph of item sets ---------------*- C++ -*-===//
///
/// \file
/// The graph of item sets underlying both the parse table and the parsing
/// states (§4), together with the three generation disciplines of the paper:
///
///   * conventional (§4): generateAll() expands every reachable set up
///     front — the "PG" baseline;
///   * lazy (§5): actions() EXPANDs the queried set on demand, so parsing
///     can start against a one-node graph;
///   * incremental (§6): addRule()/removeRule() run MODIFY, re-marking the
///     sets whose closure the change invalidates as Dirty; the lazy
///     machinery RE-EXPANDs them when the parser next needs them, and
///     reference counting (DECR-REFCOUNT) reclaims orphaned sets. A
///     mark-and-sweep collector backs up the reference counts for cyclic
///     regions — the future work noted at the end of §6.2.
///
/// ACTION and GOTO (§3/§4) are methods here because the lazy generator needs
/// the kernel fields during parsing, so a detached tabular copy would not
/// suffice (§4, "we shall not use these parse tables further").
///
/// Storage: the graph IS the `ipg-snap-v2` snapshot. Six append-only flat
/// pools (support/PoolArena.h) hold the 52-byte set records, kernel items,
/// transition targets, transition labels, reductions and accept rules;
/// every ItemSet is a record of spans into them. EXPAND appends, MODIFY
/// moves span offsets, save memcpys the pools, and a mapped snapshot's
/// pools are adopted as the graph's own base segments — one storage story
/// for cold, warm and forked graphs. Pool elements never move, so
/// `ItemSet *` and every span handed out stay valid across unbounded
/// growth (the GSS and concurrent-reader stability contract).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_ITEMSETGRAPH_H
#define IPG_LR_ITEMSETGRAPH_H

#include "lr/ItemSet.h"
#include "support/ArrayView.h"
#include "support/Concurrency.h"
#include "support/PoolArena.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ipg {

class MappedFile;

/// One entry of an ACTION(state, symbol) result set (§3.1). LR-PARSE
/// requires at most one; PAR-PARSE handles any number.
struct LrAction {
  enum KindType : uint8_t { Shift, Reduce, Accept } Kind;
  /// Shift target (Kind == Shift).
  ItemSet *Target = nullptr;
  /// Reduced rule (Kind == Reduce).
  RuleId Rule = InvalidRule;

  static LrAction shift(ItemSet *Target) { return {Shift, Target, InvalidRule}; }
  static LrAction reduce(RuleId Rule) { return {Reduce, nullptr, Rule}; }
  static LrAction accept() { return {Accept, nullptr, InvalidRule}; }

  bool operator==(const LrAction &O) const {
    return Kind == O.Kind && Target == O.Target && Rule == O.Rule;
  }
};

/// Allocation-free ACTION(state, symbol) result (§3.1/§5): a view over the
/// queried set's reduction span plus the unique shift target and the
/// accept flag. Building one performs zero heap allocations; iteration
/// order is fixed (reductions first, then shift,
/// then accept). The view borrows from the graph's pools: it stays valid
/// until the queried set is re-expanded or the graph is reloaded —
/// expansion of other sets (including concurrent expansion by another
/// session in shared mode) never invalidates it, because pool elements
/// never move.
class LrActionsView {
public:
  LrActionsView() = default;
  LrActionsView(const RuleId *ReduceBegin, const RuleId *ReduceEnd,
                ItemSet *Shift, bool Accept)
      : ReduceBegin(ReduceBegin), ReduceEnd(ReduceEnd), Shift(Shift),
        Accept(Accept) {}

  size_t numReductions() const {
    return static_cast<size_t>(ReduceEnd - ReduceBegin);
  }
  const RuleId *reduceBegin() const { return ReduceBegin; }
  const RuleId *reduceEnd() const { return ReduceEnd; }

  /// The shift target, or nullptr when the symbol cannot be shifted.
  ItemSet *shiftTarget() const { return Shift; }

  /// True when the paper's ($ accept) applies (symbol was the end marker).
  bool accepts() const { return Accept; }

  size_t size() const {
    return numReductions() + (Shift != nullptr ? 1 : 0) + (Accept ? 1 : 0);
  }
  bool empty() const { return size() == 0; }

  /// Invokes \p Fn(const LrAction &) for every action, in actions() order.
  /// The LrAction values are materialized on the stack — no allocation.
  template <typename FnT> void forEach(FnT &&Fn) const {
    for (const RuleId *Rule = ReduceBegin; Rule != ReduceEnd; ++Rule)
      Fn(LrAction::reduce(*Rule));
    if (Shift != nullptr)
      Fn(LrAction::shift(Shift));
    if (Accept)
      Fn(LrAction::accept());
  }

private:
  const RuleId *ReduceBegin = nullptr;
  const RuleId *ReduceEnd = nullptr;
  ItemSet *Shift = nullptr;
  bool Accept = false;
};

/// A lazily-materializing view over one set's transition span: the pool
/// stores 4-byte target indices parallel to 4-byte labels; iterating (or
/// indexing) yields by-value ItemSet::Transition records, so loop bodies
/// keep their `T.Label` / `T.Target` shape with zero allocation and
/// 8 bytes of pool traffic per edge.
class TransitionRange {
public:
  class Iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = ItemSet::Transition;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = ItemSet::Transition;

    Iterator(const SymbolId *Labels, const uint32_t *Targets, ItemSet *Base)
        : Labels(Labels), Targets(Targets), Base(Base) {}
    ItemSet::Transition operator*() const {
      return ItemSet::Transition{*Labels, Base + *Targets};
    }
    Iterator &operator++() {
      ++Labels;
      ++Targets;
      return *this;
    }
    Iterator operator++(int) {
      Iterator Old = *this;
      ++*this;
      return Old;
    }
    bool operator==(const Iterator &O) const { return Targets == O.Targets; }
    bool operator!=(const Iterator &O) const { return Targets != O.Targets; }

  private:
    const SymbolId *Labels;
    const uint32_t *Targets;
    ItemSet *Base;
  };

  TransitionRange() = default;
  TransitionRange(const SymbolId *Labels, const uint32_t *Targets,
                  ItemSet *Base, size_t Len)
      : Labels(Labels), Targets(Targets), Base(Base), Len(Len) {}

  Iterator begin() const { return Iterator(Labels, Targets, Base); }
  Iterator end() const { return Iterator(Labels + Len, Targets + Len, Base); }
  size_t size() const { return Len; }
  bool empty() const { return Len == 0; }
  ItemSet::Transition operator[](size_t I) const {
    return ItemSet::Transition{Labels[I], Base + Targets[I]};
  }

private:
  const SymbolId *Labels = nullptr;
  const uint32_t *Targets = nullptr;
  ItemSet *Base = nullptr;
  size_t Len = 0;
};

/// Counters for the measurements of §7 and the ablation benches. This is
/// the *snapshot* type handed out by ItemSetGraph::stats(); internally the
/// graph accumulates into sharded relaxed-atomic cells
/// (support/Concurrency.h) so reader threads of a shared graph never
/// write-share a cache line. Values are exact for single-threaded use and
/// statistically accurate under concurrency.
struct ItemSetGraphStats {
  uint64_t Expansions = 0;    ///< EXPAND calls (including re-expansions).
  uint64_t ReExpansions = 0;  ///< EXPANDs of Dirty sets.
  uint64_t ClosureItems = 0;  ///< Items produced by CLOSURE.
  uint64_t DirtyMarks = 0;    ///< Sets invalidated by MODIFY.
  uint64_t Collected = 0;     ///< Sets reclaimed (refcount or mark-sweep).
  uint64_t GotoCalls = 0;     ///< gotoState invocations (Appendix A probe).
};

/// The graph of item sets; owns its item sets for its whole lifetime.
///
/// Threading model. A graph starts in exclusive mode: every member may be
/// called from one thread, nothing locks. beginConcurrent() switches it to
/// *shared mode* — the state a grammar server epoch publishes in — with a
/// read-mostly discipline:
///
///   * Queries against Complete sets (actionsView, gotoState,
///     forEachAction, ensureComplete's fast path) take no locks: one
///     acquire load of the set's lifecycle flag, paired with the release
///     publication at the end of EXPAND. Published pool bytes are never
///     rewritten or moved, so these reads race nothing.
///   * EXPAND/RE-EXPAND of Initial/Dirty sets takes the expansion gate
///     shared plus a per-set striped mutex; a loser racing an expansion
///     blocks on the stripe and then adopts the winner's published set.
///     Structural shared state (the pools' append ends, the kernel index,
///     reference counts) is touched only under StructureMutex.
///   * Grammar modification (addRule/removeRule), generateAll,
///     collectGarbage and the other whole-graph walks are *not* shared-
///     mode operations: a server MODIFY forks a copy-on-write successor
///     graph (FreezeGuard + lr/GraphSnapshot.h), edits it privately, and
///     publishes it as a new epoch. In-flight parses finish against the
///     epoch they pinned — within an epoch a Complete set never reverts,
///     which is what makes the lock-free read path sound.
class ItemSetGraph {
public:
  /// GENERATE-PARSER of §5: creates only the start set of items, with
  /// kernel {START ::= •β | START ::= β ∈ Grammar}.
  explicit ItemSetGraph(Grammar &G);

  ItemSetGraph(const ItemSetGraph &) = delete;
  ItemSetGraph &operator=(const ItemSetGraph &) = delete;

  Grammar &grammar() { return G; }
  const Grammar &grammar() const { return G; }

  /// The state in which parsing starts (root of the graph).
  ItemSet *startSet() { return Start; }

  //===--------------------------------------------------------------------===//
  // Record access: an ItemSet is spans into this graph's pools; the graph
  // resolves them. All views/ranges stay valid for the set's lifetime —
  // pool elements never move.
  //===--------------------------------------------------------------------===//

  /// The canonical kernel. The lazy generator keeps kernels even for
  /// complete sets: the incremental generator needs them again (§5.3).
  KernelView kernel(const ItemSet *State) const {
    return KernelView(Kernels.at(State->KernelOff), State->KernelLen);
  }

  /// Valid only when Complete. Sorted by label for binary search.
  TransitionRange transitions(const ItemSet *State) const {
    return TransitionRange(Labels.at(State->TransOff),
                           Trans.at(State->TransOff), SetsBase,
                           State->TransLen);
  }

  /// The transitions the set held before it was marked Dirty (§6.2).
  TransitionRange oldTransitions(const ItemSet *State) const {
    return TransitionRange(Labels.at(State->OldOff), Trans.at(State->OldOff),
                           SetsBase, State->OldLen);
  }

  /// Rules recognized completely in the state (valid only when Complete).
  ArrayView<RuleId> reductions(const ItemSet *State) const {
    return ArrayView<RuleId>(Reds.at(State->RedOff), State->RedLen);
  }

  /// The START rules completed in the state (nonempty iff isAccepting()).
  ArrayView<RuleId> acceptRules(const ItemSet *State) const {
    return ArrayView<RuleId>(Accs.at(State->AccOff), State->AccLen);
  }

  /// The ACTION/GOTO query index: the set's transition labels, a
  /// 4-byte-stride slice of the label pool parallel to the target slice.
  ArrayView<SymbolId> actionLabels(const ItemSet *State) const {
    return ArrayView<SymbolId>(Labels.at(State->TransOff), State->TransLen);
  }

  /// The target of the unique transition on \p Label, or nullptr when the
  /// set has none. O(log n) binary search over the label slice;
  /// allocation-free. Valid only while the set is Complete.
  ItemSet *transitionTarget(const ItemSet *State, SymbolId Label) const {
    const SymbolId *Begin = Labels.at(State->TransOff);
    const SymbolId *End = Begin + State->TransLen;
    const SymbolId *It = std::lower_bound(Begin, End, Label);
    if (It == End || *It != Label)
      return nullptr;
    return SetsBase + Trans.at(State->TransOff)[It - Begin];
  }

  //===--------------------------------------------------------------------===//
  // Generation, queries, modification (§4–§6).
  //===--------------------------------------------------------------------===//

  /// §4 GENERATE-PARSER: expands item sets until none is Initial/Dirty.
  /// Returns the number of complete sets.
  size_t generateAll();

  /// ACTION(state, symbol) of §5 — the allocation-free query and the only
  /// one: expands \p State if needed, then returns a view of the actions
  /// for terminal \p Symbol (valid until the next expansion or
  /// modification of that set). An empty view is the error action. The
  /// steady-state query cost is one binary search over the set's label
  /// slice plus two flag reads. (The PR-4-era vector-returning actions()
  /// compatibility wrapper is gone; materialize with forEach if a
  /// container is really wanted.)
  LrActionsView actionsView(ItemSet *State, SymbolId Symbol);

  /// Allocation-free ACTION iteration: invokes \p Fn(const LrAction &) for
  /// each action of (\p State, \p Symbol), in view order.
  template <typename FnT>
  void forEachAction(ItemSet *State, SymbolId Symbol, FnT &&Fn) {
    actionsView(State, Symbol).forEach(std::forward<FnT>(Fn));
  }

  /// GOTO(state, symbol): the target of the unique transition on
  /// nonterminal \p Symbol, found by binary search over the label slice.
  /// \p State must be complete and the transition must exist — guaranteed
  /// for (PAR-)PARSE by the invariant proved in Appendix A; a violation is
  /// a hard failure (abort) in every build type, because falling through
  /// under NDEBUG would hand the caller a null state to dereference.
  ItemSet *gotoState(ItemSet *State, SymbolId Symbol);

  /// EXPAND / RE-EXPAND \p State if it is not Complete.
  void ensureComplete(ItemSet *State);

  /// CLOSURE of §4, exposed for tests and the LALR generator.
  std::vector<Item> closure(KernelView K) const;

  /// ADD-RULE (§6): adds the rule to the grammar and updates the graph.
  /// Returns false if the rule was already present (no change).
  bool addRule(SymbolId Lhs, std::vector<SymbolId> Rhs);

  /// DELETE-RULE (§6): removes the rule and updates the graph. Returns
  /// false if no such rule was active.
  bool removeRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs);

  /// Mark-and-sweep collection from the start set; reclaims cyclic garbage
  /// the reference counts cannot (§6.2). Returns the number of sets
  /// reclaimed.
  size_t collectGarbage();

  /// Live (non-Dead) sets, in creation order. Invalidated by expansion.
  std::vector<const ItemSet *> liveSets() const;

  /// Total set records ever created — the dense id space (tombstones
  /// included). Ids are stable within a graph and preserved by the v2
  /// snapshot round trip.
  size_t numSetIds() const { return Sets.size(); }

  /// Resolves a persisted id back to its record; nullptr when out of
  /// range or tombstoned. The suspended-parse loader's
  /// (incremental/ParseSnapshot.h) id remap.
  ItemSet *setById(uint32_t Id) {
    if (Id >= Sets.size() || SetsBase[Id].isDead())
      return nullptr;
    return &SetsBase[Id];
  }

  /// Number of live sets in the given state.
  size_t countByState(ItemSetState S) const;

  /// Number of live complete sets — the "generated part" of the table.
  size_t numComplete() const { return countByState(ItemSetState::Complete); }

  /// Total live sets.
  size_t numLive() const;

  /// Number of set records installed by the last zero-copy snapshot
  /// adoption (0 for cold graphs): those sets' kernel/transition/rule
  /// spans resolve into the adopted mapping rather than this graph's own
  /// appends — the observable that replaces the old per-set borrowed flag.
  size_t numAdoptedSets() const { return AdoptedSets; }

  /// Looks up a live set of items by kernel; nullptr if absent.
  ItemSet *findByKernel(KernelView K);

  /// Switches the graph into shared (concurrent) mode; see the class
  /// comment. Called by the grammar server after an epoch's graph is fully
  /// constructed/repaired and before it is published — never the other
  /// way: once shared, a graph stays shared, and grammar modification on
  /// it is a contract violation (asserted).
  void beginConcurrent() { Concurrent = true; }
  bool isConcurrent() const { return Concurrent; }

  /// Blocks new EXPANDs and waits out in-flight ones for the guard's
  /// lifetime — the quiescence window in which a COW fork serializes this
  /// graph (GraphSnapshot::saveV2). Queries against already-Complete sets
  /// proceed unhindered: parsing threads only stall if they need a set
  /// expanded while the freeze holds. Meaningful for shared-mode graphs;
  /// in exclusive mode EXPAND takes no gate, so there is nothing to
  /// freeze.
  class [[nodiscard]] FreezeGuard {
  public:
    explicit FreezeGuard(ItemSetGraph &Graph) : Gate(Graph.ExpandGate) {}

  private:
    std::unique_lock<std::shared_mutex> Gate;
  };

  /// A by-value snapshot of the sharded counters (see ItemSetGraphStats).
  ItemSetGraphStats stats() const {
    ItemSetGraphStats S;
    S.Expansions = Stats.total(ScExpansions);
    S.ReExpansions = Stats.total(ScReExpansions);
    S.ClosureItems = Stats.total(ScClosureItems);
    S.DirtyMarks = Stats.total(ScDirtyMarks);
    S.Collected = Stats.total(ScCollected);
    S.GotoCalls = Stats.total(ScGotoCalls);
    return S;
  }
  void resetStats() { storeStats(ItemSetGraphStats()); }

private:
  /// GraphSnapshot (lr/GraphSnapshot.h) rebuilds the pools, the kernel
  /// index, Start and Stats wholesale when loading a persisted graph.
  friend class GraphSnapshot;

  // Pool reservations (element counts). Virtual address space only —
  // physical pages materialize on touch — so the headroom over any real
  // workload (12x-SDF uses well under 1%) is free. Exhaustion aborts
  // loudly in PoolArena.
  static constexpr size_t MaxSets = size_t{1} << 21;
  static constexpr size_t MaxKernelItems = size_t{1} << 24;
  static constexpr size_t MaxEdges = size_t{1} << 25;
  static constexpr size_t MaxRuleRefs = size_t{1} << 23;

  /// Size of the single reservation backing all six pools; must mirror
  /// the carve() sequence in the member initializers below.
  static constexpr size_t reservedBytes() {
    return ArenaReservation::regionBytes(MaxSets, sizeof(ItemSet)) +
           ArenaReservation::regionBytes(MaxKernelItems, sizeof(Item)) +
           ArenaReservation::regionBytes(MaxEdges, sizeof(uint32_t)) +
           ArenaReservation::regionBytes(MaxEdges, sizeof(SymbolId)) +
           ArenaReservation::regionBytes(MaxRuleRefs, sizeof(RuleId)) * 2;
  }

  /// Total set records ever created (dense id space; tombstones included).
  size_t numSets() const { return Sets.size(); }
  ItemSet &setAt(size_t I) { return SetsBase[I]; }
  const ItemSet &setAt(size_t I) const { return SetsBase[I]; }

  /// Named indices into the sharded stats counters.
  enum StatCounter : size_t {
    ScExpansions,
    ScReExpansions,
    ScClosureItems,
    ScDirtyMarks,
    ScCollected,
    ScGotoCalls,
    ScNumCounters
  };

  /// Restores persisted counter values (snapshot loads, resetStats).
  void storeStats(const ItemSetGraphStats &S) {
    Stats.store(ScExpansions, S.Expansions);
    Stats.store(ScReExpansions, S.ReExpansions);
    Stats.store(ScClosureItems, S.ClosureItems);
    Stats.store(ScDirtyMarks, S.DirtyMarks);
    Stats.store(ScCollected, S.Collected);
    Stats.store(ScGotoCalls, S.GotoCalls);
  }

  /// StructureMutex when shared, nothing when exclusive: the lock guard
  /// around every append to the pools, ByKernel access and all RefCount
  /// arithmetic in shared mode.
  std::unique_lock<std::mutex> structureLock() const {
    return Concurrent ? std::unique_lock<std::mutex>(StructureMutex)
                      : std::unique_lock<std::mutex>();
  }

  /// Populates ByKernel from the live sets if a zero-copy snapshot load
  /// deferred it. Every ByKernel consumer calls this first. Caller holds
  /// StructureMutex in shared mode.
  void ensureKernelIndex();

  /// Per-expansion scratch buffers (one set per thread; ItemSetGraph.cpp).
  struct ExpandScratch;

  ItemSet *makeItemSet(const Kernel &K);
  /// findByKernel without the structure lock; expansion's inner loop,
  /// which already holds it.
  ItemSet *findByKernelLocked(KernelView K);
  /// CLOSURE into \p Out (cleared first): the allocation-reusing worker
  /// behind the public closure(). Genuinely read-only on the graph — all
  /// mutable state lives in the caller-provided scratch.
  void closureInto(KernelView K, ExpandScratch &S,
                   std::vector<Item> &Out) const;
  void expand(ItemSet *State);
  void decrRefCount(ItemSet *State);
  void markDirty(ItemSet *State);
  void unlinkFromIndex(ItemSet *State);
  void modify(SymbolId Lhs);
  Kernel startKernel() const;

  Grammar &G;

  // The six pools, all carved from one contiguous reservation (a single
  // syscall pair per graph — constructing a lazy graph must stay "almost
  // zero" cost, §5). Set records always live in the Sets arena's own
  // segment (snapshot adoption memcpys them in — 52 bytes per set); the
  // five data pools adopt a mapped snapshot's arrays zero-copy as their
  // base segment. Trans and Labels are strictly parallel: every append
  // lands in both, so one offset addresses a target slice and its label
  // slice.
  ArenaReservation Storage{reservedBytes()};
  PoolArena<ItemSet> Sets{Storage.carve<ItemSet>(MaxSets), MaxSets};
  PoolArena<Item> Kernels{Storage.carve<Item>(MaxKernelItems),
                          MaxKernelItems};
  PoolArena<uint32_t> Trans{Storage.carve<uint32_t>(MaxEdges), MaxEdges};
  PoolArena<SymbolId> Labels{Storage.carve<SymbolId>(MaxEdges), MaxEdges};
  PoolArena<RuleId> Reds{Storage.carve<RuleId>(MaxRuleRefs), MaxRuleRefs};
  PoolArena<RuleId> Accs{Storage.carve<RuleId>(MaxRuleRefs), MaxRuleRefs};
  /// Sets.growData(), cached: the id->record mapping is one add. Fixed for
  /// the graph's lifetime (the reservation never moves).
  ItemSet *SetsBase = nullptr;
  /// Records installed by the last adoptV2 (see numAdoptedSets()).
  size_t AdoptedSets = 0;

  std::unordered_map<uint64_t, std::vector<ItemSet *>> ByKernel;
  /// False from construction and after a zero-copy adoption until the
  /// first ByKernel consumer rebuilds the index from the live sets — pure
  /// queries against a fully complete adopted graph never need it, and a
  /// fresh graph's constructor must not pay the map allocation (§5's
  /// "almost zero" construction). Atomic once-flag: the built index is
  /// published with a release store so an unlocked exclusive-mode reader
  /// that sees `true` also sees the buckets (shared-mode consumers
  /// additionally hold StructureMutex, which makes the build itself
  /// race-free).
  std::atomic<bool> KernelIndexReady{false};
  /// Keeps the mapped snapshot region alive while the data pools' base
  /// segments point into it. Released on reset()/re-load. In a server
  /// this is the COW fork's in-memory serialization of the predecessor
  /// epoch.
  std::shared_ptr<const MappedFile> BorrowedStorage;
  ItemSet *Start = nullptr;
  ShardedCounters<ScNumCounters> Stats;

  // Shared-mode machinery; see the class comment. All no-ops while
  // Concurrent is false, so exclusive-mode graphs pay nothing but the
  // predictable branch.
  bool Concurrent = false;
  /// Held shared by every EXPAND, exclusive by FreezeGuard (COW forks).
  mutable std::shared_mutex ExpandGate;
  /// Per-set expansion publication locks, striped by set id.
  StripedMutexes<64> ExpandStripes;
  /// Guards pool appends, ByKernel and all RefCount arithmetic in shared
  /// mode.
  mutable std::mutex StructureMutex;
};

} // namespace ipg

#endif // IPG_LR_ITEMSETGRAPH_H
