//===- lr/ItemSet.h - Sets of items (parser states) -------------*- C++ -*-===//
///
/// \file
/// A set of items is a parser state (§4). Its lifecycle follows the paper:
///
///   Initial  — kernel known, transitions/reductions not yet computed;
///   Complete — EXPANDed: transitions, reductions and accept flag valid;
///   Dirty    — was Complete, invalidated by a grammar MODIFY (§6.2); the
///              old transitions are retained so RE-EXPAND can release the
///              references it held;
///   Dead     — reference count reached zero (or mark-and-sweep found it
///              unreachable); unlinked from the kernel index, kept in the
///              arena so stale pointers in old parser stacks stay valid.
///
/// The transition ($ accept) of the paper is represented by the Accepting
/// flag rather than an edge, since `accept` is not an item set.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_ITEMSET_H
#define IPG_LR_ITEMSET_H

#include "lr/Item.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ipg {

class ItemSetGraph;
class GraphSnapshot;

/// Lifecycle state of a set of items; see file comment.
enum class ItemSetState : uint8_t { Initial, Complete, Dirty, Dead };

/// A set of items: one node in the graph of item sets.
class ItemSet {
public:
  /// A labeled edge to another set of items. Terminal labels are shift
  /// actions, nonterminal labels are GOTO transitions.
  struct Transition {
    SymbolId Label;
    ItemSet *Target;
  };

  /// Stable creation index; matches the circled numbers in the paper's
  /// figures for identical construction orders.
  uint32_t id() const { return Id; }

  ItemSetState state() const { return State; }
  bool isComplete() const { return State == ItemSetState::Complete; }
  bool isDead() const { return State == ItemSetState::Dead; }

  /// The canonical kernel. The lazy generator keeps kernels even for
  /// complete sets: the incremental generator needs them again (§5.3).
  const Kernel &kernel() const { return K; }

  /// Valid only when Complete. Sorted by label for binary search.
  const std::vector<Transition> &transitions() const { return Transitions; }

  /// Rules recognized completely in this state (valid only when Complete).
  const std::vector<RuleId> &reductions() const { return Reductions; }

  /// True if the closure contains START ::= β • — the paper's ($ accept).
  bool isAccepting() const { return Accepting; }

  /// The START rules completed in this state (nonempty iff isAccepting()).
  /// The paper's ($ accept) transition carries no rule; the parsers here
  /// need it to build a START-rooted parse tree.
  const std::vector<RuleId> &acceptRules() const { return AcceptRules; }

  /// Number of transitions referring to this set (plus 1 for the start
  /// set's implicit root reference).
  uint32_t refCount() const { return RefCount; }

  /// The transitions this set held before it was marked Dirty.
  const std::vector<Transition> &oldTransitions() const {
    return OldTransitions;
  }

  /// The ACTION/GOTO query index: the transition labels densely packed in
  /// the same (label-sorted) order as transitions(). Binary searching this
  /// 4-byte-stride array touches a fraction of the cache lines a search
  /// over the 16-byte Transition records would. Built by EXPAND (and by
  /// snapshot adoption), valid exactly while the set is Complete.
  const std::vector<SymbolId> &actionLabels() const { return ActionLabels; }

  /// The target of the unique transition on \p Label, or nullptr when the
  /// set has none. O(log n) over the action index; allocation-free. Valid
  /// only while the set is Complete.
  ItemSet *transitionTarget(SymbolId Label) const {
    auto It =
        std::lower_bound(ActionLabels.begin(), ActionLabels.end(), Label);
    if (It == ActionLabels.end() || *It != Label)
      return nullptr;
    return Transitions[static_cast<size_t>(It - ActionLabels.begin())].Target;
  }

private:
  friend class ItemSetGraph;
  friend class GraphSnapshot;

  /// (Re)derives the action index from the label-sorted Transitions; the
  /// tail of every EXPAND and of snapshot adoption.
  void buildActionIndex() {
    ActionLabels.resize(Transitions.size());
    for (size_t I = 0; I < Transitions.size(); ++I)
      ActionLabels[I] = Transitions[I].Label;
  }

  /// Tears the index down; paired with every Transitions.clear() so a
  /// non-Complete set can never answer queries from stale entries.
  void clearActionIndex() { ActionLabels.clear(); }

  uint32_t Id = 0;
  ItemSetState State = ItemSetState::Initial;
  bool Accepting = false;
  uint32_t RefCount = 0;
  Kernel K;
  std::vector<Transition> Transitions;
  std::vector<RuleId> Reductions;
  std::vector<RuleId> AcceptRules;
  std::vector<Transition> OldTransitions;
  std::vector<SymbolId> ActionLabels;
};

/// The canonical transition order: sorted by label. EXPAND establishes it
/// and snapshot loading re-establishes it after id remapping — one helper
/// so the two sites (and the byte-determinism contract between them)
/// cannot drift apart.
inline void sortTransitionsByLabel(std::vector<ItemSet::Transition> &Ts) {
  std::sort(Ts.begin(), Ts.end(),
            [](const ItemSet::Transition &A, const ItemSet::Transition &B) {
              return A.Label < B.Label;
            });
}

} // namespace ipg

#endif // IPG_LR_ITEMSET_H
