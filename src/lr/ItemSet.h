//===- lr/ItemSet.h - Sets of items (parser states) -------------*- C++ -*-===//
///
/// \file
/// A set of items is a parser state (§4). Its lifecycle follows the paper:
///
///   Initial  — kernel known, transitions/reductions not yet computed;
///   Complete — EXPANDed: transitions, reductions and accept flag valid;
///   Dirty    — was Complete, invalidated by a grammar MODIFY (§6.2); the
///              old transitions are retained so RE-EXPAND can release the
///              references it held;
///   Dead     — reference count reached zero (or mark-and-sweep found it
///              unreachable); unlinked from the kernel index, kept in the
///              arena so stale pointers in old parser stacks stay valid.
///
/// The transition ($ accept) of the paper is represented by the Accepting
/// flag rather than an edge, since `accept` is not an item set.
///
/// Storage comes in two modes. In *owned* mode (everything created by
/// EXPAND or a v1 snapshot load) the kernel, transitions, reductions and
/// action labels live in the set's own vectors. In *borrowed* mode (a set
/// adopted from an `ipg-snap-v2` mapped snapshot) they are spans into the
/// mapped region — zero per-set allocation at load. Borrowed storage is
/// immutable; any operation that must mutate the set (EXPAND, the MODIFY
/// dirty-marking) first calls materializeOwned(), which copies the spans
/// into the vectors — the copy-on-MODIFY discipline that keeps §6 repair
/// working on adopted graphs. All accessors return ArrayViews, so callers
/// never see the difference.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_ITEMSET_H
#define IPG_LR_ITEMSET_H

#include "lr/Item.h"
#include "support/ArrayView.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace ipg {

class ItemSetGraph;
class GraphSnapshot;

/// Lifecycle state of a set of items; see file comment.
enum class ItemSetState : uint8_t { Initial, Complete, Dirty, Dead };

/// A set of items: one node in the graph of item sets.
class ItemSet {
public:
  /// A labeled edge to another set of items. Terminal labels are shift
  /// actions, nonterminal labels are GOTO transitions. The record layout
  /// (4-byte label, padding, 8-byte pointer) is mirrored by the
  /// `ipg-snap-v2` on-disk transition record, whose target index is
  /// patched into a pointer at load so mapped records serve directly as
  /// Transitions.
  struct Transition {
    SymbolId Label;
    ItemSet *Target;
  };

  /// Stable creation index; matches the circled numbers in the paper's
  /// figures for identical construction orders.
  uint32_t id() const { return Id; }

  /// The lifecycle flag is read concurrently in shared-graph mode
  /// (server/GrammarServer.h), so every read goes through an atomic_ref.
  /// Relaxed is enough here: on the reader fast path the *ordering* load
  /// is stateAcquire() below; these accessors answer "what state is it
  /// in" without implying the set's records are visible. A relaxed 1-byte
  /// atomic load compiles to the plain load the field read used to be.
  ItemSetState state() const { return loadState(std::memory_order_relaxed); }
  bool isComplete() const { return state() == ItemSetState::Complete; }
  bool isDead() const { return state() == ItemSetState::Dead; }

  /// The reader-side publication load: pairs with publishComplete() so a
  /// thread observing Complete also observes the transitions, reductions,
  /// action index and accept flag EXPAND wrote before publishing. Within
  /// one graph epoch a Complete set never leaves that state (MODIFY forks
  /// a new epoch instead of reverting sets), so the answer is stable.
  ItemSetState stateAcquire() const {
    return loadState(std::memory_order_acquire);
  }

  /// True while the set's records live in a mapped snapshot region rather
  /// than its own vectors.
  bool isBorrowed() const { return Borrowed; }

  /// The canonical kernel. The lazy generator keeps kernels even for
  /// complete sets: the incremental generator needs them again (§5.3).
  KernelView kernel() const {
    return Borrowed ? BorrowedK : KernelView(K.data(), K.size());
  }

  /// Valid only when Complete. Sorted by label for binary search.
  ArrayView<Transition> transitions() const {
    return Borrowed ? BorrowedTrans
                    : ArrayView<Transition>(Transitions.data(),
                                            Transitions.size());
  }

  /// Rules recognized completely in this state (valid only when Complete).
  ArrayView<RuleId> reductions() const {
    return Borrowed ? BorrowedRed
                    : ArrayView<RuleId>(Reductions.data(), Reductions.size());
  }

  /// True if the closure contains START ::= β • — the paper's ($ accept).
  bool isAccepting() const { return Accepting; }

  /// The START rules completed in this state (nonempty iff isAccepting()).
  /// The paper's ($ accept) transition carries no rule; the parsers here
  /// need it to build a START-rooted parse tree.
  ArrayView<RuleId> acceptRules() const {
    return Borrowed
               ? BorrowedAcc
               : ArrayView<RuleId>(AcceptRules.data(), AcceptRules.size());
  }

  /// Number of transitions referring to this set (plus 1 for the start
  /// set's implicit root reference).
  uint32_t refCount() const { return RefCount; }

  /// The transitions this set held before it was marked Dirty.
  ArrayView<Transition> oldTransitions() const {
    return Borrowed ? BorrowedOld
                    : ArrayView<Transition>(OldTransitions.data(),
                                            OldTransitions.size());
  }

  /// The ACTION/GOTO query index: the transition labels densely packed in
  /// the same (label-sorted) order as transitions(). Binary searching this
  /// 4-byte-stride array touches a fraction of the cache lines a search
  /// over the 16-byte Transition records would. Built by EXPAND (and
  /// persisted/adopted by snapshots), valid exactly while the set is
  /// Complete.
  ArrayView<SymbolId> actionLabels() const {
    return Borrowed
               ? BorrowedLabels
               : ArrayView<SymbolId>(ActionLabels.data(), ActionLabels.size());
  }

  /// The target of the unique transition on \p Label, or nullptr when the
  /// set has none. O(log n) over the action index; allocation-free. Valid
  /// only while the set is Complete. Resolves the storage mode once up
  /// front — this sits on the MODIFY probe and every GOTO, where going
  /// through two accessor branches measurably costs.
  ItemSet *transitionTarget(SymbolId Label) const {
    const SymbolId *LabelsBegin, *LabelsEnd;
    const Transition *Trans;
    if (Borrowed) {
      LabelsBegin = BorrowedLabels.begin();
      LabelsEnd = BorrowedLabels.end();
      Trans = BorrowedTrans.data();
    } else {
      LabelsBegin = ActionLabels.data();
      LabelsEnd = LabelsBegin + ActionLabels.size();
      Trans = Transitions.data();
    }
    const SymbolId *It = std::lower_bound(LabelsBegin, LabelsEnd, Label);
    if (It == LabelsEnd || *It != Label)
      return nullptr;
    return Trans[It - LabelsBegin].Target;
  }

private:
  friend class ItemSetGraph;
  friend class GraphSnapshot;

  ItemSetState loadState(std::memory_order Order) const {
    // atomic_ref<const T> arrives in C++26; until then the const accessor
    // casts constness away for the (read-only) atomic view.
    return std::atomic_ref<ItemSetState>(const_cast<ItemSet *>(this)->State)
        .load(Order);
  }

  void storeState(ItemSetState S, std::memory_order Order) {
    std::atomic_ref<ItemSetState>(State).store(S, Order);
  }

  /// The writer-side publication store: EXPAND's final act. Everything the
  /// expansion wrote into this set happens-before any stateAcquire() that
  /// reads Complete.
  void publishComplete() {
    storeState(ItemSetState::Complete, std::memory_order_release);
  }

  /// (Re)derives the action index from the label-sorted Transitions; the
  /// tail of every EXPAND and of v1 snapshot adoption. Owned mode only.
  void buildActionIndex() {
    ActionLabels.resize(Transitions.size());
    for (size_t I = 0; I < Transitions.size(); ++I)
      ActionLabels[I] = Transitions[I].Label;
  }

  /// Tears the index down; paired with every Transitions.clear() so a
  /// non-Complete set can never answer queries from stale entries.
  void clearActionIndex() { ActionLabels.clear(); }

  /// Copy-on-MODIFY: copies borrowed spans into the owned vectors so the
  /// set can be mutated. No-op in owned mode.
  void materializeOwned() {
    if (!Borrowed)
      return;
    K.assign(BorrowedK.begin(), BorrowedK.end());
    Transitions.assign(BorrowedTrans.begin(), BorrowedTrans.end());
    Reductions.assign(BorrowedRed.begin(), BorrowedRed.end());
    AcceptRules.assign(BorrowedAcc.begin(), BorrowedAcc.end());
    OldTransitions.assign(BorrowedOld.begin(), BorrowedOld.end());
    ActionLabels.assign(BorrowedLabels.begin(), BorrowedLabels.end());
    dropBorrowed();
  }

  /// Drops all record storage (owned and borrowed) — the Dead path, which
  /// never needs the data again.
  void releaseStorage() {
    Transitions.clear();
    OldTransitions.clear();
    Reductions.clear();
    AcceptRules.clear();
    ActionLabels.clear();
    dropBorrowed();
  }

  void dropBorrowed() {
    Borrowed = false;
    BorrowedK = KernelView();
    BorrowedTrans = ArrayView<Transition>();
    BorrowedOld = ArrayView<Transition>();
    BorrowedRed = ArrayView<RuleId>();
    BorrowedAcc = ArrayView<RuleId>();
    BorrowedLabels = ArrayView<SymbolId>();
  }

  // Field order is perf-relevant: the MODIFY probe and GOTO touch the
  // scalars plus the action index/transitions of *every* complete set, so
  // those live in the leading cache lines; the rarely-scanned record
  // arrays follow.
  uint32_t Id = 0;
  ItemSetState State = ItemSetState::Initial;
  bool Accepting = false;
  bool Borrowed = false;
  uint32_t RefCount = 0;

  // Owned storage (valid when !Borrowed), hot part.
  std::vector<SymbolId> ActionLabels;
  std::vector<Transition> Transitions;
  // Borrowed storage (spans into a mapped `ipg-snap-v2` region, valid
  // when Borrowed; the owning graph keeps the mapping alive), hot part.
  ArrayView<SymbolId> BorrowedLabels;
  ArrayView<Transition> BorrowedTrans;

  // Owned storage, cold part.
  Kernel K;
  std::vector<RuleId> Reductions;
  std::vector<RuleId> AcceptRules;
  std::vector<Transition> OldTransitions;

  // Borrowed storage, cold part.
  KernelView BorrowedK;
  ArrayView<Transition> BorrowedOld;
  ArrayView<RuleId> BorrowedRed;
  ArrayView<RuleId> BorrowedAcc;
};

/// The canonical transition order: sorted by label. EXPAND establishes it
/// and snapshot loading re-establishes it after id remapping — one helper
/// so the two sites (and the byte-determinism contract between them)
/// cannot drift apart.
inline void sortTransitionsByLabel(std::vector<ItemSet::Transition> &Ts) {
  std::sort(Ts.begin(), Ts.end(),
            [](const ItemSet::Transition &A, const ItemSet::Transition &B) {
              return A.Label < B.Label;
            });
}

} // namespace ipg

#endif // IPG_LR_ITEMSET_H
