//===- lr/ItemSet.h - Sets of items (parser states) -------------*- C++ -*-===//
///
/// \file
/// A set of items is a parser state (§4). Its lifecycle follows the paper:
///
///   Initial  — kernel known, transitions/reductions not yet computed;
///   Complete — EXPANDed: transitions, reductions and accept flag valid;
///   Dirty    — was Complete, invalidated by a grammar MODIFY (§6.2); the
///              old transitions are retained so RE-EXPAND can release the
///              references it held;
///   Dead     — reference count reached zero (or mark-and-sweep found it
///              unreachable); unlinked from the kernel index, kept in the
///              arena so stale pointers in old parser stacks stay valid.
///
/// The transition ($ accept) of the paper is represented by the Accepting
/// flag rather than an edge, since `accept` is not an item set.
///
/// An ItemSet is a 52-byte trivially-copyable record of offset/length
/// spans into the owning ItemSetGraph's flat pools (support/PoolArena.h):
/// kernel items, transition targets, transition labels, reductions and
/// accept rules all live pool-side. The record layout IS the `ipg-snap-v2`
/// on-disk set record, so saving a graph memcpys the live records and
/// adopting a mapped snapshot installs them without any per-set decode —
/// there is no owned-vs-borrowed storage split anymore; a warm-started
/// graph and a freshly expanded one are the same bytes.
///
/// Record data is reached through the graph (ItemSetGraph::kernel,
/// ::transitions, ::reductions, ...), which resolves the spans against its
/// pools; the set itself only answers questions its own 52 bytes can
/// (id, lifecycle state, accept flag, reference count).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_ITEMSET_H
#define IPG_LR_ITEMSET_H

#include "lr/Item.h"

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace ipg {

class ItemSetGraph;
class GraphSnapshot;

/// Lifecycle state of a set of items; see file comment. The numeric values
/// are the on-disk `ipg-snap-v2` state codes — do not reorder.
enum class ItemSetState : uint8_t {
  Initial = 0,
  Complete = 1,
  Dirty = 2,
  Dead = 3
};

/// A set of items: one node in the graph of item sets, as a flat record of
/// spans into the graph's pools.
class ItemSet {
public:
  /// A labeled edge to another set of items, materialized by value when a
  /// transition span is iterated (lr/ItemSetGraph.h TransitionRange).
  /// Terminal labels are shift actions, nonterminal labels are GOTO
  /// transitions. Pool-side a transition is a 4-byte target index parallel
  /// to a 4-byte label — this struct exists so loop bodies keep their
  /// `T.Label` / `T.Target` shape.
  struct Transition {
    SymbolId Label;
    ItemSet *Target;
  };

  /// Stable creation index == the record's index in the graph's set pool;
  /// matches the circled numbers in the paper's figures for identical
  /// construction orders.
  uint32_t id() const { return Id; }

  /// The lifecycle flag is read concurrently in shared-graph mode
  /// (server/GrammarServer.h), so every read goes through an atomic_ref.
  /// Relaxed is enough here: on the reader fast path the *ordering* load
  /// is stateAcquire() below; these accessors answer "what state is it
  /// in" without implying the set's records are visible. A relaxed 1-byte
  /// atomic load compiles to the plain load the field read used to be.
  ItemSetState state() const { return loadState(std::memory_order_relaxed); }
  bool isComplete() const { return state() == ItemSetState::Complete; }
  bool isDead() const { return state() == ItemSetState::Dead; }

  /// The reader-side publication load: pairs with publishComplete() so a
  /// thread observing Complete also observes the span fields and pool
  /// records EXPAND wrote before publishing. Within one graph epoch a
  /// Complete set never leaves that state (MODIFY forks a new epoch
  /// instead of reverting sets), so the answer is stable.
  ItemSetState stateAcquire() const {
    return loadState(std::memory_order_acquire);
  }

  /// True if the closure contains START ::= β • — the paper's ($ accept).
  bool isAccepting() const { return Accepting != 0; }

  /// Number of transitions referring to this set (plus 1 for the start
  /// set's implicit root reference). Persisted verbatim in snapshots and
  /// cross-checked against the incoming edges at adoption.
  uint32_t refCount() const { return RefCount; }

private:
  friend class ItemSetGraph;
  friend class GraphSnapshot;

  ItemSetState loadState(std::memory_order Order) const {
    // atomic_ref<const T> arrives in C++26; until then the const accessor
    // casts constness away for the (read-only) atomic view.
    return std::atomic_ref<ItemSetState>(const_cast<ItemSet *>(this)->State)
        .load(Order);
  }

  void storeState(ItemSetState S, std::memory_order Order) {
    std::atomic_ref<ItemSetState>(State).store(S, Order);
  }

  /// The writer-side publication store: EXPAND's final act. Everything the
  /// expansion wrote into this record and the pools happens-before any
  /// stateAcquire() that reads Complete.
  void publishComplete() {
    storeState(ItemSetState::Complete, std::memory_order_release);
  }

  // The record: 52 little-endian bytes, identical on disk and in memory.
  // No default member initializers — the type must stay trivial so a
  // mapped snapshot's records can be memcpy-adopted; the graph zero-fills
  // fresh records at creation. All Off/Len pairs are element spans into
  // the graph's pools: Kernel* into the Item pool; Trans*/Old* into the
  // parallel target/label pools (one offset addresses both); Red*/Acc*
  // into the two RuleId pools.
  uint32_t Id;
  ItemSetState State;
  uint8_t Accepting;
  uint16_t Pad;
  uint32_t RefCount;
  uint32_t KernelOff, KernelLen;
  uint32_t TransOff, TransLen;
  uint32_t OldOff, OldLen;
  uint32_t RedOff, RedLen;
  uint32_t AccOff, AccLen;
};

static_assert(sizeof(ItemSet) == 52 && std::is_trivially_copyable_v<ItemSet>,
              "ItemSet is the ipg-snap-v2 on-disk set record; its layout "
              "is load-bearing");

} // namespace ipg

#endif // IPG_LR_ITEMSET_H
