//===- lr/DotExport.cpp - GraphViz export of item-set graphs --------------===//

#include "lr/DotExport.h"

using namespace ipg;

namespace {

/// Escapes DOT label metacharacters.
std::string escapeLabel(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\' || C == '{' || C == '}' || C == '|' ||
        C == '<' || C == '>')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string ipg::graphToDot(const ItemSetGraph &Graph, bool IncludeDead) {
  const Grammar &G = Graph.grammar();
  std::string Dot = "digraph itemsets {\n"
                    "  rankdir=LR;\n"
                    "  node [shape=record, fontname=\"monospace\"];\n";

  auto EmitNode = [&](const ItemSet &State) {
    std::string Label = std::to_string(State.id());
    for (const Item &I : Graph.kernel(&State))
      Label += "\\n" + escapeLabel(itemToString(I, G));
    for (RuleId Rule : Graph.reductions(&State))
      Label += "\\nreduce " + escapeLabel(G.ruleToString(Rule));
    std::string Attrs = "label=\"" + Label + "\"";
    // Fill color encodes the expansion state, so a snapshot's lazy/dirty
    // frontier is visible at a glance: green = Complete (expanded),
    // blue = Initial (lazy, never expanded), orange = Dirty (invalidated
    // by MODIFY, awaiting re-expansion), grey = Dead (collected).
    switch (State.state()) {
    case ItemSetState::Initial:
      Attrs += ", style=\"dashed,filled\", fillcolor=lightblue";
      break;
    case ItemSetState::Dirty:
      Attrs += ", style=\"dashed,filled\", color=orange, "
               "fillcolor=navajowhite";
      break;
    case ItemSetState::Dead:
      Attrs += ", style=filled, fillcolor=grey80, color=grey50";
      break;
    case ItemSetState::Complete:
      Attrs += ", style=filled, fillcolor=palegreen";
      break;
    }
    if (State.isAccepting())
      Attrs += ", peripheries=2";
    Dot += "  n" + std::to_string(State.id()) + " [" + Attrs + "];\n";
  };

  // liveSets() excludes dead sets; walk them via a second pass when asked.
  for (const ItemSet *State : Graph.liveSets()) {
    EmitNode(*State);
    TransitionRange Edges = State->state() == ItemSetState::Dirty
                                ? Graph.oldTransitions(State)
                                : Graph.transitions(State);
    bool DashedEdges = State->state() == ItemSetState::Dirty;
    for (ItemSet::Transition T : Edges)
      Dot += "  n" + std::to_string(State->id()) + " -> n" +
             std::to_string(T.Target->id()) + " [label=\"" +
             escapeLabel(G.symbols().name(T.Label)) + "\"" +
             (DashedEdges ? ", style=dashed" : "") + "];\n";
    if (State->isAccepting()) {
      Dot += "  accept" + std::to_string(State->id()) +
             " [shape=doublecircle, label=\"acc\"];\n";
      Dot += "  n" + std::to_string(State->id()) + " -> accept" +
             std::to_string(State->id()) + " [label=\"$\"];\n";
    }
  }
  (void)IncludeDead; // Dead sets hold no transitions; nothing to draw.
  Dot += "}\n";
  return Dot;
}
