//===- lr/ParseTable.cpp - Tabular ACTION/GOTO representation -------------===//

#include "lr/ParseTable.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>

using namespace ipg;

void ParseTable::addAction(uint32_t State, SymbolId Symbol,
                           TableAction Action) {
  TableAction &Cell = Cells[State * NumSymbols + Symbol];
  if (Cell.Kind == TableAction::Error) {
    Cell = Action;
    return;
  }
  if (Cell == Action)
    return;
  for (TableConflict &Conflict : Conflicts) {
    if (Conflict.State == State && Conflict.Symbol == Symbol) {
      for (const TableAction &Existing : Conflict.Actions)
        if (Existing == Action)
          return;
      Conflict.Actions.push_back(Action);
      return;
    }
  }
  Conflicts.push_back(TableConflict{State, Symbol, {Cell, Action}});
}

ParseTable ipg::buildLr0Table(ItemSetGraph &Graph,
                              std::vector<const ItemSet *> *SetOfState) {
  Graph.generateAll();
  const Grammar &G = Graph.grammar();

  // Dense numbering in creation order; the start set is always state 0.
  std::vector<const ItemSet *> Sets = Graph.liveSets();
  std::unordered_map<const ItemSet *, uint32_t> StateOf;
  for (const ItemSet *Set : Sets) {
    assert(Set->isComplete() && "generateAll left a non-complete set");
    StateOf.emplace(Set, static_cast<uint32_t>(StateOf.size()));
  }

  size_t NumSymbols = G.symbols().size();
  ParseTable Table(Sets.size(), NumSymbols);
  for (const ItemSet *Set : Sets) {
    uint32_t State = StateOf.at(Set);
    // LR(0): a recognized rule may be reduced under any lookahead.
    for (RuleId Rule : Graph.reductions(Set))
      for (SymbolId Sym = 0; Sym < NumSymbols; ++Sym)
        if (G.symbols().isTerminal(Sym))
          Table.addAction(State, Sym, {TableAction::Reduce, Rule});
    for (ItemSet::Transition T : Graph.transitions(Set)) {
      if (G.symbols().isTerminal(T.Label))
        Table.addAction(State, T.Label,
                        {TableAction::Shift, StateOf.at(T.Target)});
      else
        Table.setGoto(State, T.Label, StateOf.at(T.Target));
    }
    for (RuleId Rule : Graph.acceptRules(Set))
      Table.addAction(State, G.endMarker(), {TableAction::Accept, Rule});
  }
  if (SetOfState != nullptr)
    *SetOfState = std::move(Sets);
  return Table;
}

static std::string actionToString(const TableAction &Action) {
  // Formatted into a stack buffer rather than a string operator+ chain:
  // GCC 12's -Wrestrict misfires on the rvalue overloads at -O3.
  char Buffer[16];
  switch (Action.Kind) {
  case TableAction::Error:
    return "";
  case TableAction::Shift:
    std::snprintf(Buffer, sizeof(Buffer), "s%u", Action.Value);
    return Buffer;
  case TableAction::Reduce:
    std::snprintf(Buffer, sizeof(Buffer), "r%u", Action.Value);
    return Buffer;
  case TableAction::Accept:
    return "acc";
  }
  return "";
}

std::string ipg::tableToString(const ParseTable &Table, const Grammar &G) {
  // Columns: terminals (the $ column last among terminals), then
  // nonterminals, START excluded — the layout of Fig 4.1(b).
  std::vector<SymbolId> Columns;
  for (SymbolId Sym = 0; Sym < G.symbols().size(); ++Sym)
    if (G.symbols().isTerminal(Sym) && Sym != G.endMarker())
      Columns.push_back(Sym);
  Columns.push_back(G.endMarker());
  for (SymbolId Sym = 0; Sym < G.symbols().size(); ++Sym)
    if (G.symbols().isNonterminal(Sym) && Sym != G.startSymbol())
      Columns.push_back(Sym);

  auto CellText = [&](uint32_t State, SymbolId Sym) -> std::string {
    if (G.symbols().isNonterminal(Sym)) {
      uint32_t Target = Table.gotoState(State, Sym);
      return Target == ~0u ? "" : std::to_string(Target);
    }
    for (const TableConflict &Conflict : Table.conflicts()) {
      if (Conflict.State == State && Conflict.Symbol == Sym) {
        std::vector<std::string> Parts;
        for (const TableAction &Action : Conflict.Actions)
          Parts.push_back(actionToString(Action));
        return join(Parts, "/");
      }
    }
    return actionToString(Table.action(State, Sym));
  };

  std::vector<size_t> Widths{5};
  for (SymbolId Sym : Columns)
    Widths.push_back(G.symbols().name(Sym).size());
  for (uint32_t State = 0; State < Table.numStates(); ++State)
    for (size_t Col = 0; Col < Columns.size(); ++Col)
      Widths[Col + 1] =
          std::max(Widths[Col + 1], CellText(State, Columns[Col]).size());

  std::string Text = padRight("state", Widths[0]);
  for (size_t Col = 0; Col < Columns.size(); ++Col)
    Text += "  " + padLeft(G.symbols().name(Columns[Col]), Widths[Col + 1]);
  Text += '\n';
  for (uint32_t State = 0; State < Table.numStates(); ++State) {
    Text += padRight(std::to_string(State), Widths[0]);
    for (size_t Col = 0; Col < Columns.size(); ++Col)
      Text += "  " + padLeft(CellText(State, Columns[Col]), Widths[Col + 1]);
    Text += '\n';
  }
  return Text;
}
