//===- lr/LrParser.h - Deterministic LR driver (§3.1) -----------*- C++ -*-===//
///
/// \file
/// LR-PARSE of §3.1, extended to build a parse tree: a stack of states (plus
/// a parallel stack of tree nodes), driven by a deterministic ParseTable.
/// This is the driver behind the "Yacc" baseline of §7 when fed an LALR(1)
/// table, and behind plain LR(0) parsing in tests.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LR_LRPARSER_H
#define IPG_LR_LRPARSER_H

#include "grammar/Tree.h"
#include "lr/ParseTable.h"
#include "support/TokenView.h"

#include <vector>

namespace ipg {

/// Outcome of a deterministic LR parse.
struct LrParseResult {
  bool Accepted = false;
  /// START-rooted tree (valid while the arena lives); null on rejection.
  TreeNode *Tree = nullptr;
  /// Token index at which the error action was hit (== input size when the
  /// end marker was rejected).
  size_t ErrorIndex = 0;
  uint64_t NumShifts = 0;
  uint64_t NumReduces = 0;
};

/// Deterministic table-driven LR parser.
class LrParser {
public:
  /// \p Table must be deterministic (assert-checked per parse action).
  LrParser(const ParseTable &Table, const Grammar &G) : Table(Table), G(G) {}

  /// Parses \p Input (terminal symbols, no end marker) into a tree.
  LrParseResult parse(TokenView Input, TreeArena &Arena) const;

  /// Recognition only — no tree construction (for benchmarks).
  bool recognize(TokenView Input) const;

  // Thin forwarding overloads for pre-TokenView call sites.
  LrParseResult parse(const std::vector<SymbolId> &Input,
                      TreeArena &Arena) const {
    return parse(TokenView(Input), Arena);
  }
  bool recognize(const std::vector<SymbolId> &Input) const {
    return recognize(TokenView(Input));
  }

private:
  const ParseTable &Table;
  const Grammar &G;
};

} // namespace ipg

#endif // IPG_LR_LRPARSER_H
