//===- lalr/SlrGen.h - SLR(1) table generation ------------------*- C++ -*-===//
///
/// \file
/// SLR(1): the LR(0) automaton with reduce actions restricted to FOLLOW of
/// the reduced nonterminal. A stepping stone between the paper's LR(0)
/// tables and the LALR(1) tables of the Yacc baseline; also used by tests
/// to check the containment LR(0) conflicts ⊇ SLR(1) ⊇ LALR(1).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LALR_SLRGEN_H
#define IPG_LALR_SLRGEN_H

#include "grammar/Analyses.h"
#include "lr/ParseTable.h"

namespace ipg {

/// Builds the SLR(1) table (generates the full LR(0) graph first).
/// \p SetOfState optionally receives the item set behind each state.
ParseTable buildSlr1Table(ItemSetGraph &Graph,
                          std::vector<const ItemSet *> *SetOfState = nullptr);

} // namespace ipg

#endif // IPG_LALR_SLRGEN_H
