//===- lalr/LalrGen.h - LALR(1) generation (DeRemer–Pennello) ---*- C++ -*-===//
///
/// \file
/// The LALR(1) table generator behind the "Yacc" baseline of §7. Lookahead
/// sets are computed with the relational method of DeRemer and Pennello
/// (1982): DR / reads / includes / lookback with the digraph (SCC) closure,
/// on top of the same LR(0) graph of item sets the other generators use.
///
/// The paper's postscript contrasts IPG with Horspool's incremental
/// LALR(1) generation and explains why IPG stays with LR(0): lookahead
/// sets are global — a rule change can shift FOLLOW information arbitrarily
/// far away — which is exactly why this generator is *batch* only.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LALR_LALRGEN_H
#define IPG_LALR_LALRGEN_H

#include "lr/ParseTable.h"

#include <string>
#include <vector>

namespace ipg {

/// Builds the LALR(1) table (generates the full LR(0) graph first).
ParseTable buildLalr1Table(ItemSetGraph &Graph,
                           std::vector<const ItemSet *> *SetOfState = nullptr);

/// One Yacc-style conflict resolution decision, for reporting.
struct ConflictResolution {
  uint32_t State;
  SymbolId Symbol;
  TableAction Chosen;
  std::string Note; ///< e.g. "shift/reduce resolved as shift".
};

/// Resolves every conflicted cell the way Yacc does: shift/reduce →
/// shift; reduce/reduce → the lowest-numbered rule. Returns the decisions;
/// afterwards the table parses deterministically (conflicts stay recorded
/// for diagnostics).
std::vector<ConflictResolution> resolveConflictsYaccStyle(ParseTable &Table,
                                                          const Grammar &G);

} // namespace ipg

#endif // IPG_LALR_LALRGEN_H
