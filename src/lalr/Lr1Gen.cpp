//===- lalr/Lr1Gen.cpp - Canonical LR(1) table generation -----------------===//

#include "lalr/Lr1Gen.h"

#include "grammar/Analyses.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <unordered_map>

using namespace ipg;

namespace {

/// An LR(1) item: a dotted rule plus one lookahead terminal.
struct Lr1Item {
  RuleId Rule;
  uint32_t Dot;
  SymbolId Look;

  auto operator<=>(const Lr1Item &) const = default;
};

using Lr1State = std::vector<Lr1Item>; // Sorted, unique.

uint64_t hashState(const Lr1State &State) {
  uint64_t Hash = 0x6a09e667f3bcc908ULL;
  for (const Lr1Item &I : State) {
    Hash = hashCombine(Hash, I.Rule);
    Hash = hashCombine(Hash, I.Dot);
    Hash = hashCombine(Hash, I.Look);
  }
  return Hash;
}

/// Canonical LR(1) closure: predicting B after the dot spawns items
/// (B ::= •γ, b) for every b in FIRST(β · lookahead).
Lr1State closure(const Grammar &G, const GrammarAnalysis &Analysis,
                 Lr1State Kernel) {
  std::vector<Lr1Item> Work = Kernel;
  // Dedup across the whole closure.
  auto Key = [](const Lr1Item &I) {
    return (uint64_t(I.Rule) << 34) | (uint64_t(I.Dot) << 24) | I.Look;
  };
  std::unordered_map<uint64_t, bool> Seen;
  for (const Lr1Item &I : Kernel)
    Seen.emplace(Key(I), true);

  for (size_t Next = 0; Next < Work.size(); ++Next) {
    Lr1Item Item = Work[Next];
    const Rule &R = G.rule(Item.Rule);
    if (Item.Dot >= R.Rhs.size())
      continue;
    SymbolId After = R.Rhs[Item.Dot];
    if (G.symbols().isTerminal(After))
      continue;
    // FIRST of the suffix past B, falling back to the item's lookahead.
    Bitset Firsts = Analysis.firstOfSequence(R.Rhs, Item.Dot + 1);
    bool SuffixNullable = Analysis.isNullableSequence(R.Rhs, Item.Dot + 1);
    std::vector<SymbolId> Looks;
    Firsts.forEach([&](size_t T) { Looks.push_back(SymbolId(T)); });
    if (SuffixNullable)
      Looks.push_back(Item.Look);
    for (RuleId Predicted : G.rulesFor(After))
      for (SymbolId Look : Looks) {
        Lr1Item NewItem{Predicted, 0, Look};
        if (Seen.emplace(Key(NewItem), true).second)
          Work.push_back(NewItem);
      }
  }
  std::sort(Work.begin(), Work.end());
  return Work;
}

} // namespace

ParseTable ipg::buildLr1Table(const Grammar &G, Lr1Stats *Stats) {
  GrammarAnalysis Analysis(G);

  std::deque<Lr1State> States; // Closed states, by id.
  std::unordered_map<uint64_t, std::vector<uint32_t>> ByState;
  struct Edge {
    uint32_t From;
    SymbolId Label;
    uint32_t To;
  };
  std::vector<Edge> Edges;

  auto Intern = [&](Lr1State Closed) -> std::pair<uint32_t, bool> {
    uint64_t Hash = hashState(Closed);
    for (uint32_t Id : ByState[Hash])
      if (States[Id] == Closed)
        return {Id, false};
    uint32_t Id = static_cast<uint32_t>(States.size());
    ByState[Hash].push_back(Id);
    States.push_back(std::move(Closed));
    return {Id, true};
  };

  // Start state: (START ::= •β, $) for every START rule.
  Lr1State StartKernel;
  for (RuleId Rule : G.rulesFor(G.startSymbol()))
    StartKernel.push_back(Lr1Item{Rule, 0, G.endMarker()});
  std::sort(StartKernel.begin(), StartKernel.end());
  Intern(closure(G, Analysis, std::move(StartKernel)));

  // BFS over GOTO targets; States grows as we iterate.
  for (uint32_t Id = 0; Id < States.size(); ++Id) {
    // Partition by symbol after the dot, advancing the dot.
    std::map<SymbolId, Lr1State> Moves;
    for (const Lr1Item &Item : States[Id]) {
      const Rule &R = G.rule(Item.Rule);
      if (Item.Dot < R.Rhs.size())
        Moves[R.Rhs[Item.Dot]].push_back(
            Lr1Item{Item.Rule, Item.Dot + 1, Item.Look});
    }
    for (auto &[Label, Kernel] : Moves) {
      std::sort(Kernel.begin(), Kernel.end());
      Kernel.erase(std::unique(Kernel.begin(), Kernel.end()), Kernel.end());
      auto [Target, IsNew] = Intern(closure(G, Analysis, std::move(Kernel)));
      (void)IsNew;
      Edges.push_back(Edge{Id, Label, Target});
    }
  }

  // Assemble the table.
  size_t NumSymbols = G.symbols().size();
  ParseTable Table(States.size(), NumSymbols);
  for (const Edge &E : Edges) {
    if (G.symbols().isTerminal(E.Label))
      Table.addAction(E.From, E.Label, {TableAction::Shift, E.To});
    else
      Table.setGoto(E.From, E.Label, E.To);
  }
  size_t NumItems = 0;
  for (uint32_t Id = 0; Id < States.size(); ++Id) {
    NumItems += States[Id].size();
    for (const Lr1Item &Item : States[Id]) {
      const Rule &R = G.rule(Item.Rule);
      if (Item.Dot != R.Rhs.size())
        continue;
      if (R.Lhs == G.startSymbol()) {
        if (Item.Look == G.endMarker())
          Table.addAction(Id, G.endMarker(), {TableAction::Accept, Item.Rule});
      } else {
        Table.addAction(Id, Item.Look, {TableAction::Reduce, Item.Rule});
      }
    }
  }
  if (Stats != nullptr) {
    Stats->NumStates = States.size();
    Stats->NumItems = NumItems;
  }
  return Table;
}
