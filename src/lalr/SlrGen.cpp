//===- lalr/SlrGen.cpp - SLR(1) table generation ---------------------------===//

#include "lalr/SlrGen.h"

#include <cassert>
#include <unordered_map>

using namespace ipg;

ParseTable ipg::buildSlr1Table(ItemSetGraph &Graph,
                               std::vector<const ItemSet *> *SetOfState) {
  Graph.generateAll();
  const Grammar &G = Graph.grammar();
  GrammarAnalysis Analysis(G);

  std::vector<const ItemSet *> Sets = Graph.liveSets();
  std::unordered_map<const ItemSet *, uint32_t> StateOf;
  for (const ItemSet *Set : Sets)
    StateOf.emplace(Set, static_cast<uint32_t>(StateOf.size()));

  ParseTable Table(Sets.size(), G.symbols().size());
  for (const ItemSet *Set : Sets) {
    uint32_t State = StateOf.at(Set);
    for (RuleId Rule : Graph.reductions(Set)) {
      // SLR(1): reduce A ::= β only on terminals in FOLLOW(A).
      Analysis.follow(G.rule(Rule).Lhs).forEach([&](size_t Sym) {
        Table.addAction(State, static_cast<SymbolId>(Sym),
                        {TableAction::Reduce, Rule});
      });
    }
    for (ItemSet::Transition T : Graph.transitions(Set)) {
      if (G.symbols().isTerminal(T.Label))
        Table.addAction(State, T.Label,
                        {TableAction::Shift, StateOf.at(T.Target)});
      else
        Table.setGoto(State, T.Label, StateOf.at(T.Target));
    }
    for (RuleId Rule : Graph.acceptRules(Set))
      Table.addAction(State, G.endMarker(), {TableAction::Accept, Rule});
  }
  if (SetOfState != nullptr)
    *SetOfState = std::move(Sets);
  return Table;
}
