//===- lalr/LalrGen.cpp - LALR(1) generation (DeRemer–Pennello) -----------===//

#include "lalr/LalrGen.h"

#include "grammar/Analyses.h"

#include <cassert>
#include <unordered_map>

using namespace ipg;

namespace {

/// Flat CSR adjacency for the digraph relations (reads / includes).
/// Edges accumulate as (from, to) pairs in ONE flat vector and seal()
/// counting-sorts them into offset/edge arrays — three flat allocations
/// for the whole relation, replacing the per-node std::vector headers and
/// geometric regrowth of the old vector-of-vectors representation
/// (BM_LalrDigraphAlloc in bench/micro_kernels measures the difference).
class FlatRelation {
public:
  explicit FlatRelation(size_t NumNodes) : NumNodes(NumNodes) {}

  void addEdge(uint32_t From, uint32_t To) { Pairs.emplace_back(From, To); }

  /// Seals the accumulated edges into CSR form; addEdge is over.
  void seal() {
    Offsets.assign(NumNodes + 1, 0);
    for (const auto &[From, To] : Pairs)
      ++Offsets[From + 1];
    for (size_t I = 1; I <= NumNodes; ++I)
      Offsets[I] += Offsets[I - 1];
    Edges.resize(Pairs.size());
    std::vector<uint32_t> Fill(Offsets.begin(), Offsets.end() - 1);
    for (const auto &[From, To] : Pairs)
      Edges[Fill[From]++] = To;
    Pairs.clear();
    Pairs.shrink_to_fit();
  }

  ArrayView<uint32_t> successors(uint32_t X) const {
    return ArrayView<uint32_t>(Edges.data() + Offsets[X],
                               Offsets[X + 1] - Offsets[X]);
  }

private:
  size_t NumNodes;
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  std::vector<uint32_t> Offsets;
  std::vector<uint32_t> Edges;
};

/// DeRemer–Pennello digraph algorithm: computes the smallest F with
/// F(x) ⊇ Base(x) and F(x) ⊇ F(y) for every edge x → y in Rel, merging
/// strongly connected components on the fly.
class Digraph {
public:
  Digraph(const FlatRelation &Rel, std::vector<Bitset> &F)
      : Rel(Rel), F(F), Depth(F.size(), 0) {}

  void run() {
    for (uint32_t X = 0; X < F.size(); ++X)
      if (Depth[X] == 0)
        traverse(X);
  }

private:
  static constexpr uint32_t Infinity = ~uint32_t(0);

  void traverse(uint32_t X) {
    Stack.push_back(X);
    uint32_t D = static_cast<uint32_t>(Stack.size());
    Depth[X] = D;
    for (uint32_t Y : Rel.successors(X)) {
      if (Depth[Y] == 0)
        traverse(Y);
      Depth[X] = std::min(Depth[X], Depth[Y]);
      F[X].unionWith(F[Y]);
    }
    if (Depth[X] != D)
      return;
    // X is the root of an SCC: pop it and share its set with the members.
    while (true) {
      uint32_t Top = Stack.back();
      Stack.pop_back();
      Depth[Top] = Infinity;
      if (Top == X)
        break;
      F[Top] = F[X];
    }
  }

  const FlatRelation &Rel;
  std::vector<Bitset> &F;
  std::vector<uint32_t> Depth;
  std::vector<uint32_t> Stack;
};

} // namespace

ParseTable ipg::buildLalr1Table(ItemSetGraph &Graph,
                                std::vector<const ItemSet *> *SetOfState) {
  Graph.generateAll();
  const Grammar &G = Graph.grammar();
  GrammarAnalysis Analysis(G);
  size_t NumSymbols = G.symbols().size();

  std::vector<const ItemSet *> Sets = Graph.liveSets();
  std::unordered_map<const ItemSet *, uint32_t> StateOf;
  for (const ItemSet *Set : Sets)
    StateOf.emplace(Set, static_cast<uint32_t>(StateOf.size()));

  // Enumerate nonterminal transitions (p, A).
  struct NtTrans {
    const ItemSet *From;
    SymbolId Label;
    const ItemSet *To;
  };
  std::vector<NtTrans> Trans;
  std::unordered_map<uint64_t, uint32_t> TransIdx; // (state, A) -> index.
  auto TransKey = [&](const ItemSet *State, SymbolId A) {
    return (uint64_t(StateOf.at(State)) << 32) | A;
  };
  for (const ItemSet *Set : Sets)
    for (ItemSet::Transition T : Graph.transitions(Set))
      if (G.symbols().isNonterminal(T.Label)) {
        TransIdx.emplace(TransKey(Set, T.Label),
                         static_cast<uint32_t>(Trans.size()));
        Trans.push_back(NtTrans{Set, T.Label, T.Target});
      }

  // DR(p, A): terminals readable directly after the transition. The end
  // marker is readable exactly when the target accepts (START ::= β •).
  std::vector<Bitset> Follow(Trans.size(), Bitset(NumSymbols));
  for (size_t I = 0; I < Trans.size(); ++I) {
    for (ItemSet::Transition T : Graph.transitions(Trans[I].To))
      if (G.symbols().isTerminal(T.Label))
        Follow[I].set(T.Label);
    if (Trans[I].To->isAccepting())
      Follow[I].set(G.endMarker());
  }

  // reads: (p, A) → (r, C) when r = GOTO(p, A) has a transition on a
  // nullable nonterminal C.
  FlatRelation Reads(Trans.size());
  for (size_t I = 0; I < Trans.size(); ++I)
    for (ItemSet::Transition T : Graph.transitions(Trans[I].To))
      if (G.symbols().isNonterminal(T.Label) && Analysis.isNullable(T.Label))
        Reads.addEdge(static_cast<uint32_t>(I),
                      TransIdx.at(TransKey(Trans[I].To, T.Label)));
  Reads.seal();
  Digraph(Reads, Follow).run(); // Follow now holds the Read sets.

  // includes: (p_i, ω_i) → (p', B) for B ::= ω with a nullable suffix
  // after position i, walking ω from every state p' owning a B-transition.
  // lookback: (q, B ::= ω) ← (p', B) with q the end of the walk.
  FlatRelation Includes(Trans.size());
  std::unordered_map<uint64_t, std::vector<uint32_t>> Lookback;
  auto LookbackKey = [&](const ItemSet *State, RuleId Rule) {
    return (uint64_t(StateOf.at(State)) << 32) | Rule;
  };
  for (size_t I = 0; I < Trans.size(); ++I) {
    const ItemSet *From = Trans[I].From;
    for (RuleId RId : G.rulesFor(Trans[I].Label)) {
      const Rule &R = G.rule(RId);
      const ItemSet *Q = From;
      for (size_t Pos = 0; Pos < R.Rhs.size(); ++Pos) {
        SymbolId Sym = R.Rhs[Pos];
        if (G.symbols().isNonterminal(Sym) &&
            Analysis.isNullableSequence(R.Rhs, Pos + 1)) {
          uint32_t Inner = TransIdx.at(TransKey(Q, Sym));
          Includes.addEdge(Inner, static_cast<uint32_t>(I));
        }
        // The walk follows one transition per RHS symbol; the sorted
        // label span makes each step a binary search instead of a
        // re-scan of the whole transition list.
        Q = Graph.transitionTarget(Q, Sym);
        assert(Q != nullptr && "broken walk over a predicted rule");
      }
      Lookback[LookbackKey(Q, RId)].push_back(static_cast<uint32_t>(I));
    }
  }
  Includes.seal();
  Digraph(Includes, Follow).run(); // Follow now holds the Follow sets.

  // Assemble the table: LA(q, A ::= ω) = ∪ Follow(p, A) over lookback.
  ParseTable Table(Sets.size(), NumSymbols);
  for (const ItemSet *Set : Sets) {
    uint32_t State = StateOf.at(Set);
    for (RuleId Rule : Graph.reductions(Set)) {
      Bitset La(NumSymbols);
      auto It = Lookback.find(LookbackKey(Set, Rule));
      if (It != Lookback.end())
        for (uint32_t I : It->second)
          La.unionWith(Follow[I]);
      La.forEach([&](size_t Sym) {
        Table.addAction(State, static_cast<SymbolId>(Sym),
                        {TableAction::Reduce, Rule});
      });
    }
    for (ItemSet::Transition T : Graph.transitions(Set)) {
      if (G.symbols().isTerminal(T.Label))
        Table.addAction(State, T.Label,
                        {TableAction::Shift, StateOf.at(T.Target)});
      else
        Table.setGoto(State, T.Label, StateOf.at(T.Target));
    }
    for (RuleId Rule : Graph.acceptRules(Set))
      Table.addAction(State, G.endMarker(), {TableAction::Accept, Rule});
  }
  if (SetOfState != nullptr)
    *SetOfState = std::move(Sets);
  return Table;
}

std::vector<ConflictResolution>
ipg::resolveConflictsYaccStyle(ParseTable &Table, const Grammar &G) {
  std::vector<ConflictResolution> Decisions;
  for (const TableConflict &Conflict : Table.conflicts()) {
    // Prefer shift; among reduces prefer the lowest-numbered rule. Accept
    // (only ever paired through grammar pathologies) outranks everything.
    TableAction Best = Conflict.Actions.front();
    for (const TableAction &Action : Conflict.Actions) {
      if (Action.Kind == TableAction::Accept) {
        Best = Action;
        break;
      }
      if (Action.Kind == TableAction::Shift &&
          Best.Kind != TableAction::Shift)
        Best = Action;
      else if (Action.Kind == TableAction::Reduce &&
               Best.Kind == TableAction::Reduce && Action.Value < Best.Value)
        Best = Action;
    }
    std::string Note;
    bool HasShift = false, HasReduce = false;
    for (const TableAction &Action : Conflict.Actions) {
      HasShift |= Action.Kind == TableAction::Shift;
      HasReduce |= Action.Kind == TableAction::Reduce;
    }
    if (HasShift && HasReduce)
      Note = "shift/reduce conflict on '" + G.symbols().name(Conflict.Symbol) +
             "' resolved as shift";
    else if (HasReduce)
      Note = "reduce/reduce conflict on '" +
             G.symbols().name(Conflict.Symbol) +
             "' resolved as the earliest rule";
    Table.resolveAction(Conflict.State, Conflict.Symbol, Best);
    Decisions.push_back(
        ConflictResolution{Conflict.State, Conflict.Symbol, Best, Note});
  }
  return Decisions;
}
