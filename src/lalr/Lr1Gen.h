//===- lalr/Lr1Gen.h - Canonical LR(1) table generation ---------*- C++ -*-===//
///
/// \file
/// The canonical LR(1) construction, completing the LR family next to
/// LR(0), SLR(1) and LALR(1). §2 of the paper notes that "when the
/// look-ahead k is increased, the class of recognizable languages becomes
/// larger ... and the table generation time increases exponentially";
/// bench/lr_family measures exactly that state blowup on the SDF grammar
/// — the cost that justifies IPG's LR(0) choice (and Horspool's LALR(1)
/// troubles in the postscript).
///
/// Unlike the other generators this one builds its own item sets (items
/// carry a lookahead terminal), so it does not share the ItemSetGraph.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_LALR_LR1GEN_H
#define IPG_LALR_LR1GEN_H

#include "lr/ParseTable.h"

namespace ipg {

/// Statistics of one canonical LR(1) construction.
struct Lr1Stats {
  size_t NumStates = 0;
  size_t NumItems = 0; ///< Total LR(1) items over all states.
};

/// Builds the canonical LR(1) table for \p G.
ParseTable buildLr1Table(const Grammar &G, Lr1Stats *Stats = nullptr);

} // namespace ipg

#endif // IPG_LALR_LR1GEN_H
