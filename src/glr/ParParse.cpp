//===- glr/ParParse.cpp - The paper's literal PAR-PARSE (§3.2) ------------===//

#include "glr/ParParse.h"

#include <deque>

using namespace ipg;

namespace {

/// Persistent stack cell; parsers share tails.
struct StackCell {
  ItemSet *State;
  StackCell *Below;
};

/// The paper's LRparser object: "an object of type 'LRparser' with a
/// single field stack".
struct LrParserObj {
  StackCell *Top;
};

} // namespace

ParParseResult ParParser::parse(TokenView Input) {
  ParParseResult Result;
  Grammar &G = Graph.grammar();
  std::deque<StackCell> Cells;
  auto Push = [&](ItemSet *State, StackCell *Below) -> StackCell * {
    Cells.push_back(StackCell{State, Below});
    return &Cells.back();
  };

  // start-parser := new(LRparser); push(start-state, start-parser.stack)
  std::vector<LrParserObj> NextSweep{
      LrParserObj{Push(Graph.startSet(), nullptr)}};

  size_t Pos = Input.cursor();
  while (!NextSweep.empty()) {
    // symbol, sentence := head(sentence), tail(sentence)
    SymbolId Symbol = Pos < Input.size() ? Input[Pos] : G.endMarker();
    ++Pos;
    if (Pos > Input.size() + 1)
      break; // Both pools empty next round; $ consumed exactly once.

    // this-sweep, next-sweep := next-sweep, ∅
    std::vector<LrParserObj> ThisSweep = std::move(NextSweep);
    NextSweep.clear();

    while (!ThisSweep.empty()) {
      if (++Result.Steps > StepLimit) {
        Result.Diverged = true;
        return Result;
      }
      // this-sweep := this-sweep − {parser}
      LrParserObj Parser = ThisSweep.back();
      ThisSweep.pop_back();
      Result.MaxLiveParsers = std::max(
          Result.MaxLiveParsers,
          uint64_t(ThisSweep.size() + NextSweep.size() + 1));

      ItemSet *State = Parser.Top->State;
      // Allocation-free ACTION iteration; the pushes below only ever
      // touch the sweep pools and the shared stack cells, never the graph,
      // so the underlying view stays valid for the whole sweep step.
      Graph.forEachAction(State, Symbol, [&](const LrAction &Action) {
        // parser' := copy(parser) — O(1), stacks share cells.
        LrParserObj Copy = Parser;
        ++Result.Copies;
        switch (Action.Kind) {
        case LrAction::Shift:
          Copy.Top = Push(Action.Target, Copy.Top);
          NextSweep.push_back(Copy);
          break;
        case LrAction::Reduce: {
          const Rule &R = G.rule(Action.Rule);
          for (size_t I = 0; I < R.Rhs.size(); ++I)
            Copy.Top = Copy.Top->Below;
          // GOTO is called without forcing completion: Appendix A
          // guarantees the set of items below the handle is complete.
          ItemSet *Target = Graph.gotoState(Copy.Top->State, R.Lhs);
          Copy.Top = Push(Target, Copy.Top);
          ThisSweep.push_back(Copy);
          break;
        }
        case LrAction::Accept:
          Result.Accepted = true;
          break;
        }
      });
    }
  }
  return Result;
}
