//===- glr/GlrParser.h - Tomita parsing on a graph-structured stack -*- C++ -*-===//
///
/// \file
/// The (pseudo-)parallel LR parser of §3.2, in the efficient formulation:
/// instead of copying whole LR parsers (PAR-PARSE), the parsers' stacks are
/// merged into a graph-structured stack, and derivations are packed into a
/// shared forest. This is the "more efficient style of programming than
/// Tomita did in his book" the §7 footnote alludes to; the literal
/// PAR-PARSE lives in glr/ParParse.h for fidelity tests and ablation.
///
/// The stepping machinery itself lives in glr/GssEngine.h — a resumable
/// stepper the incremental layer drives token by token. This class is the
/// one-shot convenience over it: feed a whole TokenView, return the
/// verdict and forest.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GLR_GLRPARSER_H
#define IPG_GLR_GLRPARSER_H

#include "glr/Forest.h"
#include "glr/GssEngine.h"
#include "lr/ItemSetGraph.h"
#include "support/TokenView.h"

#include <vector>

namespace ipg {

/// Tomita parser over a (possibly still growing) graph of item sets.
class GlrParser {
public:
  explicit GlrParser(ItemSetGraph &Graph) : Engine(Graph) {}

  /// Parses the tokens of \p Input from its cursor to the end (terminals,
  /// no end marker), building derivations in \p F. Expands the item-set
  /// graph on demand via ACTION.
  GlrResult parse(TokenView Input, Forest &F);

  /// Convenience: parse and report acceptance only (still builds the
  /// forest, as the paper's measurements do — "the parsers constructed a
  /// parse tree but did not print it").
  bool recognize(TokenView Input);

  // Thin forwarding overloads so pre-TokenView vector call sites keep
  // compiling (and out-of-tree find_package(ipg) consumers).
  GlrResult parse(const std::vector<SymbolId> &Input, Forest &F) {
    return parse(TokenView(Input), F);
  }
  bool recognize(const std::vector<SymbolId> &Input) {
    return recognize(TokenView(Input));
  }

private:
  GssEngine Engine;
};

} // namespace ipg

#endif // IPG_GLR_GLRPARSER_H
