//===- glr/GlrParser.h - Tomita parsing on a graph-structured stack -*- C++ -*-===//
///
/// \file
/// The (pseudo-)parallel LR parser of §3.2, in the efficient formulation:
/// instead of copying whole LR parsers (PAR-PARSE), the parsers' stacks are
/// merged into a graph-structured stack, and derivations are packed into a
/// shared forest. This is the "more efficient style of programming than
/// Tomita did in his book" the §7 footnote alludes to; the literal
/// PAR-PARSE lives in glr/ParParse.h for fidelity tests and ablation.
///
/// The parser queries ACTION/GOTO straight off an ItemSetGraph — one
/// allocation-free forEachAction per (stack node, token) — so it runs
/// identically against a conventionally generated, lazily generated or
/// incrementally repaired graph — the property §5/§6 rely on.
///
/// ε-rules and hidden left recursion are handled Farshi-style: when a
/// reduction adds an edge to an already-processed stack node, a broadcast
/// flag is raised and — once the worklists drain — every processed node's
/// reductions are re-run in one sweep over the grown stack. Coalescing
/// the sweeps at quiescence keeps the reduction queue linear where
/// per-edge re-enqueueing grew it quadratically; edge/alternative dedup
/// makes the re-runs idempotent.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GLR_GLRPARSER_H
#define IPG_GLR_GLRPARSER_H

#include "glr/Forest.h"
#include "lr/ItemSetGraph.h"

#include <deque>
#include <vector>

namespace ipg {

/// Outcome of a GLR parse.
struct GlrResult {
  bool Accepted = false;
  /// Packed START node spanning the whole input; null on rejection.
  ForestNode *Root = nullptr;
  /// Token index at which all stacks died; == input size when the end
  /// marker was rejected.
  size_t ErrorIndex = 0;

  // Statistics for the measurements and ablations.
  uint64_t GssNodes = 0;
  uint64_t GssEdges = 0;
  uint64_t Shifts = 0;
  uint64_t Reductions = 0;
  uint64_t ReductionPaths = 0;
};

/// Tomita parser over a (possibly still growing) graph of item sets.
class GlrParser {
public:
  explicit GlrParser(ItemSetGraph &Graph) : Graph(Graph) {}

  /// Parses \p Input (terminals, no end marker), building derivations in
  /// \p F. Expands the item-set graph on demand via ACTION.
  GlrResult parse(const std::vector<SymbolId> &Input, Forest &F);

  /// Convenience: parse and report acceptance only (still builds the
  /// forest, as the paper's measurements do — "the parsers constructed a
  /// parse tree but did not print it").
  bool recognize(const std::vector<SymbolId> &Input);

private:
  ItemSetGraph &Graph;
};

} // namespace ipg

#endif // IPG_GLR_GLRPARSER_H
