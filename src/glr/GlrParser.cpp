//===- glr/GlrParser.cpp - Tomita parsing on a graph-structured stack -----===//

#include "glr/GlrParser.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace ipg;

namespace {

/// One node of the graph-structured stack: an item set plus the input
/// layer it was created in. Edges point towards the bottom of the stack
/// and carry the forest node derived over the spanned input.
struct GssNode {
  ItemSet *State;
  uint32_t Layer;
  bool Processed = false;

  struct Edge {
    GssNode *Back;
    ForestNode *Deriv;
  };
  std::vector<Edge> Edges;

  bool hasEdge(const GssNode *Back, const ForestNode *Deriv) const {
    for (const Edge &E : Edges)
      if (E.Back == Back && E.Deriv == Deriv)
        return true;
    return false;
  }
};

/// A queued reduction.
struct PendingReduce {
  GssNode *From;
  RuleId Rule;
};

struct PendingShift {
  GssNode *From;
  ItemSet *Target;
};

} // namespace

GlrResult GlrParser::parse(const std::vector<SymbolId> &Input, Forest &F) {
  GlrResult Result;
  Grammar &G = Graph.grammar();
  const size_t N = Input.size();

  std::deque<GssNode> NodeArena;
  auto NewNode = [&](ItemSet *State, uint32_t Layer) -> GssNode * {
    NodeArena.push_back(GssNode{State, Layer, false, {}});
    ++Result.GssNodes;
    return &NodeArena.back();
  };

  // Dense frontier index keyed by item-set id, stamped by layer: "which
  // node of this layer holds state S" is asked on every reduction path
  // and every shift, and the flat array answers in O(1) with no hashing,
  // no per-layer container rebuild and no per-insert allocation (the
  // prior FindInFrontier was an O(frontier) scan per query). Lazy
  // expansion can create new item sets mid-parse, so the array grows on
  // demand. Stamps start at 1; 0 marks a never-touched slot.
  //
  // Sizing is driven purely by the ids this parse actually meets — never
  // by the graph's set count, which another session expanding the shared
  // graph (server/GrammarServer.h) can grow at any instant. Growth is
  // amortized (doubling) so a concurrent expander interleaving new ids
  // with ours cannot force a reallocation per shift.
  std::vector<std::pair<uint64_t, GssNode *>> ByState;
  auto FindInLayer = [&](const ItemSet *State,
                         uint64_t Stamp) -> GssNode * {
    size_t Id = State->id();
    if (Id >= ByState.size() || ByState[Id].first != Stamp)
      return nullptr;
    return ByState[Id].second;
  };
  auto PutInLayer = [&](GssNode *Node, uint64_t Stamp) {
    size_t Id = Node->State->id();
    if (Id >= ByState.size())
      ByState.resize(std::max(Id + 1, ByState.size() * 2), {0, nullptr});
    ByState[Id] = {Stamp, Node};
  };

  std::vector<GssNode *> Frontier;
  GssNode *Root = NewNode(Graph.startSet(), 0);
  Frontier.push_back(Root);
  PutInLayer(Root, 1);

  for (size_t Pos = 0; Pos <= N; ++Pos) {
    SymbolId Token = Pos < N ? Input[Pos] : G.endMarker();
    const uint64_t CurStamp = Pos + 1;

    std::vector<PendingReduce> Reductions;
    std::vector<PendingShift> Shifts;
    std::vector<GssNode *> Queue = Frontier;
    size_t QueueIdx = 0;

    // Farshi's safety net: a new edge below an already-processed node can
    // complete reduction paths that were enumerated too early. Instead of
    // re-enqueueing every processed node's reductions at each such edge
    // (which grows the queue quadratically in edge insertions), the event
    // only raises this flag; the fixpoint loop runs one broadcast sweep
    // per quiescence, so each storm of new edges costs one re-run round.
    // Edge/alternative dedup makes the re-runs idempotent.
    bool NeedsBroadcast = false;

    // Performs one queued reduction: enumerate stack paths of the rule's
    // length, build/pack the forest node per path, and extend the GSS.
    auto DoReduce = [&](const PendingReduce &PR) {
      const Rule &R = G.rule(PR.Rule);
      const size_t M = R.Rhs.size();
      ++Result.Reductions;

      std::vector<ForestNode *> Deriv(M);
      auto FinishPath = [&](GssNode *Bottom) {
        ++Result.ReductionPaths;
        // Nodes below the frontier were completed in their own layer, but
        // with lazy generation a goto target created this layer may still
        // be initial; complete it before GOTO (see header).
        Graph.ensureComplete(Bottom->State);
        ItemSet *Target = Graph.gotoState(Bottom->State, R.Lhs);
        ForestNode *FN = F.derivation(R.Lhs, Bottom->Layer,
                                      static_cast<uint32_t>(Pos), PR.Rule,
                                      Deriv);

        GssNode *U = FindInLayer(Target, CurStamp);
        if (U == nullptr) {
          U = NewNode(Target, static_cast<uint32_t>(Pos));
          U->Edges.push_back(GssNode::Edge{Bottom, FN});
          ++Result.GssEdges;
          Frontier.push_back(U);
          PutInLayer(U, CurStamp);
          Queue.push_back(U);
          return;
        }
        if (U->hasEdge(Bottom, FN))
          return;
        U->Edges.push_back(GssNode::Edge{Bottom, FN});
        ++Result.GssEdges;
        if (U->Processed)
          NeedsBroadcast = true;
      };

      // DFS over stack paths; Remaining counts edges still to follow and
      // doubles as the child slot (topmost edge = rightmost child).
      auto Walk = [&](auto &&Self, GssNode *Cur, size_t Remaining) -> void {
        if (Remaining == 0) {
          FinishPath(Cur);
          return;
        }
        // Snapshot: edges added during FinishPath recursion must not be
        // traversed mid-enumeration (the broadcast sweep covers them).
        size_t NumEdges = Cur->Edges.size();
        for (size_t I = 0; I < NumEdges; ++I) {
          Deriv[Remaining - 1] = Cur->Edges[I].Deriv;
          Self(Self, Cur->Edges[I].Back, Remaining - 1);
        }
      };

      if (M == 0)
        FinishPath(PR.From);
      else
        Walk(Walk, PR.From, M);
    };

    // Fixpoint over node processing, reductions, and (at quiescence) the
    // Farshi broadcast sweeps.
    while (QueueIdx < Queue.size() || !Reductions.empty() ||
           NeedsBroadcast) {
      if (!Reductions.empty()) {
        PendingReduce PR = Reductions.back();
        Reductions.pop_back();
        DoReduce(PR);
        continue;
      }
      if (QueueIdx >= Queue.size()) {
        // Quiescent except for a pending broadcast: re-run every
        // processed node's reductions once over the grown stack. The
        // states are complete (they were queried when processed), so the
        // reduction list is read straight off the item set — no repeat
        // of the (node, token) ACTION query.
        NeedsBroadcast = false;
        for (GssNode *Node : Frontier)
          if (Node->Processed)
            for (RuleId Rule : Graph.reductions(Node->State))
              Reductions.push_back(PendingReduce{Node, Rule});
        continue;
      }
      GssNode *Node = Queue[QueueIdx++];
      if (Node->Processed)
        continue;
      Node->Processed = true;
      // The one ACTION query for this (node, token): an allocation-free
      // view over the item set's action index.
      Graph.forEachAction(Node->State, Token, [&](const LrAction &A) {
        switch (A.Kind) {
        case LrAction::Shift:
          Shifts.push_back(PendingShift{Node, A.Target});
          break;
        case LrAction::Reduce:
          Reductions.push_back(PendingReduce{Node, A.Rule});
          break;
        case LrAction::Accept:
          // Resolved after the fixpoint, when the GSS is final.
          break;
        }
      });
    }

    if (Pos == N) {
      // Acceptance: enumerate START ::= β• paths back to the root node and
      // pack them into one START forest node spanning the whole input.
      for (GssNode *Node : Frontier) {
        if (!Node->State->isAccepting())
          continue;
        for (RuleId RId : Graph.acceptRules(Node->State)) {
          const Rule &R = G.rule(RId);
          const size_t M = R.Rhs.size();
          std::vector<ForestNode *> Deriv(M);
          auto Walk = [&](auto &&Self, GssNode *Cur, size_t Remaining) -> void {
            if (Remaining == 0) {
              if (Cur != Root)
                return;
              ForestNode *StartNode = F.derivation(
                  G.startSymbol(), 0, static_cast<uint32_t>(N), RId, Deriv);
              if (Result.Root == nullptr)
                Result.Root = StartNode;
              Result.Accepted = true;
              return;
            }
            for (const GssNode::Edge &E : Cur->Edges) {
              Deriv[Remaining - 1] = E.Deriv;
              Self(Self, E.Back, Remaining - 1);
            }
          };
          Walk(Walk, Node, M);
        }
      }
      if (!Result.Accepted)
        Result.ErrorIndex = N;
      return Result;
    }

    // Shifter: advance every surviving parser over Token in lock-step —
    // the paper's synchronization of the this-sweep/next-sweep pools. The
    // next layer's stamp keys its target lookups in the same dense index.
    std::vector<GssNode *> NextFrontier;
    const uint64_t NextStamp = Pos + 2;
    ForestNode *TokenNode = nullptr;
    for (const PendingShift &S : Shifts) {
      if (TokenNode == nullptr)
        TokenNode = F.token(Token, static_cast<uint32_t>(Pos));
      GssNode *U = FindInLayer(S.Target, NextStamp);
      if (U == nullptr) {
        U = NewNode(S.Target, static_cast<uint32_t>(Pos + 1));
        NextFrontier.push_back(U);
        PutInLayer(U, NextStamp);
      }
      U->Edges.push_back(GssNode::Edge{S.From, TokenNode});
      ++Result.GssEdges;
      ++Result.Shifts;
    }
    if (NextFrontier.empty()) {
      Result.ErrorIndex = Pos;
      return Result;
    }
    Frontier = std::move(NextFrontier);
  }
  return Result; // Unreachable; the Pos == N branch returns.
}

bool GlrParser::recognize(const std::vector<SymbolId> &Input) {
  Forest F;
  return parse(Input, F).Accepted;
}
