//===- glr/GlrParser.cpp - Tomita parsing on a graph-structured stack -----===//

#include "glr/GlrParser.h"

#include <cassert>
#include <deque>

using namespace ipg;

namespace {

/// One node of the graph-structured stack: an item set plus the input
/// layer it was created in. Edges point towards the bottom of the stack
/// and carry the forest node derived over the spanned input.
struct GssNode {
  ItemSet *State;
  uint32_t Layer;
  bool Processed = false;

  struct Edge {
    GssNode *Back;
    ForestNode *Deriv;
  };
  std::vector<Edge> Edges;

  bool hasEdge(const GssNode *Back, const ForestNode *Deriv) const {
    for (const Edge &E : Edges)
      if (E.Back == Back && E.Deriv == Deriv)
        return true;
    return false;
  }
};

/// A queued reduction. HasVia restricts path enumeration to paths whose
/// first (topmost) edge is (ViaBack, ViaDeriv).
struct PendingReduce {
  GssNode *From;
  RuleId Rule;
  GssNode *ViaBack = nullptr;
  ForestNode *ViaDeriv = nullptr;
  bool HasVia = false;
};

struct PendingShift {
  GssNode *From;
  ItemSet *Target;
};

} // namespace

GlrResult GlrParser::parse(const std::vector<SymbolId> &Input, Forest &F) {
  GlrResult Result;
  Grammar &G = Graph.grammar();
  const size_t N = Input.size();

  std::deque<GssNode> NodeArena;
  auto NewNode = [&](ItemSet *State, uint32_t Layer) -> GssNode * {
    NodeArena.push_back(GssNode{State, Layer, false, {}});
    ++Result.GssNodes;
    return &NodeArena.back();
  };

  GssNode *Root = NewNode(Graph.startSet(), 0);
  std::vector<GssNode *> Frontier{Root};

  for (size_t Pos = 0; Pos <= N; ++Pos) {
    SymbolId Token = Pos < N ? Input[Pos] : G.endMarker();

    std::vector<PendingReduce> Reductions;
    std::vector<PendingShift> Shifts;
    std::vector<GssNode *> Queue = Frontier;
    size_t QueueIdx = 0;

    auto FindInFrontier = [&](const ItemSet *State) -> GssNode * {
      for (GssNode *Node : Frontier)
        if (Node->State == State)
          return Node;
      return nullptr;
    };

    // Farshi's safety net: a new edge below an already-processed node can
    // complete reduction paths that were enumerated too early. Re-enqueue
    // every processed node's reductions; edge/alternative dedup makes the
    // re-runs idempotent.
    auto BroadcastReRuns = [&]() {
      for (GssNode *Node : Frontier) {
        if (!Node->Processed)
          continue;
        for (const LrAction &A : Graph.actions(Node->State, Token))
          if (A.Kind == LrAction::Reduce)
            Reductions.push_back(PendingReduce{Node, A.Rule});
      }
    };

    // Performs one queued reduction: enumerate stack paths of the rule's
    // length, build/pack the forest node per path, and extend the GSS.
    auto DoReduce = [&](const PendingReduce &PR) {
      const Rule &R = G.rule(PR.Rule);
      const size_t M = R.Rhs.size();
      ++Result.Reductions;

      std::vector<ForestNode *> Deriv(M);
      auto FinishPath = [&](GssNode *Bottom) {
        ++Result.ReductionPaths;
        // Nodes below the frontier were completed in their own layer, but
        // with lazy generation a goto target created this layer may still
        // be initial; complete it before GOTO (see header).
        Graph.ensureComplete(Bottom->State);
        ItemSet *Target = Graph.gotoState(Bottom->State, R.Lhs);
        ForestNode *FN = F.derivation(R.Lhs, Bottom->Layer,
                                      static_cast<uint32_t>(Pos), PR.Rule,
                                      Deriv);

        GssNode *U = FindInFrontier(Target);
        if (U == nullptr) {
          U = NewNode(Target, static_cast<uint32_t>(Pos));
          U->Edges.push_back(GssNode::Edge{Bottom, FN});
          ++Result.GssEdges;
          Frontier.push_back(U);
          Queue.push_back(U);
          return;
        }
        if (U->hasEdge(Bottom, FN))
          return;
        U->Edges.push_back(GssNode::Edge{Bottom, FN});
        ++Result.GssEdges;
        if (U->Processed)
          BroadcastReRuns();
      };

      // DFS over stack paths; Remaining counts edges still to follow and
      // doubles as the child slot (topmost edge = rightmost child).
      auto Walk = [&](auto &&Self, GssNode *Cur, size_t Remaining) -> void {
        if (Remaining == 0) {
          FinishPath(Cur);
          return;
        }
        // Snapshot: edges added during FinishPath recursion must not be
        // traversed mid-enumeration (re-runs cover them).
        size_t NumEdges = Cur->Edges.size();
        for (size_t I = 0; I < NumEdges; ++I) {
          Deriv[Remaining - 1] = Cur->Edges[I].Deriv;
          Self(Self, Cur->Edges[I].Back, Remaining - 1);
        }
      };

      if (PR.HasVia) {
        if (M == 0)
          return;
        Deriv[M - 1] = PR.ViaDeriv;
        Walk(Walk, PR.ViaBack, M - 1);
      } else if (M == 0) {
        FinishPath(PR.From);
      } else {
        Walk(Walk, PR.From, M);
      }
    };

    // Fixpoint over node processing and reductions.
    while (QueueIdx < Queue.size() || !Reductions.empty()) {
      if (!Reductions.empty()) {
        PendingReduce PR = Reductions.back();
        Reductions.pop_back();
        DoReduce(PR);
        continue;
      }
      GssNode *Node = Queue[QueueIdx++];
      if (Node->Processed)
        continue;
      Node->Processed = true;
      for (const LrAction &A : Graph.actions(Node->State, Token)) {
        switch (A.Kind) {
        case LrAction::Shift:
          Shifts.push_back(PendingShift{Node, A.Target});
          break;
        case LrAction::Reduce:
          Reductions.push_back(PendingReduce{Node, A.Rule});
          break;
        case LrAction::Accept:
          // Resolved after the fixpoint, when the GSS is final.
          break;
        }
      }
    }

    if (Pos == N) {
      // Acceptance: enumerate START ::= β• paths back to the root node and
      // pack them into one START forest node spanning the whole input.
      for (GssNode *Node : Frontier) {
        if (!Node->State->isAccepting())
          continue;
        for (RuleId RId : Node->State->acceptRules()) {
          const Rule &R = G.rule(RId);
          const size_t M = R.Rhs.size();
          std::vector<ForestNode *> Deriv(M);
          auto Walk = [&](auto &&Self, GssNode *Cur, size_t Remaining) -> void {
            if (Remaining == 0) {
              if (Cur != Root)
                return;
              ForestNode *StartNode = F.derivation(
                  G.startSymbol(), 0, static_cast<uint32_t>(N), RId, Deriv);
              if (Result.Root == nullptr)
                Result.Root = StartNode;
              Result.Accepted = true;
              return;
            }
            for (const GssNode::Edge &E : Cur->Edges) {
              Deriv[Remaining - 1] = E.Deriv;
              Self(Self, E.Back, Remaining - 1);
            }
          };
          Walk(Walk, Node, M);
        }
      }
      if (!Result.Accepted)
        Result.ErrorIndex = N;
      return Result;
    }

    // Shifter: advance every surviving parser over Token in lock-step —
    // the paper's synchronization of the this-sweep/next-sweep pools.
    std::vector<GssNode *> NextFrontier;
    ForestNode *TokenNode = nullptr;
    for (const PendingShift &S : Shifts) {
      if (TokenNode == nullptr)
        TokenNode = F.token(Token, static_cast<uint32_t>(Pos));
      GssNode *U = nullptr;
      for (GssNode *Node : NextFrontier)
        if (Node->State == S.Target) {
          U = Node;
          break;
        }
      if (U == nullptr) {
        U = NewNode(S.Target, static_cast<uint32_t>(Pos + 1));
        NextFrontier.push_back(U);
      }
      U->Edges.push_back(GssNode::Edge{S.From, TokenNode});
      ++Result.GssEdges;
      ++Result.Shifts;
    }
    if (NextFrontier.empty()) {
      Result.ErrorIndex = Pos;
      return Result;
    }
    Frontier = std::move(NextFrontier);
  }
  return Result; // Unreachable; the Pos == N branch returns.
}

bool GlrParser::recognize(const std::vector<SymbolId> &Input) {
  Forest F;
  return parse(Input, F).Accepted;
}
