//===- glr/GlrParser.cpp - Tomita parsing on a graph-structured stack -----===//

#include "glr/GlrParser.h"

using namespace ipg;

GlrResult GlrParser::parse(TokenView Input, Forest &F) {
  Engine.begin(F);
  for (size_t Pos = Input.cursor(), N = Input.size(); Pos < N; ++Pos)
    if (!Engine.step(Input[Pos]))
      return Engine.result();
  return Engine.finish();
}

bool GlrParser::recognize(TokenView Input) {
  Forest F;
  return parse(Input, F).Accepted;
}
