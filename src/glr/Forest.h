//===- glr/Forest.h - Shared packed parse forests ---------------*- C++ -*-===//
///
/// \file
/// The parse-forest representation behind the Tomita parser. Nodes are
/// keyed by (symbol, start, end) and hold one *alternative* per distinct
/// derivation — "local ambiguity packing". The §7 footnote credits B. Lang
/// with the suggestion to improve the sharing of parse trees; packing on
/// spans is exactly that improvement, and the ablation bench can disable it
/// to reproduce the unshared behaviour.
///
/// Cyclic grammars (A ⇒+ A) produce cyclic forests; the counting and
/// extraction helpers saturate/skip cycles instead of diverging.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GLR_FOREST_H
#define IPG_GLR_FOREST_H

#include "grammar/Tree.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace ipg {

/// A forest node: a token occurrence or a packed set of derivations of one
/// nonterminal over one input span.
struct ForestNode {
  SymbolId Sym = InvalidSymbol;
  uint32_t Start = 0; ///< First token index covered.
  uint32_t End = 0;   ///< One past the last token index covered.
  bool IsToken = false;

  /// Packing-epoch stamp (see Forest::beginEpoch): the edit generation
  /// this node was created or last revalidated in. 0 for every node of a
  /// never-edited forest.
  uint32_t Epoch = 0;

  /// One derivation: a rule and one child per right-hand-side symbol.
  struct Alternative {
    RuleId Rule;
    std::vector<ForestNode *> Children;
  };
  std::vector<Alternative> Alts;

  bool isAmbiguous() const { return Alts.size() > 1; }
};

/// Owns and packs forest nodes for one parse.
class Forest {
public:
  /// When false, nonterminal() always creates a fresh node — the unshared
  /// mode for the sharing ablation.
  explicit Forest(bool PackNodes = true) : PackNodes(PackNodes) {}

  /// The (unique) token node for input position \p Index.
  ForestNode *token(SymbolId Sym, uint32_t Index);

  /// Finds or creates the packed node for \p Sym over [Start, End).
  ForestNode *nonterminal(SymbolId Sym, uint32_t Start, uint32_t End);

  /// Adds a derivation unless an identical one is already packed.
  /// Returns true if the alternative was new.
  bool addAlternative(ForestNode *Node, RuleId Rule,
                      std::vector<ForestNode *> Children);

  /// Records one derivation and returns its node. With packing this is
  /// nonterminal() + addAlternative() — one node per span holding every
  /// alternative. Without packing, nodes are content-addressed by their
  /// single derivation, so identical re-derivations return the same node
  /// (the GLR parser's edge dedup — and hence its termination — depends on
  /// this); distinct derivations of the same span stay separate nodes.
  /// Unpacked forests of cyclic grammars would be infinite; the unshared
  /// mode is for the sharing ablation on acyclic grammars only.
  ForestNode *derivation(SymbolId Sym, uint32_t Start, uint32_t End,
                         RuleId Rule, const std::vector<ForestNode *> &Children);

  size_t numNodes() const { return Nodes.size(); }
  size_t numAlternatives() const { return TotalAlternatives; }
  size_t numPackedAmbiguities() const { return PackedAmbiguities; }

  /// Number of distinct trees under \p Root, saturating at \p Cap.
  /// Cyclic derivations count as Cap (infinitely many trees).
  uint64_t countTrees(const ForestNode *Root, uint64_t Cap = ~0ull >> 1) const;

  /// Extracts one (acyclic) tree; subtrees may be shared. Returns null
  /// only if every derivation of \p Root is cyclic.
  TreeNode *firstTree(const ForestNode *Root, TreeArena &Arena) const;

  /// Appends up to \p Limit distinct trees under \p Root to \p Out.
  void enumerateTrees(const ForestNode *Root, size_t Limit, TreeArena &Arena,
                      std::vector<TreeNode *> &Out) const;

  //===--------------------------------------------------------------------===//
  // Edit epochs (incremental/ParseDocument.h).
  //
  // After a document edit at token position EditStart, nodes whose span
  // reaches past EditStart describe the *old* content: the packing lookups
  // must not find them, or a re-parse would merge fresh derivations into
  // stale nodes as spurious ambiguity. beginEpoch() advances a generation
  // stamp and lowers the valid-prefix watermark; a lookup then accepts a
  // node iff it was made this epoch or lies entirely inside the watermark
  // prefix (End <= watermark — untouched by every edit since the node's
  // epoch, because the watermark is the running minimum of edit starts).
  // The watermark only ever decreases, which can over-invalidate long-ago
  // prefixes — that costs sharing (a duplicate structurally-identical
  // node), never correctness.
  //===--------------------------------------------------------------------===//

  /// Starts a new edit epoch whose damage begins at token \p EditStart.
  void beginEpoch(uint32_t EditStart) {
    ++CurEpoch;
    Watermark = std::min(Watermark, EditStart);
  }
  uint32_t epoch() const { return CurEpoch; }

  /// Creates a node bypassing the packing lookup — the suspended-parse
  /// deserializer and the bounded re-parse's forest graft rebuild nodes
  /// 1:1 and must keep intentionally-distinct duplicates distinct. The
  /// node is NOT put in the packing index; call indexRestored() once it
  /// is complete (a graft that aborts midway must leave no half-built
  /// node where a later packing lookup could find it). Alternatives are
  /// attached with addAlternative().
  ForestNode *restoreNode(SymbolId Sym, uint32_t Start, uint32_t End,
                          bool IsToken);

  /// Publishes a restoreNode()d node to the packing index (stamped with
  /// the current epoch) so subsequent derivations pack onto it.
  void indexRestored(ForestNode *Node);

  /// All nodes ever made, in creation order (serialization walk).
  const std::deque<ForestNode> &nodes() const { return Nodes; }

private:
  ForestNode *make(SymbolId Sym, uint32_t Start, uint32_t End, bool IsToken);
  /// Epoch validity of a packing-lookup hit (see beginEpoch).
  bool validHit(ForestNode *Node) const {
    return Node->Epoch == CurEpoch || Node->End <= Watermark;
  }

  bool PackNodes;
  std::deque<ForestNode> Nodes;
  std::unordered_map<uint64_t, std::vector<ForestNode *>> Index;
  size_t TotalAlternatives = 0;
  size_t PackedAmbiguities = 0;
  uint32_t CurEpoch = 0;
  uint32_t Watermark = ~0u;
};

} // namespace ipg

#endif // IPG_GLR_FOREST_H
