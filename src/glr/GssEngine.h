//===- glr/GssEngine.h - Resumable graph-structured-stack stepper -*- C++ -*-===//
///
/// \file
/// The Tomita machinery of glr/GlrParser.h, refactored from a one-shot
/// `parse(Input)` loop into a persistent stepper: `begin()` seeds the
/// stack, `step(Token)` advances every live parser by one token, and
/// `finish()` runs the end-marker round and the acceptance walk. The
/// engine owns its node arena and the per-layer frontier records across
/// calls, which is what makes a parse *suspendable* (serialize the live
/// stack mid-input) and *restorable* (rewind the frontier to an earlier
/// layer and re-step from there) — the substrate of
/// incremental/ParseDocument.h.
///
/// Why rewinding is sound: the graph is LR(0), so an item set's reduction
/// span is token-independent — only the shift target (and acceptance)
/// consult the lookahead. Hence the *post-fixpoint* frontier of layer k
/// (all reductions drained, shifts not yet taken) is a deterministic
/// function of tokens 0..k-1 alone. Each step records exactly that
/// frontier as the layer's GssLayerRecord: an exact checkpoint. Restoring
/// one re-seats the frontier on nodes that will never mutate again (a
/// completed layer's nodes gain no edges once its shifts are taken), and
/// the resumed step only needs a shift-only ACTION re-query with the new
/// token — the reductions are already in the stack.
///
/// Frontier lookups are stamped with a monotonically increasing counter
/// rather than the input position, so a rewound parse can never collide
/// with stale ByState entries from an abandoned branch of a previous
/// generation.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GLR_GSSENGINE_H
#define IPG_GLR_GSSENGINE_H

#include "glr/Forest.h"
#include "lr/ItemSetGraph.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace ipg {

/// Outcome of a GLR parse.
struct GlrResult {
  bool Accepted = false;
  /// Packed START node spanning the whole input; null on rejection.
  ForestNode *Root = nullptr;
  /// Token index at which all stacks died; == input size when the end
  /// marker was rejected.
  size_t ErrorIndex = 0;

  // Statistics for the measurements and ablations.
  uint64_t GssNodes = 0;
  uint64_t GssEdges = 0;
  uint64_t Shifts = 0;
  uint64_t Reductions = 0;
  uint64_t ReductionPaths = 0;
};

/// One node of the graph-structured stack: an item set plus the input
/// layer it was created in. Edges point towards the bottom of the stack
/// and carry the forest node derived over the spanned input.
struct GssNode {
  ItemSet *State;
  uint32_t Layer;
  bool Processed = false;

  struct Edge {
    GssNode *Back;
    ForestNode *Deriv;
  };
  std::vector<Edge> Edges;

  bool hasEdge(const GssNode *Back, const ForestNode *Deriv) const {
    for (const Edge &E : Edges)
      if (E.Back == Back && E.Deriv == Deriv)
        return true;
    return false;
  }
};

/// The post-fixpoint frontier of one input layer — the engine's exact
/// checkpoint unit. Nodes are kept sorted by item-set id so two records
/// can be compared by a linear id sweep (the re-convergence precheck).
struct GssLayerRecord {
  std::vector<GssNode *> Nodes;
};

/// Resumable Tomita stepper over a (possibly still growing) item-set
/// graph. One instance drives one logical parse at a time; `begin()`
/// resets it for the next.
class GssEngine {
public:
  explicit GssEngine(ItemSetGraph &Graph) : Graph(&Graph) {}

  /// Starts a fresh parse at layer 0 building derivations in \p F. The
  /// node arena is recycled; pointers from previous parses die here.
  void begin(Forest &F);

  /// Advances every live parser over \p Token: runs the layer's
  /// reduction fixpoint (unless this layer was just restored — it is
  /// already complete), records the layer, and shifts. Returns false
  /// when every stack died; the engine then reports the position via
  /// result().ErrorIndex.
  bool step(SymbolId Token);

  /// End-marker round plus the acceptance walk; returns the final
  /// result. The engine's stack stays intact (restorable) afterwards.
  GlrResult finish();

  /// Token index the next step() consumes.
  size_t position() const { return Pos; }

  /// Cumulative statistics (and, after finish(), the verdict).
  const GlrResult &result() const { return Result; }
  GlrResult &result() { return Result; }

  /// Per-layer checkpoints recorded so far: records()[k] is the
  /// post-fixpoint frontier over tokens 0..k-1. Layer k has a record
  /// once step(token k) or finish() has run.
  const std::deque<GssLayerRecord> &records() const { return Records; }
  std::deque<GssLayerRecord> &records() { return Records; }

  /// Rewinds the parse to layer \p Layer: the frontier becomes that
  /// layer's recorded (post-fixpoint) frontier and records after it are
  /// dropped — move them out beforehand if they are still wanted (the
  /// bounded re-parse grafts them back). The next step() skips the
  /// fixpoint and performs only the shift-only ACTION re-query.
  void restore(size_t Layer);

  /// Adopts a grafted stack tail after a converged bounded re-parse:
  /// appends \p Tail to the records, seats the frontier on the last
  /// record, and fast-forwards the position to \p EndPos. The caller
  /// has already fixed the tail's nodes up (layers shifted, seam edges
  /// re-pointed).
  void adoptTail(std::deque<GssLayerRecord> &&Tail, size_t EndPos);

  /// The layer-0 root node acceptance paths must reach.
  GssNode *root() const { return Root; }

  Forest *forest() const { return F; }
  ItemSetGraph &graph() const { return *Graph; }

  /// Re-seats the engine — and every live node's State pointer — onto
  /// \p New, matching sets by their stable id. Sound across epoch forks
  /// (server/GrammarServer.h) because cloneExact plus the v2 adopt/load
  /// path preserve the id space exactly; whether the *behavior* behind an
  /// id changed (a set the MODIFY marked dirty) is the caller's problem —
  /// see DocumentSession::migrate(). Returns false and leaves the engine
  /// entirely on the old graph when some id has no live counterpart (the
  /// set was tombstoned), in which case the parse cannot migrate.
  bool rebindGraph(ItemSetGraph &New);

  /// Arena node count (live + abandoned branches) — observability only.
  size_t numArenaNodes() const { return NodeArena.size(); }

  /// The live frontier — post-shift (pre-fixpoint) nodes of layer
  /// position(), or a restored record when resumed() is true.
  const std::vector<GssNode *> &frontier() const { return Frontier; }

  /// True when the frontier came out of restore()/adoptTail()/a resumed
  /// deserialization: it is already post-fixpoint, and the next
  /// step()/finish() skips the reduction round.
  bool resumed() const { return Resumed; }

  //===--------------------------------------------------------------------===//
  // Deserializer protocol (incremental/ParseSnapshot.h): beginRestore()
  // empties the engine without seeding a fresh stack, restoreNode()
  // repopulates the arena 1:1, seatRestored() installs the records, the
  // frontier and the position in one move.
  //===--------------------------------------------------------------------===//

  /// Clears the engine for a 1:1 rebuild; no root is created.
  void beginRestore(Forest &Forst);

  /// Creates a node in the engine arena without stepping. Does not touch
  /// the construction metric: a rebuild is not new parse work.
  GssNode *restoreNode(ItemSet *State, uint32_t Layer);

  /// Installs the rebuilt stack. \p WasResumed restores the post-fixpoint
  /// flag the suspended engine carried; when false the frontier is
  /// registered in the layer index so the next fixpoint can find it.
  void seatRestored(std::deque<GssLayerRecord> Recs,
                    std::vector<GssNode *> Front, GssNode *NewRoot,
                    size_t Position, bool WasResumed, GlrResult Stats);

private:
  struct PendingShift {
    GssNode *From;
    ItemSet *Target;
  };

  GssNode *newNode(ItemSet *State, uint32_t Layer);
  void runFixpoint(SymbolId Token, std::vector<GssNode *> &Frontier);
  void recordLayer(const std::vector<GssNode *> &Frontier);

  ItemSetGraph *Graph;
  Forest *F = nullptr;

  std::deque<GssNode> NodeArena;
  std::deque<GssLayerRecord> Records;

  // Dense frontier index keyed by item-set id, stamped per layer
  // *generation*: "which node of this layer holds state S" is asked on
  // every reduction path and every shift, answered in O(1) with no
  // hashing. Stamps come from a monotone counter (never reused), so
  // entries from abandoned branches of a rewound parse can never alias a
  // live layer. Sizing is driven purely by the ids this parse meets —
  // never by the graph's set count, which another session expanding the
  // shared graph can grow at any instant; growth is amortized (doubling).
  std::vector<std::pair<uint64_t, GssNode *>> ByState;
  uint64_t StampCounter = 0;
  /// Stamp of the current (pre-fixpoint) frontier layer.
  uint64_t CurStamp = 0;

  std::vector<GssNode *> Frontier;
  /// Shifts collected by the current layer's ACTION queries, consumed by
  /// the shifter at the end of step().
  std::vector<PendingShift> PendingShifts;

  GssNode *Root = nullptr;
  size_t Pos = 0;
  /// True when the current frontier came out of restore(): it is already
  /// post-fixpoint, so the next step()/finish() skips the reduction round.
  bool Resumed = false;

  GlrResult Result;
};

} // namespace ipg

#endif // IPG_GLR_GSSENGINE_H
