//===- glr/Forest.cpp - Shared packed parse forests -----------------------===//

#include "glr/Forest.h"

#include <cassert>

using namespace ipg;

static uint64_t spanKey(SymbolId Sym, uint32_t Start, uint32_t End,
                        bool IsToken) {
  uint64_t Key = hashCombine(0x8f1bbcdcbfa53e0bULL, Sym);
  Key = hashCombine(Key, Start);
  Key = hashCombine(Key, End);
  return hashCombine(Key, IsToken);
}

ForestNode *Forest::make(SymbolId Sym, uint32_t Start, uint32_t End,
                         bool IsToken) {
  Nodes.push_back(ForestNode{Sym, Start, End, IsToken, CurEpoch, {}});
  return &Nodes.back();
}

ForestNode *Forest::restoreNode(SymbolId Sym, uint32_t Start, uint32_t End,
                                bool IsToken) {
  return make(Sym, Start, End, IsToken);
}

void Forest::indexRestored(ForestNode *Node) {
  Node->Epoch = CurEpoch;
  Index[spanKey(Node->Sym, Node->Start, Node->End, Node->IsToken)].push_back(
      Node);
}

ForestNode *Forest::token(SymbolId Sym, uint32_t Index) {
  uint64_t Key = spanKey(Sym, Index, Index + 1, /*IsToken=*/true);
  std::vector<ForestNode *> &Bucket = this->Index[Key];
  for (ForestNode *Node : Bucket)
    if (Node->Sym == Sym && Node->Start == Index && Node->IsToken &&
        validHit(Node)) {
      Node->Epoch = CurEpoch;
      return Node;
    }
  ForestNode *Node = make(Sym, Index, Index + 1, /*IsToken=*/true);
  Bucket.push_back(Node);
  return Node;
}

ForestNode *Forest::nonterminal(SymbolId Sym, uint32_t Start, uint32_t End) {
  if (!PackNodes)
    return make(Sym, Start, End, /*IsToken=*/false);
  uint64_t Key = spanKey(Sym, Start, End, /*IsToken=*/false);
  std::vector<ForestNode *> &Bucket = Index[Key];
  for (ForestNode *Node : Bucket)
    if (Node->Sym == Sym && Node->Start == Start && Node->End == End &&
        !Node->IsToken && validHit(Node)) {
      Node->Epoch = CurEpoch;
      return Node;
    }
  ForestNode *Node = make(Sym, Start, End, /*IsToken=*/false);
  Bucket.push_back(Node);
  return Node;
}

bool Forest::addAlternative(ForestNode *Node, RuleId Rule,
                            std::vector<ForestNode *> Children) {
  assert(!Node->IsToken && "tokens have no derivations");
  for (const ForestNode::Alternative &Alt : Node->Alts)
    if (Alt.Rule == Rule && Alt.Children == Children)
      return false;
  if (!Node->Alts.empty())
    ++PackedAmbiguities;
  Node->Alts.push_back(ForestNode::Alternative{Rule, std::move(Children)});
  ++TotalAlternatives;
  return true;
}

ForestNode *Forest::derivation(SymbolId Sym, uint32_t Start, uint32_t End,
                               RuleId Rule,
                               const std::vector<ForestNode *> &Children) {
  if (PackNodes) {
    ForestNode *Node = nonterminal(Sym, Start, End);
    addAlternative(Node, Rule, Children);
    return Node;
  }
  // Content-addressed lookup: identical derivations share one node.
  uint64_t Key = spanKey(Sym, Start, End, /*IsToken=*/false);
  Key = hashCombine(Key, Rule);
  for (const ForestNode *Child : Children)
    Key = hashCombine(Key, reinterpret_cast<uintptr_t>(Child));
  std::vector<ForestNode *> &Bucket = Index[Key];
  for (ForestNode *Node : Bucket)
    if (Node->Sym == Sym && Node->Start == Start && Node->End == End &&
        !Node->IsToken && Node->Alts.size() == 1 &&
        Node->Alts[0].Rule == Rule && Node->Alts[0].Children == Children &&
        validHit(Node)) {
      Node->Epoch = CurEpoch;
      return Node;
    }
  ForestNode *Node = make(Sym, Start, End, /*IsToken=*/false);
  Node->Alts.push_back(ForestNode::Alternative{Rule, Children});
  ++TotalAlternatives;
  Bucket.push_back(Node);
  return Node;
}

namespace {

/// Saturating helpers for tree counting.
uint64_t satAdd(uint64_t A, uint64_t B, uint64_t Cap) {
  return (A > Cap - B) ? Cap : A + B;
}
uint64_t satMul(uint64_t A, uint64_t B, uint64_t Cap) {
  if (A == 0 || B == 0)
    return 0;
  return (A > Cap / B) ? Cap : A * B;
}

struct CountMemo {
  enum State : uint8_t { Unvisited, InProgress, Done };
  std::unordered_map<const ForestNode *, std::pair<State, uint64_t>> Map;
};

uint64_t countRec(const ForestNode *Node, uint64_t Cap, CountMemo &Memo) {
  if (Node->IsToken)
    return 1;
  auto [It, Inserted] =
      Memo.Map.try_emplace(Node, std::make_pair(CountMemo::InProgress, 0ull));
  if (!Inserted) {
    if (It->second.first == CountMemo::InProgress)
      return Cap; // Cyclic derivation: infinitely many trees.
    return It->second.second;
  }
  uint64_t Total = 0;
  for (const ForestNode::Alternative &Alt : Node->Alts) {
    uint64_t Product = 1;
    for (const ForestNode *Child : Alt.Children)
      Product = satMul(Product, countRec(Child, Cap, Memo), Cap);
    Total = satAdd(Total, Product, Cap);
  }
  // try_emplace's iterator may be stale after recursion re-hashed the map.
  Memo.Map[Node] = {CountMemo::Done, Total};
  return Total;
}

} // namespace

uint64_t Forest::countTrees(const ForestNode *Root, uint64_t Cap) const {
  if (Root == nullptr)
    return 0;
  CountMemo Memo;
  return countRec(Root, Cap, Memo);
}

namespace {

struct ExtractContext {
  TreeArena &Arena;
  std::unordered_map<const ForestNode *, TreeNode *> Memo;
  std::unordered_map<const ForestNode *, bool> OnStack;
};

TreeNode *extractRec(const ForestNode *Node, ExtractContext &Ctx) {
  if (Node->IsToken)
    return Ctx.Arena.makeLeaf(Node->Sym, Node->Start);
  auto MemoIt = Ctx.Memo.find(Node);
  if (MemoIt != Ctx.Memo.end())
    return MemoIt->second;
  if (Ctx.OnStack[Node])
    return nullptr; // Would close a cycle; caller tries another alternative.
  Ctx.OnStack[Node] = true;
  TreeNode *Result = nullptr;
  for (const ForestNode::Alternative &Alt : Node->Alts) {
    std::vector<TreeNode *> Children;
    Children.reserve(Alt.Children.size());
    bool Ok = true;
    for (const ForestNode *Child : Alt.Children) {
      TreeNode *Sub = extractRec(Child, Ctx);
      if (Sub == nullptr) {
        Ok = false;
        break;
      }
      Children.push_back(Sub);
    }
    if (Ok) {
      Result = Ctx.Arena.makeNode(Node->Sym, Alt.Rule, std::move(Children));
      break;
    }
  }
  Ctx.OnStack[Node] = false;
  if (Result != nullptr)
    Ctx.Memo.emplace(Node, Result);
  return Result;
}

struct EnumerateContext {
  TreeArena &Arena;
  size_t Limit;
  std::unordered_map<const ForestNode *, bool> OnStack;
};

void enumerateRec(const ForestNode *Node, EnumerateContext &Ctx,
                  std::vector<TreeNode *> &Out) {
  if (Node->IsToken) {
    Out.push_back(Ctx.Arena.makeLeaf(Node->Sym, Node->Start));
    return;
  }
  if (Ctx.OnStack[Node])
    return; // Skip cyclic continuations.
  Ctx.OnStack[Node] = true;
  for (const ForestNode::Alternative &Alt : Node->Alts) {
    // Cartesian product over the children's tree sets, capped by Limit.
    std::vector<std::vector<TreeNode *>> PerChild(Alt.Children.size());
    bool Empty = false;
    for (size_t I = 0; I < Alt.Children.size() && !Empty; ++I) {
      enumerateRec(Alt.Children[I], Ctx, PerChild[I]);
      Empty = PerChild[I].empty();
    }
    if (Empty)
      continue;
    std::vector<size_t> Pick(Alt.Children.size(), 0);
    while (Out.size() < Ctx.Limit) {
      std::vector<TreeNode *> Children;
      Children.reserve(Pick.size());
      for (size_t I = 0; I < Pick.size(); ++I)
        Children.push_back(PerChild[I][Pick[I]]);
      Out.push_back(
          Ctx.Arena.makeNode(Node->Sym, Alt.Rule, std::move(Children)));
      // Odometer increment.
      size_t I = Pick.size();
      while (I > 0) {
        --I;
        if (++Pick[I] < PerChild[I].size())
          break;
        Pick[I] = 0;
        if (I == 0) {
          I = ~size_t(0);
          break;
        }
      }
      if (I == ~size_t(0) || Pick.empty())
        break;
    }
    if (Out.size() >= Ctx.Limit)
      break;
  }
  Ctx.OnStack[Node] = false;
}

} // namespace

TreeNode *Forest::firstTree(const ForestNode *Root, TreeArena &Arena) const {
  if (Root == nullptr)
    return nullptr;
  ExtractContext Ctx{Arena, {}, {}};
  return extractRec(Root, Ctx);
}

void Forest::enumerateTrees(const ForestNode *Root, size_t Limit,
                            TreeArena &Arena,
                            std::vector<TreeNode *> &Out) const {
  if (Root == nullptr || Limit == 0)
    return;
  EnumerateContext Ctx{Arena, Limit, {}};
  enumerateRec(Root, Ctx, Out);
  if (Out.size() > Limit)
    Out.resize(Limit);
}
