//===- glr/ParParse.h - The paper's literal PAR-PARSE (§3.2) ----*- C++ -*-===//
///
/// \file
/// A faithful transcription of the paper's PAR-PARSE: a pool of simple LR
/// parsers, copied per action, synchronized on shifts via the this-sweep /
/// next-sweep pools. Stacks are persistent lists so that "the parse stacks
/// become different objects which share the states on them" (§3.2) — the
/// copy is O(1).
///
/// This version exists for fidelity: it recognizes only (no trees), it
/// deliberately calls GOTO without forcing expansion (exercising the
/// Appendix A invariant under lazy generation), it can blow up
/// exponentially on ambiguity, and it diverges on ε/cyclic reduction
/// chains exactly as Tomita's original would — the step limit turns that
/// divergence into a reported failure. The production parser is
/// glr/GlrParser.h.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GLR_PARPARSE_H
#define IPG_GLR_PARPARSE_H

#include "lr/ItemSetGraph.h"
#include "support/TokenView.h"

#include <vector>

namespace ipg {

/// Outcome of a PAR-PARSE run.
struct ParParseResult {
  bool Accepted = false;
  /// True when the step limit was hit (ε/cyclic reduction chains).
  bool Diverged = false;
  uint64_t Steps = 0;
  uint64_t Copies = 0;
  uint64_t MaxLiveParsers = 0;
};

/// The paper's pseudo-parallel LR parser.
class ParParser {
public:
  explicit ParParser(ItemSetGraph &Graph, uint64_t StepLimit = 10'000'000)
      : Graph(Graph), StepLimit(StepLimit) {}

  /// Runs PAR-PARSE on \p Input (terminals, no end marker).
  ParParseResult parse(TokenView Input);

  // Thin forwarding overload for pre-TokenView call sites.
  ParParseResult parse(const std::vector<SymbolId> &Input) {
    return parse(TokenView(Input));
  }

private:
  ItemSetGraph &Graph;
  uint64_t StepLimit;
};

} // namespace ipg

#endif // IPG_GLR_PARPARSE_H
