//===- glr/GssEngine.cpp - Resumable graph-structured-stack stepper -------===//

#include "glr/GssEngine.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace ipg;

namespace {

/// A queued reduction.
struct PendingReduce {
  GssNode *From;
  RuleId Rule;
};

MetricCounter &gssNodeCounter() {
  static MetricCounter &C =
      MetricsRegistry::process().counter("glr.gss.nodes_constructed");
  return C;
}

} // namespace

GssNode *GssEngine::newNode(ItemSet *State, uint32_t Layer) {
  NodeArena.push_back(GssNode{State, Layer, false, {}});
  ++Result.GssNodes;
  gssNodeCounter().bump();
  return &NodeArena.back();
}

GssNode *GssEngine::restoreNode(ItemSet *State, uint32_t Layer) {
  // Deserialization rebuild: not a construction the incremental-evidence
  // metric should see.
  NodeArena.push_back(GssNode{State, Layer, true, {}});
  return &NodeArena.back();
}

void GssEngine::beginRestore(Forest &Forst) {
  F = &Forst;
  NodeArena.clear();
  Records.clear();
  Frontier.clear();
  PendingShifts.clear();
  Result = GlrResult();
  Root = nullptr;
  Pos = 0;
  Resumed = false;
  CurStamp = ++StampCounter;
}

void GssEngine::seatRestored(std::deque<GssLayerRecord> Recs,
                             std::vector<GssNode *> Front, GssNode *NewRoot,
                             size_t Position, bool WasResumed,
                             GlrResult Stats) {
  Records = std::move(Recs);
  Frontier = std::move(Front);
  Root = NewRoot;
  Pos = Position;
  Resumed = WasResumed;
  Result = Stats;
  CurStamp = ++StampCounter;
  if (!Resumed) {
    // A pre-fixpoint frontier: the next step()'s reduction round asks
    // the layer index "which node holds state S", so re-register it, and
    // clear Processed so the fixpoint actually queries ACTION for these
    // nodes (restoreNode marks everything processed; only a pre-fixpoint
    // frontier still has work pending).
    for (GssNode *Node : Frontier) {
      Node->Processed = false;
      size_t Id = Node->State->id();
      if (Id >= ByState.size())
        ByState.resize(std::max(Id + 1, ByState.size() * 2), {0, nullptr});
      ByState[Id] = {CurStamp, Node};
    }
  }
}

void GssEngine::begin(Forest &Forst) {
  F = &Forst;
  NodeArena.clear();
  Records.clear();
  Frontier.clear();
  // ByState keeps its capacity; the monotone stamps make stale entries
  // unmatchable.
  Result = GlrResult();
  Pos = 0;
  Resumed = false;
  CurStamp = ++StampCounter;

  Root = newNode(Graph->startSet(), 0);
  Frontier.push_back(Root);
  size_t Id = Root->State->id();
  if (Id >= ByState.size())
    ByState.resize(std::max(Id + 1, ByState.size() * 2), {0, nullptr});
  ByState[Id] = {CurStamp, Root};
}

void GssEngine::recordLayer(const std::vector<GssNode *> &Front) {
  assert(Records.size() == Pos && "layer recorded out of order");
  GssLayerRecord Rec;
  Rec.Nodes = Front;
  std::sort(Rec.Nodes.begin(), Rec.Nodes.end(),
            [](const GssNode *A, const GssNode *B) {
              return A->State->id() < B->State->id();
            });
  Records.push_back(std::move(Rec));
}

void GssEngine::restore(size_t Layer) {
  assert(Layer < Records.size() && "no record for restore layer");
  Records.resize(Layer + 1);
  Frontier = Records[Layer].Nodes;
  Pos = Layer;
  Resumed = true;
  CurStamp = ++StampCounter;
  Result.Accepted = false;
  Result.Root = nullptr;
  Result.ErrorIndex = 0;
}

void GssEngine::adoptTail(std::deque<GssLayerRecord> &&Tail, size_t EndPos) {
  for (GssLayerRecord &Rec : Tail)
    Records.push_back(std::move(Rec));
  assert(!Records.empty());
  Frontier = Records.back().Nodes;
  Pos = EndPos;
  Resumed = true;
  CurStamp = ++StampCounter;
}

bool GssEngine::rebindGraph(ItemSetGraph &New) {
  // Verify-then-commit, so a failed migration leaves every pointer on the
  // old graph. ByState needs no fixup: it is keyed by stable id and holds
  // node pointers, both graph-independent.
  for (const GssNode &Node : NodeArena)
    if (New.setById(Node.State->id()) == nullptr)
      return false;
  for (GssNode &Node : NodeArena)
    Node.State = New.setById(Node.State->id());
  Graph = &New;
  return true;
}

void GssEngine::runFixpoint(SymbolId Token, std::vector<GssNode *> &Front) {
  std::vector<PendingReduce> Reductions;
  std::vector<GssNode *> Queue = Front;
  size_t QueueIdx = 0;

  // Farshi's safety net: a new edge below an already-processed node can
  // complete reduction paths that were enumerated too early. Instead of
  // re-enqueueing every processed node's reductions at each such edge
  // (which grows the queue quadratically in edge insertions), the event
  // only raises this flag; the fixpoint loop runs one broadcast sweep
  // per quiescence, so each storm of new edges costs one re-run round.
  // Edge/alternative dedup makes the re-runs idempotent.
  bool NeedsBroadcast = false;

  auto FindInLayer = [&](const ItemSet *State) -> GssNode * {
    size_t Id = State->id();
    if (Id >= ByState.size() || ByState[Id].first != CurStamp)
      return nullptr;
    return ByState[Id].second;
  };
  auto PutInLayer = [&](GssNode *Node) {
    size_t Id = Node->State->id();
    if (Id >= ByState.size())
      ByState.resize(std::max(Id + 1, ByState.size() * 2), {0, nullptr});
    ByState[Id] = {CurStamp, Node};
  };

  // Performs one queued reduction: enumerate stack paths of the rule's
  // length, build/pack the forest node per path, and extend the GSS.
  auto DoReduce = [&](const PendingReduce &PR) {
    const Rule &R = Graph->grammar().rule(PR.Rule);
    const size_t M = R.Rhs.size();
    ++Result.Reductions;

    std::vector<ForestNode *> Deriv(M);
    auto FinishPath = [&](GssNode *Bottom) {
      ++Result.ReductionPaths;
      // Nodes below the frontier were completed in their own layer, but
      // with lazy generation a goto target created this layer may still
      // be initial; complete it before GOTO (see header).
      Graph->ensureComplete(Bottom->State);
      ItemSet *Target = Graph->gotoState(Bottom->State, R.Lhs);
      ForestNode *FN = F->derivation(R.Lhs, Bottom->Layer,
                                     static_cast<uint32_t>(Pos), PR.Rule,
                                     Deriv);

      GssNode *U = FindInLayer(Target);
      if (U == nullptr) {
        U = newNode(Target, static_cast<uint32_t>(Pos));
        U->Edges.push_back(GssNode::Edge{Bottom, FN});
        ++Result.GssEdges;
        Front.push_back(U);
        PutInLayer(U);
        Queue.push_back(U);
        return;
      }
      if (U->hasEdge(Bottom, FN))
        return;
      U->Edges.push_back(GssNode::Edge{Bottom, FN});
      ++Result.GssEdges;
      if (U->Processed)
        NeedsBroadcast = true;
    };

    // DFS over stack paths; Remaining counts edges still to follow and
    // doubles as the child slot (topmost edge = rightmost child).
    auto Walk = [&](auto &&Self, GssNode *Cur, size_t Remaining) -> void {
      if (Remaining == 0) {
        FinishPath(Cur);
        return;
      }
      // Snapshot: edges added during FinishPath recursion must not be
      // traversed mid-enumeration (the broadcast sweep covers them).
      size_t NumEdges = Cur->Edges.size();
      for (size_t I = 0; I < NumEdges; ++I) {
        Deriv[Remaining - 1] = Cur->Edges[I].Deriv;
        Self(Self, Cur->Edges[I].Back, Remaining - 1);
      }
    };

    if (M == 0)
      FinishPath(PR.From);
    else
      Walk(Walk, PR.From, M);
  };

  // Fixpoint over node processing, reductions, and (at quiescence) the
  // Farshi broadcast sweeps.
  while (QueueIdx < Queue.size() || !Reductions.empty() || NeedsBroadcast) {
    if (!Reductions.empty()) {
      PendingReduce PR = Reductions.back();
      Reductions.pop_back();
      DoReduce(PR);
      continue;
    }
    if (QueueIdx >= Queue.size()) {
      // Quiescent except for a pending broadcast: re-run every processed
      // node's reductions once over the grown stack. The states are
      // complete (they were queried when processed), so the reduction
      // list is read straight off the item set — no repeat of the
      // (node, token) ACTION query.
      NeedsBroadcast = false;
      for (GssNode *Node : Front)
        if (Node->Processed)
          for (RuleId Rule : Graph->reductions(Node->State))
            Reductions.push_back(PendingReduce{Node, Rule});
      continue;
    }
    GssNode *Node = Queue[QueueIdx++];
    if (Node->Processed)
      continue;
    Node->Processed = true;
    // The one ACTION query for this (node, token): an allocation-free
    // view over the item set's action index.
    Graph->forEachAction(Node->State, Token, [&](const LrAction &A) {
      switch (A.Kind) {
      case LrAction::Shift:
        PendingShifts.push_back({Node, A.Target});
        break;
      case LrAction::Reduce:
        Reductions.push_back(PendingReduce{Node, A.Rule});
        break;
      case LrAction::Accept:
        // Resolved in finish(), when the GSS is final.
        break;
      }
    });
  }
}

bool GssEngine::step(SymbolId Token) {
  PendingShifts.clear();
  if (!Resumed) {
    runFixpoint(Token, Frontier);
    recordLayer(Frontier);
  } else {
    // The restored frontier is already post-fixpoint (reductions are
    // token-independent under LR(0)); only the shift decision depends on
    // the new token, so re-query ACTION for shifts alone.
    Resumed = false;
    for (GssNode *Node : Frontier)
      Graph->forEachAction(Node->State, Token, [&](const LrAction &A) {
        if (A.Kind == LrAction::Shift)
          PendingShifts.push_back({Node, A.Target});
      });
  }

  // Shifter: advance every surviving parser over Token in lock-step —
  // the paper's synchronization of the this-sweep/next-sweep pools. The
  // next layer's stamp keys its target lookups in the same dense index.
  std::vector<GssNode *> NextFrontier;
  const uint64_t NextStamp = ++StampCounter;
  ForestNode *TokenNode = nullptr;
  for (const auto &S : PendingShifts) {
    if (TokenNode == nullptr)
      TokenNode = F->token(Token, static_cast<uint32_t>(Pos));
    size_t Id = S.Target->id();
    GssNode *U = nullptr;
    if (Id < ByState.size() && ByState[Id].first == NextStamp)
      U = ByState[Id].second;
    if (U == nullptr) {
      U = newNode(S.Target, static_cast<uint32_t>(Pos + 1));
      NextFrontier.push_back(U);
      if (Id >= ByState.size())
        ByState.resize(std::max(Id + 1, ByState.size() * 2), {0, nullptr});
      ByState[Id] = {NextStamp, U};
    }
    U->Edges.push_back(GssNode::Edge{S.From, TokenNode});
    ++Result.GssEdges;
    ++Result.Shifts;
  }
  PendingShifts.clear();
  if (NextFrontier.empty()) {
    Result.ErrorIndex = Pos;
    return false;
  }
  Frontier = std::move(NextFrontier);
  CurStamp = NextStamp;
  ++Pos;
  return true;
}

GlrResult GssEngine::finish() {
  Grammar &G = Graph->grammar();
  PendingShifts.clear();
  if (!Resumed) {
    runFixpoint(G.endMarker(), Frontier);
    recordLayer(Frontier);
    PendingShifts.clear();
  }

  // Acceptance: enumerate START ::= β• paths back to the root node and
  // pack them into one START forest node spanning the whole input.
  const size_t N = Pos;
  for (GssNode *Node : Frontier) {
    if (!Node->State->isAccepting())
      continue;
    for (RuleId RId : Graph->acceptRules(Node->State)) {
      const Rule &R = G.rule(RId);
      const size_t M = R.Rhs.size();
      std::vector<ForestNode *> Deriv(M);
      auto Walk = [&](auto &&Self, GssNode *Cur, size_t Remaining) -> void {
        if (Remaining == 0) {
          if (Cur != Root)
            return;
          ForestNode *StartNode = F->derivation(
              G.startSymbol(), 0, static_cast<uint32_t>(N), RId, Deriv);
          if (Result.Root == nullptr)
            Result.Root = StartNode;
          Result.Accepted = true;
          return;
        }
        for (const GssNode::Edge &E : Cur->Edges) {
          Deriv[Remaining - 1] = E.Deriv;
          Self(Self, E.Back, Remaining - 1);
        }
      };
      Walk(Walk, Node, M);
    }
  }
  if (!Result.Accepted)
    Result.ErrorIndex = N;
  return Result;
}
