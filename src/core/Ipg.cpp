//===- core/Ipg.cpp - The lazy & incremental parser generator -------------===//

#include "core/Ipg.h"

using namespace ipg;

bool Ipg::addRule(std::string_view Lhs,
                  std::initializer_list<std::string_view> Rhs) {
  SymbolTable &Symbols = Graph.grammar().symbols();
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  for (std::string_view Name : Rhs)
    RhsIds.push_back(Symbols.intern(Name));
  return addRule(Symbols.intern(Lhs), std::move(RhsIds));
}

bool Ipg::deleteRule(std::string_view Lhs,
                     std::initializer_list<std::string_view> Rhs) {
  SymbolTable &Symbols = Graph.grammar().symbols();
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  for (std::string_view Name : Rhs)
    RhsIds.push_back(Symbols.intern(Name));
  return deleteRule(Symbols.intern(Lhs), RhsIds);
}

double Ipg::coverage() const {
  Grammar Clone;
  Grammar::cloneActiveRules(Graph.grammar(), Clone);
  ItemSetGraph Full(Clone);
  size_t Total = Full.generateAll();
  if (Total == 0)
    return 1.0;
  return double(Graph.numComplete()) / double(Total);
}
