//===- core/Ipg.cpp - The lazy & incremental parser generator -------------===//

#include "core/Ipg.h"

#include "support/Metrics.h"

using namespace ipg;

bool Ipg::addRule(std::string_view Lhs,
                  std::initializer_list<std::string_view> Rhs) {
  SymbolTable &Symbols = Graph.grammar().symbols();
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  for (std::string_view Name : Rhs)
    RhsIds.push_back(Symbols.intern(Name));
  return addRule(Symbols.intern(Lhs), std::move(RhsIds));
}

bool Ipg::deleteRule(std::string_view Lhs,
                     std::initializer_list<std::string_view> Rhs) {
  SymbolTable &Symbols = Graph.grammar().symbols();
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  for (std::string_view Name : Rhs)
    RhsIds.push_back(Symbols.intern(Name));
  return deleteRule(Symbols.intern(Lhs), RhsIds);
}

double Ipg::coverage() const {
  Grammar Clone;
  Grammar::cloneActiveRules(Graph.grammar(), Clone);
  ItemSetGraph Full(Clone);
  size_t Total = Full.generateAll();
  if (Total == 0)
    return 1.0;
  return double(Graph.numComplete()) / double(Total);
}

JsonValue Ipg::metricsJson() const {
  JsonValue Doc = JsonValue::object();
  ItemSetGraphStats S = Graph.stats();
  JsonValue &GraphDoc = Doc.set("graph", JsonValue::object());
  GraphDoc.set("expansions", S.Expansions);
  GraphDoc.set("re_expansions", S.ReExpansions);
  GraphDoc.set("closure_items", S.ClosureItems);
  GraphDoc.set("dirty_marks", S.DirtyMarks);
  GraphDoc.set("collected", S.Collected);
  GraphDoc.set("goto_calls", S.GotoCalls);
  // Set-count walks are fine here: an Ipg graph is exclusive-mode (the
  // shared-graph server reports through GrammarServer::metricsJson(),
  // which must not walk a concurrently-growing pool).
  GraphDoc.set("live_sets", uint64_t(Graph.numLive()));
  GraphDoc.set("complete_sets", uint64_t(Graph.numComplete()));
  Doc.set("process", MetricsRegistry::process().toJson());
  return Doc;
}
