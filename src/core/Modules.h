//===- core/Modules.h - Modular composition of parsers ----------*- C++ -*-===//
///
/// \file
/// Modular composition of parsers — the future work of §8. Each module
/// contributes a set of rules and may import other modules ("each import of
/// a module extends the syntax of the importing module with the syntax of
/// the imported module", §1). Loading a module pushes its (transitively
/// imported) rules into an IPG instance through the incremental ADD-RULE
/// path; unloading removes exactly the rules no other loaded module still
/// needs. The paper calls the add-one-grammar-to-another approach
/// "asymmetrical"; refcounting modules and rules makes load/unload
/// symmetric in practice.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_CORE_MODULES_H
#define IPG_CORE_MODULES_H

#include "core/Ipg.h"
#include "support/Expected.h"

#include <map>
#include <string>
#include <vector>

namespace ipg {

/// A named bundle of rules (by symbol name) plus imports.
class GrammarModule {
public:
  explicit GrammarModule(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Adds a rule, given as symbol names.
  GrammarModule &rule(std::string Lhs, std::vector<std::string> Rhs) {
    Rules.push_back({std::move(Lhs), std::move(Rhs)});
    return *this;
  }

  /// Declares an import of another module.
  GrammarModule &imports(std::string Module) {
    Imports.push_back(std::move(Module));
    return *this;
  }

  struct NamedRule {
    std::string Lhs;
    std::vector<std::string> Rhs;
  };
  const std::vector<NamedRule> &rules() const { return Rules; }
  const std::vector<std::string> &importList() const { return Imports; }

private:
  std::string Name;
  std::vector<NamedRule> Rules;
  std::vector<std::string> Imports;
};

/// Loads/unloads modules into an Ipg, refcounting shared rules.
class ModuleSystem {
public:
  explicit ModuleSystem(Ipg &Generator) : Generator(Generator) {}

  /// Defines (or redefines, when not loaded) a module; returns it for
  /// fluent rule/import population.
  GrammarModule &define(const std::string &Name);

  /// Loads \p Name and its transitive imports. Returns the number of rules
  /// actually added to the grammar; errors on unknown modules or cyclic
  /// imports.
  Expected<size_t> load(const std::string &Name);

  /// Unloads \p Name (and imports no longer needed). Returns the number of
  /// rules actually removed.
  Expected<size_t> unload(const std::string &Name);

  bool isLoaded(const std::string &Name) const {
    auto It = LoadCount.find(Name);
    return It != LoadCount.end() && It->second > 0;
  }

private:
  /// Collects \p Name plus transitive imports in dependency-first order;
  /// detects unknown modules and import cycles.
  Expected<std::vector<const GrammarModule *>>
  closure(const std::string &Name) const;

  std::string ruleKey(const GrammarModule::NamedRule &R) const;

  Ipg &Generator;
  std::map<std::string, GrammarModule> Modules;
  std::map<std::string, int> LoadCount; ///< Per module (transitive).
  std::map<std::string, int> RuleCount; ///< Per structural rule.
};

} // namespace ipg

#endif // IPG_CORE_MODULES_H
