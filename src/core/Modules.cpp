//===- core/Modules.cpp - Modular composition of parsers ------------------===//

#include "core/Modules.h"

#include <algorithm>

using namespace ipg;

GrammarModule &ModuleSystem::define(const std::string &Name) {
  auto It = Modules.find(Name);
  if (It != Modules.end()) {
    if (!isLoaded(Name))
      It->second = GrammarModule(Name);
    return It->second;
  }
  return Modules.emplace(Name, GrammarModule(Name)).first->second;
}

Expected<std::vector<const GrammarModule *>>
ModuleSystem::closure(const std::string &Name) const {
  std::vector<const GrammarModule *> Order;
  std::vector<std::string> Stack; // DFS path, for cycle reporting.
  std::vector<std::string> Done;

  auto Visit = [&](auto &&Self, const std::string &Module) -> Expected<bool> {
    if (std::find(Done.begin(), Done.end(), Module) != Done.end())
      return true;
    if (std::find(Stack.begin(), Stack.end(), Module) != Stack.end())
      return Error("cyclic import involving module '" + Module + "'");
    auto It = Modules.find(Module);
    if (It == Modules.end())
      return Error("unknown module '" + Module + "'");
    Stack.push_back(Module);
    for (const std::string &Import : It->second.importList())
      if (Expected<bool> R = Self(Self, Import); !R)
        return R.error();
    Stack.pop_back();
    Done.push_back(Module);
    Order.push_back(&It->second);
    return true;
  };
  if (Expected<bool> R = Visit(Visit, Name); !R)
    return R.error();
  return Order;
}

std::string ModuleSystem::ruleKey(const GrammarModule::NamedRule &R) const {
  std::string Key = R.Lhs + " ::=";
  for (const std::string &Sym : R.Rhs)
    Key += " " + Sym;
  return Key;
}

Expected<size_t> ModuleSystem::load(const std::string &Name) {
  Expected<std::vector<const GrammarModule *>> Order = closure(Name);
  if (!Order)
    return Order.error();

  SymbolTable &Symbols = Generator.grammar().symbols();
  size_t Added = 0;
  for (const GrammarModule *Module : *Order) {
    if (++LoadCount[Module->name()] > 1)
      continue; // Already loaded via another root.
    for (const GrammarModule::NamedRule &R : Module->rules()) {
      if (++RuleCount[ruleKey(R)] > 1)
        continue; // Another loaded module contributes the same rule.
      std::vector<SymbolId> Rhs;
      Rhs.reserve(R.Rhs.size());
      for (const std::string &Sym : R.Rhs)
        Rhs.push_back(Symbols.intern(Sym));
      if (Generator.addRule(Symbols.intern(R.Lhs), std::move(Rhs)))
        ++Added;
    }
  }
  return Added;
}

Expected<size_t> ModuleSystem::unload(const std::string &Name) {
  if (!isLoaded(Name))
    return Error("module '" + Name + "' is not loaded");
  Expected<std::vector<const GrammarModule *>> Order = closure(Name);
  if (!Order)
    return Order.error();

  SymbolTable &Symbols = Generator.grammar().symbols();
  size_t Removed = 0;
  for (const GrammarModule *Module : *Order) {
    if (--LoadCount[Module->name()] > 0)
      continue;
    for (const GrammarModule::NamedRule &R : Module->rules()) {
      if (--RuleCount[ruleKey(R)] > 0)
        continue;
      std::vector<SymbolId> Rhs;
      Rhs.reserve(R.Rhs.size());
      for (const std::string &Sym : R.Rhs)
        Rhs.push_back(Symbols.intern(Sym));
      if (Generator.deleteRule(Symbols.intern(R.Lhs), Rhs))
        ++Removed;
    }
  }
  return Removed;
}
