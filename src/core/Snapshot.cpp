//===- core/Snapshot.cpp - Ipg snapshot save/load & §6 repair -------------===//
///
/// Implements Ipg::saveSnapshot / Ipg::loadSnapshot (declared in
/// core/Ipg.h) on top of the format constants of core/Snapshot.h: the
/// grammar sections and fingerprints come from grammar/GrammarIO.h, the
/// graph sections from lr/GraphSnapshot.h. Both container formats are
/// loaded out of one private file mapping (support/MappedFile.h): v1
/// decodes the varint payload record by record, v2's fingerprint-matched
/// fast path adopts the flat GRPH section in place — pointer fixup inside
/// the copy-on-write mapping, borrowed record spans, header-only
/// checksum. The load path owns the stale-snapshot repair strategy,
/// shared by both formats: bring the live grammar to the snapshot's rule
/// set, adopt the graph, then replay the rule delta through the
/// graph-level ADD-RULE/DELETE-RULE so MODIFY (§6.1) invalidates exactly
/// the states the difference touches.
///
//===----------------------------------------------------------------------===//

#include "core/Ipg.h"

#include "grammar/GrammarIO.h"
#include "lr/GraphSnapshot.h"
#include "support/FlatSection.h"
#include "support/Hashing.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <cstring>
#include <memory>

using namespace ipg;

namespace {

/// Process-wide snapshot observables (catalog in docs/OBSERVABILITY.md):
/// the v1-decode vs v2-adopt split the warm-start story rests on, plus
/// the §6 stale-repair replay volume.
struct SnapMetrics {
  MetricsRegistry &R = MetricsRegistry::process();
  MetricCounter &Saves = R.counter("ipg.snapshot.saves");
  MetricCounter &SaveBytes = R.counter("ipg.snapshot.save_bytes");
  MetricCounter &LoadsV1 = R.counter("ipg.snapshot.loads_v1");
  MetricCounter &V2Adopted = R.counter("ipg.snapshot.v2_adopted");
  MetricCounter &V2Decoded = R.counter("ipg.snapshot.v2_decoded");
  /// Loads whose snapshot was stale (nonzero rule delta) and went through
  /// the §6 replay, and the rules replayed across all of them.
  MetricCounter &StaleRepairs = R.counter("ipg.snapshot.stale_repairs");
  MetricCounter &RulesReplayed = R.counter("ipg.snapshot.rules_replayed");
  LatencyHistogram &SaveLatency = R.histogram("ipg.snapshot.save");
  LatencyHistogram &LoadV1Latency = R.histogram("ipg.snapshot.load_v1");
  LatencyHistogram &LoadV2AdoptLatency = R.histogram("ipg.snapshot.load_v2_adopt");
  LatencyHistogram &LoadV2DecodeLatency = R.histogram("ipg.snapshot.load_v2_decode");

  static SnapMetrics &get() {
    static SnapMetrics M;
    return M;
  }
};

/// The shared slow path: maps the decoded snapshot grammar onto the live
/// one, brings the live grammar to the snapshot's rule set, loads the
/// graph through \p LoadGraph(SymbolMap, RuleMap), then replays the rule
/// delta through the graph-level §6 operations. On a failed load the
/// grammar's active set is restored and the graph reset — the generator
/// stays usable.
template <typename LoadFnT>
Expected<SnapshotLoadResult>
remapAndRepair(Grammar &G, ItemSetGraph &Graph, const GrammarSnapshot &Snap,
               uint64_t SnapFingerprint, LoadFnT &&LoadGraph) {
  // Map the snapshot's symbols onto the live table. Most stale snapshots
  // differ from the live grammar by a handful of appended rules, so ids
  // usually still coincide: try the in-place string compare first and fall
  // back to the hashing intern only on mismatch.
  std::vector<SymbolId> SymbolMap;
  SymbolMap.reserve(Snap.Symbols.size());
  for (size_t I = 0; I < Snap.Symbols.size(); ++I) {
    const GrammarSnapshot::Symbol &Sym = Snap.Symbols[I];
    SymbolId Live = I < G.symbols().size() && G.symbols().name(I) == Sym.Name
                        ? static_cast<SymbolId>(I)
                        : G.symbols().intern(Sym.Name);
    if (Sym.IsNonterminal)
      G.symbols().markNonterminal(Live);
    SymbolMap.push_back(Live);
  }
  for (const GrammarSnapshot::SnapRule &SnapRule : Snap.Rules)
    for (uint32_t Sym : SnapRule.Rhs)
      if (SymbolMap[Sym] == G.startSymbol())
        return Error("snapshot rule uses START in a right-hand side");

  // Map the snapshot's rules (same in-place-first strategy), collecting
  // the live ids of its active set; nothing is activated yet.
  std::vector<RuleId> RuleMap;
  RuleMap.reserve(Snap.Rules.size());
  std::vector<RuleId> SnapActive;
  std::vector<SymbolId> Rhs;
  for (size_t I = 0; I < Snap.Rules.size(); ++I) {
    const GrammarSnapshot::SnapRule &SnapRule = Snap.Rules[I];
    SymbolId Lhs = SymbolMap[SnapRule.Lhs];
    Rhs.clear();
    Rhs.reserve(SnapRule.Rhs.size());
    for (uint32_t Sym : SnapRule.Rhs)
      Rhs.push_back(SymbolMap[Sym]);
    RuleId Id;
    if (I < G.numInternedRules() && G.rule(I).Lhs == Lhs &&
        G.rule(I).Rhs == Rhs)
      Id = static_cast<RuleId>(I);
    else
      Id = G.internRule(Lhs, Rhs);
    RuleMap.push_back(Id);
    if (SnapRule.IsActive)
      SnapActive.push_back(Id);
  }

  // The delta, snapshot → live. Live-only rules must be re-ADD-RULEd after
  // the graph is adopted; snapshot-only rules DELETE-RULEd.
  std::vector<uint8_t> IsSnapActive(G.numInternedRules(), 0);
  for (RuleId Id : SnapActive)
    IsSnapActive[Id] = 1;
  std::vector<RuleId> LiveOnly;
  for (RuleId Id : G.activeRules())
    if (!IsSnapActive[Id])
      LiveOnly.push_back(Id);

  // Bring the live grammar to the snapshot's rule set so the adopted graph
  // is consistent with it.
  std::vector<RuleId> SnapOnly;
  for (RuleId Id : SnapActive)
    if (G.activateRule(Id))
      SnapOnly.push_back(Id);
  for (RuleId Id : LiveOnly)
    G.removeRule(Id);

  Expected<size_t> Loaded = LoadGraph(SymbolMap, RuleMap);
  if (!Loaded) {
    // Undo: restore the grammar's active set, reset the graph to the
    // freshly-constructed one-node state. The generator stays usable.
    for (RuleId Id : SnapOnly)
      G.removeRule(Id);
    for (RuleId Id : LiveOnly)
      G.activateRule(Id);
    GraphSnapshot::reset(Graph);
    return Loaded.error();
  }

  // §6 repair: replay the snapshot→live delta through the graph-level
  // operations, so MODIFY re-marks exactly the affected states Dirty and
  // the lazy machinery re-expands them by need.
  if (!SnapOnly.empty() || !LiveOnly.empty()) {
    SnapMetrics::get().StaleRepairs.bump();
    SnapMetrics::get().RulesReplayed.bump(SnapOnly.size() + LiveOnly.size());
  }
  {
    IPG_TRACE_SPAN(Sp, "snap.repair_delta");
    IPG_TRACE_SPAN_ARG(Sp, SnapOnly.size() + LiveOnly.size());
    for (RuleId Id : SnapOnly)
      Graph.removeRule(G.rule(Id).Lhs, G.rule(Id).Rhs);
    for (RuleId Id : LiveOnly)
      Graph.addRule(G.rule(Id).Lhs, std::vector<SymbolId>(G.rule(Id).Rhs));
  }

  SnapshotLoadResult Result;
  // An empty delta means the active rule sets coincide — exactly what the
  // content fingerprint certifies (it is not recomputed here; the layout
  // check handles the byte-identical fast path before this runs).
  Result.FingerprintMatched = LiveOnly.empty() && SnapOnly.empty();
  Result.SnapshotFingerprint = SnapFingerprint;
  Result.StatesLoaded = *Loaded;
  Result.RulesAdded = LiveOnly.size();
  Result.RulesRemoved = SnapOnly.size();
  return Result;
}

/// Identity id maps for the fingerprint-matched fast paths.
std::vector<SymbolId> identitySymbolMap(const Grammar &G) {
  std::vector<SymbolId> Map(G.symbols().size());
  for (SymbolId Sym = 0; Sym < Map.size(); ++Sym)
    Map[Sym] = Sym;
  return Map;
}

std::vector<RuleId> identityRuleMap(const Grammar &G) {
  std::vector<RuleId> Map(G.numInternedRules());
  for (RuleId Id = 0; Id < Map.size(); ++Id)
    Map[Id] = Id;
  return Map;
}

/// New snapshots store hashBytesFast(payload); files written before the
/// checksum migration stored byte-at-a-time FNV-1a. Accept either so
/// existing snapshots (including the checked-in goldens) keep loading —
/// a corrupted payload still fails both comparisons.
bool payloadChecksumMatches(const uint8_t *Data, size_t Size,
                            uint64_t Expected) {
  return hashBytesFast(Data, Size) == Expected ||
         hashBytes(Data, Size) == Expected;
}

/// The v1 container: varint payload behind a whole-payload checksum.
Expected<SnapshotLoadResult> loadV1Container(Grammar &G, ItemSetGraph &Graph,
                                             const uint8_t *Data,
                                             size_t Size) {
  IPG_TRACE_SPAN(Sp, "snap.load.v1");
  ScopedLatency Lat(SnapMetrics::get().LoadV1Latency);
  SnapMetrics::get().LoadsV1.bump();
  ByteReader Reader(Data, Size);
  if (!Reader.consumeBytes(SnapshotMagic))
    return Error("not an ipg snapshot (bad magic)");
  Expected<uint64_t> SnapFingerprint = Reader.readU64();
  if (!SnapFingerprint)
    return SnapFingerprint.error();
  Expected<uint64_t> SnapLayout = Reader.readU64();
  if (!SnapLayout)
    return SnapLayout.error();
  Expected<uint64_t> PayloadHash = Reader.readU64();
  if (!PayloadHash)
    return PayloadHash.error();
  // Checksum the whole payload before decoding anything: a corrupted file
  // is rejected here, before the grammar or graph is touched.
  if (!payloadChecksumMatches(Data + Reader.position(), Reader.remaining(),
                              *PayloadHash))
    return Error("snapshot payload corrupted (checksum mismatch)");

  Expected<ByteReader> GramBody = Reader.readSection(SnapshotGramTag);
  if (!GramBody)
    return GramBody.error();
  Expected<ByteReader> GrphBody = Reader.readSection(SnapshotGrphTag);
  if (!GrphBody)
    return GrphBody.error();
  if (!Reader.atEnd())
    return Error("trailing bytes after snapshot");

  // Warm-start fast path: when the live grammar's table layout is exactly
  // what the snapshot was saved from, both id maps are the identity and
  // the whole by-name remapping (and the GRAM decode) can be skipped.
  if (*SnapLayout == grammarLayoutFingerprint(G)) {
    Expected<size_t> Loaded = GraphSnapshot::load(
        *GrphBody, Graph, identitySymbolMap(G), identityRuleMap(G));
    if (!Loaded) {
      GraphSnapshot::reset(Graph);
      return Loaded.error();
    }
    SnapshotLoadResult Result;
    Result.FingerprintMatched = true;
    Result.SnapshotFingerprint = *SnapFingerprint;
    Result.StatesLoaded = *Loaded;
    return Result;
  }

  Expected<GrammarSnapshot> Snap = readGrammarSnapshot(*GramBody);
  if (!Snap)
    return Snap.error();
  return remapAndRepair(G, Graph, *Snap, *SnapFingerprint,
                        [&](const std::vector<SymbolId> &SymbolMap,
                            const std::vector<RuleId> &RuleMap) {
                          return GraphSnapshot::load(*GrphBody, Graph,
                                                     SymbolMap, RuleMap);
                        });
}

/// The v2 container: flat sections behind a header checksum (fast path)
/// and a payload checksum (decode paths). Takes the mapping by shared_ptr
/// because the zero-copy adoption hands it to the graph.
Expected<SnapshotLoadResult>
loadV2Container(Grammar &G, ItemSetGraph &Graph,
                std::shared_ptr<MappedFile> Mapping) {
  uint8_t *Data = Mapping->data();
  const size_t Size = Mapping->size();
  if (Size < SnapshotV2HeaderBytes)
    return Error("truncated snapshot header");
  if (Data[11] != 0)
    return Error("unsupported snapshot version (expected ipg-snap-v1 or "
                 "ipg-snap-v2)");
  FlatView File(Data, Size);

  // The header carries its own checksum so the fast path can trust the
  // offsets and fingerprints without touching the payload pages.
  Expected<uint64_t> HeaderChk = File.u64At(72);
  if (!HeaderChk ||
      hashBytes(Data, SnapshotV2HeaderChecksumBytes) != *HeaderChk)
    return Error("snapshot header corrupted (checksum mismatch)");

  Expected<uint32_t> HeaderBytes = File.u32At(12);
  uint64_t Fields[7]; // fingerprint, layout, GramOff/Len, GrphOff/Len, chk.
  for (int I = 0; I < 7; ++I) {
    Expected<uint64_t> V = File.u64At(16 + 8 * static_cast<size_t>(I));
    if (!V)
      return V.error();
    Fields[I] = *V;
  }
  const uint64_t SnapFingerprint = Fields[0], SnapLayout = Fields[1];
  const uint64_t GramOff = Fields[2], GramLen = Fields[3];
  const uint64_t GrphOff = Fields[4], GrphLen = Fields[5];
  const uint64_t PayloadChk = Fields[6];
  if (!HeaderBytes || *HeaderBytes < SnapshotV2HeaderBytes ||
      *HeaderBytes > Size)
    return Error("malformed snapshot header");
  if (GramOff < *HeaderBytes || GramOff > Size || GramLen > Size - GramOff ||
      GrphOff < *HeaderBytes || GrphOff > Size || GrphLen > Size - GrphOff)
    return Error("snapshot section out of bounds");

  // Warm-start fast path: layout match means identity ids, so the GRPH
  // section can be adopted straight out of the mapping — no GRAM decode,
  // no payload checksum (the structural validation sweep inside adoptV2
  // is the integrity check the trust model asks of a cache format).
  // Adoption additionally needs the flat-arena GRPH layout (the Reserved
  // word of the GRPH header, byte 28 into the section); pre-refactor
  // sections wrote 0 there and go through the endian-safe decoder.
  if (SnapLayout == grammarLayoutFingerprint(G)) {
    FlatView Grph(Data + GrphOff, static_cast<size_t>(GrphLen));
    Expected<uint32_t> GrphLayout = Grph.u32At(28);
    if (!GrphLayout)
      return Error("truncated graph section");
    Expected<size_t> Loaded = Error("unreachable");
    if (GraphSnapshot::hostCanAdoptV2() && *GrphLayout == 1) {
      IPG_TRACE_SPAN(Sp, "snap.load.v2_adopt");
      ScopedLatency Lat(SnapMetrics::get().LoadV2AdoptLatency);
      Loaded = GraphSnapshot::adoptV2(Data + GrphOff,
                                      static_cast<size_t>(GrphLen), Graph,
                                      Mapping);
      if (Loaded)
        SnapMetrics::get().V2Adopted.bump();
    } else {
      // Big-endian / exotic-ABI hosts, or a pre-refactor (legacy layout)
      // section: same file, endian-safe decode into owned storage.
      // Integrity then comes from the payload checksum.
      IPG_TRACE_SPAN(Sp, "snap.load.v2_decode");
      ScopedLatency Lat(SnapMetrics::get().LoadV2DecodeLatency);
      if (!payloadChecksumMatches(Data + *HeaderBytes, Size - *HeaderBytes,
                              PayloadChk))
        return Error("snapshot payload corrupted (checksum mismatch)");
      Loaded = GraphSnapshot::loadV2(
          FlatView(Data + GrphOff, static_cast<size_t>(GrphLen)), Graph,
          identitySymbolMap(G), identityRuleMap(G));
      if (Loaded)
        SnapMetrics::get().V2Decoded.bump();
    }
    if (!Loaded) {
      GraphSnapshot::reset(Graph);
      return Loaded.error();
    }
    SnapshotLoadResult Result;
    Result.FingerprintMatched = true;
    Result.SnapshotFingerprint = SnapFingerprint;
    Result.StatesLoaded = *Loaded;
    return Result;
  }

  // Remapping slow path: decodes every record anyway, so verify the whole
  // payload up front like v1 does.
  IPG_TRACE_SPAN(Sp, "snap.load.v2_remap");
  ScopedLatency Lat(SnapMetrics::get().LoadV2DecodeLatency);
  SnapMetrics::get().V2Decoded.bump();
  if (!payloadChecksumMatches(Data + *HeaderBytes, Size - *HeaderBytes,
                              PayloadChk))
    return Error("snapshot payload corrupted (checksum mismatch)");
  Expected<GrammarSnapshot> Snap = readGrammarSnapshotV2(
      FlatView(Data + GramOff, static_cast<size_t>(GramLen)));
  if (!Snap)
    return Snap.error();
  return remapAndRepair(
      G, Graph, *Snap, SnapFingerprint,
      [&](const std::vector<SymbolId> &SymbolMap,
          const std::vector<RuleId> &RuleMap) {
        return GraphSnapshot::loadV2(
            FlatView(Data + GrphOff, static_cast<size_t>(GrphLen)), Graph,
            SymbolMap, RuleMap);
      });
}

} // namespace

Expected<size_t> Ipg::saveSnapshot(const std::string &Path,
                                   SnapshotFormat Format) const {
  return saveSnapshot(Path, std::vector<SnapshotExtraSection>(), Format);
}

Expected<size_t>
Ipg::saveSnapshot(const std::string &Path,
                  const std::vector<SnapshotExtraSection> &Extras,
                  SnapshotFormat Format) const {
  const Grammar &G = Graph.grammar();
  IPG_TRACE_SPAN(Sp, Format == SnapshotFormat::V1 ? "snap.save.v1"
                                                  : "snap.save.v2");
  ScopedLatency Lat(SnapMetrics::get().SaveLatency);
  SnapMetrics::get().Saves.bump();

  if (Format == SnapshotFormat::V1) {
    if (!Extras.empty())
      return Error("extra sections require the v2 snapshot format");
    ByteWriter Payload;
    size_t Gram = Payload.beginSection(SnapshotGramTag);
    writeGrammarSnapshot(G, Payload);
    Payload.endSection(Gram);
    size_t Grph = Payload.beginSection(SnapshotGrphTag);
    GraphSnapshot::save(Graph, Payload);
    Payload.endSection(Grph);

    ByteWriter File;
    File.writeBytes(SnapshotMagic, std::strlen(SnapshotMagic));
    File.writeU64(grammarFingerprint(G));
    File.writeU64(grammarLayoutFingerprint(G));
    File.writeU64(hashBytesFast(Payload.buffer().data(), Payload.size()));
    File.writeBytes(Payload.buffer().data(), Payload.size());
    Expected<size_t> Written = File.writeFile(Path);
    if (Written)
      SnapMetrics::get().SaveBytes.bump(*Written);
    return Written;
  }

  // Both sections serialize straight into the file buffer — no staging
  // writers, no second copy of ~100KB of pool bytes. Their offsets and
  // lengths land in the header by patching the slots reserved here.
  FlatWriter File;
  File.writeBytes(SnapshotMagicV2, std::strlen(SnapshotMagicV2));
  File.writeU8(0); // Magic NUL pad to offset 12.
  File.writeU32(SnapshotV2HeaderBytes);
  File.writeU64(grammarFingerprint(G));
  File.writeU64(grammarLayoutFingerprint(G));
  size_t SectionTableOff = File.reserve(4 * 8); // GramOff/Len, GrphOff/Len.
  size_t PayloadChkOff = File.reserve(8);
  size_t HeaderChkOff = File.reserve(8);
  assert(File.size() == SnapshotV2HeaderBytes &&
         "v2 header layout drifted from SnapshotV2HeaderBytes");

  const uint64_t GramOff = File.size();
  writeGrammarSnapshotV2(G, File);
  const uint64_t GramLen = File.size() - GramOff;
  File.alignTo(8);
  const uint64_t GrphOff = File.size();
  GraphSnapshot::saveV2(Graph, File);
  const uint64_t GrphLen = File.size() - GrphOff;
  File.patchU64(SectionTableOff, GramOff);
  File.patchU64(SectionTableOff + 8, GramLen);
  File.patchU64(SectionTableOff + 16, GrphOff);
  File.patchU64(SectionTableOff + 24, GrphLen);

  // Extras trail the section table's world: each is 8-aligned and
  // self-framed (tag, reserved, length, bytes), found by walking from the
  // end of GRPH. They land before the checksum patches so the payload
  // checksum covers them.
  for (const SnapshotExtraSection &Extra : Extras) {
    File.alignTo(8);
    File.writeU32(Extra.Tag);
    File.writeU32(0);
    File.writeU64(Extra.Bytes.size());
    File.writeBytes(Extra.Bytes.data(), Extra.Bytes.size());
  }

  File.patchU64(PayloadChkOff,
                hashBytesFast(File.buffer().data() + SnapshotV2HeaderBytes,
                              File.size() - SnapshotV2HeaderBytes));
  File.patchU64(HeaderChkOff,
                hashBytes(File.buffer().data(), SnapshotV2HeaderChecksumBytes));
  Expected<size_t> Written = File.writeFile(Path);
  if (Written)
    SnapMetrics::get().SaveBytes.bump(*Written);
  return Written;
}

Expected<SnapshotLoadResult> Ipg::loadSnapshot(const std::string &Path) {
  // Both formats load out of one private mapping: v1/v2-slow decode from
  // it, the v2 fast path patches and borrows it (MappedFile's heap
  // fallback keeps the contract on mmap-less hosts).
  Expected<MappedFile> MapOrErr = MappedFile::open(Path);
  if (!MapOrErr)
    return MapOrErr.error();
  auto Mapping = std::make_shared<MappedFile>(MapOrErr.take());
  const uint8_t *Data = Mapping->data();
  const size_t Size = Mapping->size();
  Grammar &G = Graph.grammar();

  const size_t MagicLen = std::strlen(SnapshotMagic);
  if (Size >= MagicLen && std::memcmp(Data, SnapshotMagic, MagicLen) == 0)
    return loadV1Container(G, Graph, Data, Size);
  if (Size >= MagicLen && std::memcmp(Data, SnapshotMagicV2, MagicLen) == 0)
    return loadV2Container(G, Graph, std::move(Mapping));
  if (Size >= MagicLen - 1 &&
      std::memcmp(Data, SnapshotMagic, MagicLen - 1) == 0)
    return Error("unsupported snapshot version (expected ipg-snap-v1 or "
                 "ipg-snap-v2)");
  return Error("not an ipg snapshot (bad magic)");
}

Expected<std::vector<uint8_t>>
ipg::readSnapshotExtraSection(const std::string &Path, uint32_t Tag) {
  Expected<MappedFile> MapOrErr = MappedFile::open(Path);
  if (!MapOrErr)
    return MapOrErr.error();
  MappedFile Mapping = MapOrErr.take();
  const uint8_t *Data = Mapping.data();
  const size_t Size = Mapping.size();
  const size_t MagicLen = std::strlen(SnapshotMagicV2);
  if (Size < SnapshotV2HeaderBytes ||
      std::memcmp(Data, SnapshotMagicV2, MagicLen) != 0 || Data[11] != 0)
    return Error("not an ipg-snap-v2 snapshot (extra sections are v2-only)");
  FlatView File(Data, Size);

  Expected<uint64_t> HeaderChk = File.u64At(72);
  if (!HeaderChk ||
      hashBytes(Data, SnapshotV2HeaderChecksumBytes) != *HeaderChk)
    return Error("snapshot header corrupted (checksum mismatch)");
  Expected<uint32_t> HeaderBytes = File.u32At(12);
  Expected<uint64_t> GrphOff = File.u64At(48);
  Expected<uint64_t> GrphLen = File.u64At(56);
  Expected<uint64_t> PayloadChk = File.u64At(64);
  if (!HeaderBytes || !GrphOff || !GrphLen || !PayloadChk ||
      *HeaderBytes < SnapshotV2HeaderBytes || *HeaderBytes > Size)
    return Error("malformed snapshot header");
  if (*GrphOff < *HeaderBytes || *GrphOff > Size ||
      *GrphLen > Size - *GrphOff)
    return Error("snapshot section out of bounds");
  // A suspended parse is a one-shot artifact, not a hot cache: whole-file
  // integrity up front is cheap relative to the resume it gates.
  if (!payloadChecksumMatches(Data + *HeaderBytes, Size - *HeaderBytes,
                              *PayloadChk))
    return Error("snapshot payload corrupted (checksum mismatch)");

  // Walk the 8-aligned extra frames behind GRPH. Unknown tags are skipped
  // — coexisting riders from newer writers are expected, not errors.
  uint64_t Off = (*GrphOff + *GrphLen + 7) & ~uint64_t(7);
  while (Off + 16 <= Size) {
    Expected<uint32_t> FrameTag = File.u32At(static_cast<size_t>(Off));
    Expected<uint64_t> FrameLen = File.u64At(static_cast<size_t>(Off) + 8);
    if (!FrameTag || !FrameLen)
      return Error("snapshot extra section out of bounds");
    if (*FrameLen > Size - Off - 16)
      return Error("snapshot extra section out of bounds");
    if (*FrameTag == Tag)
      return std::vector<uint8_t>(Data + Off + 16,
                                  Data + Off + 16 + *FrameLen);
    Off = (Off + 16 + *FrameLen + 7) & ~uint64_t(7);
  }
  return Error("snapshot has no such extra section");
}
