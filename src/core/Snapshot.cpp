//===- core/Snapshot.cpp - Ipg snapshot save/load & §6 repair -------------===//
///
/// Implements Ipg::saveSnapshot / Ipg::loadSnapshot (declared in
/// core/Ipg.h) on top of the format constants of core/Snapshot.h: the
/// grammar section and fingerprint come from grammar/GrammarIO.h, the
/// graph section from lr/GraphSnapshot.h. The load path owns the
/// stale-snapshot repair strategy: bring the live grammar to the
/// snapshot's rule set, adopt the graph, then replay the rule delta
/// through the graph-level ADD-RULE/DELETE-RULE so MODIFY (§6.1)
/// invalidates exactly the states the difference touches.
///
//===----------------------------------------------------------------------===//

#include "core/Ipg.h"

#include "grammar/GrammarIO.h"
#include "lr/GraphSnapshot.h"
#include "support/Hashing.h"

#include <cstring>

using namespace ipg;

Expected<size_t> Ipg::saveSnapshot(const std::string &Path) const {
  const Grammar &G = Graph.grammar();

  ByteWriter Payload;
  size_t Gram = Payload.beginSection(SnapshotGramTag);
  writeGrammarSnapshot(G, Payload);
  Payload.endSection(Gram);
  size_t Grph = Payload.beginSection(SnapshotGrphTag);
  GraphSnapshot::save(Graph, Payload);
  Payload.endSection(Grph);

  ByteWriter File;
  File.writeBytes(SnapshotMagic, std::strlen(SnapshotMagic));
  File.writeU64(grammarFingerprint(G));
  File.writeU64(grammarLayoutFingerprint(G));
  File.writeU64(hashBytes(Payload.buffer().data(), Payload.size()));
  File.writeBytes(Payload.buffer().data(), Payload.size());
  return File.writeFile(Path);
}

Expected<SnapshotLoadResult> Ipg::loadSnapshot(const std::string &Path) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.error();
  ByteReader Reader(*Bytes);

  if (!Reader.consumeBytes(SnapshotMagic)) {
    if (Reader.consumeBytes("ipg-snap-v"))
      return Error("unsupported snapshot version (expected ipg-snap-v1)");
    return Error("not an ipg snapshot (bad magic)");
  }
  Expected<uint64_t> SnapFingerprint = Reader.readU64();
  if (!SnapFingerprint)
    return SnapFingerprint.error();
  Expected<uint64_t> SnapLayout = Reader.readU64();
  if (!SnapLayout)
    return SnapLayout.error();
  Expected<uint64_t> PayloadHash = Reader.readU64();
  if (!PayloadHash)
    return PayloadHash.error();
  // Checksum the whole payload before decoding anything: a corrupted file
  // is rejected here, before the grammar or graph is touched.
  if (hashBytes(Bytes->data() + Reader.position(), Reader.remaining()) !=
      *PayloadHash)
    return Error("snapshot payload corrupted (checksum mismatch)");

  Expected<ByteReader> GramBody = Reader.readSection(SnapshotGramTag);
  if (!GramBody)
    return GramBody.error();
  Expected<ByteReader> GrphBody = Reader.readSection(SnapshotGrphTag);
  if (!GrphBody)
    return GrphBody.error();
  if (!Reader.atEnd())
    return Error("trailing bytes after snapshot");

  Grammar &G = Graph.grammar();

  // Warm-start fast path: when the live grammar's table layout is exactly
  // what the snapshot was saved from, both id maps are the identity and
  // the whole by-name remapping (and the GRAM decode) can be skipped.
  if (*SnapLayout == grammarLayoutFingerprint(G)) {
    std::vector<SymbolId> IdentitySymbols(G.symbols().size());
    for (SymbolId Sym = 0; Sym < IdentitySymbols.size(); ++Sym)
      IdentitySymbols[Sym] = Sym;
    std::vector<RuleId> IdentityRules(G.numInternedRules());
    for (RuleId Id = 0; Id < IdentityRules.size(); ++Id)
      IdentityRules[Id] = Id;
    Expected<size_t> Loaded =
        GraphSnapshot::load(*GrphBody, Graph, IdentitySymbols, IdentityRules);
    if (!Loaded) {
      GraphSnapshot::reset(Graph);
      return Loaded.error();
    }
    SnapshotLoadResult Result;
    Result.FingerprintMatched = true;
    Result.SnapshotFingerprint = *SnapFingerprint;
    Result.StatesLoaded = *Loaded;
    return Result;
  }

  Expected<GrammarSnapshot> Snap = readGrammarSnapshot(*GramBody);
  if (!Snap)
    return Snap.error();

  // Map the snapshot's symbols onto the live table. Most stale snapshots
  // differ from the live grammar by a handful of appended rules, so ids
  // usually still coincide: try the in-place string compare first and fall
  // back to the hashing intern only on mismatch.
  std::vector<SymbolId> SymbolMap;
  SymbolMap.reserve(Snap->Symbols.size());
  for (size_t I = 0; I < Snap->Symbols.size(); ++I) {
    const GrammarSnapshot::Symbol &Sym = Snap->Symbols[I];
    SymbolId Live = I < G.symbols().size() && G.symbols().name(I) == Sym.Name
                        ? static_cast<SymbolId>(I)
                        : G.symbols().intern(Sym.Name);
    if (Sym.IsNonterminal)
      G.symbols().markNonterminal(Live);
    SymbolMap.push_back(Live);
  }
  for (const GrammarSnapshot::SnapRule &SnapRule : Snap->Rules)
    for (uint32_t Sym : SnapRule.Rhs)
      if (SymbolMap[Sym] == G.startSymbol())
        return Error("snapshot rule uses START in a right-hand side");

  // Map the snapshot's rules (same in-place-first strategy), collecting
  // the live ids of its active set; nothing is activated yet.
  std::vector<RuleId> RuleMap;
  RuleMap.reserve(Snap->Rules.size());
  std::vector<RuleId> SnapActive;
  std::vector<SymbolId> Rhs;
  for (size_t I = 0; I < Snap->Rules.size(); ++I) {
    const GrammarSnapshot::SnapRule &SnapRule = Snap->Rules[I];
    SymbolId Lhs = SymbolMap[SnapRule.Lhs];
    Rhs.clear();
    Rhs.reserve(SnapRule.Rhs.size());
    for (uint32_t Sym : SnapRule.Rhs)
      Rhs.push_back(SymbolMap[Sym]);
    RuleId Id;
    if (I < G.numInternedRules() && G.rule(I).Lhs == Lhs &&
        G.rule(I).Rhs == Rhs)
      Id = static_cast<RuleId>(I);
    else
      Id = G.internRule(Lhs, Rhs);
    RuleMap.push_back(Id);
    if (SnapRule.IsActive)
      SnapActive.push_back(Id);
  }

  // The delta, snapshot → live. Live-only rules must be re-ADD-RULEd after
  // the graph is adopted; snapshot-only rules DELETE-RULEd.
  std::vector<uint8_t> IsSnapActive(G.numInternedRules(), 0);
  for (RuleId Id : SnapActive)
    IsSnapActive[Id] = 1;
  std::vector<RuleId> LiveOnly;
  for (RuleId Id : G.activeRules())
    if (!IsSnapActive[Id])
      LiveOnly.push_back(Id);

  // Bring the live grammar to the snapshot's rule set so the adopted graph
  // is consistent with it.
  std::vector<RuleId> SnapOnly;
  for (RuleId Id : SnapActive)
    if (G.activateRule(Id))
      SnapOnly.push_back(Id);
  for (RuleId Id : LiveOnly)
    G.removeRule(Id);

  Expected<size_t> Loaded =
      GraphSnapshot::load(*GrphBody, Graph, SymbolMap, RuleMap);
  if (!Loaded) {
    // Undo: restore the grammar's active set, reset the graph to the
    // freshly-constructed one-node state. The generator stays usable.
    for (RuleId Id : SnapOnly)
      G.removeRule(Id);
    for (RuleId Id : LiveOnly)
      G.activateRule(Id);
    GraphSnapshot::reset(Graph);
    return Loaded.error();
  }

  // §6 repair: replay the snapshot→live delta through the graph-level
  // operations, so MODIFY re-marks exactly the affected states Dirty and
  // the lazy machinery re-expands them by need.
  for (RuleId Id : SnapOnly)
    Graph.removeRule(G.rule(Id).Lhs, G.rule(Id).Rhs);
  for (RuleId Id : LiveOnly)
    Graph.addRule(G.rule(Id).Lhs, std::vector<SymbolId>(G.rule(Id).Rhs));

  SnapshotLoadResult Result;
  // An empty delta means the active rule sets coincide — exactly what the
  // content fingerprint certifies (it is not recomputed here; the layout
  // check above already handles the byte-identical fast path).
  Result.FingerprintMatched = LiveOnly.empty() && SnapOnly.empty();
  Result.SnapshotFingerprint = *SnapFingerprint;
  Result.StatesLoaded = *Loaded;
  Result.RulesAdded = LiveOnly.size();
  Result.RulesRemoved = SnapOnly.size();
  return Result;
}
