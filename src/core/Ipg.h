//===- core/Ipg.h - The lazy & incremental parser generator -----*- C++ -*-===//
///
/// \file
/// IPG, the paper's contribution: a parser whose LR(0) table is generated
/// by need while parsing (§5) and repaired incrementally when the grammar
/// changes (§6). This facade owns the graph of item sets and a Tomita
/// parser over it:
///
/// \code
///   ipg::Grammar G;
///   ipg::GrammarBuilder B(G);
///   B.rule("START", {"B"});
///   B.rule("B", {"true"});
///   ipg::Ipg Gen(G);                   // no generation happens here
///   Gen.recognize(Tokens);            // table grows on demand
///   Gen.addRule("B", {"unknown"});    // incremental repair, not regen
///   Gen.recognize(Tokens2);           // affected states re-expand lazily
/// \endcode
///
/// LazyParserGenerator (an alias) is the §5-only subset: use it and simply
/// never call the modification operations.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_CORE_IPG_H
#define IPG_CORE_IPG_H

#include "core/Snapshot.h"
#include "glr/GlrParser.h"
#include "lr/ItemSetGraph.h"
#include "support/Expected.h"
#include "support/Json.h"

#include <string>
#include <string_view>
#include <vector>

namespace ipg {

/// The lazy & incremental parser generator plus its parser.
class Ipg {
public:
  /// GENERATE-PARSER (§5): records the start set only; no table is built.
  explicit Ipg(Grammar &G) : Graph(G), Parser(Graph) {}

  Grammar &grammar() { return Graph.grammar(); }
  ItemSetGraph &graph() { return Graph; }
  const ItemSetGraph &graph() const { return Graph; }

  /// ADD-RULE (§6). Returns false when the rule was already present.
  bool addRule(SymbolId Lhs, std::vector<SymbolId> Rhs) {
    return Graph.addRule(Lhs, std::move(Rhs));
  }

  /// ADD-RULE by symbol names (names are interned on the fly).
  bool addRule(std::string_view Lhs,
               std::initializer_list<std::string_view> Rhs);

  /// DELETE-RULE (§6). Returns false when no such rule was active.
  bool deleteRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs) {
    return Graph.removeRule(Lhs, Rhs);
  }

  /// DELETE-RULE by symbol names.
  bool deleteRule(std::string_view Lhs,
                  std::initializer_list<std::string_view> Rhs);

  /// Parses \p Input with the Tomita parser, growing the table on demand.
  GlrResult parse(TokenView Input, Forest &F) {
    return Parser.parse(Input, F);
  }

  /// Recognition only (the forest is still built, as in §7's measurements).
  bool recognize(TokenView Input) { return Parser.recognize(Input); }

  // Thin forwarding overloads for pre-TokenView call sites.
  GlrResult parse(const std::vector<SymbolId> &Input, Forest &F) {
    return parse(TokenView(Input), F);
  }
  bool recognize(const std::vector<SymbolId> &Input) {
    return recognize(TokenView(Input));
  }

  /// Forces full generation (the conventional PG behaviour of §4);
  /// used by equivalence tests and the lazy-overhead ablation.
  size_t generateAll() { return Graph.generateAll(); }

  /// Mark-and-sweep fallback for cyclic garbage (§6.2 future work).
  size_t collectGarbage() { return Graph.collectGarbage(); }

  /// Persists the current graph of item sets — including its lazy/dirty
  /// frontier and stats — to \p Path (core/Snapshot.h). The default
  /// `ipg-snap-v2` is the flat, mmap-adoptable layout whose
  /// fingerprint-matched load is zero-copy; pass SnapshotFormat::V1 for
  /// the varint encoding pre-v2 consumers read. Returns the bytes
  /// written. Serialization is byte-deterministic in both formats: the
  /// same graph saves to identical bytes in every build type.
  Expected<size_t> saveSnapshot(const std::string &Path,
                                SnapshotFormat Format =
                                    SnapshotFormat::V2) const;

  /// As above, appending \p Extras as opaque tagged sections behind the
  /// GRPH payload (core/Snapshot.h: the carrier of suspended parses and
  /// future riders). Extras are covered by the payload checksum but absent
  /// from the header's section table, so pre-extra v2 readers load the
  /// file unchanged. V1 cannot carry extras (its loader rejects trailing
  /// bytes); requesting it with a non-empty \p Extras is an error.
  Expected<size_t> saveSnapshot(const std::string &Path,
                                const std::vector<SnapshotExtraSection> &Extras,
                                SnapshotFormat Format =
                                    SnapshotFormat::V2) const;

  /// Warm-starts from a snapshot: replaces the current (typically one-node)
  /// graph with the persisted one. The format is negotiated from the file
  /// magic — v1 decodes record by record, v2 is adopted zero-copy from a
  /// private mapping when the layout fingerprint matches. When the
  /// snapshot's grammar fingerprint does not match this generator's
  /// grammar, the snapshot's rule set is diffed against the live grammar
  /// and the delta is replayed through ADD-RULE/DELETE-RULE, so the §6
  /// machinery repairs the stale states instead of discarding the snapshot.
  /// On error the generator is left as freshly constructed (grammar
  /// unchanged up to version counts and interned-but-inactive rules).
  Expected<SnapshotLoadResult> loadSnapshot(const std::string &Path);

  /// Fraction of the full table that has been generated so far: live
  /// complete sets over the size of a freshly generated full table for the
  /// current grammar (computed against a cloned grammar, so the receiver's
  /// laziness is unaffected). The §5.2 measurement.
  double coverage() const;

  ItemSetGraphStats stats() const { return Graph.stats(); }

  /// A point-in-time observability document: this graph's counters plus
  /// derived set counts (live/complete/dirty — exclusive-mode walks) and
  /// the process-wide metrics registry (docs/OBSERVABILITY.md). For the
  /// shared-graph equivalent see GrammarServer::metricsJson().
  JsonValue metricsJson() const;

private:
  ItemSetGraph Graph;
  GlrParser Parser;
};

/// The §5-only lazy generator: identical machinery, no modification calls.
using LazyParserGenerator = Ipg;

} // namespace ipg

#endif // IPG_CORE_IPG_H
