//===- core/Snapshot.h - Snapshot file formats & load result ----*- C++ -*-===//
///
/// \file
/// The on-disk snapshot formats (`ipg-snap-v1`, `ipg-snap-v2`) and the
/// result record of a warm start. A snapshot extends the paper's
/// incremental story across process lifetimes: the partially-expanded
/// graph of item sets is persisted, and a later process resumes from it
/// instead of re-expanding from a one-node graph.
///
/// v1 layout (ByteStream varints, decoded record by record):
///
/// \code
///   "ipg-snap-v1"                magic, version in the string
///   u64  grammar fingerprint    (grammar/GrammarIO.h, by-name, active rules)
///   u64  layout fingerprint     (order-sensitive: id-map fast-path check)
///   u64  payload checksum       (FNV-1a over everything below)
///   GRAM section                 symbol table + interned rules (+active flags)
///   GRPH section                 live item sets, frontier, stats
/// \endcode
///
/// v2 layout (FlatSection fixed-width little-endian pools, built for
/// zero-copy mmap adoption; all multi-byte fields at natural alignment):
///
/// \code
///   off  0  "ipg-snap-v2\0"      12-byte magic (version in the string)
///   off 12  u32 header bytes     (80; where the payload begins)
///   off 16  u64 grammar fingerprint
///   off 24  u64 layout fingerprint
///   off 32  u64 GRAM offset      u64 GRAM length
///   off 48  u64 GRPH offset      u64 GRPH length
///   off 64  u64 payload checksum (FNV-1a over [header bytes, EOF))
///   off 72  u64 header checksum  (FNV-1a over bytes [0, 72))
///   off 80  GRAM section         (8-aligned; grammar/GrammarIO.h)
///   ...     GRPH section         (8-aligned; lr/GraphSnapshot.h)
/// \endcode
///
/// The v2 load fast path (layout fingerprint matches the live grammar)
/// verifies the magic and the *header* checksum only, then adopts the
/// GRPH section straight out of the copy-on-write mapping — pointer
/// fixup in place, borrowed record spans, no per-record decode. The
/// payload checksum is verified on the remapping slow path, which decodes
/// every record anyway (and by loaders that want full integrity up
/// front). Loading never discards a stale snapshot: when the fingerprint
/// does not match the live grammar, the snapshot's rule set is diffed
/// against the live one and the delta is replayed through
/// ADD-RULE/DELETE-RULE, so the §6 MODIFY machinery repairs exactly the
/// states the difference touches.
///
/// Trust model: snapshots are a cache format, not an untrusted-input
/// format. Every read is bounds-checked and ids/indices/dots are
/// validated, so a malformed file cannot make the *decoder* misbehave —
/// and accidental corruption is caught up front by the checksums (for the
/// v2 fast path: header corruption up front, payload corruption by the
/// structural validation sweep, which skips only content-preserving
/// in-range value flips). But a deliberately crafted file with a
/// recomputed checksum can still describe a graph whose transitions
/// disagree with its reductions, which the parser would then follow off a
/// cliff; validating that would mean re-running CLOSURE per state, i.e.
/// regeneration. Grant snapshot files the same trust as the grammar they
/// were saved from.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_CORE_SNAPSHOT_H
#define IPG_CORE_SNAPSHOT_H

#include "support/ByteStream.h"

#include <cstddef>

namespace ipg {

/// Magic prefix of every snapshot file; the trailing digit is the format
/// version, so an incompatible successor bumps the whole string.
inline constexpr const char SnapshotMagic[] = "ipg-snap-v1";

/// Magic of the flat, mmap-adoptable successor format.
inline constexpr const char SnapshotMagicV2[] = "ipg-snap-v2";

/// Fixed v2 header size: the byte offset where the payload begins. Also
/// written into the header itself (offset 12) so tooling need not hardcode
/// it.
inline constexpr uint32_t SnapshotV2HeaderBytes = 80;

/// Byte count covered by the v2 header checksum (everything before the
/// checksum field itself).
inline constexpr uint32_t SnapshotV2HeaderChecksumBytes = 72;

/// Which on-disk encoding Ipg::saveSnapshot writes. Loading
/// auto-negotiates from the magic, so the knob only matters for writers
/// that must stay readable by pre-v2 consumers.
enum class SnapshotFormat : uint8_t {
  V1, ///< ByteStream varints: dense, per-record decode on load.
  V2, ///< Flat little-endian pools: mmap + validate + pointer fixup.
};

/// Section tags inside a v1 snapshot.
inline constexpr uint32_t SnapshotGramTag = fourCC('G', 'R', 'A', 'M');
inline constexpr uint32_t SnapshotGrphTag = fourCC('G', 'R', 'P', 'H');

/// Tag of the suspended-parse section (incremental/ParseSnapshot.h).
inline constexpr uint32_t SnapshotParsTag = fourCC('P', 'A', 'R', 'S');

/// An opaque tagged section appended after GRPH in an `ipg-snap-v2` file.
/// Extra sections ride behind the standard payload — readers that do not
/// know a tag never reach it (the header's section table does not mention
/// extras), while the payload checksum still covers every byte. Each is
/// framed 8-aligned as `u32 tag, u32 reserved(0), u64 length, bytes`.
struct SnapshotExtraSection {
  uint32_t Tag = 0;
  std::vector<uint8_t> Bytes;
};

/// Reads the first extra section tagged \p Tag out of the v2 snapshot at
/// \p Path, after validating the header checksum and the payload checksum
/// (extras are loaded rarely and whole-file integrity is cheap insurance
/// against a truncated or bit-flipped suspended parse). Errors when the
/// file is not v2, is corrupted, or has no such section.
Expected<std::vector<uint8_t>>
readSnapshotExtraSection(const std::string &Path, uint32_t Tag);

/// What Ipg::loadSnapshot did.
struct SnapshotLoadResult {
  /// The snapshot's active rule set equals the live grammar's — no repair
  /// was needed. Established either by the layout fingerprint (fast path)
  /// or by the rule delta coming out empty (remap path); the stored
  /// content fingerprint below certifies the same property to tooling.
  bool FingerprintMatched = false;
  /// The content fingerprint stored in the snapshot header — what
  /// grammarFingerprint() returned for the grammar at save time. Fleet
  /// tooling keys shared snapshot caches on this without decoding bodies.
  uint64_t SnapshotFingerprint = 0;
  /// Item sets materialized from the snapshot.
  size_t StatesLoaded = 0;
  /// Live-grammar rules absent from the snapshot, replayed via ADD-RULE.
  size_t RulesAdded = 0;
  /// Snapshot rules absent from the live grammar, replayed via DELETE-RULE.
  size_t RulesRemoved = 0;
};

} // namespace ipg

#endif // IPG_CORE_SNAPSHOT_H
