//===- core/Snapshot.h - Snapshot file format & load result -----*- C++ -*-===//
///
/// \file
/// The on-disk snapshot format (`ipg-snap-v1`) and the result record of a
/// warm start. A snapshot extends the paper's incremental story across
/// process lifetimes: the partially-expanded graph of item sets is
/// persisted, and a later process resumes from it instead of re-expanding
/// from a one-node graph. Layout:
///
/// \code
///   "ipg-snap-v1"                magic, version in the string
///   u64  grammar fingerprint    (grammar/GrammarIO.h, by-name, active rules)
///   u64  layout fingerprint     (order-sensitive: id-map fast-path check)
///   u64  payload checksum       (FNV-1a over everything below)
///   GRAM section                 symbol table + interned rules (+active flags)
///   GRPH section                 live item sets, frontier, stats
/// \endcode
///
/// Loading never discards a stale snapshot: when the fingerprint does not
/// match the live grammar, the snapshot's rule set is diffed against the
/// live one and the delta is replayed through ADD-RULE/DELETE-RULE, so the
/// §6 MODIFY machinery repairs exactly the states the difference touches.
///
/// Trust model: snapshots are a cache format, not an untrusted-input
/// format. Every read is bounds-checked and ids/indices/dots are
/// validated, so a malformed file cannot make the *decoder* misbehave —
/// and accidental corruption is caught up front by the checksum. But a
/// deliberately crafted file with a recomputed checksum can still describe
/// a graph whose transitions disagree with its reductions, which the
/// parser would then follow off a cliff; validating that would mean
/// re-running CLOSURE per state, i.e. regeneration. Grant snapshot files
/// the same trust as the grammar they were saved from.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_CORE_SNAPSHOT_H
#define IPG_CORE_SNAPSHOT_H

#include "support/ByteStream.h"

#include <cstddef>

namespace ipg {

/// Magic prefix of every snapshot file; the trailing digit is the format
/// version, so an incompatible successor bumps the whole string.
inline constexpr const char SnapshotMagic[] = "ipg-snap-v1";

/// Section tags inside a snapshot.
inline constexpr uint32_t SnapshotGramTag = fourCC('G', 'R', 'A', 'M');
inline constexpr uint32_t SnapshotGrphTag = fourCC('G', 'R', 'P', 'H');

/// What Ipg::loadSnapshot did.
struct SnapshotLoadResult {
  /// The snapshot's active rule set equals the live grammar's — no repair
  /// was needed. Established either by the layout fingerprint (fast path)
  /// or by the rule delta coming out empty (remap path); the stored
  /// content fingerprint below certifies the same property to tooling.
  bool FingerprintMatched = false;
  /// The content fingerprint stored in the snapshot header — what
  /// grammarFingerprint() returned for the grammar at save time. Fleet
  /// tooling keys shared snapshot caches on this without decoding bodies.
  uint64_t SnapshotFingerprint = 0;
  /// Item sets materialized from the snapshot.
  size_t StatesLoaded = 0;
  /// Live-grammar rules absent from the snapshot, replayed via ADD-RULE.
  size_t RulesAdded = 0;
  /// Snapshot rules absent from the live grammar, replayed via DELETE-RULE.
  size_t RulesRemoved = 0;
};

} // namespace ipg

#endif // IPG_CORE_SNAPSHOT_H
