//===- support/Bitset.h - Growable bitset -----------------------*- C++ -*-===//
///
/// \file
/// A dynamically sized bitset used for FIRST/FOLLOW sets and the LALR(1)
/// digraph computation. Unlike std::bitset the size is a runtime value;
/// unlike std::vector<bool> it supports word-at-a-time union with change
/// detection, which is what the fixpoint loops need.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_BITSET_H
#define IPG_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipg {

/// Growable bitset with change-detecting union.
class Bitset {
public:
  Bitset() = default;
  explicit Bitset(size_t Size) : Words((Size + 63) / 64), NumBits(Size) {}

  size_t size() const { return NumBits; }

  void resize(size_t Size) {
    Words.resize((Size + 63) / 64);
    NumBits = Size;
  }

  bool test(size_t Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }

  /// Sets \p Bit; returns true if the bit was previously clear.
  bool set(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    uint64_t Mask = uint64_t(1) << (Bit % 64);
    bool Changed = !(Words[Bit / 64] & Mask);
    Words[Bit / 64] |= Mask;
    return Changed;
  }

  void reset(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit / 64] &= ~(uint64_t(1) << (Bit % 64));
  }

  void clear() {
    for (uint64_t &Word : Words)
      Word = 0;
  }

  /// Unions \p Other into this set; returns true if any bit changed.
  bool unionWith(const Bitset &Other) {
    assert(Other.NumBits == NumBits && "bitset size mismatch");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t Merged = Words[I] | Other.Words[I];
      if (Merged != Words[I]) {
        Words[I] = Merged;
        Changed = true;
      }
    }
    return Changed;
  }

  size_t count() const {
    size_t Total = 0;
    for (uint64_t Word : Words)
      Total += __builtin_popcountll(Word);
    return Total;
  }

  bool operator==(const Bitset &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Calls \p Fn with the index of every set bit, in increasing order.
  template <typename FnT> void forEach(FnT &&Fn) const {
    for (size_t WordIdx = 0; WordIdx < Words.size(); ++WordIdx) {
      uint64_t Word = Words[WordIdx];
      while (Word) {
        unsigned Bit = __builtin_ctzll(Word);
        Fn(WordIdx * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

private:
  std::vector<uint64_t> Words;
  size_t NumBits = 0;
};

} // namespace ipg

#endif // IPG_SUPPORT_BITSET_H
