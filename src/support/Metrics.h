//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
///
/// \file
/// Always-on observability counters for the lazy/incremental machinery:
/// a process-wide registry of named counters, gauges and fixed-bucket
/// latency histograms, exportable as JSON (support/Json.h) and as
/// Prometheus text exposition. `Ipg::metricsJson()` and
/// `GrammarServer::metricsJson()` embed the registry; docs/OBSERVABILITY.md
/// catalogs the names the library registers.
///
/// Cost discipline (why this can be always-on):
///
///   * MetricCounter is a ShardedCounters<1> — a bump is one relaxed
///     load+store on a thread-sharded cache line, the same price the
///     ItemSetGraph statistics already pay. Counters are exact
///     single-threaded and statistically accurate concurrent (see
///     support/Concurrency.h).
///   * MetricGauge is a single relaxed atomic — for values that are *set*
///     (live epochs), not accumulated, and set on rare paths.
///   * LatencyHistogram::record is a handful of relaxed RMWs — cheap, but
///     not sharded, so histograms belong on rare events (a MODIFY repair,
///     a snapshot load, an epoch fork), never per ACTION/GOTO query.
///   * Registration (`registry.counter("name")`) takes a mutex and may
///     allocate; hot sites cache the returned reference in a static.
///
/// Returned references are stable for the registry's lifetime (deque
/// storage, metrics are never removed), so the cached-static idiom is
/// safe:
///
///   static MetricCounter &C = MetricsRegistry::process().counter("x");
///   C.bump();
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_METRICS_H
#define IPG_SUPPORT_METRICS_H

#include "support/Concurrency.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

namespace ipg {

/// A monotone event counter. See the file comment for the cost contract.
class MetricCounter {
public:
  void bump(uint64_t Delta = 1) { Cells.bump(0, Delta); }
  uint64_t total() const { return Cells.total(0); }
  /// Replaces the value (restore path); never lost to concurrent bumps.
  void store(uint64_t Value) { Cells.store(0, Value); }

private:
  ShardedCounters<1> Cells;
};

/// A point-in-time value (live epochs, resident sessions). Set on rare
/// paths; reads are one relaxed load.
class MetricGauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t Delta) { Value.fetch_add(Delta, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// A fixed-bucket latency histogram over power-of-two microsecond
/// boundaries: bucket 0 is sub-microsecond, bucket i (1 <= i < 27) covers
/// [2^(i-1), 2^i) microseconds, and the last bucket absorbs everything
/// from ~67 seconds up (overflow clamp — no sample is ever dropped).
/// record() is a few relaxed fetch_adds: fine for rare events, not for
/// per-query paths.
class LatencyHistogram {
public:
  static constexpr size_t NumBuckets = 28;

  void record(uint64_t Nanos) {
    Buckets[bucketIndexForNanos(Nanos)].fetch_add(1, std::memory_order_relaxed);
    Observations.fetch_add(1, std::memory_order_relaxed);
    TotalNanos.fetch_add(Nanos, std::memory_order_relaxed);
    uint64_t Peak = PeakNanos.load(std::memory_order_relaxed);
    while (Nanos > Peak &&
           !PeakNanos.compare_exchange_weak(Peak, Nanos,
                                            std::memory_order_relaxed))
      ;
  }
  void recordSeconds(double Seconds) {
    record(Seconds > 0 ? static_cast<uint64_t>(Seconds * 1e9) : 0);
  }

  uint64_t count() const {
    return Observations.load(std::memory_order_relaxed);
  }
  uint64_t sumNanos() const { return TotalNanos.load(std::memory_order_relaxed); }
  uint64_t maxNanos() const { return PeakNanos.load(std::memory_order_relaxed); }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Exclusive upper bound of bucket \p I in microseconds; the last
  /// bucket is unbounded and reports UINT64_MAX ("+Inf").
  static uint64_t bucketUpperMicros(size_t I);
  /// The bucket a sample of \p Nanos lands in (0, boundary and
  /// saturating cases included — see the class comment).
  static size_t bucketIndexForNanos(uint64_t Nanos);

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Observations{0};
  std::atomic<uint64_t> TotalNanos{0};
  std::atomic<uint64_t> PeakNanos{0};
};

/// RAII latency sample: records the enclosing scope's wall time into the
/// histogram at destruction. For the rare-event paths only.
class ScopedLatency {
public:
  explicit ScopedLatency(LatencyHistogram &Hist) : Hist(Hist) {}
  ScopedLatency(const ScopedLatency &) = delete;
  ScopedLatency &operator=(const ScopedLatency &) = delete;
  ~ScopedLatency() { Hist.recordSeconds(Watch.seconds()); }

private:
  LatencyHistogram &Hist;
  Stopwatch Watch;
};

/// The named-metric registry. Lookup-or-create by name; references stay
/// valid forever (deque storage, no removal). One process-wide instance
/// (`process()`) carries the library's own instrumentation; tests may
/// build private registries.
class MetricsRegistry {
public:
  MetricCounter &counter(std::string_view Name);
  MetricGauge &gauge(std::string_view Name);
  LatencyHistogram &histogram(std::string_view Name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  /// sorted so the export is deterministic regardless of registration
  /// order. Histograms carry count/sum/max/mean plus the non-empty
  /// buckets as [upper-bound-µs, count] pairs.
  JsonValue toJson() const;

  /// Prometheus text exposition (one # TYPE line per metric, names
  /// mangled to [a-z0-9_], histograms as cumulative le-labeled series in
  /// seconds with +Inf/_sum/_count).
  std::string prometheusText() const;

  /// The process-wide registry the library instruments into.
  static MetricsRegistry &process();

private:
  template <typename T> struct Named {
    std::string Name;
    T Metric;
  };
  template <typename T>
  T &lookup(std::deque<Named<T>> &Store, std::string_view Name);

  mutable std::mutex M;
  std::deque<Named<MetricCounter>> Counters;
  std::deque<Named<MetricGauge>> Gauges;
  std::deque<Named<LatencyHistogram>> Histograms;
};

} // namespace ipg

#endif // IPG_SUPPORT_METRICS_H
