//===- support/Json.cpp - Minimal JSON value, writer and parser -----------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ipg;

//===----------------------------------------------------------------------===//
// Document model
//===----------------------------------------------------------------------===//

JsonValue &JsonValue::push(JsonValue Value) {
  Items.push_back(std::move(Value));
  return Items.back();
}

JsonValue &JsonValue::set(std::string Key, JsonValue Value) {
  for (auto &[Name, Existing] : Fields)
    if (Name == Key) {
      Existing = std::move(Value);
      return Existing;
    }
  Fields.emplace_back(std::move(Key), std::move(Value));
  return Fields.back().second;
}

const JsonValue *JsonValue::find(std::string_view Key) const {
  for (const auto &[Name, Value] : Fields)
    if (Name == Key)
      return &Value;
  return nullptr;
}

bool JsonValue::operator==(const JsonValue &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return BoolValue == Other.BoolValue;
  case Kind::Number:
    return NumberValue == Other.NumberValue;
  case Kind::String:
    return StringValue == Other.StringValue;
  case Kind::Array:
    return Items == Other.Items;
  case Kind::Object:
    return Fields == Other.Fields;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &Text) {
  Out += '"';
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Out += Buffer;
      } else {
        Out += C; // UTF-8 passes through untouched.
      }
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double Value) {
  // Integers in the exactly-representable range print without a fraction,
  // so counters stay grep-able; everything else uses round-trippable %.17g.
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 9007199254740992.0 /* 2^53 */) {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%lld",
                  static_cast<long long>(Value));
    Out += Buffer;
    return;
  }
  if (!std::isfinite(Value)) {
    Out += "null"; // JSON has no Inf/NaN; null keeps the document valid.
    return;
  }
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  Out += Buffer;
}

void appendNewlineIndent(std::string &Out, int Indent, int Depth) {
  if (Indent <= 0)
    return;
  Out += '\n';
  Out.append(static_cast<size_t>(Indent) * Depth, ' ');
}

} // namespace

void JsonValue::dumpTo(std::string &Out, int Indent, int Depth) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += BoolValue ? "true" : "false";
    return;
  case Kind::Number:
    appendNumber(Out, NumberValue);
    return;
  case Kind::String:
    appendEscaped(Out, StringValue);
    return;
  case Kind::Array: {
    if (Items.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (size_t I = 0; I < Items.size(); ++I) {
      if (I != 0)
        Out += ',';
      appendNewlineIndent(Out, Indent, Depth + 1);
      Items[I].dumpTo(Out, Indent, Depth + 1);
    }
    appendNewlineIndent(Out, Indent, Depth);
    Out += ']';
    return;
  }
  case Kind::Object: {
    if (Fields.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    for (size_t I = 0; I < Fields.size(); ++I) {
      if (I != 0)
        Out += ',';
      appendNewlineIndent(Out, Indent, Depth + 1);
      appendEscaped(Out, Fields[I].first);
      Out += Indent > 0 ? ": " : ":";
      Fields[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    appendNewlineIndent(Out, Indent, Depth);
    Out += '}';
    return;
  }
  }
}

std::string JsonValue::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent JSON reader over a string_view.
class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  Expected<JsonValue> parse() {
    Expected<JsonValue> Value = parseValue(0);
    if (!Value)
      return Value;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return Value;
  }

private:
  static constexpr int MaxDepth = 200;

  Error makeError(const std::string &Message) const {
    // Report 1-based line/column of the current position.
    unsigned Line = 1, Column = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
    }
    return Error(Message, Line, Column);
  }

  Expected<JsonValue> fail(const std::string &Message) const {
    return Expected<JsonValue>(makeError(Message));
  }

  void skipWhitespace() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeKeyword(std::string_view Keyword) {
    if (Text.substr(Pos, Keyword.size()) != Keyword)
      return false;
    Pos += Keyword.size();
    return true;
  }

  Expected<JsonValue> parseValue(int Depth) {
    if (Depth > MaxDepth)
      return fail("JSON nesting too deep");
    skipWhitespace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      Expected<std::string> S = parseString();
      if (!S)
        return Expected<JsonValue>(S.error());
      return JsonValue(S.take());
    }
    if (consumeKeyword("null"))
      return JsonValue();
    if (consumeKeyword("true"))
      return JsonValue(true);
    if (consumeKeyword("false"))
      return JsonValue(false);
    return parseNumber();
  }

  Expected<JsonValue> parseObject(int Depth) {
    ++Pos; // '{'
    JsonValue Object = JsonValue::object();
    skipWhitespace();
    if (consume('}'))
      return Object;
    while (true) {
      skipWhitespace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      Expected<std::string> Key = parseString();
      if (!Key)
        return Expected<JsonValue>(Key.error());
      skipWhitespace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      Expected<JsonValue> Value = parseValue(Depth + 1);
      if (!Value)
        return Value;
      Object.set(Key.take(), Value.take());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume('}'))
        return Object;
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<JsonValue> parseArray(int Depth) {
    ++Pos; // '['
    JsonValue Array = JsonValue::array();
    skipWhitespace();
    if (consume(']'))
      return Array;
    while (true) {
      Expected<JsonValue> Value = parseValue(Depth + 1);
      if (!Value)
        return Value;
      Array.push(Value.take());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume(']'))
        return Array;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return false;
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      uint32_t Digit;
      if (C >= '0' && C <= '9')
        Digit = C - '0';
      else if (C >= 'a' && C <= 'f')
        Digit = 10 + (C - 'a');
      else if (C >= 'A' && C <= 'F')
        Digit = 10 + (C - 'A');
      else
        return false;
      Out = Out * 16 + Digit;
    }
    Pos += 4;
    return true;
  }

  static void appendUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  Expected<std::string> parseString() {
    ++Pos; // '"'
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return Out;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return Expected<std::string>(
            makeError("unescaped control character in string"));
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      ++Pos; // '\'
      if (Pos >= Text.size())
        break;
      char Escape = Text[Pos++];
      switch (Escape) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        uint32_t Code;
        if (!parseHex4(Code))
          return Expected<std::string>(makeError("invalid \\u escape"));
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          // High surrogate: a low surrogate must follow.
          uint32_t Low;
          if (!consumeKeyword("\\u") || !parseHex4(Low) || Low < 0xDC00 ||
              Low > 0xDFFF)
            return Expected<std::string>(makeError("unpaired surrogate"));
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return Expected<std::string>(makeError("unpaired surrogate"));
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return Expected<std::string>(makeError("invalid escape character"));
      }
    }
    return Expected<std::string>(makeError("unterminated string"));
  }

  Expected<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto SkipDigits = [&] {
      size_t Before = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      return Pos > Before;
    };
    if (!SkipDigits())
      return fail("invalid number");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!SkipDigits())
        return fail("invalid number: missing fraction digits");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!SkipDigits())
        return fail("invalid number: missing exponent digits");
    }
    std::string Literal(Text.substr(Start, Pos - Start));
    return JsonValue(std::strtod(Literal.c_str(), nullptr));
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

Expected<JsonValue> ipg::parseJson(std::string_view Text) {
  return JsonParser(Text).parse();
}

Expected<size_t> ipg::writeJsonFile(const JsonValue &Value,
                                    const std::string &Path) {
  std::string Out = Value.dump();
  Out += '\n';
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (File == nullptr)
    return Expected<size_t>(Error("cannot open " + Path + " for writing"));
  size_t Written = std::fwrite(Out.data(), 1, Out.size(), File);
  bool CloseOk = std::fclose(File) == 0;
  if (Written != Out.size() || !CloseOk)
    return Expected<size_t>(Error("short write to " + Path));
  return Written;
}

Expected<JsonValue> ipg::readJsonFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (File == nullptr)
    return Expected<JsonValue>(Error("cannot open " + Path));
  std::string Content;
  char Buffer[4096];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Content.append(Buffer, Read);
  std::fclose(File);
  return parseJson(Content);
}
