//===- support/PerfReport.h - Machine-readable bench results ----*- C++ -*-===//
///
/// \file
/// The stable result schema behind `BENCH_ipg.json`. Every bench driver
/// builds one PerfReport and serializes it through support/Json.h; the
/// aggregator merges the per-driver documents into the suite file. The
/// schema (`ipg-bench-v1`) is deliberately flat and append-only:
///
/// \code{.json}
///   {
///     "schema": "ipg-bench-v1",
///     "driver": "fig7_1_measurements",
///     "reduced": false,
///     "results": [
///       { "name": "sdf/Exam.sdf/IPG/construct", "unit": "seconds",
///         "median": 1.2e-05, "mean": ..., "stddev": ..., "min": ...,
///         "max": ..., "samples": 7, "cpu_median": 1.1e-05 },
///       { "name": "lazy/expansions_parse1", "unit": "count", "value": 66 }
///     ],
///     "checks": [ { "description": "...", "pass": true } ],
///     "failed_checks": 0
///   }
/// \endcode
///
/// Field order is fixed by construction (support/Json.h objects keep
/// insertion order), so consumers may diff documents textually.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_PERFREPORT_H
#define IPG_SUPPORT_PERFREPORT_H

#include "support/Json.h"
#include "support/Timer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipg {

/// Collects one bench driver's results and serializes them to the
/// `ipg-bench-v1` JSON schema.
class PerfReport {
public:
  /// The value of the top-level "schema" field.
  static constexpr const char *SchemaName = "ipg-bench-v1";

  explicit PerfReport(std::string Driver) : Driver(std::move(Driver)) {}

  const std::string &driver() const { return Driver; }

  /// Marks the report as produced by a reduced-iteration (smoke) run, so
  /// trajectory tooling knows not to trend its numbers.
  void setReduced(bool Value) { Reduced = Value; }
  bool reduced() const { return Reduced; }

  /// Records a repeated-timing result (seconds). \p Cpu, when provided,
  /// adds the process-CPU-time view of the same repetitions.
  void addTiming(const std::string &Name, const SampleStats &Wall,
                 const SampleStats *Cpu = nullptr);

  /// Records a single scalar measurement with an explicit \p Unit
  /// (e.g. "seconds", "states", "bytes").
  void addScalar(const std::string &Name, double Value,
                 const std::string &Unit);

  /// Records an integral event counter (unit "count").
  void addCounter(const std::string &Name, uint64_t Value);

  /// Records one qualitative shape-check outcome; returns !Ok so drivers
  /// can sum failures into their exit code.
  int addCheck(bool Ok, const std::string &Description);

  size_t numResults() const { return Results.size(); }
  int failedChecks() const { return FailedChecks; }

  /// Builds the full document.
  JsonValue toJson() const;

  /// Serializes the document to \p Path.
  Expected<size_t> writeFile(const std::string &Path) const;

private:
  std::string Driver;
  bool Reduced = false;
  std::vector<JsonValue> Results;
  std::vector<JsonValue> Checks;
  int FailedChecks = 0;
};

} // namespace ipg

#endif // IPG_SUPPORT_PERFREPORT_H
