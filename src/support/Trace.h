//===- support/Trace.h - Per-thread ring-buffer event tracer ----*- C++ -*-===//
///
/// \file
/// A compile-time-gated event tracer for the §5/§6 machinery: RAII spans
/// record into fixed-size per-thread rings, drained on demand into Chrome
/// `trace_event` JSON (loadable in chrome://tracing and ui.perfetto.dev).
/// docs/OBSERVABILITY.md documents the span names the library emits and
/// the drain workflow.
///
/// Overhead contract (pinned by HotPathAllocTest and BM_TraceSpanDisabled):
///
///   * Compiled out (`-DIPG_TRACING=OFF`): every macro expands to nothing.
///   * Compiled in, runtime-disabled (the default): a span is one relaxed
///     atomic load and a predictable never-taken branch — no allocation,
///     no clock read, no ring write. The steady-state ACTION/GOTO query
///     path carries no span at all, so it is unaffected either way.
///   * Enabled: a span is two steady-clock reads and one store into a
///     preallocated per-thread ring (~40 bytes/event, no allocation after
///     a thread's first event). When a ring fills it wraps, dropping the
///     oldest events and counting the overflow (droppedCount()).
///
/// Threading: recording is thread-local and lock-free; start()/stop()
/// flip one atomic. clear()/eventCount()/drainChromeJson() walk every
/// thread's ring under the registry lock and expect recording to be
/// quiescent (tracing stopped, or all recording threads joined) — the
/// drain is an offline operation, not a concurrent consumer.
///
/// Span names must be string literals (or otherwise outlive the drain):
/// the ring stores the pointer, never a copy.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_TRACE_H
#define IPG_SUPPORT_TRACE_H

#include "support/Expected.h"
#include "support/Json.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef IPG_TRACING
#define IPG_TRACING 0
#endif

namespace ipg::trace {

/// True when the tracer is compiled in (CMake option IPG_TRACING, default
/// ON; the definition propagates to consumers through the ipg target).
constexpr bool compiledIn() { return IPG_TRACING != 0; }

#if IPG_TRACING
namespace detail {
extern std::atomic<bool> Recording;
} // namespace detail
/// True between start() and stop(). One relaxed load.
inline bool enabled() {
  return detail::Recording.load(std::memory_order_relaxed);
}
#else
constexpr bool enabled() { return false; }
#endif

/// Begins recording. \p RingCapacity sizes the per-thread rings, in
/// events; rings already created by earlier recording keep their size,
/// new threads get the new capacity. No-op when compiled out.
void start(size_t RingCapacity = size_t(1) << 16);

/// Stops recording (events are retained for draining).
void stop();

/// Discards all recorded events and the dropped-event tally. Call only
/// while recording is quiescent (see file comment).
void clear();

/// Events currently held across all rings; with \p Name, only events
/// whose name matches. Quiescence expected.
uint64_t eventCount();
uint64_t eventCount(const char *Name);

/// Events lost to ring wrap since the last clear().
uint64_t droppedCount();

/// The held events as a Chrome trace_event document:
///   {"traceEvents": [{"name","ph","ts","dur","pid","tid","args"}...],
///    "displayTimeUnit": "ms", "otherData": {"dropped_events": N}}
/// Timestamps are microseconds rebased to the earliest event; events are
/// sorted by start time. Does not clear the rings. Quiescence expected.
JsonValue drainChromeJson();

/// drainChromeJson() serialized to \p Path; returns bytes written.
Expected<size_t> writeChromeTrace(const std::string &Path);

#if IPG_TRACING

/// Steady-clock nanoseconds (the tracer's timebase).
uint64_t nowNanos();

namespace detail {
/// One recorded event. Phase: 0 = complete span ("X"), 1 = instant
/// ("i"), 2 = counter sample ("C").
struct Event {
  const char *Name;
  uint64_t StartNanos;
  uint64_t DurNanos;
  uint64_t Arg;
  uint32_t Tid;
  uint8_t Phase;
  bool HasArg;
};
void record(const Event &E);
} // namespace detail

/// RAII span: captures the start time at construction when tracing is
/// enabled, records one complete event at destruction. rename() lets a
/// scope refine the event name once the outcome is known (e.g. an EXPAND
/// that turns out to be a §6 re-expansion); arg() attaches one integer
/// payload. Use through the IPG_TRACE_* macros so the whole thing
/// disappears in compiled-out builds.
class Span {
public:
  explicit Span(const char *Name) : Name(Name) {
    if (enabled()) {
      Live = true;
      StartNanos = nowNanos();
    }
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (Live)
      detail::record(
          {Name, StartNanos, nowNanos() - StartNanos, ArgValue, 0, 0, HasArg});
  }

  void rename(const char *NewName) { Name = NewName; }
  void arg(uint64_t Value) {
    ArgValue = Value;
    HasArg = true;
  }

private:
  const char *Name;
  uint64_t StartNanos = 0;
  uint64_t ArgValue = 0;
  bool HasArg = false;
  bool Live = false;
};

/// A point event with no duration.
inline void instant(const char *Name) {
  if (enabled())
    detail::record({Name, nowNanos(), 0, 0, 0, 1, false});
}

/// A sampled value over time (renders as a counter track).
inline void counter(const char *Name, uint64_t Value) {
  if (enabled())
    detail::record({Name, nowNanos(), 0, Value, 0, 2, true});
}

#endif // IPG_TRACING

} // namespace ipg::trace

#if IPG_TRACING
#define IPG_TRACE_SPAN(Var, Name) ::ipg::trace::Span Var(Name)
#define IPG_TRACE_SPAN_RENAME(Var, Name) (Var).rename(Name)
#define IPG_TRACE_SPAN_ARG(Var, Value) (Var).arg(uint64_t(Value))
#define IPG_TRACE_INSTANT(Name) ::ipg::trace::instant(Name)
#define IPG_TRACE_COUNTER(Name, Value) ::ipg::trace::counter(Name, uint64_t(Value))
#else
#define IPG_TRACE_SPAN(Var, Name) ((void)0)
#define IPG_TRACE_SPAN_RENAME(Var, Name) ((void)0)
#define IPG_TRACE_SPAN_ARG(Var, Value) ((void)0)
#define IPG_TRACE_INSTANT(Name) ((void)0)
#define IPG_TRACE_COUNTER(Name, Value) ((void)0)
#endif

#endif // IPG_SUPPORT_TRACE_H
