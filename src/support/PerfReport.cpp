//===- support/PerfReport.cpp - Machine-readable bench results ------------===//

#include "support/PerfReport.h"

using namespace ipg;

void PerfReport::addTiming(const std::string &Name, const SampleStats &Wall,
                           const SampleStats *Cpu) {
  JsonValue Result = JsonValue::object();
  Result.set("name", Name);
  Result.set("unit", "seconds");
  Result.set("median", Wall.Median);
  Result.set("mean", Wall.Mean);
  Result.set("stddev", Wall.Stddev);
  Result.set("min", Wall.Min);
  Result.set("max", Wall.Max);
  Result.set("samples", static_cast<uint64_t>(Wall.Count));
  if (Cpu != nullptr) {
    Result.set("cpu_median", Cpu->Median);
    Result.set("cpu_mean", Cpu->Mean);
  }
  Results.push_back(std::move(Result));
}

void PerfReport::addScalar(const std::string &Name, double Value,
                           const std::string &Unit) {
  JsonValue Result = JsonValue::object();
  Result.set("name", Name);
  Result.set("unit", Unit);
  Result.set("value", Value);
  Results.push_back(std::move(Result));
}

void PerfReport::addCounter(const std::string &Name, uint64_t Value) {
  JsonValue Result = JsonValue::object();
  Result.set("name", Name);
  Result.set("unit", "count");
  Result.set("value", Value);
  Results.push_back(std::move(Result));
}

int PerfReport::addCheck(bool Ok, const std::string &Description) {
  JsonValue Check = JsonValue::object();
  Check.set("description", Description);
  Check.set("pass", Ok);
  Checks.push_back(std::move(Check));
  if (!Ok)
    ++FailedChecks;
  return Ok ? 0 : 1;
}

JsonValue PerfReport::toJson() const {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", SchemaName);
  Doc.set("driver", Driver);
  Doc.set("reduced", Reduced);
  JsonValue &ResultArray = Doc.set("results", JsonValue::array());
  for (const JsonValue &Result : Results)
    ResultArray.push(Result);
  JsonValue &CheckArray = Doc.set("checks", JsonValue::array());
  for (const JsonValue &Check : Checks)
    CheckArray.push(Check);
  Doc.set("failed_checks", FailedChecks);
  return Doc;
}

Expected<size_t> PerfReport::writeFile(const std::string &Path) const {
  return writeJsonFile(toJson(), Path);
}
