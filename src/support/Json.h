//===- support/Json.h - Minimal JSON value, writer and parser ---*- C++ -*-===//
///
/// \file
/// A small JSON document model used by the benchmark harness to emit
/// machine-readable results (`BENCH_ipg.json`) and read them back for
/// aggregation. Object fields keep *insertion order*, so a document built
/// from the same calls always serializes byte-identically — the schema
/// stability the perf-trajectory tooling relies on. The parser is a
/// recursive-descent reader for standard JSON returning Expected, matching
/// the library's no-exceptions error discipline.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_JSON_H
#define IPG_SUPPORT_JSON_H

#include "support/Expected.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ipg {

/// A JSON document node: null, bool, number, string, array or object.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool Value) : K(Kind::Bool), BoolValue(Value) {}
  JsonValue(double Value) : K(Kind::Number), NumberValue(Value) {}
  JsonValue(int Value) : K(Kind::Number), NumberValue(Value) {}
  JsonValue(int64_t Value)
      : K(Kind::Number), NumberValue(static_cast<double>(Value)) {}
  JsonValue(uint64_t Value)
      : K(Kind::Number), NumberValue(static_cast<double>(Value)) {}
  JsonValue(std::string Value) : K(Kind::String), StringValue(std::move(Value)) {}
  JsonValue(std::string_view Value) : JsonValue(std::string(Value)) {}
  JsonValue(const char *Value) : JsonValue(std::string(Value)) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  bool asBool() const { return BoolValue; }
  double asNumber() const { return NumberValue; }
  const std::string &asString() const { return StringValue; }

  /// Array elements (valid for arrays).
  const std::vector<JsonValue> &items() const { return Items; }

  /// Object fields in insertion order (valid for objects).
  const std::vector<std::pair<std::string, JsonValue>> &fields() const {
    return Fields;
  }

  /// Appends \p Value to an array; returns a reference to the stored copy.
  JsonValue &push(JsonValue Value);

  /// Sets object field \p Key (overwriting in place if present, appending
  /// otherwise); returns a reference to the stored value.
  JsonValue &set(std::string Key, JsonValue Value);

  /// Pointer to the value of field \p Key, or nullptr if absent / not an
  /// object.
  const JsonValue *find(std::string_view Key) const;

  /// Deep structural equality. Numbers compare exactly.
  bool operator==(const JsonValue &Other) const;
  bool operator!=(const JsonValue &Other) const { return !(*this == Other); }

  /// Serializes the document. \p Indent > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact form. Field order is insertion
  /// order, so equal build sequences yield byte-identical output.
  std::string dump(int Indent = 2) const;

private:
  void dumpTo(std::string &Out, int Indent, int Depth) const;

  Kind K;
  bool BoolValue = false;
  double NumberValue = 0;
  std::string StringValue;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Fields;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// anything else after the document is an error).
Expected<JsonValue> parseJson(std::string_view Text);

/// Serializes \p Value to \p Path (with a trailing newline). Returns the
/// number of bytes written.
Expected<size_t> writeJsonFile(const JsonValue &Value, const std::string &Path);

/// Reads and parses the JSON document at \p Path.
Expected<JsonValue> readJsonFile(const std::string &Path);

} // namespace ipg

#endif // IPG_SUPPORT_JSON_H
