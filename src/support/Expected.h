//===- support/Expected.h - Lightweight error-or-value type ----*- C++ -*-===//
///
/// \file
/// A minimal Expected<T>: either a value or a textual error. The library is
/// built without exceptions, so fallible constructors and readers return
/// Expected and callers must test before dereferencing.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_EXPECTED_H
#define IPG_SUPPORT_EXPECTED_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ipg {

/// A textual error with an optional source location (line/column are
/// 1-based; 0 means "not applicable").
struct Error {
  std::string Message;
  unsigned Line = 0;
  unsigned Column = 0;

  Error() = default;
  explicit Error(std::string Msg, unsigned Line = 0, unsigned Column = 0)
      : Message(std::move(Msg)), Line(Line), Column(Column) {}

  /// Renders "line:col: message" (or just the message without a location).
  std::string str() const {
    if (Line == 0)
      return Message;
    return std::to_string(Line) + ":" + std::to_string(Column) + ": " +
           Message;
  }
};

/// Either a T or an Error. Test with operator bool before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Error E) : Storage(std::move(E)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(*this && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an error Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Error &error() const {
    assert(!*this && "reading the error of a value Expected");
    return std::get<Error>(Storage);
  }

  /// Moves the value out; only valid when the Expected holds a value.
  T take() {
    assert(*this && "taking from an error Expected");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace ipg

#endif // IPG_SUPPORT_EXPECTED_H
