//===- support/PoolArena.h - Append-only typed pool storage -----*- C++ -*-===//
///
/// \file
/// The storage primitive behind the flat-arena live graph: a typed,
/// append-only pool whose elements NEVER move. The arena reserves a large
/// span of virtual address space up front (MAP_NORESERVE on POSIX,
/// MEM_RESERVE + on-demand commit on Windows) and appends into it, so
/// pointers and offsets handed out stay valid across any amount of growth
/// — the pool-growth stability contract that lets GLR stacks hold
/// `ItemSet *` and readers walk spans while EXPAND appends concurrently.
///
/// A pool addresses elements by uint32_t offset, the same currency the
/// `ipg-snap-v2` GRPH section uses on disk. Two segments back an offset:
///
///   - an optional *base* segment adopted zero-copy from an external
///     buffer (a mapped snapshot) via adoptBase(); offsets [0, baseSize())
///     resolve there and are read-only, and
///   - the *grow* segment, the arena's own reservation, holding
///     everything appended live; offsets [baseSize(), size()) resolve
///     there and are writable.
///
/// Spans never cross the segment boundary by construction: adopted spans
/// lie entirely in base, appended spans entirely in grow, so resolving a
/// span's starting offset resolves the whole span. Saving a pool is at
/// most two memcpys (base bytes, then grow bytes) — the in-memory layout
/// IS the snapshot layout.
///
/// Growth never goes through operator new (the reservation is a direct
/// mmap/VirtualAlloc), so appends on the EXPAND path do not disturb the
/// zero-allocation accounting of the HotPathAlloc suite or the bounded
/// allocation budget of the snapshot load path.
///
/// Thread model: append() and clear() require external mutual exclusion
/// (the graph's StructureMutex). Concurrent readers of already-published
/// offsets are safe while another thread appends — published bytes are
/// never rewritten or relocated. Exceeding the reserved capacity is an
/// invariant violation and aborts with a message (size the reservation
/// for the workload; it costs only virtual address space).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_POOLARENA_H
#define IPG_SUPPORT_POOLARENA_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <type_traits>

#if defined(_WIN32)
#define WIN32_LEAN_AND_MEAN
#include <windows.h>
#else
#include <sys/mman.h>
#endif

namespace ipg {

/// One contiguous reservation of virtual address space carved into
/// per-pool regions (one mmap/VirtualAlloc + one release for a whole
/// graph instead of one syscall pair per pool). Keeping graph
/// construction at one reservation is what preserves the paper's
/// "construction time is almost zero" property (§5) for the lazy
/// generator: the constructor's only real cost is this single syscall.
class ArenaReservation {
public:
  explicit ArenaReservation(size_t Bytes) : Bytes(Bytes) {
    Block = static_cast<uint8_t *>(acquireCached(Bytes));
    if (Block)
      return;
#if defined(_WIN32)
    Block = static_cast<uint8_t *>(
        VirtualAlloc(nullptr, Bytes, MEM_RESERVE, PAGE_READWRITE));
#else
    void *P = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    Block = P == MAP_FAILED ? nullptr : static_cast<uint8_t *>(P);
#endif
    if (!Block) {
      std::fprintf(stderr,
                   "ipg: ArenaReservation failed to reserve %zu bytes of "
                   "address space\n",
                   Bytes);
      std::abort();
    }
  }

  ArenaReservation(const ArenaReservation &) = delete;
  ArenaReservation &operator=(const ArenaReservation &) = delete;

  ~ArenaReservation() {
    if (releaseCached(Block, Bytes))
      return;
#if defined(_WIN32)
    VirtualFree(Block, 0, MEM_RELEASE);
#else
    munmap(Block, Bytes);
#endif
  }

  /// Region size for \p Elements elements of \p ElementSize bytes,
  /// rounded up to a cache line so distinct pools never share one. Use
  /// this to size the reservation for a sequence of carve() calls.
  static constexpr size_t regionBytes(size_t Elements, size_t ElementSize) {
    return (Elements * ElementSize + 63) & ~size_t{63};
  }

  /// Hands out the next regionBytes(Elements, sizeof(T)) bytes; the call
  /// order defines the layout. The block is page-aligned and regions are
  /// cache-line multiples, so every carve satisfies any pool alignment.
  template <typename T> T *carve(size_t Elements) {
    uint8_t *Region = Block + Cursor;
    Cursor += regionBytes(Elements, sizeof(T));
    assert(Cursor <= Bytes && "ArenaReservation overcommitted");
    return reinterpret_cast<T *>(Region);
  }

private:
  // Graphs churn (benchmark iterations, server epoch forks), and the
  // map-fault-unmap cycle for half a gigabyte of address space costs
  // several microseconds — the entire "construction is almost zero"
  // budget of §5. A small process-wide cache recycles blocks between
  // reservations of the same size, page tables and faulted pages intact,
  // so steady-state graph construction is allocation- and syscall-free.
  // Pools tolerate recycled (non-zero) bytes: appendZeroed memsets and
  // append memcpys before anything is read. At most CacheCap blocks are
  // retained, and only their previously touched pages occupy memory; the
  // cache itself is leaked at exit (the process teardown unmaps).
  struct CachedBlock {
    void *Block;
    size_t Bytes;
  };
  struct Cache {
    std::mutex M;
    CachedBlock Blocks[4];
    size_t Count = 0;
  };
  static Cache &cache() {
    static Cache *C = new Cache;
    return *C;
  }

  static void *acquireCached(size_t Bytes) {
    Cache &C = cache();
    std::lock_guard<std::mutex> Lock(C.M);
    for (size_t I = 0; I < C.Count; ++I)
      if (C.Blocks[I].Bytes == Bytes) {
        void *Match = C.Blocks[I].Block;
        C.Blocks[I] = C.Blocks[--C.Count];
        return Match;
      }
    return nullptr;
  }

  static bool releaseCached(void *Block, size_t Bytes) {
    Cache &C = cache();
    std::lock_guard<std::mutex> Lock(C.M);
    if (C.Count == sizeof(C.Blocks) / sizeof(C.Blocks[0]))
      return false;
    C.Blocks[C.Count++] = {Block, Bytes};
    return true;
  }

  uint8_t *Block = nullptr;
  size_t Bytes = 0;
  size_t Cursor = 0;
};

template <typename T> class PoolArena {
  static_assert(std::is_trivially_copyable_v<T>,
                "PoolArena elements are raw snapshot bytes; they must be "
                "trivially copyable");

public:
  /// Reserves virtual address space for \p MaxElements up front. The
  /// reservation is uncommitted until touched, so a generous capacity
  /// costs nothing physical.
  explicit PoolArena(size_t MaxElements) : Capacity(MaxElements) {
    const size_t Bytes = Capacity * sizeof(T);
#if defined(_WIN32)
    Grow = static_cast<T *>(
        VirtualAlloc(nullptr, Bytes, MEM_RESERVE, PAGE_READWRITE));
#else
    void *P = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    Grow = P == MAP_FAILED ? nullptr : static_cast<T *>(P);
#endif
    if (!Grow) {
      std::fprintf(stderr,
                   "ipg: PoolArena failed to reserve %zu bytes of address "
                   "space\n",
                   Bytes);
      std::abort();
    }
  }

  /// Wraps \p Reservation — \p MaxElements elements of externally
  /// reserved, uncommitted address space (an ArenaReservation region) —
  /// without taking ownership; the reservation must outlive the pool.
  PoolArena(T *Reservation, size_t MaxElements)
      : Grow(Reservation), Capacity(MaxElements), OwnsGrow(false) {}

  PoolArena(const PoolArena &) = delete;
  PoolArena &operator=(const PoolArena &) = delete;

  ~PoolArena() {
    if (!OwnsGrow)
      return;
#if defined(_WIN32)
    VirtualFree(Grow, 0, MEM_RELEASE);
#else
    munmap(Grow, Capacity * sizeof(T));
#endif
  }

  /// Points the base segment at \p N externally owned elements (a mapped
  /// snapshot section) without copying. Only legal on an empty pool; the
  /// caller keeps the backing bytes alive for the life of the graph.
  void adoptBase(const T *Data, size_t N) {
    assert(BaseLen == 0 && GrowLen == 0 && "adoptBase on a non-empty pool");
    Base = Data;
    BaseLen = N;
  }

  /// Appends \p N elements and returns the offset of the first. The copy
  /// is the only data movement these bytes will ever see.
  uint32_t append(const T *Data, size_t N) {
    size_t Off = BaseLen + GrowLen;
    ensureFits(N);
    if (N != 0)
      std::memcpy(Grow + GrowLen, Data, N * sizeof(T));
    GrowLen += N;
    return static_cast<uint32_t>(Off);
  }

  /// Appends \p N default-zeroed elements (fresh reservation pages are
  /// zero already; recycled ones after clear() are memset).
  uint32_t appendZeroed(size_t N) {
    size_t Off = BaseLen + GrowLen;
    ensureFits(N);
    if (N != 0)
      std::memset(Grow + GrowLen, 0, N * sizeof(T));
    GrowLen += N;
    return static_cast<uint32_t>(Off);
  }

  /// Resolves an offset to a read-only element pointer. A span starting
  /// here never crosses the base/grow boundary. The segment test is a
  /// predictable branch (a given graph resolves almost all queries in one
  /// segment), which measures faster than a branchless select here — a
  /// cmov would put the load address on the critical path.
  const T *at(uint32_t Off) const {
    assert(Off <= BaseLen + GrowLen && "PoolArena offset out of range");
    return Off < BaseLen ? Base + Off : Grow + (Off - BaseLen);
  }

  /// Mutable access to grow-segment elements only — adopted base bytes
  /// are the snapshot's and stay pristine (save re-emits them verbatim).
  T *growAt(uint32_t Off) {
    assert(Off >= BaseLen && Off <= BaseLen + GrowLen &&
           "mutable access must stay in the grow segment");
    return Grow + (Off - BaseLen);
  }

  size_t size() const { return BaseLen + GrowLen; }
  bool empty() const { return size() == 0; }
  size_t baseSize() const { return BaseLen; }
  size_t growSize() const { return GrowLen; }
  const T *baseData() const { return Base; }
  const T *growData() const { return Grow; }
  T *growData() { return Grow; }

  /// Forgets the adopted base and all appended elements. The reservation
  /// (and any committed pages) is retained for reuse.
  void clear() {
    Base = nullptr;
    BaseLen = 0;
    GrowLen = 0;
  }

private:
  void ensureFits(size_t N) {
    if (N > Capacity - GrowLen) {
      std::fprintf(stderr,
                   "ipg: PoolArena capacity exhausted (%zu + %zu elements "
                   "of %zu-element reservation)\n",
                   GrowLen, N, Capacity);
      std::abort();
    }
#if defined(_WIN32)
    // Commit the pages the new elements land on; POSIX commits on touch.
    size_t WantedBytes = (GrowLen + N) * sizeof(T);
    if (WantedBytes > CommittedBytes) {
      size_t NewCommit = (WantedBytes + CommitChunk - 1) & ~(CommitChunk - 1);
      if (NewCommit > Capacity * sizeof(T))
        NewCommit = Capacity * sizeof(T);
      if (!VirtualAlloc(reinterpret_cast<uint8_t *>(Grow) + CommittedBytes,
                        NewCommit - CommittedBytes, MEM_COMMIT,
                        PAGE_READWRITE)) {
        std::fprintf(stderr, "ipg: PoolArena commit failed\n");
        std::abort();
      }
      CommittedBytes = NewCommit;
    }
#endif
  }

  const T *Base = nullptr; ///< Adopted snapshot segment (read-only).
  size_t BaseLen = 0;
  T *Grow = nullptr; ///< This arena's reservation; elements never move.
  size_t GrowLen = 0;
  size_t Capacity = 0;
  bool OwnsGrow = true; ///< False when Grow is an ArenaReservation region.
#if defined(_WIN32)
  size_t CommittedBytes = 0;
  static constexpr size_t CommitChunk = 1 << 20;
#endif
};

} // namespace ipg

#endif // IPG_SUPPORT_POOLARENA_H
