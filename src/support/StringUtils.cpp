//===- support/StringUtils.cpp - String helpers ---------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>

using namespace ipg;

std::vector<std::string_view> ipg::splitOnAny(std::string_view Text,
                                              std::string_view Separators) {
  std::vector<std::string_view> Pieces;
  size_t Begin = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    bool AtEnd = I == Text.size();
    if (!AtEnd && Separators.find(Text[I]) == std::string_view::npos)
      continue;
    if (I > Begin)
      Pieces.push_back(Text.substr(Begin, I - Begin));
    Begin = I + 1;
  }
  return Pieces;
}

std::vector<std::string_view> ipg::splitWords(std::string_view Text) {
  return splitOnAny(Text, " \t\r\n");
}

std::string ipg::join(const std::vector<std::string> &Parts,
                      std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string_view ipg::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() && std::isspace((unsigned char)Text[Begin]))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin && std::isspace((unsigned char)Text[End - 1]))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool ipg::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string ipg::padLeft(std::string_view Text, size_t Width) {
  std::string Result(Text);
  while (Result.size() < Width)
    Result.insert(Result.begin(), ' ');
  return Result;
}

std::string ipg::padRight(std::string_view Text, size_t Width) {
  std::string Result(Text);
  while (Result.size() < Width)
    Result.push_back(' ');
  return Result;
}

std::string ipg::formatSeconds(double Seconds, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Seconds);
  return Buffer;
}
