//===- support/ByteStream.cpp - Binary snapshot encoding ------------------===//

#include "support/ByteStream.h"

#include <cstdio>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#elif defined(_MSC_VER)
#include <process.h>
#endif

using namespace ipg;

Expected<size_t> ipg::writeBytesToFileAtomic(const std::string &Path,
                                             const void *Data, size_t Size) {
  // Write-then-rename: a snapshot being overwritten may still back a live
  // MAP_PRIVATE mapping (an adopted graph borrows its clean pages), and
  // truncating the mapped inode in place would SIGBUS the borrower. The
  // rename swaps the directory entry while the old inode lives on for as
  // long as the mapping holds it. The temp name is per-process so
  // concurrent savers (the CI determinism job's paired builds) cannot
  // interleave partial writes.
#if defined(__unix__) || defined(__APPLE__)
  const long Pid = static_cast<long>(::getpid());
#elif defined(_MSC_VER)
  const long Pid = static_cast<long>(_getpid());
#else
  const long Pid = 0; // Exotic host: no cross-process uniqueness.
#endif
  const std::string TmpPath = Path + ".tmp." + std::to_string(Pid);
  std::FILE *File = std::fopen(TmpPath.c_str(), "wb");
  if (File == nullptr)
    return Error("cannot open '" + TmpPath + "' for writing");
  size_t Written = Size == 0 ? 0 : std::fwrite(Data, 1, Size, File);
  bool CloseOk = std::fclose(File) == 0;
  if (Written != Size || !CloseOk) {
    std::remove(TmpPath.c_str());
    return Error("short write to '" + TmpPath + "'");
  }
  // std::filesystem::rename replaces an existing target atomically on
  // POSIX and Windows alike (plain std::rename fails on Windows when the
  // target exists, and a remove-then-rename window would lose the old
  // snapshot on a crash or a failed rename).
  std::error_code Ec;
  std::filesystem::rename(TmpPath, Path, Ec);
  if (Ec) {
    std::remove(TmpPath.c_str());
    return Error("cannot rename '" + TmpPath + "' to '" + Path + "': " +
                 Ec.message());
  }
  return Written;
}

Expected<size_t> ByteWriter::writeFile(const std::string &Path) const {
  return writeBytesToFileAtomic(Path, Buffer.data(), Buffer.size());
}

Expected<std::vector<uint8_t>> ipg::readFileBytes(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (File == nullptr)
    return Error("cannot open '" + Path + "' for reading");
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[64 * 1024];
  size_t Read;
  while ((Read = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Bytes.insert(Bytes.end(), Chunk, Chunk + Read);
  bool ReadOk = std::ferror(File) == 0;
  std::fclose(File);
  if (!ReadOk)
    return Error("read error on '" + Path + "'");
  return Bytes;
}
