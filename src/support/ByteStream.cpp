//===- support/ByteStream.cpp - Binary snapshot encoding ------------------===//

#include "support/ByteStream.h"

#include <cstdio>

using namespace ipg;

Expected<size_t> ByteWriter::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (File == nullptr)
    return Error("cannot open '" + Path + "' for writing");
  size_t Written =
      Buffer.empty() ? 0 : std::fwrite(Buffer.data(), 1, Buffer.size(), File);
  bool CloseOk = std::fclose(File) == 0;
  if (Written != Buffer.size() || !CloseOk)
    return Error("short write to '" + Path + "'");
  return Written;
}

Expected<std::vector<uint8_t>> ipg::readFileBytes(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (File == nullptr)
    return Error("cannot open '" + Path + "' for reading");
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[64 * 1024];
  size_t Read;
  while ((Read = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Bytes.insert(Bytes.end(), Chunk, Chunk + Read);
  bool ReadOk = std::ferror(File) == 0;
  std::fclose(File);
  if (!ReadOk)
    return Error("read error on '" + Path + "'");
  return Bytes;
}
