//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
///
/// \file
/// Small chrono wrappers used by the benchmark harness: a stopwatch and a
/// median-of-N runner. Benchmarks report medians to damp scheduler noise,
/// standing in for the paper's "LeLisp garbage collections were only allowed
/// between measurements" discipline.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_TIMER_H
#define IPG_SUPPORT_TIMER_H

#include <algorithm>
#include <chrono>
#include <vector>

namespace ipg {

/// Wall-clock stopwatch with microsecond resolution.
class Stopwatch {
public:
  Stopwatch() { reset(); }

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p Fn \p Reps times and returns the median wall-clock seconds.
template <typename FnT> double medianSeconds(int Reps, FnT &&Fn) {
  std::vector<double> Samples;
  Samples.reserve(Reps);
  for (int I = 0; I < Reps; ++I) {
    Stopwatch Watch;
    Fn();
    Samples.push_back(Watch.seconds());
  }
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

} // namespace ipg

#endif // IPG_SUPPORT_TIMER_H
