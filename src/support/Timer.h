//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
///
/// \file
/// Small chrono wrappers used by the benchmark harness: a stopwatch and a
/// median-of-N runner. Benchmarks report medians to damp scheduler noise,
/// standing in for the paper's "LeLisp garbage collections were only allowed
/// between measurements" discipline.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_TIMER_H
#define IPG_SUPPORT_TIMER_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <vector>

namespace ipg {

/// Wall-clock stopwatch with microsecond resolution.
class Stopwatch {
public:
  Stopwatch() { reset(); }

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Process-CPU-time stopwatch — the clock the paper's §7 tables report.
/// Uses CLOCK_PROCESS_CPUTIME_ID where available (nanosecond granularity)
/// and std::clock() elsewhere.
class CpuStopwatch {
public:
  CpuStopwatch() { reset(); }

  void reset() { Start = now(); }

  /// CPU seconds consumed by the process since the last reset().
  double seconds() const { return now() - Start; }

private:
  static double now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec Ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &Ts) == 0)
      return Ts.tv_sec + Ts.tv_nsec * 1e-9;
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double Start = 0;
};

/// Summary statistics over repeated timing samples (seconds). Benchmarks
/// report medians to damp scheduler noise; the spread fields let the JSON
/// consumers judge how trustworthy a median is.
struct SampleStats {
  double Median = 0;
  double Mean = 0;
  double Stddev = 0; ///< Population standard deviation.
  double Min = 0;
  double Max = 0;
  size_t Count = 0;

  static SampleStats of(std::vector<double> Samples) {
    SampleStats S;
    S.Count = Samples.size();
    if (Samples.empty())
      return S;
    std::sort(Samples.begin(), Samples.end());
    S.Median = Samples[Samples.size() / 2];
    S.Min = Samples.front();
    S.Max = Samples.back();
    for (double Value : Samples)
      S.Mean += Value;
    S.Mean /= Samples.size();
    for (double Value : Samples)
      S.Stddev += (Value - S.Mean) * (Value - S.Mean);
    S.Stddev = std::sqrt(S.Stddev / Samples.size());
    return S;
  }
};

/// Runs \p Fn \p Reps times and returns the median wall-clock seconds.
template <typename FnT> double medianSeconds(int Reps, FnT &&Fn) {
  std::vector<double> Samples;
  Samples.reserve(Reps);
  for (int I = 0; I < Reps; ++I) {
    Stopwatch Watch;
    Fn();
    Samples.push_back(Watch.seconds());
  }
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

} // namespace ipg

#endif // IPG_SUPPORT_TIMER_H
