//===- support/MappedFile.cpp - Private file mapping for snapshots --------===//

#include "support/MappedFile.h"

#include <cstdlib>
#include <cstring>

#if defined(_MSC_VER)
#include <malloc.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#define IPG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define IPG_HAVE_MMAP 0
#include <cstdio>
#endif

using namespace ipg;

Expected<MappedFile> MappedFile::open(const std::string &Path) {
#if IPG_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Error("cannot open '" + Path + "' for mapping");
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    ::close(Fd);
    return Error("cannot stat '" + Path + "'");
  }
  size_t Size = static_cast<size_t>(St.st_size);
  if (Size == 0) {
    ::close(Fd);
    return Error("'" + Path + "' is empty");
  }
  // PROT_WRITE + MAP_PRIVATE: the snapshot loader patches transition
  // records in place; the kernel copies only the touched pages and the
  // file itself is never modified.
  void *Base =
      ::mmap(nullptr, Size, PROT_READ | PROT_WRITE, MAP_PRIVATE, Fd, 0);
  ::close(Fd); // The mapping holds its own reference.
  if (Base == MAP_FAILED)
    return Error("mmap of '" + Path + "' failed");
  MappedFile File;
  File.Base = static_cast<uint8_t *>(Base);
  File.Bytes = Size;
  File.HeapFallback = false;
  return File;
#else
  std::FILE *Stream = std::fopen(Path.c_str(), "rb");
  if (Stream == nullptr)
    return Error("cannot open '" + Path + "' for reading");
  std::fseek(Stream, 0, SEEK_END);
  long End = std::ftell(Stream);
  if (End <= 0) {
    std::fclose(Stream);
    return Error("'" + Path + "' is empty");
  }
  std::fseek(Stream, 0, SEEK_SET);
  size_t Size = static_cast<size_t>(End);
  // The backing buffer must honour the flat layout's 8-byte record
  // alignment. MSVC's CRT has no aligned_alloc (its free() cannot release
  // such blocks), so the fallback's fallback is _aligned_malloc.
  size_t Rounded = (Size + 7) & ~size_t(7);
#if defined(_MSC_VER)
  void *Base = _aligned_malloc(Rounded, 8);
#else
  void *Base = std::aligned_alloc(8, Rounded);
#endif
  if (Base == nullptr) {
    std::fclose(Stream);
    return Error("out of memory mapping '" + Path + "'");
  }
  size_t Read = std::fread(Base, 1, Size, Stream);
  std::fclose(Stream);
  if (Read != Size) {
    freeHeapBuffer(Base);
    return Error("short read from '" + Path + "'");
  }
  MappedFile File;
  File.Base = static_cast<uint8_t *>(Base);
  File.Bytes = Size;
  File.HeapFallback = true;
  return File;
#endif
}

Expected<MappedFile> MappedFile::copyOf(const void *Data, size_t Size) {
  if (Size == 0)
    return Error("cannot map an empty buffer");
  // Same allocation discipline as open()'s heap fallback: 8-byte-aligned
  // for the flat layout's record alignment, sized up to a multiple of 8
  // because aligned_alloc requires it.
  size_t Rounded = (Size + 7) & ~size_t(7);
#if defined(_MSC_VER)
  void *Base = _aligned_malloc(Rounded, 8);
#else
  void *Base = std::aligned_alloc(8, Rounded);
#endif
  if (Base == nullptr)
    return Error("out of memory copying a snapshot buffer");
  std::memcpy(Base, Data, Size);
  MappedFile File;
  File.Base = static_cast<uint8_t *>(Base);
  File.Bytes = Size;
  File.HeapFallback = true;
  return File;
}

void MappedFile::freeHeapBuffer(void *Ptr) {
#if defined(_MSC_VER)
  _aligned_free(Ptr);
#else
  std::free(Ptr);
#endif
}

void MappedFile::unmap() {
  if (Base == nullptr)
    return;
#if IPG_HAVE_MMAP
  if (HeapFallback)
    freeHeapBuffer(Base);
  else
    ::munmap(Base, Bytes);
#else
  freeHeapBuffer(Base);
#endif
  Base = nullptr;
  Bytes = 0;
  HeapFallback = false;
}
