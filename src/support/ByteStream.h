//===- support/ByteStream.h - Binary snapshot encoding ----------*- C++ -*-===//
///
/// \file
/// The little-endian binary layer under the snapshot subsystem: ByteWriter
/// appends fixed-width integers, LEB128 varints, length-prefixed strings
/// and length-prefixed tagged sections to a growable buffer; ByteReader
/// walks the same encoding with bounds-checked reads that return Expected
/// instead of crashing on truncated or hostile input. Every multi-byte
/// value is encoded explicitly byte by byte, so documents are identical
/// across platforms, build types and compiler versions — the property the
/// snapshot determinism CI job pins.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_BYTESTREAM_H
#define IPG_SUPPORT_BYTESTREAM_H

#include "support/Expected.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ipg {

/// Appends little-endian binary data to an in-memory buffer.
class ByteWriter {
public:
  void writeU8(uint8_t Value) { Buffer.push_back(Value); }

  void writeU32(uint32_t Value) {
    for (int Shift = 0; Shift < 32; Shift += 8)
      Buffer.push_back(static_cast<uint8_t>(Value >> Shift));
  }

  void writeU64(uint64_t Value) {
    for (int Shift = 0; Shift < 64; Shift += 8)
      Buffer.push_back(static_cast<uint8_t>(Value >> Shift));
  }

  /// Unsigned LEB128: 7 bits per byte, high bit = continuation.
  void writeVarint(uint64_t Value) {
    while (Value >= 0x80) {
      Buffer.push_back(static_cast<uint8_t>(Value) | 0x80);
      Value >>= 7;
    }
    Buffer.push_back(static_cast<uint8_t>(Value));
  }

  void writeBytes(const void *Data, size_t Size) {
    // resize+copy rather than a range insert: GCC 12's -Wstringop-overflow
    // misanalyzes vector::insert's reallocation path at -O3.
    const auto *Bytes = static_cast<const uint8_t *>(Data);
    size_t Old = Buffer.size();
    Buffer.resize(Old + Size);
    std::copy(Bytes, Bytes + Size, Buffer.begin() + Old);
  }

  /// Varint length followed by the raw bytes.
  void writeString(std::string_view Str) {
    writeVarint(Str.size());
    writeBytes(Str.data(), Str.size());
  }

  /// Opens a length-prefixed section frame: writes \p Tag (a fourcc) and a
  /// u32 length placeholder. Returns a token for endSection, which patches
  /// the placeholder with the number of bytes written in between. Sections
  /// may not overlap partially — close them in LIFO order.
  size_t beginSection(uint32_t Tag) {
    writeU32(Tag);
    size_t Token = Buffer.size();
    writeU32(0);
    return Token;
  }

  void endSection(size_t Token) {
    uint32_t Length = static_cast<uint32_t>(Buffer.size() - Token - 4);
    for (int Shift = 0; Shift < 32; Shift += 8)
      Buffer[Token + Shift / 8] = static_cast<uint8_t>(Length >> Shift);
  }

  const std::vector<uint8_t> &buffer() const { return Buffer; }
  size_t size() const { return Buffer.size(); }

  /// Writes the buffer to \p Path; returns the byte count written.
  Expected<size_t> writeFile(const std::string &Path) const;

private:
  std::vector<uint8_t> Buffer;
};

/// Bounds-checked reader over a byte range; every read returns Expected so
/// truncated and corrupted inputs surface as errors, never as UB. The
/// reader does not own its bytes — keep the backing buffer alive.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Size)
      : Data(static_cast<const uint8_t *>(Data)), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : ByteReader(Bytes.data(), Bytes.size()) {}

  size_t position() const { return Pos; }
  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

  Expected<uint8_t> readU8() {
    if (remaining() < 1)
      return Error("unexpected end of input reading u8");
    return Data[Pos++];
  }

  Expected<uint32_t> readU32() {
    if (remaining() < 4)
      return Error("unexpected end of input reading u32");
    uint32_t Value = 0;
    for (int Shift = 0; Shift < 32; Shift += 8)
      Value |= static_cast<uint32_t>(Data[Pos++]) << Shift;
    return Value;
  }

  Expected<uint64_t> readU64() {
    if (remaining() < 8)
      return Error("unexpected end of input reading u64");
    uint64_t Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 8)
      Value |= static_cast<uint64_t>(Data[Pos++]) << Shift;
    return Value;
  }

  Expected<uint64_t> readVarint() {
    uint64_t Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 7) {
      if (remaining() < 1)
        return Error("unexpected end of input reading varint");
      uint8_t Byte = Data[Pos++];
      if (Shift == 63 && (Byte & 0xFE) != 0)
        return Error("varint overflows 64 bits");
      Value |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
      if ((Byte & 0x80) == 0)
        return Value;
    }
    return Error("varint longer than 10 bytes");
  }

  Expected<std::string> readString() {
    Expected<std::string_view> View = readStringView();
    if (!View)
      return View.error();
    return std::string(*View);
  }

  /// Zero-copy string read: the view borrows from the reader's backing
  /// buffer and is valid only while that buffer lives.
  Expected<std::string_view> readStringView() {
    Expected<uint64_t> Length = readVarint();
    if (!Length)
      return Length.error();
    if (*Length > remaining())
      return Error("string length exceeds remaining input");
    std::string_view View(reinterpret_cast<const char *>(Data + Pos),
                          static_cast<size_t>(*Length));
    Pos += static_cast<size_t>(*Length);
    return View;
  }

  /// Compares the next \p Expect.size() bytes against \p Expect and
  /// consumes them on match; on mismatch the position is unchanged.
  bool consumeBytes(std::string_view Expect) {
    if (remaining() < Expect.size())
      return false;
    for (size_t I = 0; I < Expect.size(); ++I)
      if (Data[Pos + I] != static_cast<uint8_t>(Expect[I]))
        return false;
    Pos += Expect.size();
    return true;
  }

  /// Reads a section frame written by ByteWriter::beginSection, requiring
  /// its tag to equal \p ExpectTag. Returns a sub-reader confined to the
  /// section body; the parent reader advances past the whole section.
  Expected<ByteReader> readSection(uint32_t ExpectTag) {
    Expected<uint32_t> Tag = readU32();
    if (!Tag)
      return Tag.error();
    if (*Tag != ExpectTag)
      return Error("unexpected section tag");
    Expected<uint32_t> Length = readU32();
    if (!Length)
      return Length.error();
    if (*Length > remaining())
      return Error("section length exceeds remaining input");
    ByteReader Body(Data + Pos, *Length);
    Pos += *Length;
    return Body;
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

/// Reads a whole file into memory.
Expected<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Writes \p Size bytes at \p Data to \p Path *atomically*: the bytes go
/// to a temporary sibling first, which is renamed over \p Path only after
/// a complete write. Readers (and live MAP_PRIVATE mappings of the old
/// file — the zero-copy snapshot loader keeps those) always see either
/// the complete old inode or the complete new one, never a truncated
/// in-between. Shared by ByteWriter::writeFile and FlatWriter::writeFile.
/// Returns the byte count written.
Expected<size_t> writeBytesToFileAtomic(const std::string &Path,
                                        const void *Data, size_t Size);

/// Packs four characters into a section tag ("GRAM" etc.).
constexpr uint32_t fourCC(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24;
}

} // namespace ipg

#endif // IPG_SUPPORT_BYTESTREAM_H
