//===- support/Concurrency.h - Publication & counter primitives -*- C++ -*-===//
///
/// \file
/// The small concurrency toolbox behind the grammar server's read-mostly
/// discipline (server/GrammarServer.h) and the shared-graph mode of
/// lr/ItemSetGraph.h:
///
///   * threadSlot()     — a dense per-thread index for shard selection;
///   * ShardedCounters  — statistics counters spread over cache lines so a
///                        per-GOTO increment never bounces a line between
///                        reader threads;
///   * StripedMutexes   — a fixed pool of mutexes addressed by id, the
///                        publication locks for racing EXPANDers;
///   * EpochPublisher   — mutex-swapped shared_ptr publication ("RCU
///                        lite"): readers pin the current epoch with one
///                        shared_ptr copy, writers swap in a successor,
///                        and the last pin dropping reclaims the epoch.
///
/// Memory-ordering contract used throughout (documented once here, relied
/// on by ItemSetGraph): a writer that fills in a structure and then
/// performs a release store of its publication flag/pointer guarantees
/// that any reader observing the flag via an acquire load also observes
/// the structure. All counters are relaxed — they order nothing.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_CONCURRENCY_H
#define IPG_SUPPORT_CONCURRENCY_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace ipg {

/// A small dense index for the calling thread, assigned on first use.
/// Distinct live threads get distinct slots until the process has created
/// more threads than a shard array has entries; after that, slots recycle
/// modulo the array size and shard writers may collide (see
/// ShardedCounters for why that is tolerated).
inline unsigned threadSlot() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Slot = Next.fetch_add(1, std::memory_order_relaxed);
  return Slot;
}

/// Event counters sharded over cache lines. Each thread bumps the shard
/// selected by its threadSlot(), using a relaxed atomic load + store pair
/// rather than an atomic read-modify-write: on x86 that compiles to a
/// plain add with no lock prefix, which keeps a per-GOTO counter off the
/// parse hot path's critical cost. The trade: if more threads than shards
/// ever run (slots wrap), two threads can share a shard and an increment
/// can be lost. Counters are therefore *exact single-threaded* and
/// *statistically accurate concurrent* — acceptable for §7-style
/// instrumentation, never used for correctness decisions.
template <size_t NumCounters, size_t NumShards = 16> class ShardedCounters {
public:
  void bump(size_t Counter, uint64_t Delta = 1) {
    std::atomic<uint64_t> &Cell =
        Shards[threadSlot() % NumShards].Cells[Counter];
    Cell.store(Cell.load(std::memory_order_relaxed) + Delta,
               std::memory_order_relaxed);
  }

  uint64_t total(size_t Counter) const {
    uint64_t Sum = Bases[Counter].load(std::memory_order_relaxed);
    for (const Shard &S : Shards)
      Sum += S.Cells[Counter].load(std::memory_order_relaxed);
    return Sum;
  }

  /// Replaces the counter's value: zeroes every shard and deposits
  /// \p Value in a base cell that bump() never writes — the restore path
  /// for persisted counter snapshots. Depositing into shard 0 instead
  /// would race a concurrent bump on shard 0 (its relaxed load+store pair
  /// could overwrite the deposit with a stale pre-store value, losing the
  /// entire restored base). With a dedicated base cell the worst case
  /// under concurrent bumping is the usual statistical one: increments in
  /// flight across the shard zeroing may survive or vanish, but the base
  /// is never lost and total() stays within [Value, Value + bumps].
  void store(size_t Counter, uint64_t Value) {
    for (Shard &S : Shards)
      S.Cells[Counter].store(0, std::memory_order_relaxed);
    Bases[Counter].store(Value, std::memory_order_relaxed);
  }

private:
  /// One cache line per shard so reader threads never write-share.
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, NumCounters> Cells{};
  };
  std::array<Shard, NumShards> Shards{};
  /// store()-only cells (see store()); bump() never touches these.
  std::array<std::atomic<uint64_t>, NumCounters> Bases{};
};

/// A fixed pool of mutexes addressed by an integer id — the per-item-set
/// expansion locks. Striping bounds memory (64 mutexes serve any graph)
/// at the cost of false sharing between sets that hash to the same
/// stripe, which only delays one of two concurrent EXPANDs of *different*
/// sets — never correctness.
template <size_t NumStripes = 64> class StripedMutexes {
public:
  std::mutex &forId(size_t Id) { return Stripes[Id % NumStripes]; }

private:
  std::array<std::mutex, NumStripes> Stripes;
};

/// Mutex-swapped shared_ptr publication. acquire() pins the current value
/// (one refcount bump under the lock — off every parse hot path; sessions
/// acquire once, not per token), publish() installs a successor and
/// returns the displaced value. Readers holding a pin keep their epoch
/// alive arbitrarily long after it was displaced; destruction of the last
/// pin is the reclamation point.
template <typename T> class EpochPublisher {
public:
  std::shared_ptr<T> acquire() const {
    std::lock_guard<std::mutex> Lock(M);
    return Current;
  }

  std::shared_ptr<T> publish(std::shared_ptr<T> Next) {
    std::lock_guard<std::mutex> Lock(M);
    std::swap(Current, Next);
    return Next; // The displaced epoch.
  }

private:
  mutable std::mutex M;
  std::shared_ptr<T> Current;
};

} // namespace ipg

#endif // IPG_SUPPORT_CONCURRENCY_H
