//===- support/Hashing.h - Hash combinators ---------------------*- C++ -*-===//
///
/// \file
/// FNV-1a based hashing helpers used for kernel indices, packing maps and
/// memo tables throughout the library.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_HASHING_H
#define IPG_SUPPORT_HASHING_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace ipg {

/// 64-bit FNV-1a over raw bytes.
inline uint64_t hashBytes(const void *Data, size_t Size,
                          uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Word-at-a-time 64-bit hash for bulk integrity checksums (snapshot
/// payloads). Consumes eight bytes per multiply instead of FNV-1a's one,
/// which matters when the payload is a ~100KB pool image on the save hot
/// path. Words are assembled in explicit little-endian byte order (the
/// compiler folds the assembly into a single load on LE hosts), so the
/// value is identical across architectures. NOT FNV-compatible: snapshot
/// loaders accept either this or the legacy hashBytes value, so files
/// written before the migration still verify.
inline uint64_t hashBytesFast(const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  const uint64_t Mul = 0x9e3779b97f4a7c15ULL;
  uint64_t Hash = 0x2545f4914f6cdd1dULL ^ (static_cast<uint64_t>(Size) * Mul);
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Word;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&Word, Bytes + I, 8);
    } else {
      Word = 0;
      for (size_t B = 0; B < 8; ++B)
        Word |= static_cast<uint64_t>(Bytes[I + B]) << (8 * B);
    }
    Hash = (Hash ^ Word) * Mul;
  }
  uint64_t Tail = 0;
  for (size_t B = 0; I + B < Size; ++B)
    Tail |= static_cast<uint64_t>(Bytes[I + B]) << (8 * B);
  Hash = (Hash ^ Tail) * Mul;
  Hash ^= Hash >> 32;
  Hash *= 0x100000001b3ULL;
  Hash ^= Hash >> 29;
  return Hash;
}

/// Mixes a new 64-bit value into an existing hash. The seed is stirred
/// first so that combine(a, b) and combine(b, a) differ even when the
/// values share low bytes. The value is consumed in explicit little-endian
/// byte order (not its native representation), so hashes — and the
/// snapshot fingerprints built from them — are identical across
/// architectures of either endianness.
inline uint64_t hashCombine(uint64_t Hash, uint64_t Value) {
  uint64_t Stirred = (Hash ^ 0x9e3779b97f4a7c15ULL) * 0x100000001b3ULL;
  unsigned char Bytes[sizeof(Value)];
  for (size_t I = 0; I < sizeof(Value); ++I)
    Bytes[I] = static_cast<unsigned char>(Value >> (8 * I));
  return hashBytes(Bytes, sizeof(Bytes), Stirred);
}

inline uint64_t hashString(std::string_view Str) {
  return hashBytes(Str.data(), Str.size());
}

} // namespace ipg

#endif // IPG_SUPPORT_HASHING_H
