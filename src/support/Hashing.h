//===- support/Hashing.h - Hash combinators ---------------------*- C++ -*-===//
///
/// \file
/// FNV-1a based hashing helpers used for kernel indices, packing maps and
/// memo tables throughout the library.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_HASHING_H
#define IPG_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ipg {

/// 64-bit FNV-1a over raw bytes.
inline uint64_t hashBytes(const void *Data, size_t Size,
                          uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

/// Mixes a new 64-bit value into an existing hash. The seed is stirred
/// first so that combine(a, b) and combine(b, a) differ even when the
/// values share low bytes. The value is consumed in explicit little-endian
/// byte order (not its native representation), so hashes — and the
/// snapshot fingerprints built from them — are identical across
/// architectures of either endianness.
inline uint64_t hashCombine(uint64_t Hash, uint64_t Value) {
  uint64_t Stirred = (Hash ^ 0x9e3779b97f4a7c15ULL) * 0x100000001b3ULL;
  unsigned char Bytes[sizeof(Value)];
  for (size_t I = 0; I < sizeof(Value); ++I)
    Bytes[I] = static_cast<unsigned char>(Value >> (8 * I));
  return hashBytes(Bytes, sizeof(Bytes), Stirred);
}

inline uint64_t hashString(std::string_view Str) {
  return hashBytes(Str.data(), Str.size());
}

} // namespace ipg

#endif // IPG_SUPPORT_HASHING_H
