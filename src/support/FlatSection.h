//===- support/FlatSection.h - Flat, aligned binary sections ----*- C++ -*-===//
///
/// \file
/// The fixed-width, alignment-padded sibling of ByteStream, built for the
/// `ipg-snap-v2` zero-copy snapshot layout. ByteStream optimizes for
/// density (varints) and pays a per-record decode on load; FlatSection
/// optimizes for *adoption*: every array is written at its natural
/// alignment in little-endian fixed-width records, so a loader on a
/// little-endian host can bounds-check the offsets and then point straight
/// into the (mapped) buffer — no per-record decode, no per-record
/// allocation.
///
/// FlatWriter appends explicitly little-endian bytes (deterministic across
/// platforms and build types — the snapshot determinism CI contract) with
/// zeroed alignment padding and offset patching for headers written before
/// their payloads. FlatView is the read side: checked offset/array access
/// over an externally owned buffer, verifying bounds *and* alignment
/// before handing out typed pointers.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_FLATSECTION_H
#define IPG_SUPPORT_FLATSECTION_H

#include "support/Expected.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ipg {

/// Little-endian fixed-width writer with alignment padding and patching.
class FlatWriter {
public:
  size_t size() const { return Buffer.size(); }
  const std::vector<uint8_t> &buffer() const { return Buffer; }

  /// Pads with zero bytes until the current size is a multiple of
  /// \p Alignment (a power of two). Padding is always zero so identical
  /// documents stay byte-identical.
  void alignTo(size_t Alignment) {
    size_t Rem = Buffer.size() % Alignment;
    if (Rem != 0)
      Buffer.resize(Buffer.size() + (Alignment - Rem), 0);
  }

  /// Pre-sizes the underlying buffer's capacity (not its size) so a
  /// document whose final size is known appends without reallocating.
  void reserveCapacity(size_t Bytes) { Buffer.reserve(Bytes); }

  void writeU8(uint8_t Value) { Buffer.push_back(Value); }
  void writeU16(uint16_t Value) { appendLe(Value, 2); }
  void writeU32(uint32_t Value) { appendLe(Value, 4); }
  void writeU64(uint64_t Value) { appendLe(Value, 8); }

  void writeBytes(const void *Data, size_t Size) {
    const auto *Bytes = static_cast<const uint8_t *>(Data);
    size_t Old = Buffer.size();
    Buffer.resize(Old + Size);
    std::memcpy(Buffer.data() + Old, Bytes, Size);
  }

  /// Appends \p Count little-endian u32 values: one memcpy on LE hosts,
  /// per-element writes elsewhere. The bulk path is what keeps record
  /// tables (snapshot sections) off the one-resize-per-field cost.
  void writeU32Array(const uint32_t *Values, size_t Count) {
    if constexpr (std::endian::native == std::endian::little) {
      writeBytes(Values, Count * 4);
    } else {
      for (size_t I = 0; I < Count; ++I)
        writeU32(Values[I]);
    }
  }

  /// Reserves \p Size zero bytes at the current position and returns their
  /// offset, for headers patched after their payload is written.
  size_t reserve(size_t Size) {
    size_t Offset = Buffer.size();
    Buffer.resize(Offset + Size, 0);
    return Offset;
  }

  void patchU32(size_t Offset, uint32_t Value) { patchLe(Offset, Value, 4); }
  void patchU64(size_t Offset, uint64_t Value) { patchLe(Offset, Value, 8); }

  /// Writes the buffer to \p Path; returns the byte count written.
  Expected<size_t> writeFile(const std::string &Path) const;

private:
  void appendLe(uint64_t Value, int Bytes) {
    // One resize per value, not one push_back per byte: the writer's
    // whole job is bulk fixed-width output.
    size_t Old = Buffer.size();
    Buffer.resize(Old + static_cast<size_t>(Bytes));
    for (int I = 0; I < Bytes; ++I)
      Buffer[Old + static_cast<size_t>(I)] =
          static_cast<uint8_t>(Value >> (8 * I));
  }
  void patchLe(size_t Offset, uint64_t Value, int Bytes) {
    for (int I = 0; I < Bytes; ++I)
      Buffer[Offset + static_cast<size_t>(I)] =
          static_cast<uint8_t>(Value >> (8 * I));
  }

  std::vector<uint8_t> Buffer;
};

/// Checked, random-access reads over a flat section. Does not own the
/// bytes; the backing buffer (typically a MappedFile) must stay alive for
/// as long as any pointer handed out here is used.
class FlatView {
public:
  FlatView() = default;
  FlatView(const uint8_t *Data, size_t Size) : Base(Data), Bytes(Size) {}

  const uint8_t *data() const { return Base; }
  size_t size() const { return Bytes; }

  Expected<uint32_t> u32At(size_t Offset) const {
    if (Offset + 4 > Bytes || Offset + 4 < Offset)
      return Error("flat section: u32 read out of bounds");
    uint32_t Value = 0;
    for (int I = 0; I < 4; ++I)
      Value |= static_cast<uint32_t>(Base[Offset + I]) << (8 * I);
    return Value;
  }

  Expected<uint64_t> u64At(size_t Offset) const {
    if (Offset + 8 > Bytes || Offset + 8 < Offset)
      return Error("flat section: u64 read out of bounds");
    uint64_t Value = 0;
    for (int I = 0; I < 8; ++I)
      Value |= static_cast<uint64_t>(Base[Offset + I]) << (8 * I);
    return Value;
  }

  /// A typed pointer to \p Count records of \p RecordBytes each at
  /// \p Offset — after verifying the range is in bounds and the address is
  /// aligned for T. The caller guarantees (via compile-time layout gates)
  /// that T's in-memory layout matches the little-endian on-disk records.
  template <typename T>
  Expected<const T *> arrayAt(size_t Offset, size_t Count) const {
    size_t Wanted = Count * sizeof(T);
    if (Count != 0 && Wanted / Count != sizeof(T))
      return Error("flat section: array size overflows");
    if (Offset > Bytes || Wanted > Bytes - Offset)
      return Error("flat section: array out of bounds");
    if (reinterpret_cast<uintptr_t>(Base + Offset) % alignof(T) != 0)
      return Error("flat section: misaligned array");
    return reinterpret_cast<const T *>(Base + Offset);
  }

  /// A sub-view of \p Size bytes at \p Offset.
  Expected<FlatView> sliceAt(size_t Offset, size_t Size) const {
    if (Offset > Bytes || Size > Bytes - Offset)
      return Error("flat section: slice out of bounds");
    return FlatView(Base + Offset, Size);
  }

private:
  const uint8_t *Base = nullptr;
  size_t Bytes = 0;
};

} // namespace ipg

#endif // IPG_SUPPORT_FLATSECTION_H
