//===- support/FlatSection.cpp - Flat, aligned binary sections ------------===//

#include "support/FlatSection.h"

#include "support/ByteStream.h"

using namespace ipg;

Expected<size_t> FlatWriter::writeFile(const std::string &Path) const {
  return writeBytesToFileAtomic(Path, Buffer.data(), Buffer.size());
}
