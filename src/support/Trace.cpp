//===- support/Trace.cpp - Per-thread ring-buffer event tracer ------------===//

#include "support/Trace.h"

#if IPG_TRACING
#include "support/Concurrency.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>
#endif

using namespace ipg;

#if IPG_TRACING

std::atomic<bool> trace::detail::Recording{false};

uint64_t trace::nowNanos() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

namespace {

/// One thread's preallocated event ring. Single writer (the owning
/// thread); Head counts events ever recorded, so Head > capacity means
/// wrap and the live window is the last `capacity` events.
struct ThreadRing {
  std::vector<trace::detail::Event> Events;
  std::atomic<uint64_t> Head{0};
  uint32_t Tid = 0;
};

/// All rings ever created. Rings live until process exit (threads may
/// die; their events remain drainable), so the thread_local pointer
/// below never dangles.
struct RingRegistry {
  std::mutex M;
  std::vector<std::unique_ptr<ThreadRing>> Rings;
  size_t Capacity = size_t(1) << 16;
};

RingRegistry &registry() {
  static RingRegistry R;
  return R;
}

thread_local ThreadRing *MyRing = nullptr;

/// The live window of \p Ring as (first index, count).
std::pair<uint64_t, uint64_t> liveWindow(const ThreadRing &Ring) {
  uint64_t Head = Ring.Head.load(std::memory_order_acquire);
  uint64_t Size = Ring.Events.size();
  uint64_t Count = std::min(Head, Size);
  return {Head - Count, Count};
}

} // namespace

void trace::detail::record(const Event &E) {
  ThreadRing *Ring = MyRing;
  if (!Ring) {
    // First event on this thread: register a ring (the only allocation
    // the tracer ever performs on a recording thread).
    RingRegistry &Reg = registry();
    std::lock_guard<std::mutex> Lock(Reg.M);
    Reg.Rings.push_back(std::make_unique<ThreadRing>());
    Ring = Reg.Rings.back().get();
    Ring->Events.resize(Reg.Capacity);
    Ring->Tid = threadSlot();
    MyRing = Ring;
  }
  uint64_t Head = Ring->Head.load(std::memory_order_relaxed);
  Event &Slot = Ring->Events[Head % Ring->Events.size()];
  Slot = E;
  Slot.Tid = Ring->Tid;
  Ring->Head.store(Head + 1, std::memory_order_release);
}

void trace::start(size_t RingCapacity) {
  RingRegistry &Reg = registry();
  {
    std::lock_guard<std::mutex> Lock(Reg.M);
    Reg.Capacity = RingCapacity ? RingCapacity : 1;
  }
  detail::Recording.store(true, std::memory_order_relaxed);
}

void trace::stop() {
  detail::Recording.store(false, std::memory_order_relaxed);
}

void trace::clear() {
  RingRegistry &Reg = registry();
  std::lock_guard<std::mutex> Lock(Reg.M);
  for (auto &Ring : Reg.Rings)
    Ring->Head.store(0, std::memory_order_release);
}

uint64_t trace::eventCount() {
  RingRegistry &Reg = registry();
  std::lock_guard<std::mutex> Lock(Reg.M);
  uint64_t Count = 0;
  for (auto &Ring : Reg.Rings)
    Count += liveWindow(*Ring).second;
  return Count;
}

uint64_t trace::eventCount(const char *Name) {
  RingRegistry &Reg = registry();
  std::lock_guard<std::mutex> Lock(Reg.M);
  uint64_t Count = 0;
  for (auto &Ring : Reg.Rings) {
    auto [First, N] = liveWindow(*Ring);
    for (uint64_t I = 0; I < N; ++I) {
      const detail::Event &E = Ring->Events[(First + I) % Ring->Events.size()];
      if (E.Name == Name || std::strcmp(E.Name, Name) == 0)
        ++Count;
    }
  }
  return Count;
}

uint64_t trace::droppedCount() {
  RingRegistry &Reg = registry();
  std::lock_guard<std::mutex> Lock(Reg.M);
  uint64_t Dropped = 0;
  for (auto &Ring : Reg.Rings) {
    uint64_t Head = Ring->Head.load(std::memory_order_acquire);
    uint64_t Size = Ring->Events.size();
    if (Head > Size)
      Dropped += Head - Size;
  }
  return Dropped;
}

JsonValue trace::drainChromeJson() {
  std::vector<detail::Event> All;
  uint64_t Dropped = 0;
  {
    RingRegistry &Reg = registry();
    std::lock_guard<std::mutex> Lock(Reg.M);
    for (auto &Ring : Reg.Rings) {
      auto [First, N] = liveWindow(*Ring);
      for (uint64_t I = 0; I < N; ++I)
        All.push_back(Ring->Events[(First + I) % Ring->Events.size()]);
      uint64_t Head = Ring->Head.load(std::memory_order_acquire);
      if (Head > Ring->Events.size())
        Dropped += Head - Ring->Events.size();
    }
  }
  std::sort(All.begin(), All.end(),
            [](const detail::Event &A, const detail::Event &B) {
              return A.StartNanos < B.StartNanos;
            });
  uint64_t Epoch = All.empty() ? 0 : All.front().StartNanos;

  JsonValue Doc = JsonValue::object();
  JsonValue &Events = Doc.set("traceEvents", JsonValue::array());
  for (const detail::Event &E : All) {
    JsonValue Ev = JsonValue::object();
    Ev.set("name", E.Name);
    Ev.set("ph", E.Phase == 0 ? "X" : (E.Phase == 1 ? "i" : "C"));
    Ev.set("ts", double(E.StartNanos - Epoch) * 1e-3);
    if (E.Phase == 0)
      Ev.set("dur", double(E.DurNanos) * 1e-3);
    Ev.set("pid", 1);
    Ev.set("tid", uint64_t(E.Tid));
    if (E.Phase == 1)
      Ev.set("s", "t"); // Thread-scoped instant.
    if (E.HasArg) {
      JsonValue &Args = Ev.set("args", JsonValue::object());
      // Counter tracks plot their named series; spans carry one payload.
      Args.set(E.Phase == 2 ? "value" : "arg", E.Arg);
    }
    Events.push(std::move(Ev));
  }
  Doc.set("displayTimeUnit", "ms");
  JsonValue &Other = Doc.set("otherData", JsonValue::object());
  Other.set("dropped_events", Dropped);
  return Doc;
}

#else // !IPG_TRACING

void trace::start(size_t) {}
void trace::stop() {}
void trace::clear() {}
uint64_t trace::eventCount() { return 0; }
uint64_t trace::eventCount(const char *) { return 0; }
uint64_t trace::droppedCount() { return 0; }

JsonValue trace::drainChromeJson() {
  JsonValue Doc = JsonValue::object();
  Doc.set("traceEvents", JsonValue::array());
  Doc.set("displayTimeUnit", "ms");
  JsonValue &Other = Doc.set("otherData", JsonValue::object());
  Other.set("dropped_events", uint64_t(0));
  return Doc;
}

#endif // IPG_TRACING

Expected<size_t> trace::writeChromeTrace(const std::string &Path) {
  return writeJsonFile(drainChromeJson(), Path);
}
