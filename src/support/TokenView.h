//===- support/TokenView.h - Cursor-bearing token-stream view ---*- C++ -*-===//
///
/// \file
/// The span-based token-input currency of every parse entry point: an
/// ArrayView<SymbolId> over the token buffer plus a cursor position. The
/// cursor is where parsing starts — 0 for a whole-input parse, a resume
/// point for the incremental machinery (incremental/ParseDocument.h),
/// which steps a suspended GSS from the first damaged token instead of
/// re-feeding the document from the front.
///
/// Implicitly constructible from std::vector<SymbolId>, so the historical
/// `parse(const std::vector<SymbolId>&)` call sites keep compiling against
/// the thin forwarding overloads the engines retain.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_TOKENVIEW_H
#define IPG_SUPPORT_TOKENVIEW_H

#include "grammar/Symbol.h"
#include "support/ArrayView.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace ipg {

/// A non-owning window into a token stream: the full buffer plus the
/// position parsing should (re)start from. A one-shot parser treats the
/// cursor as the start of its input — tokens before it are context it
/// never reads, and reported positions (error indices, forest spans)
/// count from the cursor. Whole-buffer parses (cursor 0, the vector
/// overloads) are therefore bit-for-bit the pre-redesign behaviour.
class TokenView {
public:
  TokenView() = default;
  TokenView(ArrayView<SymbolId> Tokens, size_t Cursor = 0)
      : Toks(Tokens), Pos(Cursor) {
    assert(Pos <= Toks.size() && "cursor past end of token buffer");
  }
  /// Implicit on purpose: pre-redesign vector call sites resolve here.
  TokenView(const std::vector<SymbolId> &V) : Toks(V) {}
  TokenView(const SymbolId *Data, size_t Size, size_t Cursor = 0)
      : Toks(Data, Size), Pos(Cursor) {
    assert(Pos <= Toks.size() && "cursor past end of token buffer");
  }

  /// The whole underlying buffer, cursor-independent.
  ArrayView<SymbolId> tokens() const { return Toks; }
  /// Absolute index parsing starts from.
  size_t cursor() const { return Pos; }
  /// Total tokens in the buffer (not: remaining after the cursor).
  size_t size() const { return Toks.size(); }
  /// Tokens at or after the cursor.
  size_t remaining() const { return Toks.size() - Pos; }
  bool empty() const { return Toks.empty(); }
  bool atEnd() const { return Pos == Toks.size(); }

  const SymbolId *data() const { return Toks.data(); }
  /// Absolute indexing into the buffer.
  SymbolId operator[](size_t I) const { return Toks[I]; }

  /// The token under the cursor.
  SymbolId peek() const { return Toks[Pos]; }
  /// A view over the same buffer with the cursor moved forward.
  TokenView advanced(size_t N) const {
    return TokenView(Toks, Pos + N);
  }

private:
  ArrayView<SymbolId> Toks;
  size_t Pos = 0;
};

} // namespace ipg

#endif // IPG_SUPPORT_TOKENVIEW_H
