//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
///
/// \file
/// Tokenizing, joining and formatting helpers shared by the grammar readers,
/// the diagnostics and the benchmark table printer.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_STRINGUTILS_H
#define IPG_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace ipg {

/// Splits \p Text on any character in \p Separators, dropping empty pieces.
std::vector<std::string_view> splitOnAny(std::string_view Text,
                                         std::string_view Separators);

/// Splits \p Text into whitespace-separated words.
std::vector<std::string_view> splitWords(std::string_view Text);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view Text);

/// True if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Left-pads \p Text with spaces to at least \p Width columns.
std::string padLeft(std::string_view Text, size_t Width);

/// Right-pads \p Text with spaces to at least \p Width columns.
std::string padRight(std::string_view Text, size_t Width);

/// Formats seconds as a fixed-point string, e.g. "0.0123".
std::string formatSeconds(double Seconds, int Precision = 4);

} // namespace ipg

#endif // IPG_SUPPORT_STRINGUTILS_H
