//===- support/ArrayView.h - Non-owning contiguous range view ---*- C++ -*-===//
///
/// \file
/// A minimal non-owning view over a contiguous array of T, in the spirit of
/// std::span<const T>. It is the storage-neutral currency of the item-set
/// layer: an ItemSet answers its accessor queries with ArrayViews whether
/// the underlying records live in its own heap vectors (owned mode) or in
/// an `ipg-snap-v2` mapped snapshot region (borrowed mode). Implicitly
/// constructible from std::vector so existing call sites keep compiling.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_ARRAYVIEW_H
#define IPG_SUPPORT_ARRAYVIEW_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace ipg {

template <typename T> class ArrayView {
public:
  ArrayView() = default;
  ArrayView(const T *Data, size_t Size) : Ptr(Data), Len(Size) {}
  /// Implicit on purpose: APIs that took `const std::vector<T> &` before
  /// the borrowed-storage refactor keep accepting vectors unchanged.
  ArrayView(const std::vector<T> &V) : Ptr(V.data()), Len(V.size()) {}

  const T *data() const { return Ptr; }
  const T *begin() const { return Ptr; }
  const T *end() const { return Ptr + Len; }
  size_t size() const { return Len; }
  bool empty() const { return Len == 0; }

  const T &operator[](size_t I) const {
    assert(I < Len && "ArrayView index out of range");
    return Ptr[I];
  }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Len - 1]; }

private:
  const T *Ptr = nullptr;
  size_t Len = 0;
};

} // namespace ipg

#endif // IPG_SUPPORT_ARRAYVIEW_H
