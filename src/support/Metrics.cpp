//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace ipg;

uint64_t LatencyHistogram::bucketUpperMicros(size_t I) {
  if (I == 0)
    return 1;
  if (I >= NumBuckets - 1)
    return UINT64_MAX;
  return uint64_t(1) << I;
}

size_t LatencyHistogram::bucketIndexForNanos(uint64_t Nanos) {
  uint64_t Micros = Nanos / 1000;
  if (Micros == 0)
    return 0;
  return std::min<size_t>(std::bit_width(Micros), NumBuckets - 1);
}

template <typename T>
T &MetricsRegistry::lookup(std::deque<Named<T>> &Store, std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  for (Named<T> &Entry : Store)
    if (Entry.Name == Name)
      return Entry.Metric;
  // emplace + assign: the metric types hold atomics and cannot be moved
  // into place.
  Store.emplace_back();
  Store.back().Name = std::string(Name);
  return Store.back().Metric;
}

MetricCounter &MetricsRegistry::counter(std::string_view Name) {
  return lookup(Counters, Name);
}

MetricGauge &MetricsRegistry::gauge(std::string_view Name) {
  return lookup(Gauges, Name);
}

LatencyHistogram &MetricsRegistry::histogram(std::string_view Name) {
  return lookup(Histograms, Name);
}

MetricsRegistry &MetricsRegistry::process() {
  static MetricsRegistry Registry;
  return Registry;
}

namespace {

/// Stable export order: names sorted, not registration order, so two
/// processes that registered in different interleavings emit comparable
/// documents.
template <typename T>
std::vector<const T *> sortedByName(const std::deque<T> &Store) {
  std::vector<const T *> Sorted;
  Sorted.reserve(Store.size());
  for (const T &Entry : Store)
    Sorted.push_back(&Entry);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const T *A, const T *B) { return A->Name < B->Name; });
  return Sorted;
}

} // namespace

JsonValue MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(M);
  JsonValue Doc = JsonValue::object();

  JsonValue &CounterObj = Doc.set("counters", JsonValue::object());
  for (const auto *Entry : sortedByName(Counters))
    CounterObj.set(Entry->Name, Entry->Metric.total());

  JsonValue &GaugeObj = Doc.set("gauges", JsonValue::object());
  for (const auto *Entry : sortedByName(Gauges))
    GaugeObj.set(Entry->Name, int64_t(Entry->Metric.value()));

  JsonValue &HistObj = Doc.set("histograms", JsonValue::object());
  for (const auto *Entry : sortedByName(Histograms)) {
    const LatencyHistogram &H = Entry->Metric;
    JsonValue HistDoc = JsonValue::object();
    uint64_t Count = H.count();
    HistDoc.set("count", Count);
    HistDoc.set("sum_nanos", H.sumNanos());
    HistDoc.set("max_nanos", H.maxNanos());
    HistDoc.set("mean_nanos",
                Count ? double(H.sumNanos()) / double(Count) : 0.0);
    // Non-empty buckets only, as [exclusive-upper-bound-µs, count]; the
    // unbounded last bucket reports upper bound 0 (JSON has no +Inf).
    JsonValue &BucketArr = HistDoc.set("buckets_le_micros", JsonValue::array());
    for (size_t I = 0; I < LatencyHistogram::NumBuckets; ++I) {
      uint64_t BucketHits = H.bucketCount(I);
      if (BucketHits == 0)
        continue;
      JsonValue Pair = JsonValue::array();
      uint64_t Upper = LatencyHistogram::bucketUpperMicros(I);
      Pair.push(Upper == UINT64_MAX ? uint64_t(0) : Upper);
      Pair.push(BucketHits);
      BucketArr.push(std::move(Pair));
    }
    HistObj.set(Entry->Name, std::move(HistDoc));
  }
  return Doc;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map dots (and anything else) to underscores.
std::string prometheusName(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (!((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
          (C >= '0' && C <= '9') || C == '_'))
      C = '_';
  return Out;
}

void appendLine(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

} // namespace

std::string MetricsRegistry::prometheusText() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;

  for (const auto *Entry : sortedByName(Counters)) {
    std::string N = prometheusName(Entry->Name) + "_total";
    appendLine(Out, "# TYPE %s counter\n", N.c_str());
    appendLine(Out, "%s %llu\n", N.c_str(),
               (unsigned long long)Entry->Metric.total());
  }

  for (const auto *Entry : sortedByName(Gauges)) {
    std::string N = prometheusName(Entry->Name);
    appendLine(Out, "# TYPE %s gauge\n", N.c_str());
    appendLine(Out, "%s %lld\n", N.c_str(), (long long)Entry->Metric.value());
  }

  for (const auto *Entry : sortedByName(Histograms)) {
    const LatencyHistogram &H = Entry->Metric;
    std::string N = prometheusName(Entry->Name) + "_seconds";
    appendLine(Out, "# TYPE %s histogram\n", N.c_str());
    uint64_t Cumulative = 0;
    for (size_t I = 0; I < LatencyHistogram::NumBuckets; ++I) {
      Cumulative += H.bucketCount(I);
      uint64_t UpperMicros = LatencyHistogram::bucketUpperMicros(I);
      if (UpperMicros == UINT64_MAX)
        appendLine(Out, "%s_bucket{le=\"+Inf\"} %llu\n", N.c_str(),
                   (unsigned long long)Cumulative);
      else
        appendLine(Out, "%s_bucket{le=\"%g\"} %llu\n", N.c_str(),
                   double(UpperMicros) * 1e-6, (unsigned long long)Cumulative);
    }
    appendLine(Out, "%s_sum %g\n", N.c_str(), double(H.sumNanos()) * 1e-9);
    appendLine(Out, "%s_count %llu\n", N.c_str(),
               (unsigned long long)H.count());
  }
  return Out;
}
