//===- support/MappedFile.h - Private file mapping for snapshots *- C++ -*-===//
///
/// \file
/// A whole-file memory mapping with copy-on-write semantics, the backing
/// store of the `ipg-snap-v2` zero-copy snapshot load. The file is mapped
/// MAP_PRIVATE and read-write: the loader patches item-set transition
/// records in place (index -> pointer fixup), and the kernel materializes
/// only the touched pages — everything else stays a clean page backed by
/// the file. On platforms without mmap the whole file is read into an
/// 8-byte-aligned heap buffer instead; the adoption contract (stable bytes
/// for the lifetime of this object, writable in place) is identical.
///
/// Lifetime contract: item sets adopted from a mapping borrow spans of its
/// bytes. The graph that adopted a MappedFile keeps it alive (shared_ptr)
/// until the graph is reset or replaced; never destroy a mapping while a
/// graph still borrows from it.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SUPPORT_MAPPEDFILE_H
#define IPG_SUPPORT_MAPPEDFILE_H

#include "support/Expected.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace ipg {

class MappedFile {
public:
  /// Maps \p Path privately (copy-on-write). Fails on missing, unreadable,
  /// or empty files.
  static Expected<MappedFile> open(const std::string &Path);

  /// An anonymous in-memory "mapping": copies \p Size bytes from \p Data
  /// into an 8-byte-aligned heap buffer with the same stable-bytes /
  /// writable-in-place adoption contract as a file mapping. This is how a
  /// grammar-server epoch fork materializes its predecessor's serialized
  /// graph without touching the filesystem. Fails only on Size == 0 or
  /// allocation failure.
  static Expected<MappedFile> copyOf(const void *Data, size_t Size);

  MappedFile() = default;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  MappedFile(MappedFile &&Other) noexcept { *this = std::move(Other); }
  MappedFile &operator=(MappedFile &&Other) noexcept {
    if (this != &Other) {
      unmap();
      Base = Other.Base;
      Bytes = Other.Bytes;
      HeapFallback = Other.HeapFallback;
      Other.Base = nullptr;
      Other.Bytes = 0;
      Other.HeapFallback = false;
    }
    return *this;
  }
  ~MappedFile() { unmap(); }

  /// The mapped bytes; writable (writes never reach the file — the mapping
  /// is private). Page-aligned base.
  uint8_t *data() const { return Base; }
  size_t size() const { return Bytes; }
  bool valid() const { return Base != nullptr; }

private:
  void unmap();
  /// Releases a heap-fallback buffer with the allocator that made it
  /// (MSVC's _aligned_malloc blocks must not go through free()).
  static void freeHeapBuffer(void *Ptr);

  uint8_t *Base = nullptr;
  size_t Bytes = 0;
  bool HeapFallback = false;
};

} // namespace ipg

#endif // IPG_SUPPORT_MAPPEDFILE_H
