//===- server/DocumentSession.cpp - Epoch-pinned parse documents ----------===//

#include "server/DocumentSession.h"

#include "support/Metrics.h"

#include <algorithm>
#include <limits>

using namespace ipg;

namespace {

/// Migration observables (catalog in docs/OBSERVABILITY.md).
struct DocMetrics {
  MetricsRegistry &R = MetricsRegistry::process();
  MetricCounter &Documents = R.counter("ipg.server.documents");
  MetricCounter &Reused = R.counter("ipg.server.migrations_reused");
  MetricCounter &Bounded = R.counter("ipg.server.migrations_bounded");
  MetricCounter &Full = R.counter("ipg.server.migrations_full");

  static DocMetrics &get() {
    static DocMetrics M;
    return M;
  }
};

constexpr size_t NotAffected = std::numeric_limits<size_t>::max();

/// The first layer whose checkpoint (or the live frontier) contains a set
/// the MODIFY chain invalidated — everything from that layer on was
/// computed by querying at least one changed ACTION/GOTO table and must
/// be re-stepped. \p Affected is sorted (affectedSince contract).
size_t firstAffectedLayer(const GssEngine &Eng,
                          const std::vector<uint32_t> &Affected) {
  auto Hit = [&](const GssNode *Node) {
    return std::binary_search(Affected.begin(), Affected.end(),
                              Node->State->id());
  };
  const std::deque<GssLayerRecord> &Recs = Eng.records();
  for (size_t Layer = 0; Layer < Recs.size(); ++Layer)
    for (const GssNode *Node : Recs[Layer].Nodes)
      if (Hit(Node))
        return Layer;
  // A suspended parse's pre-fixpoint frontier lives at position() and is
  // in no record yet; its states' ACTIONs are exactly what the next step
  // queries.
  for (const GssNode *Node : Eng.frontier())
    if (Hit(Node))
      return std::min(Eng.position(), NotAffected - 1);
  return NotAffected;
}

} // namespace

DocumentSession::DocumentSession(GrammarServer &Server)
    : Server(&Server), Epoch(Server.epoch()),
      Doc(std::make_unique<ParseDocument>(Epoch->graph())) {
  DocMetrics::get().Documents.bump();
}

DocumentSession::Migration
DocumentSession::fullReparse(std::shared_ptr<GraphEpoch> Next) {
  std::vector<SymbolId> Toks = Doc->tokens();
  Doc = std::make_unique<ParseDocument>(Next->graph());
  Doc->setTokens(std::move(Toks));
  Epoch = std::move(Next);
  DocMetrics::get().Full.bump();
  return Migration::Full;
}

DocumentSession::Migration DocumentSession::migrate() {
  std::shared_ptr<GraphEpoch> Next = Server->epoch();
  if (Next->generation() == generation())
    return Migration::Current;

  std::vector<uint32_t> Affected;
  if (!Server->affectedSince(generation(), Affected))
    return fullReparse(std::move(Next));

  const size_t First = firstAffectedLayer(Doc->engine(), Affected);
  if (First == 0)
    // The start set itself changed behavior; nothing survives. (Skipping
    // the rebind keeps a doomed GSS from constraining the fallback.)
    return fullReparse(std::move(Next));
  if (!Doc->engine().rebindGraph(Next->graph()))
    return fullReparse(std::move(Next));
  Epoch = std::move(Next);

  if (First == NotAffected) {
    DocMetrics::get().Reused.bump();
    return Migration::Reused;
  }
  Doc->invalidateFrom(First);
  DocMetrics::get().Bounded.bump();
  return Migration::Bounded;
}
