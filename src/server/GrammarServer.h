//===- server/GrammarServer.h - Concurrent grammar server -------*- C++ -*-===//
///
/// \file
/// A concurrent front end for the lazy/incremental machinery: many parse
/// sessions share ONE graph of item sets, so a set any session EXPANDs is
/// available to every other session — the §5 memoization argument carried
/// across threads — while grammar modification (§6) proceeds without ever
/// blocking readers.
///
/// The design is whole-version RCU over *epochs*:
///
///   GrammarServer ──publishes──► GraphEpoch #n  (grammar + shared graph)
///        │                           ▲ pinned by shared_ptr
///        │ MODIFY                ParseSession(s)
///        ▼
///   GraphEpoch #n+1 = COW fork of #n, repaired via ADD/DELETE-RULE
///
/// * openSession() pins the current epoch (one shared_ptr copy under the
///   publisher's lock — off every parse hot path). Within the epoch the
///   session parses lock-free against Complete sets and takes the striped
///   expansion path of lr/ItemSetGraph.h for sets it completes first.
/// * addRule()/removeRule() never touch the published graph. The writer
///   (serialized by a mutex) freezes the current epoch's expansion just
///   long enough to serialize its graph (GraphSnapshot::saveV2 — queries
///   against Complete sets keep running), clones the grammar id-exactly,
///   adopts the serialized graph zero-copy into a private successor,
///   replays the one edit through the §6 repair machinery, and publishes
///   the successor. In-flight parses finish against the epoch they
///   pinned; new sessions see the new grammar.
/// * Epoch reclamation is the shared_ptr: when the last session pinning a
///   displaced epoch ends, the epoch (graph, grammar, mapped backing)
///   destructs. liveEpochs() observes this for tests and introspection.
///
/// Id stability contract: cloneExact preserves SymbolIds and RuleIds
/// across epochs, so token streams produced against any epoch remain
/// valid against every later epoch — clients tokenize once, not per
/// MODIFY.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SERVER_GRAMMARSERVER_H
#define IPG_SERVER_GRAMMARSERVER_H

#include "glr/GlrParser.h"
#include "lr/ItemSetGraph.h"
#include "support/Concurrency.h"
#include "support/Json.h"

#include <atomic>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace ipg {

/// One published generation of the grammar together with its shared graph
/// of item sets. Immutable after publication except for monotone lazy
/// expansion (Initial/Dirty sets completing), which is exactly the
/// mutation the shared-mode ItemSetGraph synchronizes.
class GraphEpoch {
public:
  GraphEpoch(const GraphEpoch &) = delete;
  GraphEpoch &operator=(const GraphEpoch &) = delete;

  /// Monotone publication counter; epoch #0 is the server's initial state.
  uint64_t generation() const { return Generation; }

  /// The epoch's grammar. Const to everyone but the forking writer: ids
  /// match every other epoch of the same server (cloneExact).
  const Grammar &grammar() const { return G; }

  /// The shared graph. Sessions of this epoch may expand it concurrently.
  ItemSetGraph &graph() { return Graph; }
  const ItemSetGraph &graph() const { return Graph; }

  /// True when this epoch's graph was adopted zero-copy from its
  /// predecessor's serialization (vs the decode/cold-start fallbacks).
  bool adopted() const { return Adopted; }

  /// Parses served against this epoch (all sessions; relaxed counter).
  /// The per-epoch utilization observable of metricsJson().
  uint64_t parses() const { return Parses.load(std::memory_order_relaxed); }

private:
  friend class GrammarServer;
  friend class ParseSession;

  explicit GraphEpoch(uint64_t Generation) : Generation(Generation), Graph(G) {}

  uint64_t Generation;
  Grammar G;
  ItemSetGraph Graph;
  bool Adopted = false;
  std::atomic<uint64_t> Parses{0};
};

/// A parse session: a Tomita parser pinned to one epoch. Sessions are
/// cheap (one shared_ptr + one reference) and single-threaded; run many
/// sessions on many threads to parse concurrently. All per-parse state
/// (GSS, frontier index, forest) is local to each parse() call, so two
/// sessions over the same epoch share nothing but the graph.
class ParseSession {
public:
  explicit ParseSession(std::shared_ptr<GraphEpoch> Pinned)
      : Epoch(std::move(Pinned)), Parser(Epoch->graph()) {}

  /// The epoch this session parses against, for the session's lifetime.
  GraphEpoch &epoch() { return *Epoch; }
  uint64_t generation() const { return Epoch->generation(); }

  /// Parses \p Input (terminals, no end marker) into \p F.
  GlrResult parse(TokenView Input, Forest &F) {
    Epoch->Parses.fetch_add(1, std::memory_order_relaxed);
    return Parser.parse(Input, F);
  }

  /// Recognition only (the forest is still built; §7 measurement style).
  bool recognize(TokenView Input) {
    Epoch->Parses.fetch_add(1, std::memory_order_relaxed);
    return Parser.recognize(Input);
  }

  // Thin forwarding overloads for pre-TokenView call sites.
  GlrResult parse(const std::vector<SymbolId> &Input, Forest &F) {
    return parse(TokenView(Input), F);
  }
  bool recognize(const std::vector<SymbolId> &Input) {
    return recognize(TokenView(Input));
  }

private:
  std::shared_ptr<GraphEpoch> Epoch;
  GlrParser Parser;
};

/// The server: owns the epoch chain, hands out sessions, applies edits.
/// All members are safe to call from any thread.
class GrammarServer {
public:
  /// Starts serving a replica of \p Initial (cloned id-exactly; the
  /// argument is not retained).
  explicit GrammarServer(const Grammar &Initial);

  GrammarServer(const GrammarServer &) = delete;
  GrammarServer &operator=(const GrammarServer &) = delete;

  /// Pins the current epoch into a new session. Out of line for the
  /// session-count metric (keeps support/Metrics.h out of this header).
  ParseSession openSession() const;

  /// The current epoch (pinned). Successive calls may return different
  /// epochs; one session's view is stable because the *session* pins.
  std::shared_ptr<GraphEpoch> epoch() const { return Published.acquire(); }

  /// Generation of the current epoch.
  uint64_t generation() const { return epoch()->generation(); }

  /// ADD-RULE (§6) as an epoch fork. Returns false (and publishes
  /// nothing) when the rule is already active. Symbol ids are those of
  /// any epoch of this server.
  bool addRule(SymbolId Lhs, std::vector<SymbolId> Rhs);

  /// ADD-RULE by symbol names (interned into the successor epoch).
  bool addRule(std::string_view Lhs,
               std::initializer_list<std::string_view> Rhs);

  /// DELETE-RULE (§6) as an epoch fork. Returns false when no such rule
  /// is active.
  bool removeRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs);

  /// DELETE-RULE by symbol names (never interns; unknown names mean the
  /// rule cannot be active).
  bool removeRule(std::string_view Lhs,
                  std::initializer_list<std::string_view> Rhs);

  /// Collects into \p Out the union of item-set ids whose ACTION/GOTO
  /// behavior was invalidated by every fork published after generation
  /// \p SinceGen — the damage a parse pinned at \p SinceGen must respect
  /// to migrate to the current epoch (server/DocumentSession.h). Ids are
  /// predecessor-era (comparable against any GSS built at \p SinceGen or
  /// later); the union is sorted and deduplicated. Returns false when the
  /// fork log no longer covers the whole gap (the server keeps a bounded
  /// window of fork damage) — the caller must then assume everything
  /// changed and re-parse from scratch.
  bool affectedSince(uint64_t SinceGen, std::vector<uint32_t> &Out) const;

  /// Number of epochs still alive — published or kept alive by sessions.
  /// The reclamation observable: after dropping every session of a
  /// displaced epoch this shrinks back toward 1.
  size_t liveEpochs() const;

  /// True when the most recent fork adopted its predecessor's graph
  /// zero-copy (introspection for tests; false before the first fork and
  /// on the decode/cold-start fallbacks).
  bool lastForkAdopted() const;

  /// A point-in-time observability document: current generation, live
  /// epochs and reclamation lag, the current epoch's parse count and
  /// sharded graph statistics, plus the process-wide metrics registry.
  /// Safe to call from any thread while sessions parse and writers fork:
  /// it reads only sharded/atomic counters and WriterMutex-guarded state,
  /// never walking a concurrently-growing graph.
  JsonValue metricsJson() const;

private:
  /// Builds and publishes the successor epoch; caller holds WriterMutex
  /// and has already applied the edit to \p Next's grammar via the
  /// returned epoch's graph. Implemented in GrammarServer.cpp.
  std::shared_ptr<GraphEpoch> forkOf(GraphEpoch &Cur);
  void publish(std::shared_ptr<GraphEpoch> Next);

  /// Captures, post-edit and pre-publish, which predecessor-era sets the
  /// fork's MODIFY invalidated (everything the §6.2 marking left
  /// non-Complete) into the bounded fork log behind affectedSince().
  /// Caller holds WriterMutex.
  void recordForkDamage(const GraphEpoch &Cur, GraphEpoch &Next);

  /// Serializes writers (forks). Readers never take it.
  mutable std::mutex WriterMutex;
  EpochPublisher<GraphEpoch> Published;
  /// Every epoch ever published, weakly: the liveEpochs() probe. Pruned
  /// of expired entries on every fork and query. Guarded by WriterMutex.
  mutable std::vector<std::weak_ptr<GraphEpoch>> History;
  uint64_t NextGeneration = 0;
  bool LastForkAdopted = false;

  /// Per-fork invalidation sets for affectedSince(), oldest first,
  /// bounded to the last ForkLogCap forks (documents further behind fall
  /// back to a from-scratch parse). Guarded by WriterMutex; independent
  /// of epoch lifetimes so a migration can span reclaimed epochs.
  struct ForkDamage {
    uint64_t Generation;
    std::vector<uint32_t> Affected;
  };
  static constexpr size_t ForkLogCap = 64;
  mutable std::vector<ForkDamage> ForkLog;
};

} // namespace ipg

#endif // IPG_SERVER_GRAMMARSERVER_H
