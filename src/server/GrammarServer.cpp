//===- server/GrammarServer.cpp - Concurrent grammar server ---------------===//

#include "server/GrammarServer.h"

#include "lr/GraphSnapshot.h"
#include "support/FlatSection.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace ipg;

namespace {

/// Process-wide server observables (catalog in docs/OBSERVABILITY.md).
struct ServerMetrics {
  MetricsRegistry &R = MetricsRegistry::process();
  MetricCounter &Sessions = R.counter("ipg.server.sessions");
  MetricCounter &Forks = R.counter("ipg.server.forks");
  MetricCounter &ForksAdopted = R.counter("ipg.server.forks_adopted");
  MetricGauge &LiveEpochs = R.gauge("ipg.server.live_epochs");
  LatencyHistogram &ForkLatency = R.histogram("ipg.server.fork");

  static ServerMetrics &get() {
    static ServerMetrics M;
    return M;
  }
};

/// Identity id maps for the non-adopting loadV2 fallback: an exact clone
/// shares every id with its source, so no remapping is ever needed.
std::vector<SymbolId> identitySymbolMap(const Grammar &G) {
  std::vector<SymbolId> Map(G.symbols().size());
  for (SymbolId Sym = 0; Sym < Map.size(); ++Sym)
    Map[Sym] = Sym;
  return Map;
}

std::vector<RuleId> identityRuleMap(const Grammar &G) {
  std::vector<RuleId> Map(G.numInternedRules());
  for (RuleId Id = 0; Id < Map.size(); ++Id)
    Map[Id] = Id;
  return Map;
}

} // namespace

GrammarServer::GrammarServer(const Grammar &Initial) {
  auto First = std::shared_ptr<GraphEpoch>(new GraphEpoch(NextGeneration++));
  Grammar::cloneExact(Initial, First->G);
  // The epoch's graph was constructed against the then-empty grammar;
  // rebuild its start set now that the rules exist.
  GraphSnapshot::reset(First->Graph);
  First->Graph.beginConcurrent();
  History.push_back(First);
  Published.publish(std::move(First));
  ServerMetrics::get().LiveEpochs.set(1);
}

ParseSession GrammarServer::openSession() const {
  ServerMetrics::get().Sessions.bump();
  return ParseSession(epoch());
}

std::shared_ptr<GraphEpoch> GrammarServer::forkOf(GraphEpoch &Cur) {
  IPG_TRACE_SPAN(Sp, "server.fork");
  IPG_TRACE_SPAN_ARG(Sp, Cur.generation());
  ScopedLatency Lat(ServerMetrics::get().ForkLatency);
  ServerMetrics::get().Forks.bump();
  auto Next = std::shared_ptr<GraphEpoch>(new GraphEpoch(NextGeneration++));
  Grammar::cloneExact(Cur.grammar(), Next->G);

  // Serialize the predecessor's graph under an expansion freeze. saveV2
  // only reads, and queries against Complete sets keep running — a parse
  // thread stalls during the fork only if it needs a set *expanded*.
  FlatWriter Section;
  {
    ItemSetGraph::FreezeGuard Freeze(Cur.graph());
    GraphSnapshot::saveV2(Cur.graph(), Section);
  }

  // Materialize the serialization as an anonymous private "mapping" and
  // adopt it zero-copy: the successor's sets borrow spans of this buffer
  // until a MODIFY or EXPAND of a given set copies it out (the same
  // copy-on-write seam warm starts use). Fall back to the endian-safe
  // decode where adoption is unavailable, and to a cold one-node graph if
  // both fail — correctness never depends on the fast path.
  Next->Adopted = false;
  bool Loaded = false;
  Expected<MappedFile> Buffer =
      MappedFile::copyOf(Section.buffer().data(), Section.size());
  if (Buffer) {
    if (GraphSnapshot::hostCanAdoptV2()) {
      auto Backing = std::make_shared<const MappedFile>(std::move(*Buffer));
      Expected<size_t> N = GraphSnapshot::adoptV2(
          Backing->data(), Backing->size(), Next->Graph, Backing);
      Next->Adopted = Loaded = bool(N);
    } else {
      Expected<size_t> N = GraphSnapshot::loadV2(
          FlatView(Buffer->data(), Buffer->size()), Next->Graph,
          identitySymbolMap(Next->G), identityRuleMap(Next->G));
      Loaded = bool(N);
    }
  }
  if (!Loaded)
    GraphSnapshot::reset(Next->Graph);
  if (Next->Adopted)
    ServerMetrics::get().ForksAdopted.bump();
  return Next;
}

void GrammarServer::recordForkDamage(const GraphEpoch &Cur, GraphEpoch &Next) {
  // Only predecessor-era ids matter: sets the fork created are invisible
  // to any GSS built against an earlier epoch. Everything the MODIFY
  // marking left non-Complete is affected — Dirty is the §6.2 signal,
  // null (tombstoned) is fatal for reuse, and inherited still-Dirty sets
  // from older forks make the union a conservative superset, which is
  // always sound (it only widens what a migration refuses to reuse).
  // Initial sets are *not* affected: their behavior was never queried by
  // any checkpointed layer, and their eventual expansion reads whichever
  // grammar is current — exactly what a migrated parse wants.
  ForkDamage Entry;
  Entry.Generation = Next.generation();
  const uint32_t IdBound = static_cast<uint32_t>(Cur.graph().numSetIds());
  for (uint32_t Id = 0; Id < IdBound; ++Id) {
    const ItemSet *S = Next.graph().setById(Id);
    if (S == nullptr || S->state() == ItemSetState::Dirty)
      Entry.Affected.push_back(Id);
  }
  ForkLog.push_back(std::move(Entry));
  if (ForkLog.size() > ForkLogCap)
    ForkLog.erase(ForkLog.begin(),
                  ForkLog.begin() +
                      static_cast<std::ptrdiff_t>(ForkLog.size() - ForkLogCap));
}

bool GrammarServer::affectedSince(uint64_t SinceGen,
                                  std::vector<uint32_t> &Out) const {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  const uint64_t CurGen = NextGeneration - 1;
  if (SinceGen > CurGen)
    return false;
  if (SinceGen == CurGen)
    return true; // Already current: empty damage.
  // The log is append-ordered by generation; every fork in
  // (SinceGen, CurGen] must still be present or the gap is unknowable.
  size_t Found = 0;
  for (const ForkDamage &E : ForkLog)
    if (E.Generation > SinceGen) {
      Out.insert(Out.end(), E.Affected.begin(), E.Affected.end());
      ++Found;
    }
  if (Found != CurGen - SinceGen)
    return false;
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return true;
}

void GrammarServer::publish(std::shared_ptr<GraphEpoch> Next) {
  Next->Graph.beginConcurrent();
  History.push_back(Next);
  Published.publish(std::move(Next));
  // Prune reclaimed epochs so History stays proportional to *live* epochs,
  // not to the server's total edit count.
  std::erase_if(History,
                [](const std::weak_ptr<GraphEpoch> &E) { return E.expired(); });
  // Everything left is live (pruned moments ago); reclamation-lag gauge
  // and trace track of the epoch population over time.
  ServerMetrics::get().LiveEpochs.set(int64_t(History.size()));
  IPG_TRACE_COUNTER("server.live_epochs", History.size());
}

bool GrammarServer::addRule(SymbolId Lhs, std::vector<SymbolId> Rhs) {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  std::shared_ptr<GraphEpoch> Cur = Published.acquire();
  // No-op pre-check against the current grammar: an already-active rule
  // must not cost a fork (ADD-RULE's "no change" contract, §6.1).
  RuleId Existing = Cur->grammar().findRule(Lhs, Rhs);
  if (Existing != InvalidRule && Cur->grammar().isActive(Existing))
    return false;
  std::shared_ptr<GraphEpoch> Next = forkOf(*Cur);
  bool Changed = Next->Graph.addRule(Lhs, std::move(Rhs));
  assert(Changed && "pre-checked edit did not change the fork");
  recordForkDamage(*Cur, *Next);
  LastForkAdopted = Next->Adopted;
  publish(std::move(Next));
  return Changed;
}

bool GrammarServer::removeRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs) {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  std::shared_ptr<GraphEpoch> Cur = Published.acquire();
  RuleId Existing = Cur->grammar().findRule(Lhs, Rhs);
  if (Existing == InvalidRule || !Cur->grammar().isActive(Existing))
    return false;
  std::shared_ptr<GraphEpoch> Next = forkOf(*Cur);
  bool Changed = Next->Graph.removeRule(Lhs, Rhs);
  assert(Changed && "pre-checked edit did not change the fork");
  recordForkDamage(*Cur, *Next);
  LastForkAdopted = Next->Adopted;
  publish(std::move(Next));
  return Changed;
}

bool GrammarServer::addRule(std::string_view Lhs,
                            std::initializer_list<std::string_view> Rhs) {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  std::shared_ptr<GraphEpoch> Cur = Published.acquire();
  // Resolve names against the current epoch without interning (ids are
  // stable across epochs, so a hit means the same ids in the fork). Any
  // unknown name means the rule cannot be active yet.
  const SymbolTable &Syms = Cur->grammar().symbols();
  SymbolId LhsId = Syms.lookup(Lhs);
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  bool AllKnown = LhsId != InvalidSymbol;
  for (std::string_view Name : Rhs) {
    SymbolId Id = AllKnown ? Syms.lookup(Name) : InvalidSymbol;
    AllKnown = AllKnown && Id != InvalidSymbol;
    RhsIds.push_back(Id);
  }
  if (AllKnown) {
    RuleId Existing = Cur->grammar().findRule(LhsId, RhsIds);
    if (Existing != InvalidRule && Cur->grammar().isActive(Existing))
      return false;
  }
  // New symbols are interned into the *fork's* grammar; the published
  // epoch is never touched. Interning grows the id space monotonically,
  // preserving every existing id.
  std::shared_ptr<GraphEpoch> Next = forkOf(*Cur);
  SymbolTable &NextSyms = Next->G.symbols();
  LhsId = NextSyms.intern(Lhs);
  RhsIds.clear();
  for (std::string_view Name : Rhs)
    RhsIds.push_back(NextSyms.intern(Name));
  bool Changed = Next->Graph.addRule(LhsId, std::move(RhsIds));
  assert(Changed && "pre-checked edit did not change the fork");
  recordForkDamage(*Cur, *Next);
  LastForkAdopted = Next->Adopted;
  publish(std::move(Next));
  return Changed;
}

bool GrammarServer::removeRule(std::string_view Lhs,
                               std::initializer_list<std::string_view> Rhs) {
  // Deletion never interns: resolve eagerly and bail on unknown names.
  std::shared_ptr<GraphEpoch> Cur = Published.acquire();
  const SymbolTable &Syms = Cur->grammar().symbols();
  SymbolId LhsId = Syms.lookup(Lhs);
  if (LhsId == InvalidSymbol)
    return false;
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  for (std::string_view Name : Rhs) {
    SymbolId Id = Syms.lookup(Name);
    if (Id == InvalidSymbol)
      return false;
    RhsIds.push_back(Id);
  }
  return removeRule(LhsId, RhsIds);
}

size_t GrammarServer::liveEpochs() const {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  size_t Live = 0;
  for (const std::weak_ptr<GraphEpoch> &E : History)
    Live += !E.expired();
  return Live;
}

bool GrammarServer::lastForkAdopted() const {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  return LastForkAdopted;
}

JsonValue GrammarServer::metricsJson() const {
  // Concurrency discipline: this reads (a) the pinned current epoch's
  // atomic/sharded counters, (b) WriterMutex-guarded server state, and
  // (c) the process metrics registry. It never walks Pool/Adopted of a
  // graph that sessions may be growing — set counts are exclusive-mode
  // observables (Ipg::metricsJson() has them; a server graph does not).
  std::shared_ptr<GraphEpoch> Cur = Published.acquire();
  JsonValue Doc = JsonValue::object();
  Doc.set("generation", Cur->generation());
  Doc.set("epoch_parses", Cur->parses());
  Doc.set("epoch_adopted", Cur->adopted());
  {
    std::lock_guard<std::mutex> Writer(WriterMutex);
    uint64_t Live = 0, LiveParses = 0;
    uint64_t Oldest = Cur->generation();
    for (const std::weak_ptr<GraphEpoch> &W : History)
      if (std::shared_ptr<GraphEpoch> E = W.lock()) {
        ++Live;
        LiveParses += E->parses();
        Oldest = std::min(Oldest, E->generation());
      }
    Doc.set("live_epochs", Live);
    Doc.set("oldest_live_generation", Oldest);
    // How far reclamation trails publication: 0 when every displaced
    // epoch has drained, N when a session still pins generation Cur-N.
    Doc.set("reclamation_lag", Cur->generation() - Oldest);
    Doc.set("live_epoch_parses", LiveParses);
    Doc.set("last_fork_adopted", LastForkAdopted);
  }
  ItemSetGraphStats S = Cur->graph().stats();
  JsonValue &GraphDoc = Doc.set("graph", JsonValue::object());
  GraphDoc.set("expansions", S.Expansions);
  GraphDoc.set("re_expansions", S.ReExpansions);
  GraphDoc.set("closure_items", S.ClosureItems);
  GraphDoc.set("dirty_marks", S.DirtyMarks);
  GraphDoc.set("collected", S.Collected);
  GraphDoc.set("goto_calls", S.GotoCalls);
  Doc.set("process", MetricsRegistry::process().toJson());
  return Doc;
}
