//===- server/DocumentSession.h - Epoch-pinned parse documents --*- C++ -*-===//
///
/// \file
/// The marriage of the two incrementality axes: a ParseDocument
/// (incremental/ParseDocument.h — token-side bounded re-parse) pinned to
/// one GraphEpoch of a GrammarServer (grammar-side MODIFY forks). The
/// session parses and edits exactly like a plain ParseDocument; when the
/// server publishes new epochs, migrate() moves the document — parse
/// state and all — onto the current epoch by *bounded* re-parse instead
/// of starting over:
///
///   1. The server's fork log (GrammarServer::affectedSince) names every
///      item-set id whose ACTION/GOTO behavior any intervening MODIFY
///      invalidated — the §6.2 dirty marking, accumulated across the
///      generation gap.
///   2. The document's per-layer GSS checkpoints are scanned for those
///      ids. Layers strictly before the first affected one were computed
///      entirely from unaffected sets, so they are valid verbatim under
///      the new epoch (ids are preserved by cloneExact + the v2
///      adopt/load fork path).
///   3. The GSS is re-pointed into the new epoch's graph by stable id
///      (GssEngine::rebindGraph) and the parse is invalidated only from
///      the first affected layer (ParseDocument::invalidateFrom); the
///      next reparse() resumes there instead of at token zero. When no
///      checkpoint touches an affected set the whole parse — verdict,
///      forest and all — survives the migration untouched.
///
/// Anything the protocol cannot prove falls back to a from-scratch parse
/// over the new epoch (unknowable gap because the fork log rolled over, a
/// tombstoned set under a live GSS node): Full is always sound, the
/// bounded path is an optimization gated on the damage evidence —
/// the same philosophy as ParseDocument's graft.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_SERVER_DOCUMENTSESSION_H
#define IPG_SERVER_DOCUMENTSESSION_H

#include "incremental/ParseDocument.h"
#include "server/GrammarServer.h"

#include <memory>

namespace ipg {

/// One editable document parsed against one pinned epoch. Single-threaded
/// like ParseSession; many sessions on many threads share the epochs'
/// graphs. The pin keeps the epoch (graph, grammar, mapped backing) alive
/// for as long as the document references it.
class DocumentSession {
public:
  explicit DocumentSession(GrammarServer &Server);

  DocumentSession(const DocumentSession &) = delete;
  DocumentSession &operator=(const DocumentSession &) = delete;
  DocumentSession(DocumentSession &&) = default;
  DocumentSession &operator=(DocumentSession &&) = default;

  /// The document. Edits and reparse()s run against the pinned epoch
  /// until the next migrate().
  ParseDocument &document() { return *Doc; }
  const ParseDocument &document() const { return *Doc; }

  /// The epoch the document currently parses against.
  GraphEpoch &epoch() const { return *Epoch; }
  uint64_t generation() const { return Epoch->generation(); }

  /// True when the server has published past the pinned epoch — the
  /// document still works, against an old grammar, until migrate().
  bool stale() const { return Server->generation() != generation(); }

  /// How the last migrate() moved the document forward.
  enum class Migration {
    Current, ///< Already on the newest epoch; nothing to do.
    Reused,  ///< No checkpoint touched an affected set: the whole parse
             ///< survived, only the graph pointers moved.
    Bounded, ///< Parse invalidated from the first affected layer; the
             ///< next reparse() resumes there (work bounded by the
             ///< MODIFY's damage, not the document).
    Full,    ///< Fallback: tokens kept, parse restarts from scratch.
  };

  /// Re-pins the document to the server's current epoch, carrying the
  /// parse across by the bounded protocol of the file comment. Safe to
  /// call at any time (suspended, finished, mid-edit-batch); pending
  /// token damage merges with the migration's automaton damage.
  Migration migrate();

private:
  Migration fullReparse(std::shared_ptr<GraphEpoch> Next);

  GrammarServer *Server;
  std::shared_ptr<GraphEpoch> Epoch;
  /// unique_ptr because ParseDocument is pinned (the GSS engine holds
  /// interior pointers) while the session itself stays movable.
  std::unique_ptr<ParseDocument> Doc;
};

} // namespace ipg

#endif // IPG_SERVER_DOCUMENTSESSION_H
