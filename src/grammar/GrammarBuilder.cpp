//===- grammar/GrammarBuilder.cpp - Convenience grammar builder -----------===//

#include "grammar/GrammarBuilder.h"

using namespace ipg;

RuleId GrammarBuilder::rule(std::string_view Lhs,
                            std::initializer_list<std::string_view> Rhs) {
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  for (std::string_view Name : Rhs)
    RhsIds.push_back(symbol(Name));
  return G.addRule(symbol(Lhs), std::move(RhsIds)).first;
}

RuleId GrammarBuilder::rule(std::string_view Lhs,
                            const std::vector<std::string> &Rhs) {
  std::vector<SymbolId> RhsIds;
  RhsIds.reserve(Rhs.size());
  for (const std::string &Name : Rhs)
    RhsIds.push_back(symbol(Name));
  return G.addRule(symbol(Lhs), std::move(RhsIds)).first;
}

RuleId GrammarBuilder::rule(SymbolId Lhs, std::vector<SymbolId> Rhs) {
  return G.addRule(Lhs, std::move(Rhs)).first;
}

SymbolId GrammarBuilder::derived(std::string_view Name) {
  SymbolId Id = G.symbols().intern(Name);
  G.symbols().markNonterminal(Id);
  return Id;
}

SymbolId GrammarBuilder::star(SymbolId Element) {
  SymbolId List = derived(G.symbols().name(Element) + "*");
  G.addRule(List, {});
  G.addRule(List, {List, Element});
  return List;
}

SymbolId GrammarBuilder::plus(SymbolId Element) {
  SymbolId List = derived(G.symbols().name(Element) + "+");
  G.addRule(List, {Element});
  G.addRule(List, {List, Element});
  return List;
}

SymbolId GrammarBuilder::opt(SymbolId Element) {
  SymbolId Opt = derived(G.symbols().name(Element) + "?");
  G.addRule(Opt, {});
  G.addRule(Opt, {Element});
  return Opt;
}

SymbolId GrammarBuilder::sepPlus(SymbolId Element, SymbolId Separator) {
  SymbolId List = derived("{" + G.symbols().name(Element) + " " +
                          G.symbols().name(Separator) + "}+");
  G.addRule(List, {Element});
  G.addRule(List, {List, Separator, Element});
  return List;
}

SymbolId GrammarBuilder::sepStar(SymbolId Element, SymbolId Separator) {
  SymbolId List = derived("{" + G.symbols().name(Element) + " " +
                          G.symbols().name(Separator) + "}*");
  G.addRule(List, {});
  G.addRule(List, {sepPlus(Element, Separator)});
  return List;
}
