//===- grammar/GrammarIO.h - Grammar snapshot section & fingerprint -*- C++ -*-===//
///
/// \file
/// Binary persistence of a Grammar for the snapshot subsystem: the GRAM
/// section serializes the symbol table and every interned rule (active or
/// not — item-set kernels may still reference retired rules), and the
/// content fingerprint condenses the *active* rule set into one 64-bit
/// value. The fingerprint hashes symbol names, not ids, and folds the
/// per-rule hashes commutatively, so two grammars fingerprint equal
/// exactly when they define the same language fragment — regardless of
/// interning order or deleted-rule history. The snapshot header stores it
/// so tooling can key shared snapshot caches on grammar content without
/// decoding bodies; the loader itself establishes content equality from
/// the layout fingerprint (fast path) or the computed rule delta
/// (core/Snapshot.h).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_GRAMMARIO_H
#define IPG_GRAMMAR_GRAMMARIO_H

#include "grammar/Grammar.h"
#include "support/ByteStream.h"
#include "support/Expected.h"
#include "support/FlatSection.h"

#include <vector>

namespace ipg {

/// Content fingerprint over the interned symbols and active rules of \p G,
/// by name: stable across processes, interning order and rule-id history.
uint64_t grammarFingerprint(const Grammar &G);

/// Layout fingerprint: an order-*sensitive* hash over the symbol table
/// (names and flags, in id order) and every interned rule (ids, active
/// flag, in id order). Two grammars with equal layout fingerprints assign
/// identical ids to identical content, so a snapshot saved from one can be
/// adopted by the other with identity id maps — the warm-start fast path
/// that skips the whole by-name remapping.
uint64_t grammarLayoutFingerprint(const Grammar &G);

/// The decoded GRAM section: a grammar snapshot detached from any Grammar
/// instance. Symbol and rule ids are snapshot-local dense indices. Names
/// are zero-copy views into the reader's backing buffer — keep it alive.
struct GrammarSnapshot {
  struct Symbol {
    std::string_view Name;
    bool IsNonterminal = false;
  };
  struct SnapRule {
    uint32_t Lhs = 0;                ///< Snapshot-local symbol index.
    std::vector<uint32_t> Rhs;       ///< Snapshot-local symbol indices.
    bool IsActive = false;
  };

  std::vector<Symbol> Symbols;
  std::vector<SnapRule> Rules;
};

/// Serializes \p G (symbol table + all interned rules with their active
/// flags) into \p Writer. Emits ids in interning order, so equal
/// construction histories serialize byte-identically.
void writeGrammarSnapshot(const Grammar &G, ByteWriter &Writer);

/// Decodes a GRAM section body. Validates every symbol reference; a
/// malformed section yields an Error, never a partial snapshot.
Expected<GrammarSnapshot> readGrammarSnapshot(ByteReader &Reader);

/// Serializes \p G as an `ipg-snap-v2` GRAM section body into \p Section
/// (which must be empty; offsets are relative to its start, the caller
/// places it 8-aligned in the file). Same logical content as
/// writeGrammarSnapshot, laid out as offset-indexed fixed-width pools
/// (symbol records, rule records, RHS ids, name bytes) so the reader
/// never scans variable-length records to find a field.
void writeGrammarSnapshotV2(const Grammar &G, FlatWriter &Section);

/// Decodes a v2 GRAM section body (endian-safe field reads — the GRAM
/// section is only decoded on the remapping slow path, never adopted).
/// Names are zero-copy views into \p Section's backing buffer — keep it
/// alive. Same validation contract as readGrammarSnapshot.
Expected<GrammarSnapshot> readGrammarSnapshotV2(FlatView Section);

} // namespace ipg

#endif // IPG_GRAMMAR_GRAMMARIO_H
