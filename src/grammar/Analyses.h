//===- grammar/Analyses.h - Classic grammar analyses ------------*- C++ -*-===//
///
/// \file
/// The standard fixpoint analyses every table generator in this repository
/// builds on: NULLABLE, FIRST, FOLLOW, reachability, productivity, left
/// recursion and derivation cycles. All results are value types computed
/// against one grammar version; callers recompute after mutation (cheap —
/// the fixpoints are linear-ish in grammar size for practical grammars).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_ANALYSES_H
#define IPG_GRAMMAR_ANALYSES_H

#include "grammar/Grammar.h"
#include "support/Bitset.h"

#include <vector>

namespace ipg {

/// NULLABLE, FIRST and FOLLOW in one bundle (FOLLOW is only filled when
/// requested since only SLR(1) and LL(1) need it).
class GrammarAnalysis {
public:
  /// Computes NULLABLE and FIRST for the current rule set of \p G.
  explicit GrammarAnalysis(const Grammar &G);

  /// True if \p Sym derives ε (terminals are never nullable).
  bool isNullable(SymbolId Sym) const { return Nullable[Sym]; }

  /// True if every symbol of \p Seq starting at \p From is nullable.
  bool isNullableSequence(const std::vector<SymbolId> &Seq,
                          size_t From = 0) const;

  /// FIRST(\p Sym): terminals that can begin a derivation of Sym. For a
  /// terminal this is {Sym} itself.
  const Bitset &first(SymbolId Sym) const { return First[Sym]; }

  /// FIRST of the suffix Seq[From..]; if the whole suffix is nullable the
  /// result does not include any "follow" information (callers add it).
  Bitset firstOfSequence(const std::vector<SymbolId> &Seq,
                         size_t From = 0) const;

  /// FOLLOW(\p Nonterminal); computed on first use. FOLLOW(START) = {$}.
  const Bitset &follow(SymbolId Nonterminal);

  /// Version of the grammar these results were computed for.
  uint64_t grammarVersion() const { return Version; }

  size_t numSymbols() const { return Nullable.size(); }

private:
  void computeFollow();

  const Grammar &G;
  uint64_t Version;
  std::vector<bool> Nullable;
  std::vector<Bitset> First;
  std::vector<Bitset> Follow;
  bool FollowComputed = false;
};

/// Symbols reachable from START through active rules.
Bitset reachableSymbols(const Grammar &G);

/// Nonterminals that derive at least one terminal string.
Bitset productiveNonterminals(const Grammar &G);

/// True if some nonterminal A satisfies A ⇒+ Aα (direct or indirect left
/// recursion, taking nullable prefixes into account).
bool isLeftRecursive(const Grammar &G);

/// True if some nonterminal A satisfies A ⇒+ A (a derivation cycle), which
/// makes the language's parse forests infinite.
bool hasDerivationCycle(const Grammar &G);

/// One grammar-hygiene finding.
struct GrammarLint {
  enum KindType {
    UnreachableNonterminal, ///< Never derivable from START.
    UnproductiveNonterminal,///< Derives no terminal string.
    EmptyStart,             ///< START has no rules: the language is empty.
    DerivationCycle,        ///< Some A ⇒+ A: infinite parse forests.
  } Kind;
  SymbolId Symbol; ///< InvalidSymbol for grammar-wide findings.
  std::string Message;
};

/// Diagnoses the current rule set: unreachable/unproductive nonterminals,
/// an empty start and derivation cycles — the mistakes interactive
/// grammar editing produces constantly, surfaced without failing.
std::vector<GrammarLint> lintGrammar(const Grammar &G);

} // namespace ipg

#endif // IPG_GRAMMAR_ANALYSES_H
