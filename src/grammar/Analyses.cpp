//===- grammar/Analyses.cpp - Classic grammar analyses --------------------===//

#include "grammar/Analyses.h"

#include <cassert>

using namespace ipg;

GrammarAnalysis::GrammarAnalysis(const Grammar &G)
    : G(G), Version(G.version()) {
  size_t NumSymbols = G.symbols().size();
  Nullable.assign(NumSymbols, false);
  First.assign(NumSymbols, Bitset(NumSymbols));

  // Terminals: FIRST(t) = {t}.
  for (SymbolId Sym = 0; Sym < NumSymbols; ++Sym)
    if (G.symbols().isTerminal(Sym))
      First[Sym].set(Sym);

  // NULLABLE fixpoint.
  std::vector<RuleId> Rules = G.activeRules();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId Id : Rules) {
      const Rule &R = G.rule(Id);
      if (Nullable[R.Lhs])
        continue;
      bool AllNullable = true;
      for (SymbolId Sym : R.Rhs)
        if (!Nullable[Sym]) {
          AllNullable = false;
          break;
        }
      if (AllNullable) {
        Nullable[R.Lhs] = true;
        Changed = true;
      }
    }
  }

  // FIRST fixpoint.
  Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId Id : Rules) {
      const Rule &R = G.rule(Id);
      for (SymbolId Sym : R.Rhs) {
        if (First[R.Lhs].unionWith(First[Sym]))
          Changed = true;
        if (!Nullable[Sym])
          break;
      }
    }
  }
}

bool GrammarAnalysis::isNullableSequence(const std::vector<SymbolId> &Seq,
                                         size_t From) const {
  for (size_t I = From; I < Seq.size(); ++I)
    if (!Nullable[Seq[I]])
      return false;
  return true;
}

Bitset GrammarAnalysis::firstOfSequence(const std::vector<SymbolId> &Seq,
                                        size_t From) const {
  Bitset Result(numSymbols());
  for (size_t I = From; I < Seq.size(); ++I) {
    Result.unionWith(First[Seq[I]]);
    if (!Nullable[Seq[I]])
      break;
  }
  return Result;
}

void GrammarAnalysis::computeFollow() {
  size_t NumSymbols = numSymbols();
  Follow.assign(NumSymbols, Bitset(NumSymbols));
  Follow[G.startSymbol()].set(G.endMarker());

  std::vector<RuleId> Rules = G.activeRules();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId Id : Rules) {
      const Rule &R = G.rule(Id);
      for (size_t I = 0; I < R.Rhs.size(); ++I) {
        SymbolId Sym = R.Rhs[I];
        if (G.symbols().isTerminal(Sym))
          continue;
        Bitset Tail = firstOfSequence(R.Rhs, I + 1);
        if (Follow[Sym].unionWith(Tail))
          Changed = true;
        if (isNullableSequence(R.Rhs, I + 1))
          if (Follow[Sym].unionWith(Follow[R.Lhs]))
            Changed = true;
      }
    }
  }
  FollowComputed = true;
}

const Bitset &GrammarAnalysis::follow(SymbolId Nonterminal) {
  assert(G.symbols().isNonterminal(Nonterminal) &&
         "FOLLOW is defined for nonterminals only");
  if (!FollowComputed)
    computeFollow();
  return Follow[Nonterminal];
}

Bitset ipg::reachableSymbols(const Grammar &G) {
  Bitset Reached(G.symbols().size());
  std::vector<SymbolId> Worklist{G.startSymbol()};
  Reached.set(G.startSymbol());
  while (!Worklist.empty()) {
    SymbolId Sym = Worklist.back();
    Worklist.pop_back();
    for (RuleId Id : G.rulesFor(Sym))
      for (SymbolId RhsSym : G.rule(Id).Rhs)
        if (Reached.set(RhsSym))
          Worklist.push_back(RhsSym);
  }
  return Reached;
}

Bitset ipg::productiveNonterminals(const Grammar &G) {
  Bitset Productive(G.symbols().size());
  std::vector<RuleId> Rules = G.activeRules();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId Id : Rules) {
      const Rule &R = G.rule(Id);
      if (Productive.test(R.Lhs))
        continue;
      bool AllOk = true;
      for (SymbolId Sym : R.Rhs)
        if (G.symbols().isNonterminal(Sym) && !Productive.test(Sym)) {
          AllOk = false;
          break;
        }
      if (AllOk) {
        Productive.set(R.Lhs);
        Changed = true;
      }
    }
  }
  return Productive;
}

/// Computes the reflexive-transitive closure of a relation on nonterminals
/// given by \p Step and reports whether any nonterminal relates to itself
/// non-trivially (i.e. is on a cycle).
template <typename StepFnT>
static bool relationHasCycle(const Grammar &G, StepFnT &&Step) {
  size_t NumSymbols = G.symbols().size();
  // Edges[A] = set of B with A -> B.
  std::vector<Bitset> Edges(NumSymbols, Bitset(NumSymbols));
  for (RuleId Id : G.activeRules())
    Step(G.rule(Id), Edges);

  // Floyd–Warshall-ish closure over bitsets; grammars are small enough.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (SymbolId A = 0; A < NumSymbols; ++A) {
      Bitset Next = Edges[A];
      Edges[A].forEach([&](size_t B) { Next.unionWith(Edges[B]); });
      if (!(Next == Edges[A])) {
        Edges[A] = std::move(Next);
        Changed = true;
      }
    }
  }
  for (SymbolId A = 0; A < NumSymbols; ++A)
    if (Edges[A].test(A))
      return true;
  return false;
}

bool ipg::isLeftRecursive(const Grammar &G) {
  GrammarAnalysis Analysis(G);
  return relationHasCycle(G, [&](const Rule &R, std::vector<Bitset> &Edges) {
    // A -> B when B can be the leftmost symbol of a derivation from A.
    for (SymbolId Sym : R.Rhs) {
      if (G.symbols().isNonterminal(Sym))
        Edges[R.Lhs].set(Sym);
      if (!Analysis.isNullable(Sym))
        break;
    }
  });
}

std::vector<GrammarLint> ipg::lintGrammar(const Grammar &G) {
  std::vector<GrammarLint> Findings;
  if (G.rulesFor(G.startSymbol()).empty()) {
    Findings.push_back(GrammarLint{GrammarLint::EmptyStart, InvalidSymbol,
                                   "START has no rules: the language is "
                                   "empty"});
    return Findings;
  }
  Bitset Reachable = reachableSymbols(G);
  Bitset Productive = productiveNonterminals(G);
  for (SymbolId Sym = 0; Sym < G.symbols().size(); ++Sym) {
    if (!G.symbols().isNonterminal(Sym) || Sym == G.startSymbol())
      continue;
    // Only flag nonterminals that take part in the grammar at all.
    bool HasRules = !G.rulesFor(Sym).empty();
    if (!Reachable.test(Sym) && HasRules)
      Findings.push_back(
          GrammarLint{GrammarLint::UnreachableNonterminal, Sym,
                      "nonterminal '" + G.symbols().name(Sym) +
                          "' is unreachable from START"});
    if (Reachable.test(Sym) && !Productive.test(Sym))
      Findings.push_back(
          GrammarLint{GrammarLint::UnproductiveNonterminal, Sym,
                      "nonterminal '" + G.symbols().name(Sym) +
                          "' derives no terminal string"});
  }
  if (hasDerivationCycle(G))
    Findings.push_back(GrammarLint{GrammarLint::DerivationCycle,
                                   InvalidSymbol,
                                   "the grammar has a derivation cycle "
                                   "(some A derives itself): ambiguous "
                                   "sentences have infinitely many parses"});
  return Findings;
}

bool ipg::hasDerivationCycle(const Grammar &G) {
  GrammarAnalysis Analysis(G);
  return relationHasCycle(G, [&](const Rule &R, std::vector<Bitset> &Edges) {
    // A -> B when A ⇒ αBβ with α and β both nullable (so A ⇒+ B).
    for (size_t I = 0; I < R.Rhs.size(); ++I) {
      SymbolId Sym = R.Rhs[I];
      if (!G.symbols().isNonterminal(Sym))
        continue;
      bool PrefixNullable = true;
      for (size_t J = 0; J < I && PrefixNullable; ++J)
        PrefixNullable = Analysis.isNullable(R.Rhs[J]);
      bool SuffixNullable = Analysis.isNullableSequence(R.Rhs, I + 1);
      if (PrefixNullable && SuffixNullable)
        Edges[R.Lhs].set(Sym);
    }
  });
}
