//===- grammar/Grammar.cpp - Mutable context-free grammar -----------------===//

#include "grammar/Grammar.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace ipg;

uint64_t Grammar::hashRule(SymbolId Lhs,
                           const std::vector<SymbolId> &Rhs) const {
  uint64_t Hash = hashCombine(0x9e3779b97f4a7c15ULL, Lhs);
  for (SymbolId Sym : Rhs)
    Hash = hashCombine(Hash, Sym);
  return Hash;
}

RuleId Grammar::findRule(SymbolId Lhs,
                         const std::vector<SymbolId> &Rhs) const {
  auto It = RuleIndex.find(hashRule(Lhs, Rhs));
  if (It == RuleIndex.end())
    return InvalidRule;
  for (RuleId Id : It->second)
    if (Rules[Id].Lhs == Lhs && Rules[Id].Rhs == Rhs)
      return Id;
  return InvalidRule;
}

RuleId Grammar::internRule(SymbolId Lhs, std::vector<SymbolId> Rhs) {
  assert(Lhs < Symbols.size() && "unknown LHS symbol");
  for ([[maybe_unused]] SymbolId Sym : Rhs)
    assert(Sym != Symbols.startSymbol() &&
           "START may not be used in a right-hand side");
  Symbols.markNonterminal(Lhs);

  RuleId Id = findRule(Lhs, Rhs);
  if (Id == InvalidRule) {
    Id = static_cast<RuleId>(Rules.size());
    RuleIndex[hashRule(Lhs, Rhs)].push_back(Id);
    Rules.push_back(Rule{Lhs, std::move(Rhs)});
    Active.push_back(0);
  }
  return Id;
}

std::pair<RuleId, bool> Grammar::addRule(SymbolId Lhs,
                                         std::vector<SymbolId> Rhs) {
  RuleId Id = internRule(Lhs, std::move(Rhs));
  return {Id, activateRule(Id)};
}

bool Grammar::activateRule(RuleId Id) {
  assert(Id < Rules.size() && "unknown rule id");
  if (Active[Id])
    return false;
  Active[Id] = 1;
  ++NumActive;
  ++Version;
  SymbolId Lhs = Rules[Id].Lhs;
  if (ByLhs.size() <= Lhs)
    ByLhs.resize(Symbols.size());
  ByLhs[Lhs].push_back(Id);
  return true;
}

std::pair<RuleId, bool> Grammar::removeRule(SymbolId Lhs,
                                            const std::vector<SymbolId> &Rhs) {
  RuleId Id = findRule(Lhs, Rhs);
  if (Id == InvalidRule)
    return {InvalidRule, false};
  return {Id, removeRule(Id)};
}

bool Grammar::removeRule(RuleId Id) {
  if (!isActive(Id))
    return false;
  Active[Id] = 0;
  --NumActive;
  ++Version;
  std::vector<RuleId> &Bucket = ByLhs[Rules[Id].Lhs];
  Bucket.erase(std::find(Bucket.begin(), Bucket.end(), Id));
  return true;
}

const std::vector<RuleId> &Grammar::rulesFor(SymbolId Lhs) const {
  static const std::vector<RuleId> Empty;
  if (Lhs >= ByLhs.size())
    return Empty;
  return ByLhs[Lhs];
}

std::vector<RuleId> Grammar::activeRules() const {
  std::vector<RuleId> Ids;
  Ids.reserve(NumActive);
  for (RuleId Id = 0; Id < Rules.size(); ++Id)
    if (Active[Id])
      Ids.push_back(Id);
  return Ids;
}

void Grammar::cloneActiveRules(const Grammar &From, Grammar &To) {
  // Intern all symbols first so nonterminal marks precede rule addition.
  for (SymbolId Sym = 0; Sym < From.Symbols.size(); ++Sym) {
    SymbolId Clone = To.symbols().intern(From.Symbols.name(Sym));
    if (From.Symbols.isNonterminal(Sym))
      To.symbols().markNonterminal(Clone);
  }
  for (RuleId Id : From.activeRules()) {
    const Rule &R = From.rule(Id);
    std::vector<SymbolId> Rhs;
    Rhs.reserve(R.Rhs.size());
    for (SymbolId Sym : R.Rhs)
      Rhs.push_back(To.symbols().intern(From.Symbols.name(Sym)));
    To.addRule(To.symbols().intern(From.Symbols.name(R.Lhs)), std::move(Rhs));
  }
}

void Grammar::cloneExact(const Grammar &From, Grammar &To) {
  assert(To.Rules.empty() && To.Version == 0 &&
         "cloneExact requires a freshly constructed target");
  // Member-wise value copy: every member is copyable even though Grammar
  // itself is not (SymbolTable's name index owns its key strings, so the
  // copied map does not alias \p From). Ids, the interned-but-inactive
  // rule tail, and the version counter all carry over verbatim.
  To.Symbols = From.Symbols;
  To.Rules = From.Rules;
  To.Active = From.Active;
  To.NumActive = From.NumActive;
  To.Version = From.Version;
  To.RuleIndex = From.RuleIndex;
  To.ByLhs = From.ByLhs;
}

std::string Grammar::ruleToString(RuleId Id) const {
  const Rule &R = rule(Id);
  std::string Text = Symbols.name(R.Lhs) + " ::=";
  if (R.Rhs.empty())
    return Text + " \xCE\xB5"; // U+03B5 GREEK SMALL LETTER EPSILON
  for (SymbolId Sym : R.Rhs) {
    Text += ' ';
    Text += Symbols.name(Sym);
  }
  return Text;
}
