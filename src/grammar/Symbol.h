//===- grammar/Symbol.h - Interned grammar symbols --------------*- C++ -*-===//
///
/// \file
/// Symbols (terminals and nonterminals) are interned into dense 32-bit ids
/// by a SymbolTable. A symbol is a nonterminal once it has appeared as the
/// left-hand side of a rule (or was explicitly marked); every other symbol
/// is a terminal. The table pre-interns the two distinguished symbols of the
/// paper: the start symbol `START` and the end marker `$`.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_SYMBOL_H
#define IPG_GRAMMAR_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ipg {

/// Dense id of an interned symbol.
using SymbolId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId InvalidSymbol = ~SymbolId(0);

/// Transparent string hashing, so the name index can be probed with a
/// string_view without materializing a std::string per lookup — the
/// allocation showed up hot in snapshot warm starts, which intern every
/// symbol of the persisted table.
struct SymbolNameHash {
  using is_transparent = void;
  size_t operator()(std::string_view Name) const {
    return std::hash<std::string_view>{}(Name);
  }
};

/// Interns symbol names to dense ids and tracks terminal-ness.
///
/// Ids are stable for the lifetime of the table, so item sets, tables and
/// forests may store raw SymbolIds.
class SymbolTable {
public:
  SymbolTable() {
    StartId = intern("START");
    markNonterminal(StartId);
    EndId = intern("$");
  }

  /// Returns the id for \p Name, interning it if new.
  SymbolId intern(std::string_view Name) {
    auto It = IdByName.find(Name);
    if (It != IdByName.end())
      return It->second;
    SymbolId Id = static_cast<SymbolId>(Names.size());
    Names.emplace_back(Name);
    Nonterminal.push_back(false);
    IdByName.emplace(Names.back(), Id);
    ++Revision;
    return Id;
  }

  /// Returns the id for \p Name or InvalidSymbol if it was never interned.
  SymbolId lookup(std::string_view Name) const {
    auto It = IdByName.find(Name);
    return It == IdByName.end() ? InvalidSymbol : It->second;
  }

  const std::string &name(SymbolId Id) const {
    assert(Id < Names.size() && "unknown symbol id");
    return Names[Id];
  }

  /// Declares \p Id a nonterminal (idempotent; never reverts).
  void markNonterminal(SymbolId Id) {
    assert(Id < Names.size() && "unknown symbol id");
    if (!Nonterminal[Id]) {
      Nonterminal[Id] = true;
      ++Revision;
    }
  }

  bool isNonterminal(SymbolId Id) const {
    assert(Id < Names.size() && "unknown symbol id");
    return Nonterminal[Id];
  }

  bool isTerminal(SymbolId Id) const { return !isNonterminal(Id); }

  /// Number of interned symbols; ids are 0..size()-1.
  size_t size() const { return Names.size(); }

  /// The distinguished start symbol `START` (a nonterminal).
  SymbolId startSymbol() const { return StartId; }

  /// The distinguished end marker `$` (a terminal, never part of a rule).
  SymbolId endMarker() const { return EndId; }

  /// Monotonic count of content changes (new interns, nonterminal flips).
  /// Feeds Grammar::fingerprintStamp so the snapshot fingerprints can be
  /// memoized across repeated saves of an unchanged grammar.
  uint64_t revision() const { return Revision; }

private:
  std::vector<std::string> Names;
  std::vector<bool> Nonterminal;
  uint64_t Revision = 0;
  std::unordered_map<std::string, SymbolId, SymbolNameHash, std::equal_to<>>
      IdByName;
  SymbolId StartId = InvalidSymbol;
  SymbolId EndId = InvalidSymbol;
};

} // namespace ipg

#endif // IPG_GRAMMAR_SYMBOL_H
