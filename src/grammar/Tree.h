//===- grammar/Tree.h - Concrete parse trees --------------------*- C++ -*-===//
///
/// \file
/// The parse-tree representation shared by every parser in the repository
/// (deterministic LR, GLR via forest extraction, Earley, LL(1), recursive
/// descent). Nodes are arena-owned so trees can share structure freely and
/// are destroyed in O(1) with their arena.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_TREE_H
#define IPG_GRAMMAR_TREE_H

#include "grammar/Grammar.h"

#include <deque>
#include <string>
#include <vector>

namespace ipg {

/// A parse-tree node: either a token leaf (Rule == InvalidRule, TokenIndex
/// identifies the input token) or a rule application with one child per
/// right-hand-side symbol.
struct TreeNode {
  SymbolId Sym = InvalidSymbol;
  RuleId Rule = InvalidRule;
  uint32_t TokenIndex = 0;
  std::vector<TreeNode *> Children;

  bool isLeaf() const { return Rule == InvalidRule; }
};

/// Bump-owner for TreeNodes; nodes live as long as the arena.
class TreeArena {
public:
  TreeNode *makeLeaf(SymbolId Sym, uint32_t TokenIndex) {
    Nodes.push_back(TreeNode{Sym, InvalidRule, TokenIndex, {}});
    return &Nodes.back();
  }

  TreeNode *makeNode(SymbolId Sym, RuleId Rule,
                     std::vector<TreeNode *> Children) {
    Nodes.push_back(TreeNode{Sym, Rule, 0, std::move(Children)});
    return &Nodes.back();
  }

  size_t size() const { return Nodes.size(); }

private:
  std::deque<TreeNode> Nodes;
};

/// Renders a tree as a bracketed term, e.g. `B(B(true) or B(false))`.
inline std::string treeToString(const TreeNode *Node, const Grammar &G) {
  if (Node == nullptr)
    return "<null>";
  const std::string &Name = G.symbols().name(Node->Sym);
  if (Node->isLeaf())
    return Name;
  std::string Text = Name + "(";
  for (size_t I = 0; I < Node->Children.size(); ++I) {
    if (I != 0)
      Text += ' ';
    Text += treeToString(Node->Children[I], G);
  }
  return Text + ")";
}

/// Counts nodes reachable from \p Node (shared nodes counted once per path;
/// trees from deterministic parsers have no sharing).
inline size_t treeSize(const TreeNode *Node) {
  if (Node == nullptr)
    return 0;
  size_t Total = 1;
  for (const TreeNode *Child : Node->Children)
    Total += treeSize(Child);
  return Total;
}

/// Collects the token indices of the leaves in left-to-right order.
inline void treeYield(const TreeNode *Node, std::vector<uint32_t> &Out) {
  if (Node == nullptr)
    return;
  if (Node->isLeaf()) {
    Out.push_back(Node->TokenIndex);
    return;
  }
  for (const TreeNode *Child : Node->Children)
    treeYield(Child, Out);
}

} // namespace ipg

#endif // IPG_GRAMMAR_TREE_H
