//===- grammar/BnfWriter.cpp - Grammar to BNF text ------------------------===//

#include "grammar/BnfWriter.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <vector>

using namespace ipg;

namespace {

bool isBareIdent(const std::string &Name) {
  if (Name.empty())
    return false;
  for (char C : Name)
    if (!(std::isalnum((unsigned char)C) || C == '_' || C == '-' ||
          C == '\'' || C == '*' || C == '+' || C == '?'))
      return false;
  return true;
}

std::string spell(const Grammar &G, SymbolId Sym) {
  const std::string &Name = G.symbols().name(Sym);
  if (isBareIdent(Name))
    return Name;
  std::string Quoted = "\"";
  for (char C : Name) {
    if (C == '"' || C == '\\')
      Quoted += '\\';
    Quoted += C;
  }
  return Quoted + "\"";
}

} // namespace

std::string ipg::writeBnf(const Grammar &G) {
  // Group active rules by LHS in first-appearance order.
  std::vector<SymbolId> Order;
  std::map<SymbolId, std::vector<RuleId>> ByLhs;
  for (RuleId Id : G.activeRules()) {
    SymbolId Lhs = G.rule(Id).Lhs;
    auto [It, Inserted] = ByLhs.try_emplace(Lhs);
    if (Inserted || It->second.empty())
      if (std::find(Order.begin(), Order.end(), Lhs) == Order.end())
        Order.push_back(Lhs);
    It->second.push_back(Id);
  }

  std::string Text;
  // Idiomatic %start when the start production is a single unit rule;
  // explicit START rules otherwise.
  SymbolId Start = G.startSymbol();
  auto StartIt = ByLhs.find(Start);
  bool StartAsDirective = StartIt != ByLhs.end() &&
                          StartIt->second.size() == 1 &&
                          G.rule(StartIt->second[0]).Rhs.size() == 1;
  if (StartAsDirective) {
    Text += "%start " + spell(G, G.rule(StartIt->second[0]).Rhs[0]) + "\n";
  }

  for (SymbolId Lhs : Order) {
    if (StartAsDirective && Lhs == Start)
      continue;
    Text += spell(G, Lhs) + " ::= ";
    const std::vector<RuleId> &Rules = ByLhs[Lhs];
    for (size_t I = 0; I < Rules.size(); ++I) {
      if (I != 0)
        Text += " | ";
      const Rule &R = G.rule(Rules[I]);
      if (R.Rhs.empty()) {
        Text += "%empty";
        continue;
      }
      for (size_t J = 0; J < R.Rhs.size(); ++J) {
        if (J != 0)
          Text += ' ';
        Text += spell(G, R.Rhs[J]);
      }
    }
    Text += " ;\n";
  }
  return Text;
}
