//===- grammar/GrammarIO.cpp - Grammar snapshot section & fingerprint -----===//

#include "grammar/GrammarIO.h"

#include "support/Hashing.h"

#include <cassert>

using namespace ipg;

namespace {

uint64_t computeGrammarFingerprint(const Grammar &G) {
  // One hash per active rule over names (with terminal-ness, which CLOSURE
  // depends on), folded with + so the result is independent of rule order
  // and id assignment. The rule count seeds the fold: it disambiguates the
  // empty grammar and guards the commutative sum against cancellation.
  const SymbolTable &Symbols = G.symbols();
  auto HashSymbol = [&](uint64_t Hash, SymbolId Sym) {
    Hash = hashCombine(Hash, hashString(Symbols.name(Sym)));
    return hashCombine(Hash, Symbols.isNonterminal(Sym) ? 1 : 0);
  };
  uint64_t Fingerprint = hashCombine(0x697067736e617031ULL /* "ipgsnap1" */,
                                     G.size());
  for (RuleId Id : G.activeRules()) {
    const Rule &R = G.rule(Id);
    uint64_t RuleHash = HashSymbol(0x8ad2d2956275bd21ULL, R.Lhs);
    RuleHash = hashCombine(RuleHash, R.Rhs.size());
    for (SymbolId Sym : R.Rhs)
      RuleHash = HashSymbol(RuleHash, Sym);
    Fingerprint += RuleHash;
  }
  return Fingerprint;
}

uint64_t computeGrammarLayoutFingerprint(const Grammar &G) {
  const SymbolTable &Symbols = G.symbols();
  uint64_t Hash = 0x697067736c617931ULL; // "ipgslay1"
  Hash = hashCombine(Hash, Symbols.size());
  for (SymbolId Sym = 0; Sym < Symbols.size(); ++Sym) {
    Hash = hashCombine(Hash, hashString(Symbols.name(Sym)));
    Hash = hashCombine(Hash, Symbols.isNonterminal(Sym) ? 1 : 0);
  }
  Hash = hashCombine(Hash, G.numInternedRules());
  for (RuleId Id = 0; Id < G.numInternedRules(); ++Id) {
    const Rule &R = G.rule(Id);
    Hash = hashCombine(Hash, R.Lhs);
    Hash = hashCombine(Hash, G.isActive(Id) ? 1 : 0);
    Hash = hashCombine(Hash, R.Rhs.size());
    for (SymbolId Sym : R.Rhs)
      Hash = hashCombine(Hash, Sym);
  }
  return Hash;
}

} // namespace

// Both fingerprints walk every symbol name and rule body, which is too
// slow to redo on every save of a large, unchanged grammar — the Grammar
// memoizes them keyed on its mutation stamp.
uint64_t ipg::grammarFingerprint(const Grammar &G) {
  return G.memoizedFingerprint(0, computeGrammarFingerprint);
}

uint64_t ipg::grammarLayoutFingerprint(const Grammar &G) {
  return G.memoizedFingerprint(1, computeGrammarLayoutFingerprint);
}

void ipg::writeGrammarSnapshot(const Grammar &G, ByteWriter &Writer) {
  const SymbolTable &Symbols = G.symbols();
  Writer.writeVarint(Symbols.size());
  for (SymbolId Sym = 0; Sym < Symbols.size(); ++Sym) {
    Writer.writeString(Symbols.name(Sym));
    Writer.writeU8(Symbols.isNonterminal(Sym) ? 1 : 0);
  }
  Writer.writeVarint(G.numInternedRules());
  for (RuleId Id = 0; Id < G.numInternedRules(); ++Id) {
    const Rule &R = G.rule(Id);
    Writer.writeVarint(R.Lhs);
    Writer.writeU8(G.isActive(Id) ? 1 : 0);
    Writer.writeVarint(R.Rhs.size());
    for (SymbolId Sym : R.Rhs)
      Writer.writeVarint(Sym);
  }
}

//===----------------------------------------------------------------------===//
// ipg-snap-v2 GRAM section layout (little-endian, offsets relative to the
// 8-aligned section start):
//
//   GramV2Header (48 bytes):
//     u32 NumSymbols, u32 NumRules, u32 RhsPoolLen, u32 NameBytes
//     u64 OffSymbols, u64 OffRules, u64 OffRhsPool, u64 OffNames
//   SymRec[NumSymbols]   12 bytes: u32 NameOff, u32 NameLen, u32 Flags
//                        (bit 0 = nonterminal)
//   RuleRec[NumRules]    16 bytes: u32 Lhs, u32 Flags (bit 0 = active),
//                        u32 RhsOff, u32 RhsLen (indices into the RHS pool)
//   u32[RhsPoolLen]      concatenated rule right-hand sides
//   u8[NameBytes]        concatenated symbol names (offset-indexed, no
//                        terminators)
//===----------------------------------------------------------------------===//

void ipg::writeGrammarSnapshotV2(const Grammar &G, FlatWriter &Section) {
  // The section may be appended directly into a larger file writer; all
  // recorded offsets are relative to this base, which must be 8-aligned
  // so the in-section alignTo calls keep their meaning.
  const size_t Base = Section.size();
  assert(Base % 8 == 0 && "v2 GRAM section must start 8-aligned");
  const SymbolTable &Symbols = G.symbols();

  uint64_t RhsPoolLen = 0, NameBytes = 0;
  for (SymbolId Sym = 0; Sym < Symbols.size(); ++Sym)
    NameBytes += Symbols.name(Sym).size();
  for (RuleId Id = 0; Id < G.numInternedRules(); ++Id)
    RhsPoolLen += G.rule(Id).Rhs.size();

  Section.reserveCapacity(Base + 48 + size_t{12} * Symbols.size() +
                          size_t{16} * G.numInternedRules() + 4 * RhsPoolLen +
                          NameBytes + 8);
  Section.writeU32(Symbols.size());
  Section.writeU32(G.numInternedRules());
  Section.writeU32(static_cast<uint32_t>(RhsPoolLen));
  Section.writeU32(static_cast<uint32_t>(NameBytes));
  size_t OffTable = Section.reserve(4 * 8);
  uint64_t Offsets[4] = {0};

  // Record fields are staged into one flat u32 scratch per table and
  // appended with the bulk writer — per-field writeU32 calls were the
  // hottest part of the save path on large grammars.
  std::vector<uint32_t> Scratch;

  Offsets[0] = Section.size() - Base;
  Scratch.reserve(size_t{3} * Symbols.size());
  uint32_t NameOff = 0;
  for (SymbolId Sym = 0; Sym < Symbols.size(); ++Sym) {
    uint32_t Len = static_cast<uint32_t>(Symbols.name(Sym).size());
    Scratch.push_back(NameOff);
    Scratch.push_back(Len);
    Scratch.push_back(Symbols.isNonterminal(Sym) ? 1 : 0);
    NameOff += Len;
  }
  Section.writeU32Array(Scratch.data(), Scratch.size());

  Offsets[1] = Section.size() - Base;
  Scratch.clear();
  Scratch.reserve(size_t{4} * G.numInternedRules());
  uint32_t RhsOff = 0;
  for (RuleId Id = 0; Id < G.numInternedRules(); ++Id) {
    const Rule &R = G.rule(Id);
    Scratch.push_back(R.Lhs);
    Scratch.push_back(G.isActive(Id) ? 1 : 0);
    Scratch.push_back(RhsOff);
    Scratch.push_back(static_cast<uint32_t>(R.Rhs.size()));
    RhsOff += static_cast<uint32_t>(R.Rhs.size());
  }
  Section.writeU32Array(Scratch.data(), Scratch.size());

  Offsets[2] = Section.size() - Base;
  for (RuleId Id = 0; Id < G.numInternedRules(); ++Id) {
    const Rule &R = G.rule(Id);
    Section.writeU32Array(R.Rhs.data(), R.Rhs.size());
  }

  Offsets[3] = Section.size() - Base;
  for (SymbolId Sym = 0; Sym < Symbols.size(); ++Sym) {
    const std::string &Name = Symbols.name(Sym);
    Section.writeBytes(Name.data(), Name.size());
  }
  Section.alignTo(8);

  for (int I = 0; I < 4; ++I)
    Section.patchU64(OffTable + 8 * static_cast<size_t>(I), Offsets[I]);
}

Expected<GrammarSnapshot> ipg::readGrammarSnapshotV2(FlatView Section) {
  uint32_t Counts[4]; // NumSymbols, NumRules, RhsPoolLen, NameBytes.
  for (int I = 0; I < 4; ++I) {
    Expected<uint32_t> V = Section.u32At(4 * static_cast<size_t>(I));
    if (!V)
      return V.error();
    Counts[I] = *V;
  }
  uint64_t Offsets[4]; // OffSymbols, OffRules, OffRhsPool, OffNames.
  for (int I = 0; I < 4; ++I) {
    Expected<uint64_t> V = Section.u64At(16 + 8 * static_cast<size_t>(I));
    if (!V)
      return V.error();
    Offsets[I] = *V;
  }
  const uint64_t Sizes[4] = {uint64_t{12} * Counts[0], uint64_t{16} * Counts[1],
                             uint64_t{4} * Counts[2], Counts[3]};
  for (int I = 0; I < 4; ++I)
    if (Offsets[I] > Section.size() || Sizes[I] > Section.size() - Offsets[I])
      return Error("flat section: array out of bounds");

  GrammarSnapshot Snapshot;
  Snapshot.Symbols.reserve(Counts[0]);
  for (uint32_t I = 0; I < Counts[0]; ++I) {
    size_t RecOff = static_cast<size_t>(Offsets[0]) + 12 * size_t(I);
    Expected<uint32_t> NameOff = Section.u32At(RecOff);
    Expected<uint32_t> NameLen = Section.u32At(RecOff + 4);
    Expected<uint32_t> Flags = Section.u32At(RecOff + 8);
    if (!NameOff || !NameLen || !Flags)
      return Error("truncated symbol record");
    if (*Flags > 1)
      return Error("invalid symbol flags");
    if (uint64_t{*NameOff} + *NameLen > Counts[3])
      return Error("symbol name out of range");
    const char *Name = reinterpret_cast<const char *>(Section.data()) +
                       Offsets[3] + *NameOff;
    Snapshot.Symbols.push_back({std::string_view(Name, *NameLen), *Flags == 1});
  }

  Snapshot.Rules.reserve(Counts[1]);
  for (uint32_t I = 0; I < Counts[1]; ++I) {
    size_t RecOff = static_cast<size_t>(Offsets[1]) + 16 * size_t(I);
    GrammarSnapshot::SnapRule SnapRule;
    Expected<uint32_t> Lhs = Section.u32At(RecOff);
    Expected<uint32_t> Flags = Section.u32At(RecOff + 4);
    Expected<uint32_t> RhsOff = Section.u32At(RecOff + 8);
    Expected<uint32_t> RhsLen = Section.u32At(RecOff + 12);
    if (!Lhs || !Flags || !RhsOff || !RhsLen)
      return Error("truncated rule record");
    if (*Lhs >= Snapshot.Symbols.size())
      return Error("rule LHS references an unknown symbol");
    if (*Flags > 1)
      return Error("invalid rule flags");
    if (uint64_t{*RhsOff} + *RhsLen > Counts[2])
      return Error("rule RHS out of range");
    SnapRule.Lhs = *Lhs;
    SnapRule.IsActive = *Flags == 1;
    SnapRule.Rhs.reserve(*RhsLen);
    for (uint32_t J = 0; J < *RhsLen; ++J) {
      Expected<uint32_t> Sym = Section.u32At(static_cast<size_t>(Offsets[2]) +
                                             4 * (size_t(*RhsOff) + J));
      if (!Sym)
        return Error("truncated rule RHS");
      if (*Sym >= Snapshot.Symbols.size())
        return Error("rule RHS references an unknown symbol");
      SnapRule.Rhs.push_back(*Sym);
    }
    Snapshot.Rules.push_back(std::move(SnapRule));
  }
  return Snapshot;
}

Expected<GrammarSnapshot> ipg::readGrammarSnapshot(ByteReader &Reader) {
  GrammarSnapshot Snapshot;

  Expected<uint64_t> NumSymbols = Reader.readVarint();
  if (!NumSymbols)
    return NumSymbols.error();
  // Every symbol costs at least two bytes; anything claiming more symbols
  // than bytes is corrupt, and rejecting it here bounds the allocation.
  if (*NumSymbols > Reader.remaining())
    return Error("symbol count exceeds section size");
  Snapshot.Symbols.reserve(static_cast<size_t>(*NumSymbols));
  for (uint64_t I = 0; I < *NumSymbols; ++I) {
    Expected<std::string_view> Name = Reader.readStringView();
    if (!Name)
      return Name.error();
    Expected<uint8_t> Flags = Reader.readU8();
    if (!Flags)
      return Flags.error();
    if (*Flags > 1)
      return Error("invalid symbol flags");
    Snapshot.Symbols.push_back({*Name, *Flags == 1});
  }

  Expected<uint64_t> NumRules = Reader.readVarint();
  if (!NumRules)
    return NumRules.error();
  if (*NumRules > Reader.remaining())
    return Error("rule count exceeds section size");
  Snapshot.Rules.reserve(static_cast<size_t>(*NumRules));
  for (uint64_t I = 0; I < *NumRules; ++I) {
    GrammarSnapshot::SnapRule SnapRule;
    Expected<uint64_t> Lhs = Reader.readVarint();
    if (!Lhs)
      return Lhs.error();
    if (*Lhs >= Snapshot.Symbols.size())
      return Error("rule LHS references an unknown symbol");
    SnapRule.Lhs = static_cast<uint32_t>(*Lhs);
    Expected<uint8_t> ActiveFlag = Reader.readU8();
    if (!ActiveFlag)
      return ActiveFlag.error();
    if (*ActiveFlag > 1)
      return Error("invalid rule flags");
    SnapRule.IsActive = *ActiveFlag == 1;
    Expected<uint64_t> RhsSize = Reader.readVarint();
    if (!RhsSize)
      return RhsSize.error();
    if (*RhsSize > Reader.remaining())
      return Error("rule RHS length exceeds section size");
    SnapRule.Rhs.reserve(static_cast<size_t>(*RhsSize));
    for (uint64_t J = 0; J < *RhsSize; ++J) {
      Expected<uint64_t> Sym = Reader.readVarint();
      if (!Sym)
        return Sym.error();
      if (*Sym >= Snapshot.Symbols.size())
        return Error("rule RHS references an unknown symbol");
      SnapRule.Rhs.push_back(static_cast<uint32_t>(*Sym));
    }
    Snapshot.Rules.push_back(std::move(SnapRule));
  }
  if (!Reader.atEnd())
    return Error("trailing bytes after grammar snapshot");
  return Snapshot;
}
