//===- grammar/GrammarIO.cpp - Grammar snapshot section & fingerprint -----===//

#include "grammar/GrammarIO.h"

#include "support/Hashing.h"

using namespace ipg;

uint64_t ipg::grammarFingerprint(const Grammar &G) {
  // One hash per active rule over names (with terminal-ness, which CLOSURE
  // depends on), folded with + so the result is independent of rule order
  // and id assignment. The rule count seeds the fold: it disambiguates the
  // empty grammar and guards the commutative sum against cancellation.
  const SymbolTable &Symbols = G.symbols();
  auto HashSymbol = [&](uint64_t Hash, SymbolId Sym) {
    Hash = hashCombine(Hash, hashString(Symbols.name(Sym)));
    return hashCombine(Hash, Symbols.isNonterminal(Sym) ? 1 : 0);
  };
  uint64_t Fingerprint = hashCombine(0x697067736e617031ULL /* "ipgsnap1" */,
                                     G.size());
  for (RuleId Id : G.activeRules()) {
    const Rule &R = G.rule(Id);
    uint64_t RuleHash = HashSymbol(0x8ad2d2956275bd21ULL, R.Lhs);
    RuleHash = hashCombine(RuleHash, R.Rhs.size());
    for (SymbolId Sym : R.Rhs)
      RuleHash = HashSymbol(RuleHash, Sym);
    Fingerprint += RuleHash;
  }
  return Fingerprint;
}

uint64_t ipg::grammarLayoutFingerprint(const Grammar &G) {
  const SymbolTable &Symbols = G.symbols();
  uint64_t Hash = 0x697067736c617931ULL; // "ipgslay1"
  Hash = hashCombine(Hash, Symbols.size());
  for (SymbolId Sym = 0; Sym < Symbols.size(); ++Sym) {
    Hash = hashCombine(Hash, hashString(Symbols.name(Sym)));
    Hash = hashCombine(Hash, Symbols.isNonterminal(Sym) ? 1 : 0);
  }
  Hash = hashCombine(Hash, G.numInternedRules());
  for (RuleId Id = 0; Id < G.numInternedRules(); ++Id) {
    const Rule &R = G.rule(Id);
    Hash = hashCombine(Hash, R.Lhs);
    Hash = hashCombine(Hash, G.isActive(Id) ? 1 : 0);
    Hash = hashCombine(Hash, R.Rhs.size());
    for (SymbolId Sym : R.Rhs)
      Hash = hashCombine(Hash, Sym);
  }
  return Hash;
}

void ipg::writeGrammarSnapshot(const Grammar &G, ByteWriter &Writer) {
  const SymbolTable &Symbols = G.symbols();
  Writer.writeVarint(Symbols.size());
  for (SymbolId Sym = 0; Sym < Symbols.size(); ++Sym) {
    Writer.writeString(Symbols.name(Sym));
    Writer.writeU8(Symbols.isNonterminal(Sym) ? 1 : 0);
  }
  Writer.writeVarint(G.numInternedRules());
  for (RuleId Id = 0; Id < G.numInternedRules(); ++Id) {
    const Rule &R = G.rule(Id);
    Writer.writeVarint(R.Lhs);
    Writer.writeU8(G.isActive(Id) ? 1 : 0);
    Writer.writeVarint(R.Rhs.size());
    for (SymbolId Sym : R.Rhs)
      Writer.writeVarint(Sym);
  }
}

Expected<GrammarSnapshot> ipg::readGrammarSnapshot(ByteReader &Reader) {
  GrammarSnapshot Snapshot;

  Expected<uint64_t> NumSymbols = Reader.readVarint();
  if (!NumSymbols)
    return NumSymbols.error();
  // Every symbol costs at least two bytes; anything claiming more symbols
  // than bytes is corrupt, and rejecting it here bounds the allocation.
  if (*NumSymbols > Reader.remaining())
    return Error("symbol count exceeds section size");
  Snapshot.Symbols.reserve(static_cast<size_t>(*NumSymbols));
  for (uint64_t I = 0; I < *NumSymbols; ++I) {
    Expected<std::string_view> Name = Reader.readStringView();
    if (!Name)
      return Name.error();
    Expected<uint8_t> Flags = Reader.readU8();
    if (!Flags)
      return Flags.error();
    if (*Flags > 1)
      return Error("invalid symbol flags");
    Snapshot.Symbols.push_back({*Name, *Flags == 1});
  }

  Expected<uint64_t> NumRules = Reader.readVarint();
  if (!NumRules)
    return NumRules.error();
  if (*NumRules > Reader.remaining())
    return Error("rule count exceeds section size");
  Snapshot.Rules.reserve(static_cast<size_t>(*NumRules));
  for (uint64_t I = 0; I < *NumRules; ++I) {
    GrammarSnapshot::SnapRule SnapRule;
    Expected<uint64_t> Lhs = Reader.readVarint();
    if (!Lhs)
      return Lhs.error();
    if (*Lhs >= Snapshot.Symbols.size())
      return Error("rule LHS references an unknown symbol");
    SnapRule.Lhs = static_cast<uint32_t>(*Lhs);
    Expected<uint8_t> ActiveFlag = Reader.readU8();
    if (!ActiveFlag)
      return ActiveFlag.error();
    if (*ActiveFlag > 1)
      return Error("invalid rule flags");
    SnapRule.IsActive = *ActiveFlag == 1;
    Expected<uint64_t> RhsSize = Reader.readVarint();
    if (!RhsSize)
      return RhsSize.error();
    if (*RhsSize > Reader.remaining())
      return Error("rule RHS length exceeds section size");
    SnapRule.Rhs.reserve(static_cast<size_t>(*RhsSize));
    for (uint64_t J = 0; J < *RhsSize; ++J) {
      Expected<uint64_t> Sym = Reader.readVarint();
      if (!Sym)
        return Sym.error();
      if (*Sym >= Snapshot.Symbols.size())
        return Error("rule RHS references an unknown symbol");
      SnapRule.Rhs.push_back(static_cast<uint32_t>(*Sym));
    }
    Snapshot.Rules.push_back(std::move(SnapRule));
  }
  if (!Reader.atEnd())
    return Error("trailing bytes after grammar snapshot");
  return Snapshot;
}
