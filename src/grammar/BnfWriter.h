//===- grammar/BnfWriter.h - Grammar to BNF text ----------------*- C++ -*-===//
///
/// \file
/// Serializes a Grammar back into the BnfReader text format, so grammars
/// built programmatically (or edited incrementally) can be saved and
/// reloaded. writeBnf(readBnf(T)) round-trips structurally (tested by
/// canonical item-set-graph comparison).
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_BNFWRITER_H
#define IPG_GRAMMAR_BNFWRITER_H

#include "grammar/Grammar.h"

#include <string>

namespace ipg {

/// Renders the active rules of \p G as BnfReader-compatible text.
/// Nonterminal spellings that the reader could not re-intern verbatim
/// (spaces, quotes) are not produced by GrammarBuilder's helpers except
/// for separated lists; those render with their exact names and are
/// quoted-escaped as needed.
std::string writeBnf(const Grammar &G);

} // namespace ipg

#endif // IPG_GRAMMAR_BNFWRITER_H
