//===- grammar/Grammar.h - Mutable context-free grammar ---------*- C++ -*-===//
///
/// \file
/// The mutable context-free grammar of the paper: a *set* of rules A ::= α
/// over interned symbols, supporting the two update operations `ADD-RULE`
/// and `DELETE-RULE` (§6). Rules are interned structurally — deleting and
/// re-adding the same rule yields the same RuleId — so LR(0) kernels keep
/// their identity across modification cycles, which is what lets the
/// incremental generator re-link reusable item sets.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_GRAMMAR_H
#define IPG_GRAMMAR_GRAMMAR_H

#include "grammar/Symbol.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipg {

/// Dense id of an interned rule.
using RuleId = uint32_t;

/// Sentinel for "no rule".
inline constexpr RuleId InvalidRule = ~RuleId(0);

/// A syntax rule A ::= α; an empty Rhs is an ε-rule.
struct Rule {
  SymbolId Lhs;
  std::vector<SymbolId> Rhs;

  bool operator==(const Rule &Other) const {
    return Lhs == Other.Lhs && Rhs == Other.Rhs;
  }
};

/// A mutable set of rules plus its symbol table.
///
/// The paper's distinguished nonterminal START is the start symbol and may
/// not occur in any right-hand side (checked by addRule). The grammar keeps
/// a version counter so generated artifacts (tables, analyses) can detect
/// staleness.
class Grammar {
public:
  Grammar() = default;

  Grammar(const Grammar &) = delete;
  Grammar &operator=(const Grammar &) = delete;

  SymbolTable &symbols() { return Symbols; }
  const SymbolTable &symbols() const { return Symbols; }

  SymbolId startSymbol() const { return Symbols.startSymbol(); }
  SymbolId endMarker() const { return Symbols.endMarker(); }

  /// Adds rule \p Lhs ::= \p Rhs to the set. Returns the rule's id and
  /// whether the set changed (false when the rule was already active).
  /// \p Lhs is marked as a nonterminal. START must not occur in \p Rhs.
  std::pair<RuleId, bool> addRule(SymbolId Lhs, std::vector<SymbolId> Rhs);

  /// Removes rule \p Lhs ::= \p Rhs. Returns the rule's id and whether the
  /// set changed (false when no such rule was active).
  std::pair<RuleId, bool> removeRule(SymbolId Lhs,
                                     const std::vector<SymbolId> &Rhs);

  /// Removes an active rule by id; returns false if it was not active.
  bool removeRule(RuleId Id);

  /// Interns rule \p Lhs ::= \p Rhs without activating it: the rule gets a
  /// stable id (and \p Lhs is marked nonterminal) but is not part of the
  /// grammar and the version is not bumped. Snapshot loading needs this to
  /// re-establish ids for rules that item-set kernels still reference
  /// although a DELETE-RULE has already retired them.
  RuleId internRule(SymbolId Lhs, std::vector<SymbolId> Rhs);

  /// Activates an interned rule by id, skipping the structural hash lookup
  /// addRule pays. Returns whether the set changed (false when already
  /// active). The by-id counterpart of removeRule(RuleId).
  bool activateRule(RuleId Id);

  /// Finds the id of rule \p Lhs ::= \p Rhs whether or not it is active.
  RuleId findRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs) const;

  /// True if \p Id is currently part of the grammar.
  bool isActive(RuleId Id) const {
    return Id < Active.size() && Active[Id];
  }

  /// The (possibly inactive) rule for \p Id. Ids are stable forever.
  const Rule &rule(RuleId Id) const { return Rules[Id]; }

  /// Active rules with \p Lhs on the left-hand side, in insertion order.
  const std::vector<RuleId> &rulesFor(SymbolId Lhs) const;

  /// All active rule ids, in increasing id order.
  std::vector<RuleId> activeRules() const;

  /// Number of active rules.
  size_t size() const { return NumActive; }

  /// Total number of interned rules (active or not).
  size_t numInternedRules() const { return Rules.size(); }

  /// Bumped on every successful addRule/removeRule.
  uint64_t version() const { return Version; }

  /// Monotonic stamp covering everything the snapshot fingerprints hash:
  /// symbol interning and nonterminal flips, rule interning (which does
  /// not bump version()), and active-set changes (which do). Any content
  /// mutation strictly increases it.
  uint64_t fingerprintStamp() const {
    return Symbols.revision() + Version + Rules.size();
  }

  /// Memoizes \p Compute(*this) keyed on fingerprintStamp(), in one of two
  /// cache slots (0 = content fingerprint, 1 = layout fingerprint). The
  /// stamp is stored with release ordering after the value, so a
  /// concurrent reader that observes a matching stamp also observes the
  /// value; racing recomputes are harmless because the hash is a pure
  /// function of the grammar at that stamp. Saves on large grammars were
  /// re-hashing every symbol name and rule body twice per snapshot, which
  /// dominated the v2 save path once the graph section became a memcpy.
  uint64_t memoizedFingerprint(int Slot,
                               uint64_t (*Compute)(const Grammar &)) const {
    CachedHash &Cache = Slot == 0 ? ContentHashCache : LayoutHashCache;
    const uint64_t Stamp = fingerprintStamp();
    if (Cache.Stamp.load(std::memory_order_acquire) == Stamp)
      return Cache.Value.load(std::memory_order_relaxed);
    const uint64_t Value = Compute(*this);
    Cache.Value.store(Value, std::memory_order_relaxed);
    Cache.Stamp.store(Stamp, std::memory_order_release);
    return Value;
  }

  /// Renders a rule as "A ::= b C d" (ε-rules render as "A ::= ε").
  std::string ruleToString(RuleId Id) const;

  /// Copies every active rule of \p From into \p To (symbols re-interned
  /// by name). Used to build an identical grammar for a second, eagerly
  /// generated table when measuring lazy coverage.
  static void cloneActiveRules(const Grammar &From, Grammar &To);

  /// Makes \p To an exact replica of \p From: same SymbolIds, same RuleIds
  /// (including interned-but-inactive rules), same version. \p To must be
  /// freshly constructed. This is the grammar half of a copy-on-write epoch
  /// fork (server/GrammarServer.h): id preservation is what keeps tokenized
  /// input and snapshot-referenced kernels valid across epochs, which
  /// cloneActiveRules — re-interning by name in active-rule order — cannot
  /// guarantee.
  static void cloneExact(const Grammar &From, Grammar &To);

private:
  uint64_t hashRule(SymbolId Lhs, const std::vector<SymbolId> &Rhs) const;

  SymbolTable Symbols;
  std::vector<Rule> Rules;
  std::vector<uint8_t> Active;
  size_t NumActive = 0;
  uint64_t Version = 0;
  std::unordered_map<uint64_t, std::vector<RuleId>> RuleIndex;
  // Active rules per LHS symbol; grows with the symbol table.
  mutable std::vector<std::vector<RuleId>> ByLhs;
  // Fingerprint memoization (memoizedFingerprint). Not carried by
  // cloneExact: a fresh replica just recomputes on its first save.
  struct CachedHash {
    std::atomic<uint64_t> Stamp{~uint64_t{0}};
    std::atomic<uint64_t> Value{0};
  };
  mutable CachedHash ContentHashCache;
  mutable CachedHash LayoutHashCache;
};

} // namespace ipg

#endif // IPG_GRAMMAR_GRAMMAR_H
