//===- grammar/GrammarBuilder.h - Convenience grammar builder --*- C++ -*-===//
///
/// \file
/// A string-based facade over Grammar plus the EBNF desugarings needed to
/// express SDF-style iterations (`X*`, `X+`, `{X ","}+`) as plain BNF. The
/// generated helper nonterminals are interned by name, so repeated uses of
/// the same construct share one definition — mirroring how the paper's SDF
/// front end desugars its iteration operators into an LR(1) grammar.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_GRAMMARBUILDER_H
#define IPG_GRAMMAR_GRAMMARBUILDER_H

#include "grammar/Grammar.h"

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ipg {

/// Builds rules from symbol names; owns nothing.
class GrammarBuilder {
public:
  explicit GrammarBuilder(Grammar &G) : G(G) {}

  /// Interns \p Name (terminal unless/until it appears as an LHS).
  SymbolId symbol(std::string_view Name) { return G.symbols().intern(Name); }

  /// Adds \p Lhs ::= \p Rhs (all names interned); returns the rule id.
  RuleId rule(std::string_view Lhs, std::initializer_list<std::string_view> Rhs);
  RuleId rule(std::string_view Lhs, const std::vector<std::string> &Rhs);
  RuleId rule(SymbolId Lhs, std::vector<SymbolId> Rhs);

  /// Nonterminal deriving zero or more \p Element: `E*`.
  /// Rules: E* ::= ε | E* E.
  SymbolId star(SymbolId Element);

  /// Nonterminal deriving one or more \p Element: `E+`.
  /// Rules: E+ ::= E | E+ E.
  SymbolId plus(SymbolId Element);

  /// Nonterminal deriving zero or one \p Element: `E?`.
  SymbolId opt(SymbolId Element);

  /// Nonterminal deriving one or more \p Element separated by \p Separator:
  /// `{E S}+` with rules L ::= E | L S E.
  SymbolId sepPlus(SymbolId Element, SymbolId Separator);

  /// Like sepPlus but also derives the empty sequence: `{E S}*`.
  SymbolId sepStar(SymbolId Element, SymbolId Separator);

  Grammar &grammar() { return G; }

private:
  SymbolId derived(std::string_view Name);

  Grammar &G;
};

} // namespace ipg

#endif // IPG_GRAMMAR_GRAMMARBUILDER_H
