//===- grammar/BnfReader.h - Textual grammar format -------------*- C++ -*-===//
///
/// \file
/// Reads grammars from a small BNF text format so examples and tests can
/// load languages from files/strings:
///
/// \code
///   // Comments run to end of line.
///   %start Expr
///   Expr ::= Expr "+" Term | Term ;
///   Term ::= "a" | %empty ;
/// \endcode
///
/// Quoted tokens and bare identifiers both intern to symbols; a symbol is a
/// nonterminal exactly when it occurs as some left-hand side. `%start X`
/// adds START ::= X (required once). `%empty` denotes ε.
///
//===----------------------------------------------------------------------===//

#ifndef IPG_GRAMMAR_BNFREADER_H
#define IPG_GRAMMAR_BNFREADER_H

#include "grammar/Grammar.h"
#include "support/Expected.h"

#include <string_view>

namespace ipg {

/// Parses \p Text into \p G (which should be empty). On success returns the
/// number of rules added (excluding the START rule).
Expected<size_t> readBnf(Grammar &G, std::string_view Text);

} // namespace ipg

#endif // IPG_GRAMMAR_BNFREADER_H
