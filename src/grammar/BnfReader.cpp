//===- grammar/BnfReader.cpp - Textual grammar format ---------------------===//

#include "grammar/BnfReader.h"

#include <cctype>
#include <string>
#include <vector>

using namespace ipg;

namespace {

/// One lexical token of the BNF format.
struct BnfToken {
  enum KindType { Ident, Literal, DefineOp, Pipe, Semi, Directive, End };
  KindType Kind;
  std::string Text;
  unsigned Line;
};

/// Splits BNF text into tokens; reports bad characters.
class BnfLexer {
public:
  explicit BnfLexer(std::string_view Text) : Text(Text) {}

  Expected<BnfToken> next() {
    skipLayout();
    if (Pos >= Text.size())
      return BnfToken{BnfToken::End, "", Line};
    char C = Text[Pos];
    if (C == '|') {
      ++Pos;
      return BnfToken{BnfToken::Pipe, "|", Line};
    }
    if (C == ';') {
      ++Pos;
      return BnfToken{BnfToken::Semi, ";", Line};
    }
    if (C == ':' && Text.substr(Pos, 3) == "::=") {
      Pos += 3;
      return BnfToken{BnfToken::DefineOp, "::=", Line};
    }
    if (C == '"')
      return lexLiteral();
    if (C == '%')
      return lexWord(BnfToken::Directive);
    if (isIdentChar(C))
      return lexWord(BnfToken::Ident);
    return Error("unexpected character '" + std::string(1, C) + "'", Line);
  }

private:
  static bool isIdentChar(char C) {
    return std::isalnum((unsigned char)C) || C == '_' || C == '-' ||
           C == '\'' || C == '*' || C == '+' || C == '?';
  }

  void skipLayout() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace((unsigned char)C)) {
        ++Pos;
      } else if (C == '/' && Text.substr(Pos, 2) == "//") {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        return;
      }
    }
  }

  Expected<BnfToken> lexLiteral() {
    unsigned StartLine = Line;
    ++Pos; // opening quote
    std::string Value;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\n')
        return Error("unterminated string literal", StartLine);
      if (Text[Pos] == '\\' && Pos + 1 < Text.size())
        ++Pos;
      Value += Text[Pos++];
    }
    if (Pos >= Text.size())
      return Error("unterminated string literal", StartLine);
    ++Pos; // closing quote
    return BnfToken{BnfToken::Literal, Value, StartLine};
  }

  Expected<BnfToken> lexWord(BnfToken::KindType Kind) {
    size_t Start = Pos;
    if (Kind == BnfToken::Directive)
      ++Pos;
    while (Pos < Text.size() && isIdentChar(Text[Pos]))
      ++Pos;
    return BnfToken{Kind, std::string(Text.substr(Start, Pos - Start)), Line};
  }

  std::string_view Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

} // namespace

Expected<size_t> ipg::readBnf(Grammar &G, std::string_view Text) {
  BnfLexer Lexer(Text);
  size_t NumRules = 0;
  SymbolId StartTarget = InvalidSymbol;

  Expected<BnfToken> Tok = Lexer.next();
  while (true) {
    if (!Tok)
      return Tok.error();
    if (Tok->Kind == BnfToken::End)
      break;

    if (Tok->Kind == BnfToken::Directive) {
      if (Tok->Text != "%start")
        return Error("unknown directive '" + Tok->Text + "'", Tok->Line);
      Tok = Lexer.next();
      if (!Tok)
        return Tok.error();
      if (Tok->Kind != BnfToken::Ident)
        return Error("%start expects a nonterminal name", Tok->Line);
      if (StartTarget != InvalidSymbol)
        return Error("duplicate %start directive", Tok->Line);
      StartTarget = G.symbols().intern(Tok->Text);
      Tok = Lexer.next();
      continue;
    }

    if (Tok->Kind != BnfToken::Ident && Tok->Kind != BnfToken::Literal)
      return Error("expected a rule's left-hand side", Tok->Line);
    SymbolId Lhs = G.symbols().intern(Tok->Text);
    unsigned RuleLine = Tok->Line;

    Tok = Lexer.next();
    if (!Tok)
      return Tok.error();
    if (Tok->Kind != BnfToken::DefineOp)
      return Error("expected '::=' after left-hand side", RuleLine);

    // Alternatives until ';'.
    std::vector<SymbolId> Rhs;
    bool SawEmpty = false;
    auto FlushAlternative = [&](unsigned Line) -> Expected<size_t> {
      if (SawEmpty && !Rhs.empty())
        return Error("%empty may not be mixed with symbols", Line);
      G.addRule(Lhs, Rhs);
      ++NumRules;
      Rhs.clear();
      SawEmpty = false;
      return NumRules;
    };
    while (true) {
      Tok = Lexer.next();
      if (!Tok)
        return Tok.error();
      if (Tok->Kind == BnfToken::Ident || Tok->Kind == BnfToken::Literal) {
        Rhs.push_back(G.symbols().intern(Tok->Text));
        continue;
      }
      if (Tok->Kind == BnfToken::Directive) {
        if (Tok->Text != "%empty")
          return Error("unknown directive '" + Tok->Text + "'", Tok->Line);
        SawEmpty = true;
        continue;
      }
      if (Tok->Kind == BnfToken::Pipe) {
        if (Expected<size_t> R = FlushAlternative(Tok->Line); !R)
          return R.error();
        continue;
      }
      if (Tok->Kind == BnfToken::Semi) {
        if (Expected<size_t> R = FlushAlternative(Tok->Line); !R)
          return R.error();
        break;
      }
      return Error("expected symbol, '|' or ';' in rule body", Tok->Line);
    }
    Tok = Lexer.next();
  }

  // %start adds the START rule; alternatively the text may define START
  // rules explicitly (the BnfWriter emits that form for multi-rule or
  // non-unit start productions).
  if (StartTarget != InvalidSymbol)
    G.addRule(G.startSymbol(), {StartTarget});
  else if (G.rulesFor(G.startSymbol()).empty())
    return Error("grammar has neither %start nor explicit START rules");
  return NumRules;
}
