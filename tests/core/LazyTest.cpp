//===- tests/core/LazyTest.cpp - Lazy parser generation (§5) --------------===//
///
/// Goldens for Fig 5.1/5.2 and the lazy ≡ eager equivalence property.
///
//===----------------------------------------------------------------------===//

#include "common/GraphCanon.h"
#include "common/TestGrammars.h"
#include "core/Ipg.h"

#include <gtest/gtest.h>

using namespace ipg;
using namespace ipg::testing;

TEST(Lazy, Fig51aGenerateParserBuildsOnlyStartSet) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  // Fig 5.1(a): one initial set of items, nothing expanded.
  EXPECT_EQ(Gen.graph().numLive(), 1u);
  EXPECT_EQ(Gen.graph().numComplete(), 0u);
  EXPECT_EQ(Gen.graph().startSet()->state(), ItemSetState::Initial);
  EXPECT_EQ(Gen.stats().Expansions, 0u);
}

TEST(Lazy, Fig51bFirstActionExpandsStartSet) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  ItemSetGraph &Graph = Gen.graph();
  Graph.actionsView(Graph.startSet(), G.symbols().lookup("true"));
  // Fig 5.1(b): sets 0..3 now exist; only 0 is complete.
  EXPECT_EQ(Graph.numLive(), 4u);
  EXPECT_EQ(Graph.numComplete(), 1u);
  EXPECT_EQ(Graph.countByState(ItemSetState::Initial), 3u);
}

TEST(Lazy, Fig52ParsingTrueAndTrue) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  ASSERT_TRUE(Gen.recognize(sentence(G, "true and true")));
  // Fig 5.2: the or-branch stays unexpanded. Expanded: the start set, the
  // true set, the B set, the and set and the B-and-B set; initial: the
  // false set and the or set.
  EXPECT_EQ(Gen.graph().numComplete(), 5u);
  EXPECT_EQ(Gen.graph().countByState(ItemSetState::Initial), 2u);
  EXPECT_EQ(Gen.graph().numLive(), 7u);
}

TEST(Lazy, AndOnlySentencesNeedNoFurtherExpansion) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  ASSERT_TRUE(Gen.recognize(sentence(G, "true and true")));
  uint64_t Expansions = Gen.stats().Expansions;
  // §5.2: "All sentences that only contain 'and' and 'true', will now be
  // parsed without further expansion of the graph of item sets."
  EXPECT_TRUE(Gen.recognize(sentence(G, "true and true and true")));
  EXPECT_TRUE(Gen.recognize(sentence(G, "true")));
  EXPECT_EQ(Gen.stats().Expansions, Expansions);
  // Sentences with 'or' or 'false' expand further.
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or false")));
  EXPECT_GT(Gen.stats().Expansions, Expansions);
}

TEST(Lazy, ParsingStartsWithZeroGenerationTime) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  // The first parse drives all expansion: before it, no EXPAND has run.
  EXPECT_EQ(Gen.stats().Expansions, 0u);
  EXPECT_TRUE(Gen.recognize(sentence(G, "false")));
  EXPECT_GT(Gen.stats().Expansions, 0u);
}

TEST(Lazy, CoverageIsPartialThenFull) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  EXPECT_EQ(Gen.coverage(), 0.0);
  Gen.recognize(sentence(G, "true and true"));
  double Partial = Gen.coverage();
  EXPECT_GT(Partial, 0.0);
  EXPECT_LT(Partial, 1.0);
  Gen.generateAll();
  EXPECT_EQ(Gen.coverage(), 1.0);
}

TEST(Lazy, LazyGraphEqualsEagerGraph) {
  Grammar GLazy;
  buildBooleans(GLazy);
  Ipg Lazy(GLazy);
  Lazy.recognize(sentence(GLazy, "true or false"));

  Grammar GEager;
  buildBooleans(GEager);
  ItemSetGraph Eager(GEager);
  Eager.generateAll();

  EXPECT_EQ(canonicalize(Lazy.graph()), canonicalize(Eager));
}

TEST(Lazy, TotalExpansionWorkMatchesEager) {
  // §5.3: "The total generation time ... will not increase, since even in
  // the worst case exactly the same amount of work has to be done."
  Grammar GLazy;
  buildArith(GLazy);
  Ipg Lazy(GLazy);
  Lazy.generateAll(); // Forcing everything through the lazy path.

  Grammar GEager;
  buildArith(GEager);
  ItemSetGraph Eager(GEager);
  Eager.generateAll();

  EXPECT_EQ(Lazy.stats().Expansions, Eager.stats().Expansions);
  EXPECT_EQ(Lazy.stats().ClosureItems, Eager.stats().ClosureItems);
  EXPECT_EQ(Lazy.graph().numComplete(), Eager.numComplete());
}

TEST(Lazy, KernelsAreKeptAfterExpansion) {
  // §5.3: the lazy generator keeps kernel fields (the incremental
  // generator needs them again).
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  for (const ItemSet *State : Gen.graph().liveSets())
    EXPECT_FALSE(Gen.graph().kernel(State).empty());
}

// Property: for random grammars, the lazily generated reachable graph
// (driven by parsing random derived sentences) is a subgraph of the eager
// graph, and forcing full generation makes them isomorphic.
class LazyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LazyEquivalenceTest, LazySubsetThenEqual) {
  Grammar GLazy;
  RandomGrammarCase Case = buildRandomGrammar(GLazy, GetParam());
  Ipg Lazy(GLazy);
  for (const std::vector<SymbolId> &S : Case.Positive)
    EXPECT_TRUE(Lazy.recognize(S));

  Grammar GEager;
  Grammar::cloneActiveRules(GLazy, GEager);
  ItemSetGraph Eager(GEager);
  Eager.generateAll();

  EXPECT_LE(Lazy.graph().numComplete(), Eager.numComplete());
  EXPECT_EQ(canonicalize(Lazy.graph()), canonicalize(Eager));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 26));
