//===- tests/core/GcTest.cpp - Garbage collection (§6.2) ------------------===//

#include "common/GraphCanon.h"
#include "common/TestGrammars.h"
#include "core/Ipg.h"

#include <gtest/gtest.h>

using namespace ipg;
using namespace ipg::testing;

TEST(Gc, DirtySetsRetainOldTransitions) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  Gen.addRule("B", {"unknown"});
  for (const ItemSet *State : Gen.graph().liveSets())
    if (State->state() == ItemSetState::Dirty) {
      EXPECT_FALSE(Gen.graph().oldTransitions(State).empty())
          << "dirty sets keep their history for DECR-REFCOUNT";
    }
}

TEST(Gc, ReExpansionReleasesOrphans) {
  // Deleting B ::= B and B orphans the and-branch; once the dirty sets
  // re-expand, reference counting reclaims it.
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_EQ(Gen.graph().numLive(), 8u);
  Gen.deleteRule("B", {"B", "and", "B"});
  Gen.generateAll();
  EXPECT_GT(Gen.stats().Collected, 0u);

  Grammar GFresh;
  buildBooleans(GFresh);
  GFresh.removeRule(GFresh.symbols().lookup("B"),
                    {GFresh.symbols().lookup("B"),
                     GFresh.symbols().lookup("and"),
                     GFresh.symbols().lookup("B")});
  ItemSetGraph Fresh(GFresh);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Fresh));
}

TEST(Gc, UnusedSetsSurviveUntilReExpansion) {
  // §6.2: retaining unused sets is deliberate — re-adding the rule must
  // re-use them instead of regenerating.
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  size_t Before = Gen.graph().numLive();
  Gen.deleteRule("B", {"B", "or", "B"});
  // No parse in between: nothing was re-expanded, nothing reclaimed.
  EXPECT_EQ(Gen.graph().numLive(), Before);
  Gen.addRule("B", {"B", "or", "B"});
  Gen.generateAll();
  // All original sets are live again, no spurious duplicates reachable.
  Grammar GFresh;
  buildBooleans(GFresh);
  ItemSetGraph Fresh(GFresh);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Fresh));
}

TEST(Gc, RefcountLeaksCyclesMarkSweepReclaims) {
  // The or-branch of the booleans graph is cyclic (B-state <-> or-state),
  // so after deleting the or rule and re-expanding only the reachable
  // part, the orphaned cycle survives refcounting (§6.2: "our
  // implementation of garbage collection cannot yet handle circular
  // references") — the mark-and-sweep collector reclaims it.
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  Gen.deleteRule("B", {"B", "or", "B"});
  ASSERT_TRUE(Gen.recognize(sentence(G, "true and true")));

  Grammar GFresh;
  buildBooleans(GFresh);
  GFresh.removeRule(GFresh.symbols().lookup("B"),
                    {GFresh.symbols().lookup("B"),
                     GFresh.symbols().lookup("or"),
                     GFresh.symbols().lookup("B")});
  ItemSetGraph Fresh(GFresh);
  Fresh.generateAll();

  // The reachable parts agree, but the incremental graph drags dead weight.
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Fresh));
  size_t LiveBefore = Gen.graph().numLive();
  EXPECT_GT(LiveBefore, Fresh.numLive()) << "cyclic garbage leaked";

  size_t Reclaimed = Gen.collectGarbage();
  EXPECT_GT(Reclaimed, 0u);
  EXPECT_EQ(Gen.graph().numLive(), LiveBefore - Reclaimed);
  // Collection preserves the reachable graph.
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Fresh));
}

TEST(Gc, MarkSweepKeepsDirtyHistoryAlive) {
  // Old transitions of dirty sets are GC roots: collecting right after a
  // modification must not reclaim the sets the history still references.
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  size_t Before = Gen.graph().numLive();
  Gen.addRule("B", {"unknown"});
  EXPECT_EQ(Gen.collectGarbage(), 0u)
      << "everything is still reachable through dirty histories";
  EXPECT_EQ(Gen.graph().numLive(), Before);
  EXPECT_TRUE(Gen.recognize(sentence(G, "unknown or true")));
}

TEST(Gc, CollectOnCleanGraphIsNoOp) {
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  Gen.generateAll();
  EXPECT_EQ(Gen.collectGarbage(), 0u);
}

TEST(Gc, RefcountsRemainConsistentAfterCollection) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  Gen.deleteRule("B", {"B", "or", "B"});
  Gen.recognize(sentence(G, "true and true"));
  Gen.collectGarbage();
  for (const ItemSet *State : Gen.graph().liveSets()) {
    uint32_t Expected = State == Gen.graph().startSet() ? 1 : 0;
    for (const ItemSet *From : Gen.graph().liveSets()) {
      for (ItemSet::Transition T : Gen.graph().transitions(From))
        Expected += T.Target == State;
      for (ItemSet::Transition T : Gen.graph().oldTransitions(From))
        Expected += T.Target == State;
    }
    EXPECT_EQ(State->refCount(), Expected) << "set " << State->id();
  }
}

// Property: edit storms with interleaved parses and periodic mark-sweep
// never corrupt the reachable graph.
class GcStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcStormTest, EditStormWithCollection) {
  Prng Rng(GetParam() * 104729);
  Grammar G;
  RandomGrammarCase Case = buildRandomGrammar(G, GetParam());
  Ipg Gen(G);

  std::vector<RuleId> Removed;
  for (int Round = 0; Round < 10; ++Round) {
    // Toggle a random non-START rule.
    std::vector<RuleId> Active = G.activeRules();
    RuleId Pick = Active[Rng.below(Active.size())];
    if (G.rule(Pick).Lhs != G.startSymbol()) {
      Gen.deleteRule(G.rule(Pick).Lhs, G.rule(Pick).Rhs);
      Removed.push_back(Pick);
    }
    if (!Removed.empty() && Rng.below(2) == 0) {
      RuleId Back = Removed.back();
      Removed.pop_back();
      Gen.addRule(G.rule(Back).Lhs, G.rule(Back).Rhs);
    }
    for (const std::vector<SymbolId> &S : Case.Positive)
      Gen.recognize(S); // Must not crash or assert.
    if (Round % 3 == 2)
      Gen.collectGarbage();
  }

  Grammar GFresh;
  Grammar::cloneActiveRules(G, GFresh);
  ItemSetGraph Fresh(GFresh);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Fresh))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcStormTest, ::testing::Range<uint64_t>(1, 21));
