//===- tests/core/CoverageGcEdgeTest.cpp - coverage()/GC edge cases -------===//
///
/// \file
/// Edge cases for Ipg::coverage() (§5.2 measurement) and
/// Ipg::collectGarbage() (§6.2 mark-and-sweep): the empty grammar, a fully
/// generated table, and cyclic garbage stranded by deleteRule.
///
//===----------------------------------------------------------------------===//

#include "common/GraphCanon.h"
#include "common/TestGrammars.h"

#include "core/Ipg.h"

#include "gtest/gtest.h"

using namespace ipg;
using namespace ipg::testing;

namespace {

TEST(CoverageEdgeTest, EmptyGrammar) {
  Grammar G;
  Ipg Gen(G);
  // No rules: the full table is degenerate, and no division by zero or
  // crash may occur. Coverage is a fraction either way.
  double C = Gen.coverage();
  EXPECT_GE(C, 0.0);
  EXPECT_LE(C, 1.0);
}

TEST(CoverageEdgeTest, FreshGeneratorHasLowCoverage) {
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  // Nothing has been parsed: at most the start set exists, and the full
  // arith table is much larger.
  EXPECT_LT(Gen.coverage(), 0.5);
}

TEST(CoverageEdgeTest, FullyGeneratedTableHasCoverageOne) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  EXPECT_DOUBLE_EQ(Gen.coverage(), 1.0);
}

TEST(CoverageEdgeTest, CoverageGrowsMonotonicallyWhileParsing) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  double Before = Gen.coverage();
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or false")));
  double After = Gen.coverage();
  EXPECT_GE(After, Before);
  EXPECT_LE(After, 1.0);
}

TEST(CoverageEdgeTest, CoverageProbeDoesNotDisturbLaziness) {
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  size_t CompleteBefore = Gen.graph().numComplete();
  (void)Gen.coverage();
  // coverage() measures against a cloned grammar; the receiver's own graph
  // must not have been expanded by the probe.
  EXPECT_EQ(Gen.graph().numComplete(), CompleteBefore);
}

TEST(GcEdgeTest, EmptyGrammarCollectsNothing) {
  Grammar G;
  Ipg Gen(G);
  EXPECT_EQ(Gen.collectGarbage(), 0u);
}

TEST(GcEdgeTest, FullyGeneratedTableHasNoGarbage) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  size_t Total = Gen.generateAll();
  EXPECT_EQ(Gen.collectGarbage(), 0u);
  // Collection must not have reclaimed live states.
  EXPECT_EQ(Gen.graph().numComplete(), Total);
}

TEST(GcEdgeTest, CyclicGarbageAfterDeleteRule) {
  // Reach a right-recursive region through a bridge rule. L ::= a L | a
  // yields a state {L ::= a•L, L ::= a•} whose shift on "a" is a self-loop,
  // so after the bridge is deleted and the dirty sets re-expand, the
  // reference counts never reach zero: only mark-and-sweep reclaims it.
  Grammar G;
  GrammarBuilder B(G);
  B.rule("START", {"S"});
  B.rule("S", {"x"});
  B.rule("S", {"L"});          // bridge into the cyclic region
  B.rule("L", {"a", "L"});     // right recursion: self-loop in the graph
  B.rule("L", {"a"});

  Ipg Gen(G);
  Gen.generateAll();
  size_t LiveBefore = Gen.graph().numLive();

  ASSERT_TRUE(Gen.deleteRule("S", {"L"}));
  // RE-EXPAND the dirty sets so reference counting runs; the self-loop
  // region survives it as cyclic garbage.
  Gen.generateAll();
  ASSERT_LT(Gen.graph().numLive(), LiveBefore);
  size_t LiveAfterRefcount = Gen.graph().numLive();

  size_t Collected = Gen.collectGarbage();
  EXPECT_GT(Collected, 0u);
  EXPECT_LT(Gen.graph().numLive(), LiveAfterRefcount);

  // A second sweep finds nothing new.
  EXPECT_EQ(Gen.collectGarbage(), 0u);

  // The repaired graph still parses the surviving language and matches a
  // fresh graph for the post-edit grammar.
  EXPECT_TRUE(Gen.recognize(sentence(G, "x")));
  Grammar Fresh;
  GrammarBuilder FB(Fresh);
  FB.rule("START", {"S"});
  FB.rule("S", {"x"});
  FB.rule("L", {"a", "L"});
  FB.rule("L", {"a"});
  ItemSetGraph FreshGraph(Fresh);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(FreshGraph));
}

TEST(GcEdgeTest, CollectGarbageIsIdempotentAcrossEdits) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.addRule("B", {"not", "B"}));
  ASSERT_TRUE(Gen.deleteRule("B", {"not", "B"}));
  (void)Gen.collectGarbage();
  EXPECT_EQ(Gen.collectGarbage(), 0u);
  EXPECT_TRUE(Gen.recognize(sentence(G, "true and false")));
}

} // namespace
