//===- tests/core/ModulesTest.cpp - Modular composition (§8) --------------===//

#include "common/TestGrammars.h"
#include "core/Modules.h"

#include <gtest/gtest.h>

using namespace ipg;
using namespace ipg::testing;

namespace {

/// Booleans split across modules: core literals, an or-extension and an
/// and-extension, plus an "all" module importing both.
void defineBooleanModules(ModuleSystem &Modules) {
  Modules.define("literals")
      .rule("B", {"true"})
      .rule("B", {"false"})
      .rule("START", {"B"});
  Modules.define("or").imports("literals").rule("B", {"B", "or", "B"});
  Modules.define("and").imports("literals").rule("B", {"B", "and", "B"});
  Modules.define("all").imports("or").imports("and");
}

} // namespace

TEST(Modules, LoadAddsTransitiveImports) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  defineBooleanModules(Modules);

  Expected<size_t> Added = Modules.load("or");
  ASSERT_TRUE(Added) << Added.error().str();
  EXPECT_EQ(*Added, 4u) << "3 literal rules + the or rule";
  EXPECT_TRUE(Modules.isLoaded("or"));
  EXPECT_TRUE(Modules.isLoaded("literals"));
  EXPECT_FALSE(Modules.isLoaded("and"));
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or false")));
  G.symbols().intern("and"); // A token the loaded modules don't know.
  EXPECT_FALSE(Gen.recognize(sentence(G, "true and false")));
}

TEST(Modules, ImportExtendsSyntaxIncrementally) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  defineBooleanModules(Modules);
  ASSERT_TRUE(Modules.load("or"));
  ASSERT_TRUE(Gen.recognize(sentence(G, "true or true")));
  uint64_t Expansions = Gen.stats().Expansions;

  // Loading 'and' goes through ADD-RULE: the existing table is repaired,
  // not rebuilt (re-expansions, not a fresh generation).
  ASSERT_TRUE(Modules.load("and"));
  EXPECT_TRUE(Gen.recognize(sentence(G, "true and false or true")));
  EXPECT_GT(Gen.stats().ReExpansions, 0u);
  EXPECT_GT(Gen.stats().Expansions, Expansions);
}

TEST(Modules, SharedImportLoadedOnce) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  defineBooleanModules(Modules);
  ASSERT_TRUE(Modules.load("all"));
  EXPECT_EQ(G.size(), 5u) << "literals shared by both extensions";
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or true and false")));
}

TEST(Modules, UnloadRemovesOnlyUnneededRules) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  defineBooleanModules(Modules);
  ASSERT_TRUE(Modules.load("or"));
  ASSERT_TRUE(Modules.load("and"));

  Expected<size_t> Removed = Modules.unload("or");
  ASSERT_TRUE(Removed) << Removed.error().str();
  EXPECT_EQ(*Removed, 1u) << "literals still needed by 'and'";
  EXPECT_FALSE(Gen.recognize(sentence(G, "true or true")));
  EXPECT_TRUE(Gen.recognize(sentence(G, "true and true")));
  EXPECT_TRUE(Modules.isLoaded("literals"));

  ASSERT_TRUE(Modules.unload("and"));
  EXPECT_FALSE(Modules.isLoaded("literals"));
  EXPECT_EQ(G.size(), 0u);
}

TEST(Modules, LoadIsRefcountedPerRoot) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  defineBooleanModules(Modules);
  ASSERT_TRUE(Modules.load("or"));
  ASSERT_TRUE(Modules.load("or"));
  ASSERT_TRUE(Modules.unload("or"));
  EXPECT_TRUE(Modules.isLoaded("or")) << "still loaded once";
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or true")));
  ASSERT_TRUE(Modules.unload("or"));
  EXPECT_FALSE(Modules.isLoaded("or"));
}

TEST(Modules, SameRuleFromTwoModules) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  Modules.define("m1").rule("S", {"x"}).rule("START", {"S"});
  Modules.define("m2").rule("S", {"x"}).rule("S", {"y"}).rule("START", {"S"});
  ASSERT_TRUE(Modules.load("m1"));
  ASSERT_TRUE(Modules.load("m2"));
  ASSERT_TRUE(Modules.unload("m2"));
  // S ::= x contributed by both modules: must survive m2's unload.
  EXPECT_TRUE(Gen.recognize(sentence(G, "x")));
  EXPECT_FALSE(Gen.recognize(sentence(G, "y")));
}

TEST(Modules, UnknownModuleIsError) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  Expected<size_t> R = Modules.load("nope");
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().Message.find("unknown module"), std::string::npos);
}

TEST(Modules, CyclicImportIsError) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  Modules.define("a").imports("b");
  Modules.define("b").imports("a");
  Expected<size_t> R = Modules.load("a");
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().Message.find("cyclic import"), std::string::npos);
}

TEST(Modules, UnloadWithoutLoadIsError) {
  Grammar G;
  Ipg Gen(G);
  ModuleSystem Modules(Gen);
  Modules.define("m").rule("S", {"x"});
  EXPECT_FALSE(Modules.unload("m"));
}
