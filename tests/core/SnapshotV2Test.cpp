//===- tests/core/SnapshotV2Test.cpp - ipg-snap-v2 zero-copy load ---------===//
///
/// \file
/// The `ipg-snap-v2` contract (SnapshotTest.cpp owns v1): flat-layout
/// round trips are parse-equivalent, byte-deterministic, and
/// interoperable with v1; the fingerprint-matched load adopts the mapped
/// GRPH section zero-copy (the data pools' base segments point into the
/// mapping, pinned here by a numAdoptedSets() probe and by an allocation
/// count that does not grow with the graph); adopted graphs stay fully
/// §6-capable through the
/// copy-on-MODIFY materialization; malformed files — truncated, header-
/// corrupted, misaligned, semantically invalid — are rejected with the
/// generator left usable; and the checked-in golden v1 file keeps
/// loading (forward compatibility across format generations).
///
/// This suite must stay in its own test executable: like
/// HotPathAllocTest.cpp it replaces the global operator new with a
/// counting one to prove the zero-copy path performs no per-ItemSet heap
/// allocation.
///
//===----------------------------------------------------------------------===//

#include "common/GraphCanon.h"
#include "common/TestGrammars.h"
#include "core/Ipg.h"
#include "grammar/GrammarBuilder.h"
#include "grammar/GrammarIO.h"
#include "lr/GraphSnapshot.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#if defined(_MSC_VER)
#include <malloc.h>
#endif

// GCC pairs the replaced (malloc-backed) operator new with the sized
// delete at gtest template instantiation sites and flags a mismatch that
// is not one — both sides of this TU's replacement are malloc/free.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

/// Number of global operator new calls since process start. Plain (not
/// atomic): the suite is single-threaded and the counter is only compared
/// across points on one thread.
unsigned long long AllocCount = 0;

} // namespace

void *operator new(std::size_t Size) {
  ++AllocCount;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

namespace {

void *alignedAllocCounted(std::size_t Size, std::size_t Align) {
  ++AllocCount;
#if defined(_MSC_VER)
  return _aligned_malloc(Size ? Size : Align, Align);
#else
  std::size_t Rounded = (Size + Align - 1) & ~(Align - 1);
  return std::aligned_alloc(Align, Rounded ? Rounded : Align);
#endif
}
void alignedFree(void *P) noexcept {
#if defined(_MSC_VER)
  _aligned_free(P);
#else
  std::free(P);
#endif
}

} // namespace

void *operator new(std::size_t Size, std::align_val_t Align) {
  if (void *P = alignedAllocCounted(Size, static_cast<std::size_t>(Align)))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size, std::align_val_t Align) {
  return ::operator new(Size, Align);
}
void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  ++AllocCount;
  return std::malloc(Size ? Size : 1);
}
void *operator new[](std::size_t Size, const std::nothrow_t &) noexcept {
  ++AllocCount;
  return std::malloc(Size ? Size : 1);
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { alignedFree(P); }
void operator delete[](void *P, std::align_val_t) noexcept { alignedFree(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  alignedFree(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  alignedFree(P);
}
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

using namespace ipg;
using namespace ipg::testing;

namespace {

template <typename FnT> unsigned long long allocationsDuring(FnT &&Fn) {
  unsigned long long Before = AllocCount;
  Fn();
  return AllocCount - Before;
}

/// Per-test temp file that cleans up after itself.
class SnapshotFile {
public:
  explicit SnapshotFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {
    std::remove(Path.c_str());
  }
  ~SnapshotFile() { std::remove(Path.c_str()); }

  const std::string &path() const { return Path; }

private:
  std::string Path;
};

std::vector<uint8_t> fileBytes(const std::string &Path) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  EXPECT_TRUE(Bytes);
  return Bytes ? Bytes.take() : std::vector<uint8_t>();
}

void writeBytesToFile(const std::string &Path,
                      const std::vector<uint8_t> &Bytes) {
  ByteWriter W;
  W.writeBytes(Bytes.data(), Bytes.size());
  Expected<size_t> Written = W.writeFile(Path);
  ASSERT_TRUE(Written) << Written.error().str();
}

/// A layered chain grammar whose item-set count grows linearly with
/// \p Layers — the scaling knob behind the constant-allocation pin.
void buildLayered(Grammar &G, int Layers) {
  GrammarBuilder B(G);
  // Two-step concatenation sidesteps a GCC 12 -O3 -Wrestrict false
  // positive on `"L" + std::to_string(I)`.
  auto Name = [](const char *Prefix, int I) {
    std::string Text(Prefix);
    Text += std::to_string(I);
    return Text;
  };
  B.rule("START", {"L0"});
  for (int I = 0; I < Layers; ++I) {
    std::string Cur = Name("L", I);
    std::string Tok = Name("t", I);
    if (I + 1 < Layers) {
      std::string Next = Name("L", I + 1);
      B.rule(Cur, {Tok, Next});
      B.rule(Cur, {Next});
    }
    B.rule(Cur, {Tok});
  }
}

/// Since the flat-arena refactor, borrowing is a whole-graph property:
/// adoptV2 installs the mapped pools as base segments and records how many
/// set records arrived that way. Nonzero means the graph still reads
/// through the mapping.
size_t countBorrowed(const ItemSetGraph &Graph) {
  return Graph.numAdoptedSets();
}

/// Recomputes both v2 checksums after a test mutated header fields, so
/// the mutation reaches the validation stage it targets instead of being
/// masked by a checksum mismatch.
void resealV2(std::vector<uint8_t> &File) {
  ASSERT_GE(File.size(), SnapshotV2HeaderBytes);
  auto PatchU64 = [&](size_t Off, uint64_t Value) {
    for (int I = 0; I < 8; ++I)
      File[Off + static_cast<size_t>(I)] =
          static_cast<uint8_t>(Value >> (8 * I));
  };
  PatchU64(64, hashBytes(File.data() + SnapshotV2HeaderBytes,
                         File.size() - SnapshotV2HeaderBytes));
  PatchU64(72, hashBytes(File.data(), SnapshotV2HeaderChecksumBytes));
}

} // namespace

TEST(SnapshotV2, CountingOperatorNewIsLive) {
  unsigned long long Allocs = allocationsDuring([] {
    std::vector<int> *V = new std::vector<int>(100, 7);
    delete V;
  });
  EXPECT_GE(Allocs, 2ull) << "the counting operator new must be installed";
}

TEST(SnapshotV2, DefaultFormatIsV2) {
  SnapshotFile File("snapv2_default.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));
  std::vector<uint8_t> Bytes = fileBytes(File.path());
  ASSERT_GE(Bytes.size(), SnapshotV2HeaderBytes);
  EXPECT_EQ(std::string(Bytes.begin(), Bytes.begin() + 11), "ipg-snap-v2");
  EXPECT_EQ(Bytes[11], 0u);
}

TEST(SnapshotV2, MatchedLoadAdoptsBorrowedStorage) {
  SnapshotFile File("snapv2_adopt.bin");
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  size_t States = Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_EQ(R->StatesLoaded, States);
  if (GraphSnapshot::hostCanAdoptV2()) {
    // The zero-copy path must actually have engaged — every set record
    // was adopted out of the mapping, and the data pools read through it.
    EXPECT_EQ(countBorrowed(Loaded.graph()), States);
  }
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "id + id * id")));
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Gen.graph()));
}

TEST(SnapshotV2, AdoptedGraphSurvivesModifyViaCopyOnWrite) {
  // §6 on a zero-copy graph: with flat-arena pools, copy-on-MODIFY is
  // append-only — ADD-RULE moves the dirtied sets' spans and re-expansion
  // appends fresh spans to the grow segments, while the adopted base
  // pools (and the mapping behind them) stay installed untouched; the
  // repaired graph must canonicalize like a from-scratch graph of the new
  // grammar.
  SnapshotFile File("snapv2_cow.bin");
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  Ipg Loaded(G2);
  ASSERT_TRUE(Loaded.loadSnapshot(File.path()));
  size_t BorrowedBefore = countBorrowed(Loaded.graph());

  ASSERT_TRUE(Loaded.addRule("F", {"neg", "F"}));
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "neg id + id")));
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "id * neg neg id")));
  if (GraphSnapshot::hostCanAdoptV2()) {
    EXPECT_GT(BorrowedBefore, 0u) << "the adoption path must have engaged";
    EXPECT_EQ(countBorrowed(Loaded.graph()), BorrowedBefore)
        << "MODIFY must not evict the adopted base pools — repairs are "
           "appends, not a wholesale copy";
    EXPECT_GT(Loaded.graph().liveSets().size(), BorrowedBefore)
        << "re-expansion after ADD-RULE must have appended new sets "
           "beyond the adopted block";
  }

  Grammar GRef;
  Grammar::cloneActiveRules(G2, GRef);
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Ref));
}

TEST(SnapshotV2, MatchedLoadAllocationsDoNotGrowWithTheGraph) {
  // The zero-copy claim, pinned the HotPathAllocTest way: a layout-match
  // v2 load allocates a small constant number of blocks (the mapping
  // handle and the adopted ItemSet block) regardless of how many sets the
  // snapshot holds — zero allocations per ItemSet.
  if (!GraphSnapshot::hostCanAdoptV2())
    GTEST_SKIP() << "host cannot run the zero-copy adoption path";

  auto MeasureLoad = [&](int Layers, size_t &StatesOut) {
    SnapshotFile File("snapv2_alloc_" + std::to_string(Layers) + ".bin");
    Grammar G;
    buildLayered(G, Layers);
    Ipg Gen(G);
    StatesOut = Gen.generateAll();
    EXPECT_TRUE(Gen.saveSnapshot(File.path()));

    Grammar G2;
    Grammar::cloneActiveRules(G, G2);
    Ipg Loaded(G2);
    const std::string &Path = File.path();
    bool Ok = false;
    unsigned long long Allocs =
        allocationsDuring([&] { Ok = bool(Loaded.loadSnapshot(Path)); });
    EXPECT_TRUE(Ok);
    EXPECT_EQ(countBorrowed(Loaded.graph()), StatesOut);
    return Allocs;
  };

  size_t SmallStates = 0, LargeStates = 0;
  unsigned long long SmallAllocs = MeasureLoad(8, SmallStates);
  unsigned long long LargeAllocs = MeasureLoad(64, LargeStates);
  ASSERT_GT(LargeStates, SmallStates * 4)
      << "the scaling knob must actually scale the graph";
  EXPECT_EQ(SmallAllocs, LargeAllocs)
      << "zero-copy load must not allocate per ItemSet";
  EXPECT_LE(LargeAllocs, 8ull);
}

TEST(SnapshotV2, SaveIsByteDeterministicAndRoundTripsTheFile) {
  SnapshotFile A("snapv2_det_a.bin");
  SnapshotFile B("snapv2_det_b.bin");
  SnapshotFile C("snapv2_det_c.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  // A partially expanded graph: the frontier must round-trip too.
  ASSERT_TRUE(Gen.recognize(sentence(G, "true and true")));
  ASSERT_GT(Gen.graph().countByState(ItemSetState::Initial), 0u);
  ASSERT_TRUE(Gen.saveSnapshot(A.path()));
  ASSERT_TRUE(Gen.saveSnapshot(B.path()));
  EXPECT_EQ(fileBytes(A.path()), fileBytes(B.path()));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(A.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_EQ(Loaded.stats().Expansions, Gen.stats().Expansions);
  EXPECT_EQ(Loaded.graph().countByState(ItemSetState::Initial),
            Gen.graph().countByState(ItemSetState::Initial));
  // Re-saving the just-loaded (still borrowed) graph reproduces the file:
  // the writer reads through the same accessors either way.
  ASSERT_TRUE(Loaded.saveSnapshot(C.path()));
  EXPECT_EQ(fileBytes(A.path()), fileBytes(C.path()));
}

TEST(SnapshotV2, SaveOutputIsByteIdenticalToLivePools) {
  // The flat-arena contract at its most literal: the GRPH section body is
  // the live pools, byte for byte. Build a graph that exercises every
  // pool (reductions, accepts, a dirty set with old spans would need
  // MODIFY — plain generation covers the four always-populated pools),
  // save it, then compare the section's pool regions against the memory
  // the graph's own accessors expose.
  Grammar G;
  buildArith(G);
  ItemSetGraph Graph(G);
  Graph.generateAll();

  FlatWriter Section;
  GraphSnapshot::saveV2(Graph, Section);
  const std::vector<uint8_t> &Bytes = Section.buffer();
  FlatView View(Bytes.data(), Bytes.size());

  auto U32 = [&](size_t Off) {
    Expected<uint32_t> V = View.u32At(Off);
    EXPECT_TRUE(V);
    return V ? *V : 0u;
  };
  auto U64 = [&](size_t Off) {
    Expected<uint64_t> V = View.u64At(Off);
    EXPECT_TRUE(V);
    return V ? *V : 0ull;
  };
  const uint32_t NumSets = U32(0);
  const uint32_t NumKernelItems = U32(8);
  const uint32_t NumTransitions = U32(12);
  const uint32_t NumReductions = U32(20);
  const uint32_t NumAccepts = U32(24);
  ASSERT_EQ(U32(28), 1u) << "flat-arena layout flag";
  // Header (32) + stats (48) + offset table (56) = 136.
  const size_t OffSets = U64(80);
  const size_t OffKernels = U64(88);
  const size_t OffTrans = U64(96);
  const size_t OffLabels = U64(112);
  const size_t OffReds = U64(120);
  const size_t OffAccs = U64(128);
  ASSERT_EQ(OffSets, 136u);

  // Pool base pointers, recovered through the public accessors: some live
  // set owns offset 0 of each pool (a freshly generated graph has no
  // abandoned spans), so the minimum data pointer IS the pool base.
  const Item *KernelBase = nullptr;
  const SymbolId *LabelBase = nullptr;
  const RuleId *RedBase = nullptr;
  const RuleId *AccBase = nullptr;
  for (const ItemSet *Set : Graph.liveSets()) {
    auto Min = [](const auto *&Base, const auto *P) {
      if (Base == nullptr || P < Base)
        Base = P;
    };
    Min(KernelBase, Graph.kernel(Set).data());
    Min(LabelBase, Graph.actionLabels(Set).data());
    Min(RedBase, Graph.reductions(Set).data());
    Min(AccBase, Graph.acceptRules(Set).data());
  }
  ASSERT_NE(KernelBase, nullptr);

  ASSERT_GE(Bytes.size(), OffKernels + NumKernelItems * sizeof(Item));
  EXPECT_EQ(std::memcmp(Bytes.data() + OffKernels, KernelBase,
                        NumKernelItems * sizeof(Item)),
            0)
      << "kernel pool bytes differ from live memory";
  EXPECT_EQ(std::memcmp(Bytes.data() + OffLabels, LabelBase,
                        NumTransitions * sizeof(SymbolId)),
            0)
      << "label pool bytes differ from live memory";
  EXPECT_EQ(std::memcmp(Bytes.data() + OffReds, RedBase,
                        NumReductions * sizeof(RuleId)),
            0)
      << "reduction pool bytes differ from live memory";
  EXPECT_EQ(std::memcmp(Bytes.data() + OffAccs, AccBase,
                        NumAccepts * sizeof(RuleId)),
            0)
      << "accept pool bytes differ from live memory";

  // The record pool and the transition-target pool have no raw public
  // pointer; check them value-by-value through the accessors (Id == pool
  // index, so targets ARE the serialized u32s).
  size_t CheckedTargets = 0;
  for (const ItemSet *Set : Graph.liveSets()) {
    const size_t Rec = OffSets + size_t(Set->id()) * 52;
    EXPECT_EQ(U32(Rec), Set->id());
    EXPECT_EQ(Bytes[Rec + 4], static_cast<uint8_t>(Set->state()));
    EXPECT_EQ(Bytes[Rec + 5] != 0, Set->isAccepting());
    EXPECT_EQ(U32(Rec + 8), Set->refCount());
    TransitionRange Edges = Graph.transitions(Set);
    const uint32_t TransOff = U32(Rec + 20);
    for (size_t I = 0; I < Edges.size(); ++I, ++CheckedTargets)
      EXPECT_EQ(U32(OffTrans + (TransOff + I) * 4), Edges[I].Target->id());
  }
  EXPECT_GT(CheckedTargets, 0u);
  EXPECT_LE(CheckedTargets, NumTransitions);
  (void)NumSets;
}

TEST(SnapshotV2, ResavingOverTheBorrowedFileIsSafe) {
  // saveSnapshot to the very path the graph was zero-copy adopted from:
  // the atomic temp+rename swap must leave the borrowed inode alive for
  // the mapping (an in-place truncating rewrite would rip clean pages
  // out from under the borrowed spans — SIGBUS on the next query).
  SnapshotFile File("snapv2_resave.bin");
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  Ipg Loaded(G2);
  ASSERT_TRUE(Loaded.loadSnapshot(File.path()));
  bool WasBorrowed = countBorrowed(Loaded.graph()) > 0;

  // Overwrite the snapshot while the graph still borrows from it, then
  // keep querying through the borrowed spans.
  ASSERT_TRUE(Loaded.saveSnapshot(File.path()));
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "id + id * id")));
  if (GraphSnapshot::hostCanAdoptV2()) {
    EXPECT_TRUE(WasBorrowed);
  }

  // And the swapped-in file is a complete, loadable snapshot.
  Grammar G3;
  Grammar::cloneActiveRules(G, G3);
  Ipg Again(G3);
  Expected<SnapshotLoadResult> R = Again.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_EQ(canonicalize(Again.graph()), canonicalize(Gen.graph()));
}

TEST(SnapshotV2, StaleSnapshotRepairsThroughTheDecodePath) {
  // Layout mismatch forces the endian-safe decode plus §6 delta replay —
  // the same repair contract v1 has, off the flat encoding.
  SnapshotFile File("snapv2_stale.bin");
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  size_t FullStates = Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  GrammarBuilder(G2).rule("F", {"neg", "F"});
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_FALSE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 1u);
  EXPECT_EQ(R->RulesRemoved, 0u);
  EXPECT_EQ(R->StatesLoaded, FullStates);
  EXPECT_EQ(countBorrowed(Loaded.graph()), 0u)
      << "the decode path owns its records";

  uint64_t ReExpansionsBefore = Loaded.stats().ReExpansions;
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "neg id + id")));
  // Bounded re-expansion: the one-rule delta re-expands only the states
  // MODIFY dirtied, not the table.
  EXPECT_LT(Loaded.stats().ReExpansions - ReExpansionsBefore, FullStates / 2);

  Grammar GRef;
  Grammar::cloneActiveRules(G2, GRef);
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Ref));
}

TEST(SnapshotV2, InteroperatesWithV1) {
  // Same graph through both encodings: v1 -> load -> v2 -> load must
  // preserve parse behaviour and structure.
  SnapshotFile V1("snapv2_interop_v1.bin");
  SnapshotFile V2("snapv2_interop_v2.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  ASSERT_TRUE(Gen.recognize(sentence(G, "true and false or true")));
  ASSERT_TRUE(Gen.saveSnapshot(V1.path(), SnapshotFormat::V1));
  ASSERT_TRUE(Gen.saveSnapshot(V2.path(), SnapshotFormat::V2));

  Grammar GA, GB;
  Grammar::cloneActiveRules(G, GA);
  Grammar::cloneActiveRules(G, GB);
  Ipg FromV1(GA), FromV2(GB);
  ASSERT_TRUE(FromV1.loadSnapshot(V1.path()));
  ASSERT_TRUE(FromV2.loadSnapshot(V2.path()));
  EXPECT_EQ(FromV1.stats().Expansions, FromV2.stats().Expansions);
  EXPECT_EQ(canonicalize(FromV1.graph()), canonicalize(FromV2.graph()));

  // And the v2 file reloaded through a v1 re-save still matches.
  SnapshotFile Again("snapv2_interop_again.bin");
  ASSERT_TRUE(FromV2.saveSnapshot(Again.path(), SnapshotFormat::V1));
  EXPECT_EQ(fileBytes(V1.path()), fileBytes(Again.path()));
}

TEST(SnapshotV2, RejectsEveryTruncation) {
  SnapshotFile File("snapv2_trunc.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));
  std::vector<uint8_t> Full = fileBytes(File.path());
  ASSERT_GT(Full.size(), SnapshotV2HeaderBytes);

  SnapshotFile Cut("snapv2_trunc_cut.bin");
  for (size_t Keep = 0; Keep < Full.size(); ++Keep) {
    writeBytesToFile(Cut.path(),
                     std::vector<uint8_t>(Full.begin(), Full.begin() + Keep));
    Grammar G2;
    buildBooleans(G2);
    Ipg Loaded(G2);
    EXPECT_FALSE(Loaded.loadSnapshot(Cut.path()))
        << "truncation to " << Keep << " bytes must be rejected";
    EXPECT_TRUE(Loaded.recognize(sentence(G2, "true")));
  }
}

TEST(SnapshotV2, RejectsEveryHeaderCorruptionAndSurvivesPayloadFlips) {
  SnapshotFile File("snapv2_corrupt.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.recognize(sentence(G, "true and true"));
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));
  std::vector<uint8_t> Full = fileBytes(File.path());

  // Every header byte is covered by a checksum (the header checksum field
  // itself included — flipping it breaks the comparison), so any flip
  // below the payload must fail the load. Payload flips are the v2 trust
  // trade: on the fast path the structural validation catches what it
  // can, and the required guarantee is only that the load never crashes
  // and the generator stays usable.
  SnapshotFile Bad("snapv2_corrupt_bad.bin");
  for (size_t I = 0; I < Full.size(); ++I) {
    std::vector<uint8_t> Copy = Full;
    Copy[I] ^= 0x40;
    writeBytesToFile(Bad.path(), Copy);
    Grammar G2;
    buildBooleans(G2);
    Ipg Loaded(G2);
    Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(Bad.path());
    if (I < SnapshotV2HeaderBytes) {
      EXPECT_FALSE(R) << "header byte " << I
                      << " corrupted but load succeeded";
    }
    EXPECT_TRUE(Loaded.recognize(sentence(G2, "true")))
        << "generator unusable after corrupted load (byte " << I << ")";
  }
}

TEST(SnapshotV2, RejectsMisalignedSections) {
  // A crafted header whose GRPH offset breaks the natural-alignment
  // contract: the typed-array bounds/alignment gate must reject it
  // (moving the offset by 4 also makes its content garbage — either
  // validation layer may fire, but the load must fail cleanly).
  if (!GraphSnapshot::hostCanAdoptV2())
    GTEST_SKIP() << "alignment gate sits on the adoption path";
  SnapshotFile File("snapv2_misalign.bin");
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));
  std::vector<uint8_t> Full = fileBytes(File.path());

  // GrphOff lives at header offset 48; nudge it off 8-alignment and
  // reseal the checksums so the mutation reaches the section readers.
  uint64_t GrphOff = 0;
  for (int I = 0; I < 8; ++I)
    GrphOff |= static_cast<uint64_t>(Full[48 + I]) << (8 * I);
  uint64_t Nudged = GrphOff + 4;
  for (int I = 0; I < 8; ++I)
    Full[48 + I] = static_cast<uint8_t>(Nudged >> (8 * I));
  resealV2(Full);

  SnapshotFile Bad("snapv2_misalign_bad.bin");
  writeBytesToFile(Bad.path(), Full);
  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  Ipg Loaded(G2);
  EXPECT_FALSE(Loaded.loadSnapshot(Bad.path()));
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "id")));
}

TEST(SnapshotV2, RejectsResealedSemanticCorruption) {
  // Out-of-range indices with *valid* checksums: the structural
  // validation inside the adopter must catch them, and the failed load
  // must leave the generator usable.
  SnapshotFile File("snapv2_semantic.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));
  std::vector<uint8_t> Pristine = fileBytes(File.path());

  // The GRPH header's StartIdx (section offset 4) -> out of range.
  uint64_t GrphOff = 0;
  for (int I = 0; I < 8; ++I)
    GrphOff |= static_cast<uint64_t>(Pristine[48 + I]) << (8 * I);
  std::vector<uint8_t> Bad = Pristine;
  size_t StartIdxOff = static_cast<size_t>(GrphOff) + 4;
  Bad[StartIdxOff] = 0xFF;
  Bad[StartIdxOff + 1] = 0xFF;
  resealV2(Bad);

  SnapshotFile BadFile("snapv2_semantic_bad.bin");
  writeBytesToFile(BadFile.path(), Bad);
  Grammar G2;
  buildBooleans(G2);
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(BadFile.path());
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().Message.find("start set"), std::string::npos);
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "true or false")));
}

//===----------------------------------------------------------------------===//
// Golden v1 forward compatibility
//===----------------------------------------------------------------------===//

namespace {

/// The grammar the checked-in golden snapshot was saved from. Must never
/// drift: the golden file pins that historic v1 bytes keep loading.
void buildGoldenGrammar(Grammar &G) { buildArith(G); }

std::string goldenV1Path() {
  return std::string(IPG_TEST_DATA_DIR) + "/golden-v1.snapshot";
}

} // namespace

TEST(SnapshotV2, GoldenV1SnapshotStillLoads) {
  Grammar G;
  buildGoldenGrammar(G);
  Ipg Gen(G);
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(goldenV1Path());
  ASSERT_TRUE(R) << "golden v1 snapshot failed to load: " << R.error().str()
                 << " — if the v1 format changed on purpose, that breaks "
                    "released snapshots; if the golden grammar drifted, "
                    "restore buildGoldenGrammar";
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_TRUE(Gen.recognize(sentence(G, "id + id * ( id + id )")));

  Grammar GRef;
  buildGoldenGrammar(GRef);
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Ref));
}

// Regeneration helper, disabled by default. Run ipg_snapshot_v2_test with
// --gtest_also_run_disabled_tests --gtest_filter='*RegenerateGoldenV1*'
// only when the golden must legitimately change (it writes into the
// source tree).
TEST(SnapshotV2, DISABLED_RegenerateGoldenV1) {
  Grammar G;
  buildGoldenGrammar(G);
  Ipg Gen(G);
  Gen.generateAll();
  Expected<size_t> Written =
      Gen.saveSnapshot(goldenV1Path(), SnapshotFormat::V1);
  ASSERT_TRUE(Written) << Written.error().str();
  std::printf("wrote %zu bytes to %s\n", *Written, goldenV1Path().c_str());
}

//===----------------------------------------------------------------------===//
// Golden v2 forward compatibility
//===----------------------------------------------------------------------===//

namespace {

std::string goldenV2Path() {
  return std::string(IPG_TEST_DATA_DIR) + "/golden-v2.snapshot";
}

} // namespace

// Same contract as the golden v1 check, for the zero-copy format: the
// checked-in v2 bytes must keep fingerprint-matching (mmap-adoptable)
// and loading into a parse-equivalent graph on every future revision.
TEST(SnapshotV2, GoldenV2SnapshotStillLoads) {
  Grammar G;
  buildGoldenGrammar(G);
  Ipg Gen(G);
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(goldenV2Path());
  ASSERT_TRUE(R) << "golden v2 snapshot failed to load: " << R.error().str()
                 << " — if the v2 format changed on purpose, that breaks "
                    "released snapshots; if the golden grammar drifted, "
                    "restore buildGoldenGrammar";
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_TRUE(Gen.recognize(sentence(G, "id + id * ( id + id )")));

  Grammar GRef;
  buildGoldenGrammar(GRef);
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Ref));
}

// Regeneration helper, disabled by default; see DISABLED_RegenerateGoldenV1.
TEST(SnapshotV2, DISABLED_RegenerateGoldenV2) {
  Grammar G;
  buildGoldenGrammar(G);
  Ipg Gen(G);
  Gen.generateAll();
  Expected<size_t> Written =
      Gen.saveSnapshot(goldenV2Path(), SnapshotFormat::V2);
  ASSERT_TRUE(Written) << Written.error().str();
  std::printf("wrote %zu bytes to %s\n", *Written, goldenV2Path().c_str());
}

//===----------------------------------------------------------------------===//
// Property sweep over the seeded random grammars
//===----------------------------------------------------------------------===//

class SnapshotV2RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotV2RoundTripTest, RoundTripIsParseEquivalentAndDeterministic) {
  SnapshotFile File("snapv2_sweep_" + std::to_string(GetParam()) + ".bin");
  Grammar G;
  RandomGrammarCase Case = buildRandomGrammar(G, GetParam());
  Ipg Gen(G);
  for (const std::vector<SymbolId> &S : Case.Positive)
    EXPECT_TRUE(Gen.recognize(S));
  ItemSetGraphStats Before = Gen.stats();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_EQ(R->StatesLoaded, Gen.graph().numLive());
  EXPECT_EQ(Loaded.stats().Expansions, Before.Expansions);
  EXPECT_EQ(Loaded.stats().ClosureItems, Before.ClosureItems);

  SnapshotFile Again("snapv2_sweep_again_" + std::to_string(GetParam()) +
                     ".bin");
  ASSERT_TRUE(Loaded.saveSnapshot(Again.path()));
  EXPECT_EQ(fileBytes(File.path()), fileBytes(Again.path()));

  for (const std::vector<SymbolId> &S : Case.Positive)
    EXPECT_TRUE(Loaded.recognize(S));
  for (const std::vector<SymbolId> &S : Case.Mutated) {
    Grammar GRef;
    Grammar::cloneActiveRules(G, GRef);
    Ipg Ref(GRef);
    EXPECT_EQ(Loaded.recognize(S), Ref.recognize(S));
  }
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Gen.graph()));
}

TEST_P(SnapshotV2RoundTripTest, StaleRepairMatchesFromScratchGeneration) {
  SnapshotFile File("snapv2_sweep_stale_" + std::to_string(GetParam()) +
                    ".bin");
  Grammar G;
  RandomGrammarCase Case = buildRandomGrammar(G, GetParam());
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path()));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  std::vector<RuleId> Active = G2.activeRules();
  const Rule &Template = G2.rule(Active[GetParam() % Active.size()]);
  SymbolId Lhs = Template.Lhs;
  G2.addRule(Lhs, {G2.symbols().intern("snapnew")});
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_FALSE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 1u);
  EXPECT_EQ(R->RulesRemoved, 0u);

  for (const std::vector<SymbolId> &S : Case.Positive)
    EXPECT_TRUE(Loaded.recognize(S));

  Grammar GRef;
  Grammar::cloneActiveRules(G2, GRef);
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotV2RoundTripTest,
                         ::testing::Range<uint64_t>(1, 26));
