//===- tests/core/SnapshotTest.cpp - Snapshot persistence (cross-process §5/§6) -===//
///
/// The snapshot subsystem end to end over the `ipg-snap-v1` encoding
/// (saves pass SnapshotFormat::V1 explicitly — v1's byte-level contract
/// includes a whole-payload checksum, which the corruption sweeps here
/// pin; the v2 contract lives in SnapshotV2Test.cpp): byte-deterministic
/// round trips that preserve the graph (frontier states, stats, parse
/// behaviour), the fingerprint-keyed warm start, §6-powered repair of
/// stale snapshots, and rejection of truncated / corrupted /
/// wrong-version files. Property sweeps run the same claims over the
/// seeded random grammars.
///
//===----------------------------------------------------------------------===//

#include "common/GraphCanon.h"
#include "common/TestGrammars.h"
#include "core/Ipg.h"
#include "grammar/GrammarIO.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace ipg;
using namespace ipg::testing;

namespace {

/// Per-test temp file that cleans up after itself.
class SnapshotFile {
public:
  explicit SnapshotFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {
    std::remove(Path.c_str());
  }
  ~SnapshotFile() { std::remove(Path.c_str()); }

  const std::string &path() const { return Path; }

private:
  std::string Path;
};

std::vector<uint8_t> fileBytes(const std::string &Path) {
  Expected<std::vector<uint8_t>> Bytes = readFileBytes(Path);
  EXPECT_TRUE(Bytes);
  return Bytes ? Bytes.take() : std::vector<uint8_t>();
}

void writeBytesToFile(const std::string &Path,
                      const std::vector<uint8_t> &Bytes) {
  ByteWriter W;
  W.writeBytes(Bytes.data(), Bytes.size());
  Expected<size_t> Written = W.writeFile(Path);
  ASSERT_TRUE(Written) << Written.error().str();
}

} // namespace

TEST(Snapshot, PartialGraphRoundTripPreservesFrontierAndStats) {
  SnapshotFile File("snap_partial.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  // Fig 5.2 state: the or/false branch is still an unexpanded frontier.
  ASSERT_TRUE(Gen.recognize(sentence(G, "true and true")));
  ASSERT_GT(Gen.graph().countByState(ItemSetState::Initial), 0u);
  ItemSetGraphStats Before = Gen.stats();
  Expected<size_t> Saved = Gen.saveSnapshot(File.path(), SnapshotFormat::V1);
  ASSERT_TRUE(Saved) << Saved.error().str();
  EXPECT_GT(*Saved, 0u);

  Grammar G2;
  buildBooleans(G2);
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 0u);
  EXPECT_EQ(R->RulesRemoved, 0u);
  EXPECT_EQ(R->StatesLoaded, Gen.graph().numLive());

  // The lazy frontier survives: same per-state counts, same stats.
  EXPECT_EQ(Loaded.graph().numComplete(), Gen.graph().numComplete());
  EXPECT_EQ(Loaded.graph().countByState(ItemSetState::Initial),
            Gen.graph().countByState(ItemSetState::Initial));
  EXPECT_EQ(Loaded.stats().Expansions, Before.Expansions);
  EXPECT_EQ(Loaded.stats().ClosureItems, Before.ClosureItems);
  EXPECT_EQ(Loaded.stats().GotoCalls, Before.GotoCalls);

  // Identical parse behaviour, including inputs that force expansion.
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "true and true")));
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "false or true")));
  EXPECT_FALSE(Loaded.recognize(sentence(G2, "true true")));

  // The storeStats() regression: those post-restore parses bumped the
  // sharded counters, and the bumps must ADD ON TOP of the restored base,
  // not vanish into it (restore deposits a base the bump shards never
  // touch — support/Concurrency.h).
  EXPECT_GT(Loaded.stats().Expansions, Before.Expansions);
  EXPECT_GE(Loaded.stats().GotoCalls, Before.GotoCalls);
}

TEST(Snapshot, ActionsMatchAfterRoundTrip) {
  SnapshotFile File("snap_actions.bin");
  Grammar G;
  buildArith(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));

  Grammar G2;
  buildArith(G2);
  Ipg Loaded(G2);
  ASSERT_TRUE(Loaded.loadSnapshot(File.path()));

  // ACTION agrees on every terminal in the respective start states, and
  // the whole reachable graphs are isomorphic.
  for (const char *Terminal : {"id", "(", ")", "+", "*"}) {
    SymbolId Sym = G.symbols().lookup(Terminal);
    EXPECT_EQ(Gen.graph().actionsView(Gen.graph().startSet(), Sym).size(),
              Loaded.graph()
                  .actionsView(Loaded.graph().startSet(), Sym)
                  .size())
        << Terminal;
  }
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Loaded.graph()));
}

TEST(Snapshot, SerializationIsByteDeterministic) {
  SnapshotFile A("snap_det_a.bin"), B("snap_det_b.bin"), C("snap_det_c.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.recognize(sentence(G, "true or false"));
  ASSERT_TRUE(Gen.saveSnapshot(A.path(), SnapshotFormat::V1));
  ASSERT_TRUE(Gen.saveSnapshot(B.path(), SnapshotFormat::V1));
  EXPECT_EQ(fileBytes(A.path()), fileBytes(B.path()))
      << "same graph must serialize to identical bytes";

  // Fingerprint-matched save -> load -> save reproduces the exact file.
  Grammar G2;
  buildBooleans(G2);
  Ipg Loaded(G2);
  ASSERT_TRUE(Loaded.loadSnapshot(A.path()));
  ASSERT_TRUE(Loaded.saveSnapshot(C.path(), SnapshotFormat::V1));
  EXPECT_EQ(fileBytes(A.path()), fileBytes(C.path()));
}

TEST(Snapshot, DirtyFrontierSurvivesRoundTrip) {
  SnapshotFile File("snap_dirty.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  // MODIFY marks states dirty; snapshot before anything re-expands.
  ASSERT_TRUE(Gen.addRule("B", {"not", "B"}));
  size_t DirtyBefore = Gen.graph().countByState(ItemSetState::Dirty);
  ASSERT_GT(DirtyBefore, 0u);
  ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));

  Grammar G2;
  buildBooleans(G2);
  GrammarBuilder(G2).rule("B", {"not", "B"});
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_EQ(Loaded.graph().countByState(ItemSetState::Dirty), DirtyBefore);

  // The dirty states re-expand by need and the new rule is live.
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "not true and not false")));
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Gen.graph()));
}

TEST(Snapshot, RetiredRuleInLiveKernelsRoundTrips) {
  SnapshotFile File("snap_retired.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  // DELETE-RULE retires "B ::= true"; complete sets whose kernels mention
  // it stay live until their dirty parents re-expand. Snapshot this
  // in-between state — the GRAM section must carry inactive rules too.
  ASSERT_TRUE(Gen.deleteRule("B", {"true"}));
  ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));

  Grammar G2;
  buildBooleans(G2);
  G2.removeRule(G2.symbols().lookup("B"),
                {G2.symbols().lookup("true")});
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_FALSE(Loaded.recognize(sentence(G2, "true")));
  EXPECT_TRUE(Loaded.recognize(sentence(G2, "false or false")));
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Gen.graph()));
}

TEST(Snapshot, StaleSnapshotIsRepairedWhenLiveGrammarGainedARule) {
  SnapshotFile File("snap_stale_add.bin");
  {
    Grammar G;
    buildBooleans(G);
    Ipg Gen(G);
    Gen.generateAll();
    ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));
  }
  // The live grammar moved on: it has one extra alternative.
  Grammar G;
  buildBooleans(G);
  GrammarBuilder(G).rule("B", {"not", "B"});
  Ipg Gen(G);
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_FALSE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 1u);
  EXPECT_EQ(R->RulesRemoved, 0u);
  EXPECT_GT(Gen.graph().countByState(ItemSetState::Dirty), 0u)
      << "the replayed ADD-RULE must invalidate the affected states";

  EXPECT_TRUE(Gen.recognize(sentence(G, "not true or false")));
  Grammar GRef;
  buildBooleans(GRef);
  GrammarBuilder(GRef).rule("B", {"not", "B"});
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Ref));
}

TEST(Snapshot, StaleSnapshotIsRepairedWhenLiveGrammarLostARule) {
  SnapshotFile File("snap_stale_del.bin");
  {
    Grammar G;
    buildBooleans(G);
    Ipg Gen(G);
    Gen.generateAll();
    ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));
  }
  Grammar G;
  buildBooleans(G);
  G.removeRule(G.symbols().lookup("B"), {G.symbols().lookup("false")});
  Ipg Gen(G);
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_FALSE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 0u);
  EXPECT_EQ(R->RulesRemoved, 1u);

  EXPECT_FALSE(Gen.recognize(sentence(G, "false")));
  EXPECT_TRUE(Gen.recognize(sentence(G, "true and true")));
  Grammar GRef;
  buildBooleans(GRef);
  GRef.removeRule(GRef.symbols().lookup("B"),
                  {GRef.symbols().lookup("false")});
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Ref));
}

TEST(Snapshot, StartRuleDeltaIsRepaired) {
  SnapshotFile File("snap_stale_start.bin");
  {
    Grammar G;
    buildBooleans(G);
    Ipg Gen(G);
    Gen.generateAll();
    ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));
  }
  // The live grammar adds a second START alternative — the delta touches
  // the start kernel itself.
  Grammar G;
  buildBooleans(G);
  GrammarBuilder B(G);
  B.rule("C", {"maybe"});
  B.rule("START", {"C"});
  Ipg Gen(G);
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_FALSE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 2u);
  EXPECT_TRUE(Gen.recognize(sentence(G, "maybe")));
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or false")));

  Grammar GRef;
  buildBooleans(GRef);
  GrammarBuilder BRef(GRef);
  BRef.rule("C", {"maybe"});
  BRef.rule("START", {"C"});
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Ref));
}

TEST(Snapshot, DifferentInterningOrderStillFingerprintMatches) {
  SnapshotFile File("snap_interning.bin");
  {
    Grammar G;
    buildBooleans(G);
    Ipg Gen(G);
    Gen.generateAll();
    ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));
  }
  // Same rules, interned in a different order: the layout fast path cannot
  // apply, but the content fingerprint (by name) must still match and the
  // by-name remapping must deliver an equivalent graph.
  Grammar G;
  G.symbols().intern("or");
  G.symbols().intern("zzz");
  buildBooleans(G);
  Ipg Gen(G);
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 0u);
  EXPECT_EQ(R->RulesRemoved, 0u);
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or false")));

  Grammar GRef;
  buildBooleans(GRef);
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Gen.graph()), canonicalize(Ref));
}

TEST(Snapshot, GrammarFingerprintIsOrderIndependentButContentSensitive) {
  Grammar A;
  buildBooleans(A);

  // Same rules, different interning and insertion order.
  Grammar B;
  B.symbols().intern("and");
  GrammarBuilder BB(B);
  BB.rule("B", {"B", "and", "B"});
  BB.rule("START", {"B"});
  BB.rule("B", {"B", "or", "B"});
  BB.rule("B", {"false"});
  BB.rule("B", {"true"});
  EXPECT_EQ(grammarFingerprint(A), grammarFingerprint(B));
  EXPECT_NE(grammarLayoutFingerprint(A), grammarLayoutFingerprint(B));

  // Any content change moves the fingerprint.
  GrammarBuilder(B).rule("B", {"not", "B"});
  EXPECT_NE(grammarFingerprint(A), grammarFingerprint(B));

  // Deleting and re-adding a rule lands back on the same fingerprint even
  // though the grammar now carries an interned-but-inactive history.
  Grammar C;
  buildBooleans(C);
  C.removeRule(C.symbols().lookup("B"), {C.symbols().lookup("true")});
  EXPECT_NE(grammarFingerprint(A), grammarFingerprint(C));
  C.addRule(C.symbols().lookup("B"), {C.symbols().lookup("true")});
  EXPECT_EQ(grammarFingerprint(A), grammarFingerprint(C));
}

TEST(Snapshot, RejectsBadMagicWrongVersionAndGarbage) {
  SnapshotFile File("snap_reject.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);

  writeBytesToFile(File.path(), {'n', 'o', 't', 'a', 's', 'n', 'a', 'p'});
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(File.path());
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().Message.find("magic"), std::string::npos);

  std::vector<uint8_t> WrongVersion{'i', 'p', 'g', '-', 's', 'n', 'a', 'p',
                                    '-', 'v', '9'};
  WrongVersion.resize(64, 0);
  writeBytesToFile(File.path(), WrongVersion);
  R = Gen.loadSnapshot(File.path());
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().Message.find("version"), std::string::npos);

  EXPECT_FALSE(Gen.loadSnapshot(File.path() + ".does-not-exist"));

  // The failed loads must leave the generator fully usable.
  EXPECT_TRUE(Gen.recognize(sentence(G, "true and false")));
}

TEST(Snapshot, RejectsEveryTruncation) {
  SnapshotFile File("snap_trunc.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));
  std::vector<uint8_t> Full = fileBytes(File.path());
  ASSERT_GT(Full.size(), 0u);

  SnapshotFile Cut("snap_trunc_cut.bin");
  for (size_t Keep = 0; Keep < Full.size(); ++Keep) {
    writeBytesToFile(Cut.path(),
                     std::vector<uint8_t>(Full.begin(), Full.begin() + Keep));
    Grammar G2;
    buildBooleans(G2);
    Ipg Loaded(G2);
    EXPECT_FALSE(Loaded.loadSnapshot(Cut.path()))
        << "truncation to " << Keep << " bytes must be rejected";
    // Whatever failed, the generator still works.
    EXPECT_TRUE(Loaded.recognize(sentence(G2, "true")));
  }
}

TEST(Snapshot, RejectsEverySingleByteCorruption) {
  SnapshotFile File("snap_corrupt.bin");
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Gen.recognize(sentence(G, "true and true"));
  ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));
  std::vector<uint8_t> Full = fileBytes(File.path());

  // Flipping any payload byte must trip the checksum; flipping header
  // bytes must trip magic/fingerprint/checksum handling. Either way the
  // load fails or — for the fingerprint fields — legitimately degrades to
  // a repair; it must never crash or corrupt the generator.
  SnapshotFile Bad("snap_corrupt_bad.bin");
  const size_t HeaderEnd = 11 + 8 + 8 + 8;
  for (size_t I = 0; I < Full.size(); ++I) {
    std::vector<uint8_t> Copy = Full;
    Copy[I] ^= 0x40;
    writeBytesToFile(Bad.path(), Copy);
    Grammar G2;
    buildBooleans(G2);
    Ipg Loaded(G2);
    Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(Bad.path());
    if (I >= HeaderEnd) {
      EXPECT_FALSE(R) << "payload byte " << I
                      << " corrupted but load succeeded";
    }
    EXPECT_TRUE(Loaded.recognize(sentence(G2, "true")))
        << "generator unusable after corrupted load (byte " << I << ")";
  }
}

TEST(Snapshot, RejectsChecksummedButSemanticallyInvalidPayload) {
  // Hand-craft a file with a valid checksum whose graph section references
  // an out-of-range set: the semantic validation must catch it and the
  // failed load must leave grammar and generator intact.
  SnapshotFile File("snap_semantic.bin");
  Grammar G;
  buildBooleans(G);

  ByteWriter Payload;
  size_t Gram = Payload.beginSection(SnapshotGramTag);
  writeGrammarSnapshot(G, Payload);
  Payload.endSection(Gram);
  size_t Grph = Payload.beginSection(SnapshotGrphTag);
  Payload.writeVarint(1);  // One set...
  Payload.writeVarint(5);  // ...but the start index is out of range.
  Payload.endSection(Grph);

  ByteWriter FileBytes;
  FileBytes.writeBytes("ipg-snap-v1", 11);
  FileBytes.writeU64(grammarFingerprint(G));
  FileBytes.writeU64(0); // Layout mismatch: forces the slow path.
  FileBytes.writeU64(hashBytes(Payload.buffer().data(), Payload.size()));
  FileBytes.writeBytes(Payload.buffer().data(), Payload.size());
  ASSERT_TRUE(FileBytes.writeFile(File.path()));

  Ipg Gen(G);
  uint64_t VersionBefore = G.version();
  size_t RulesBefore = G.size();
  Expected<SnapshotLoadResult> R = Gen.loadSnapshot(File.path());
  ASSERT_FALSE(R);
  EXPECT_EQ(G.size(), RulesBefore) << "active rule set must be restored";
  EXPECT_GE(G.version(), VersionBefore);
  EXPECT_TRUE(Gen.recognize(sentence(G, "true or true")));
}

TEST(Snapshot, SaveToUnwritablePathFails) {
  Grammar G;
  buildBooleans(G);
  Ipg Gen(G);
  Expected<size_t> R = Gen.saveSnapshot(::testing::TempDir(), SnapshotFormat::V1);
  EXPECT_FALSE(R);
}

// Property sweep: save -> load round trips preserve parse behaviour and
// graph structure for the seeded random grammars, from both a partially
// expanded (parse-driven) and a fully generated graph.
class SnapshotRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRoundTripTest, RoundTripIsParseEquivalentAndDeterministic) {
  SnapshotFile File("snap_sweep_" + std::to_string(GetParam()) + ".bin");
  Grammar G;
  RandomGrammarCase Case = buildRandomGrammar(G, GetParam());
  Ipg Gen(G);
  for (const std::vector<SymbolId> &S : Case.Positive)
    EXPECT_TRUE(Gen.recognize(S));
  ItemSetGraphStats Before = Gen.stats();
  ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));

  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_TRUE(R->FingerprintMatched);
  EXPECT_EQ(R->StatesLoaded, Gen.graph().numLive());
  EXPECT_EQ(Loaded.stats().Expansions, Before.Expansions);
  EXPECT_EQ(Loaded.stats().ClosureItems, Before.ClosureItems);

  // Byte determinism: re-saving the just-loaded graph (before any parse
  // expands it further) reproduces the file exactly.
  SnapshotFile Again("snap_sweep_again_" + std::to_string(GetParam()) +
                     ".bin");
  ASSERT_TRUE(Loaded.saveSnapshot(Again.path(), SnapshotFormat::V1));
  EXPECT_EQ(fileBytes(File.path()), fileBytes(Again.path()));

  // recognize() equivalence on derivable sentences and random mutations.
  for (const std::vector<SymbolId> &S : Case.Positive)
    EXPECT_TRUE(Loaded.recognize(S));
  for (const std::vector<SymbolId> &S : Case.Mutated) {
    Grammar GRef;
    Grammar::cloneActiveRules(G, GRef);
    Ipg Ref(GRef);
    EXPECT_EQ(Loaded.recognize(S), Ref.recognize(S));
  }
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Gen.graph()));
}

TEST_P(SnapshotRoundTripTest, StaleRepairMatchesFromScratchGeneration) {
  SnapshotFile File("snap_sweep_stale_" + std::to_string(GetParam()) +
                    ".bin");
  Grammar G;
  RandomGrammarCase Case = buildRandomGrammar(G, GetParam());
  Ipg Gen(G);
  Gen.generateAll();
  ASSERT_TRUE(Gen.saveSnapshot(File.path(), SnapshotFormat::V1));

  // The live grammar differs by one extra alternative for an existing
  // nonterminal (plus a fresh terminal, exercising the symbol remap).
  Grammar G2;
  Grammar::cloneActiveRules(G, G2);
  std::vector<RuleId> Active = G2.activeRules();
  const Rule &Template = G2.rule(Active[GetParam() % Active.size()]);
  SymbolId Lhs = Template.Lhs;
  G2.addRule(Lhs, {G2.symbols().intern("snapnew")});
  Ipg Loaded(G2);
  Expected<SnapshotLoadResult> R = Loaded.loadSnapshot(File.path());
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_FALSE(R->FingerprintMatched);
  EXPECT_EQ(R->RulesAdded, 1u);
  EXPECT_EQ(R->RulesRemoved, 0u);

  for (const std::vector<SymbolId> &S : Case.Positive)
    EXPECT_TRUE(Loaded.recognize(S));

  Grammar GRef;
  Grammar::cloneActiveRules(G2, GRef);
  ItemSetGraph Ref(GRef);
  EXPECT_EQ(canonicalize(Loaded.graph()), canonicalize(Ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTripTest,
                         ::testing::Range<uint64_t>(1, 26));
